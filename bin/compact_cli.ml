(* COMPACT command-line interface.

   Subcommands:
     synth      synthesise a crossbar from an expression / BLIF / PLA /
                built-in benchmark
     sweep      gamma sweep, printing the non-dominated designs
     validate   synthesise then verify digitally (+ optionally analog)
     suite      list the built-in benchmark circuits
     export     write a built-in benchmark as BLIF/PLA, or its BDD as DOT
     experiments  regenerate the paper's tables and figures *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Input selection *)

type source =
  | Src_expr of string
  | Src_blif of string
  | Src_pla of string
  | Src_verilog of string
  | Src_circuit of string

let netlist_of_source = function
  | Src_expr s ->
    let e = Logic.Parse.expr s in
    let inputs = Logic.Expr.vars e in
    Logic.Netlist.create ~name:"expr" ~inputs ~outputs:[ "f" ]
      [ Logic.Netlist.n_expr "f" e ]
  | Src_blif path -> Logic.Blif.parse_file path
  | Src_pla path -> Logic.Pla.to_netlist (Logic.Pla.parse_file path)
  | Src_verilog path -> Logic.Verilog.parse_file path
  | Src_circuit name -> (Circuits.Suite.find name).generate ()

let source_term =
  let expr =
    Arg.(value & opt (some string) None
         & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Boolean expression, e.g. '(a & b) | c'.")
  in
  let blif =
    Arg.(value & opt (some file) None
         & info [ "blif" ] ~docv:"FILE" ~doc:"BLIF netlist file.")
  in
  let pla =
    Arg.(value & opt (some file) None
         & info [ "pla" ] ~docv:"FILE" ~doc:"PLA file.")
  in
  let verilog =
    Arg.(value & opt (some file) None
         & info [ "verilog" ] ~docv:"FILE"
             ~doc:"Structural Verilog netlist file.")
  in
  let circuit =
    Arg.(value & opt (some string) None
         & info [ "c"; "circuit" ] ~docv:"NAME"
             ~doc:"Built-in benchmark (see the suite subcommand).")
  in
  let combine expr blif pla verilog circuit =
    match expr, blif, pla, verilog, circuit with
    | Some e, None, None, None, None -> Ok (Some (Src_expr e))
    | None, Some f, None, None, None -> Ok (Some (Src_blif f))
    | None, None, Some f, None, None -> Ok (Some (Src_pla f))
    | None, None, None, Some f, None -> Ok (Some (Src_verilog f))
    | None, None, None, None, Some c -> Ok (Some (Src_circuit c))
    | None, None, None, None, None -> Ok None
    | _ -> Error (`Msg "give exactly one input source")
  in
  Term.(term_result (const combine $ expr $ blif $ pla $ verilog $ circuit))

(* Most subcommands require an input; [profile] alone also accepts
   [--from FILE] instead, so it consumes the optional variant. *)
let source_opt_term = source_term

let source_term =
  let require = function
    | Some s -> Ok s
    | None ->
      Error
        (`Msg "one of --expr, --blif, --pla, --verilog, --circuit is required")
  in
  Term.(term_result (const require $ source_opt_term))

(* ------------------------------------------------------------------ *)
(* Synthesis options *)

let solver_conv =
  let parse s =
    match Compact.Pipeline.solver_of_name s with
    | Some solver -> Ok solver
    | None -> Error (`Msg (Printf.sprintf "unknown solver %s" s))
  in
  let print ppf s = Format.pp_print_string ppf (Compact.Pipeline.solver_name s) in
  Arg.conv (parse, print)

(* [-j]/[--jobs] rides on the shared options term, so every synthesis
   subcommand (synth, sweep, validate, repair, yield, margin, harden)
   accepts it. Resolution order: flag, then COMPACT_JOBS (parsed by
   cmdliner's env support, so garbage is a proper CLI error), then 1. *)
let jobs_term =
  let arg =
    Arg.(value
         & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~env:(Cmd.Env.info "COMPACT_JOBS"
                     ~doc:"Default worker-domain count when $(b,-j) is absent.")
             ~doc:"Worker domains for the parallel stages (harden candidate \
                   scoring, Monte-Carlo sampling, branch & bound). Results \
                   are identical for every jobs count; 1 (the default) is \
                   the sequential path.")
  in
  let check = function
    | None -> Ok 1
    | Some n when n >= 1 -> Ok n
    | Some n ->
      Error
        (`Msg
           (Printf.sprintf
              "invalid jobs count %d: -j/--jobs (or COMPACT_JOBS) needs an \
               integer >= 1" n))
  in
  Term.(term_result (const check $ arg))

(* [--trace] rides on every pipeline subcommand.  The run executes with
   recording enabled and the drained events are written at exit: a
   [.jsonl] suffix selects the flat JSONL log, anything else the Chrome
   trace_event format (loadable in Perfetto / chrome://tracing).  The
   COMPACT_TRACE environment variable supplies the same value; a bare
   switch ("1", "true", "yes", "on") enables recording without writing
   a file, so `COMPACT_TRACE=1 dune runtest` exercises the traced
   code paths. *)
let trace_term =
  Arg.(value
       & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~env:(Cmd.Env.info "COMPACT_TRACE"
                   ~doc:"Trace output file when $(b,--trace) is absent; a \
                         bare switch value (1/true/yes/on) records without \
                         writing a file.")
           ~doc:"Record an execution trace of the run and write it to \
                 $(docv). A .jsonl suffix writes the flat JSONL event log; \
                 any other name writes Chrome trace_event JSON for \
                 Perfetto / chrome://tracing.")

let trace_switches = [ "1"; "true"; "yes"; "on" ]

(* Fail fast on an unwritable --trace target: a run that spends its
   whole deadline synthesising should not discover at exit that the
   trace cannot be written.  Parent directories are created; the probe
   open creates the file without truncating an existing one. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let prepare_trace_file file =
  try
    mkdir_p (Filename.dirname file);
    let oc = open_out_gen [ Open_wronly; Open_creat ] 0o644 file in
    close_out oc;
    Ok ()
  with Sys_error msg ->
    Error (`Msg (Printf.sprintf "--trace %s: not writable (%s)" file msg))

let with_trace trace k =
  (* All pipeline work happens under this wrapper, so a budget that
     exhausts in a stage with no partial result (BDD build, memory)
     surfaces here as a structured CLI error instead of an uncaught
     exception. *)
  let k () =
    match k () with
    | r -> r
    | exception Resilience.Budget.Exhausted r ->
      Error
        (`Msg
           (Format.asprintf
              "budget exhausted (%a) before a result was produced"
              Resilience.Budget.pp_reason r))
  in
  match trace with
  | None -> k ()
  | Some file ->
    let bare = List.mem (String.lowercase_ascii file) trace_switches in
    (match if bare then Ok () else prepare_trace_file file with
     | Error _ as e -> e
     | Ok () ->
    Obs.set_enabled true;
    (* Drop anything recorded before the subcommand body (argument
       parsing never records, but be safe). *)
    Obs.reset ();
    let finish () =
      let snap = Obs.drain () in
      Obs.set_enabled false;
      let n = List.length snap.Obs.events in
      if bare then
        Printf.eprintf
          "trace: %d events recorded (give --trace FILE to write them)\n%!" n
      else begin
        if Filename.check_suffix file ".jsonl" then
          Obs.Export.write_jsonl file snap
        else Obs.Export.write_chrome file snap;
        Printf.eprintf "trace: %d events -> %s\n%!" n file
      end
    in
    Fun.protect ~finally:finish k)

let options_term =
  let gamma =
    Arg.(value & opt float 0.5
         & info [ "g"; "gamma" ] ~docv:"G"
             ~doc:"Objective weight: minimise G*S + (1-G)*D.")
  in
  let solver =
    Arg.(value & opt solver_conv Compact.Pipeline.Auto
         & info [ "solver" ] ~docv:"S"
             ~doc:"VH-labeling solver: auto, oct, oct-greedy, mip, \
                   heuristic, or portfolio (the auto ladder raced \
                   concurrently on the -j domain pool; deterministic \
                   winner, so the design is identical for any jobs \
                   count).")
  in
  let race_orders =
    let arg =
      Arg.(value & opt int 1
           & info [ "race-orders" ] ~docv:"K"
               ~doc:"Under --solver portfolio, race each solver rung on up \
                     to $(docv) candidate variable orders (default 1: the \
                     build order only).")
    in
    let check n =
      if n >= 1 then Ok n
      else
        Error
          (`Msg (Printf.sprintf "invalid --race-orders %d: needs >= 1" n))
    in
    Term.(term_result (const check $ arg))
  in
  let time_limit =
    Arg.(value & opt float 30.
         & info [ "t"; "time-limit" ] ~docv:"SEC"
             ~doc:"Labeling time budget in seconds.")
  in
  let deadline =
    let arg =
      Arg.(value & opt (some float) None
           & info [ "deadline" ] ~docv:"SEC"
               ~env:(Cmd.Env.info "COMPACT_DEADLINE"
                       ~doc:"Default end-to-end deadline when \
                             $(b,--deadline) is absent.")
               ~doc:"End-to-end wall deadline in seconds for the whole \
                     run. When it expires the pipeline degrades \
                     gracefully to the cheapest labeling method and \
                     returns a verified design with DEADLINE HIT in the \
                     report (non-zero exit); it never wedges.")
    in
    let check = function
      | None -> Ok None
      | Some s when s > 0. -> Ok (Some s)
      | Some s ->
        Error
          (`Msg
             (Printf.sprintf
                "invalid deadline %g: --deadline (or COMPACT_DEADLINE) \
                 needs a positive number of seconds" s))
    in
    Term.(term_result (const check $ arg))
  in
  let no_alignment =
    Arg.(value & flag
         & info [ "no-alignment" ]
             ~doc:"Drop the Eq 7 constraints forcing ports onto wordlines.")
  in
  let max_rows =
    Arg.(value & opt (some int) None
         & info [ "max-rows" ] ~docv:"N"
             ~doc:"Hard wordline capacity (forces the MIP solver).")
  in
  let max_cols =
    Arg.(value & opt (some int) None
         & info [ "max-cols" ] ~docv:"N" ~doc:"Hard bitline capacity.")
  in
  let make gamma solver race_orders time_limit deadline no_alignment max_rows
      max_cols jobs =
    {
      Compact.Pipeline.default_options with
      gamma;
      solver;
      race_orders;
      time_limit;
      deadline;
      alignment = not no_alignment;
      max_rows;
      max_cols;
      jobs;
    }
  in
  Term.(
    const make $ gamma $ solver $ race_orders $ time_limit $ deadline
    $ no_alignment $ max_rows $ max_cols $ jobs_term)

(* ------------------------------------------------------------------ *)

let print_grid =
  Arg.(value & flag
       & info [ "grid" ] ~doc:"Print the crossbar contents (small designs).")

let print_stats =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print the BDD engine's unique-table, op-cache and \
                 reordering counters.")

(* [--reorder] is order *pre-processing*: it computes an improved
   variable order up front and feeds it to the pipeline as an explicit
   [options.order], leaving the pipeline itself untouched. [sift] builds
   once under the best static candidate order and runs in-place Rudell
   sifting; [anneal] is the older rebuild-per-move annealing search,
   retained as a cross-check. *)
let reorder_conv =
  let parse = function
    | "none" -> Ok `None
    | "sift" -> Ok `Sift
    | "anneal" -> Ok `Anneal
    | s -> Error (`Msg (Printf.sprintf "unknown reorder mode %s" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with `None -> "none" | `Sift -> "sift" | `Anneal -> "anneal")
  in
  Arg.conv (parse, print)

let reorder_term =
  Arg.(value & opt reorder_conv `None
       & info [ "reorder" ] ~docv:"MODE"
           ~doc:"Variable-order optimisation before synthesis: none \
                 (default), sift (build once, then in-place Rudell \
                 sifting), or anneal (simulated annealing over rebuilds).")

let reordered_order reorder options nl =
  match reorder with
  | `None -> (options : Compact.Pipeline.options).order
  | `Sift ->
    let sbdd =
      Bdd.Reorder.improve_sbdd ~node_limit:options.Compact.Pipeline.bdd_node_limit
        nl
    in
    Some (Array.to_list sbdd.Bdd.Sbdd.input_order)
  | `Anneal ->
    let order, _ =
      Bdd.Reorder.anneal ~node_limit:options.Compact.Pipeline.bdd_node_limit nl
    in
    Some order

let report_stats result =
  match (result : Compact.Pipeline.result).report.bdd_stats with
  | Some s -> Format.printf "%a@." Bdd.Manager.pp_stats s
  | None -> Format.printf "no BDD engine statistics recorded@."

let synth_run trace source options reorder grid stats =
  with_trace trace @@ fun () ->
  let nl = netlist_of_source source in
  let options = { options with Compact.Pipeline.order = reordered_order reorder options nl } in
  match Compact.Pipeline.synthesize ~options nl with
  | result ->
    Format.printf "%a@." Compact.Report.pp result.report;
    if stats then report_stats result;
    if grid then Format.printf "%a@." Crossbar.Design.pp result.design;
    if result.report.Compact.Report.deadline_hit then
      Error
        (`Msg
           (Printf.sprintf
              "deadline hit: returned the degraded incumbent (solver path: \
               %s)"
              (String.concat " -> "
                 result.report.Compact.Report.solver_path)))
    else Ok ()
  | exception Compact.Label_mip.Infeasible msg ->
    Error (`Msg ("design constraints are infeasible: " ^ msg))

let synth_cmd =
  let term =
    Term.(
      term_result
        (const synth_run $ trace_term $ source_term $ options_term
         $ reorder_term $ print_grid $ print_stats))
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesise a crossbar design with COMPACT")
    term

(* ------------------------------------------------------------------ *)

let sweep_run trace source options steps =
  with_trace trace @@ fun () ->
  let nl = netlist_of_source source in
  let points = ref [] in
  for i = 0 to steps do
    let gamma = float_of_int i /. float_of_int steps in
    let options = { options with Compact.Pipeline.gamma } in
    let r = Compact.Pipeline.synthesize ~options nl in
    points := (gamma, r.report.rows, r.report.cols) :: !points
  done;
  Format.printf "gamma  rows  cols@.";
  List.iter
    (fun (g, r, c) -> Format.printf "%5.2f  %4d  %4d@." g r c)
    (List.rev !points);
  let dominated (r1, c1) =
    List.exists
      (fun (_, r2, c2) -> (r2 <= r1 && c2 < c1) || (r2 < r1 && c2 <= c1))
      !points
  in
  let pareto =
    List.sort_uniq compare
      (List.filter_map
         (fun (_, r, c) -> if dominated (r, c) then None else Some (r, c))
         !points)
  in
  Format.printf "non-dominated:@.";
  List.iter (fun (r, c) -> Format.printf "  (%d, %d)@." r c) pareto;
  Ok ()

let sweep_cmd =
  let steps =
    Arg.(value & opt int 10
         & info [ "steps" ] ~docv:"N" ~doc:"Number of gamma steps.")
  in
  let term =
    Term.(
      term_result
        (const sweep_run $ trace_term $ source_term $ options_term $ steps))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep gamma and report the non-dominated (rows, cols) designs")
    term

(* ------------------------------------------------------------------ *)

let validate_run trace source options analog trials =
  with_trace trace @@ fun () ->
  let nl = netlist_of_source source in
  let result = Compact.Pipeline.synthesize ~options nl in
  Format.printf "%a@." Compact.Report.pp result.report;
  let digital =
    if Logic.Netlist.num_inputs nl <= 14 then begin
      let tt = Logic.Netlist.to_truth_table nl in
      Format.printf "digital check: exhaustive over %d assignments@."
        (1 lsl Logic.Netlist.num_inputs nl);
      Crossbar.Verify.against_table result.design ~reference:tt
    end
    else begin
      Format.printf "digital check: %d random assignments@." trials;
      Crossbar.Verify.random ~trials result.design ~inputs:nl.inputs
        ~reference:(Logic.Netlist.eval_point nl)
        ~outputs:nl.outputs
    end
  in
  (match digital with
   | Crossbar.Verify.Ok -> Format.printf "digital check: PASS@."
   | Crossbar.Verify.Failed cex ->
     Format.printf "digital check: FAIL (%a)@."
       Crossbar.Verify.pp_counterexample cex);
  if analog then begin
    let agree =
      Crossbar.Analog.agrees_with_digital ~trials:(min trials 32) result.design
    in
    Format.printf "analog (nodal-analysis) check: %s@."
      (if agree then "PASS" else "FAIL")
  end;
  match digital with
  | Crossbar.Verify.Ok -> Ok ()
  | Crossbar.Verify.Failed _ -> Error (`Msg "verification failed")

let validate_cmd =
  let analog =
    Arg.(value & flag
         & info [ "analog" ]
             ~doc:"Also validate electrically with the resistive-network solver.")
  in
  let trials =
    Arg.(value & opt int 256
         & info [ "trials" ] ~docv:"N" ~doc:"Random trials for large circuits.")
  in
  let term =
    Term.(
      term_result
        (const validate_run $ trace_term $ source_term $ options_term $ analog
         $ trials))
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Synthesise and verify a design functionally")
    term

(* ------------------------------------------------------------------ *)

let suite_run () =
  Format.printf "%-10s %-13s %4s %4s  %s@." "name" "category" "in" "out"
    "description";
  List.iter
    (fun (e : Circuits.Suite.entry) ->
       Format.printf "%-10s %-13s %4d %4d  %s@." e.name
         (match e.category with
          | Circuits.Suite.Iscas85 -> "iscas85"
          | Circuits.Suite.Epfl_control -> "epfl-control")
         e.paper_inputs e.paper_outputs e.description)
    Circuits.Suite.all

let suite_cmd =
  Cmd.v
    (Cmd.info "suite" ~doc:"List the built-in benchmark circuits")
    Term.(const suite_run $ const ())

(* ------------------------------------------------------------------ *)

let export_run name format path =
  match Circuits.Suite.find name with
  | exception Not_found -> Error (`Msg (Printf.sprintf "unknown circuit %s" name))
  | e ->
    let nl = e.generate () in
    (match format with
     | "blif" ->
       Logic.Blif.write_file path nl;
       Ok ()
     | "pla" ->
       if Logic.Netlist.num_inputs nl > 14 then
         Error (`Msg "pla export needs <= 14 inputs")
       else begin
         Logic.Pla.write_file path
           (Logic.Pla.of_truth_table (Logic.Netlist.to_truth_table nl));
         Ok ()
       end
     | "verilog" ->
       Logic.Verilog.write_file path nl;
       Ok ()
     | "dot" ->
       let sbdd = Bdd.Sbdd.of_netlist nl in
       Bdd.Dot.write_file path sbdd;
       Ok ()
     | f -> Error (`Msg (Printf.sprintf "unknown format %s" f)))

let export_cmd =
  let circuit_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"CIRCUIT" ~doc:"Benchmark name.")
  in
  let format_arg =
    Arg.(value & opt string "blif"
         & info [ "f"; "format" ] ~docv:"FMT" ~doc:"blif, pla, verilog or dot.")
  in
  let path_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"FILE" ~doc:"Output file.")
  in
  let term =
    Term.term_result
      Term.(const export_run $ circuit_arg $ format_arg $ path_arg)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a benchmark as BLIF/PLA or its BDD as DOT")
    term

(* ------------------------------------------------------------------ *)
(* Defect-aware repair *)

let defects_of_file file =
  match Crossbar.Defect_map.parse_file file with
  | map -> Ok map
  | exception Crossbar.Defect_map.Parse_error { line; msg } ->
    Error
      (`Msg
         (if line > 0 then Printf.sprintf "%s: line %d: %s" file line msg
          else Printf.sprintf "%s: %s" file msg))
  | exception Failure msg -> Error (`Msg (file ^ ": " ^ msg))
  | exception Invalid_argument msg -> Error (`Msg (file ^ ": " ^ msg))
  | exception Sys_error msg -> Error (`Msg msg)

let repair_run trace source options defects_file grid =
  Result.bind (defects_of_file defects_file) @@ fun defects ->
  with_trace trace @@ fun () ->
  let nl = netlist_of_source source in
  match Compact.Pipeline.repair ~options ~defects nl with
  | { base; repair } ->
    Format.printf "%a@." Compact.Report.pp base.report;
    Format.printf "array: %a@." Crossbar.Defect_map.pp defects;
    Format.printf "%a@." Compact.Repair.pp repair;
    (match repair.outcome with
     | Compact.Repair.Repaired { design; _ } ->
       if grid then Format.printf "%a@." Crossbar.Design.pp design;
       Ok ()
     | Compact.Repair.Degraded { correct; failed; _ } ->
       Error
         (`Msg
            (Printf.sprintf "degraded: %d output(s) lost, %d survive"
               (List.length failed) (List.length correct)))
     | Compact.Repair.Unplaceable msg -> Error (`Msg ("unplaceable: " ^ msg)))
  | exception Compact.Label_mip.Infeasible msg ->
    Error (`Msg ("design constraints are infeasible: " ^ msg))

let repair_cmd =
  let defects =
    Arg.(required & opt (some file) None
         & info [ "d"; "defects" ] ~docv:"FILE"
             ~doc:"Defect map of the physical array (see DESIGN.md for the \
                   text format).")
  in
  let term =
    Term.(
      term_result
        (const repair_run $ trace_term $ source_term $ options_term $ defects
         $ print_grid))
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:"Synthesise and fit the design onto a faulty crossbar array")
    term

(* ------------------------------------------------------------------ *)

let yield_single base nl defects verify_trials seed =
  let open Compact in
  match
    Place.find ~use_spares:true ~respect_faults:false defects
      base.Pipeline.design
  with
  | None -> Error (`Msg "design does not fit the array's healthy lines")
  | Some pl ->
    let phys = Place.apply defects pl base.Pipeline.design in
    let results =
      Crossbar.Verify.per_output ~seed ~trials:verify_trials phys
        ~inputs:nl.Logic.Netlist.inputs
        ~reference:(Logic.Netlist.eval_point nl)
        ~outputs:nl.Logic.Netlist.outputs
    in
    Format.printf "array: %a@." Crossbar.Defect_map.pp defects;
    List.iter
      (fun (o, cex) ->
         match cex with
         | None -> Format.printf "  %-16s ok@." o
         | Some c ->
           Format.printf "  %-16s FAIL  %a@." o
             Crossbar.Verify.pp_counterexample c)
      results;
    let ok = List.length (List.filter (fun (_, c) -> c = None) results) in
    Format.printf "%d/%d outputs survive without repair@." ok
      (List.length results);
    Ok ()

let yield_monte_carlo base nl rate line_rate spare_rows spare_cols trials seed
    jobs =
  let open Compact in
  let rows = Crossbar.Design.rows base.Pipeline.design + spare_rows in
  let cols = Crossbar.Design.cols base.Pipeline.design + spare_cols in
  let inputs = nl.Logic.Netlist.inputs and outputs = nl.Logic.Netlist.outputs in
  let reference = Logic.Netlist.eval_point nl in
  let permutation = ref 0
  and spares = ref 0
  and unconstrained = ref 0
  and degraded = ref 0
  and unplaceable = ref 0 in
  (* Each trial is a pure function of (seed, k), so trials fan out on
     the pool; the tallies below are order-independent counts anyway. *)
  let run_trial k =
    let map =
      Crossbar.Defect_map.random
        ~seed:(Hashtbl.hash (seed, k))
        ~line_rate ~spare_rows ~spare_cols ~rate ~rows ~cols ()
    in
    (* No resynthesis rung: one synthesis per trial would dominate the
       Monte-Carlo loop, and the estimate is for the placement ladder. *)
    let rep =
      Repair.run ~seed:(Hashtbl.hash (seed, k, `Verify)) ~defects:map ~inputs
        ~outputs ~reference base.Pipeline.design
    in
    rep.Repair.outcome
  in
  let outcomes =
    Parallel.with_pool ~jobs (fun pool ->
        Parallel.map ~chunk:4 pool run_trial
          (List.init trials (fun i -> i + 1)))
  in
  List.iter
    (function
      | Repair.Repaired { strategy = Repair.Permutation; _ } ->
        incr permutation
      | Repair.Repaired { strategy = Repair.Spares; _ } -> incr spares
      | Repair.Repaired { strategy = Repair.Resynthesis; _ }
      | Repair.Repaired { strategy = Repair.Unconstrained; _ } ->
        incr unconstrained
      | Repair.Degraded _ -> incr degraded
      | Repair.Unplaceable _ -> incr unplaceable)
    outcomes;
  let repaired = !permutation + !spares + !unconstrained in
  Format.printf
    "@[<v>%d arrays of %dx%d at device fault rate %g (line rate %g):@,\
     repaired: %d (permutation %d, spares %d, faults masked %d)@,\
     degraded: %d, unplaceable: %d@,\
     yield with repair: %.1f%%@]@."
    trials rows cols rate line_rate repaired !permutation !spares
    !unconstrained !degraded !unplaceable
    (100. *. float_of_int repaired /. float_of_int (max 1 trials));
  Ok ()

let yield_run trace source (options : Compact.Pipeline.options) defects_file
    rate line_rate spare_rows spare_cols trials seed =
  if rate < 0. || rate > 1. then Error (`Msg "--rate must lie in [0, 1]")
  else if line_rate < 0. || line_rate > 1. then
    Error (`Msg "--line-rate must lie in [0, 1]")
  else if spare_rows < 0 || spare_cols < 0 then
    Error (`Msg "spare counts cannot be negative")
  else
  with_trace trace @@ fun () ->
  let nl = netlist_of_source source in
  match Compact.Pipeline.synthesize ~options nl with
  | exception Compact.Label_mip.Infeasible msg ->
    Error (`Msg ("design constraints are infeasible: " ^ msg))
  | base ->
    Format.printf "%a@." Compact.Report.pp base.report;
    (match defects_file with
     | Some file ->
       Result.bind (defects_of_file file) @@ fun defects ->
       yield_single base nl defects 256 seed
     | None ->
       yield_monte_carlo base nl rate line_rate spare_rows spare_cols trials
         seed options.Compact.Pipeline.jobs)

let yield_cmd =
  let defects =
    Arg.(value & opt (some file) None
         & info [ "d"; "defects" ] ~docv:"FILE"
             ~doc:"Judge one concrete defect map (per-output survival, no \
                   repair) instead of the Monte-Carlo sweep.")
  in
  let rate =
    Arg.(value & opt float 0.02
         & info [ "rate" ] ~docv:"P"
             ~doc:"Per-junction fault probability for random arrays.")
  in
  let line_rate =
    Arg.(value & opt float 0.
         & info [ "line-rate" ] ~docv:"P"
             ~doc:"Per-line broken-wire probability for random arrays.")
  in
  let spare_rows =
    Arg.(value & opt int 1
         & info [ "spare-rows" ] ~docv:"N"
             ~doc:"Spare wordlines added to the random arrays.")
  in
  let spare_cols =
    Arg.(value & opt int 1
         & info [ "spare-cols" ] ~docv:"N" ~doc:"Spare bitlines.")
  in
  let trials =
    Arg.(value & opt int 100
         & info [ "trials" ] ~docv:"N" ~doc:"Random arrays to draw.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")
  in
  let term =
    Term.(
      term_result
        (const yield_run $ trace_term $ source_term $ options_term $ defects
         $ rate $ line_rate $ spare_rows $ spare_cols $ trials $ seed))
  in
  Cmd.v
    (Cmd.info "yield"
       ~doc:"Estimate repair yield over random faulty arrays, or judge one \
             defect map")
    term

(* ------------------------------------------------------------------ *)
(* Variation-aware margin analysis and hardening *)

let spec_term =
  let sigma_on =
    Arg.(value & opt float Crossbar.Variation.default_spec.sigma_on
         & info [ "sigma-on" ] ~docv:"S"
             ~doc:"Lognormal spread (ln-space sigma) of the on-resistance.")
  in
  let sigma_off =
    Arg.(value & opt float Crossbar.Variation.default_spec.sigma_off
         & info [ "sigma-off" ] ~docv:"S"
             ~doc:"Lognormal spread of the off-resistance.")
  in
  let wire_r =
    Arg.(value & opt float 0.
         & info [ "wire-r" ] ~docv:"OHM"
             ~doc:"Nanowire resistance per segment between adjacent \
                   crossings; > 0 switches to the distributed wire model.")
  in
  let drift =
    Arg.(value & opt float 1.
         & info [ "drift" ] ~docv:"X"
             ~doc:"Deterministic multiplier on the on-resistance modelling \
                   state drift.")
  in
  let make sigma_on sigma_off wire_r drift =
    let s =
      { Crossbar.Variation.default_spec with sigma_on; sigma_off;
        drift_on = drift }
    in
    Crossbar.Variation.with_wire ~row:wire_r ~col:wire_r s
  in
  Term.(const make $ sigma_on $ sigma_off $ wire_r $ drift)

let seed_term =
  Arg.(value & opt int Crossbar.Rng.default_seed
       & info [ "seed" ] ~docv:"S" ~doc:"Random seed (deterministic).")

let margin_spec_term =
  Arg.(value & opt float 0.
       & info [ "margin-spec" ] ~docv:"M"
           ~doc:"Required worst-case read margin (v_in-normalised); 0 \
                 means merely functional.")

let json_flag =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Machine output: one JSON line per corner analysis plus \
                 one for the Monte-Carlo yield.")

let margin_run trace source (options : Compact.Pipeline.options) spec seed
    margin_spec mc_trials json =
  with_trace trace @@ fun () ->
  let nl = netlist_of_source source in
  match Compact.Pipeline.synthesize ~options nl with
  | exception Compact.Label_mip.Infeasible msg ->
    Error (`Msg ("design constraints are infeasible: " ^ msg))
  | result ->
    let inputs = nl.Logic.Netlist.inputs and outputs = nl.Logic.Netlist.outputs in
    let reference = Logic.Netlist.eval_point nl in
    let corners =
      Crossbar.Margin.corners ~seed ~spec result.design ~inputs ~reference
        ~outputs
    in
    let mc =
      if mc_trials <= 0 then None
      else
        Some
          (Crossbar.Margin.monte_carlo ~seed ~max_trials:mc_trials
             ~margin_spec ~jobs:options.Compact.Pipeline.jobs ~spec
             result.design ~inputs ~reference ~outputs)
    in
    if json then begin
      List.iter
        (fun (c, a) ->
           Format.printf "{\"corner\":\"%s\",\"analysis\":%s}@."
             (Crossbar.Variation.corner_name c)
             (Crossbar.Margin.json_of_analysis a))
        corners;
      Option.iter
        (fun m -> Format.printf "%s@." (Crossbar.Margin.json_of_mc m))
        mc
    end
    else begin
      Format.printf "%a@." Compact.Report.pp result.report;
      List.iter
        (fun (c, a) ->
           Format.printf "corner %-9s %a@."
             (Crossbar.Variation.corner_name c)
             Crossbar.Margin.pp_analysis a)
        corners;
      Format.printf "worst over corners: %+.4f@."
        (Crossbar.Margin.worst_over_corners corners);
      Option.iter (fun m -> Format.printf "%a@." Crossbar.Margin.pp_mc m) mc
    end;
    let worst = Crossbar.Margin.worst_over_corners corners in
    if worst < margin_spec then
      Error
        (`Msg
           (Printf.sprintf "worst corner margin %.4f misses the spec %.4f"
              worst margin_spec))
    else Ok ()

let margin_cmd =
  let mc_trials =
    Arg.(value & opt int 200
         & info [ "mc-trials" ] ~docv:"N"
             ~doc:"Monte-Carlo yield trial budget (0 disables).")
  in
  let term =
    Term.(
      term_result
        (const margin_run $ trace_term $ source_term $ options_term $ spec_term
         $ seed_term $ margin_spec_term $ mc_trials $ json_flag))
  in
  Cmd.v
    (Cmd.info "margin"
       ~doc:"Read-margin corner analysis and Monte-Carlo functional yield \
             under device variation")
    term

let harden_run trace source (options : Compact.Pipeline.options) spec seed
    margin_spec mc_trials grid =
  with_trace trace @@ fun () ->
  let nl = netlist_of_source source in
  let hopts =
    { Compact.Pipeline.default_harden_options with
      spec; seed; margin_spec; mc_trials;
      jobs = options.Compact.Pipeline.jobs }
  in
  match Compact.Pipeline.harden ~options ~hopts nl with
  | exception Compact.Label_mip.Infeasible msg ->
    Error (`Msg ("design constraints are infeasible: " ^ msg))
  | r ->
    Format.printf "%a@." Compact.Report.pp r.hardened_report;
    Format.printf "candidates (worst corner margin):@.";
    List.iter
      (fun (c : Compact.Pipeline.candidate) ->
         Format.printf "  %-30s %+.5f (typical %+.5f)%s@." c.cand_label
           c.cand_worst c.cand_typical
           (if c.cand_label = r.chosen.cand_label then "  <- chosen" else ""))
      r.candidates;
    Option.iter (fun m -> Format.printf "%a@." Crossbar.Margin.pp_mc m) r.mc;
    if grid then Format.printf "%a@." Crossbar.Design.pp r.chosen.cand_design;
    if r.meets_spec then Ok ()
    else begin
      List.iter
        (fun (o, m) ->
           Format.printf "  %-16s worst margin %+.4f misses spec %.4f@." o m
             margin_spec)
        r.failing_outputs;
      Error
        (`Msg
           (Printf.sprintf "%d output(s) miss the margin spec"
              (List.length r.failing_outputs)))
    end

let harden_cmd =
  let mc_trials =
    Arg.(value & opt int 64
         & info [ "mc-trials" ] ~docv:"N"
             ~doc:"Monte-Carlo yield budget on the chosen design (0 \
                   disables).")
  in
  let term =
    Term.(
      term_result
        (const harden_run $ trace_term $ source_term $ options_term $ spec_term
         $ seed_term $ margin_spec_term $ mc_trials $ print_grid))
  in
  Cmd.v
    (Cmd.info "harden"
       ~doc:"Pick the synthesis variant and line placement maximising the \
             worst-case read margin")
    term

(* ------------------------------------------------------------------ *)

let experiments_run trace quick targets =
  with_trace trace @@ fun () ->
  let config =
    if quick then Harness.Experiments.quick_config
    else Harness.Experiments.default_config
  in
  (match targets with
   | [] -> Harness.Experiments.run_all config
   | ts ->
     List.iter
       (fun t ->
          match t with
          | "table1" -> ignore (Harness.Experiments.table1 config)
          | "table2" -> ignore (Harness.Experiments.table2 config)
          | "table3" -> ignore (Harness.Experiments.table3 config)
          | "table4" -> ignore (Harness.Experiments.table4 config)
          | "fig9" -> ignore (Harness.Experiments.fig9 config)
          | "fig10" -> ignore (Harness.Experiments.fig10 config)
          | "fig11" -> ignore (Harness.Experiments.fig11 config)
          | "fig12" -> ignore (Harness.Experiments.fig12 config)
          | "fig13" -> ignore (Harness.Experiments.fig13 config)
          | "robustness" -> ignore (Harness.Experiments.robustness config)
          | "variation" -> ignore (Harness.Experiments.variation config)
          | t -> Format.printf "unknown experiment %s@." t)
       ts);
  Ok ()

let experiments_cmd =
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Tight limits.") in
  let targets =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")
  in
  let term =
    Term.(term_result (const experiments_run $ trace_term $ quick $ targets))
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures (same as bench/main.exe)")
    term

(* ------------------------------------------------------------------ *)
(* Profiling: synthesize once with tracing forced on and fold the
   span log into a per-phase time/allocation table. *)

let profile_run source options =
  let nl = netlist_of_source source in
  Obs.set_enabled true;
  Obs.reset ();
  match Compact.Pipeline.synthesize ~options nl with
  | exception Compact.Label_mip.Infeasible msg ->
    Obs.set_enabled false;
    Error (`Msg ("design constraints are infeasible: " ^ msg))
  | result ->
    let snap = Obs.drain () in
    Obs.set_enabled false;
    Format.printf "%a@.@." Compact.Report.pp result.report;
    let rows = Obs.Agg.phases snap in
    let under_synth (r : Obs.Agg.row) =
      r.r_path = "synthesize"
      || (String.length r.r_path > 11
          && String.sub r.r_path 0 11 = "synthesize/")
    in
    let phase_rows = List.filter under_synth rows in
    let total = result.report.Compact.Report.synthesis_time in
    let mwords w = Printf.sprintf "%.2f" (w /. 1e6) in
    let table_rows =
      List.map
        (fun (r : Obs.Agg.row) ->
           let depth =
             List.length (String.split_on_char '/' r.r_path) - 1
           in
           [ String.make (2 * depth) ' ' ^ r.r_name;
             string_of_int r.r_count;
             Printf.sprintf "%.4f" r.r_total;
             Harness.Table.fmt_pct
               (if total > 0. then r.r_total /. total else 0.);
             mwords r.r_minor_words;
             mwords r.r_major_words ])
        phase_rows
    in
    Harness.Table.print
      ~title:(Printf.sprintf "profile: %s" result.report.circuit)
      ~columns:
        [ "phase", Harness.Table.L; "calls", Harness.Table.R;
          "time(s)", Harness.Table.R; "share", Harness.Table.R;
          "minor Mw", Harness.Table.R; "major Mw", Harness.Table.R ]
      table_rows;
    (* The top-level stages partition the synthesize span, so their sum
       should track the report's synthesis time (small residual: report
       construction and inter-stage glue). *)
    let stage_sum =
      List.fold_left
        (fun acc (r : Obs.Agg.row) ->
           if r.r_path = "synthesize" then acc +. r.r_total else acc)
        0. phase_rows
    in
    Format.printf "stage coverage: %.4fs of %.4fs synthesis time (%s)@."
      stage_sum total
      (Harness.Table.fmt_pct (if total > 0. then stage_sum /. total else 0.));
    if snap.Obs.counters <> [] then begin
      let counter_rows =
        List.map
          (fun (name, v) ->
             [ name;
               (if Float.is_integer v then Printf.sprintf "%.0f" v
                else Printf.sprintf "%g" v) ])
          snap.Obs.counters
      in
      Format.printf "@.";
      Harness.Table.print ~title:"counters"
        ~columns:[ "metric", Harness.Table.L; "value", Harness.Table.R ]
        counter_rows
    end;
    Ok ()

(* Replay mode: aggregate an existing JSONL trace (typically a
   flight-recorder dump) into the same per-phase table, no synthesis. *)
let profile_from_run file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error msg -> Error (`Msg msg)
  | contents ->
    (match Obs.Export.parse_jsonl contents with
     | exception Obs.Json.Parse_error msg ->
       Error (`Msg (file ^ ": invalid JSONL trace: " ^ msg))
     | snap ->
       let rows = Obs.Agg.phases snap in
       let total =
         List.fold_left
           (fun acc (r : Obs.Agg.row) ->
              if r.r_path = "" then acc +. r.r_total else acc)
           0. rows
       in
       let mwords w = Printf.sprintf "%.2f" (w /. 1e6) in
       let table_rows =
         List.map
           (fun (r : Obs.Agg.row) ->
              let depth =
                if r.r_path = "" then 0
                else List.length (String.split_on_char '/' r.r_path)
              in
              [ String.make (2 * depth) ' ' ^ r.r_name;
                string_of_int r.r_count;
                Printf.sprintf "%.4f" r.r_total;
                Harness.Table.fmt_pct
                  (if total > 0. then r.r_total /. total else 0.);
                mwords r.r_minor_words;
                mwords r.r_major_words ])
           rows
       in
       Harness.Table.print
         ~title:(Printf.sprintf "profile: %s (replayed)"
                   (Filename.basename file))
         ~columns:
           [ "phase", Harness.Table.L; "calls", Harness.Table.R;
             "time(s)", Harness.Table.R; "share", Harness.Table.R;
             "minor Mw", Harness.Table.R; "major Mw", Harness.Table.R ]
         table_rows;
       Format.printf "%d events, %d distinct phases@."
         (List.length snap.Obs.events) (List.length rows);
       Ok ())

let profile_cmd =
  let from =
    Arg.(value & opt (some file) None
         & info [ "from" ] ~docv:"FILE"
             ~doc:"Aggregate an existing JSONL trace (e.g. a \
                   flight-recorder dump) instead of synthesising.")
  in
  let run from source options =
    match from, source with
    | Some file, None -> profile_from_run file
    | None, Some src -> profile_run src options
    | Some _, Some _ ->
      Error (`Msg "--from conflicts with an input source")
    | None, None ->
      Error (`Msg "give an input source or --from FILE")
  in
  let term =
    Term.(term_result (const run $ from $ source_opt_term $ options_term))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Synthesise with tracing on and print a per-phase time and \
             allocation breakdown (or replay one with --from)")
    term

(* ------------------------------------------------------------------ *)
(* Trace validation: parse a file written by --trace and optionally
   check the Fig-3 stage spans are present. *)

let stage_span_names = [ "bdd-build"; "preprocess"; "labeling"; "mapping" ]

let trace_check_run file expect_stages =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error msg -> Error (`Msg msg)
  | contents ->
    let spans = ref [] and events = ref 0 in
    let record ~kind ~name =
      incr events;
      if kind = "span" then spans := name :: !spans
    in
    (match
       let trimmed = String.trim contents in
       if (not (Filename.check_suffix file ".jsonl"))
          && String.length trimmed > 0 && trimmed.[0] = '{'
       then
         (* Chrome trace_event: names live on the "X" complete events. *)
         match Obs.Json.member "traceEvents" (Obs.Json.parse contents) with
         | Some (Obs.Json.Arr evs) ->
           List.iter
             (fun ev ->
                match
                  Obs.Json.member "ph" ev, Obs.Json.member "name" ev
                with
                | Some (Obs.Json.Str "X"), Some (Obs.Json.Str n) ->
                  record ~kind:"span" ~name:n
                | Some (Obs.Json.Str _), _ -> record ~kind:"other" ~name:""
                | _ -> ())
             evs
         | _ -> raise (Obs.Json.Parse_error "missing traceEvents array")
       else
         List.iter
           (fun line ->
              if String.trim line <> "" then
                let j = Obs.Json.parse line in
                match
                  Obs.Json.member "kind" j, Obs.Json.member "name" j
                with
                | Some (Obs.Json.Str k), Some (Obs.Json.Str n) ->
                  record ~kind:k ~name:n
                | _ ->
                  raise (Obs.Json.Parse_error "event without kind/name"))
           (String.split_on_char '\n' contents)
     with
     | () ->
       Format.printf "%s: valid trace, %d events (%d spans)@." file !events
         (List.length !spans);
       if not expect_stages then Ok ()
       else begin
         match
           List.filter (fun s -> not (List.mem s !spans)) stage_span_names
         with
         | [] ->
           Format.printf "synthesis stage spans present: %s@."
             (String.concat ", " stage_span_names);
           Ok ()
         | missing ->
           Error (`Msg ("missing stage spans: " ^ String.concat ", " missing))
       end
     | exception Obs.Json.Parse_error msg ->
       Error (`Msg (file ^ ": invalid trace: " ^ msg)))

let trace_check_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Trace file written by --trace.")
  in
  let expect_stages =
    Arg.(value & flag
         & info [ "expect-stages" ]
             ~doc:"Fail unless the Fig-3 synthesis stage spans (bdd-build, \
                   preprocess, labeling, mapping) all appear.")
  in
  let term =
    Term.(term_result (const trace_check_run $ file_arg $ expect_stages))
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Parse a --trace output file and verify its structure")
    term

(* ------------------------------------------------------------------ *)
(* compactd: synthesis-as-a-service over a Unix-domain socket. *)

let socket_term ~required:_ =
  Arg.(required
       & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~env:(Cmd.Env.info "COMPACT_SOCKET"
                   ~doc:"Default socket path when $(b,--socket) is absent.")
           ~doc:"Unix-domain socket path of the compactd server.")

let serve_run options socket jobs max_queue request_deadline batch_window
    cache_entries cache_bytes cache_dir fsync journal_ratio drain_deadline
    read_deadline max_pending metrics_file metrics_interval flight_file =
  let engine =
    {
      Server.Engine.defaults = options;
      jobs;
      max_queue;
      request_deadline;
      verify_trials = Server.Engine.default_config.Server.Engine.verify_trials;
      cache_entries;
      cache_bytes;
      cache_dir;
      fsync;
      journal_ratio;
    }
  in
  (* The flight recorder is always armed; "none" opts out of writing
     its dump file. *)
  let flight_path =
    match flight_file with
    | Some "none" -> None
    | Some f -> Some f
    | None -> Some (socket ^ ".flight.jsonl")
  in
  let config =
    { (Server.Sock.default_config ~socket_path:socket) with engine;
      batch_window; drain_deadline; read_deadline; max_pending;
      handle_signals = true; flight_path; metrics_path = metrics_file;
      metrics_interval }
  in
  Printf.eprintf "compactd: serving on %s (jobs=%d%s%s)\n%!" socket jobs
    (match cache_dir with
     | None -> ""
     | Some d -> Printf.sprintf ", cache-dir=%s" d)
    (match flight_path with
     | None -> ""
     | Some f -> Printf.sprintf ", flight-file=%s" f);
  match Server.Sock.serve config with
  | stats ->
    Printf.eprintf
      "compactd: shut down after %d requests (%d solves, %d cache hits, %d \
       recovered)\n%!"
      stats.Server.Engine.served stats.Server.Engine.solves
      stats.Server.Engine.cache.Server.Cache.hits
      stats.Server.Engine.recovered;
    Ok ()
  | exception Server.Sock.Busy msg -> Error (`Msg msg)

let serve_cmd =
  let max_queue =
    Arg.(value & opt int 64
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Admission control: synth requests beyond $(docv) in one \
                   batch are rejected with an overload error.")
  in
  let request_deadline =
    Arg.(value & opt float 30.
         & info [ "request-deadline" ] ~docv:"SEC"
             ~doc:"Per-request budget covering parse, BDD build, solve and \
                   verify.")
  in
  let batch_window =
    Arg.(value & opt float 0.02
         & info [ "batch-window" ] ~docv:"SEC"
             ~doc:"How long the server waits for more requests before \
                   flushing a batch to the domain pool.")
  in
  let cache_entries =
    Arg.(value & opt int 512
         & info [ "cache-entries" ] ~docv:"N"
             ~doc:"Design cache capacity in entries (LRU beyond this).")
  in
  let cache_bytes =
    Arg.(value & opt int (16 * 1024 * 1024)
         & info [ "cache-bytes" ] ~docv:"B"
             ~doc:"Design cache capacity in payload bytes.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~env:(Cmd.Env.info "COMPACT_CACHE_DIR"
                     ~doc:"Default cache directory when $(b,--cache-dir) \
                           is absent.")
             ~doc:"Persist the design cache in $(docv) (checksummed \
                   snapshot + append-only journal). On restart the cache \
                   is recovered — torn or corrupt tails are truncated and \
                   damaged entries dropped, never served. Omit for a \
                   memory-only cache.")
  in
  let fsync =
    Arg.(value & flag
         & info [ "fsync" ]
             ~doc:"fsync the journal after every append (survives power \
                   loss, not just process crash; slower hit path).")
  in
  let journal_ratio =
    Arg.(value & opt float 4.
         & info [ "journal-ratio" ] ~docv:"R"
             ~doc:"Compact the journal into a fresh snapshot once it \
                   outgrows $(docv) times the snapshot size.")
  in
  let drain_deadline =
    Arg.(value & opt float 5.
         & info [ "drain-deadline" ] ~docv:"SEC"
             ~doc:"On SIGTERM/SIGINT, how long in-flight requests may \
                   keep finishing before the rest are shed with \
                   retry-after and the server exits.")
  in
  let read_deadline =
    Arg.(value & opt float 10.
         & info [ "read-deadline" ] ~docv:"SEC"
             ~doc:"Close a connection that sits on a half-sent request \
                   line longer than $(docv) seconds (slowloris guard).")
  in
  let max_pending =
    Arg.(value & opt int 256
         & info [ "max-pending" ] ~docv:"N"
             ~doc:"Queued request lines beyond $(docv) are shed with a \
                   structured retry-after error.")
  in
  let metrics_file =
    Arg.(value & opt (some string) None
         & info [ "metrics-file" ] ~docv:"FILE"
             ~doc:"Atomically rewrite a Prometheus text-exposition \
                   snapshot of every registered metric to $(docv) every \
                   $(b,--metrics-interval) seconds (and once at exit).")
  in
  let metrics_interval =
    Arg.(value & opt float 5.
         & info [ "metrics-interval" ] ~docv:"SEC"
             ~doc:"Seconds between $(b,--metrics-file) snapshots.")
  in
  let flight_file =
    Arg.(value & opt (some string) None
         & info [ "flight-file" ] ~docv:"FILE"
             ~doc:"Where the flight-recorder ring is dumped (JSONL) on \
                   SIGUSR1, on graceful drain, and on a fatal engine \
                   error. Defaults to SOCKET.flight.jsonl; pass \
                   $(b,none) to disable the dump file.")
  in
  let term =
    Term.(
      term_result
        (const serve_run $ options_term $ socket_term ~required:true
         $ jobs_term $ max_queue $ request_deadline $ batch_window
         $ cache_entries $ cache_bytes $ cache_dir $ fsync $ journal_ratio
         $ drain_deadline $ read_deadline $ max_pending $ metrics_file
         $ metrics_interval $ flight_file))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run compactd: a JSONL synthesis server with a design cache")
    term

let client_run socket expr lines =
  let lines =
    List.mapi
      (fun i e ->
         Obs.Json.to_string
           (Obs.Json.Obj
              [
                "op", Obs.Json.Str "synth";
                "id", Obs.Json.Num (float_of_int (i + 1));
                "expr", Obs.Json.Str e;
              ]))
      expr
    @ lines
  in
  if lines = [] then Error (`Msg "give -e EXPR or raw JSONL request lines")
  else begin
    match Server.Client.connect socket with
    | client ->
      List.iter
        (fun line ->
           print_endline (Server.Client.request_idempotent client line))
        lines;
      Server.Client.close client;
      Ok ()
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (`Msg
           (Printf.sprintf "cannot reach compactd at %s: %s" socket
              (Unix.error_message err)))
  end

let client_cmd =
  let expr =
    Arg.(value & opt_all string []
         & info [ "e"; "expr" ] ~docv:"EXPR"
             ~doc:"Synthesise $(docv) (repeatable; wrapped in a synth \
                   request).")
  in
  let lines =
    Arg.(value & pos_all string []
         & info [] ~docv:"LINE"
             ~doc:"Raw JSONL request lines sent verbatim (e.g. \
                   '{\"op\":\"stats\"}').")
  in
  let term =
    Term.(
      term_result
        (const client_run $ socket_term ~required:true $ expr $ lines))
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Send requests to a running compactd server")
    term

(* One metrics (or health) round trip: connect, ask, render. Prometheus
   rendering happens client-side from the JSON reply — the wire stays
   one-line JSONL either way. *)
let metrics_fetch socket ~health ~prometheus =
  match Server.Client.connect socket with
  | client ->
    let op = if health then "health" else "metrics" in
    let line =
      Obs.Json.to_string
        (Obs.Json.Obj
           [ "op", Obs.Json.Str op; "id", Obs.Json.Str "cli" ])
    in
    let reply = Server.Client.request_idempotent client line in
    Server.Client.close client;
    (match Obs.Json.parse reply with
     | exception Obs.Json.Parse_error msg ->
       Error (`Msg (Printf.sprintf "malformed %s reply: %s" op msg))
     | j ->
       (match Obs.Json.member "ok" j with
        | Some (Obs.Json.Bool true) ->
          if prometheus && not health then
            match Obs.Metrics.of_json j with
            | Some view -> Ok (Obs.Metrics.prometheus view)
            | None ->
              Error (`Msg ("metrics reply missing sections: " ^ reply))
          else Ok reply
        | _ -> Error (`Msg (Printf.sprintf "server refused %s: %s" op reply))))
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (`Msg
         (Printf.sprintf "cannot reach compactd at %s: %s" socket
            (Unix.error_message err)))

let metrics_run socket health prometheus watch =
  match watch with
  | None ->
    Result.map print_string
      (Result.map (fun s -> if String.length s > 0
                            && s.[String.length s - 1] = '\n'
                            then s else s ^ "\n")
         (metrics_fetch socket ~health ~prometheus))
  | Some interval ->
    if interval <= 0. then Error (`Msg "--watch SEC must be positive")
    else begin
      (* Watch mode keeps polling through transient failures (a
         restarting server) and only stops on ctrl-C. *)
      let rec loop () =
        (match metrics_fetch socket ~health ~prometheus with
         | Ok s ->
           print_string s;
           if not (String.length s > 0 && s.[String.length s - 1] = '\n')
           then print_newline ();
           flush stdout
         | Error (`Msg m) -> Printf.eprintf "metrics: %s\n%!" m);
        Unix.sleepf interval;
        loop ()
      in
      loop ()
    end

let metrics_cmd =
  let health =
    Arg.(value & flag
         & info [ "health" ]
             ~doc:"Ask for the $(b,health) summary (uptime, drain state, \
                   in-flight count, cache recovery) instead of the full \
                   metrics snapshot.")
  in
  let prometheus =
    Arg.(value & flag
         & info [ "prometheus" ]
             ~doc:"Render the snapshot as Prometheus text exposition \
                   instead of raw JSON.")
  in
  let watch =
    Arg.(value & opt (some float) None
         & info [ "watch" ] ~docv:"SEC"
             ~doc:"Keep polling every $(docv) seconds until interrupted.")
  in
  let term =
    Term.(
      term_result
        (const metrics_run $ socket_term ~required:true $ health
         $ prometheus $ watch))
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Fetch the live metrics (or health) snapshot from a running \
             compactd server")
    term

let loadgen_run socket requests hot_frac seed out no_retry =
  match
    Server.Loadgen.run ~seed ~requests ~hot_frac ~retry:(not no_retry)
      ~socket ()
  with
  | result ->
    Format.printf "%a@." Server.Loadgen.pp result;
    (match out with
     | None -> ()
     | Some file ->
       let doc =
         Server.Loadgen.json_of_result ~seed ~hot:4 ~hot_frac result
       in
       let oc = open_out file in
       output_string oc doc;
       output_char oc '\n';
       close_out oc;
       Printf.eprintf "loadgen: wrote %s\n%!" file);
    Ok ()
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (`Msg
         (Printf.sprintf "loadgen against %s failed: %s" socket
            (Unix.error_message err)))

let loadgen_cmd =
  let requests =
    Arg.(value & opt int 200
         & info [ "n"; "requests" ] ~docv:"N" ~doc:"Requests to issue.")
  in
  let hot_frac =
    Arg.(value & opt float 0.4
         & info [ "hot-frac" ] ~docv:"F"
             ~doc:"Fraction of requests drawn from the fixed hot set \
                   (repeat traffic).")
  in
  let seed =
    Arg.(value & opt int Crossbar.Rng.default_seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the benchmark document (BENCH_pr7.json shape) to \
                   $(docv).")
  in
  let no_retry =
    Arg.(value & flag
         & info [ "no-retry" ]
             ~doc:"Disable idempotent replay: a dropped connection or shed \
                   request fails instead of being retried.")
  in
  let term =
    Term.(
      term_result
        (const loadgen_run $ socket_term ~required:true $ requests
         $ hot_frac $ seed $ out $ no_retry))
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a seeded mixed workload against compactd and report \
             throughput, latency and cache behaviour")
    term

(* ------------------------------------------------------------------ *)

let () =
  (* COMPACT_INJECT arms the deterministic fault-injection points for
     chaos runs; a malformed value must not silently run un-armed. *)
  (match Resilience.Inject.configure_from_env () with
   | Ok () -> ()
   | Error msg ->
     Printf.eprintf "compact: %s\n%!" msg;
     exit 2);
  let doc =
    "COMPACT: flow-based computing on nanoscale crossbars with minimal \
     semiperimeter"
  in
  let info = Cmd.info "compact" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ synth_cmd; sweep_cmd; validate_cmd; repair_cmd; yield_cmd;
            margin_cmd; harden_cmd; profile_cmd; trace_check_cmd; suite_cmd;
            export_cmd; experiments_cmd; serve_cmd; client_cmd;
            metrics_cmd; loadgen_cmd ]))
