(* Fault injection and Monte-Carlo yield.

   Memristive junctions suffer permanent stuck-at faults; a single
   stuck-on device can open a spurious sneak path and corrupt the
   function. This example synthesises a 4-bit comparator crossbar,
   demonstrates one targeted fault, then sweeps the device-fault rate and
   reports the manufacturing yield at each point.

     dune exec examples/fault_injection.exe *)

let () =
  let netlist = Circuits.Arith.comparator ~bits:4 () in
  let result = Compact.Pipeline.synthesize netlist in
  Format.printf "%a@.@." Compact.Report.pp result.report;
  let reference = Logic.Netlist.eval_point netlist in
  let inputs = netlist.Logic.Netlist.inputs in
  let outputs = netlist.Logic.Netlist.outputs in

  (* A single stuck-on fault at a programmed junction usually breaks the
     function — find one such junction and show it. *)
  let first_junction = ref None in
  Crossbar.Design.iter_programmed result.design (fun row col lit ->
      if !first_junction = None && Crossbar.Literal.variable lit <> None then
        first_junction := Some (row, col));
  (match !first_junction with
   | None -> ()
   | Some (row, col) ->
     let faulty =
       Crossbar.Fault.inject result.design
         [ Crossbar.Fault.Stuck_on (row, col) ]
     in
     let ok =
       Crossbar.Fault.still_correct faulty ~inputs ~reference ~outputs
     in
     Format.printf
       "single stuck-on fault at junction (%d, %d): design %s@.@." row col
       (if ok then "still correct (fault masked)" else "now incorrect"));

  (* Yield sweep. *)
  Format.printf "Monte-Carlo yield vs device-fault rate:@.";
  List.iter
    (fun rate ->
       let report =
         Crossbar.Fault.yield ~seed:1 ~trials:60 ~rate result.design ~inputs
           ~reference ~outputs
       in
       Format.printf "  rate %5.2f%%: %a@." (100. *. rate)
         Crossbar.Fault.pp_yield report)
    [ 0.0; 0.001; 0.005; 0.01; 0.02; 0.05 ];

  (* Repair: the same design placed onto a concrete faulty array. The
     fault-oblivious placement breaks, the repair ladder recovers it. *)
  Format.printf "@.Defect-aware repair on a faulty %dx%d array:@."
    (Crossbar.Design.rows result.design + 1)
    (Crossbar.Design.cols result.design + 1);
  let target = ref None in
  Crossbar.Design.iter_programmed result.design (fun row col lit ->
      if !target = None && not (Crossbar.Literal.equal lit Crossbar.Literal.On)
      then target := Some (row, col));
  let row, col = Option.get !target in
  let map =
    Crossbar.Defect_map.create
      ~rows:(Crossbar.Design.rows result.design + 1)
      ~cols:(Crossbar.Design.cols result.design + 1)
      ~spare_rows:1 ~spare_cols:1
      [ Crossbar.Fault.Stuck_off (row, col) ]
  in
  Format.printf "array: %a@." Crossbar.Defect_map.pp map;
  let rep =
    Compact.Repair.run ~defects:map ~inputs ~outputs ~reference result.design
  in
  Format.printf "%a@." Compact.Repair.pp rep
