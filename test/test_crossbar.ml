(* Tests for the crossbar model: literals, designs, digital sneak-path
   evaluation, functional verification and the analog solver. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* The paper's Fig 2 crossbar for f = (a & b) | c, built by hand:
     row 0 (output) - col 0: !a   col 1: a
     row 1          - col 0: !b   col 1: 1 (fuse)
     row 2 (input)  - col 0: c    col 1: b *)
let fig2_design () =
  let d =
    Crossbar.Design.create ~rows:3 ~cols:2 ~input:(Crossbar.Design.Row 2)
      ~outputs:[ "f", Crossbar.Design.Row 0 ]
  in
  Crossbar.Design.set d ~row:0 ~col:0 (Crossbar.Literal.Neg "a");
  Crossbar.Design.set d ~row:0 ~col:1 (Crossbar.Literal.Pos "a");
  Crossbar.Design.set d ~row:1 ~col:0 (Crossbar.Literal.Neg "b");
  Crossbar.Design.set d ~row:1 ~col:1 Crossbar.Literal.On;
  Crossbar.Design.set d ~row:2 ~col:0 (Crossbar.Literal.Pos "c");
  Crossbar.Design.set d ~row:2 ~col:1 (Crossbar.Literal.Pos "b");
  d

let fig2_reference =
  lazy
    (Logic.Truth_table.of_exprs ~inputs:[ "a"; "b"; "c" ]
       [ "f", Logic.Parse.expr "(a & b) | c" ])

let literal_tests =
  [
    Alcotest.test_case "conducts" `Quick (fun () ->
        let env v = v = "a" in
        check tb "On" true (Crossbar.Literal.conducts Crossbar.Literal.On env);
        check tb "Off" false (Crossbar.Literal.conducts Crossbar.Literal.Off env);
        check tb "Pos a" true (Crossbar.Literal.conducts (Crossbar.Literal.Pos "a") env);
        check tb "Neg a" false (Crossbar.Literal.conducts (Crossbar.Literal.Neg "a") env);
        check tb "Pos b" false (Crossbar.Literal.conducts (Crossbar.Literal.Pos "b") env));
    Alcotest.test_case "negate" `Quick (fun () ->
        check tb "neg pos" true
          (Crossbar.Literal.negate (Crossbar.Literal.Pos "x")
           = Crossbar.Literal.Neg "x");
        check tb "neg on" true
          (Crossbar.Literal.negate Crossbar.Literal.On = Crossbar.Literal.Off));
    Alcotest.test_case "to_string" `Quick (fun () ->
        check Alcotest.string "neg" "!a"
          (Crossbar.Literal.to_string (Crossbar.Literal.Neg "a"));
        check Alcotest.string "on" "1"
          (Crossbar.Literal.to_string Crossbar.Literal.On));
  ]

let design_tests =
  [
    Alcotest.test_case "metrics" `Quick (fun () ->
        let d = fig2_design () in
        check ti "rows" 3 (Crossbar.Design.rows d);
        check ti "cols" 2 (Crossbar.Design.cols d);
        check ti "S" 5 (Crossbar.Design.semiperimeter d);
        check ti "D" 3 (Crossbar.Design.max_dimension d);
        check ti "area" 6 (Crossbar.Design.area d);
        check ti "programmed" 6 (Crossbar.Design.num_programmed d);
        check ti "literals" 5 (Crossbar.Design.num_literal_junctions d);
        check ti "fuses" 1 (Crossbar.Design.num_on_junctions d);
        check ti "delay" 4 (Crossbar.Design.delay_steps d));
    Alcotest.test_case "unset junction reads Off" `Quick (fun () ->
        let d =
          Crossbar.Design.create ~rows:2 ~cols:2 ~input:(Crossbar.Design.Row 1)
            ~outputs:[]
        in
        check tb "off" true
          (Crossbar.Design.get d ~row:0 ~col:0 = Crossbar.Literal.Off));
    Alcotest.test_case "setting Off erases" `Quick (fun () ->
        let d = fig2_design () in
        Crossbar.Design.set d ~row:1 ~col:1 Crossbar.Literal.Off;
        check ti "programmed" 5 (Crossbar.Design.num_programmed d));
    Alcotest.test_case "variables sorted" `Quick (fun () ->
        check Alcotest.(list string) "vars" [ "a"; "b"; "c" ]
          (Crossbar.Design.variables (fig2_design ())));
    Alcotest.test_case "out-of-range ports rejected" `Quick (fun () ->
        check tb "raises" true
          (match
             Crossbar.Design.create ~rows:2 ~cols:2
               ~input:(Crossbar.Design.Row 5) ~outputs:[]
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "iter_programmed row-major and complete" `Quick
      (fun () ->
         let d = fig2_design () in
         let cells = ref [] in
         Crossbar.Design.iter_programmed d (fun i j _ -> cells := (i, j) :: !cells);
         let cells = List.rev !cells in
         check ti "count" 6 (List.length cells);
         check tb "sorted" true (List.sort compare cells = cells));
  ]

let eval_tests =
  [
    Alcotest.test_case "fig2 crossbar computes (a & b) | c" `Quick (fun () ->
        match
          Crossbar.Verify.against_table (fig2_design ())
            ~reference:(Lazy.force fig2_reference)
        with
        | Crossbar.Verify.Ok -> ()
        | Crossbar.Verify.Failed cex ->
          Alcotest.failf "%a" Crossbar.Verify.pp_counterexample cex);
    Alcotest.test_case "reachable_wires from the input" `Quick (fun () ->
        let d = fig2_design () in
        (* a=1 b=1 c=0: path IN(row2) -col1(b)- row1 -fuse- ... *)
        let rows, cols = Crossbar.Eval.reachable_wires d (fun v -> v <> "c") in
        check tb "row2" true rows.(2);
        check tb "col1 via b" true cols.(1);
        check tb "row0 via a" true rows.(0);
        (* every junction on column 0 (!a, !b, c) is off here *)
        check tb "col0 unreached" false cols.(0));
    Alcotest.test_case "no stray conduction" `Quick (fun () ->
        let d = fig2_design () in
        (* a=1, b=0, c=0: f must be 0. *)
        let out = Crossbar.Eval.evaluate d (fun v -> v = "a") in
        check tb "f" false (List.assoc "f" out));
    Alcotest.test_case "column ports work" `Quick (fun () ->
        (* 1x1 crossbar: input row 0, output col 0, junction x. *)
        let d =
          Crossbar.Design.create ~rows:1 ~cols:1 ~input:(Crossbar.Design.Row 0)
            ~outputs:[ "f", Crossbar.Design.Col 0 ]
        in
        Crossbar.Design.set d ~row:0 ~col:0 (Crossbar.Literal.Pos "x");
        check tb "on" true
          (List.assoc "f" (Crossbar.Eval.evaluate d (fun _ -> true)));
        check tb "off" false
          (List.assoc "f" (Crossbar.Eval.evaluate d (fun _ -> false))));
    Alcotest.test_case "evaluator closure agrees with evaluate" `Quick
      (fun () ->
         let d = fig2_design () in
         let eval = Crossbar.Eval.evaluator d in
         for bits = 0 to 7 do
           let env v =
             match v with
             | "a" -> bits land 1 <> 0
             | "b" -> bits land 2 <> 0
             | _ -> bits land 4 <> 0
           in
           check tb "agree" true (eval env = Crossbar.Eval.evaluate d env)
         done);
    Alcotest.test_case "evaluate_point positional" `Quick (fun () ->
        let d = fig2_design () in
        let out =
          Crossbar.Eval.evaluate_point d ~input_names:[ "a"; "b"; "c" ]
            [| true; true; false |]
        in
        check tb "f" true out.(0));
  ]

let verify_tests =
  [
    Alcotest.test_case "a corrupted design is caught" `Quick (fun () ->
        let d = fig2_design () in
        (* Break it: stuck-on junction creates a sneak path. *)
        Crossbar.Design.set d ~row:2 ~col:0 Crossbar.Literal.On;
        (match
           Crossbar.Verify.against_table d ~reference:(Lazy.force fig2_reference)
         with
         | Crossbar.Verify.Ok -> Alcotest.fail "should have failed"
         | Crossbar.Verify.Failed cex ->
           check Alcotest.string "output" "f" cex.output;
           check tb "direction" true (cex.got && not cex.expected)));
    Alcotest.test_case "random verification catches the same bug" `Quick
      (fun () ->
         let d = fig2_design () in
         Crossbar.Design.set d ~row:2 ~col:0 Crossbar.Literal.On;
         let reference point =
           [| (point.(0) && point.(1)) || point.(2) |]
         in
         match
           Crossbar.Verify.random ~trials:200 d ~inputs:[ "a"; "b"; "c" ]
             ~reference ~outputs:[ "f" ]
         with
         | Crossbar.Verify.Ok -> Alcotest.fail "should have failed"
         | Crossbar.Verify.Failed _ -> ());
    Alcotest.test_case "foreign design variable rejected" `Quick (fun () ->
        let d = fig2_design () in
        Crossbar.Design.set d ~row:0 ~col:0 (Crossbar.Literal.Pos "zz");
        check tb "raises" true
          (match
             Crossbar.Verify.against_table d
               ~reference:(Lazy.force fig2_reference)
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

let analog_tests =
  [
    Alcotest.test_case "single conducting path divides correctly" `Quick
      (fun () ->
         (* IN(row1) -On- col0 -On- row0(out): 2 memristors in series with
            the sensing resistor: v_out = Rs / (Rs + 2*Ron). *)
         let d =
           Crossbar.Design.create ~rows:2 ~cols:1
             ~input:(Crossbar.Design.Row 1)
             ~outputs:[ "f", Crossbar.Design.Row 0 ]
         in
         Crossbar.Design.set d ~row:1 ~col:0 Crossbar.Literal.On;
         Crossbar.Design.set d ~row:0 ~col:0 Crossbar.Literal.On;
         let p = Crossbar.Analog.default_params in
         let sol = Crossbar.Analog.solve ~params:p d (fun _ -> false) in
         let expected = p.r_sense /. (p.r_sense +. (2. *. p.r_on)) in
         check (Alcotest.float 1e-3) "v_out" expected sol.v_rows.(0));
    Alcotest.test_case "blocked path stays near ground" `Quick (fun () ->
        let d =
          Crossbar.Design.create ~rows:2 ~cols:1
            ~input:(Crossbar.Design.Row 1)
            ~outputs:[ "f", Crossbar.Design.Row 0 ]
        in
        Crossbar.Design.set d ~row:1 ~col:0 Crossbar.Literal.On;
        Crossbar.Design.set d ~row:0 ~col:0 (Crossbar.Literal.Pos "x");
        let outputs =
          Crossbar.Analog.read_outputs d (fun _ -> false)
        in
        (match outputs with
         | [ ("f", logic, v) ] ->
           check tb "logic 0" false logic;
           check tb "tiny voltage" true (v < 0.001)
         | _ -> Alcotest.fail "one output expected"));
    Alcotest.test_case "fig2 analog agrees with digital everywhere" `Quick
      (fun () ->
         check tb "agrees" true
           (Crossbar.Analog.agrees_with_digital ~trials:32 (fig2_design ())));
    Alcotest.test_case "solver converges" `Quick (fun () ->
        let sol = Crossbar.Analog.solve (fig2_design ()) (fun _ -> true) in
        check tb "residual" true (sol.residual < 1e-8));
  ]

(* Random designs synthesised from random expressions must keep analog and
   digital evaluation in agreement. *)
let expr_gen =
  let open QCheck2.Gen in
  let var_names = [ "a"; "b"; "c" ] in
  sized @@ fix (fun self n ->
      if n <= 0 then map Logic.Expr.var (oneofl var_names)
      else
        frequency
          [ 1, map Logic.Expr.var (oneofl var_names);
            2, map Logic.Expr.not_ (self (n - 1));
            2, map2 (fun a b -> Logic.Expr.and_ [ a; b ]) (self (n / 2)) (self (n / 2));
            2, map2 (fun a b -> Logic.Expr.or_ [ a; b ]) (self (n / 2)) (self (n / 2)) ])

let property_tests =
  [
    qcheck_case "synthesised designs verify exhaustively" ~count:40 expr_gen
      (fun f ->
         let r = Compact.Pipeline.synthesize_expr ~name:"prop" f in
         let inputs = [ "a"; "b"; "c" ] in
         let reference =
           Logic.Truth_table.of_exprs ~inputs [ "prop_out", f ]
         in
         Crossbar.Verify.against_table r.design ~reference = Crossbar.Verify.Ok);
    qcheck_case "analog agrees with digital on synthesised designs"
      ~count:15 expr_gen
      (fun f ->
         let r = Compact.Pipeline.synthesize_expr ~name:"prop" f in
         Crossbar.Analog.agrees_with_digital ~trials:8 r.design);
    qcheck_case "nominal deviations leave the analog/digital agreement"
      ~count:10 expr_gen
      (fun f ->
         let r = Compact.Pipeline.synthesize_expr ~name:"prop" f in
         let deviations =
           Crossbar.Analog.ideal
             ~rows:(Crossbar.Design.rows r.design)
             ~cols:(Crossbar.Design.cols r.design)
         in
         Crossbar.Analog.agrees_with_digital ~deviations ~trials:8 r.design);
  ]

let fault_tests =
  [
    Alcotest.test_case "inject does not mutate the original" `Quick
      (fun () ->
         let d = fig2_design () in
         let before = Crossbar.Design.num_programmed d in
         let _faulty =
           Crossbar.Fault.inject d [ Crossbar.Fault.Stuck_off (0, 0) ]
         in
         check ti "unchanged" before (Crossbar.Design.num_programmed d));
    Alcotest.test_case "stuck-off removes the device" `Quick (fun () ->
        let d = fig2_design () in
        let faulty =
          Crossbar.Fault.inject d [ Crossbar.Fault.Stuck_off (2, 0) ]
        in
        check tb "off" true
          (Crossbar.Design.get faulty ~row:2 ~col:0 = Crossbar.Literal.Off));
    Alcotest.test_case "stuck-off on the c junction kills c-paths" `Quick
      (fun () ->
         (* f = (a & b) | c with the c junction dead behaves as a & b. *)
         let faulty =
           Crossbar.Fault.inject (fig2_design ())
             [ Crossbar.Fault.Stuck_off (2, 0) ]
         in
         let env v = v = "c" in
         check tb "c alone no longer conducts" false
           (List.assoc "f" (Crossbar.Eval.evaluate faulty env));
         let env v = v = "a" || v = "b" in
         check tb "a & b still works" true
           (List.assoc "f" (Crossbar.Eval.evaluate faulty env)));
    Alcotest.test_case "rate zero injects nothing" `Quick (fun () ->
        check ti "none" 0
          (List.length
             (Crossbar.Fault.random_faults ~rate:0. (fig2_design ()))));
    Alcotest.test_case "rate one faults every programmed device" `Quick
      (fun () ->
         let d = fig2_design () in
         let programmed_faults =
           List.filter
             (fun f ->
                match f with
                | Crossbar.Fault.Stuck_on (r, c)
                | Crossbar.Fault.Stuck_off (r, c) ->
                  not
                    (Crossbar.Literal.equal
                       (Crossbar.Design.get d ~row:r ~col:c)
                       Crossbar.Literal.Off))
             (Crossbar.Fault.random_faults ~rate:1. d)
         in
         check ti "all sites" (Crossbar.Design.num_programmed d)
           (List.length programmed_faults));
    Alcotest.test_case "bad rate rejected" `Quick (fun () ->
        check tb "raises" true
          (match Crossbar.Fault.random_faults ~rate:2. (fig2_design ()) with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "yield is 1 at rate 0 and degrades" `Quick (fun () ->
        let d = fig2_design () in
        let inputs = [ "a"; "b"; "c" ] in
        let reference point = [| (point.(0) && point.(1)) || point.(2) |] in
        let at rate =
          (Crossbar.Fault.yield ~trials:30 ~rate d ~inputs ~reference
             ~outputs:[ "f" ])
            .yield
        in
        check (Alcotest.float 1e-9) "perfect" 1. (at 0.);
        check tb "degrades" true (at 0.5 < 1.));
    Alcotest.test_case "yield is deterministic under a seed" `Quick (fun () ->
        let d = fig2_design () in
        let inputs = [ "a"; "b"; "c" ] in
        let reference point = [| (point.(0) && point.(1)) || point.(2) |] in
        let run seed =
          (Crossbar.Fault.yield ~seed ~trials:40 ~rate:0.25 d ~inputs
             ~reference ~outputs:[ "f" ])
            .yield
        in
        check (Alcotest.float 0.) "same seed" (run 9) (run 9);
        check tb "degraded" true (run 9 < 1.));
  ]

let () =
  Alcotest.run "crossbar"
    [
      "literal", literal_tests;
      "design", design_tests;
      "eval", eval_tests;
      "verify", verify_tests;
      "analog", analog_tests;
      "fault", fault_tests;
      "properties", property_tests;
    ]
