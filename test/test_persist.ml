(* Durable design-cache battery for [Server.Persist].

   The store's one promise: whatever recovery returns is byte-identical
   to something that was appended or snapshotted — a torn, truncated or
   bit-flipped record is dropped and counted, never served.  This file
   attacks that promise mechanically: the journal is truncated at every
   byte boundary, then mutated at 500 seeded byte positions (the
   defect-map parser-fuzz idiom), and recovery is checked after each.

   Run via the @server alias at COMPACT_JOBS=1 and COMPACT_JOBS=4. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

module P = Server.Persist

(* ------------------------------------------------------------------ *)
(* Scratch directories *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "compact-test-persist-%d-%d" (Unix.getpid ())
         !dir_counter)
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
         try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  dir

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let entry i tag =
  ( Printf.sprintf "%s-key-%02d" tag i,
    Printf.sprintf "{\"design\":\"%s-%02d-%s\"}" tag i
      (String.make ((i mod 7) + 5) (Char.chr (Char.code 'a' + (i mod 26))))
  )

(* Every recovered entry must be byte-identical to a written one. *)
let assert_only_written ~label written (r : P.recovery) =
  List.iter
    (fun (k, v) ->
       match List.assoc_opt k written with
       | Some v' when String.equal v v' -> ()
       | Some _ -> Alcotest.failf "%s: corrupt value served for %S" label k
       | None -> Alcotest.failf "%s: unknown key served: %S" label k)
    r.P.entries

(* ------------------------------------------------------------------ *)
(* Basics *)

let basic_tests =
  [
    Alcotest.test_case "crc32 known answer" `Quick (fun () ->
        (* The IEEE 802.3 check value: crc32("123456789"). *)
        check ti "check value" 0xCBF43926 (P.crc32 "123456789");
        check ti "empty string" 0 (P.crc32 ""));
    Alcotest.test_case "journal round-trip preserves order and bytes"
      `Quick (fun () ->
          Resilience.Inject.disable ();
          let dir = fresh_dir () in
          let written = List.init 10 (fun i -> entry i "rt") in
          let p, r0 = P.open_dir dir in
          check ti "fresh dir recovers nothing" 0 (List.length r0.P.entries);
          List.iter (fun (k, v) -> P.append p k v) written;
          P.close p;
          let p2, r = P.open_dir dir in
          P.close p2;
          check tb "entries byte-identical, oldest first" true
            (r.P.entries = written);
          check ti "all from the journal" 10 r.P.from_journal;
          check ti "none dropped" 0 r.P.dropped;
          check ti "nothing truncated" 0 r.P.truncated_bytes);
    Alcotest.test_case "snapshot + journal tail recover in order" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let dir = fresh_dir () in
         let snap = List.init 6 (fun i -> entry i "snap") in
         let tail = List.init 4 (fun i -> entry i "tail") in
         let p, _ = P.open_dir dir in
         List.iter (fun (k, v) -> P.append p k v) snap;
         P.snapshot p snap;
         List.iter (fun (k, v) -> P.append p k v) tail;
         P.close p;
         let p2, r = P.open_dir dir in
         P.close p2;
         check tb "snapshot entries then journal entries" true
           (r.P.entries = snap @ tail);
         check ti "from snapshot" 6 r.P.from_snapshot;
         check ti "from journal" 4 r.P.from_journal;
         check ti "none dropped" 0 r.P.dropped);
    Alcotest.test_case "snapshot resets the journal" `Quick (fun () ->
        Resilience.Inject.disable ();
        let dir = fresh_dir () in
        let written = List.init 8 (fun i -> entry i "rs") in
        let p, _ = P.open_dir dir in
        List.iter (fun (k, v) -> P.append p k v) written;
        let before = P.journal_bytes p in
        P.snapshot p written;
        check tb "journal shrank to its magic" true
          (P.journal_bytes p < before
           && P.journal_bytes p = String.length P.journal_magic);
        check tb "snapshot grew" true (P.snapshot_bytes p > 0);
        P.close p);
    Alcotest.test_case "a stale snapshot.tmp is discarded on open" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let dir = fresh_dir () in
         let p, _ = P.open_dir dir in
         P.append p "k" "v";
         P.close p;
         let tmp = Filename.concat dir "snapshot.tmp" in
         write_file tmp "half a snapshot that never renamed";
         let p2, r = P.open_dir dir in
         P.close p2;
         check tb "tmp removed" false (Sys.file_exists tmp);
         check tb "journal entry survived" true
           (r.P.entries = [ "k", "v" ]));
    Alcotest.test_case "verify rejection drops the entry, scan continues"
      `Quick (fun () ->
          Resilience.Inject.disable ();
          let dir = fresh_dir () in
          let p, _ = P.open_dir dir in
          List.iter (fun (k, v) -> P.append p k v)
            [ "good-1", "a"; "bad", "b"; "good-2", "c" ];
          P.close p;
          let verify k _ = k <> "bad" in
          let p2, r = P.open_dir ~verify dir in
          P.close p2;
          check tb "survivors in order" true
            (r.P.entries = [ "good-1", "a"; "good-2", "c" ]);
          check ti "reject counted as dropped" 1 r.P.dropped;
          (* Framing was intact: nothing needed truncating. *)
          check ti "no truncation" 0 r.P.truncated_bytes);
    Alcotest.test_case "unrecognizable journal is dropped whole" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let dir = fresh_dir () in
         let p, _ = P.open_dir dir in
         P.close p;
         write_file (Filename.concat dir "journal") "GARBAGEGARBAGE";
         let p2, r = P.open_dir dir in
         check ti "nothing recovered" 0 (List.length r.P.entries);
         check ti "counted" 1 r.P.dropped;
         check ti "whole file cut" 14 r.P.truncated_bytes;
         (* The store is usable again: a fresh magic was laid down. *)
         P.append p2 "after" "garbage";
         P.close p2;
         let p3, r3 = P.open_dir dir in
         P.close p3;
         check tb "post-recovery append recovers" true
           (r3.P.entries = [ "after", "garbage" ]));
  ]

(* ------------------------------------------------------------------ *)
(* Torn tails: truncate the journal at every byte boundary.  Recovery
   must admit exactly the records that fit in the prefix, drop the torn
   one, truncate back to the last record boundary — and the store must
   accept appends cleanly afterwards. *)

let truncation_tests =
  [
    Alcotest.test_case "every truncation boundary recovers a clean prefix"
      `Quick (fun () ->
          Resilience.Inject.disable ();
          let dir = fresh_dir () in
          let written = List.init 6 (fun i -> entry i "cut") in
          let p, _ = P.open_dir dir in
          List.iter (fun (k, v) -> P.append p k v) written;
          P.close p;
          let journal = Filename.concat dir "journal" in
          let full = read_file journal in
          let magic = String.length P.journal_magic in
          (* Record boundaries, for deciding how many entries a prefix
             of length [n] should yield. *)
          let boundaries =
            let ends = ref [] and pos = ref magic in
            List.iter
              (fun (k, v) ->
                 pos := !pos + String.length (P.encode_record k v);
                 ends := !pos :: !ends)
              written;
            List.rev !ends
          in
          let expect_entries n =
            List.length (List.filter (fun e -> e <= n) boundaries)
          in
          for n = 0 to String.length full do
            write_file journal (String.sub full 0 n);
            let p2, r = P.open_dir dir in
            assert_only_written ~label:(Printf.sprintf "cut@%d" n) written r;
            let expected = expect_entries n in
            if List.length r.P.entries <> expected then
              Alcotest.failf "cut@%d: recovered %d entries, wanted %d" n
                (List.length r.P.entries) expected;
            check tb
              (Printf.sprintf "cut@%d: prefix of the written list" n)
              true
              (r.P.entries
               = List.filteri (fun i _ -> i < expected) written);
            (* A torn record is reported: anything between two
               boundaries means bytes were cut back. *)
            let on_boundary = n = 0 || n = magic || List.mem n boundaries in
            if (not on_boundary) && r.P.dropped = 0 then
              Alcotest.failf "cut@%d: torn tail not counted" n;
            (* The reopened journal accepts appends on a clean
               boundary: the new record must recover. *)
            P.append p2 "fresh" "post-cut";
            P.close p2;
            let p3, r3 = P.open_dir dir in
            P.close p3;
            (match List.rev r3.P.entries with
             | ("fresh", "post-cut") :: _ -> ()
             | _ -> Alcotest.failf "cut@%d: post-truncation append lost" n);
            check ti
              (Printf.sprintf "cut@%d: prior entries intact" n)
              expected
              (List.length r3.P.entries - 1)
          done);
  ]

(* ------------------------------------------------------------------ *)
(* Seeded byte-mutation fuzz, the defect-map parser idiom: flip one
   seeded byte of the file, recover, and require that nothing corrupt is
   ever served.  A mutation may legally shrink what recovers (CRC
   rejection, framing damage) — it must never change bytes that still
   get served. *)

let mutate_one ~seed s =
  let st = Random.State.make [| 0x9e3779b9; seed |] in
  let b = Bytes.of_string s in
  let pos = Random.State.int st (Bytes.length b) in
  let old = Char.code (Bytes.get b pos) in
  let bit = 1 lsl Random.State.int st 8 in
  Bytes.set b pos (Char.chr (old lxor bit));
  Bytes.to_string b

let fuzz_file ~label ~path ~written ~dir ~mutations =
  let full = read_file path in
  let served_drop = ref 0 in
  for seed = 1 to mutations do
    write_file path (mutate_one ~seed full);
    match P.open_dir dir with
    | exception e ->
      Alcotest.failf "%s seed=%d: recovery raised %s" label seed
        (Printexc.to_string e)
    | p, r ->
      P.close p;
      assert_only_written ~label:(Printf.sprintf "%s seed=%d" label seed)
        written r;
      if List.length r.P.entries < List.length written then
        incr served_drop;
      if List.length r.P.entries < List.length written && r.P.dropped = 0
      then
        (* The only unreported shrink is the journal losing its file
           entirely, which a one-bit flip cannot do. *)
        Alcotest.failf "%s seed=%d: entries lost but dropped=0" label seed
  done;
  (* Sanity on the fuzz itself: a single flipped bit must damage a
     record most of the time — a fuzz that never bites tests nothing. *)
  if !served_drop = 0 then
    Alcotest.failf "%s: no mutation ever dropped an entry" label

let fuzz_tests =
  [
    Alcotest.test_case "500 seeded journal mutations never serve corruption"
      `Quick (fun () ->
          Resilience.Inject.disable ();
          let dir = fresh_dir () in
          let written = List.init 8 (fun i -> entry i "fz") in
          let p, _ = P.open_dir dir in
          List.iter (fun (k, v) -> P.append p k v) written;
          P.close p;
          fuzz_file ~label:"journal-fuzz"
            ~path:(Filename.concat dir "journal")
            ~written ~dir ~mutations:500);
    Alcotest.test_case "snapshot mutations never serve corruption" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let dir = fresh_dir () in
         let written = List.init 8 (fun i -> entry i "sf") in
         let p, _ = P.open_dir dir in
         List.iter (fun (k, v) -> P.append p k v) written;
         P.snapshot p written;
         P.close p;
         (* Remove the journal so only the snapshot is under test; an
            open_dir recreates an empty one each round. *)
         fuzz_file ~label:"snapshot-fuzz"
           ~path:(Filename.concat dir "snapshot")
           ~written ~dir ~mutations:200);
  ]

(* ------------------------------------------------------------------ *)
(* Compaction *)

let compaction_tests =
  [
    Alcotest.test_case "journal outgrowing the snapshot compacts" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let dir = fresh_dir () in
         let p, _ = P.open_dir ~journal_ratio:2. ~compact_floor:256 dir in
         let written = ref [] in
         let compacted = ref false in
         for i = 0 to 63 do
           let k, v = entry i "cp" in
           written := !written @ [ k, v ];
           P.append p k v;
           if P.maybe_compact p (lazy !written) then compacted := true
         done;
         check tb "a compaction ran" true !compacted;
         check tb "snapshot holds the image" true (P.snapshot_bytes p > 0);
         P.close p;
         let p2, r = P.open_dir dir in
         P.close p2;
         check tb "every entry survives compaction" true
           (r.P.entries = !written);
         check ti "none dropped" 0 r.P.dropped);
    Alcotest.test_case "below the floor nothing compacts" `Quick (fun () ->
        Resilience.Inject.disable ();
        let dir = fresh_dir () in
        let p, _ = P.open_dir dir in
        (* default floor: 64 KiB *)
        P.append p "k" "v";
        check tb "not worth compacting" false (P.should_compact p);
        check tb "maybe_compact declines" false
          (P.maybe_compact p (lazy [ "k", "v" ]));
        P.close p);
  ]

(* ------------------------------------------------------------------ *)
(* The injection points themselves: armed disk faults damage writes,
   and recovery reports the damage it drops. *)

let injection_tests =
  [
    Alcotest.test_case "armed disk-corrupt appends are dropped, not served"
      `Quick (fun () ->
          let dir = fresh_dir () in
          let written = List.init 24 (fun i -> entry i "inj") in
          Resilience.Inject.with_points ~seed:3
            [ Resilience.Inject.Disk_corrupt ] (fun () ->
              let p, _ = P.open_dir dir in
              List.iter (fun (k, v) -> P.append p k v) written;
              P.close p);
          Resilience.Inject.disable ();
          let p2, r = P.open_dir dir in
          P.close p2;
          assert_only_written ~label:"disk-corrupt" written r;
          (* The point fires on a quarter of draws: over 24 appends at
             least one record must be damaged and counted. *)
          check tb "some damage landed" true (r.P.dropped >= 1));
    Alcotest.test_case "armed disk-torn-write cuts the tail, prefix survives"
      `Quick (fun () ->
          let dir = fresh_dir () in
          let written = List.init 24 (fun i -> entry i "torn") in
          Resilience.Inject.with_points ~seed:7
            [ Resilience.Inject.Disk_torn_write ] (fun () ->
              let p, _ = P.open_dir dir in
              List.iter (fun (k, v) -> P.append p k v) written;
              P.close p);
          Resilience.Inject.disable ();
          let p2, r = P.open_dir dir in
          P.close p2;
          assert_only_written ~label:"disk-torn" written r;
          check tb "recovered a strict prefix" true
            (List.length r.P.entries < List.length written);
          check tb "the torn record is counted" true (r.P.dropped >= 1);
          check tb "tail bytes were truncated" true
            (r.P.truncated_bytes >= 1));
  ]

let () =
  Alcotest.run "persist"
    [
      "basics", basic_tests;
      "truncation", truncation_tests;
      "fuzz", fuzz_tests;
      "compaction", compaction_tests;
      "injection", injection_tests;
    ]
