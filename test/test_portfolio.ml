(* The portfolio solver's contract: racing is a pure scheduling
   optimisation. The chosen design, labeling and solver path are decided
   by the deterministic staged rule (solver priority, then
   semiperimeter, then order index) — never by wall-clock — so a
   portfolio run is byte-identical at every jobs count and matches its
   winning entrant run alone.

   Run via the @portfolio alias, which executes this binary at
   COMPACT_JOBS=1 and COMPACT_JOBS=4. *)

let check = Alcotest.check
let ts = Alcotest.string
let ti = Alcotest.int
let tb = Alcotest.bool

module Pipeline = Compact.Pipeline
module Report = Compact.Report

let netlist_of_expr name s =
  let e = Logic.Parse.expr s in
  let inputs = Logic.Expr.vars e in
  Logic.Netlist.create ~name ~inputs ~outputs:[ "f" ]
    [ Logic.Netlist.n_expr "f" e ]

let small_nl = netlist_of_expr "pf" "((a & b) | (c & ~d)) ^ (b & ~c) | (e & a)"

(* Canonical bytes of a design: the grid printer covers dimensions,
   programmed cells and port assignment — everything the mapper
   decides. *)
let design_bytes d = Format.asprintf "%a" Crossbar.Design.pp d

let portfolio_options ?(race_orders = 1) jobs =
  { Pipeline.default_options with solver = Portfolio; jobs; race_orders }

let synth ?race_orders jobs nl =
  Pipeline.synthesize ~options:(portfolio_options ?race_orders jobs) nl

let winner_of path =
  match
    List.filter_map
      (fun e ->
         match String.index_opt e '@' with
         | Some i when Filename.check_suffix e ":win" ->
           let rest = String.sub e (i + 1) (String.length e - i - 1) in
           let oi = int_of_string (List.hd (String.split_on_char ':' rest)) in
           Some (String.sub e 0 i, oi)
         | _ -> None)
      path
  with
  | [ w ] -> w
  | ws -> Alcotest.failf "expected exactly one :win entry, got %d" (List.length ws)

let determinism_tests =
  [
    Alcotest.test_case "byte-identical design at jobs=1 and jobs=4" `Quick
      (fun () ->
         let r1 = synth ~race_orders:3 1 small_nl in
         let r4 = synth ~race_orders:3 4 small_nl in
         check ts "design" (design_bytes r1.design) (design_bytes r4.design);
         check (Alcotest.list ts) "solver_path" r1.report.Report.solver_path
           r4.report.Report.solver_path;
         check ti "semiperimeter" r1.report.Report.semiperimeter
           r4.report.Report.semiperimeter);
    Alcotest.test_case "matches the winning entrant run alone" `Quick
      (fun () ->
         (* race_orders = 1: every entrant labels the same graph, so the
            winner's solver run by itself (same build, sequential) must
            reproduce the raced result bit for bit. *)
         let r = synth 4 small_nl in
         let wname, worder = winner_of r.report.Report.solver_path in
         check ti "winner labels the order-0 graph" 0 worder;
         let solver =
           match Pipeline.solver_of_name wname with
           | Some s -> s
           | None -> Alcotest.failf "unknown winner solver %S" wname
         in
         let seq =
           Pipeline.synthesize
             ~options:{ Pipeline.default_options with solver }
             small_nl
         in
         check ts "design" (design_bytes seq.design) (design_bytes r.design));
    Alcotest.test_case "every entrant is recorded with an outcome" `Quick
      (fun () ->
         let r = synth ~race_orders:2 4 small_nl in
         let path = r.report.Report.solver_path in
         check tb "at least the three rungs raced" true
           (List.length path >= 3);
         List.iter
           (fun e ->
              check tb (Printf.sprintf "entry %S is tagged" e) true
                (List.exists
                   (fun t -> Filename.check_suffix e t)
                   [ ":win"; ":ok"; ":partial"; ":error"; ":cut" ]))
           path;
         ignore (winner_of path);
         check ti "retries invariant" (List.length path - 1)
           r.report.Report.solver_retries);
    Alcotest.test_case "verifies functionally" `Quick (fun () ->
        let r = synth ~race_orders:2 4 small_nl in
        check tb "verified" true
          (Crossbar.Verify.auto ~trials:128 r.design
             ~inputs:small_nl.Logic.Netlist.inputs
             ~reference:(Logic.Netlist.eval_point small_nl)
             ~outputs:small_nl.Logic.Netlist.outputs
           = Crossbar.Verify.Ok));
  ]

let pristine_tests =
  [
    Alcotest.test_case "path_pristine classification" `Quick (fun () ->
        let p = Report.path_pristine in
        check tb "single rung" true (p [ "mip" ]);
        check tb "empty" false (p []);
        check tb "watchdog fallback" false (p [ "mip"; "heuristic" ]);
        check tb "clean race" true
          (p [ "mip@0:win"; "mip@1:ok"; "heuristic@0:cut" ]);
        check tb "partial entrant" false
          (p [ "mip@0:partial"; "heuristic@0:win" ]);
        check tb "errored entrant" false
          (p [ "mip@0:error"; "heuristic@0:win" ]));
    Alcotest.test_case "in-budget portfolio runs are pristine" `Quick
      (fun () ->
        let r = synth ~race_orders:2 4 small_nl in
        check tb "pristine" true
          (Report.path_pristine r.report.Report.solver_path))
  ]

(* The server must treat the portfolio like any other solver: identical
   request bytes -> identical response bytes at every engine width, and
   clean raced paths are cacheable. *)
let server_tests =
  let module Engine = Server.Engine in
  let module J = Obs.Json in
  let line =
    {|{"op":"synth","id":1,"expr":"((a & b) | (c & ~d)) ^ (b & ~c)","options":{"solver":"portfolio","race_orders":2}}|}
  in
  [
    Alcotest.test_case "identical responses at engine jobs=1 and jobs=4"
      `Quick (fun () ->
        let r1 =
          Engine.handle (Engine.create Engine.default_config) line
        in
        let r4 =
          Engine.handle
            (Engine.create { Engine.default_config with Engine.jobs = 4 })
            line
        in
        check ts "response" r1 r4);
    Alcotest.test_case "clean raced result is cached" `Quick (fun () ->
        let e = Engine.create Engine.default_config in
        ignore (Engine.handle e line : string);
        let first_solves = (Engine.stats e).Engine.solves in
        let resp = Engine.handle e line in
        check ti "second request does not re-solve" first_solves
          (Engine.stats e).Engine.solves;
        (match J.member "cached" (J.parse resp) with
         | Some (J.Bool b) -> check tb "served from cache" true b
         | _ -> Alcotest.fail "no cached field in response"));
    Alcotest.test_case "race_orders is part of the cache key" `Quick
      (fun () ->
        let line' =
          {|{"op":"synth","id":1,"expr":"((a & b) | (c & ~d)) ^ (b & ~c)","options":{"solver":"portfolio","race_orders":1}}|}
        in
        let e = Engine.create Engine.default_config in
        ignore (Engine.handle e line : string);
        ignore (Engine.handle e line' : string);
        check ti "two distinct solves" 2 (Engine.stats e).Engine.solves);
  ]

let () =
  Alcotest.run "portfolio"
    [
      "determinism", determinism_tests;
      "pristine", pristine_tests;
      "server", server_tests;
    ]
