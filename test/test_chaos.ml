(* Chaos battery: arm each deterministic fault-injection point over
   several seeds and drive the pipeline end-to-end.  The contract under
   test is the resilience layer's only promise: every run ends in a
   verified design or a structured error — never an uncaught exception,
   never a wedged pool, never a silently-wrong result.

   Run via the @chaos alias, which executes this binary at
   COMPACT_JOBS=1 and COMPACT_JOBS=4 so both the sequential and the
   pooled fault surfaces are swept. *)

let check = Alcotest.check
let tb = Alcotest.bool

module Budget = Resilience.Budget
module Inject = Resilience.Inject

let jobs = Parallel.default_jobs ()
let seeds = [ 1; 11; 23 ]

let netlist_of_expr name s =
  let e = Logic.Parse.expr s in
  let inputs = Logic.Expr.vars e in
  Logic.Netlist.create ~name ~inputs ~outputs:[ "f" ]
    [ Logic.Netlist.n_expr "f" e ]

let small_nl = netlist_of_expr "chaos" "((a & b) | (c & ~d)) ^ (b & ~c)"

(* The allowlist: every exception a faulted run may end in.  Anything
   else — Out_of_memory escaping raw, Invalid_argument from a
   half-parsed map, a Stdlib.Failure out of a solver — is a bug. *)
let structured = function
  | Budget.Exhausted _ -> true
  | Compact.Label_mip.Infeasible _ -> true
  | Bdd.Manager.Size_limit _ -> true
  | Crossbar.Defect_map.Parse_error _ -> true
  | Crossbar.Analog.No_convergence _ -> true
  | _ -> false

let run_scenario label f =
  match f () with
  | () -> ()
  | exception e when structured e -> ()
  | exception e ->
    Alcotest.failf "%s: unstructured exception %s" label
      (Printexc.to_string e)

let verify_design nl (r : Compact.Pipeline.result) =
  check tb "produced design verifies" true
    (Crossbar.Verify.auto ~trials:128 r.Compact.Pipeline.design
       ~inputs:nl.Logic.Netlist.inputs
       ~reference:(Logic.Netlist.eval_point nl)
       ~outputs:nl.Logic.Netlist.outputs
     = Crossbar.Verify.Ok)

let options =
  { Compact.Pipeline.default_options with time_limit = 0.5; jobs }

(* A clean design to probe the analog solver with; built once, outside
   any injection window. *)
let clean_design =
  lazy (Compact.Pipeline.synthesize ~options small_nl).Compact.Pipeline.design

let synth_scenario () =
  verify_design small_nl (Compact.Pipeline.synthesize ~options small_nl)

let analog_scenario () =
  ignore
    (Crossbar.Analog.solve (Lazy.force clean_design) (fun v ->
         Hashtbl.hash v land 1 = 0))

let harden_scenario () =
  let hopts =
    { Compact.Pipeline.default_harden_options with mc_trials = 4; jobs }
  in
  let r = Compact.Pipeline.harden ~options ~hopts small_nl in
  verify_design small_nl r.Compact.Pipeline.base

let defect_scenario () =
  let m =
    Crossbar.Defect_map.create ~rows:8 ~cols:7 ~spare_rows:1 ~spare_cols:1
      ~broken_rows:[ 3 ]
      [ Crossbar.Fault.Stuck_on (0, 1); Crossbar.Fault.Stuck_off (4, 2) ]
  in
  (* Truncation strikes inside of_string; any cut must parse or fail
     structurally, and the parsed remainder must stay well-formed. *)
  for _ = 1 to 8 do
    let m' = Crossbar.Defect_map.of_string (Crossbar.Defect_map.to_string m) in
    ignore (Crossbar.Defect_map.faults m')
  done

(* Disk faults strike the persist layer (PR-8): journal appends and
   snapshot writes may be bit-flipped or cut short by the injection
   points.  The contract: the store never raises, and recovery surfaces
   only entries whose bytes are exactly what was written — damage is
   dropped and counted, never served. *)
let persist_dir_counter = ref 0

let fresh_persist_dir () =
  incr persist_dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "compact-chaos-persist-%d-%d" (Unix.getpid ())
         !persist_dir_counter)
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
         try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  dir

let persist_scenario () =
  let module P = Server.Persist in
  let dir = fresh_persist_dir () in
  let value i tag =
    Printf.sprintf "{\"design\":\"%s-%02d-%s\"}" tag i
      (String.make 32 (Char.chr (Char.code 'a' + (i mod 26))))
  in
  let written =
    List.init 8 (fun i -> Printf.sprintf "key-%02d" i, value i "snap")
  in
  let tail =
    List.init 8 (fun i -> Printf.sprintf "tail-%02d" i, value i "jrnl")
  in
  (* Writes run with the disk points armed: some records land damaged. *)
  let p, _ = P.open_dir dir in
  List.iter (fun (k, v) -> P.append p k v) written;
  P.snapshot p written;
  List.iter (fun (k, v) -> P.append p k v) tail;
  P.close p;
  (* Whatever recovery admits must be byte-identical to something that
     was written: a single flipped bit fails the record CRC, a cut
     record breaks the framing — either way the entry drops. *)
  let p2, r = P.open_dir dir in
  P.close p2;
  let expected = written @ tail in
  List.iter
    (fun (k, v) ->
       match List.assoc_opt k expected with
       | Some v' when String.equal v v' -> ()
       | _ -> Alcotest.failf "recovery surfaced a damaged entry %S" k)
    r.P.entries

let scenario_for = function
  | Inject.Timeout -> "synthesize", synth_scenario
  | Inject.Oom -> "synthesize", synth_scenario
  | Inject.Cg_divergence -> "analog-solve", analog_scenario
  | Inject.Pool_poison -> "harden", harden_scenario
  | Inject.Defect_truncate -> "defect-roundtrip", defect_scenario
  | Inject.Disk_torn_write -> "persist-roundtrip", persist_scenario
  | Inject.Disk_corrupt -> "persist-roundtrip", persist_scenario

let point_tests =
  List.concat_map
    (fun point ->
       List.map
         (fun seed ->
            let what, f = scenario_for point in
            let label =
              Printf.sprintf "%s seed=%d (%s, jobs=%d)" (Inject.name point)
                seed what jobs
            in
            Alcotest.test_case label `Quick (fun () ->
                Inject.with_points ~seed [ point ] (fun () ->
                    run_scenario label f)))
         seeds)
    Inject.all

(* Everything armed at once: the pipeline must still settle into a
   verified design or one structured error per run. *)
let all_armed_tests =
  List.map
    (fun seed ->
       let label = Printf.sprintf "all points, seed=%d, jobs=%d" seed jobs in
       Alcotest.test_case label `Quick (fun () ->
           Inject.with_points ~seed Inject.all (fun () ->
               run_scenario label synth_scenario;
               run_scenario label harden_scenario;
               run_scenario label defect_scenario;
               run_scenario label persist_scenario)))
    seeds

(* ------------------------------------------------------------------ *)

(* The global deadline's graceful-degradation contract, with no
   injection armed: a deadline too small for the primary rungs still
   yields a verified design whose shape is independent of the jobs
   count, with the degradation visible in the report. *)

let deadline_tests =
  [
    Alcotest.test_case "expired deadline degrades to a verified design"
      `Slow (fun () ->
          Inject.disable ();
          let e = Circuits.Suite.find "dec" in
          let nl = e.Circuits.Suite.generate () in
          let run jobs =
            let options =
              { Compact.Pipeline.default_options with
                deadline = Some 1e-4; jobs }
            in
            Compact.Pipeline.synthesize ~options nl
          in
          let r1 = run 1 in
          let report = r1.Compact.Pipeline.report in
          check tb "deadline_hit set" true
            report.Compact.Report.deadline_hit;
          check Alcotest.string "landed on the terminal rung" "oct-greedy"
            (List.nth report.solver_path (List.length report.solver_path - 1));
          check tb "degraded design verifies" true
            (Crossbar.Verify.auto ~trials:256 r1.Compact.Pipeline.design
               ~inputs:nl.Logic.Netlist.inputs
               ~reference:(Logic.Netlist.eval_point nl)
               ~outputs:nl.Logic.Netlist.outputs
             = Crossbar.Verify.Ok);
          (* Determinism across jobs counts: same degraded design, same
             solver path, byte for byte. *)
          let r4 = run 4 in
          check Alcotest.string "identical design at jobs=4"
            (Format.asprintf "%a" Crossbar.Design.pp
               r1.Compact.Pipeline.design)
            (Format.asprintf "%a" Crossbar.Design.pp
               r4.Compact.Pipeline.design);
          check (Alcotest.list Alcotest.string) "identical solver path"
            report.solver_path
            r4.Compact.Pipeline.report.Compact.Report.solver_path;
          check tb "jobs=4 also reports the deadline" true
            r4.Compact.Pipeline.report.Compact.Report.deadline_hit);
    Alcotest.test_case "no deadline leaves deadline_hit clear" `Quick
      (fun () ->
         Inject.disable ();
         let r = Compact.Pipeline.synthesize ~options small_nl in
         check tb "clear" false
           r.Compact.Pipeline.report.Compact.Report.deadline_hit);
  ]

(* The racing portfolio under fire: a poisoned pool task lands as a
   Failed entrant and a timeout degrades an entrant to partial — in
   every case the race must settle into a verified design or a
   structured error, never a wedged pool or a corrupted winner, and the
   very next clean run must behave as if the storm never happened. *)
let portfolio_options =
  { options with
    Compact.Pipeline.solver = Compact.Pipeline.Portfolio;
    race_orders = 2 }

let portfolio_scenario () =
  verify_design small_nl
    (Compact.Pipeline.synthesize ~options:portfolio_options small_nl)

let portfolio_chaos_tests =
  List.concat_map
    (fun point ->
       List.map
         (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "portfolio race under %s seed=%d (jobs=%d)"
                 (Inject.name point) seed jobs)
              `Quick
              (fun () ->
                 Inject.with_points ~seed [ point ] (fun () ->
                     run_scenario "portfolio race" portfolio_scenario);
                 (* The storm must leave nothing armed or wedged behind:
                    the same race now runs clean. *)
                 Inject.disable ();
                 portfolio_scenario ()))
         seeds)
    [ Inject.Pool_poison; Inject.Timeout ]

(* Injected faults must be visible in the PR-5 trace: each hit records
   an [inject] event and bumps the per-point counter. *)
let trace_tests =
  [
    Alcotest.test_case "injected faults land in the trace" `Quick (fun () ->
        let saved = Obs.enabled () in
        Obs.set_enabled true;
        Obs.reset ();
        Inject.with_points ~seed:1 [ Inject.Timeout ] (fun () ->
            run_scenario "traced synthesize" synth_scenario);
        let snap = Obs.drain () in
        Obs.set_enabled saved;
        let hits =
          List.filter (fun e -> e.Obs.ev_name = "inject") snap.Obs.events
        in
        check tb "inject events recorded" true (hits <> []);
        match List.assoc_opt "inject.timeout" snap.Obs.counters with
        | Some n when n >= 1. -> ()
        | Some n -> Alcotest.failf "inject.timeout counter %g" n
        | None -> Alcotest.fail "inject.timeout counter missing");
  ]

(* PR-7 server point: faults injected while compactd serves a request
   must surface as structured error responses (or clean successes when
   the fault misses / the sequential retry absorbs it) — never a cache
   entry produced under injection, never a wedged engine.  After the
   storm, the same request must solve cleanly and byte-match a
   reference engine that never saw a fault. *)
let server_tests =
  let module Engine = Server.Engine in
  let module J = Obs.Json in
  let ti = Alcotest.int in
  let line = {|{"op":"synth","id":1,"expr":"((a & b) | (c & ~d)) ^ (b & ~c)"}|} in
  let response_structured resp =
    match J.parse resp with
    | exception J.Parse_error msg ->
      Alcotest.failf "unparsable response %s: %s" resp msg
    | j ->
      (match J.member "ok" j with
       | Some (J.Bool true) -> ()
       | Some (J.Bool false) ->
         (match J.member "error" j with
          | Some err ->
            (match J.member "code" err, J.member "message" err with
             | Some (J.Str _), Some (J.Str _) -> ()
             | _ -> Alcotest.failf "malformed error object in %s" resp)
          | None -> Alcotest.failf "ok:false without error in %s" resp)
       | _ -> Alcotest.failf "response without ok field: %s" resp)
  in
  let storm point =
    Alcotest.test_case
      (Printf.sprintf "%s during in-flight requests" (Inject.name point))
      `Slow
      (fun () ->
         let e = Engine.create { Engine.default_config with Engine.jobs } in
         List.iter
           (fun seed ->
              Inject.with_points ~seed [ point ] (fun () ->
                  List.iter response_structured
                    (Engine.handle_batch e [ line; line; line ])))
           seeds;
         (* Nothing produced under injection may have entered the
            cache: every insert requires the pristine verdict, which is
            false while any point is armed. *)
         check ti "cache uncorrupted: no inserts under injection" 0
           (Engine.stats e).Engine.cache.Server.Cache.inserts;
         (* The engine is not wedged: the identical request now solves
            cleanly and matches an engine that never saw a fault. *)
         Inject.disable ();
         let after = Engine.handle e line in
         let reference =
           Engine.handle (Engine.create Engine.default_config) line
         in
         (match J.member "ok" (J.parse after) with
          | Some (J.Bool true) -> ()
          | _ -> Alcotest.failf "clean request after storm failed: %s" after);
         check Alcotest.string "clean solve matches a fault-free engine"
           reference after)
  in
  [ storm Inject.Timeout; storm Inject.Pool_poison; storm Inject.Oom ]

(* SIGUSR1 must produce a readable flight dump even while a fault storm
   is chewing through the serving loop: the recorder is exactly for
   diagnosing a misbehaving server, so it is tested under misbehaviour.
   Runs a real [Sock.serve] (signal handlers installed) in a companion
   domain, drives faulted traffic, then kills itself with USR1. *)
let flight_tests =
  let module J = Obs.Json in
  let module Client = Server.Client in
  let line = {|{"op":"synth","id":1,"expr":"((a & b) | (c & ~d)) ^ (b & ~c)"}|} in
  [
    Alcotest.test_case "SIGUSR1 dumps a valid flight file mid-storm" `Slow
      (fun () ->
         let tmp = Filename.get_temp_dir_name () in
         let path =
           Filename.concat tmp
             (Printf.sprintf "chaos-usr1-%d.sock" (Unix.getpid ()))
         in
         let flight = path ^ ".flight.jsonl" in
         List.iter
           (fun f -> try Sys.remove f with Sys_error _ -> ())
           [ path; flight ];
         let config =
           { (Server.Sock.default_config ~socket_path:path) with
             Server.Sock.engine =
               { Server.Engine.default_config with Server.Engine.jobs };
             handle_signals = true;
             flight_path = Some flight }
         in
         let server =
           Domain.spawn (fun () ->
               ignore (Server.Sock.serve config : Server.Engine.stats))
         in
         Fun.protect
           ~finally:(fun () ->
             Domain.join server;
             List.iter
               (fun f -> try Sys.remove f with Sys_error _ -> ())
               [ path; flight ])
           (fun () ->
              (* Wait for the socket (and with it the signal handlers)
                 to come up. *)
              let deadline = Unix.gettimeofday () +. 10. in
              let rec wait () =
                match Client.connect path with
                | c -> c
                | exception Unix.Unix_error _ ->
                  if Unix.gettimeofday () > deadline then
                    Alcotest.fail "server did not come up"
                  else begin
                    Unix.sleepf 0.05;
                    wait ()
                  end
              in
              let client = wait () in
              (* Faulted traffic, then the signal while the engine is
                 still warm. *)
              Inject.with_points ~seed:11 [ Inject.Timeout ] (fun () ->
                  ignore (Client.request_idempotent client line : string);
                  ignore (Client.request_idempotent client line : string));
              ignore (Client.request_idempotent client line : string);
              Unix.kill (Unix.getpid ()) Sys.sigusr1;
              (* The serving loop notices the flag on its next select
                 tick; poll for the dump. *)
              let rec poll d =
                if Sys.file_exists flight then ()
                else if Unix.gettimeofday () > d then
                  Alcotest.fail "no flight dump after SIGUSR1"
                else begin
                  Unix.sleepf 0.05;
                  poll d
                end
              in
              poll (Unix.gettimeofday () +. 10.);
              let ic = open_in flight in
              let n = in_channel_length ic in
              let body = really_input_string ic n in
              close_in ic;
              let lines =
                List.filter
                  (fun l -> l <> "")
                  (String.split_on_char '\n' body)
              in
              check tb "dump has events" true (lines <> []);
              List.iter
                (fun l ->
                   let j = J.parse l in
                   match J.member "kind" j, J.member "name" j with
                   | Some (J.Str _), Some (J.Str _) -> ()
                   | _ -> Alcotest.failf "malformed flight line: %s" l)
                lines;
              (* Drain the server; reuses the graceful-shutdown path,
                 which rewrites the dump. *)
              ignore
                (Client.request client {|{"op":"shutdown","id":"x"}|}
                 : string);
              Client.close client))
  ]

let () =
  Alcotest.run "chaos"
    [
      "points", point_tests;
      "all-armed", all_armed_tests;
      "portfolio", portfolio_chaos_tests;
      "deadline", deadline_tests;
      "trace", trace_tests;
      "server", server_tests;
      "flight", flight_tests;
    ]
