(* Tests for the robustness layer: defect maps, defect-aware placement,
   the repair escalation ladder, reproducible yield analysis and the
   solver watchdog. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

let netlist_of_expr name s =
  let e = Logic.Parse.expr s in
  let inputs = Logic.Expr.vars e in
  Logic.Netlist.create ~name ~inputs ~outputs:[ "f" ]
    [ Logic.Netlist.n_expr "f" e ]

let synth_expr s =
  Compact.Pipeline.synthesize (netlist_of_expr "t" s)

(* ------------------------------------------------------------------ *)

let defect_map_tests =
  [
    Alcotest.test_case "text format round-trips" `Quick (fun () ->
        let m =
          Crossbar.Defect_map.create ~rows:6 ~cols:5 ~spare_rows:1
            ~spare_cols:2 ~broken_rows:[ 4 ] ~broken_cols:[ 0 ]
            [ Crossbar.Fault.Stuck_on (0, 3); Crossbar.Fault.Stuck_off (2, 2);
              Crossbar.Fault.Stuck_off (5, 1) ]
        in
        let m' = Crossbar.Defect_map.of_string (Crossbar.Defect_map.to_string m) in
        check ti "rows" 6 (Crossbar.Defect_map.rows m');
        check ti "cols" 5 (Crossbar.Defect_map.cols m');
        check ti "spare rows" 1 (Crossbar.Defect_map.spare_rows m');
        check ti "spare cols" 2 (Crossbar.Defect_map.spare_cols m');
        check tb "faults" true
          (Crossbar.Defect_map.faults m = Crossbar.Defect_map.faults m');
        check tb "broken rows" true
          (Crossbar.Defect_map.broken_rows m
           = Crossbar.Defect_map.broken_rows m');
        check tb "broken cols" true
          (Crossbar.Defect_map.broken_cols m
           = Crossbar.Defect_map.broken_cols m'));
    Alcotest.test_case "out-of-range fault raises" `Quick (fun () ->
        Alcotest.check_raises "row too large"
          (Invalid_argument "Defect_map.create: junction (4, 0) out of range")
          (fun () ->
             ignore
               (Crossbar.Defect_map.create ~rows:4 ~cols:4
                  [ Crossbar.Fault.Stuck_on (4, 0) ]));
        check tb "negative col" true
          (match
             Crossbar.Defect_map.create ~rows:4 ~cols:4
               [ Crossbar.Fault.Stuck_off (0, -1) ]
           with
           | _ -> false
           | exception Invalid_argument _ -> true);
        check tb "broken line out of range" true
          (match
             Crossbar.Defect_map.create ~rows:4 ~cols:4 ~broken_cols:[ 9 ] []
           with
           | _ -> false
           | exception Invalid_argument _ -> true));
    Alcotest.test_case "admits reflects the physics" `Quick (fun () ->
        let m =
          Crossbar.Defect_map.create ~rows:3 ~cols:3 ~broken_rows:[ 2 ]
            [ Crossbar.Fault.Stuck_on (0, 0); Crossbar.Fault.Stuck_off (1, 1) ]
        in
        check tb "stuck-on takes On" true
          (Crossbar.Defect_map.admits m ~row:0 ~col:0 Crossbar.Literal.On);
        check tb "stuck-on rejects a literal" false
          (Crossbar.Defect_map.admits m ~row:0 ~col:0
             (Crossbar.Literal.Pos "a"));
        check tb "stuck-off takes Off" true
          (Crossbar.Defect_map.admits m ~row:1 ~col:1 Crossbar.Literal.Off);
        check tb "stuck-off rejects On" false
          (Crossbar.Defect_map.admits m ~row:1 ~col:1 Crossbar.Literal.On);
        check tb "broken row only Off" false
          (Crossbar.Defect_map.admits m ~row:2 ~col:0 Crossbar.Literal.On));
  ]

(* ------------------------------------------------------------------ *)

let place_tests =
  [
    Alcotest.test_case "perfect map places identically" `Quick (fun () ->
        let r = synth_expr "(a & b) | (c & ~d)" in
        let d = r.Compact.Pipeline.design in
        let m =
          Crossbar.Defect_map.perfect ~rows:(Crossbar.Design.rows d)
            ~cols:(Crossbar.Design.cols d)
        in
        match Compact.Place.find m d with
        | None -> Alcotest.fail "no placement on a perfect array"
        | Some p ->
          Array.iteri
            (fun i r -> check ti (Printf.sprintf "row %d" i) i r)
            p.Compact.Place.row_map;
          Array.iteri
            (fun j c -> check ti (Printf.sprintf "col %d" j) j c)
            p.Compact.Place.col_map);
    Alcotest.test_case "spare lines stay unused on a perfect map" `Quick
      (fun () ->
         let r = synth_expr "(a & b) | (c & ~d)" in
         let d = r.Compact.Pipeline.design in
         let m =
           Crossbar.Defect_map.create
             ~rows:(Crossbar.Design.rows d + 2)
             ~cols:(Crossbar.Design.cols d + 2)
             ~spare_rows:2 ~spare_cols:2 []
         in
         match Compact.Place.find m d with
         | None -> Alcotest.fail "no placement"
         | Some p ->
           Array.iter
             (fun r ->
                check tb "row in primary region" true
                  (r < Crossbar.Design.rows d))
             p.Compact.Place.row_map;
           Array.iter
             (fun c ->
                check tb "col in primary region" true
                  (c < Crossbar.Design.cols d))
             p.Compact.Place.col_map);
    Alcotest.test_case "placement dodges a stuck-off junction" `Quick
      (fun () ->
         let r = synth_expr "(a & b) | (c & ~d)" in
         let d = r.Compact.Pipeline.design in
         (* Break a junction the identity placement programs. *)
         let target = ref None in
         Crossbar.Design.iter_programmed d (fun i j l ->
             if !target = None && not (Crossbar.Literal.equal l Crossbar.Literal.On)
             then target := Some (i, j));
         let i, j = Option.get !target in
         let m =
           Crossbar.Defect_map.create
             ~rows:(Crossbar.Design.rows d + 1)
             ~cols:(Crossbar.Design.cols d + 1)
             [ Crossbar.Fault.Stuck_off (i, j) ]
         in
         match Compact.Place.find m d with
         | None -> Alcotest.fail "no placement"
         | Some p ->
           check tb "respects the defect" true (Compact.Place.compatible m p d);
           let nl = netlist_of_expr "t" "(a & b) | (c & ~d)" in
           let phys = Compact.Place.apply m p d in
           check tb "physical design verifies" true
             (Crossbar.Verify.auto ~trials:256 phys
                ~inputs:nl.Logic.Netlist.inputs
                ~reference:(Logic.Netlist.eval_point nl)
                ~outputs:nl.Logic.Netlist.outputs
              = Crossbar.Verify.Ok));
  ]

(* ------------------------------------------------------------------ *)

let nl_cmp = netlist_of_expr "cmp" "((a & ~b) | (c & ~d & ~(a ^ b)))"

let repair_tests =
  [
    Alcotest.test_case "repair survives faults at programmed sites" `Quick
      (fun () ->
         let r = Compact.Pipeline.synthesize nl_cmp in
         let d = r.Compact.Pipeline.design in
         (* Stuck-off devices exactly where the design wants literals:
            the identity placement is infeasible by construction. *)
         let faults = ref [] in
         Crossbar.Design.iter_programmed d (fun i j l ->
             if
               List.length !faults < 2
               && not (Crossbar.Literal.equal l Crossbar.Literal.On)
             then faults := Crossbar.Fault.Stuck_off (i, j) :: !faults);
         let m =
           Crossbar.Defect_map.create
             ~rows:(Crossbar.Design.rows d + 1)
             ~cols:(Crossbar.Design.cols d + 1)
             ~spare_rows:1 ~spare_cols:1 !faults
         in
         let rep =
           Compact.Repair.run ~defects:m ~inputs:nl_cmp.Logic.Netlist.inputs
             ~outputs:nl_cmp.Logic.Netlist.outputs
             ~reference:(Logic.Netlist.eval_point nl_cmp) d
         in
         match rep.Compact.Repair.outcome with
         | Compact.Repair.Repaired { design; _ } ->
           check tb "every attempt that placed also verified" true
             (List.for_all
                (fun (a : Compact.Repair.attempt) ->
                   a.placed = a.verified || not a.verified)
                rep.attempts);
           check tb "repaired design verifies" true
             (Crossbar.Verify.auto ~trials:512 design
                ~inputs:nl_cmp.Logic.Netlist.inputs
                ~reference:(Logic.Netlist.eval_point nl_cmp)
                ~outputs:nl_cmp.Logic.Netlist.outputs
              = Crossbar.Verify.Ok)
         | Compact.Repair.Degraded _ -> Alcotest.fail "expected full repair"
         | Compact.Repair.Unplaceable msg -> Alcotest.fail msg);
    Alcotest.test_case "broken wordline consumes a spare" `Quick (fun () ->
        let r = synth_expr "(a & b) | (c & ~d)" in
        let d = r.Compact.Pipeline.design in
        let m =
          Crossbar.Defect_map.create
            ~rows:(Crossbar.Design.rows d + 1)
            ~cols:(Crossbar.Design.cols d)
            ~spare_rows:1 ~broken_rows:[ 0 ] []
        in
        let nl = netlist_of_expr "t" "(a & b) | (c & ~d)" in
        let rep =
          Compact.Repair.run ~defects:m ~inputs:nl.Logic.Netlist.inputs
            ~outputs:nl.Logic.Netlist.outputs
            ~reference:(Logic.Netlist.eval_point nl) d
        in
        match rep.Compact.Repair.outcome with
        | Compact.Repair.Repaired { strategy; _ } ->
          check Alcotest.string "strategy" "spares"
            (Compact.Repair.strategy_name strategy)
        | _ -> Alcotest.fail "expected repair via spares");
    Alcotest.test_case "hopeless array degrades explicitly" `Quick (fun () ->
        let r = synth_expr "(a & b) | (c & ~d)" in
        let d = r.Compact.Pipeline.design in
        let rows = Crossbar.Design.rows d and cols = Crossbar.Design.cols d in
        (* Every junction stuck off: nothing can conduct. *)
        let faults = ref [] in
        for i = 0 to rows - 1 do
          for j = 0 to cols - 1 do
            faults := Crossbar.Fault.Stuck_off (i, j) :: !faults
          done
        done;
        let m = Crossbar.Defect_map.create ~rows ~cols !faults in
        let nl = netlist_of_expr "t" "(a & b) | (c & ~d)" in
        let rep =
          Compact.Repair.run ~defects:m ~inputs:nl.Logic.Netlist.inputs
            ~outputs:nl.Logic.Netlist.outputs
            ~reference:(Logic.Netlist.eval_point nl) d
        in
        match rep.Compact.Repair.outcome with
        | Compact.Repair.Repaired _ -> Alcotest.fail "cannot be repaired"
        | Compact.Repair.Unplaceable _ -> ()
        | Compact.Repair.Degraded { failed; _ } ->
          check tb "lost outputs are reported" true (failed <> []));
    Alcotest.test_case "pipeline repair end-to-end" `Quick (fun () ->
        let nl = netlist_of_expr "t" "(a & b) | (c & ~d)" in
        let base = Compact.Pipeline.synthesize nl in
        let d = base.Compact.Pipeline.design in
        let m =
          Crossbar.Defect_map.create
            ~rows:(Crossbar.Design.rows d + 1)
            ~cols:(Crossbar.Design.cols d + 1)
            ~spare_rows:1 ~spare_cols:1
            [ Crossbar.Fault.Stuck_on (0, 1) ]
        in
        let rr = Compact.Pipeline.repair ~defects:m nl in
        check tb "attempt trail is recorded" true
          (rr.Compact.Pipeline.repair.Compact.Repair.attempts <> []);
        match rr.Compact.Pipeline.repair.Compact.Repair.outcome with
        | Compact.Repair.Repaired _ -> ()
        | _ -> Alcotest.fail "expected a repaired design");
  ]

(* ------------------------------------------------------------------ *)

(* Hand-built AND chain over 8 inputs: a single conducting path
   R0 -a1- C0 -a2- R1 -a3- C1 ... R4. Used to pin down exhaustive
   verification: a stuck-on device at the last link changes the function
   on exactly one of the 256 assignments, which sampling would miss. *)
let and_chain () =
  let d =
    Crossbar.Design.create ~rows:5 ~cols:4 ~input:(Crossbar.Design.Row 0)
      ~outputs:[ "f", Crossbar.Design.Row 4 ]
  in
  let var k = Printf.sprintf "a%d" k in
  for k = 0 to 3 do
    Crossbar.Design.set d ~row:k ~col:k (Crossbar.Literal.Pos (var (2 * k + 1)));
    Crossbar.Design.set d ~row:(k + 1) ~col:k
      (Crossbar.Literal.Pos (var (2 * k + 2)))
  done;
  let inputs = List.init 8 (fun k -> var (k + 1)) in
  let reference point = [| Array.for_all Fun.id point |] in
  d, inputs, reference

let yield_tests =
  [
    Alcotest.test_case "still_correct is exhaustive on small inputs" `Quick
      (fun () ->
         let d, inputs, reference = and_chain () in
         check tb "fault-free chain is correct" true
           (Crossbar.Fault.still_correct d ~inputs ~reference ~outputs:[ "f" ]);
         let faulty =
           Crossbar.Fault.inject d [ Crossbar.Fault.Stuck_on (4, 3) ]
         in
         check tb "single-minterm corruption is caught" false
           (Crossbar.Fault.still_correct faulty ~inputs ~reference
              ~outputs:[ "f" ]));
    Alcotest.test_case "yield is bit-for-bit reproducible per seed" `Quick
      (fun () ->
         let d, inputs, reference = and_chain () in
         let run seed =
           Crossbar.Fault.yield ~seed ~trials:40 ~rate:0.15 d ~inputs
             ~reference ~outputs:[ "f" ]
         in
         let a = run 11 and b = run 11 in
         check ti "survivors agree" a.Crossbar.Fault.survivors
           b.Crossbar.Fault.survivors;
         check (Alcotest.float 1e-12) "mean faults agree"
           a.Crossbar.Fault.mean_faults b.Crossbar.Fault.mean_faults;
         let c = run 12 in
         check tb "another seed is a different sample" true
           (a.Crossbar.Fault.survivors <> c.Crossbar.Fault.survivors
            || a.Crossbar.Fault.mean_faults <> c.Crossbar.Fault.mean_faults));
  ]

(* ------------------------------------------------------------------ *)
(* Parser fuzzing: the defect-map text parser must answer every input —
   truncated, mutated, or hand-mangled — with either a map or a
   structured [Parse_error], never an escaping exception. *)

let fuzz_base_text =
  Crossbar.Defect_map.to_string
    (Crossbar.Defect_map.create ~rows:8 ~cols:7 ~spare_rows:2 ~spare_cols:1
       ~broken_rows:[ 3; 5 ] ~broken_cols:[ 6 ]
       [ Crossbar.Fault.Stuck_on (0, 1); Crossbar.Fault.Stuck_off (4, 2);
         Crossbar.Fault.Stuck_on (7, 0) ])

let parse_outcome s =
  match Crossbar.Defect_map.of_string s with
  | (_ : Crossbar.Defect_map.t) -> `Parsed
  | exception Crossbar.Defect_map.Parse_error _ -> `Structured
  | exception e -> `Escaped e

let parse_error_line s =
  match Crossbar.Defect_map.of_string s with
  | (_ : Crossbar.Defect_map.t) -> Alcotest.fail "expected a parse error"
  | exception Crossbar.Defect_map.Parse_error { line; _ } -> line

let parser_fuzz_tests =
  [
    Alcotest.test_case "every prefix truncation is handled" `Quick (fun () ->
        for len = 0 to String.length fuzz_base_text do
          match parse_outcome (String.sub fuzz_base_text 0 len) with
          | `Parsed | `Structured -> ()
          | `Escaped e ->
            Alcotest.failf "truncation at %d escaped with %s" len
              (Printexc.to_string e)
        done);
    Alcotest.test_case "seeded single-byte mutations are handled" `Quick
      (fun () ->
         let rng = Random.State.make [| 0xf22 |] in
         let alphabet = " \n\t#-_09azAZ\000\255" in
         for k = 1 to 500 do
           let b = Bytes.of_string fuzz_base_text in
           let pos = Random.State.int rng (Bytes.length b) in
           let c = alphabet.[Random.State.int rng (String.length alphabet)] in
           Bytes.set b pos c;
           match parse_outcome (Bytes.to_string b) with
           | `Parsed | `Structured -> ()
           | `Escaped e ->
             Alcotest.failf "mutation %d (byte %d <- %C) escaped with %s" k
               pos c (Printexc.to_string e)
         done);
    Alcotest.test_case "seeded line shuffles and deletions are handled"
      `Quick (fun () ->
          let lines = String.split_on_char '\n' fuzz_base_text in
          let rng = Random.State.make [| 0x11e |] in
          for k = 1 to 200 do
            let kept =
              List.filter (fun _ -> Random.State.bool rng) lines
              |> List.map (fun l ->
                  if Random.State.int rng 4 = 0 then l ^ " 1" else l)
            in
            let doc = String.concat "\n" kept in
            match parse_outcome doc with
            | `Parsed | `Structured -> ()
            | `Escaped e ->
              Alcotest.failf "shuffle %d escaped with %s" k
                (Printexc.to_string e)
          done);
    Alcotest.test_case "malformed maps report the offending line" `Quick
      (fun () ->
         check ti "non-integer operand" 2
           (parse_error_line "array 4 4\nstuck_on 1 x\n");
         check ti "duplicate array line" 3
           (parse_error_line "array 4 4\n# comment\narray 2 2\n");
         check ti "unknown directive" 1 (parse_error_line "arrray 4 4\n");
         check ti "missing array line" 0 (parse_error_line "stuck_on 1 1\n");
         check ti "out-of-range fault is semantic (line 0)" 0
           (parse_error_line "array 4 4\nstuck_on 9 9\n");
         check ti "empty array is semantic (line 0)"
           0
           (parse_error_line "array 0 4\n"));
    Alcotest.test_case "round-trip still parses after the fuzz plumbing"
      `Quick (fun () ->
          match parse_outcome fuzz_base_text with
          | `Parsed -> ()
          | `Structured -> Alcotest.fail "valid map rejected"
          | `Escaped e -> Alcotest.failf "escaped: %s" (Printexc.to_string e));
  ]

(* ------------------------------------------------------------------ *)

let watchdog_tests =
  [
    Alcotest.test_case "expired budget falls back to oct-greedy" `Slow
      (fun () ->
         (* >160 graph nodes so Auto starts on the heuristic, and a zero
            budget so its (non-optimal) incumbent is rejected. *)
         let e = Circuits.Suite.find "dec" in
         let options =
           { Compact.Pipeline.default_options with time_limit = 0. }
         in
         let r = Compact.Pipeline.synthesize ~options (e.generate ()) in
         let report = r.Compact.Pipeline.report in
         check tb "retried at least once" true (report.solver_retries >= 1);
         check Alcotest.string "landed on the terminal rung" "oct-greedy"
           (List.nth report.solver_path
              (List.length report.solver_path - 1));
         check ti "path length matches retries"
           (report.solver_retries + 1)
           (List.length report.solver_path));
    Alcotest.test_case "generous budget keeps the first rung" `Quick
      (fun () ->
         let r = synth_expr "(a & b) | c" in
         check ti "no retries" 0 r.Compact.Pipeline.report.solver_retries;
         check ti "single rung" 1
           (List.length r.Compact.Pipeline.report.solver_path));
  ]

let () =
  Alcotest.run "fault"
    [
      "defect_map", defect_map_tests;
      "parser_fuzz", parser_fuzz_tests;
      "place", place_tests;
      "repair", repair_tests;
      "yield", yield_tests;
      "watchdog", watchdog_tests;
    ]
