(* Kill-and-restart battery for compactd's crash safety (PR-8).

   Three phases, each against a real [Sock.serve] loop in a forked
   child process:

   A. SIGKILL with torn journal writes armed: the server dies without a
      snapshot flush and with a genuinely torn journal tail.  A
      restarted server must recover at least one design, serve it as a
      cache hit, and answer every pre-crash request byte-identically
      (modulo the [cached] flag).

   B. Mid-run kill under load: a monkey process SIGKILLs the server
      while [Loadgen.run ~retry:true] is in flight, then takes over the
      socket itself.  The run must finish with zero errors — replay
      costs latency, never a lost request.

   C. Graceful drain: SIGTERM exits cleanly (status 0), unlinks the
      socket, and flushes the snapshot, so a restart recovers the whole
      cache and serves it hot.

   Fork discipline: children are forked before this process spawns any
   domain, and leave through [Unix._exit] only.  Run via the
   @server-restart alias at COMPACT_JOBS=1 and COMPACT_JOBS=4. *)

module J = Obs.Json

let jobs = Parallel.default_jobs ()
let failures = ref 0

let failf fmt =
  Printf.ksprintf
    (fun msg ->
       incr failures;
       Printf.eprintf "FAIL [jobs=%d] %s\n%!" jobs msg)
    fmt

let checkf cond fmt =
  Printf.ksprintf (fun msg -> if not cond then failf "%s" msg) fmt

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "compact-restart-%d-%s" (Unix.getpid ()) name)

let clean_dir dir =
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
         try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

let clean_path p = try Unix.unlink p with Unix.Unix_error _ -> ()

(* Fork a server child on [socket] backed by [cache_dir].  [inject]
   arms fault points inside the child only.  The child never returns:
   it serves until shutdown/drain and leaves with [_exit 0]. *)
let start_server ?(inject = []) ?(inject_seed = 1) ~socket ~cache_dir () =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try
       if inject <> [] then
         Resilience.Inject.configure ~seed:inject_seed inject;
       let config =
         {
           (Server.Sock.default_config ~socket_path:socket) with
           Server.Sock.engine =
             {
               Server.Engine.default_config with
               Server.Engine.jobs;
               cache_dir = Some cache_dir;
             };
           handle_signals = true;
           drain_deadline = 5.;
         }
       in
       ignore (Server.Sock.serve config : Server.Engine.stats);
       Unix._exit 0
     with _ -> Unix._exit 3)
  | pid -> pid

let wait pid = snd (Unix.waitpid [] pid)

let shutdown_server socket pid =
  (match Server.Client.connect ~retries:20 socket with
   | c ->
     (try ignore (Server.Client.request c {|{"op":"shutdown"}|} : string)
      with End_of_file | Unix.Unix_error _ -> ());
     Server.Client.close c
   | exception _ -> ());
  wait pid

(* The only legitimate byte difference between a pre-crash cold
   response and a post-restart hit. *)
let replace ~sub ~by s =
  match
    let n = String.length sub in
    let rec find i =
      if i + n > String.length s then None
      else if String.sub s i n = sub then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> s
  | Some i ->
    String.sub s 0 i ^ by
    ^ String.sub s (i + String.length sub)
        (String.length s - i - String.length sub)

let uncached s = replace ~sub:{|"cached":true|} ~by:{|"cached":false|} s

let is_cached s =
  match J.member "cached" (J.parse s) with
  | Some (J.Bool b) -> b
  | _ -> false

let persist_stat stats_line field =
  match J.member "persist" (J.parse stats_line) with
  | Some p ->
    (match J.member field p with
     | Some (J.Num n) -> int_of_float n
     | _ -> -1)
  | _ -> -1

let exprs =
  [
    "(a & b) | (c & ~d)";
    "(a ^ b) & (c | d)";
    "~a | (b & c)";
    "(a | b) & (c ^ ~d)";
    "(a & ~c) ^ (b | d)";
    "(~b | d) & (a ^ c)";
  ]

let synth_line i e =
  J.to_string
    (J.Obj
       [
         "op", J.Str "synth";
         "id", J.Num (float_of_int (i + 1));
         "expr", J.Str e;
       ])

(* ------------------------------------------------------------------ *)

let phase_a () =
  Printf.printf "phase A: SIGKILL with torn journal writes (jobs=%d)\n%!"
    jobs;
  let socket = tmp "a.sock" and dir = tmp "a.cache" in
  clean_path socket;
  clean_dir dir;
  (* Torn writes armed in the server: some journal appends are cut
     short, exactly the tail a crash mid-write leaves. *)
  let pid =
    start_server
      ~inject:[ Resilience.Inject.Disk_torn_write ]
      ~inject_seed:2 ~socket ~cache_dir:dir ()
  in
  let c = Server.Client.connect socket in
  let before =
    List.mapi
      (fun i e -> Server.Client.request_idempotent c (synth_line i e))
      exprs
  in
  Server.Client.close c;
  List.iter
    (fun r ->
       checkf
         (J.member "ok" (J.parse r) = Some (J.Bool true))
         "A: pre-crash request failed: %s" r)
    before;
  (* No drain, no snapshot: the only durable state is the journal,
     torn tail and all. *)
  Unix.kill pid Sys.sigkill;
  (match wait pid with
   | Unix.WSIGNALED s when s = Sys.sigkill -> ()
   | _ -> failf "A: server did not die of SIGKILL");
  (* Restart, injection-free, on the same directory and socket. *)
  let pid2 = start_server ~socket ~cache_dir:dir () in
  let c2 = Server.Client.connect socket in
  let stats =
    Server.Client.request_idempotent c2 {|{"op":"stats","id":"s"}|}
  in
  let recovered = persist_stat stats "recovered" in
  checkf (recovered >= 1) "A: expected recovered >= 1, got %d (stats %s)"
    recovered stats;
  let after =
    List.mapi
      (fun i e -> Server.Client.request_idempotent c2 (synth_line i e))
      exprs
  in
  Server.Client.close c2;
  let hits = List.length (List.filter is_cached after) in
  checkf (hits >= 1) "A: expected at least one recovered cache hit";
  checkf (hits = recovered)
    "A: %d hits but %d recovered entries — recovery served something it \
     should not have, or lost something it had" hits recovered;
  List.iteri
    (fun i (b, a) ->
       checkf
         (String.equal b (uncached a))
         "A: request %d not byte-identical across restart:\n  pre:  \
          %s\n  post: %s" (i + 1) b a)
    (List.combine before after);
  ignore (shutdown_server socket pid2);
  Printf.printf
    "phase A: ok (%d/%d recovered hits, all responses byte-identical)\n%!"
    hits (List.length exprs)

(* ------------------------------------------------------------------ *)

let phase_b () =
  Printf.printf "phase B: loadgen across a mid-run SIGKILL (jobs=%d)\n%!"
    jobs;
  let socket = tmp "b.sock" and dir = tmp "b.cache" in
  clean_path socket;
  clean_dir dir;
  let pid = start_server ~socket ~cache_dir:dir () in
  (* The monkey: kill the server mid-run, then take over the socket as
     the replacement server.  Replayed requests land here. *)
  flush stdout;
  flush stderr;
  let monkey =
    match Unix.fork () with
    | 0 ->
      (try
         Unix.sleepf 0.5;
         Unix.kill pid Sys.sigkill;
         let config =
           {
             (Server.Sock.default_config ~socket_path:socket) with
             Server.Sock.engine =
               {
                 Server.Engine.default_config with
                 Server.Engine.jobs;
                 cache_dir = Some dir;
               };
             handle_signals = true;
           }
         in
         (* The SIGKILLed server's listener can linger for an instant
            after kill() returns, so the socket probe may still see it
            "live": retry like any restart loop would. *)
         let rec serve_when_free n =
           match Server.Sock.serve config with
           | (_ : Server.Engine.stats) -> ()
           | exception Server.Sock.Busy _ when n > 0 ->
             Unix.sleepf 0.05;
             serve_when_free (n - 1)
         in
         serve_when_free 100;
         Unix._exit 0
       with _ -> Unix._exit 3)
    | p -> p
  in
  let result =
    Server.Loadgen.run ~seed:42 ~requests:40 ~hot_frac:0.5 ~retry:true
      ~socket ()
  in
  checkf
    (result.Server.Loadgen.errors = 0)
    "B: %d requests lost across the kill" result.Server.Loadgen.errors;
  checkf
    (result.Server.Loadgen.ok = 40)
    "B: only %d/40 requests succeeded" result.Server.Loadgen.ok;
  (match wait pid with
   | Unix.WSIGNALED s when s = Sys.sigkill -> ()
   | _ -> failf "B: first server did not die of SIGKILL");
  (match shutdown_server socket monkey with
   | Unix.WEXITED 0 -> ()
   | _ -> failf "B: replacement server did not exit cleanly");
  Printf.printf "phase B: ok (40/40 requests, zero lost)\n%!"

(* ------------------------------------------------------------------ *)

let phase_c () =
  Printf.printf "phase C: graceful drain on SIGTERM (jobs=%d)\n%!" jobs;
  let socket = tmp "c.sock" and dir = tmp "c.cache" in
  clean_path socket;
  clean_dir dir;
  let pid = start_server ~socket ~cache_dir:dir () in
  let c = Server.Client.connect socket in
  let lines = List.filteri (fun i _ -> i < 3) exprs in
  List.iteri
    (fun i e ->
       let r = Server.Client.request_idempotent c (synth_line i e) in
       checkf
         (J.member "ok" (J.parse r) = Some (J.Bool true))
         "C: request failed before drain: %s" r)
    lines;
  Server.Client.close c;
  Unix.kill pid Sys.sigterm;
  (match wait pid with
   | Unix.WEXITED 0 -> ()
   | Unix.WEXITED n -> failf "C: drain exited with status %d" n
   | _ -> failf "C: drain did not exit cleanly");
  checkf
    (not (Sys.file_exists socket))
    "C: socket path survived the drain";
  (* The drain's snapshot makes the restart complete: every design is
     recovered and serves hot. *)
  let pid2 = start_server ~socket ~cache_dir:dir () in
  let c2 = Server.Client.connect socket in
  let stats =
    Server.Client.request_idempotent c2 {|{"op":"stats","id":"s"}|}
  in
  let recovered = persist_stat stats "recovered" in
  checkf (recovered = 3) "C: expected 3 recovered after drain, got %d"
    recovered;
  List.iteri
    (fun i e ->
       let r = Server.Client.request_idempotent c2 (synth_line i e) in
       checkf (is_cached r) "C: request %d missed after a clean drain"
         (i + 1))
    lines;
  Server.Client.close c2;
  ignore (shutdown_server socket pid2);
  Printf.printf "phase C: ok (3/3 recovered, all hot)\n%!"

let () =
  Resilience.Inject.disable ();
  phase_a ();
  phase_b ();
  phase_c ();
  if !failures > 0 then begin
    Printf.eprintf "test_restart: %d failure(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf "test_restart: all phases passed (jobs=%d)\n%!" jobs
