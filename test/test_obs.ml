(* Obs: spans, metrics, drain determinism, JSON and exporters. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* Every test owns the global recorder: force a known enabled state and
   an empty buffer on entry, and leave tracing off on exit so suites
   running after this one see the default-off behaviour regardless of
   COMPACT_TRACE in the environment. *)
let with_recording f () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let spans snap =
  List.filter (fun e -> not e.Obs.ev_instant) snap.Obs.events

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_monotonic () =
  let t0 = Obs.Clock.now () in
  let n0 = Obs.Clock.now_ns () in
  let t1 = Obs.Clock.now () in
  check bool "now non-decreasing" true (t1 >= t0);
  check bool "now_ns positive" true (Int64.compare n0 0L > 0)

(* ------------------------------------------------------------------ *)
(* Span recording *)

let test_span_nesting =
  with_recording @@ fun () ->
  let r =
    Obs.Span.with_ "outer" (fun () ->
        Obs.Span.with_ ~attrs:[ "k", "v" ] "inner" (fun () ->
            Obs.Span.event ~attrs:[ "n", "1" ] "tick";
            7)
        + Obs.Span.with_ "sibling" (fun () -> 1))
  in
  check int "result through spans" 8 r;
  let snap = Obs.drain () in
  let paths =
    List.map (fun e -> e.Obs.ev_path, e.Obs.ev_name, e.Obs.ev_instant)
      snap.Obs.events
  in
  check
    (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.string Alcotest.bool))
    "canonical event order"
    [
      "", "outer", false;
      "outer", "inner", false;
      "outer", "sibling", false;
      "outer/inner", "tick", true;
    ]
    paths;
  let inner =
    List.find (fun e -> e.Obs.ev_name = "inner") snap.Obs.events
  in
  check bool "declared attr kept" true (List.mem_assoc "k" inner.Obs.ev_attrs);
  check bool "gc.minor_words attr added" true
    (List.mem_assoc "gc.minor_words" inner.Obs.ev_attrs);
  check bool "durations non-negative" true
    (List.for_all (fun e -> e.Obs.ev_dur >= 0.) snap.Obs.events)

let test_span_add_attr =
  with_recording @@ fun () ->
  Obs.Span.with_ "s" (fun () -> Obs.Span.add_attr "late" "yes");
  let snap = Obs.drain () in
  match spans snap with
  | [ e ] -> check bool "late attr" true (List.mem ("late", "yes") e.Obs.ev_attrs)
  | es -> Alcotest.failf "expected 1 span, got %d" (List.length es)

let test_span_exception =
  with_recording @@ fun () ->
  (try Obs.Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
  let snap = Obs.drain () in
  check int "span recorded despite raise" 1 (List.length (spans snap))

(* ------------------------------------------------------------------ *)
(* Disabled mode *)

let test_disabled_no_events () =
  Obs.set_enabled true;
  Obs.reset ();
  Obs.set_enabled false;
  let c = Obs.Counter.make "test.disabled_counter" in
  let g = Obs.Gauge.make "test.disabled_gauge" in
  let r =
    Obs.Span.with_ "invisible" (fun () ->
        Obs.Span.event "nothing";
        Obs.Counter.add c 5;
        Obs.Gauge.set g 1.;
        Obs.Span.add_attr "k" "v";
        42)
  in
  check int "value passes through" 42 r;
  Obs.set_enabled true;
  let snap = Obs.drain () in
  Obs.set_enabled false;
  check int "no events recorded" 0 (List.length snap.Obs.events);
  check int "no metrics registered" 0 (List.length snap.Obs.counters)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counters =
  with_recording @@ fun () ->
  let c = Obs.Counter.make "test.c" in
  let g = Obs.Gauge.make "test.g" in
  Obs.Counter.add c 3;
  Obs.Counter.incr c;
  Obs.Gauge.set g 2.5;
  let snap = Obs.drain () in
  check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.)))
    "drained metrics, sorted" [ "test.c", 4.; "test.g", 2.5 ]
    snap.Obs.counters;
  (* drain resets both value and registration... *)
  let snap2 = Obs.drain () in
  check int "registry cleared by drain" 0 (List.length snap2.Obs.counters);
  (* ...and the next touch re-registers from zero. *)
  Obs.Counter.incr c;
  let snap3 = Obs.drain () in
  check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.)))
    "re-registered after drain" [ "test.c", 1. ] snap3.Obs.counters

(* ------------------------------------------------------------------ *)
(* Drain determinism across jobs counts *)

let record_workload jobs =
  Obs.set_enabled true;
  Obs.reset ();
  let squares =
    Obs.Span.with_ "root" (fun () ->
        Parallel.with_pool ~jobs (fun pool ->
            Parallel.map pool
              (fun i ->
                 let item = string_of_int i in
                 Obs.Span.with_ ~attrs:[ "item", item ] "work" (fun () ->
                     Obs.Span.event ~attrs:[ "item", item ] "tick";
                     i * i))
              (List.init 16 Fun.id)))
  in
  let snap = Obs.drain () in
  Obs.set_enabled false;
  check (Alcotest.list Alcotest.int) "results independent of jobs"
    (List.init 16 (fun i -> i * i))
    squares;
  snap

let test_drain_deterministic_across_jobs () =
  let j1 = Obs.Export.normalize_jsonl (Obs.Export.jsonl (record_workload 1)) in
  let j4 = Obs.Export.normalize_jsonl (Obs.Export.jsonl (record_workload 4)) in
  check string "normalized JSONL byte-identical, jobs=1 vs 4" j1 j4

let test_worker_spans_have_submitter_path () =
  let snap = record_workload 4 in
  let work =
    List.filter (fun e -> e.Obs.ev_name = "work") snap.Obs.events
  in
  check int "all tasks traced" 16 (List.length work);
  check bool "task spans rooted under submitter span" true
    (List.for_all (fun e -> e.Obs.ev_path = "root") work)

(* ------------------------------------------------------------------ *)
(* JSON *)

let rec json_equal a b =
  match a, b with
  | Obs.Json.Null, Obs.Json.Null -> true
  | Obs.Json.Bool x, Obs.Json.Bool y -> x = y
  | Obs.Json.Num x, Obs.Json.Num y -> x = y
  | Obs.Json.Str x, Obs.Json.Str y -> x = y
  | Obs.Json.Arr xs, Obs.Json.Arr ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Obs.Json.Obj xs, Obs.Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
         xs ys
  | _ -> false

let test_json_parse () =
  let open Obs.Json in
  check bool "null" true (json_equal (parse "null") Null);
  check bool "bools" true (json_equal (parse " true ") (Bool true));
  check bool "number" true (json_equal (parse "-1.5e3") (Num (-1500.)));
  check bool "escapes" true
    (json_equal (parse {|"a\nbA\\"|}) (Str "a\nbA\\"));
  check bool "nested" true
    (json_equal
       (parse {|{"a":[1,{"b":false}],"c":""}|})
       (Obj
          [
            "a", Arr [ Num 1.; Obj [ "b", Bool false ] ];
            "c", Str "";
          ]));
  let raises s =
    match parse s with
    | exception Parse_error _ -> true
    | _ -> false
  in
  check bool "unterminated object" true (raises "{");
  check bool "bad literal" true (raises "tru");
  check bool "trailing garbage" true (raises "1 2");
  check bool "member hit" true
    (json_equal (Option.get (member "a" (parse {|{"a":3}|}))) (Num 3.));
  check bool "member miss" true (member "z" (parse {|{"a":3}|}) = None);
  let doc = parse {|{"x":[1,2,"s"],"y":{"z":null}}|} in
  check bool "to_string round-trips" true
    (json_equal (parse (to_string doc)) doc)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let small_snapshot () =
  Obs.set_enabled true;
  Obs.reset ();
  let c = Obs.Counter.make "test.export_counter" in
  Obs.Span.with_ "a" (fun () ->
      Obs.Counter.incr c;
      Obs.Span.with_ "b" (fun () -> Obs.Span.event "e"));
  let snap = Obs.drain () in
  Obs.set_enabled false;
  snap

let test_jsonl_shape () =
  let snap = small_snapshot () in
  let lines =
    Obs.Export.jsonl snap |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  check int "one line per event" (List.length snap.Obs.events)
    (List.length lines);
  List.iter
    (fun line ->
       let j = Obs.Json.parse line in
       List.iter
         (fun field ->
            check bool (field ^ " present") true
              (Obs.Json.member field j <> None))
         [ "path"; "name"; "kind"; "ts"; "dur"; "attrs" ])
    lines

let test_normalize_idempotent () =
  let s = Obs.Export.jsonl (small_snapshot ()) in
  let n1 = Obs.Export.normalize_jsonl s in
  check string "idempotent" n1 (Obs.Export.normalize_jsonl n1);
  check bool "zeroes timestamps" true
    (String.split_on_char '\n' n1
     |> List.filter (fun l -> String.trim l <> "")
     |> List.for_all (fun l ->
         match Obs.Json.member "ts" (Obs.Json.parse l) with
         | Some (Obs.Json.Num 0.) -> true
         | _ -> false))

let test_chrome_valid () =
  let snap = small_snapshot () in
  let doc = Obs.Json.parse (Obs.Export.chrome snap) in
  match Obs.Json.member "traceEvents" doc with
  | Some (Obs.Json.Arr evs) ->
    let ph p ev =
      match Obs.Json.member "ph" ev with
      | Some (Obs.Json.Str s) -> s = p
      | _ -> false
    in
    check int "one X event per span"
      (List.length (spans snap))
      (List.length (List.filter (ph "X") evs));
    check int "one i event per instant" 1
      (List.length (List.filter (ph "i") evs));
    check bool "counter events present" true
      (List.exists (ph "C") evs);
    check bool "thread metadata present" true
      (List.exists (ph "M") evs);
    (* Serialize-and-reparse is structure-preserving. *)
    check bool "round-trip" true
      (json_equal (Obs.Json.parse (Obs.Json.to_string doc)) doc)
  | _ -> Alcotest.fail "missing traceEvents array"

(* ------------------------------------------------------------------ *)
(* Aggregation *)

let test_agg_phases =
  with_recording @@ fun () ->
  Obs.Span.with_ "p" (fun () ->
      Obs.Span.with_ "q" (fun () -> ());
      Obs.Span.with_ "q" (fun () -> ());
      Obs.Span.event "not-a-span");
  let rows = Obs.Agg.phases (Obs.drain ()) in
  let tags = List.map (fun r -> r.Obs.Agg.r_path, r.Obs.Agg.r_name) rows in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "rows chronological, instants excluded"
    [ "", "p"; "p", "q" ]
    tags;
  let q = List.find (fun r -> r.Obs.Agg.r_name = "q") rows in
  check int "repeat spans folded" 2 q.Obs.Agg.r_count;
  check bool "durations summed" true (q.Obs.Agg.r_total >= 0.)

(* ------------------------------------------------------------------ *)
(* Histograms: bucketing, quantiles and the exact-percentile helper
   the load generator shares. *)

let with_metrics f =
  Obs.set_metrics_enabled true;
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.set_metrics_enabled false;
      Obs.reset ())

let test_hist_quantiles () =
  with_metrics @@ fun () ->
  let h = Obs.Hist.make_ms "test.h-quantiles" in
  check (Alcotest.float 0.) "empty histogram quantile" 0.
    (Obs.Hist.quantile h 50);
  for i = 1 to 100 do
    Obs.Hist.observe h (float_of_int i)
  done;
  (* Log buckets report an upper bound: the quantile may overshoot the
     exact value by one bucket width (<= 2^(1/4) here) but never
     undershoots it. *)
  List.iter
    (fun p ->
       let q = Obs.Hist.quantile h p in
       let exact = float_of_int p in
       check bool
         (Printf.sprintf "p%d in [exact, exact * 2^(1/4)]" p)
         true
         (q >= exact && q <= exact *. Float.exp2 0.25 *. 1.0001))
    [ 50; 90; 99 ]

let test_hist_nan_and_overflow () =
  with_metrics @@ fun () ->
  let h = Obs.Hist.make_ms "test.h-edges" in
  Obs.Hist.observe h Float.nan;
  Obs.Hist.observe h 1e12;
  (* Both land in real buckets: the quantile walk still terminates and
     the total still counts them. *)
  check bool "underflow + overflow counted" true
    (Obs.Hist.quantile h 100 > 0.)

let test_percentile_exact () =
  let pe = Obs.Hist.percentile_exact in
  check (Alcotest.float 0.) "empty is 0, not nan" 0. (pe [||] 50);
  check (Alcotest.float 0.) "singleton" 42. (pe [| 42. |] 50);
  check (Alcotest.float 0.) "two samples, p50 is the lower" 1.
    (pe [| 2.; 1. |] 50);
  check (Alcotest.float 0.) "two samples, p99 is the upper" 2.
    (pe [| 2.; 1. |] 99);
  check (Alcotest.float 0.) "p clamped above" 3. (pe [| 1.; 2.; 3. |] 200);
  check (Alcotest.float 0.) "input left unsorted" 2.
    (let a = [| 2.; 1. |] in
     ignore (pe a 99 : float);
     a.(0))

let test_hist_gated_off () =
  (* Like counters, histograms record nothing when neither tracing nor
     the metrics plane is armed. *)
  let h = Obs.Hist.make_ms "test.h-gated" in
  Obs.Hist.observe h 5.;
  with_metrics @@ fun () ->
  check (Alcotest.float 0.) "observation before arming dropped" 0.
    (Obs.Hist.quantile h 100)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      "clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ];
      ( "span",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "add_attr" `Quick test_span_add_attr;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
        ] );
      ( "disabled",
        [ Alcotest.test_case "no events, no metrics" `Quick
            test_disabled_no_events ] );
      "metrics", [ Alcotest.test_case "counters and gauges" `Quick test_counters ];
      ( "hist",
        [
          Alcotest.test_case "log-bucket quantiles" `Quick
            test_hist_quantiles;
          Alcotest.test_case "nan and overflow land in buckets" `Quick
            test_hist_nan_and_overflow;
          Alcotest.test_case "percentile_exact edge cases" `Quick
            test_percentile_exact;
          Alcotest.test_case "gated off when unarmed" `Quick
            test_hist_gated_off;
        ] );
      ( "drain",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_drain_deterministic_across_jobs;
          Alcotest.test_case "worker spans under submitter" `Quick
            test_worker_spans_have_submitter_path;
        ] );
      "json", [ Alcotest.test_case "parse and print" `Quick test_json_parse ];
      ( "export",
        [
          Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
          Alcotest.test_case "normalize idempotent" `Quick
            test_normalize_idempotent;
          Alcotest.test_case "chrome valid json" `Quick test_chrome_valid;
        ] );
      "agg", [ Alcotest.test_case "phases" `Quick test_agg_phases ];
    ]
