(* Telemetry battery: the metrics/health wire plane and the flight
   recorder.

   Wire goldens for the new [metrics] and [health] ops, the
   determinism contract for metrics replies (byte-identical after
   {!Server.Protocol.normalize_metrics} whichever jobs count solved
   the warming traffic), Prometheus rendering, and the flight
   recorder's bounded-ring and dump-round-trip contracts (every dumped
   line must satisfy what [trace-check]'s JSONL branch asserts: a JSON
   object carrying [kind] and [name]).

   Run via the @metrics alias at COMPACT_JOBS=1 and COMPACT_JOBS=4. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let ts = Alcotest.string

module J = Obs.Json
module Protocol = Server.Protocol
module Engine = Server.Engine

let defaults = Compact.Pipeline.default_options

let parse line = Protocol.parse_request ~defaults line

(* Arm the metrics plane around [f] the way [Sock.serve] does, leaving
   no global residue for the other test binaries sharing this process'
   registry. *)
let with_metrics f =
  Resilience.Inject.disable ();
  Obs.set_metrics_enabled true;
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.set_metrics_enabled false;
      Obs.reset ())

let with_recorder f =
  Resilience.Inject.disable ();
  Obs.Recorder.set_enabled true;
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.Recorder.set_enabled false;
      Obs.reset ())

(* ------------------------------------------------------------------ *)
(* Wire-protocol goldens *)

let parse_tests =
  [
    Alcotest.test_case "metrics and health parse" `Quick (fun () ->
        (match parse {|{"op":"metrics","id":"m"}|} with
         | Ok (Protocol.Metrics id) ->
           check tb "id round-trips" true (id = J.Str "m")
         | _ -> Alcotest.fail "expected Metrics");
        match parse {|{"op":"health"}|} with
        | Ok (Protocol.Health id) -> check tb "null id" true (id = J.Null)
        | _ -> Alcotest.fail "expected Health");
    Alcotest.test_case "normalize_metrics passes junk through" `Quick
      (fun () ->
         check ts "non-JSON unchanged" "not json"
           (Protocol.normalize_metrics "not json"));
    Alcotest.test_case "health reply golden" `Quick (fun () ->
        with_metrics @@ fun () ->
        let e = Engine.create Engine.default_config in
        ignore (Engine.handle e {|{"op":"synth","id":1,"expr":"a & b"}|}
                : string);
        let reply = Engine.handle e {|{"op":"health","id":"h"}|} in
        Engine.close e;
        check ts "normalized health reply"
          {|{"id":"h","ok":true,"status":"ok","uptime_s":0,"draining":false,"in_flight":0,"recovered":0,"dropped":0,"cache_entries":1}|}
          (Protocol.normalize_metrics reply));
  ]

(* ------------------------------------------------------------------ *)
(* The metrics reply: coverage and byte-determinism *)

let warm_lines =
  [
    {|{"op":"synth","id":1,"expr":"(a & b) | (c & ~d)"}|};
    {|{"op":"synth","id":2,"expr":"(a & b) | (c & ~d)"}|};
    {|{"op":"synth","id":3,"expr":"a ^ (b | c)"}|};
  ]

let metrics_reply_after ~jobs =
  let e = Engine.create { Engine.default_config with Engine.jobs } in
  List.iter (fun l -> ignore (Engine.handle e l : string)) warm_lines;
  let reply = Engine.handle e {|{"op":"metrics","id":"m"}|} in
  Engine.close e;
  reply

let member_exn k j =
  match J.member k j with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "reply lacks %S" k)

let hist_names j =
  match member_exn "hists" j with
  | J.Arr hs ->
    List.map
      (fun h ->
         match J.member "name" h with
         | Some (J.Str n) -> n
         | _ -> Alcotest.fail "histogram without a name")
      hs
  | _ -> Alcotest.fail "hists is not an array"

let metrics_tests =
  [
    Alcotest.test_case "reply carries every server metric with quantiles"
      `Quick (fun () ->
        with_metrics @@ fun () ->
        let j = J.parse (metrics_reply_after ~jobs:1) in
        check tb "ok" true (J.member "ok" j = Some (J.Bool true));
        let counters =
          match member_exn "counters" j with
          | J.Obj kvs -> List.map fst kvs
          | _ -> Alcotest.fail "counters is not an object"
        in
        List.iter
          (fun c ->
             check tb (c ^ " counted") true (List.mem c counters))
          [ "server.requests"; "server.solves"; "cache.hits";
            "cache.misses" ];
        let hists = hist_names j in
        List.iter
          (fun h -> check tb (h ^ " present") true (List.mem h hists))
          [ "server.request-ms"; "server.solve-ms"; "server.verify-ms";
            "server.cache-probe-ms"; "server.batch-size" ];
        (* Every histogram carries the full quantile block and a
           consistent bucket total. *)
        match member_exn "hists" j with
        | J.Arr hs ->
          List.iter
            (fun h ->
               List.iter
                 (fun q ->
                    match J.member q h with
                    | Some (J.Num _) -> ()
                    | _ -> Alcotest.fail (q ^ " missing"))
                 [ "count"; "p50"; "p90"; "p99"; "max" ];
               match J.member "count" h, J.member "buckets" h with
               | Some (J.Num n), Some (J.Arr buckets) ->
                 let total =
                   List.fold_left
                     (fun acc b ->
                        match b with
                        | J.Arr [ _; J.Num c ] -> acc + int_of_float c
                        | _ -> Alcotest.fail "malformed bucket")
                     0 buckets
                 in
                 check ti "bucket counts sum to count" (int_of_float n)
                   total
               | _ -> Alcotest.fail "count/buckets missing")
            hs
        | _ -> assert false);
    Alcotest.test_case "normalized reply byte-identical at jobs 1 and 4"
      `Quick (fun () ->
        let run jobs =
          with_metrics @@ fun () ->
          Protocol.normalize_metrics (metrics_reply_after ~jobs)
        in
        let r1 = run 1 and r4 = run 4 in
        check ts "metrics replies agree" r1 r4);
    Alcotest.test_case "prometheus rendering round-trips the reply" `Quick
      (fun () ->
        with_metrics @@ fun () ->
        let j = J.parse (metrics_reply_after ~jobs:1) in
        match Obs.Metrics.of_json j with
        | None -> Alcotest.fail "reply did not parse as a metrics view"
        | Some view ->
          let text = Obs.Metrics.prometheus view in
          check tb "counter series present" true
            (let re = "compact_server_requests " in
             let rec find i =
               i + String.length re <= String.length text
               && (String.sub text i (String.length re) = re || find (i + 1))
             in
             find 0);
          check tb "histogram +Inf bucket present" true
            (let re = {|le="+Inf"|} in
             let rec find i =
               i + String.length re <= String.length text
               && (String.sub text i (String.length re) = re || find (i + 1))
             in
             find 0));
    Alcotest.test_case "drain resets histograms" `Quick (fun () ->
        with_metrics @@ fun () ->
        ignore (metrics_reply_after ~jobs:1 : string);
        ignore (Obs.drain () : Obs.snapshot);
        let j = J.parse (metrics_reply_after ~jobs:1) in
        match member_exn "hists" j with
        | J.Arr hs ->
          List.iter
            (fun h ->
               match J.member "name" h, J.member "count" h with
               | Some (J.Str "server.batch-size"), Some (J.Num n) ->
                 (* Only the post-drain warming traffic: 3 synth
                    batches plus the metrics request's own batch. *)
                 check ti "batch count restarted" 4 (int_of_float n)
               | _ -> ())
            hs
        | _ -> assert false);
  ]

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let recorder_tests =
  [
    Alcotest.test_case "ring stays bounded under span floods" `Quick
      (fun () ->
         with_recorder @@ fun () ->
         for i = 1 to (2 * Obs.Recorder.capacity) + 17 do
           Obs.Span.with_ "flood" (fun () -> ignore i)
         done;
         let snap = Obs.Recorder.snapshot () in
         check tb "at most one ring's worth on this domain" true
           (List.length snap.Obs.events <= Obs.Recorder.capacity);
         check tb "ring kept the newest events" true
           (List.length snap.Obs.events = Obs.Recorder.capacity));
    Alcotest.test_case "dump satisfies the trace-check JSONL contract"
      `Quick (fun () ->
        with_recorder @@ fun () ->
        let e = Engine.create Engine.default_config in
        List.iter (fun l -> ignore (Engine.handle e l : string)) warm_lines;
        Engine.close e;
        let dump = Obs.Recorder.dump_jsonl () in
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' dump)
        in
        check tb "dump is non-empty" true (lines <> []);
        List.iter
          (fun line ->
             let j = J.parse line in
             (match J.member "kind" j with
              | Some (J.Str ("span" | "instant")) -> ()
              | _ -> Alcotest.fail "line lacks a kind");
             match J.member "name" j with
             | Some (J.Str _) -> ()
             | _ -> Alcotest.fail "line lacks a name")
          lines;
        check tb "request spans made it into the ring" true
          (List.exists
             (fun l ->
                match J.member "name" (J.parse l) with
                | Some (J.Str "request") -> true
                | _ -> false)
             lines));
    Alcotest.test_case "dump_file writes atomically and normalizes" `Quick
      (fun () ->
        with_recorder @@ fun () ->
        Obs.Span.with_ "alpha" (fun () ->
            Obs.Span.with_ "beta" (fun () -> ()));
        let path =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "flight-test-%d.jsonl" (Unix.getpid ()))
        in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
             Obs.Recorder.dump_file path;
             let ic = open_in path in
             let n = in_channel_length ic in
             let body = really_input_string ic n in
             close_in ic;
             let snap = Obs.Export.parse_jsonl body in
             let events = snap.Obs.events in
             check tb "both spans present" true
               (List.exists (fun ev -> ev.Obs.ev_name = "beta") events
                && List.exists (fun ev -> ev.Obs.ev_name = "alpha") events);
             (* The replay path the dump feeds: phases must aggregate. *)
             let rows = Obs.Agg.phases snap in
             check tb "profile --from sees phases" true
               (List.length rows >= 2)));
    Alcotest.test_case "recorder alone leaves tracing buffers empty" `Quick
      (fun () ->
        (* Recorder-only semantics: force tracing off even when the
           whole run is traced (COMPACT_TRACE=1 in CI). *)
        let saved = Obs.enabled () in
        Obs.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Obs.set_enabled saved)
          (fun () ->
             with_recorder @@ fun () ->
             for _ = 1 to 50 do
               Obs.Span.with_ "quiet" (fun () -> ())
             done;
             let snap = Obs.drain () in
             check ti "no traced events accumulate" 0
               (List.length snap.Obs.events)));
  ]

let () =
  Alcotest.run "metrics"
    [
      "protocol", parse_tests;
      "metrics", metrics_tests;
      "recorder", recorder_tests;
    ]
