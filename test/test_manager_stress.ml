(* Stress tests for the packed BDD manager: rehash-boundary canonicity,
   exact node budgets, and deep builds that would overflow the stack with
   a recursive implementation. *)

let check = Alcotest.check
let ti = Alcotest.int
let tb = Alcotest.bool

module M = Bdd.Manager

(* Tournament parity over [n] variables: O(n log n) ite work and worklists
   as deep as the variable order. *)
let balanced_parity man n =
  let rec reduce = function
    | [] -> M.zero
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | a :: b :: rest -> M.xor man a b :: pair rest
        | tail -> tail
      in
      reduce (pair xs)
  in
  reduce (List.init n (M.var man))

let rehash_tests =
  [
    Alcotest.test_case "var handles survive table growth" `Quick (fun () ->
        (* The unique table starts at 4096 slots and rehashes at 75%
           load, so 5000 single-variable nodes cross the boundary. *)
        let man = M.create ~num_vars:5000 () in
        let before = Array.init 5000 (M.var man) in
        check tb "rehashed at least once" true ((M.stats man).growths >= 1);
        Array.iteri
          (fun i n -> check ti (Printf.sprintf "var %d" i) n (M.var man i))
          before);
    Alcotest.test_case "rebuild across rehashes is canonical" `Quick
      (fun () ->
         let man = M.create ~num_vars:4096 () in
         let p1 = balanced_parity man 4096 in
         check tb "rehashed during the build" true
           ((M.stats man).growths >= 1);
         let allocated_mid = M.allocated man in
         (* The second build must find every node in the regrown table:
            identical handle, not merely an equivalent diagram. *)
         let p2 = balanced_parity man 4096 in
         check ti "identical root handle" p1 p2;
         check ti "no new nodes on rebuild" allocated_mid (M.allocated man));
    Alcotest.test_case "mixed ops stay canonical after growth" `Quick
      (fun () ->
         let man = M.create ~num_vars:64 () in
         let f = balanced_parity man 64 in
         let g = M.and_ man (M.var man 0) (M.var man 1) in
         let h1 = M.ite man g f (M.not_ man f) in
         (* Force extra churn, then recompute the same function. *)
         ignore (balanced_parity man 63);
         M.clear_caches man;
         let h2 = M.ite man g f (M.not_ man f) in
         check ti "same handle after cache clear" h1 h2);
  ]

let budget_tests =
  [
    Alcotest.test_case "Size_limit fires at exactly the budget" `Quick
      (fun () ->
         (* allocated counts the two terminals; a budget of [2 + k]
            admits exactly [k] internal nodes. *)
         let k = 40 in
         let man = M.create ~node_limit:(2 + k) ~num_vars:64 () in
         for i = 0 to k - 1 do
           ignore (M.var man i)
         done;
         check ti "at budget" (2 + k) (M.allocated man);
         (* A lookup of an existing node must NOT raise... *)
         check ti "lookup at budget" (M.var man 0) (M.var man 0);
         (* ...but the next fresh allocation must. *)
         check tb "raises one past the budget" true
           (match M.var man k with
            | exception M.Size_limit reported ->
              reported = 2 + k
            | _ -> false));
    Alcotest.test_case "Size_limit aborts a deep ite cleanly" `Quick
      (fun () ->
         let man = M.create ~node_limit:600 ~num_vars:1024 () in
         check tb "raises" true
           (match balanced_parity man 1024 with
            | exception M.Size_limit _ -> true
            | _ -> false);
         (* The manager stays usable for lookups of existing nodes: the
            worklist scratch was reset by the abort. *)
         let v0 = M.var man 0 in
         check ti "existing node still canonical" v0 (M.var man 0);
         check tb "still consistent" true (M.eval man v0 (fun i -> i = 0)));
  ]

let deep_tests =
  [
    Alcotest.test_case "16k-var chained-XOR builds without overflow" `Quick
      (fun () ->
         (* Parity over 16384 variables: one node per level, so the
            diagram is 16k nodes deep — a recursive ite would blow the
            stack long before this. *)
         let n = 16384 in
         let man = M.create ~num_vars:n () in
         let p = balanced_parity man n in
         check tb ">= 10k nodes" true (M.size man [ p ] >= 10_000);
         (* Parity semantics on a few assignments. *)
         check tb "all-false" false (M.eval man p (fun _ -> false));
         check tb "one bit" true (M.eval man p (fun i -> i = 12_345));
         check tb "two bits" false
           (M.eval man p (fun i -> i = 3 || i = 9_999));
         (* Every variable is in the support, in order. *)
         check ti "support size" n (List.length (M.support man p)));
    Alcotest.test_case "deep restrict and quantification" `Quick (fun () ->
        let n = 12_000 in
        let man = M.create ~num_vars:n () in
        let p = balanced_parity man n in
        (* Fixing one variable flips parity polarity, never overflows. *)
        let r = M.restrict man p ~var:(n / 2) true in
        check tb "restricted parity" true (M.eval man r (fun _ -> false));
        (* Quantifying it away makes the function var-independent. *)
        let q = M.exists man ~var:(n / 2) p in
        check ti "tautology" M.one q);
  ]

let () =
  Alcotest.run "manager-stress"
    [
      "rehash", rehash_tests;
      "budget", budget_tests;
      "deep", deep_tests;
    ]
