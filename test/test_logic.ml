(* Tests for the logic front-end: expressions, parser, cubes, truth
   tables, netlists, BLIF and PLA readers/writers. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let ts = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Expression helpers and generators *)

let e = Logic.Parse.expr


(* Random expressions over variables x0..x3. *)
let expr_gen =
  let open QCheck2.Gen in
  let var_names = [ "x0"; "x1"; "x2"; "x3" ] in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun v -> Logic.Expr.var v) (oneofl var_names);
            oneofl [ Logic.Expr.tru; Logic.Expr.fls ] ]
      else
        frequency
          [ 1, map (fun v -> Logic.Expr.var v) (oneofl var_names);
            2, map Logic.Expr.not_ (self (n - 1));
            2, map2 (fun a b -> Logic.Expr.and_ [ a; b ])
                 (self (n / 2)) (self (n / 2));
            2, map2 (fun a b -> Logic.Expr.or_ [ a; b ])
                 (self (n / 2)) (self (n / 2));
            1, map2 Logic.Expr.xor (self (n / 2)) (self (n / 2)) ])

let env_gen =
  QCheck2.Gen.(
    map (fun bits v ->
        match v with
        | "x0" -> bits land 1 <> 0
        | "x1" -> bits land 2 <> 0
        | "x2" -> bits land 4 <> 0
        | "x3" -> bits land 8 <> 0
        | _ -> false)
      (int_bound 15))

(* The @proptest alias re-runs the property tests with QCHECK_MULT-times
   the default case count (see test/dune). *)
let qcheck_mult =
  match Option.bind (Sys.getenv_opt "QCHECK_MULT") int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> 1

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:(count * qcheck_mult) ~name gen prop)

(* ------------------------------------------------------------------ *)

let expr_tests =
  [
    Alcotest.test_case "constants" `Quick (fun () ->
        check tb "tru" true (Logic.Expr.eval (fun _ -> false) Logic.Expr.tru);
        check tb "fls" false (Logic.Expr.eval (fun _ -> true) Logic.Expr.fls));
    Alcotest.test_case "and flattening" `Quick (fun () ->
        let a = Logic.Expr.var "a" and b = Logic.Expr.var "b" in
        let c = Logic.Expr.var "c" in
        match Logic.Expr.and_ [ Logic.Expr.and_ [ a; b ]; c ] with
        | Logic.Expr.And [ _; _; _ ] -> ()
        | other ->
          Alcotest.failf "expected flat 3-ary And, got %s"
            (Logic.Expr.to_string other));
    Alcotest.test_case "and short-circuits on false" `Quick (fun () ->
        check tb "fls" true
          (Logic.Expr.equal
             (Logic.Expr.and_ [ Logic.Expr.var "a"; Logic.Expr.fls ])
             Logic.Expr.fls));
    Alcotest.test_case "or drops false units" `Quick (fun () ->
        check tb "var" true
          (Logic.Expr.equal
             (Logic.Expr.or_ [ Logic.Expr.fls; Logic.Expr.var "a" ])
             (Logic.Expr.var "a")));
    Alcotest.test_case "double negation removed" `Quick (fun () ->
        let a = Logic.Expr.var "a" in
        check tb "a" true
          (Logic.Expr.equal (Logic.Expr.not_ (Logic.Expr.not_ a)) a));
    Alcotest.test_case "xor constant folding" `Quick (fun () ->
        let a = Logic.Expr.var "a" in
        check tb "xor 0 a = a" true
          (Logic.Expr.equal (Logic.Expr.xor Logic.Expr.fls a) a);
        check tb "xor 1 a = !a" true
          (Logic.Expr.equal (Logic.Expr.xor Logic.Expr.tru a)
             (Logic.Expr.not_ a)));
    Alcotest.test_case "vars sorted and unique" `Quick (fun () ->
        check
          Alcotest.(list string)
          "vars" [ "a"; "b"; "c" ]
          (Logic.Expr.vars (e "c & a | b & a")));
    Alcotest.test_case "size and depth" `Quick (fun () ->
        let f = e "!a & b" in
        check ti "size" 4 (Logic.Expr.size f);
        check ti "depth" 3 (Logic.Expr.depth f));
    Alcotest.test_case "eval examples" `Quick (fun () ->
        let f = e "(a & b) | c" in
        check tb "110" true
          (Logic.Expr.eval_list [ "a", true; "b", true; "c", false ] f);
        check tb "100" false
          (Logic.Expr.eval_list [ "a", true; "b", false; "c", false ] f));
    Alcotest.test_case "cofactor fixes a variable" `Quick (fun () ->
        let f = e "(a & b) | c" in
        let f1 = Logic.Expr.cofactor "a" true f in
        check tb "sem" true (Logic.Expr.semantically_equal f1 (e "b | c")));
    Alcotest.test_case "substitute" `Quick (fun () ->
        let f = e "a & b" in
        let g =
          Logic.Expr.substitute
            (fun v -> if v = "a" then Some (e "c | d") else None)
            f
        in
        check tb "sem" true (Logic.Expr.semantically_equal g (e "(c | d) & b")));
    Alcotest.test_case "semantic equality: de Morgan" `Quick (fun () ->
        check tb "sem" true
          (Logic.Expr.semantically_equal (e "!(a & b)") (e "!a | !b")));
    Alcotest.test_case "semantic equality: xor expansion" `Quick (fun () ->
        check tb "sem" true
          (Logic.Expr.semantically_equal (e "a ^ b")
             (e "(a & !b) | (!a & b)")));
    Alcotest.test_case "semantic inequality" `Quick (fun () ->
        check tb "sem" false
          (Logic.Expr.semantically_equal (e "a | b") (e "a & b")));
    Alcotest.test_case "ite" `Quick (fun () ->
        let f = Logic.Expr.ite (e "c") (e "a") (e "b") in
        check tb "sem" true
          (Logic.Expr.semantically_equal f (e "(c & a) | (!c & b)")));
    qcheck_case "not involutive (semantics)"
      QCheck2.Gen.(pair expr_gen env_gen)
      (fun (f, env) ->
         Logic.Expr.eval env (Logic.Expr.not_ f) = not (Logic.Expr.eval env f));
    qcheck_case "cofactor agrees with eval"
      QCheck2.Gen.(pair expr_gen env_gen)
      (fun (f, env) ->
         let v = "x0" in
         let cof = Logic.Expr.cofactor v (env v) f in
         Logic.Expr.eval env cof = Logic.Expr.eval env f);
    qcheck_case "printer/parser round trip"
      QCheck2.Gen.(pair expr_gen env_gen)
      (fun (f, env) ->
         let f' = Logic.Parse.expr (Logic.Expr.to_string f) in
         Logic.Expr.eval env f' = Logic.Expr.eval env f);
  ]

let parse_tests =
  [
    Alcotest.test_case "precedence: or < and" `Quick (fun () ->
        check tb "sem" true
          (Logic.Expr.semantically_equal (e "a | b & c") (e "a | (b & c)")));
    Alcotest.test_case "precedence: xor between or and and" `Quick (fun () ->
        check tb "sem" true
          (Logic.Expr.semantically_equal (e "a ^ b & c | d")
             (e "(a ^ (b & c)) | d")));
    Alcotest.test_case "alternative operator spellings" `Quick (fun () ->
        check tb "sem" true
          (Logic.Expr.semantically_equal (e "a + b * ~c") (e "a | (b & !c)")));
    Alcotest.test_case "constants" `Quick (fun () ->
        check tb "sem" true (Logic.Expr.semantically_equal (e "a & 1") (e "a"));
        check tb "sem" true (Logic.Expr.semantically_equal (e "a & 0") (e "0")));
    Alcotest.test_case "identifiers with digits and brackets" `Quick (fun () ->
        match e "data[3] & x_1" with
        | Logic.Expr.And [ Logic.Expr.Var "data[3]"; Logic.Expr.Var "x_1" ] ->
          ()
        | other -> Alcotest.failf "parsed %s" (Logic.Expr.to_string other));
    Alcotest.test_case "error: trailing garbage" `Quick (fun () ->
        check tb "none" true (Logic.Parse.expr_opt "a b" = None));
    Alcotest.test_case "error: unbalanced parenthesis" `Quick (fun () ->
        check tb "none" true (Logic.Parse.expr_opt "(a & b" = None));
    Alcotest.test_case "error: empty input" `Quick (fun () ->
        check tb "none" true (Logic.Parse.expr_opt "" = None));
    Alcotest.test_case "error: stray operator" `Quick (fun () ->
        check tb "none" true (Logic.Parse.expr_opt "& a" = None));
  ]

(* ------------------------------------------------------------------ *)

let cube_tests =
  [
    Alcotest.test_case "string round trip" `Quick (fun () ->
        check ts "same" "1-0" (Logic.Cube.to_string (Logic.Cube.of_string "1-0")));
    Alcotest.test_case "of_string rejects junk" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Cube.of_string: bad character '2'") (fun () ->
            ignore (Logic.Cube.of_string "12")));
    Alcotest.test_case "matches" `Quick (fun () ->
        let c = Logic.Cube.of_string "1-0" in
        check tb "110" true (Logic.Cube.matches c [| true; true; false |]);
        check tb "100" true (Logic.Cube.matches c [| true; false; false |]);
        check tb "111" false (Logic.Cube.matches c [| true; true; true |]));
    Alcotest.test_case "minterm count is 2^dashes" `Quick (fun () ->
        let c = Logic.Cube.of_string "1--0" in
        check ti "count" 4 (List.length (Logic.Cube.minterms c 4)));
    Alcotest.test_case "cover_to_expr matches cover_eval" `Quick (fun () ->
        let cubes = List.map Logic.Cube.of_string [ "11-"; "--1" ] in
        let names = [| "a"; "b"; "c" |] in
        let f = Logic.Cube.cover_to_expr ~names cubes in
        for m = 0 to 7 do
          let point = Array.init 3 (fun i -> m land (1 lsl i) <> 0) in
          let env v = point.(if v = "a" then 0 else if v = "b" then 1 else 2) in
          check tb
            (Printf.sprintf "m=%d" m)
            (Logic.Cube.cover_eval cubes point)
            (Logic.Expr.eval env f)
        done);
    Alcotest.test_case "empty cover is false" `Quick (fun () ->
        check tb "false" true
          (Logic.Expr.equal
             (Logic.Cube.cover_to_expr ~names:[| "a" |] [])
             Logic.Expr.fls));
  ]

(* ------------------------------------------------------------------ *)

let tt_tests =
  [
    Alcotest.test_case "of_exprs and value" `Quick (fun () ->
        let tt =
          Logic.Truth_table.of_exprs ~inputs:[ "a"; "b" ]
            [ "and", e "a & b"; "or", e "a | b" ]
        in
        check ti "inputs" 2 (Logic.Truth_table.num_inputs tt);
        check tb "and(3)" true (Logic.Truth_table.value tt ~output:0 3);
        check tb "and(1)" false (Logic.Truth_table.value tt ~output:0 1);
        check tb "or(1)" true (Logic.Truth_table.value tt ~output:1 1));
    Alcotest.test_case "count_ones" `Quick (fun () ->
        let tt =
          Logic.Truth_table.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ "f", e "a ^ b ^ c" ]
        in
        check ti "parity has 4 ones" 4 (Logic.Truth_table.count_ones tt ~output:0));
    Alcotest.test_case "eval round trip" `Quick (fun () ->
        let tt =
          Logic.Truth_table.of_exprs ~inputs:[ "a"; "b" ] [ "f", e "a & !b" ]
        in
        check tb "10" true (Logic.Truth_table.eval tt [| true; false |]).(0);
        check tb "11" false (Logic.Truth_table.eval tt [| true; true |]).(0));
    Alcotest.test_case "equal is structural on bits" `Quick (fun () ->
        let t1 =
          Logic.Truth_table.of_exprs ~inputs:[ "a"; "b" ] [ "f", e "a & b" ]
        in
        let t2 =
          Logic.Truth_table.of_exprs ~inputs:[ "a"; "b" ] [ "f", e "!(!a | !b)" ]
        in
        check tb "equal" true (Logic.Truth_table.equal t1 t2));
    Alcotest.test_case "rejects foreign variables" `Quick (fun () ->
        check tb "raises" true
          (match
             Logic.Truth_table.of_exprs ~inputs:[ "a" ] [ "f", e "a & b" ]
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "input limit enforced" `Quick (fun () ->
        let too_many = List.init 21 (fun i -> Printf.sprintf "v%d" i) in
        check tb "raises" true
          (match
             Logic.Truth_table.create ~inputs:too_many ~outputs:[ "f" ]
               (fun _ -> [| false |])
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* ------------------------------------------------------------------ *)

let sample_netlist () =
  Logic.Netlist.create ~name:"sample" ~inputs:[ "a"; "b"; "c" ]
    ~outputs:[ "f"; "g" ]
    [
      Logic.Netlist.n_and "t" [ "a"; "b" ];
      Logic.Netlist.n_expr "f" (e "t | c");
      Logic.Netlist.n_xor "g" "t" "c";
    ]

let netlist_tests =
  [
    Alcotest.test_case "eval" `Quick (fun () ->
        let nl = sample_netlist () in
        let out = Logic.Netlist.eval nl (fun v -> v = "a" || v = "b") in
        check tb "f" true (List.assoc "f" out);
        check tb "g" true (List.assoc "g" out));
    Alcotest.test_case "output_exprs semantics" `Quick (fun () ->
        let nl = sample_netlist () in
        let f = List.assoc "f" (Logic.Netlist.output_exprs nl) in
        check tb "sem" true
          (Logic.Expr.semantically_equal f (e "(a & b) | c")));
    Alcotest.test_case "to_truth_table" `Quick (fun () ->
        let nl = sample_netlist () in
        let tt = Logic.Netlist.to_truth_table nl in
        let expected =
          Logic.Truth_table.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ "f", e "(a & b) | c"; "g", e "(a & b) ^ c" ]
        in
        check tb "equal" true (Logic.Truth_table.equal tt expected));
    Alcotest.test_case "rejects undefined wires" `Quick (fun () ->
        check tb "raises" true
          (match
             Logic.Netlist.create ~name:"bad" ~inputs:[ "a" ] ~outputs:[ "f" ]
               [ Logic.Netlist.n_and "f" [ "a"; "ghost" ] ]
           with
           | exception Logic.Netlist.Ill_formed _ -> true
           | _ -> false));
    Alcotest.test_case "rejects undriven output" `Quick (fun () ->
        check tb "raises" true
          (match
             Logic.Netlist.create ~name:"bad" ~inputs:[ "a" ] ~outputs:[ "f" ] []
           with
           | exception Logic.Netlist.Ill_formed _ -> true
           | _ -> false));
    Alcotest.test_case "rejects redefined wire" `Quick (fun () ->
        check tb "raises" true
          (match
             Logic.Netlist.create ~name:"bad" ~inputs:[ "a" ] ~outputs:[ "t" ]
               [ Logic.Netlist.n_buf "t" "a"; Logic.Netlist.n_not "t" "a" ]
           with
           | exception Logic.Netlist.Ill_formed _ -> true
           | _ -> false));
    Alcotest.test_case "output can be a primary input" `Quick (fun () ->
        let nl =
          Logic.Netlist.create ~name:"wire" ~inputs:[ "a" ] ~outputs:[ "a" ] []
        in
        check tb "id" true
          (List.assoc "a" (Logic.Netlist.eval nl (fun _ -> true))));
    Alcotest.test_case "rename prefixes everything" `Quick (fun () ->
        let nl = Logic.Netlist.rename (sample_netlist ()) ~prefix:"p_" in
        check tb "inputs" true (List.mem "p_a" nl.inputs);
        check tb "outputs" true (List.mem "p_f" nl.outputs);
        let out = Logic.Netlist.eval nl (fun _ -> true) in
        check tb "f" true (List.assoc "p_f" out));
    Alcotest.test_case "literal_count" `Quick (fun () ->
        check tb "positive" true (Logic.Netlist.literal_count (sample_netlist ()) > 0));
  ]

(* ------------------------------------------------------------------ *)

let blif_sample =
  {|# a tiny model
.model tiny
.inputs a b c
.outputs f g
.names a b t
11 1
.names t c f
1- 1
-1 1
.names t c g   # xor via 0-rows
00 0
11 0
.end|}

let blif_tests =
  [
    Alcotest.test_case "parse sample" `Quick (fun () ->
        let nl = Logic.Blif.parse_string blif_sample in
        check ts "name" "tiny" nl.name;
        check ti "inputs" 3 (Logic.Netlist.num_inputs nl);
        let tt = Logic.Netlist.to_truth_table nl in
        let expected =
          Logic.Truth_table.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ "f", e "(a & b) | c"; "g", e "!(a & b) & c | (a & b) & !c" ]
        in
        check tb "semantics" true (Logic.Truth_table.equal tt expected));
    Alcotest.test_case "print/parse round trip" `Quick (fun () ->
        let nl = sample_netlist () in
        let nl' = Logic.Blif.parse_string (Logic.Blif.to_string nl) in
        check tb "equal tables" true
          (Logic.Truth_table.equal
             (Logic.Netlist.to_truth_table nl)
             (Logic.Netlist.to_truth_table nl')));
    Alcotest.test_case "out-of-order names blocks are sorted" `Quick (fun () ->
        let text =
          ".model ooo\n.inputs a\n.outputs f\n.names t f\n1 1\n.names a t\n0 1\n.end\n"
        in
        let nl = Logic.Blif.parse_string text in
        check tb "f = !a" true
          (List.assoc "f" (Logic.Netlist.eval nl (fun _ -> false))));
    Alcotest.test_case "constant node" `Quick (fun () ->
        let text = ".model k\n.inputs a\n.outputs f\n.names f\n1\n.end\n" in
        let nl = Logic.Blif.parse_string text in
        check tb "f = 1" true
          (List.assoc "f" (Logic.Netlist.eval nl (fun _ -> false))));
    Alcotest.test_case "combinational cycle rejected" `Quick (fun () ->
        let text =
          ".model cyc\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n"
        in
        check tb "raises" true
          (match Logic.Blif.parse_string text with
           | exception Logic.Netlist.Ill_formed _ -> true
           | _ -> false));
    Alcotest.test_case "latch rejected with line number" `Quick (fun () ->
        let text = ".model l\n.inputs a\n.outputs f\n.latch a f\n.end\n" in
        check tb "raises" true
          (match Logic.Blif.parse_string text with
           | exception Logic.Blif.Parse_error { line = 4; _ } -> true
           | _ -> false));
    Alcotest.test_case "continuation lines" `Quick (fun () ->
        let text =
          ".model c\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
        in
        let nl = Logic.Blif.parse_string text in
        check ti "inputs" 2 (Logic.Netlist.num_inputs nl));
  ]

(* ------------------------------------------------------------------ *)

let pla_sample = {|.i 3
.o 2
.ilb a b c
.ob f g
.p 3
11- 10
--1 10
1-1 01
.e
|}

let pla_tests =
  [
    Alcotest.test_case "parse sample" `Quick (fun () ->
        let pla = Logic.Pla.parse_string pla_sample in
        check ti "inputs" 3 pla.num_inputs;
        check ti "products" 3 (List.length pla.products));
    Alcotest.test_case "to_netlist semantics" `Quick (fun () ->
        let nl = Logic.Pla.to_netlist (Logic.Pla.parse_string pla_sample) in
        let tt = Logic.Netlist.to_truth_table nl in
        let expected =
          Logic.Truth_table.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ "f", e "(a & b) | c"; "g", e "a & c" ]
        in
        check tb "semantics" true (Logic.Truth_table.equal tt expected));
    Alcotest.test_case "print/parse round trip" `Quick (fun () ->
        let pla = Logic.Pla.parse_string pla_sample in
        let pla' = Logic.Pla.parse_string (Logic.Pla.to_string pla) in
        check tb "same products" true (pla.products = pla'.products));
    Alcotest.test_case "of_truth_table round trip" `Quick (fun () ->
        let tt =
          Logic.Truth_table.of_exprs ~inputs:[ "a"; "b" ] [ "f", e "a ^ b" ]
        in
        let nl = Logic.Pla.to_netlist (Logic.Pla.of_truth_table tt) in
        check tb "equal" true
          (Logic.Truth_table.equal tt (Logic.Netlist.to_truth_table nl)));
    Alcotest.test_case "default labels" `Quick (fun () ->
        let pla = Logic.Pla.parse_string ".i 2\n.o 1\n11 1\n.e\n" in
        check Alcotest.(list string) "ilb" [ "x0"; "x1" ] pla.input_labels);
    Alcotest.test_case "width mismatch rejected" `Quick (fun () ->
        check tb "raises" true
          (match Logic.Pla.parse_string ".i 2\n.o 1\n111 1\n.e\n" with
           | exception Logic.Pla.Parse_error _ -> true
           | _ -> false));
  ]

let verilog_sample = {|
// paper running example
module fig2 (a, b, c, f);
  input a, b, c;
  output f;
  wire t;        /* product term */
  and g1 (t, a, b);
  assign f = t | c;
endmodule
|}

let verilog_tests =
  [
    Alcotest.test_case "parse structural module" `Quick (fun () ->
        let nl = Logic.Verilog.parse_string verilog_sample in
        check ts "name" "fig2" nl.name;
        check ti "inputs" 3 (Logic.Netlist.num_inputs nl);
        let expected =
          Logic.Truth_table.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ "f", e "(a & b) | c" ]
        in
        check tb "semantics" true
          (Logic.Truth_table.equal (Logic.Netlist.to_truth_table nl) expected));
    Alcotest.test_case "vector declarations flatten" `Quick (fun () ->
        let text =
          "module v (x, p);\n input [2:0] x;\n output p;\n \
           assign p = x[0] ^ x[1] ^ x[2];\nendmodule\n"
        in
        let nl = Logic.Verilog.parse_string text in
        check Alcotest.(list string) "inputs" [ "x[0]"; "x[1]"; "x[2]" ]
          nl.inputs;
        let out = Logic.Netlist.eval nl (fun v -> v = "x[1]") in
        check tb "parity" true (List.assoc "p" out));
    Alcotest.test_case "all gate primitives" `Quick (fun () ->
        let text =
          "module g (a, b, o1, o2, o3, o4, o5, o6, o7);\n\
           input a, b;\n\
           output o1, o2, o3, o4, o5, o6, o7;\n\
           and (o1, a, b); or (o2, a, b); nand (o3, a, b);\n\
           nor (o4, a, b); xor (o5, a, b); xnor (o6, a, b);\n\
           not (o7, a);\nendmodule\n"
        in
        let nl = Logic.Verilog.parse_string text in
        let out = Logic.Netlist.eval nl (fun v -> v = "a") in
        check tb "and" false (List.assoc "o1" out);
        check tb "or" true (List.assoc "o2" out);
        check tb "nand" true (List.assoc "o3" out);
        check tb "nor" false (List.assoc "o4" out);
        check tb "xor" true (List.assoc "o5" out);
        check tb "xnor" false (List.assoc "o6" out);
        check tb "not" false (List.assoc "o7" out));
    Alcotest.test_case "out-of-order statements sorted" `Quick (fun () ->
        let text =
          "module o (a, f);\n input a;\n output f;\n wire t;\n \
           assign f = t;\n assign t = ~a;\nendmodule\n"
        in
        let nl = Logic.Verilog.parse_string text in
        check tb "f = !a" true
          (List.assoc "f" (Logic.Netlist.eval nl (fun _ -> false))));
    Alcotest.test_case "behavioural constructs rejected with line" `Quick
      (fun () ->
         let text =
           "module b (a, f);\n input a;\n output f;\n \
            always @(a) f = a;\nendmodule\n"
         in
         check tb "raises" true
           (match Logic.Verilog.parse_string text with
            | exception Logic.Verilog.Parse_error { line = 4; _ } -> true
            | exception Logic.Verilog.Parse_error _ -> true
            | _ -> false));
    Alcotest.test_case "print / parse round trip" `Quick (fun () ->
        let nl = sample_netlist () in
        let nl' = Logic.Verilog.parse_string (Logic.Verilog.to_string nl) in
        check tb "same function" true
          (Logic.Truth_table.equal
             (Logic.Netlist.to_truth_table nl)
             (Logic.Netlist.to_truth_table nl')));
    Alcotest.test_case "combinational cycle rejected" `Quick (fun () ->
        let text =
          "module c (a, f);\n input a;\n output f;\n wire x, y;\n \
           assign x = y & a;\n assign y = x;\n assign f = x;\nendmodule\n"
        in
        check tb "raises" true
          (match Logic.Verilog.parse_string text with
           | exception Logic.Netlist.Ill_formed _ -> true
           | _ -> false));
  ]

let file_io_tests =
  [
    Alcotest.test_case "blif write_file / parse_file round trip" `Quick
      (fun () ->
         let nl = sample_netlist () in
         let path = Filename.temp_file "compact_test" ".blif" in
         Fun.protect
           ~finally:(fun () -> Sys.remove path)
           (fun () ->
              Logic.Blif.write_file path nl;
              let nl' = Logic.Blif.parse_file path in
              check tb "same function" true
                (Logic.Truth_table.equal
                   (Logic.Netlist.to_truth_table nl)
                   (Logic.Netlist.to_truth_table nl'))));
    Alcotest.test_case "pla write_file / parse_file round trip" `Quick
      (fun () ->
         let tt =
           Logic.Truth_table.of_exprs ~inputs:[ "a"; "b"; "c" ]
             [ "f", e "(a & b) ^ c" ]
         in
         let pla = Logic.Pla.of_truth_table tt in
         let path = Filename.temp_file "compact_test" ".pla" in
         Fun.protect
           ~finally:(fun () -> Sys.remove path)
           (fun () ->
              Logic.Pla.write_file path pla;
              let pla' = Logic.Pla.parse_file path in
              check tb "same function" true
                (Logic.Truth_table.equal tt
                   (Logic.Netlist.to_truth_table (Logic.Pla.to_netlist pla')))));
    Alcotest.test_case "semantically_equal variable cap" `Quick (fun () ->
        let wide =
          Logic.Expr.or_ (List.init 25 (fun i -> Logic.Expr.var (Printf.sprintf "w%d" i)))
        in
        check tb "raises" true
          (match Logic.Expr.semantically_equal wide wide with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Malformed-input fuzzing: whatever bytes arrive, the BLIF/PLA parsers
   must either parse them or raise their own error exception — never
   Stack_overflow, Match_failure or an uncaught Failure. *)

let fails_cleanly parse text =
  match parse text with
  | _ -> true
  | exception Logic.Blif.Parse_error _ -> true
  | exception Logic.Pla.Parse_error _ -> true
  | exception Logic.Netlist.Ill_formed _ -> true
  | exception _ -> false

(* Mutate one sample: truncate at a random byte, then overwrite a few
   random positions with arbitrary printable characters. *)
let mutation_gen sample =
  let open QCheck2.Gen in
  let len = String.length sample in
  let mutate (cut, edits) =
    let b = Bytes.of_string (String.sub sample 0 cut) in
    List.iter
      (fun (pos, c) -> if cut > 0 then Bytes.set b (pos mod cut) c)
      edits;
    Bytes.to_string b
  in
  map mutate
    (pair (int_bound len)
       (small_list (pair (int_bound (max 0 (len - 1))) printable)))

let fuzz_tests =
  [
    qcheck_case "blif: mutations never escape Parse_error" ~count:300
      (mutation_gen blif_sample)
      (fails_cleanly Logic.Blif.parse_string);
    qcheck_case "pla: mutations never escape Parse_error" ~count:300
      (mutation_gen pla_sample)
      (fails_cleanly Logic.Pla.parse_string);
    Alcotest.test_case "blif: every truncation fails cleanly" `Quick
      (fun () ->
         for cut = 0 to String.length blif_sample - 1 do
           check tb
             (Printf.sprintf "prefix %d" cut)
             true
             (fails_cleanly Logic.Blif.parse_string
                (String.sub blif_sample 0 cut))
         done);
    Alcotest.test_case "pla: every truncation fails cleanly" `Quick (fun () ->
        for cut = 0 to String.length pla_sample - 1 do
          check tb
            (Printf.sprintf "prefix %d" cut)
            true
            (fails_cleanly Logic.Pla.parse_string
               (String.sub pla_sample 0 cut))
        done);
    Alcotest.test_case "blif: duplicate .model rejected" `Quick (fun () ->
        let text = ".model a\n.model b\n.inputs x\n.outputs f\n.end\n" in
        check tb "raises" true
          (match Logic.Blif.parse_string text with
           | exception Logic.Blif.Parse_error { line = 2; _ } -> true
           | _ -> false));
    Alcotest.test_case "pla: non-numeric .i/.o rejected" `Quick (fun () ->
        List.iter
          (fun text ->
             check tb text true
               (match Logic.Pla.parse_string text with
                | exception Logic.Pla.Parse_error _ -> true
                | _ -> false))
          [ ".i xx\n.o 1\n.e\n"; ".i 2\n.o -3\n.e\n"; ".i 1 2\n.o 1\n.e\n" ]);
    Alcotest.test_case "pla: bad cube characters rejected" `Quick (fun () ->
        check tb "raises" true
          (match Logic.Pla.parse_string ".i 2\n.o 1\n1z 1\n.e\n" with
           | exception Logic.Pla.Parse_error _ -> true
           | _ -> false));
  ]

let () =
  Alcotest.run "logic"
    [
      "expr", expr_tests;
      "parse", parse_tests;
      "cube", cube_tests;
      "truth_table", tt_tests;
      "netlist", netlist_tests;
      "blif", blif_tests;
      "pla", pla_tests;
      "verilog", verilog_tests;
      "file_io", file_io_tests;
      "fuzz", fuzz_tests;
    ]
