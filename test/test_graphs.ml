(* Tests for the graph substrate: bipartiteness, matching, vertex cover
   and odd cycle transversal (Lemma 1 of the paper). *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Random simple graph on [3, 10] vertices. *)
let graph_gen =
  QCheck2.Gen.(
    let* n = int_range 3 10 in
    let all_pairs =
      List.concat (List.init n (fun u -> List.init u (fun v -> u, v)))
    in
    let* keep = list_repeat (List.length all_pairs) bool in
    let edges = List.filteri (fun i _ -> List.nth keep i) all_pairs in
    return (n, edges))

let make_graph (n, edges) = Graphs.Ugraph.of_edges ~n edges

let cycle n =
  Graphs.Ugraph.of_edges ~n (List.init n (fun i -> i, (i + 1) mod n))

let path n = Graphs.Ugraph.of_edges ~n (List.init (n - 1) (fun i -> i, i + 1))

(* Brute-force minimum vertex cover by subset enumeration. *)
let brute_vc g =
  let n = Graphs.Ugraph.num_nodes g in
  let best = ref n in
  for mask = 0 to (1 lsl n) - 1 do
    let covered = ref true in
    Graphs.Ugraph.iter_edges
      (fun u v ->
         if mask land (1 lsl u) = 0 && mask land (1 lsl v) = 0 then
           covered := false)
      g;
    if !covered then begin
      let size = ref 0 in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then incr size
      done;
      if !size < !best then best := !size
    end
  done;
  !best

(* Brute-force minimum OCT. *)
let brute_oct g =
  let n = Graphs.Ugraph.num_nodes g in
  let best = ref n in
  for mask = 0 to (1 lsl n) - 1 do
    let removed = ref [] in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then removed := i :: !removed
    done;
    if Graphs.Oct.is_transversal g !removed then begin
      let size = List.length !removed in
      if size < !best then best := size
    end
  done;
  !best

(* ------------------------------------------------------------------ *)

let ugraph_tests =
  [
    Alcotest.test_case "duplicates and self-loops ignored" `Quick (fun () ->
        let g = Graphs.Ugraph.create 3 in
        Graphs.Ugraph.add_edge g 0 1;
        Graphs.Ugraph.add_edge g 1 0;
        Graphs.Ugraph.add_edge g 2 2;
        check ti "edges" 1 (Graphs.Ugraph.num_edges g);
        check ti "deg0" 1 (Graphs.Ugraph.degree g 0);
        check tb "has" true (Graphs.Ugraph.has_edge g 1 0);
        check tb "no self" false (Graphs.Ugraph.has_edge g 2 2));
    Alcotest.test_case "out-of-range rejected" `Quick (fun () ->
        let g = Graphs.Ugraph.create 2 in
        check tb "raises" true
          (match Graphs.Ugraph.add_edge g 0 5 with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "iter_edges each edge once, ordered" `Quick (fun () ->
        let g = make_graph (4, [ 0, 1; 2, 1; 3, 0 ]) in
        let seen = ref [] in
        Graphs.Ugraph.iter_edges (fun u v -> seen := (u, v) :: !seen) g;
        List.iter (fun (u, v) -> check tb "u<v" true (u < v)) !seen;
        check ti "count" 3 (List.length !seen));
    Alcotest.test_case "induced subgraph" `Quick (fun () ->
        let g = cycle 4 in
        let keep = [| true; true; true; false |] in
        let sub, map = Graphs.Ugraph.induced g ~keep in
        check ti "nodes" 3 (Graphs.Ugraph.num_nodes sub);
        check ti "edges" 2 (Graphs.Ugraph.num_edges sub);
        check ti "dropped" (-1) map.(3));
    Alcotest.test_case "max_degree" `Quick (fun () ->
        let g = make_graph (4, [ 0, 1; 0, 2; 0, 3 ]) in
        check ti "star" 3 (Graphs.Ugraph.max_degree g));
    Alcotest.test_case "copy is independent" `Quick (fun () ->
        let g = path 3 in
        let g2 = Graphs.Ugraph.copy g in
        Graphs.Ugraph.add_edge g2 0 2;
        check ti "orig" 2 (Graphs.Ugraph.num_edges g);
        check ti "copy" 3 (Graphs.Ugraph.num_edges g2));
  ]

let bipartite_tests =
  [
    Alcotest.test_case "even cycle is bipartite" `Quick (fun () ->
        check tb "c4" true (Graphs.Bipartite.is_bipartite (cycle 4));
        check tb "c6" true (Graphs.Bipartite.is_bipartite (cycle 6)));
    Alcotest.test_case "odd cycle is not bipartite" `Quick (fun () ->
        check tb "c3" false (Graphs.Bipartite.is_bipartite (cycle 3));
        check tb "c5" false (Graphs.Bipartite.is_bipartite (cycle 5)));
    Alcotest.test_case "two_color is proper" `Quick (fun () ->
        let g = cycle 6 in
        match Graphs.Bipartite.two_color g with
        | None -> Alcotest.fail "expected a colouring"
        | Some colors ->
          Graphs.Ugraph.iter_edges
            (fun u v -> check tb "proper" true (colors.(u) <> colors.(v)))
            g);
    Alcotest.test_case "odd_cycle witness is a valid odd cycle" `Quick
      (fun () ->
         let g = make_graph (6, [ 0, 1; 1, 2; 2, 0; 3, 4; 4, 5 ]) in
         match Graphs.Bipartite.odd_cycle g with
         | None -> Alcotest.fail "expected an odd cycle"
         | Some cyc ->
           check tb "odd length" true (List.length cyc mod 2 = 1);
           let arr = Array.of_list cyc in
           let k = Array.length arr in
           for i = 0 to k - 1 do
             check tb "edge" true
               (Graphs.Ugraph.has_edge g arr.(i) arr.((i + 1) mod k))
           done);
    Alcotest.test_case "components" `Quick (fun () ->
        let g = make_graph (5, [ 0, 1; 2, 3 ]) in
        let comp, k = Graphs.Bipartite.components g in
        check ti "count" 3 k;
        check tb "0~1" true (comp.(0) = comp.(1));
        check tb "2~3" true (comp.(2) = comp.(3));
        check tb "0!~2" true (comp.(0) <> comp.(2)));
    qcheck_case "two_color success iff no odd cycle" graph_gen (fun spec ->
        let g = make_graph spec in
        Graphs.Bipartite.is_bipartite g
        = (Graphs.Bipartite.odd_cycle g = None));
  ]

let matching_tests =
  [
    Alcotest.test_case "perfect matching on even cycle" `Quick (fun () ->
        let g = cycle 8 in
        let left = Array.init 8 (fun v -> v mod 2 = 0) in
        let mate = Graphs.Matching.hopcroft_karp g ~left in
        check ti "size" 4 (Graphs.Matching.matching_size mate));
    Alcotest.test_case "star has matching 1" `Quick (fun () ->
        let g = make_graph (5, [ 0, 1; 0, 2; 0, 3; 0, 4 ]) in
        let left = [| true; false; false; false; false |] in
        let mate = Graphs.Matching.hopcroft_karp g ~left in
        check ti "size" 1 (Graphs.Matching.matching_size mate));
    Alcotest.test_case "perfect_bipartite saturates the left side" `Quick
      (fun () ->
        (* i is compatible with k iff k >= i: the only full assignment is
           the identity. *)
        match
          Graphs.Matching.perfect_bipartite ~left:4 ~right:4
            ~compatible:(fun i k -> k >= i)
        with
        | None -> Alcotest.fail "assignment exists"
        | Some a ->
          Array.iteri (fun i k -> check ti "identity" i k) a);
    Alcotest.test_case "perfect_bipartite detects infeasibility" `Quick
      (fun () ->
        check tb "two lefts, one shared right" true
          (Graphs.Matching.perfect_bipartite ~left:2 ~right:2
             ~compatible:(fun _ k -> k = 0)
           = None);
        check tb "left larger than right" true
          (Graphs.Matching.perfect_bipartite ~left:3 ~right:2
             ~compatible:(fun _ _ -> true)
           = None));
    Alcotest.test_case "koenig cover covers all edges" `Quick (fun () ->
        let g = make_graph (6, [ 0, 3; 0, 4; 1, 3; 1, 5; 2, 4 ]) in
        let left = Array.init 6 (fun v -> v < 3) in
        let mate = Graphs.Matching.hopcroft_karp g ~left in
        let cover = Graphs.Matching.koenig_cover g ~left ~mate in
        check tb "cover" true (Graphs.Vertex_cover.is_cover g cover);
        let size =
          Array.fold_left (fun a b -> if b then a + 1 else a) 0 cover
        in
        check ti "koenig size = matching size"
          (Graphs.Matching.matching_size mate)
          size);
    Alcotest.test_case "edge inside one side rejected" `Quick (fun () ->
        let g = make_graph (2, [ 0, 1 ]) in
        check tb "raises" true
          (match Graphs.Matching.hopcroft_karp g ~left:[| true; true |] with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "greedy maximal matching is a matching" `Quick
      (fun () ->
         let g = cycle 7 in
         let m = Graphs.Matching.greedy_maximal g in
         let used = Hashtbl.create 8 in
         List.iter
           (fun (u, v) ->
              check tb "fresh u" false (Hashtbl.mem used u);
              check tb "fresh v" false (Hashtbl.mem used v);
              Hashtbl.replace used u ();
              Hashtbl.replace used v ())
           m);
  ]

let vc_tests =
  [
    Alcotest.test_case "triangle needs 2" `Quick (fun () ->
        check ti "vc" 2 (Graphs.Vertex_cover.solve (cycle 3)).size);
    Alcotest.test_case "star needs 1" `Quick (fun () ->
        let g = make_graph (5, [ 0, 1; 0, 2; 0, 3; 0, 4 ]) in
        check ti "vc" 1 (Graphs.Vertex_cover.solve g).size);
    Alcotest.test_case "path of 5 needs 2" `Quick (fun () ->
        check ti "vc" 2 (Graphs.Vertex_cover.solve (path 5)).size);
    Alcotest.test_case "empty graph needs 0" `Quick (fun () ->
        let r = Graphs.Vertex_cover.solve (Graphs.Ugraph.create 4) in
        check ti "vc" 0 r.size;
        check tb "optimal" true r.optimal);
    Alcotest.test_case "lp_bound below optimum" `Quick (fun () ->
        let g = cycle 5 in
        check tb "bound" true
          (Graphs.Vertex_cover.lp_bound g
           <= float_of_int (Graphs.Vertex_cover.solve g).size +. 1e-9));
    qcheck_case "solve matches brute force" ~count:60 graph_gen (fun spec ->
        let g = make_graph spec in
        let r = Graphs.Vertex_cover.solve g in
        r.optimal
        && Graphs.Vertex_cover.is_cover g r.cover
        && r.size = brute_vc g);
    qcheck_case "greedy cover is a cover" graph_gen (fun spec ->
        let g = make_graph spec in
        Graphs.Vertex_cover.is_cover g (Graphs.Vertex_cover.greedy_cover g));
  ]

let oct_tests =
  [
    Alcotest.test_case "product with K2 structure" `Quick (fun () ->
        let g = cycle 3 in
        let p = Graphs.Product.with_k2 g in
        check ti "nodes" 6 (Graphs.Ugraph.num_nodes p);
        (* 2 copies of 3 edges + 3 rungs *)
        check ti "edges" 9 (Graphs.Ugraph.num_edges p);
        check tb "rung" true (Graphs.Ugraph.has_edge p 0 3);
        check tb "copy0" true (Graphs.Ugraph.has_edge p 0 1);
        check tb "copy1" true (Graphs.Ugraph.has_edge p 3 4));
    Alcotest.test_case "bipartite graph has empty OCT" `Quick (fun () ->
        let r = Graphs.Oct.solve (cycle 6) in
        check ti "oct" 0 (List.length r.transversal);
        check tb "optimal" true r.optimal);
    Alcotest.test_case "triangle has OCT 1" `Quick (fun () ->
        let r = Graphs.Oct.solve (cycle 3) in
        check ti "oct" 1 (List.length r.transversal));
    Alcotest.test_case "two disjoint triangles have OCT 2" `Quick (fun () ->
        let g = make_graph (6, [ 0, 1; 1, 2; 2, 0; 3, 4; 4, 5; 5, 3 ]) in
        let r = Graphs.Oct.solve g in
        check ti "oct" 2 (List.length r.transversal));
    Alcotest.test_case "coloring is proper on residual" `Quick (fun () ->
        let g = make_graph (5, [ 0, 1; 1, 2; 2, 0; 2, 3; 3, 4 ]) in
        let r = Graphs.Oct.solve g in
        let in_oct = Array.make 5 false in
        List.iter (fun v -> in_oct.(v) <- true) r.transversal;
        Graphs.Ugraph.iter_edges
          (fun u v ->
             if (not in_oct.(u)) && not in_oct.(v) then
               check tb "proper" true (r.coloring.(u) <> r.coloring.(v)))
          g);
    qcheck_case "exact OCT matches brute force (Lemma 1)" ~count:40 graph_gen
      (fun spec ->
         let g = make_graph spec in
         let r = Graphs.Oct.solve g in
         r.optimal
         && Graphs.Oct.is_transversal g r.transversal
         && List.length r.transversal = brute_oct g);
    qcheck_case "greedy OCT is a transversal" graph_gen (fun spec ->
        let g = make_graph spec in
        let r = Graphs.Oct.greedy g in
        Graphs.Oct.is_transversal g r.transversal);
    qcheck_case "greedy OCT never beats exact" ~count:40 graph_gen
      (fun spec ->
         let g = make_graph spec in
         List.length (Graphs.Oct.greedy g).transversal
         >= List.length (Graphs.Oct.solve g).transversal);
  ]

let () =
  Alcotest.run "graphs"
    [
      "ugraph", ugraph_tests;
      "bipartite", bipartite_tests;
      "matching", matching_tests;
      "vertex_cover", vc_tests;
      "oct", oct_tests;
    ]
