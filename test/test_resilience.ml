(* Tests for the resilience layer: budget semantics (deadline, nodes,
   cancellation, slicing), the deterministic fault-injection schedule,
   and the domain pool's budget-abort and poison-recovery contract. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

module Budget = Resilience.Budget
module Inject = Resilience.Inject

(* A deadline that has certainly passed by the time it is polled:
   [Budget.create] clamps negative deadlines to "now", and the strict
   comparison needs the clock to move past it. *)
let expired_budget () =
  let b = Budget.create ~deadline:0. () in
  let rec wait n =
    if n > 0 && not (Budget.exhausted b) then begin
      ignore (Sys.opaque_identity (Obs.Clock.now ()));
      wait (n - 1)
    end
  in
  wait 1_000_000;
  b

let budget_tests =
  [
    Alcotest.test_case "unlimited never exhausts and ignores cancel" `Quick
      (fun () ->
         let b = Budget.unlimited in
         check tb "is_unlimited" true (Budget.is_unlimited b);
         check tb "not exhausted" false (Budget.exhausted b);
         Budget.cancel b;
         check tb "cancel is a no-op" false (Budget.exhausted b);
         check tb "remaining infinite" true (Budget.remaining b = infinity);
         Budget.check b);
    Alcotest.test_case "expired deadline trips Deadline" `Quick (fun () ->
        let b = expired_budget () in
        check tb "exhausted" true (Budget.exhausted b);
        (match Budget.state b with
         | Some Budget.Deadline -> ()
         | other ->
           Alcotest.failf "expected Deadline, got %s"
             (match other with
              | None -> "None"
              | Some r -> Budget.reason_name r));
        match Budget.check b with
        | () -> Alcotest.fail "check did not raise"
        | exception Budget.Exhausted Budget.Deadline -> ());
    Alcotest.test_case "cancellation is shared across slices" `Quick
      (fun () ->
         let b = Budget.seconds 3600. in
         let s = Budget.slice b ~frac:0.5 in
         check tb "slice fresh" false (Budget.exhausted s);
         Budget.cancel b;
         check tb "slice sees parent cancel" true (Budget.exhausted s);
         (match Budget.state s with
          | Some Budget.Cancelled -> ()
          | _ -> Alcotest.fail "expected Cancelled");
         (* And the other direction: cancelling a slice stops the
            parent — one shared token for the whole tree. *)
         let b2 = Budget.seconds 3600. in
         let s2 = Budget.slice b2 ~frac:0.25 in
         Budget.cancel s2;
         check tb "parent sees slice cancel" true (Budget.exhausted b2));
    Alcotest.test_case "slice of unlimited stays unlimited" `Quick (fun () ->
        let s = Budget.slice Budget.unlimited ~frac:0.5 in
        check tb "remaining infinite" true (Budget.remaining s = infinity);
        Budget.cancel s;
        check tb "still not cancellable" false (Budget.exhausted s));
    Alcotest.test_case "limited caps the deadline" `Quick (fun () ->
        let b = Budget.seconds 3600. in
        check tb "limited _ infinity is the identity" true
          (Budget.limited b infinity == b);
        let capped = Budget.limited b 0. in
        check tb "cap below parent deadline" true
          (Budget.remaining capped <= Budget.remaining b);
        (* The migration-shim shape: a cap on an unlimited budget is
           exactly the old per-solver time limit. *)
        let shim = Budget.limited Budget.unlimited 1800. in
        check tb "shim has a finite deadline" true
          (Budget.remaining shim < infinity));
    Alcotest.test_case "untimed strips the deadline, keeps the token" `Quick
      (fun () ->
         let b = expired_budget () in
         let u = Budget.untimed b in
         check tb "untimed is live again" false (Budget.exhausted u);
         Budget.cancel b;
         check tb "untimed still honours cancel" true (Budget.exhausted u));
    Alcotest.test_case "node budget is shared and trips Nodes" `Quick
      (fun () ->
         let b = Budget.create ~nodes:100 () in
         let s = Budget.slice b ~frac:1.0 in
         Budget.consume_nodes s 101;
         check tb "parent exhausted via slice's consumption" true
           (Budget.exhausted b);
         (match Budget.state b with
          | Some Budget.Nodes -> ()
          | _ -> Alcotest.fail "expected Nodes");
         (* consume_nodes on unlimited is free and unobservable. *)
         Budget.consume_nodes Budget.unlimited max_int;
         check tb "unlimited unharmed" false
           (Budget.exhausted Budget.unlimited));
    Alcotest.test_case "protect_oom converts allocation failure" `Quick
      (fun () ->
         match Budget.protect_oom (fun () -> raise Out_of_memory) with
         | () -> Alcotest.fail "expected Exhausted"
         | exception Budget.Exhausted Budget.Memory -> ());
    Alcotest.test_case "exhaustion event latches once per budget" `Quick
      (fun () ->
         let saved = Obs.enabled () in
         Obs.set_enabled true;
         Obs.reset ();
         let b = expired_budget () in
         check tb "poll 1" true (Budget.exhausted b);
         check tb "poll 2" true (Budget.exhausted b);
         check tb "poll 3" true (Budget.exhausted b);
         let snap = Obs.drain () in
         Obs.set_enabled saved;
         let events =
           List.filter
             (fun e -> e.Obs.ev_name = "budget-exhausted")
             snap.Obs.events
         in
         check ti "one budget-exhausted event" 1 (List.length events);
         match List.assoc_opt "budget.exhausted" snap.Obs.counters with
         | Some 1. -> ()
         | Some n -> Alcotest.failf "counter %g, expected 1" n
         | None -> Alcotest.fail "budget.exhausted counter missing");
  ]

(* ------------------------------------------------------------------ *)

let fire_pattern ~seed ~calls point =
  Inject.with_points ~seed [ point ] (fun () ->
      List.init calls (fun _ -> Inject.fire point))

let inject_tests =
  [
    Alcotest.test_case "disabled injection is inert" `Quick (fun () ->
        Inject.disable ();
        check tb "not enabled" false (Inject.enabled ());
        check tb "fire is false" false (Inject.fire Inject.Timeout);
        check ti "no calls counted" 0 (Inject.calls Inject.Timeout));
    Alcotest.test_case "schedule is deterministic per seed" `Quick (fun () ->
        let a = fire_pattern ~seed:3 ~calls:128 Inject.Timeout in
        let b = fire_pattern ~seed:3 ~calls:128 Inject.Timeout in
        check tb "same seed, same schedule" true (a = b);
        let c = fire_pattern ~seed:4 ~calls:128 Inject.Timeout in
        check tb "different seed, different schedule" true (a <> c));
    Alcotest.test_case "roughly a quarter of armed calls fire" `Quick
      (fun () ->
         Inject.with_points ~seed:1 [ Inject.Oom ] (fun () ->
             for _ = 1 to 256 do
               try Inject.oom () with Out_of_memory -> ()
             done;
             check ti "all calls consulted" 256 (Inject.calls Inject.Oom);
             let f = Inject.fired Inject.Oom in
             check tb "fired a plausible fraction" true (f >= 32 && f <= 96)));
    Alcotest.test_case "unarmed points stay silent under a config" `Quick
      (fun () ->
         Inject.with_points ~seed:1 [ Inject.Oom ] (fun () ->
             for _ = 1 to 64 do
               ignore (Inject.fire Inject.Timeout)
             done;
             check ti "unarmed point never consulted" 0
               (Inject.calls Inject.Timeout);
             check ti "never fired" 0 (Inject.fired Inject.Timeout)));
    Alcotest.test_case "truncate cuts a strict prefix when it fires" `Quick
      (fun () ->
         let s = String.init 97 (fun i -> Char.chr (33 + (i mod 90))) in
         check tb "identity when disabled" true
           (Inject.truncate s == s);
         Inject.with_points ~seed:7 [ Inject.Defect_truncate ] (fun () ->
             let saw_cut = ref false in
             for _ = 1 to 64 do
               let t = Inject.truncate s in
               if String.length t < String.length s then begin
                 saw_cut := true;
                 check tb "prefix" true
                   (String.sub s 0 (String.length t) = t)
               end
               else check tb "unchanged when not fired" true (t = s)
             done;
             check tb "some call truncated" true !saw_cut));
    Alcotest.test_case "COMPACT_INJECT env round-trip" `Quick (fun () ->
        Inject.disable ();
        Unix.putenv "COMPACT_INJECT" "oom , pool-poison @ 9";
        (match Inject.configure_from_env () with
         | Ok () -> ()
         | Error msg -> Alcotest.failf "valid spec rejected: %s" msg);
        check tb "armed" true (Inject.enabled ());
        ignore (Inject.fire Inject.Oom);
        check ti "oom consulted" 1 (Inject.calls Inject.Oom);
        Inject.disable ();
        Unix.putenv "COMPACT_INJECT" "bogus-point";
        (match Inject.configure_from_env () with
         | Ok () -> Alcotest.fail "bogus spec accepted"
         | Error _ -> ());
        check tb "nothing armed on error" false (Inject.enabled ());
        Unix.putenv "COMPACT_INJECT" "all@5";
        (match Inject.configure_from_env () with
         | Ok () -> ()
         | Error msg -> Alcotest.failf "all@5 rejected: %s" msg);
        check tb "all armed" true (Inject.enabled ());
        Unix.putenv "COMPACT_INJECT" "";
        Inject.disable ();
        match Inject.configure_from_env () with
        | Ok () -> check tb "empty spec is unset" false (Inject.enabled ())
        | Error msg -> Alcotest.failf "empty spec rejected: %s" msg);
  ]

(* ------------------------------------------------------------------ *)

let pool_jobs = [ 1; 4 ]

let parallel_budget_tests =
  List.concat_map
    (fun jobs ->
       let j = Printf.sprintf "jobs=%d" jobs in
       [
         Alcotest.test_case (j ^ ": expired budget skips the batch") `Quick
           (fun () ->
              Parallel.with_pool ~jobs (fun pool ->
                  let b = expired_budget () in
                  let ran = Atomic.make 0 in
                  (match
                     Parallel.run ~budget:b pool
                       (Array.init 16 (fun _ () -> Atomic.incr ran))
                   with
                   | _ -> Alcotest.fail "expected Exhausted"
                   | exception Budget.Exhausted _ -> ());
                  check ti "no task body ran" 0 (Atomic.get ran);
                  (* The same pool serves the next (unbudgeted) batch. *)
                  let r =
                    Parallel.run pool (Array.init 16 (fun i () -> i * i))
                  in
                  check tb "pool still correct" true
                    (r = Array.init 16 (fun i -> i * i))));
         Alcotest.test_case (j ^ ": first failure cancels the rest") `Quick
           (fun () ->
              Parallel.with_pool ~jobs (fun pool ->
                  let b = Budget.seconds 3600. in
                  let ran = Atomic.make 0 in
                  let tasks =
                    Array.init 64 (fun i () ->
                        if i = 2 then failwith "boom";
                        Atomic.incr ran;
                        Unix.sleepf 0.002)
                  in
                  (match Parallel.run ~budget:b pool tasks with
                   | _ -> Alcotest.fail "expected a failure"
                   | exception Failure msg ->
                     check Alcotest.string "root cause re-raised" "boom" msg
                   | exception Budget.Exhausted _ ->
                     Alcotest.fail
                       "Exhausted shadowed the root-cause failure");
                  check tb "queued tail was skipped" true (Atomic.get ran < 63);
                  (* jobs = 1 is the exact sequential path: the failure
                     propagates immediately, nothing to cancel. *)
                  if jobs > 1 then
                    check tb "budget left cancelled" true
                      (Budget.cancelled b)));
         Alcotest.test_case (j ^ ": unlimited budget drains everything")
           `Quick (fun () ->
               Parallel.with_pool ~jobs (fun pool ->
                   let ran = Atomic.make 0 in
                   let tasks =
                     Array.init 32 (fun i () ->
                         if i = 2 then failwith "boom";
                         Atomic.incr ran)
                   in
                   (match Parallel.run pool tasks with
                    | _ -> Alcotest.fail "expected a failure"
                    | exception Failure msg ->
                      check Alcotest.string "earliest failure" "boom" msg);
                   (* Pooled batches drain every slot before re-raising;
                      the sequential path stops at the failure. *)
                   check ti "drain-everything contract"
                     (if jobs > 1 then 31 else 2)
                     (Atomic.get ran)));
         Alcotest.test_case
           (j ^ ": OOM-poisoned tasks do not wedge queued work") `Quick
           (fun () ->
              (* Regression: an async-shaped Out_of_memory escaping a
                 task used to leave its slot unset, wedging the drain
                 loop with tasks still queued.  Every slot must land and
                 the pool must serve the next batch. *)
              Parallel.with_pool ~jobs (fun pool ->
                  let tasks =
                    Array.init 64 (fun i () ->
                        if i mod 7 = 3 then raise Out_of_memory;
                        i)
                  in
                  (match Parallel.run pool tasks with
                   | _ -> Alcotest.fail "expected Out_of_memory"
                   | exception Out_of_memory -> ());
                  let r =
                    Parallel.map pool (fun x -> x + 1)
                      (List.init 64 (fun i -> i))
                  in
                  check tb "pool reusable with correct order" true
                    (r = List.init 64 (fun i -> i + 1))));
         Alcotest.test_case (j ^ ": budgeted map polls per element") `Quick
           (fun () ->
              Parallel.with_pool ~jobs (fun pool ->
                  let b = expired_budget () in
                  match
                    Parallel.map ~budget:b pool
                      (fun x -> x * 2)
                      (List.init 8 (fun i -> i))
                  with
                  | _ -> Alcotest.fail "expected Exhausted"
                  | exception Budget.Exhausted _ -> ()));
       ])
    pool_jobs

let () =
  Alcotest.run "resilience"
    [
      "budget", budget_tests;
      "inject", inject_tests;
      "parallel", parallel_budget_tests;
    ]
