(* Tests for the experiment harness: table rendering and the smallest
   end-to-end experiment paths. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let ts = Alcotest.string

let table_tests =
  [
    Alcotest.test_case "render pads and aligns" `Quick (fun () ->
        let out =
          Harness.Table.render
            ~columns:[ "name", Harness.Table.L; "n", Harness.Table.R ]
            ~rows:[ [ "a"; "1" ]; [ "long"; "22" ] ]
        in
        let lines = String.split_on_char '\n' out in
        check ti "4 lines" 4 (List.length lines);
        (* all lines equal width *)
        let widths = List.map String.length lines in
        List.iter (fun w -> check ti "width" (List.hd widths) w) widths;
        check tb "right aligned" true
          (String.ends_with ~suffix:" 1" (List.nth lines 2)));
    Alcotest.test_case "fmt helpers" `Quick (fun () ->
        check ts "pct" "55%" (Harness.Table.fmt_pct 0.55);
        check ts "small float" "0.123" (Harness.Table.fmt_f 0.1234);
        check ts "large float" "123.5" (Harness.Table.fmt_f 123.454));
  ]

let tiny_config =
  {
    Harness.Experiments.time_limit = 0.5;
    bdd_node_limit = 50_000;
    max_graph_nodes = 2_000;
    verify_designs = true;
    anneal_budget = 0;
    jobs = Parallel.default_jobs ();
  }

let experiment_tests =
  [
    Alcotest.test_case "sbdd_of builds under the node limit" `Quick (fun () ->
        match
          Harness.Experiments.sbdd_of tiny_config (Circuits.Suite.find "ctrl")
        with
        | Some sbdd -> check tb "nonempty" true (Bdd.Sbdd.size sbdd > 0)
        | None -> Alcotest.fail "ctrl must fit");
    Alcotest.test_case "sbdd_of respects the node limit" `Quick (fun () ->
        let starved = { tiny_config with bdd_node_limit = 4 } in
        check tb "rejected" true
          (Harness.Experiments.sbdd_of starved (Circuits.Suite.find "cavlc")
           = None));
    Alcotest.test_case "fig11 gaps lie in [0, 1]" `Quick (fun () ->
        let gaps = Harness.Experiments.fig11 tiny_config in
        List.iter
          (fun (_, gap) -> check tb "range" true (gap >= 0. && gap <= 1.))
          gaps);
    Alcotest.test_case "fig13 covers only EPFL circuits" `Quick (fun () ->
        let data = Harness.Experiments.fig13 tiny_config in
        List.iter
          (fun (name, power, delay) ->
             check tb "epfl" true
               ((Circuits.Suite.find name).category
                = Circuits.Suite.Epfl_control);
             check tb "positive" true (power > 0. && delay > 0.))
          data);
  ]

let () =
  Alcotest.run "harness"
    [ "table", table_tests; "experiments", experiment_tests ]
