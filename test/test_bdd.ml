(* Tests for the ROBDD engine: canonicity, Boolean operations,
   quantification, SBDD construction and ordering heuristics. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

(* The @proptest alias re-runs the property tests with QCHECK_MULT-times
   the default case count (see test/dune). *)
let qcheck_mult =
  match Option.bind (Sys.getenv_opt "QCHECK_MULT") int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> 1

let qcheck_case ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:(count * qcheck_mult) ~name gen prop)

let e = Logic.Parse.expr

(* Random expressions over the given variables. *)
let expr_gen_over var_names =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then map Logic.Expr.var (oneofl var_names)
      else
        frequency
          [ 1, map Logic.Expr.var (oneofl var_names);
            2, map Logic.Expr.not_ (self (n - 1));
            2, map2 (fun a b -> Logic.Expr.and_ [ a; b ]) (self (n / 2)) (self (n / 2));
            2, map2 (fun a b -> Logic.Expr.or_ [ a; b ]) (self (n / 2)) (self (n / 2));
            1, map2 Logic.Expr.xor (self (n / 2)) (self (n / 2)) ])

let expr_gen = expr_gen_over [ "x0"; "x1"; "x2"; "x3" ]

let level_of v = int_of_string (String.sub v 1 (String.length v - 1))

let build man f = Bdd.Build.expr man ~var_level:level_of f

let fresh_man () = Bdd.Manager.create ~num_vars:4 ()

let envs = List.init 16 (fun bits -> fun lvl -> bits land (1 lsl lvl) <> 0)

let same_function man node f =
  List.for_all
    (fun env ->
       Bdd.Manager.eval man node env
       = Logic.Expr.eval (fun v -> env (level_of v)) f)
    envs

let manager_tests =
  [
    Alcotest.test_case "terminals" `Quick (fun () ->
        check tb "0" false (Bdd.Manager.eval (fresh_man ()) Bdd.Manager.zero (fun _ -> true));
        check tb "1" true (Bdd.Manager.eval (fresh_man ()) Bdd.Manager.one (fun _ -> false));
        check tb "term" true (Bdd.Manager.is_terminal Bdd.Manager.zero));
    Alcotest.test_case "projection variables" `Quick (fun () ->
        let man = fresh_man () in
        let x1 = Bdd.Manager.var man 1 in
        check tb "true branch" true (Bdd.Manager.eval man x1 (fun l -> l = 1));
        check tb "false branch" false (Bdd.Manager.eval man x1 (fun _ -> false));
        check ti "level" 1 (Bdd.Manager.level man x1));
    Alcotest.test_case "out-of-range variable rejected" `Quick (fun () ->
        check tb "raises" true
          (match Bdd.Manager.var (fresh_man ()) 7 with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "canonicity: equal functions share a node" `Quick
      (fun () ->
         let man = fresh_man () in
         let f1 = build man (e "!(x0 & x1)") in
         let f2 = build man (e "!x0 | !x1") in
         check ti "same handle" f1 f2);
    Alcotest.test_case "reduction: no node with equal children" `Quick
      (fun () ->
         let man = fresh_man () in
         let f = build man (e "(x0 & x1) | (!x0 & x1)") in
         (* Collapses to x1. *)
         check ti "is x1" (Bdd.Manager.var man 1) f);
    Alcotest.test_case "not involutive on handles" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "x0 ^ x2 | x1") in
        check ti "same" f (Bdd.Manager.not_ man (Bdd.Manager.not_ man f)));
    Alcotest.test_case "ite terminal shortcuts" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "x0 & x1") in
        check ti "ite(1,f,g)" f (Bdd.Manager.ite man Bdd.Manager.one f Bdd.Manager.zero);
        check ti "ite(f,1,0)" f (Bdd.Manager.ite man f Bdd.Manager.one Bdd.Manager.zero));
    Alcotest.test_case "restrict" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "(x0 & x1) | x2") in
        let f0 = Bdd.Manager.restrict man f ~var:0 false in
        check ti "x2" (build man (e "x2")) f0;
        let f1 = Bdd.Manager.restrict man f ~var:0 true in
        check ti "x1|x2" (build man (e "x1 | x2")) f1);
    Alcotest.test_case "exists and forall" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "x0 & x1") in
        check ti "exists" (build man (e "x1")) (Bdd.Manager.exists man ~var:0 f);
        check ti "forall" Bdd.Manager.zero (Bdd.Manager.forall man ~var:0 f));
    Alcotest.test_case "support" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "(x0 & x3) | x3") in
        check Alcotest.(list int) "deps" [ 3 ] (Bdd.Manager.support man f));
    Alcotest.test_case "sat_count matches truth table" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "(x0 & x1) | x2") in
        (* (x0&x1)|x2 has 5 models over 3 vars => 10 over 4. *)
        check (Alcotest.float 1e-9) "models" 10.
          (Bdd.Manager.sat_count man f ~nvars:4));
    Alcotest.test_case "any_sat is satisfying" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "!x0 & x2") in
        match Bdd.Manager.any_sat man f with
        | None -> Alcotest.fail "expected sat"
        | Some partial ->
          let env lvl =
            match List.assoc_opt lvl partial with Some b -> b | None -> false
          in
          check tb "sat" true (Bdd.Manager.eval man f env));
    Alcotest.test_case "any_sat of zero" `Quick (fun () ->
        check tb "none" true
          (Bdd.Manager.any_sat (fresh_man ()) Bdd.Manager.zero = None));
    Alcotest.test_case "size counts reachable nodes" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "x0 & x1 & x2") in
        (* chain of 3 internal nodes + two terminals *)
        check ti "size" 5 (Bdd.Manager.size man [ f ]));
    Alcotest.test_case "iter_edges arity" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "x0 & x1") in
        let count = ref 0 in
        Bdd.Manager.iter_edges man [ f ] (fun _ _ _ -> incr count);
        check ti "2 per internal node" 4 !count);
    Alcotest.test_case "node limit enforced" `Quick (fun () ->
        let man = Bdd.Manager.create ~node_limit:4 ~num_vars:4 () in
        check tb "raises" true
          (match build man (e "(x0 ^ x1) & (x2 ^ x3)") with
           | exception Bdd.Manager.Size_limit _ -> true
           | _ -> false));
    qcheck_case "BDD semantics equals expression semantics" expr_gen
      (fun f ->
         let man = fresh_man () in
         same_function man (build man f) f);
    qcheck_case "xor/xnor complementary" expr_gen (fun f ->
        let man = fresh_man () in
        let g = build man (e "x1 | x3") in
        let nf = build man f in
        Bdd.Manager.xnor man nf g
        = Bdd.Manager.not_ man (Bdd.Manager.xor man nf g));
    qcheck_case "canonicity of equivalent rewrites" expr_gen (fun f ->
        let man = fresh_man () in
        let direct = build man f in
        let doubled = build man (Logic.Expr.or_ [ f; f ]) in
        direct = doubled);
  ]

(* ------------------------------------------------------------------ *)

let adder = lazy (Circuits.Arith.ripple_adder ~bits:3 ())

let order_tests =
  [
    Alcotest.test_case "all heuristics are permutations" `Quick (fun () ->
        let nl = Lazy.force adder in
        let sorted = List.sort String.compare nl.inputs in
        List.iter
          (fun order ->
             check
               Alcotest.(list string)
               "perm" sorted
               (List.sort String.compare order))
          (Bdd.Order.candidates nl));
    Alcotest.test_case "dfs_fanin interleaves adder operands" `Quick
      (fun () ->
         let nl = Lazy.force adder in
         match Bdd.Order.dfs_fanin nl with
         | "a0" :: "b0" :: _ -> ()
         | other ->
           Alcotest.failf "unexpected start: %s" (String.concat "," other));
    Alcotest.test_case "by_depth puts shallow inputs first" `Quick (fun () ->
        (* f = deep(a,b,c) | strobe: the strobe feeds the output directly. *)
        let nl =
          Logic.Netlist.create ~name:"t" ~inputs:[ "a"; "b"; "c"; "strobe" ]
            ~outputs:[ "f" ]
            [
              Logic.Netlist.n_and "t1" [ "a"; "b" ];
              Logic.Netlist.n_xor "t2" "t1" "c";
              Logic.Netlist.n_or "f" [ "t2"; "strobe" ];
            ]
        in
        match Bdd.Order.by_depth nl with
        | "strobe" :: _ -> ()
        | other -> Alcotest.failf "got %s" (String.concat "," other));
    Alcotest.test_case "interleaved covers all inputs" `Quick (fun () ->
        let nl = Lazy.force adder in
        check ti "length" (List.length nl.inputs)
          (List.length (Bdd.Order.interleaved nl)));
  ]

let sbdd_tests =
  [
    Alcotest.test_case "netlist semantics preserved" `Quick (fun () ->
        let nl = Lazy.force adder in
        (* Same input order so the tables are directly comparable. *)
        let sbdd = Bdd.Sbdd.of_netlist ~order:nl.inputs nl in
        check tb "tables equal" true
          (Logic.Truth_table.equal
             (Bdd.Sbdd.to_truth_table sbdd)
             (Logic.Netlist.to_truth_table nl)));
    Alcotest.test_case "order is respected" `Quick (fun () ->
        let nl = Lazy.force adder in
        let order = List.sort String.compare nl.inputs in
        let sbdd = Bdd.Sbdd.of_netlist ~order nl in
        check Alcotest.(list string) "order" order
          (Array.to_list sbdd.input_order));
    Alcotest.test_case "bad order rejected" `Quick (fun () ->
        let nl = Lazy.force adder in
        check tb "raises" true
          (match Bdd.Sbdd.of_netlist ~order:[ "a0" ] nl with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "separate ROBDDs compute the same outputs" `Quick
      (fun () ->
         let nl = Lazy.force adder in
         let shared = Bdd.Sbdd.of_netlist nl in
         let separate = Bdd.Sbdd.of_netlist_separate nl in
         check ti "one per output" (Logic.Netlist.num_outputs nl)
           (List.length separate);
         let env v = String.length v mod 2 = 0 in
         let expected = Bdd.Sbdd.eval shared env in
         List.iter
           (fun single ->
              List.iter
                (fun (o, value) ->
                   check tb o (List.assoc o expected) value)
                (Bdd.Sbdd.eval single env))
           separate);
    Alcotest.test_case "sharing never larger than separate total" `Quick
      (fun () ->
         let nl = Lazy.force adder in
         let shared = Bdd.Sbdd.size (Bdd.Sbdd.of_netlist nl) in
         let separate =
           List.fold_left
             (fun acc s -> acc + Bdd.Sbdd.size s)
             0
             (Bdd.Sbdd.of_netlist_separate nl)
         in
         check tb "shared <= separate" true (shared <= separate));
    Alcotest.test_case "best_order picks the minimum candidate" `Quick
      (fun () ->
         let nl = Lazy.force adder in
         let _, best = Bdd.Sbdd.best_order nl in
         List.iter
           (fun order ->
              let sz = Bdd.Sbdd.size (Bdd.Sbdd.of_netlist ~order nl) in
              check tb "minimal" true (best <= sz))
           (Bdd.Order.candidates nl));
    Alcotest.test_case "num_edges is twice the internal nodes" `Quick
      (fun () ->
         let nl = Lazy.force adder in
         let sbdd = Bdd.Sbdd.of_netlist nl in
         let internal =
           List.length
             (List.filter
                (fun n -> not (Bdd.Manager.is_terminal n))
                (Bdd.Manager.reachable sbdd.man (List.map snd sbdd.roots)))
         in
         check ti "edges" (2 * internal) (Bdd.Sbdd.num_edges sbdd));
    Alcotest.test_case "constant outputs" `Quick (fun () ->
        let nl =
          Logic.Netlist.create ~name:"consts" ~inputs:[ "a" ]
            ~outputs:[ "zero"; "one"; "id" ]
            [
              Logic.Netlist.n_expr "zero" Logic.Expr.fls;
              Logic.Netlist.n_expr "one" Logic.Expr.tru;
              Logic.Netlist.n_buf "id" "a";
            ]
        in
        let sbdd = Bdd.Sbdd.of_netlist nl in
        check ti "zero root" Bdd.Manager.zero (List.assoc "zero" sbdd.roots);
        check ti "one root" Bdd.Manager.one (List.assoc "one" sbdd.roots));
    Alcotest.test_case "dot export mentions every output" `Quick (fun () ->
        let nl = Lazy.force adder in
        let dot = Bdd.Dot.sbdd (Bdd.Sbdd.of_netlist nl) in
        List.iter
          (fun o ->
             let marker = "out_" ^ o in
             check tb marker true
               (let len = String.length dot and m = String.length marker in
                let rec find i =
                  i + m <= len && (String.sub dot i m = marker || find (i + 1))
                in
                find 0))
          nl.outputs);
    qcheck_case "expression round trip through a 1-output netlist" expr_gen
      (fun f ->
         let inputs = [ "x0"; "x1"; "x2"; "x3" ] in
         let nl =
           Logic.Netlist.create ~name:"rt" ~inputs ~outputs:[ "f" ]
             [ Logic.Netlist.n_expr "f" f ]
         in
         let sbdd = Bdd.Sbdd.of_netlist ~order:inputs nl in
         Logic.Truth_table.equal
           (Bdd.Sbdd.to_truth_table sbdd)
           (Logic.Netlist.to_truth_table nl));
  ]

let extra_ops_tests =
  [
    Alcotest.test_case "imp nand nor agree with expressions" `Quick
      (fun () ->
         let man = fresh_man () in
         let a = Bdd.Manager.var man 0 and b = Bdd.Manager.var man 1 in
         check ti "imp" (build man (e "!x0 | x1")) (Bdd.Manager.imp man a b);
         check ti "nand" (build man (e "!(x0 & x1)")) (Bdd.Manager.nand man a b);
         check ti "nor" (build man (e "!(x0 | x1)")) (Bdd.Manager.nor man a b));
    Alcotest.test_case "and_list / or_list fold correctly" `Quick (fun () ->
        let man = fresh_man () in
        let vs = List.init 4 (Bdd.Manager.var man) in
        check ti "and" (build man (e "x0 & x1 & x2 & x3"))
          (Bdd.Manager.and_list man vs);
        check ti "or" (build man (e "x0 | x1 | x2 | x3"))
          (Bdd.Manager.or_list man vs);
        check ti "empty and" Bdd.Manager.one (Bdd.Manager.and_list man []);
        check ti "empty or" Bdd.Manager.zero (Bdd.Manager.or_list man []));
    Alcotest.test_case "clear_caches keeps semantics" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "(x0 ^ x1) & x2") in
        Bdd.Manager.clear_caches man;
        let g = build man (e "(x0 ^ x1) & x2") in
        check ti "same node after cache reset" f g);
    Alcotest.test_case "allocated grows monotonically" `Quick (fun () ->
        let man = fresh_man () in
        let before = Bdd.Manager.allocated man in
        ignore (build man (e "x0 ^ x1 ^ x2"));
        check tb "grew" true (Bdd.Manager.allocated man > before));
    Alcotest.test_case "quantification memo survives reuse" `Quick (fun () ->
        let man = fresh_man () in
        let f = build man (e "(x0 & x1) | (x0 & x2)") in
        let e1 = Bdd.Manager.exists man ~var:0 f in
        let e2 = Bdd.Manager.exists man ~var:0 f in
        check ti "same" e1 e2;
        check ti "x1 | x2" (build man (e "x1 | x2")) e1);
  ]

let quantifier_tests =
  [
    qcheck_case "exists/forall De Morgan duality" expr_gen (fun f ->
        let man = fresh_man () in
        let nf = build man f in
        List.for_all
          (fun v ->
             Bdd.Manager.exists man ~var:v nf
             = Bdd.Manager.not_ man
                 (Bdd.Manager.forall man ~var:v (Bdd.Manager.not_ man nf)))
          [ 0; 1; 2; 3 ]);
    qcheck_case "quantified variable leaves the support" expr_gen (fun f ->
        let man = fresh_man () in
        let nf = build man f in
        List.for_all
          (fun v ->
             not
               (List.mem v
                  (Bdd.Manager.support man (Bdd.Manager.exists man ~var:v nf))))
          [ 0; 1; 2; 3 ]);
    qcheck_case "restrict is a semantic cofactor" expr_gen (fun f ->
        let man = fresh_man () in
        let nf = build man f in
        List.for_all
          (fun env ->
             let v = 1 in
             Bdd.Manager.eval man
               (Bdd.Manager.restrict man nf ~var:v (env v))
               env
             = Bdd.Manager.eval man nf env)
          envs);
  ]

let reorder_tests =
  [
    Alcotest.test_case "anneal returns a permutation" `Quick (fun () ->
        let nl = Lazy.force adder in
        let order, _ = Bdd.Reorder.anneal ~steps:30 nl in
        check
          Alcotest.(list string)
          "perm"
          (List.sort String.compare nl.inputs)
          (List.sort String.compare order));
    Alcotest.test_case "anneal never worsens the initial order" `Quick
      (fun () ->
         let nl = Lazy.force adder in
         let initial = Bdd.Order.dfs_fanin nl in
         let initial_size = Bdd.Sbdd.size (Bdd.Sbdd.of_netlist ~order:initial nl) in
         let order, stats = Bdd.Reorder.anneal ~steps:40 ~initial nl in
         check ti "reported initial" initial_size stats.initial_size;
         let final = Bdd.Sbdd.size (Bdd.Sbdd.of_netlist ~order nl) in
         check ti "reported final" final stats.final_size;
         check tb "no regression" true (final <= initial_size));
    Alcotest.test_case "anneal escapes a bad starting order" `Quick
      (fun () ->
         (* Separated operand blocks are terrible for a comparator; the
            search must find something substantially smaller. *)
         let nl = Circuits.Arith.comparator ~bits:6 () in
         let bad =
           List.init 6 (fun i -> Printf.sprintf "a%d" i)
           @ List.init 6 (fun i -> Printf.sprintf "b%d" i)
         in
         let bad_size = Bdd.Sbdd.size (Bdd.Sbdd.of_netlist ~order:bad nl) in
         let _, stats = Bdd.Reorder.anneal ~seed:1 ~steps:200 ~initial:bad nl in
         check tb "improved" true (stats.final_size < bad_size));
    Alcotest.test_case "improve_sbdd preserves semantics" `Quick (fun () ->
        let nl = Lazy.force adder in
        let sbdd = Bdd.Reorder.improve_sbdd nl in
        let env v = String.length v = 2 in
        let expected =
          Logic.Netlist.eval nl env
        in
        List.iter
          (fun (o, value) -> check tb o (List.assoc o expected) value)
          (Bdd.Sbdd.eval sbdd env));
    Alcotest.test_case "deterministic for a fixed seed" `Quick (fun () ->
        let nl = Lazy.force adder in
        let o1, _ = Bdd.Reorder.anneal ~seed:5 ~steps:25 nl in
        let o2, _ = Bdd.Reorder.anneal ~seed:5 ~steps:25 nl in
        check Alcotest.(list string) "same" o1 o2);
  ]

(* ------------------------------------------------------------------ *)
(* In-place sifting. *)

let inputs6 = List.init 6 (Printf.sprintf "x%d")

let sift_tests =
  [
    (* The core reordering contract on random multi-rooted forests:
       every assignment evaluates identically before and after, the
       diagram never grows, and the in-place result is exactly the
       canonical diagram of the new order (a fresh build under the
       sifted order has the same size). The manager is also still
       usable: combining the sifted roots afterwards exercises the
       unique table across the rewritten levels. *)
    qcheck_case ~count:60 "sifting preserves canonicity and semantics"
      QCheck2.Gen.(pair (expr_gen_over inputs6) (expr_gen_over inputs6))
      (fun (f, g) ->
         let named = [ "f", f; "g", g ] in
         let sbdd = Bdd.Sbdd.of_exprs ~inputs:inputs6 named in
         let env_of bits v = bits land (1 lsl level_of v) <> 0 in
         let snapshot () =
           List.init 64 (fun bits -> Bdd.Sbdd.eval sbdd (env_of bits))
         in
         let before_tables = snapshot () in
         let before, after = Bdd.Sbdd.sift sbdd in
         after <= before
         && after = Bdd.Sbdd.size sbdd
         && snapshot () = before_tables
         && (let rebuilt =
               Bdd.Sbdd.of_exprs
                 ~order:(Array.to_list sbdd.input_order)
                 ~inputs:inputs6 named
             in
             Bdd.Sbdd.size rebuilt = after)
         &&
         let fr = List.assoc "f" sbdd.roots
         and gr = List.assoc "g" sbdd.roots in
         let conj = Bdd.Manager.and_ sbdd.man fr gr in
         List.for_all
           (fun bits ->
              let env = env_of bits in
              let env_lvl lvl = env sbdd.input_order.(lvl) in
              Bdd.Manager.eval sbdd.man conj env_lvl
              = (Logic.Expr.eval env f && Logic.Expr.eval env g))
           (List.init 64 Fun.id));
    Alcotest.test_case "sift rescues a bad comparator order" `Quick (fun () ->
        let nl = Circuits.Arith.comparator ~bits:6 () in
        let bad =
          List.init 6 (Printf.sprintf "a%d") @ List.init 6 (Printf.sprintf "b%d")
        in
        let sbdd = Bdd.Sbdd.of_netlist ~order:bad nl in
        let before, after = Bdd.Sbdd.sift sbdd in
        check tb "improved" true (after < before);
        let env v = v.[0] = 'a' in
        let expected = Logic.Netlist.eval nl env in
        List.iter
          (fun (o, value) -> check tb o (List.assoc o expected) value)
          (Bdd.Sbdd.eval sbdd env));
    Alcotest.test_case "sift is deterministic" `Quick (fun () ->
        let nl = Lazy.force adder in
        let run () =
          let sbdd = Bdd.Sbdd.of_netlist nl in
          let _, after = Bdd.Sbdd.sift sbdd in
          Array.to_list sbdd.input_order, after
        in
        let o1, s1 = run () and o2, s2 = run () in
        check Alcotest.(list string) "same order" o1 o2;
        check ti "same size" s1 s2);
    Alcotest.test_case "sift counters surface in stats" `Quick (fun () ->
        let nl = Circuits.Arith.comparator ~bits:4 () in
        let sbdd = Bdd.Sbdd.of_netlist nl in
        ignore (Bdd.Sbdd.sift sbdd);
        let s = Bdd.Sbdd.stats sbdd in
        check tb "swaps counted" true (s.level_swaps > 0);
        check tb "passes counted" true (s.sift_passes >= 1);
        check tb "invalidation counted" true (s.cache_invalidations >= 1));
    Alcotest.test_case "exhausted budget still leaves a consistent SBDD"
      `Quick (fun () ->
        let nl = Lazy.force adder in
        let budget = Resilience.Budget.seconds 0. in
        let sbdd = Bdd.Sbdd.of_netlist nl in
        ignore (Bdd.Sbdd.sift ~budget sbdd);
        List.iter
          (fun seed ->
             let env v = Hashtbl.hash (seed, v) land 1 = 1 in
             let expected = Logic.Netlist.eval nl env in
             List.iter
               (fun (o, value) -> check tb o (List.assoc o expected) value)
               (Bdd.Sbdd.eval sbdd env))
          [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  ]

let () =
  Alcotest.run "bdd"
    [
      "manager", manager_tests;
      "order", order_tests;
      "sbdd", sbdd_tests;
      "extra_ops", extra_ops_tests;
      "quantifiers", quantifier_tests;
      "reorder", reorder_tests;
      "sift", sift_tests;
    ]
