(* Tests for the COMPACT core: preprocessing, VH-labeling (all three
   solvers), balancing, crossbar mapping and the end-to-end pipeline. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

(* The @proptest alias re-runs the property tests with QCHECK_MULT-times
   the default case count (see test/dune). *)
let qcheck_mult =
  match Option.bind (Sys.getenv_opt "QCHECK_MULT") int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> 1

let qcheck_case ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:(count * qcheck_mult) ~name gen prop)

let e = Logic.Parse.expr

let graph_of_expr ?order f =
  let inputs = Logic.Expr.vars f in
  let nl =
    Logic.Netlist.create ~name:"t" ~inputs ~outputs:[ "f" ]
      [ Logic.Netlist.n_expr "f" f ]
  in
  Compact.Preprocess.of_sbdd (Bdd.Sbdd.of_netlist ?order nl)

let fig2_graph = lazy (graph_of_expr (e "(a & b) | c"))

(* Random expression generator over a fixed variable alphabet. *)
let expr_gen_over var_names =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then map Logic.Expr.var (oneofl var_names)
      else
        frequency
          [ 1, map Logic.Expr.var (oneofl var_names);
            2, map Logic.Expr.not_ (self (n - 1));
            2, map2 (fun a b -> Logic.Expr.and_ [ a; b ]) (self (n / 2)) (self (n / 2));
            2, map2 (fun a b -> Logic.Expr.or_ [ a; b ]) (self (n / 2)) (self (n / 2));
            1, map2 Logic.Expr.xor (self (n / 2)) (self (n / 2)) ])

let expr_gen = expr_gen_over [ "a"; "b"; "c" ]

(* Wider expressions (4-6 variables) for the differential battery: big
   enough to exercise every solver's branching, small enough that the
   verifier can enumerate all assignments. *)
let wide_expr_gen =
  let open QCheck2.Gen in
  int_range 4 6 >>= fun n ->
  expr_gen_over
    (List.filteri (fun i _ -> i < n) [ "a"; "b"; "c"; "d"; "e"; "f" ])

(* ------------------------------------------------------------------ *)

let preprocess_tests =
  [
    Alcotest.test_case "fig2: 4 nodes, 5 edges" `Quick (fun () ->
        let bg = Lazy.force fig2_graph in
        check ti "nodes" 4 (Compact.Preprocess.num_bdd_nodes bg);
        check ti "edges" 5 (Compact.Preprocess.num_bdd_edges bg);
        check ti "terminal id" 0 bg.terminal);
    Alcotest.test_case "edge literals are variable pairs" `Quick (fun () ->
        let bg = Lazy.force fig2_graph in
        List.iter
          (fun (u, v, lit) ->
             check tb "ordered" true (u < v);
             check tb "labelled" true
               (Crossbar.Literal.variable lit <> None
                || Crossbar.Literal.equal lit Crossbar.Literal.On))
          bg.edge_literals;
        check ti "one literal per edge"
          (Graphs.Ugraph.num_edges bg.graph)
          (List.length bg.edge_literals));
    Alcotest.test_case "constant-1 output maps to the terminal" `Quick
      (fun () ->
         let bg = graph_of_expr Logic.Expr.tru in
         match bg.roots with
         | [ (_, Compact.Types.Node v) ] -> check ti "terminal" bg.terminal v
         | _ -> Alcotest.fail "expected a node root");
    Alcotest.test_case "constant-0 output marked Const_false" `Quick
      (fun () ->
         let bg = graph_of_expr Logic.Expr.fls in
         match bg.roots with
         | [ (_, Compact.Types.Const_false) ] -> ()
         | _ -> Alcotest.fail "expected Const_false");
    Alcotest.test_case "node names follow BDD variables" `Quick (fun () ->
        let bg = Lazy.force fig2_graph in
        check Alcotest.string "terminal name" "1" bg.node_names.(bg.terminal));
  ]

(* ------------------------------------------------------------------ *)

let check_ok = function
  | Stdlib.Ok () -> ()
  | Stdlib.Error m -> Alcotest.fail m

let types_tests =
  [
    Alcotest.test_case "objective_of" `Quick (fun () ->
        check (Alcotest.float 1e-9) "gamma=1" 10.
          (Compact.Types.objective_of ~gamma:1. ~rows:6 ~cols:4);
        check (Alcotest.float 1e-9) "gamma=0" 6.
          (Compact.Types.objective_of ~gamma:0. ~rows:6 ~cols:4);
        check (Alcotest.float 1e-9) "gamma=0.5" 8.
          (Compact.Types.objective_of ~gamma:0.5 ~rows:6 ~cols:4));
    Alcotest.test_case "check_labeling rejects V-V edges" `Quick (fun () ->
        let bg = Lazy.force fig2_graph in
        let labels =
          Array.make (Compact.Preprocess.num_bdd_nodes bg) Compact.Types.V
        in
        check tb "error" true
          (Compact.Types.check_labeling bg labels <> Stdlib.Ok ()));
    Alcotest.test_case "all-VH labeling always valid" `Quick (fun () ->
        let bg = Lazy.force fig2_graph in
        let labels =
          Array.make (Compact.Preprocess.num_bdd_nodes bg) Compact.Types.VH
        in
        check_ok (Compact.Types.check_labeling bg labels);
        check_ok (Compact.Types.check_labeling ~alignment:true bg labels));
    Alcotest.test_case "alignment rejects V-labelled terminal" `Quick
      (fun () ->
         let bg = Lazy.force fig2_graph in
         let n = Compact.Preprocess.num_bdd_nodes bg in
         let labels = Array.make n Compact.Types.VH in
         labels.(bg.terminal) <- Compact.Types.V;
         check tb "error" true
           (Compact.Types.check_labeling ~alignment:true bg labels
            <> Stdlib.Ok ()));
    Alcotest.test_case "make_labeling derives counts" `Quick (fun () ->
        let bg = Lazy.force fig2_graph in
        let labeling =
          Compact.Label_oct.solve ~gamma:1.0 bg
        in
        check ti "S = rows + cols"
          (labeling.rows + labeling.cols)
          (Compact.Types.semiperimeter labeling);
        check ti "S = n + #VH"
          (Compact.Preprocess.num_bdd_nodes bg + labeling.vh_count)
          (Compact.Types.semiperimeter labeling));
  ]

(* ------------------------------------------------------------------ *)

let labeling_valid ?(alignment = false) bg (labeling : Compact.Types.labeling) =
  Compact.Types.check_labeling ~alignment bg labeling.labels = Stdlib.Ok ()

let label_tests =
  [
    Alcotest.test_case "fig2 minimal semiperimeter is n + 1" `Quick (fun () ->
        (* The BDD graph of (a&b)|c contains an odd cycle: OCT = 1. *)
        let bg = Lazy.force fig2_graph in
        let labeling = Compact.Label_oct.solve ~gamma:1.0 bg in
        check tb "optimal" true labeling.optimal;
        check ti "vh" 1 labeling.vh_count;
        check ti "S" 5 (Compact.Types.semiperimeter labeling);
        check tb "valid" true (labeling_valid bg labeling));
    Alcotest.test_case "bipartite BDD graph needs no VH" `Quick (fun () ->
        (* A chain a & b & c has a path-shaped BDD graph. *)
        let bg = graph_of_expr (e "a & b & c") in
        let labeling = Compact.Label_oct.solve ~gamma:1.0 bg in
        check ti "vh" 0 labeling.vh_count;
        check tb "valid" true (labeling_valid bg labeling));
    Alcotest.test_case "greedy labeling is valid" `Quick (fun () ->
        let bg = graph_of_expr (e "(a ^ b) | (b & c)") in
        let labeling = Compact.Label_oct.greedy bg in
        check tb "valid" true (labeling_valid bg labeling));
    Alcotest.test_case "alignment puts ports on wordlines" `Quick (fun () ->
        let bg = Lazy.force fig2_graph in
        List.iter
          (fun labeling ->
             check tb "valid aligned" true
               (labeling_valid ~alignment:true bg labeling))
          [
            Compact.Label_oct.solve ~alignment:true bg;
            Compact.Label_mip.solve ~alignment:true bg;
            Compact.Label_heuristic.solve ~alignment:true bg;
          ]);
    Alcotest.test_case "mip matches oct at gamma = 1" `Quick (fun () ->
        List.iter
          (fun f ->
             let bg = graph_of_expr f in
             let oct = Compact.Label_oct.solve ~gamma:1.0 bg in
             let mip = Compact.Label_mip.solve ~gamma:1.0 bg in
             check tb "both optimal" true (oct.optimal && mip.optimal);
             check ti "same semiperimeter"
               (Compact.Types.semiperimeter oct)
               (Compact.Types.semiperimeter mip))
          [ e "(a & b) | c"; e "a ^ b ^ c"; e "(a | b) & (b | c) & (a | c)" ]);
    Alcotest.test_case "mip never worse than heuristic" `Quick (fun () ->
        List.iter
          (fun gamma ->
             let bg = graph_of_expr (e "(a ^ b) & (b ^ c) | (a & c)") in
             let h = Compact.Label_heuristic.solve ~gamma bg in
             let mip = Compact.Label_mip.solve ~gamma bg in
             check tb "mip <= heuristic" true
               (mip.objective <= h.objective +. 1e-9))
          [ 0.0; 0.5; 1.0 ]);
    Alcotest.test_case "mip trace records convergence" `Quick (fun () ->
        let bg = graph_of_expr (e "(a ^ b) | c") in
        let mip = Compact.Label_mip.solve ~gamma:0.5 bg in
        check tb "has trace" true (mip.trace <> []));
    qcheck_case "all solvers produce valid labelings" expr_gen (fun f ->
        let bg = graph_of_expr f in
        List.for_all
          (fun labeling -> labeling_valid bg labeling)
          [
            Compact.Label_oct.solve bg;
            Compact.Label_oct.greedy bg;
            Compact.Label_mip.solve bg;
            Compact.Label_heuristic.solve bg;
          ]);
    qcheck_case "oct-exact semiperimeter <= greedy" expr_gen (fun f ->
        let bg = graph_of_expr f in
        Compact.Types.semiperimeter (Compact.Label_oct.solve bg)
        <= Compact.Types.semiperimeter (Compact.Label_oct.greedy bg));
  ]

let constrained_tests =
  [
    Alcotest.test_case "capacity constraints are honoured" `Quick (fun () ->
        let bg = graph_of_expr (e "(a & b) | c") in
        (* Unconstrained fig2 optimum is 3 rows x 2 cols; cap the rows. *)
        let labeling =
          Compact.Label_mip.solve ~alignment:true ~max_rows:3 ~max_cols:3 bg
        in
        check tb "rows" true (labeling.rows <= 3);
        check tb "cols" true (labeling.cols <= 3);
        check tb "valid" true (labeling_valid ~alignment:true bg labeling));
    Alcotest.test_case "tight but feasible capacity found" `Quick (fun () ->
        let bg = graph_of_expr (e "a ^ b ^ c") in
        (* All-VH always fits in n x n. *)
        let n = Compact.Preprocess.num_bdd_nodes bg in
        let labeling = Compact.Label_mip.solve ~max_rows:n ~max_cols:n bg in
        check tb "valid" true (labeling_valid bg labeling));
    Alcotest.test_case "infeasible capacity reported" `Quick (fun () ->
        let bg = graph_of_expr (e "(a & b) | c") in
        (* 4 graph nodes can never fit on 1 wordline + 1 bitline. *)
        check tb "raises" true
          (match Compact.Label_mip.solve ~max_rows:1 ~max_cols:1 bg with
           | exception Compact.Label_mip.Infeasible _ -> true
           | _ -> false));
    Alcotest.test_case "capacity can force a taller-thinner design" `Quick
      (fun () ->
         let bg = graph_of_expr (e "(a ^ b) | (b & c) | (a & c)") in
         let free = Compact.Label_mip.solve ~gamma:0.5 bg in
         let cap = max 1 (free.cols - 1) in
         match Compact.Label_mip.solve ~gamma:0.5 ~max_cols:cap bg with
         | labeling ->
           check tb "cols capped" true (labeling.cols <= cap);
           check tb "valid" true (labeling_valid bg labeling)
         | exception Compact.Label_mip.Infeasible _ -> ());
  ]

(* ------------------------------------------------------------------ *)

let balance_tests =
  [
    Alcotest.test_case "balances two free components" `Quick (fun () ->
        (* Graph: two disjoint stars K1,3; without flipping, both centres
           could land on the same side giving D = 6; balancing yields 4/4. *)
        let g =
          Graphs.Ugraph.of_edges ~n:8
            [ 0, 1; 0, 2; 0, 3; 4, 5; 4, 6; 4, 7 ]
        in
        let bg =
          {
            Compact.Types.graph = g;
            edge_literals = [];
            terminal = 1;
            roots = [];
            node_names = Array.make 8 "x";
          }
        in
        let transversal = Array.make 8 false in
        let coloring = [| 0; 1; 1; 1; 0; 1; 1; 1 |] in
        let labels = Compact.Balance.orient bg ~transversal ~coloring in
        let rows =
          Array.fold_left
            (fun acc l ->
               if l = Compact.Types.H || l = Compact.Types.VH then acc + 1
               else acc)
            0 labels
        in
        check ti "balanced rows" 4 rows);
    Alcotest.test_case "invalid colouring rejected" `Quick (fun () ->
        let g = Graphs.Ugraph.of_edges ~n:2 [ 0, 1 ] in
        let bg =
          {
            Compact.Types.graph = g;
            edge_literals = [];
            terminal = 0;
            roots = [];
            node_names = Array.make 2 "x";
          }
        in
        check tb "raises" true
          (match
             Compact.Balance.orient bg ~transversal:(Array.make 2 false)
               ~coloring:[| 0; 0 |]
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* ------------------------------------------------------------------ *)

let mapping_tests =
  [
    Alcotest.test_case "design dimensions match the labeling" `Quick
      (fun () ->
         let bg = Lazy.force fig2_graph in
         let labeling = Compact.Label_mip.solve ~alignment:true bg in
         let design = Compact.Mapping.run bg labeling in
         check ti "rows" labeling.rows (Crossbar.Design.rows design);
         check ti "cols" (max labeling.cols 1) (Crossbar.Design.cols design));
    Alcotest.test_case "every edge is programmed + one fuse per VH" `Quick
      (fun () ->
         let bg = Lazy.force fig2_graph in
         let labeling = Compact.Label_mip.solve ~alignment:true bg in
         let design = Compact.Mapping.run bg labeling in
         check ti "literal junctions"
           (List.length bg.edge_literals)
           (Crossbar.Design.num_literal_junctions design);
         check ti "fuses" labeling.vh_count
           (Crossbar.Design.num_on_junctions design));
    Alcotest.test_case "alignment places ports on rows" `Quick (fun () ->
        let bg = graph_of_expr (e "(a & b) ^ c") in
        let labeling = Compact.Label_mip.solve ~alignment:true bg in
        let design = Compact.Mapping.run bg labeling in
        (match Crossbar.Design.input design with
         | Crossbar.Design.Row _ -> ()
         | Crossbar.Design.Col _ -> Alcotest.fail "input on a bitline");
        List.iter
          (fun (_, w) ->
             match w with
             | Crossbar.Design.Row _ -> ()
             | Crossbar.Design.Col _ -> Alcotest.fail "output on a bitline")
          (Crossbar.Design.outputs design));
    Alcotest.test_case "mismatched labeling rejected" `Quick (fun () ->
        let bg = Lazy.force fig2_graph in
        let other = graph_of_expr (e "a & b & c & a") in
        let labeling = Compact.Label_mip.solve other in
        check tb "raises" true
          (match Compact.Mapping.run bg labeling with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* ------------------------------------------------------------------ *)

let verify_expr f (r : Compact.Pipeline.result) =
  let inputs = Logic.Expr.vars f in
  if inputs = [] then true
  else begin
    let reference =
      Logic.Truth_table.of_exprs ~inputs [ "f_out", f ]
    in
    Crossbar.Verify.against_table r.design ~reference = Crossbar.Verify.Ok
  end

let pipeline_tests =
  [
    Alcotest.test_case "fig2 report" `Quick (fun () ->
        let r = Compact.Pipeline.synthesize_expr ~name:"f" (e "(a & b) | c") in
        check ti "nodes" 4 r.report.bdd_nodes;
        check ti "S" 5 r.report.semiperimeter;
        check tb "optimal" true r.report.optimal);
    Alcotest.test_case "multi-output synthesis verifies" `Quick (fun () ->
        let nl = Circuits.Arith.ripple_adder ~bits:3 () in
        let r = Compact.Pipeline.synthesize nl in
        check tb "verified" true
          (Crossbar.Verify.against_table r.design
             ~reference:(Logic.Netlist.to_truth_table nl)
           = Crossbar.Verify.Ok));
    Alcotest.test_case "separate robdds merged design verifies" `Quick
      (fun () ->
         let nl = Circuits.Arith.ripple_adder ~bits:2 () in
         let _, merged = Compact.Pipeline.synthesize_separate_robdds nl in
         check tb "verified" true
           (Crossbar.Verify.against_table merged
              ~reference:(Logic.Netlist.to_truth_table nl)
            = Crossbar.Verify.Ok));
    Alcotest.test_case "constant outputs synthesise and verify" `Quick
      (fun () ->
         let nl =
           Logic.Netlist.create ~name:"consts" ~inputs:[ "a" ]
             ~outputs:[ "zero"; "one"; "id" ]
             [
               Logic.Netlist.n_expr "zero" Logic.Expr.fls;
               Logic.Netlist.n_expr "one" Logic.Expr.tru;
               Logic.Netlist.n_buf "id" "a";
             ]
         in
         let r = Compact.Pipeline.synthesize nl in
         check tb "verified" true
           (Crossbar.Verify.against_table r.design
              ~reference:(Logic.Netlist.to_truth_table nl)
            = Crossbar.Verify.Ok));
    Alcotest.test_case "every solver verifies on a decoder" `Quick (fun () ->
        let nl = Circuits.Control.decoder ~select_bits:3 () in
        let reference = Logic.Netlist.to_truth_table nl in
        List.iter
          (fun solver ->
             let options =
               { Compact.Pipeline.default_options with solver; time_limit = 5. }
             in
             let r = Compact.Pipeline.synthesize ~options nl in
             check tb "verified" true
               (Crossbar.Verify.against_table r.design ~reference
                = Crossbar.Verify.Ok))
          [
            Compact.Pipeline.Oct_exact;
            Compact.Pipeline.Oct_greedy;
            Compact.Pipeline.Mip;
            Compact.Pipeline.Heuristic;
          ]);
    Alcotest.test_case "gamma=1 semiperimeter is n + k (<= heuristics)" `Quick
      (fun () ->
         let nl = Circuits.Control.opcode_decoder () in
         let options =
           {
             Compact.Pipeline.default_options with
             gamma = 1.0;
             solver = Compact.Pipeline.Oct_exact;
             time_limit = 10.;
           }
         in
         let r = Compact.Pipeline.synthesize ~options nl in
         check ti "S = n + #VH"
           (r.report.bdd_nodes + r.report.vh_count)
           r.report.semiperimeter);
    Alcotest.test_case "merge_diagonal shares one input row" `Quick
      (fun () ->
         let nl = Circuits.Arith.ripple_adder ~bits:2 () in
         let results, merged =
           Compact.Pipeline.synthesize_separate_robdds nl
         in
         let sum_rows =
           List.fold_left
             (fun acc (r : Compact.Pipeline.result) ->
                acc + Crossbar.Design.rows r.design)
             0 results
         in
         check ti "rows share input"
           (sum_rows - List.length results + 1)
           (Crossbar.Design.rows merged));
    Alcotest.test_case "report gap is zero when optimal" `Quick (fun () ->
        let r = Compact.Pipeline.synthesize_expr ~name:"g" (e "a ^ b ^ c") in
        check tb "optimal" true r.report.optimal;
        check (Alcotest.float 1e-9) "gap" 0. r.report.gap);
    qcheck_case "pipeline output equals the function (all solvers)"
      ~count:40 expr_gen
      (fun f ->
         let r = Compact.Pipeline.synthesize_expr ~name:"f" f in
         verify_expr f r);
    qcheck_case "unaligned synthesis also verifies" ~count:30 expr_gen
      (fun f ->
         let options =
           { Compact.Pipeline.default_options with alignment = false }
         in
         let inputs = Logic.Expr.vars f in
         if inputs = [] then true
         else begin
           let nl =
             Logic.Netlist.create ~name:"u" ~inputs ~outputs:[ "f" ]
               [ Logic.Netlist.n_expr "f" f ]
           in
           let r = Compact.Pipeline.synthesize ~options nl in
           Crossbar.Verify.against_table r.design
             ~reference:(Logic.Netlist.to_truth_table nl)
           = Crossbar.Verify.Ok
         end);
  ]

let metamorphic_tests =
  [
    qcheck_case "complement metamorphic: f and !f both verify" ~count:30
      expr_gen
      (fun f ->
         verify_expr f (Compact.Pipeline.synthesize_expr ~name:"f" f)
         && verify_expr (Logic.Expr.not_ f)
              (Compact.Pipeline.synthesize_expr ~name:"f"
                 (Logic.Expr.not_ f)));
    qcheck_case "COMPACT never exceeds the staircase semiperimeter"
      ~count:30 expr_gen
      (fun f ->
         let inputs = Logic.Expr.vars f in
         if inputs = [] then true
         else begin
           let nl =
             Logic.Netlist.create ~name:"m" ~inputs ~outputs:[ "f" ]
               [ Logic.Netlist.n_expr "f" f ]
           in
           let compact = Compact.Pipeline.synthesize nl in
           let stair = Baseline.Staircase.synthesize nl in
           Crossbar.Design.semiperimeter compact.design
           <= Crossbar.Design.semiperimeter stair.merged
         end);
    qcheck_case "duplicated output costs nothing extra" ~count:20 expr_gen
      (fun f ->
         (* Sharing: synthesising [f; f] equals synthesising [f] up to the
            extra output port (same nodes, same semiperimeter). *)
         let inputs = Logic.Expr.vars f in
         if inputs = [] then true
         else begin
           let one =
             Compact.Pipeline.synthesize
               (Logic.Netlist.create ~name:"m1" ~inputs ~outputs:[ "f" ]
                  [ Logic.Netlist.n_expr "f" f ])
           in
           let two =
             Compact.Pipeline.synthesize
               (Logic.Netlist.create ~name:"m2" ~inputs
                  ~outputs:[ "f"; "g" ]
                  [
                    Logic.Netlist.n_expr "f" f; Logic.Netlist.n_buf "g" "f";
                  ])
           in
           two.report.bdd_nodes = one.report.bdd_nodes
         end);
    qcheck_case "labels survive a mapping round trip" ~count:30 expr_gen
      (fun f ->
         (* The design's junction census must agree with the labeling. *)
         let bg = graph_of_expr f in
         let labeling = Compact.Label_heuristic.solve ~gamma:0.5 bg in
         let design = Compact.Mapping.run bg labeling in
         Crossbar.Design.num_on_junctions design = labeling.vh_count
         && Crossbar.Design.num_literal_junctions design
            = List.length bg.edge_literals);
  ]

(* ------------------------------------------------------------------ *)
(* Differential battery: one random function, every solver, checked
   against each other and against the reference evaluator. *)

let index_env inputs =
  let tbl = Hashtbl.create (List.length inputs) in
  List.iteri (fun i name -> Hashtbl.add tbl name i) inputs;
  fun (point : bool array) name -> point.(Hashtbl.find tbl name)

let differential_tests =
  [
    qcheck_case "every solver verifies; exact never beaten (4-6 vars)"
      ~count:20 wide_expr_gen
      (fun f ->
         let inputs = Logic.Expr.vars f in
         if inputs = [] then true
         else begin
           let env = index_env inputs in
           let reference point = [| Logic.Expr.eval (env point) f |] in
           let run solver =
             (* gamma = 1 makes the objective pure semiperimeter, so the
                exact OCT solver's optimum bounds every other method. *)
             let options =
               {
                 Compact.Pipeline.default_options with
                 solver;
                 gamma = 1.0;
                 time_limit = 10.;
               }
             in
             Compact.Pipeline.synthesize_expr ~options ~name:"d" f
           in
           let verified (r : Compact.Pipeline.result) =
             Crossbar.Verify.auto ~trials:256 r.design ~inputs ~reference
               ~outputs:[ "d_out" ]
             = Crossbar.Verify.Ok
           in
           let exact = run Compact.Pipeline.Oct_exact in
           let heuristics =
             List.map run
               [
                 Compact.Pipeline.Oct_greedy;
                 Compact.Pipeline.Mip;
                 Compact.Pipeline.Heuristic;
               ]
           in
           List.for_all verified (exact :: heuristics)
           && (* An exact optimum is a floor for every other method; only
                 claim it when the solver proved optimality in budget. *)
           ((not exact.report.optimal)
            || List.for_all
                 (fun (r : Compact.Pipeline.result) ->
                    exact.report.semiperimeter <= r.report.semiperimeter)
                 heuristics)
         end);
  ]

(* Cross-engine oracle: the expression evaluator, the BDD engine and the
   crossbar sneak-path simulator must agree on every input vector. *)

let oracle_tests =
  [
    qcheck_case "expr = BDD = crossbar on all 2^n vectors" ~count:30
      wide_expr_gen
      (fun f ->
         let inputs = Logic.Expr.vars f in
         if inputs = [] then true
         else begin
           let n = List.length inputs in
           let sbdd = Bdd.Sbdd.of_exprs ~inputs [ "root", f ] in
           let root = List.assoc "root" sbdd.Bdd.Sbdd.roots in
           let r = Compact.Pipeline.synthesize_expr ~name:"orc" f in
           let eval_design = Crossbar.Eval.evaluator r.design in
           let env = index_env inputs in
           let ok = ref true in
           for m = 0 to (1 lsl n) - 1 do
             let point = Array.init n (fun i -> m land (1 lsl i) <> 0) in
             let lookup = env point in
             let expr_v = Logic.Expr.eval lookup f in
             let bdd_v =
               Bdd.Manager.eval sbdd.Bdd.Sbdd.man root (fun lvl ->
                   lookup sbdd.Bdd.Sbdd.input_order.(lvl))
             in
             let xbar_v = List.assoc "orc_out" (eval_design lookup) in
             if expr_v <> bdd_v || expr_v <> xbar_v then ok := false
           done;
           !ok
         end);
  ]

let () =
  Alcotest.run "compact"
    [
      "preprocess", preprocess_tests;
      "types", types_tests;
      "labeling", label_tests;
      "constrained", constrained_tests;
      "balance", balance_tests;
      "mapping", mapping_tests;
      "pipeline", pipeline_tests;
      "metamorphic", metamorphic_tests;
      "differential", differential_tests;
      "oracle", oracle_tests;
    ]
