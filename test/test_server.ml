(* compactd protocol and serving-loop battery.

   Conformance goldens for the JSONL wire protocol (valid requests,
   malformed JSON, unknown ops, option overrides, the oversized-line
   error), socket-level tests against a real [Sock.serve] loop running
   in a companion domain (round-trips, client disconnect mid-request,
   oversized lines), and the pipeline-reentrancy regression backing the
   serving core: back-to-back in-process syntheses are byte-identical.

   Run via the @server alias at COMPACT_JOBS=1 and COMPACT_JOBS=4. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let ts = Alcotest.string

module J = Obs.Json
module Protocol = Server.Protocol
module Engine = Server.Engine

let defaults = Compact.Pipeline.default_options

let parse line = Protocol.parse_request ~defaults line

let code_of = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> Protocol.error_code_name e.Protocol.code

(* ------------------------------------------------------------------ *)
(* Protocol conformance goldens *)

let parse_tests =
  [
    Alcotest.test_case "valid synth with expr" `Quick (fun () ->
        match parse {|{"op":"synth","id":7,"expr":"a & b"}|} with
        | Ok (Protocol.Synth s) ->
          check tb "id round-trips" true (s.Protocol.id = J.Num 7.);
          (match s.Protocol.source with
           | Protocol.Expr e -> check ts "expr" "a & b" e
           | _ -> Alcotest.fail "wrong source")
        | _ -> Alcotest.fail "expected Synth");
    Alcotest.test_case "valid synth with circuit and options" `Quick
      (fun () ->
         match
           parse
             {|{"op":"synth","id":"x","circuit":"dec","options":{"gamma":0.75,"solver":"heuristic","alignment":false}}|}
         with
         | Ok (Protocol.Synth s) ->
           (match s.Protocol.source with
            | Protocol.Circuit c -> check ts "circuit" "dec" c
            | _ -> Alcotest.fail "wrong source");
           check (Alcotest.float 1e-9) "gamma" 0.75
             s.Protocol.options.Compact.Pipeline.gamma;
           check tb "alignment off" false
             s.Protocol.options.Compact.Pipeline.alignment;
           check ts "solver" "heuristic"
             (Compact.Pipeline.solver_name
                s.Protocol.options.Compact.Pipeline.solver)
         | _ -> Alcotest.fail "expected Synth");
    Alcotest.test_case "status / stats / shutdown" `Quick (fun () ->
        (match parse {|{"op":"status","id":1}|} with
         | Ok (Protocol.Status _) -> ()
         | _ -> Alcotest.fail "expected Status");
        (match parse {|{"op":"stats"}|} with
         | Ok (Protocol.Stats id) -> check tb "null id" true (id = J.Null)
         | _ -> Alcotest.fail "expected Stats");
        match parse {|{"op":"shutdown","id":[1,2]}|} with
        | Ok (Protocol.Shutdown id) ->
          check tb "structured id" true (id = J.Arr [ J.Num 1.; J.Num 2. ])
        | _ -> Alcotest.fail "expected Shutdown");
    Alcotest.test_case "malformed JSON is a parse error" `Quick (fun () ->
        check ts "code" "parse" (code_of (parse "not json"));
        check ts "code" "parse" (code_of (parse "{\"op\":")));
    Alcotest.test_case "non-object JSON is a parse error" `Quick (fun () ->
        check ts "code" "parse" (code_of (parse "[1,2,3]")));
    Alcotest.test_case "unknown op" `Quick (fun () ->
        check ts "code" "unknown-op"
          (code_of (parse {|{"op":"frobnicate","id":1}|})));
    Alcotest.test_case "synth without a source is bad-request" `Quick
      (fun () ->
         check ts "code" "bad-request"
           (code_of (parse {|{"op":"synth","id":1}|})));
    Alcotest.test_case "synth with two sources is bad-request" `Quick
      (fun () ->
         check ts "code" "bad-request"
           (code_of
              (parse {|{"op":"synth","id":1,"expr":"a","circuit":"dec"}|})));
    Alcotest.test_case "server-side options are not settable" `Quick
      (fun () ->
         check ts "jobs rejected" "bad-request"
           (code_of
              (parse
                 {|{"op":"synth","id":1,"expr":"a","options":{"jobs":8}}|}));
         check ts "deadline rejected" "bad-request"
           (code_of
              (parse
                 {|{"op":"synth","id":1,"expr":"a","options":{"deadline":1}}|})));
    Alcotest.test_case "error responses carry the id back" `Quick
      (fun () ->
         let e = Engine.create Engine.default_config in
         let resp = Engine.handle e {|{"op":"frobnicate","id":42}|} in
         let j = J.parse resp in
         check tb "id preserved" true (J.member "id" j = Some (J.Num 42.));
         check tb "not ok" true (J.member "ok" j = Some (J.Bool false)));
  ]

(* ------------------------------------------------------------------ *)
(* Engine-level op handling *)

let engine_tests =
  [
    Alcotest.test_case "status reports engine version and protocol" `Quick
      (fun () ->
         let e = Engine.create Engine.default_config in
         let j = J.parse (Engine.handle e {|{"op":"status","id":1}|}) in
         check tb "engine string" true
           (J.member "engine" j = Some (J.Str Server.Version.engine));
         check tb "protocol" true
           (J.member "protocol" j = Some (J.Str "jsonl/1")));
    Alcotest.test_case "admission control rejects past max_queue" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let e =
           Engine.create { Engine.default_config with Engine.max_queue = 2 }
         in
         let line i =
           Printf.sprintf
             {|{"op":"synth","id":%d,"expr":"a & b%d"}|} i (i mod 5)
         in
         let responses = Engine.handle_batch e (List.init 5 line) in
         let overloaded =
           List.filter
             (fun r ->
                match J.member "error" (J.parse r) with
                | Some err ->
                  J.member "code" err = Some (J.Str "overload")
                | None -> false)
             responses
         in
         check ti "three rejected" 3 (List.length overloaded);
         check ti "rejected counter" 3 (Engine.stats e).Engine.rejected);
    Alcotest.test_case "shutdown sets the flag" `Quick (fun () ->
        let e = Engine.create Engine.default_config in
        check tb "clear before" false (Engine.wants_shutdown e);
        let resp = Engine.handle e {|{"op":"shutdown","id":1}|} in
        check tb "ok" true
          (J.member "ok" (J.parse resp) = Some (J.Bool true));
        check tb "set after" true (Engine.wants_shutdown e));
    Alcotest.test_case "infeasible capacity is a structured error" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let e = Engine.create Engine.default_config in
         let resp =
           Engine.handle e
             {|{"op":"synth","id":1,"expr":"(a&b)|(c&d)|(e&f)","options":{"max_rows":1,"max_cols":1}}|}
         in
         let j = J.parse resp in
         check tb "not ok" true (J.member "ok" j = Some (J.Bool false));
         match J.member "error" j with
         | Some err ->
           (match J.member "code" err with
            | Some (J.Str ("infeasible" | "exhausted")) -> ()
            | c ->
              Alcotest.failf "unexpected code %s"
                (match c with Some v -> J.to_string v | None -> "<none>"))
         | None -> Alcotest.fail "no error object");
  ]

(* ------------------------------------------------------------------ *)
(* Socket-level tests: a real serving loop in a companion domain. *)

let socket_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "compactd-test-%d-%s.sock" (Unix.getpid ()) tag)

let with_server ?(jobs = 1) tag k =
  Resilience.Inject.disable ();
  let path = socket_path tag in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let config =
    {
      (Server.Sock.default_config ~socket_path:path) with
      Server.Sock.engine = { Engine.default_config with Engine.jobs };
    }
  in
  let server = Domain.spawn (fun () -> Server.Sock.serve config) in
  let finish () =
    (match Server.Client.connect ~retries:10 path with
     | c ->
       (try ignore (Server.Client.request c {|{"op":"shutdown"}|})
        with End_of_file -> ());
       Server.Client.close c
     | exception _ -> ());
    Domain.join server
  in
  match k path with
  | r ->
    let stats = finish () in
    r, stats
  | exception e ->
    ignore (finish ());
    raise e

let socket_tests =
  [
    Alcotest.test_case "round-trip: solve, hit, stats" `Slow (fun () ->
        let (), _stats =
          with_server "roundtrip" (fun path ->
              let c = Server.Client.connect path in
              let line = {|{"op":"synth","id":1,"expr":"(a & b) | c"}|} in
              let cold = Server.Client.request c line in
              let hot = Server.Client.request c line in
              let jc = J.parse cold and jh = J.parse hot in
              check tb "cold ok" true
                (J.member "ok" jc = Some (J.Bool true));
              check tb "cold not cached" true
                (J.member "cached" jc = Some (J.Bool false));
              check tb "hot cached" true
                (J.member "cached" jh = Some (J.Bool true));
              check tb "same key" true
                (J.member "key" jc = J.member "key" jh);
              let stats =
                J.parse (Server.Client.request c {|{"op":"stats"}|})
              in
              (match J.member "cache" stats with
               | Some cache ->
                 check tb "one hit" true
                   (J.member "hits" cache = Some (J.Num 1.))
               | None -> Alcotest.fail "no cache stats");
              Server.Client.close c)
        in
        ());
    Alcotest.test_case "oversized line gets a structured error" `Slow
      (fun () ->
         let (), _stats =
           with_server "oversized" (fun path ->
               let c = Server.Client.connect path in
               let huge =
                 {|{"op":"synth","id":1,"expr":"|}
                 ^ String.make (Protocol.max_line + 64) 'a'
                 ^ {|"}|}
               in
               let resp = J.parse (Server.Client.request c huge) in
               (match J.member "error" resp with
                | Some err ->
                  check tb "oversized code" true
                    (J.member "code" err = Some (J.Str "oversized"))
                | None -> Alcotest.fail "expected an error response");
               (* The connection survives and serves the next request. *)
               let ok =
                 J.parse
                   (Server.Client.request c
                      {|{"op":"synth","id":2,"expr":"a & b"}|})
               in
               check tb "next request ok" true
                 (J.member "ok" ok = Some (J.Bool true));
               Server.Client.close c)
         in
         ());
    Alcotest.test_case "a live socket raises Busy, a stale file is replaced"
      `Slow (fun () ->
          let (), _stats =
            with_server "busy" (fun path ->
                (* Wait until the first server's listener is actually up
                   — probing during its startup would win the bind race
                   and turn this process into the server. *)
                let ready = Server.Client.connect path in
                Server.Client.close ready;
                (* A second server on the same path must refuse rather
                   than hijack the live one's socket. *)
                let config = Server.Sock.default_config ~socket_path:path in
                (match Server.Sock.serve config with
                 | _ -> Alcotest.fail "second server bound a live socket"
                 | exception Server.Sock.Busy _ -> ()))
          in
          (* The first server has shut down; its socket file would be
             stale now — but shutdown unlinks it, so fabricate a stale
             one: bind and close without unlinking. *)
          let path = socket_path "busy" in
          check tb "drain unlinked the socket" false (Sys.file_exists path);
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.bind fd (Unix.ADDR_UNIX path);
          Unix.close fd;
          check tb "stale file present" true (Sys.file_exists path);
          (* No pre-unlink here: serve itself must probe the file,
             find no listener behind it, and reclaim the path. *)
          let config = Server.Sock.default_config ~socket_path:path in
          let server = Domain.spawn (fun () -> Server.Sock.serve config) in
          let c = Server.Client.connect path in
          let r =
            J.parse
              (Server.Client.request c {|{"op":"synth","id":1,"expr":"a & b"}|})
          in
          check tb "serving on the reclaimed path" true
            (J.member "ok" r = Some (J.Bool true));
          (try ignore (Server.Client.request c {|{"op":"shutdown"}|} : string)
           with End_of_file -> ());
          Server.Client.close c;
          ignore (Domain.join server : Engine.stats));
    Alcotest.test_case "client disconnect mid-request" `Slow (fun () ->
        let (), stats =
          with_server "disconnect" (fun path ->
              (* Wait until the listener is up, then immediately hang
                 up — a connection that never says anything. *)
              let ready = Server.Client.connect path in
              Server.Client.close ready;
              (* Half a request — no terminating newline — then vanish. *)
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_UNIX path);
              let partial = Bytes.of_string {|{"op":"synth","id":1,"ex|} in
              ignore (Unix.write fd partial 0 (Bytes.length partial));
              (* Give the serving loop a chance to read the fragment
                 before the EOF lands. *)
              Unix.sleepf 0.05;
              Unix.close fd;
              (* A full request whose response has no reader. *)
              let c2 = Server.Client.connect path in
              Server.Client.send c2
                {|{"op":"synth","id":2,"expr":"a & b & c"}|};
              Server.Client.close c2;
              (* The server must still answer a healthy client. *)
              let c3 = Server.Client.connect path in
              let resp =
                J.parse
                  (Server.Client.request c3
                     {|{"op":"synth","id":3,"expr":"(a ^ b) & c"}|})
              in
              check tb "healthy client served" true
                (J.member "ok" resp = Some (J.Bool true));
              Server.Client.close c3)
        in
        check tb "server processed requests" true
          (stats.Engine.served >= 1));
  ]

(* ------------------------------------------------------------------ *)
(* Durable cache: engine-level recovery round-trip (PR-8). *)

let persist_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "compactd-test-persist-%d-%s" (Unix.getpid ()) tag)
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
         try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  dir

(* The only legitimate byte difference across a recovery: the hit flag. *)
let uncached s =
  let sub = {|"cached":true|} and by = {|"cached":false|} in
  let n = String.length sub in
  let rec find i =
    if i + n > String.length s then s
    else if String.sub s i n = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)
    else find (i + 1)
  in
  find 0

let persistence_tests =
  [
    Alcotest.test_case "engine recovers its cache across a close" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let dir = persist_dir "roundtrip" in
         let config =
           { Engine.default_config with Engine.cache_dir = Some dir }
         in
         let lines =
           [
             {|{"op":"synth","id":1,"expr":"(a & b) | ~c"}|};
             {|{"op":"synth","id":2,"expr":"(a ^ c) & (b | d)"}|};
           ]
         in
         let e1 = Engine.create config in
         let before = List.map (Engine.handle e1) lines in
         Engine.close e1;
         let e2 = Engine.create config in
         check ti "both entries recovered" 2 (Engine.stats e2).Engine.recovered;
         check ti "nothing dropped" 0 (Engine.stats e2).Engine.dropped;
         let after = List.map (Engine.handle e2) lines in
         List.iter2
           (fun b a ->
              check tb "recovered entry serves as a hit" true
                (J.member "cached" (J.parse a) = Some (J.Bool true));
              check ts "byte-identical modulo the hit flag" b (uncached a))
           before after;
         Engine.close e2);
    Alcotest.test_case "a cold engine without cache_dir reports no persist"
      `Quick (fun () ->
          Resilience.Inject.disable ();
          let e = Engine.create Engine.default_config in
          let stats = Engine.handle e {|{"op":"stats","id":1}|} in
          check tb "no persist object" true
            (J.member "persist" (J.parse stats) = None));
    Alcotest.test_case "stats expose the persist counters" `Quick (fun () ->
        Resilience.Inject.disable ();
        let dir = persist_dir "stats" in
        let e =
          Engine.create
            { Engine.default_config with Engine.cache_dir = Some dir }
        in
        ignore (Engine.handle e {|{"op":"synth","id":1,"expr":"a & b"}|});
        let j = J.parse (Engine.handle e {|{"op":"stats","id":2}|}) in
        (match J.member "persist" j with
         | Some p ->
           check tb "recovered field" true (J.member "recovered" p <> None);
           check tb "journal grew past its magic" true
             (match J.member "journal_bytes" p with
              | Some (J.Num n) ->
                n > float_of_int (String.length Server.Persist.journal_magic)
              | _ -> false)
         | None -> Alcotest.fail "no persist stats with cache_dir set");
        Engine.close e);
  ]

(* ------------------------------------------------------------------ *)
(* Client resilience plumbing: the retry-after wire format and the
   seeded backoff schedule (pure pieces; the full replay behaviour is
   covered end-to-end by the @server-restart battery). *)

let resilience_tests =
  [
    Alcotest.test_case "retry-after golden" `Quick (fun () ->
        check ts "wire format"
          {|{"id":7,"ok":false,"error":{"code":"retry-after","message":"busy","retry_after_s":0.25}}|}
          (Protocol.retry_after_response ~id:(J.Num 7.) ~after_s:0.25
             ~message:"busy"));
    Alcotest.test_case "retry_after_hint parses the hint" `Quick (fun () ->
        (match
           Protocol.retry_after_hint
             (Protocol.retry_after_response ~id:J.Null ~after_s:0.5
                ~message:"drain")
         with
         | Some s -> check (Alcotest.float 1e-9) "hint" 0.5 s
         | None -> Alcotest.fail "hint not parsed");
        check tb "ok responses carry no hint" true
          (Protocol.retry_after_hint
             (Protocol.ok_response ~id:J.Null [])
           = None);
        check tb "other errors carry no hint" true
          (Protocol.retry_after_hint
             (Protocol.error_response
                {
                  Protocol.err_id = J.Null;
                  code = Protocol.Overload;
                  message = "full";
                })
           = None));
    Alcotest.test_case "backoff is deterministic, capped and jittered"
      `Quick (fun () ->
          let d k = Server.Client.backoff_delay ~seed:9 ~base:0.005 ~cap:0.1 k in
          List.iter
            (fun k ->
               check (Alcotest.float 1e-12)
                 (Printf.sprintf "attempt %d replays" k)
                 (d k) (d k))
            [ 0; 1; 5; 40 ];
          List.iter
            (fun k ->
               let v = d k in
               check tb "within the cap" true (v <= 0.1);
               check tb "positive" true (v > 0.);
               (* Jitter scales into [0.5, 1.0] of the capped value. *)
               let raw = Float.min 0.1 (0.005 *. (2. ** float_of_int k)) in
               check tb "above half the raw delay" true (v >= (0.5 *. raw)))
            [ 0; 1; 2; 3; 10; 63 ];
          (* Different seeds decorrelate the jitter draw. *)
          let a =
            Server.Client.backoff_delay ~seed:1 ~base:0.005 ~cap:0.1 6
          in
          let b =
            Server.Client.backoff_delay ~seed:2 ~base:0.005 ~cap:0.1 6
          in
          check tb "seeds differ" true (a <> b));
  ]

(* ------------------------------------------------------------------ *)
(* Reentrancy regression: the serving core assumes [Pipeline.synthesize]
   has no mutable global state, so two back-to-back in-process runs must
   produce the same bytes. *)

let reentrancy_tests =
  [
    Alcotest.test_case "back-to-back syntheses are byte-identical" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let e =
           Logic.Parse.expr "((a & b) | (b & c) | (a & c)) ^ (~a & d)"
         in
         let nl =
           Logic.Netlist.create ~name:"maj" ~inputs:(Logic.Expr.vars e)
             ~outputs:[ "f" ] [ Logic.Netlist.n_expr "f" e ]
         in
         let run () =
           let r = Compact.Pipeline.synthesize ~options:defaults nl in
           (* The canonical serialization: design plus the report minus
              its wall-clock fields, which legitimately differ run to
              run. *)
           J.to_string (Protocol.design_json r.Compact.Pipeline.design)
           ^ J.to_string (Protocol.report_json r.Compact.Pipeline.report)
         in
         let first = run () in
         let second = run () in
         check ts "identical design and report" first second);
    Alcotest.test_case "repeated syntheses do not re-register counters"
      `Quick (fun () ->
          Resilience.Inject.disable ();
          let saved = Obs.enabled () in
          Obs.set_enabled true;
          Obs.reset ();
          let e = Engine.create Engine.default_config in
          let line = {|{"op":"synth","id":1,"expr":"(a | b) & ~c"}|} in
          ignore (Engine.handle e line : string);
          ignore (Engine.handle e line : string);
          let snap = Obs.drain () in
          Obs.set_enabled saved;
          let names = List.map fst snap.Obs.counters in
          check ti "counter names unique across repeated runs"
            (List.length names)
            (List.length (List.sort_uniq compare names)));
    Alcotest.test_case "interleaved engines do not interfere" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let line = {|{"op":"synth","id":1,"expr":"(a & ~b) | (b & c)"}|} in
         let e1 = Engine.create Engine.default_config in
         let e2 = Engine.create Engine.default_config in
         let r1 = Engine.handle e1 line in
         let r2 = Engine.handle e2 line in
         let r1' = Engine.handle e1 line in
         check ts "cold responses identical across engines" r1 r2;
         check tb "second engine's cache untouched by the first" true
           ((Engine.stats e2).Engine.cache.Server.Cache.entries = 1);
         check tb "hit on the first engine" true
           (J.member "cached" (J.parse r1') = Some (J.Bool true)));
  ]

let () =
  Alcotest.run "server"
    [
      "protocol", parse_tests;
      "engine", engine_tests;
      "persistence", persistence_tests;
      "resilience", resilience_tests;
      "socket", socket_tests;
      "reentrancy", reentrancy_tests;
    ]
