(* Tests for the variation-aware electrical layer: deviation sampling,
   closed-form nodal analysis, CG fallback robustness, margin / Monte
   Carlo determinism, and the pipeline hardening stage. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let near tol = Alcotest.float tol

(* Fig 2 crossbar for f = (a & b) | c (same fixture as test_crossbar). *)
let fig2_design () =
  let d =
    Crossbar.Design.create ~rows:3 ~cols:2 ~input:(Crossbar.Design.Row 2)
      ~outputs:[ "f", Crossbar.Design.Row 0 ]
  in
  Crossbar.Design.set d ~row:0 ~col:0 (Crossbar.Literal.Neg "a");
  Crossbar.Design.set d ~row:0 ~col:1 (Crossbar.Literal.Pos "a");
  Crossbar.Design.set d ~row:1 ~col:0 (Crossbar.Literal.Neg "b");
  Crossbar.Design.set d ~row:1 ~col:1 Crossbar.Literal.On;
  Crossbar.Design.set d ~row:2 ~col:0 (Crossbar.Literal.Pos "c");
  Crossbar.Design.set d ~row:2 ~col:1 (Crossbar.Literal.Pos "b");
  d

let fig2_inputs = [ "a"; "b"; "c" ]
let fig2_reference point = [| (point.(0) && point.(1)) || point.(2) |]

(* Two On junctions in series with the sensing resistor. *)
let chain_design () =
  let d =
    Crossbar.Design.create ~rows:2 ~cols:1 ~input:(Crossbar.Design.Row 1)
      ~outputs:[ "f", Crossbar.Design.Row 0 ]
  in
  Crossbar.Design.set d ~row:1 ~col:0 Crossbar.Literal.On;
  Crossbar.Design.set d ~row:0 ~col:0 Crossbar.Literal.On;
  d

let variation_tests =
  [
    Alcotest.test_case "same seed, same sample" `Quick (fun () ->
        let spec = Crossbar.Variation.default_spec in
        let a = Crossbar.Variation.sample ~seed:7 spec ~rows:4 ~cols:5 in
        let b = Crossbar.Variation.sample ~seed:7 spec ~rows:4 ~cols:5 in
        check tb "identical" true (a = b));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let spec = Crossbar.Variation.default_spec in
        let a = Crossbar.Variation.sample ~seed:7 spec ~rows:4 ~cols:5 in
        let b = Crossbar.Variation.sample ~seed:8 spec ~rows:4 ~cols:5 in
        check tb "distinct" true (a <> b));
    Alcotest.test_case "nominal spec samples the ideal array" `Quick (fun () ->
        let d = Crossbar.Variation.sample Crossbar.Variation.nominal ~rows:3 ~cols:2 in
        check tb "ideal" true (d = Crossbar.Analog.ideal ~rows:3 ~cols:2));
    Alcotest.test_case "corners move the right knobs" `Quick (fun () ->
        let spec = Crossbar.Variation.default_spec in
        let weak = Crossbar.Variation.corner spec Crossbar.Variation.Weak_on ~rows:2 ~cols:2 in
        let leaky = Crossbar.Variation.corner spec Crossbar.Variation.Leaky_off ~rows:2 ~cols:2 in
        check tb "weak_on raises r_on" true (weak.on_scale.(0).(0) > 1.);
        check tb "weak_on keeps r_off" true (abs_float (weak.off_scale.(0).(0) -. 1.) < 1e-12);
        check tb "leaky_off lowers r_off" true (leaky.off_scale.(0).(0) < 1.);
        let worst = Crossbar.Variation.corner spec Crossbar.Variation.Worst ~rows:2 ~cols:2 in
        check tb "worst does both" true
          (worst.on_scale.(0).(0) > 1. && worst.off_scale.(0).(0) < 1.));
  ]

let closed_form_tests =
  [
    Alcotest.test_case "series chain divider to 1e-6" `Quick (fun () ->
        (* v_out = V * Rs / (Rs + 2 Ron); the intermediate bitline sits at
           the midpoint of the remaining drop. *)
        let p = Crossbar.Analog.default_params in
        let sol = Crossbar.Analog.solve ~params:p (chain_design ()) (fun _ -> false) in
        let v_out = p.v_in *. p.r_sense /. (p.r_sense +. (2. *. p.r_on)) in
        check (near 1e-6) "row0" v_out sol.v_rows.(0);
        check (near 1e-6) "col0 midpoint" ((p.v_in +. v_out) /. 2.) sol.v_cols.(0));
    Alcotest.test_case "all-On 2x2 to 1e-6" `Quick (fun () ->
        (* Two parallel 2-junction paths: r0 = V Rs / (Rs + Ron), both
           bitlines at (V + r0) / 2 by symmetry. *)
        let d =
          Crossbar.Design.create ~rows:2 ~cols:2 ~input:(Crossbar.Design.Row 1)
            ~outputs:[ "f", Crossbar.Design.Row 0 ]
        in
        for r = 0 to 1 do
          for c = 0 to 1 do
            Crossbar.Design.set d ~row:r ~col:c Crossbar.Literal.On
          done
        done;
        let p = Crossbar.Analog.default_params in
        let sol = Crossbar.Analog.solve ~params:p d (fun _ -> false) in
        let r0 = p.v_in *. p.r_sense /. (p.r_sense +. p.r_on) in
        check (near 1e-6) "row0" r0 sol.v_rows.(0);
        check (near 1e-6) "col0" ((p.v_in +. r0) /. 2.) sol.v_cols.(0);
        check (near 1e-6) "col1" ((p.v_in +. r0) /. 2.) sol.v_cols.(1));
    Alcotest.test_case "distributed chain adds the wire segment" `Quick
      (fun () ->
         (* One bitline segment of 50 ohm in the only path:
            v_out = V Rs / (Rs + 2 Ron + r_seg). *)
         let d = chain_design () in
         let p = Crossbar.Analog.default_params in
         let dev =
           { (Crossbar.Analog.ideal ~rows:2 ~cols:1) with col_seg_r = [| 50. |] }
         in
         let sol = Crossbar.Analog.solve ~params:p ~deviations:dev d (fun _ -> false) in
         let v_out = p.v_in *. p.r_sense /. (p.r_sense +. (2. *. p.r_on) +. 50.) in
         check (near 1e-6) "row0" v_out sol.v_rows.(0));
    Alcotest.test_case "deviation scale shifts the divider" `Quick (fun () ->
        (* Doubling r_on via on_scale must match doubling it in params. *)
        let d = chain_design () in
        let dev = Crossbar.Analog.ideal ~rows:2 ~cols:1 in
        dev.on_scale.(0).(0) <- 2.;
        dev.on_scale.(1).(0) <- 2.;
        let p = Crossbar.Analog.default_params in
        let sol = Crossbar.Analog.solve ~params:p ~deviations:dev d (fun _ -> false) in
        let v_out = p.v_in *. p.r_sense /. (p.r_sense +. (4. *. p.r_on)) in
        check (near 1e-6) "row0" v_out sol.v_rows.(0));
    Alcotest.test_case "wrong-shape deviations rejected" `Quick (fun () ->
        let d = chain_design () in
        let dev = Crossbar.Analog.ideal ~rows:3 ~cols:2 in
        check tb "raises" true
          (match Crossbar.Analog.solve ~deviations:dev d (fun _ -> false) with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

let solver_tests =
  [
    Alcotest.test_case "starved CG falls back to dense and is correct" `Quick
      (fun () ->
         let d = fig2_design () in
         let env v = v <> "c" in
         let reference = Crossbar.Analog.solve d env in
         let opts =
           { Crossbar.Analog.default_solver_opts with cg_max_iter = Some 0 }
         in
         let sol = Crossbar.Analog.solve ~opts d env in
         check tb "dense method" true (sol.solve_method = Crossbar.Analog.Dense);
         check tb "has reason" true (sol.fallback_reason <> None);
         check tb "converged" true (sol.residual < Crossbar.Analog.read_tol);
         Array.iteri
           (fun i v -> check (near 1e-8) (Printf.sprintf "row %d" i) v sol.v_rows.(i))
           reference.v_rows);
    Alcotest.test_case "partial CG rescue is labeled Cg_then_dense" `Quick
      (fun () ->
         let opts =
           { Crossbar.Analog.default_solver_opts with cg_max_iter = Some 2 }
         in
         let sol = Crossbar.Analog.solve ~opts (fig2_design ()) (fun _ -> true) in
         check tb "rescued" true
           (sol.solve_method = Crossbar.Analog.Cg_then_dense
            || sol.solve_method = Crossbar.Analog.Cg);
         check tb "converged" true (sol.residual < Crossbar.Analog.read_tol));
    Alcotest.test_case "read_outputs refuses unconverged voltages" `Quick
      (fun () ->
         let opts =
           {
             Crossbar.Analog.default_solver_opts with
             cg_max_iter = Some 0;
             allow_dense = false;
           }
         in
         check tb "raises" true
           (match Crossbar.Analog.read_outputs ~opts (fig2_design ()) (fun _ -> true) with
            | exception Crossbar.Analog.No_convergence _ -> true
            | _ -> false));
    Alcotest.test_case "conditioning estimate is sane" `Quick (fun () ->
        let sol = Crossbar.Analog.solve (fig2_design ()) (fun _ -> true) in
        check tb ">= 1" true (sol.condition >= 1.);
        check tb "finite" true (Float.is_finite sol.condition));
  ]

let margin_tests =
  [
    Alcotest.test_case "fig2 margins are positive and exhaustive" `Quick
      (fun () ->
         let a =
           Crossbar.Margin.analyze (fig2_design ()) ~inputs:fig2_inputs
             ~reference:fig2_reference ~outputs:[ "f" ]
         in
         check tb "exhaustive" true a.exhaustive;
         check ti "points" 8 a.checked;
         check tb "positive" true (a.worst > 0.);
         check ti "one output" 1 (List.length a.per_output);
         check ti "unconverged" 0 a.unconverged);
    Alcotest.test_case "a sneak path turns the margin negative" `Quick
      (fun () ->
         let d = fig2_design () in
         Crossbar.Design.set d ~row:2 ~col:0 Crossbar.Literal.On;
         let a =
           Crossbar.Margin.analyze d ~inputs:fig2_inputs
             ~reference:fig2_reference ~outputs:[ "f" ]
         in
         check tb "negative" true (a.worst < 0.));
    Alcotest.test_case "worst corner is no better than typical" `Quick
      (fun () ->
         let corners =
           Crossbar.Margin.corners ~spec:Crossbar.Variation.default_spec
             (fig2_design ()) ~inputs:fig2_inputs ~reference:fig2_reference
             ~outputs:[ "f" ]
         in
         let at c = (List.assoc c corners).Crossbar.Margin.worst in
         check tb "ordered" true
           (at Crossbar.Variation.Worst <= at Crossbar.Variation.Typical);
         check (near 1e-12) "worst_over_corners"
           (List.fold_left (fun acc (_, a) -> min acc a.Crossbar.Margin.worst)
              infinity corners)
           (Crossbar.Margin.worst_over_corners corners));
    Alcotest.test_case "analysis JSON is bit-identical under a seed" `Quick
      (fun () ->
         let run () =
           Crossbar.Margin.analyze ~seed:11 (fig2_design ())
             ~inputs:fig2_inputs ~reference:fig2_reference ~outputs:[ "f" ]
         in
         check Alcotest.string "equal"
           (Crossbar.Margin.json_of_analysis (run ()))
           (Crossbar.Margin.json_of_analysis (run ())));
    Alcotest.test_case "wilson interval brackets the estimate" `Quick (fun () ->
        let low, high = Crossbar.Margin.wilson ~passes:57 ~trials:64 in
        let p = 57. /. 64. in
        check tb "bracket" true (0. < low && low < p && p < high && high < 1.);
        let low1, high1 = Crossbar.Margin.wilson ~passes:64 ~trials:64 in
        check tb "upper pinned at 1" true (high1 > 0.999999 && low1 < 1.);
        let low0, _ = Crossbar.Margin.wilson ~passes:0 ~trials:64 in
        check tb "lower pinned at 0" true (low0 >= 0. && low0 < 0.01));
    Alcotest.test_case "monte carlo is deterministic and seed-sensitive" `Quick
      (fun () ->
         let run seed =
           Crossbar.Margin.monte_carlo ~seed ~max_trials:40 ~min_trials:40
             ~spec:Crossbar.Variation.default_spec (fig2_design ())
             ~inputs:fig2_inputs ~reference:fig2_reference ~outputs:[ "f" ]
         in
         let a = Crossbar.Margin.json_of_mc (run 3)
         and b = Crossbar.Margin.json_of_mc (run 3)
         and c = Crossbar.Margin.json_of_mc (run 4) in
         check Alcotest.string "same seed" a b;
         check tb "different seed" true (a <> c));
    Alcotest.test_case "tight CI stops the sampler early" `Quick (fun () ->
        (* Nominal spec: every trial passes, the interval narrows fast. *)
        let mc =
          Crossbar.Margin.monte_carlo ~max_trials:500 ~min_trials:16
            ~ci_halfwidth:0.2 ~spec:Crossbar.Variation.nominal
            (fig2_design ()) ~inputs:fig2_inputs ~reference:fig2_reference
            ~outputs:[ "f" ]
        in
        check tb "stopped" true mc.mc_stopped_early;
        check tb "short" true (mc.mc_trials < 500);
        check (near 1e-12) "yield 1" 1. mc.mc_yield);
  ]

let permutation_tests =
  [
    Alcotest.test_case "permute preserves digital function" `Quick (fun () ->
        let d = fig2_design () in
        let p = Crossbar.Design.permute d ~row_perm:[| 2; 0; 1 |] ~col_perm:[| 1; 0 |] in
        for bits = 0 to 7 do
          let env v =
            match v with
            | "a" -> bits land 1 <> 0
            | "b" -> bits land 2 <> 0
            | _ -> bits land 4 <> 0
          in
          check tb "agree" true
            (Crossbar.Eval.evaluate d env = Crossbar.Eval.evaluate p env)
        done);
    Alcotest.test_case "non-permutation rejected" `Quick (fun () ->
        check tb "raises" true
          (match
             Crossbar.Design.permute (fig2_design ()) ~row_perm:[| 0; 0; 1 |]
               ~col_perm:[| 0; 1 |]
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "margin candidates are distinct valid placements" `Quick
      (fun () ->
         let d = fig2_design () in
         let cands = Compact.Place.margin_candidates d in
         check tb "identity first" true (fst (List.hd cands) = "identity");
         let labels = List.map fst cands in
         check ti "labels unique" (List.length labels)
           (List.length (List.sort_uniq compare labels));
         List.iter
           (fun (_, p) ->
              let d' = Compact.Place.apply_permutation p d in
              check tb "function preserved" true
                (Crossbar.Eval.evaluate d' (fun v -> v = "c")
                 = Crossbar.Eval.evaluate d (fun v -> v = "c")))
           cands);
    Alcotest.test_case "identity placement is the identity" `Quick (fun () ->
        let d = fig2_design () in
        let p = Compact.Place.identity d in
        check tb "rows" true (p.row_map = [| 0; 1; 2 |]);
        check tb "cols" true (p.col_map = [| 0; 1 |]));
  ]

(* The committed hardening example: two aligned outputs on a 4-input
   netlist, scored under resistive nanowires. The permutation stage finds
   a strictly better worst-corner margin than the as-synthesised design. *)
let harden_example () =
  Logic.Netlist.create ~name:"harden_ex" ~inputs:[ "a"; "b"; "c"; "d" ]
    ~outputs:[ "f"; "g" ]
    [ Logic.Netlist.n_expr "f" (Logic.Parse.expr "(a & b) | (c & d)");
      Logic.Netlist.n_expr "g" (Logic.Parse.expr "(a | c) & (b | d)") ]

let harden_spec =
  Crossbar.Variation.with_wire ~row:25. ~col:25. Crossbar.Variation.default_spec

let harden_tests =
  [
    Alcotest.test_case "harden beats the default design" `Quick (fun () ->
        let hopts =
          { Compact.Pipeline.default_harden_options with
            spec = harden_spec;
            mc_trials = 24 }
        in
        let r = Compact.Pipeline.harden ~hopts (harden_example ()) in
        let base =
          List.find
            (fun (c : Compact.Pipeline.candidate) -> c.cand_label = "base")
            r.candidates
        in
        check tb "strictly better" true (r.chosen.cand_worst > base.cand_worst);
        check tb "meets spec" true r.meets_spec;
        check tb "best first" true
          (List.for_all
             (fun (c : Compact.Pipeline.candidate) ->
                c.cand_worst <= r.chosen.cand_worst)
             r.candidates);
        (match r.mc with
         | None -> Alcotest.fail "mc expected"
         | Some mc -> check tb "functional yield" true (mc.mc_yield > 0.99));
        match r.hardened_report.analog with
        | None -> Alcotest.fail "analog summary expected"
        | Some a ->
          check (near 1e-12) "summary margin" r.chosen.cand_worst
            a.an_worst_margin;
          check ti "no unconverged" 0 a.an_unconverged);
    Alcotest.test_case "harden is deterministic" `Quick (fun () ->
        let hopts =
          { Compact.Pipeline.default_harden_options with
            spec = harden_spec;
            mc_trials = 16 }
        in
        let run () = Compact.Pipeline.harden ~hopts (harden_example ()) in
        let a = run () and b = run () in
        check Alcotest.string "same choice" a.chosen.cand_label b.chosen.cand_label;
        check (near 0.) "same margin" a.chosen.cand_worst b.chosen.cand_worst;
        match a.mc, b.mc with
        | Some ma, Some mb ->
          check Alcotest.string "same mc json"
            (Crossbar.Margin.json_of_mc ma) (Crossbar.Margin.json_of_mc mb)
        | _ -> Alcotest.fail "mc expected");
    Alcotest.test_case "an impossible spec degrades gracefully" `Quick
      (fun () ->
         let hopts =
           { Compact.Pipeline.default_harden_options with
             spec = harden_spec;
             margin_spec = 0.5;
             mc_trials = 0 }
         in
         let r = Compact.Pipeline.harden ~hopts (harden_example ()) in
         check tb "spec missed" true (not r.meets_spec);
         check tb "misses reported" true (r.failing_outputs <> []);
         List.iter
           (fun (_, m) -> check tb "margin below spec" true (m < 0.5))
           r.failing_outputs);
  ]

let () =
  Alcotest.run "variation"
    [
      "variation", variation_tests;
      "closed-form", closed_form_tests;
      "solver", solver_tests;
      "margin", margin_tests;
      "permutation", permutation_tests;
      "harden", harden_tests;
    ]
