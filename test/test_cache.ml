(* Design-cache battery: the PR-7 contract that a cache hit is provably
   the bytes a clean cold solve produces.

   - a hit is byte-identical to the cold response (modulo the "cached"
     flag itself);
   - distinct functions and distinct options never share a key;
   - the LRU honours both the entry and the byte bound;
   - single-flight: 8 identical concurrent requests solve once;
   - the whole engine is deterministic across jobs counts.

   Run via the @server alias at COMPACT_JOBS=1 and COMPACT_JOBS=4. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let ts = Alcotest.string

module J = Obs.Json
module Engine = Server.Engine
module Cache = Server.Cache

let jobs = Parallel.default_jobs ()

let engine ?(jobs = jobs) ?(cache_entries = 512)
    ?(cache_bytes = 16 * 1024 * 1024) () =
  Engine.create
    { Engine.default_config with jobs; cache_entries; cache_bytes }

let synth_line ?(id = 1) expr =
  Printf.sprintf {|{"op":"synth","id":%d,"expr":%s}|} id
    (J.to_string (J.Str expr))

let member name resp =
  match J.member name (J.parse resp) with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name resp

let is_ok resp = member "ok" resp = J.Bool true
let is_cached resp = member "cached" resp = J.Bool true

(* The response with its transport flags normalised away: everything
   after the "coalesced" field is the cacheable payload. *)
let payload_of resp =
  match String.index_opt resp ':' with
  | None -> resp
  | Some _ ->
    (match
       String.split_on_char ',' resp
       |> List.filter (fun f ->
           not
             (List.exists
                (fun p -> String.length f >= String.length p
                          && String.sub f 0 (String.length p) = p)
                [ {|{"id":|}; {|"id":|}; {|"cached":|}; {|"coalesced":|} ]))
     with
     | fields -> String.concat "," fields)

let hit_identity_tests =
  [
    Alcotest.test_case "hit is byte-identical to the cold solve" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let e = engine () in
         let line = synth_line "((a & b) | (c & ~d)) ^ (b | d)" in
         let cold = Engine.handle e line in
         let hot = Engine.handle e line in
         check tb "cold ok" true (is_ok cold);
         check tb "hot ok" true (is_ok hot);
         check tb "cold is not cached" false (is_cached cold);
         check tb "hot is cached" true (is_cached hot);
         check ts "identical payload bytes" (payload_of cold)
           (payload_of hot);
         let s = Engine.stats e in
         check ti "exactly one solve" 1 s.Engine.solves;
         check ti "one hit one miss" 1 s.Engine.cache.Cache.hits;
         check ti "one miss" 1 s.Engine.cache.Cache.misses);
    Alcotest.test_case "fresh engines produce identical cold bytes" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let line = synth_line "(a ^ b) & (c | ~a)" in
         let r1 = Engine.handle (engine ()) line in
         let r2 = Engine.handle (engine ()) line in
         check ts "reentrant: byte-identical responses" r1 r2);
  ]

let key_of resp =
  match member "key" resp with
  | J.Str k -> k
  | _ -> Alcotest.fail "key is not a string"

let collision_tests =
  [
    Alcotest.test_case "distinct functions get distinct keys" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let e = engine () in
         let exprs =
           [
             "a & b"; "a | b"; "a ^ b"; "~(a & b)"; "a & b & c";
             "(a & b) | c"; "(a | b) & c"; "a"; "~a";
             "(a & b) | (c & d)"; "(a & c) | (b & d)";
           ]
         in
         let keys = List.map (fun x -> key_of (Engine.handle e x))
             (List.map synth_line exprs) in
         check ti "all keys distinct"
           (List.length keys)
           (List.length (List.sort_uniq compare keys)));
    Alcotest.test_case "distinct options get distinct keys" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let e = engine () in
         let line opts =
           Printf.sprintf
             {|{"op":"synth","id":1,"expr":"(a & b) | (c & d)","options":%s}|}
             opts
         in
         let keys =
           List.map
             (fun o -> key_of (Engine.handle e (line o)))
             [
               "{}"; {|{"gamma":0.9}|}; {|{"solver":"heuristic"}|};
               {|{"alignment":false}|}; {|{"max_rows":8}|};
             ]
         in
         check ti "all keys distinct"
           (List.length keys)
           (List.length (List.sort_uniq compare keys)));
  ]

let lru_tests =
  [
    Alcotest.test_case "entry bound evicts least-recently-used" `Quick
      (fun () ->
         let c = Cache.create ~max_entries:3 () in
         Cache.add c "a" "1";
         Cache.add c "b" "2";
         Cache.add c "c" "3";
         (* Touch "a" so "b" is now the LRU entry. *)
         check (Alcotest.option ts) "a hits" (Some "1") (Cache.find c "a");
         Cache.add c "d" "4";
         check (Alcotest.option ts) "b evicted" None (Cache.find c "b");
         check (Alcotest.option ts) "a survived" (Some "1")
           (Cache.find c "a");
         check (Alcotest.option ts) "d present" (Some "4")
           (Cache.find c "d");
         let s = Cache.stats c in
         check ti "three entries" 3 s.Cache.entries;
         check ti "one eviction" 1 s.Cache.evictions);
    Alcotest.test_case "byte bound evicts until under" `Quick (fun () ->
        let c = Cache.create ~max_bytes:10 () in
        Cache.add c "a" "aaaa";
        Cache.add c "b" "bbbb";
        (* 8 bytes resident; 4 more forces "a" out. *)
        Cache.add c "c" "cccc";
        let s = Cache.stats c in
        check tb "bytes within bound" true (s.Cache.bytes <= 10);
        check (Alcotest.option ts) "a evicted" None (Cache.find c "a");
        check (Alcotest.option ts) "c present" (Some "cccc")
          (Cache.find c "c"));
    Alcotest.test_case "value larger than the bound is not admitted"
      `Quick (fun () ->
          let c = Cache.create ~max_bytes:4 () in
          Cache.add c "big" "aaaaaaaa";
          check (Alcotest.option ts) "not stored" None (Cache.find c "big");
          check ti "no entries" 0 (Cache.stats c).Cache.entries);
    Alcotest.test_case "overwrite updates bytes, not entries" `Quick
      (fun () ->
         let c = Cache.create () in
         Cache.add c "k" "aa";
         Cache.add c "k" "bbbb";
         let s = Cache.stats c in
         check ti "one entry" 1 s.Cache.entries;
         check ti "four bytes" 4 s.Cache.bytes;
         check (Alcotest.option ts) "new value" (Some "bbbb")
           (Cache.find c "k"));
  ]

let single_flight_tests =
  [
    Alcotest.test_case "8 identical requests solve once" `Quick (fun () ->
        Resilience.Inject.disable ();
        let e = engine () in
        let lines =
          List.init 8 (fun i -> synth_line ~id:(i + 1) "(a ^ b) | (c & d)")
        in
        let responses = Engine.handle_batch e lines in
        check ti "8 responses" 8 (List.length responses);
        List.iter
          (fun r -> check tb "all ok" true (is_ok r))
          responses;
        let s = Engine.stats e in
        check ti "exactly one solve" 1 s.Engine.solves;
        check ti "seven coalesced" 7 s.Engine.coalesced;
        check ti "eight cache misses" 8 s.Engine.cache.Cache.misses;
        check ti "one insert" 1 s.Engine.cache.Cache.inserts;
        (* The leader's response is not coalesced; the other seven are;
           and every payload is the same bytes. *)
        let coalesced_flags =
          List.map (fun r -> member "coalesced" r = J.Bool true) responses
        in
        check ti "seven flagged coalesced" 7
          (List.length (List.filter Fun.id coalesced_flags));
        let payloads = List.sort_uniq compare
            (List.map payload_of responses) in
        check ti "one distinct payload" 1 (List.length payloads));
    Alcotest.test_case "mixed batch: one solve per distinct key" `Quick
      (fun () ->
         Resilience.Inject.disable ();
         let e = engine () in
         let mk = synth_line in
         let responses =
           Engine.handle_batch e
             [ mk "a & b"; mk "a | b"; mk "a & b"; mk "a | b"; mk "a & b" ]
         in
         List.iter (fun r -> check tb "ok" true (is_ok r)) responses;
         let s = Engine.stats e in
         check ti "two solves" 2 s.Engine.solves;
         check ti "three coalesced" 3 s.Engine.coalesced);
  ]

let determinism_tests =
  [
    Alcotest.test_case "jobs=1 and jobs=4 answer byte-identically" `Slow
      (fun () ->
         Resilience.Inject.disable ();
         let lines =
           List.init 12 (fun i ->
               let st = Crossbar.Rng.state 7 ("cache-determinism", i) in
               let v () =
                 [| "a"; "b"; "c"; "d"; "e" |].(Random.State.int st 5)
               in
               let expr =
                 Printf.sprintf "(%s & %s) | (%s ^ ~%s)" (v ()) (v ())
                   (v ()) (v ())
               in
               synth_line ~id:(i + 1) expr)
         in
         let r1 = Engine.handle_batch (engine ~jobs:1 ()) lines in
         let r4 = Engine.handle_batch (engine ~jobs:4 ()) lines in
         check (Alcotest.list ts) "identical response lists" r1 r4);
  ]

let () =
  Alcotest.run "cache"
    [
      "hit-identity", hit_identity_tests;
      "collisions", collision_tests;
      "lru", lru_tests;
      "single-flight", single_flight_tests;
      "determinism", determinism_tests;
    ]
