(* Tests for the domain pool: lifecycle, ordering, exception handling,
   the branch & bound heap, and the bit-identical jobs=1 vs jobs=N
   contract of every parallelised consumer. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let ts = Alcotest.string

exception Boom of int

let pool_tests =
  [
    Alcotest.test_case "create, jobs, shutdown" `Quick (fun () ->
        let pool = Parallel.create ~jobs:4 in
        check ti "jobs" 4 (Parallel.jobs pool);
        Parallel.shutdown pool;
        (* Idempotent. *)
        Parallel.shutdown pool;
        check tb "run after shutdown raises" true
          (match Parallel.run pool [| (fun () -> 1) |] with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "jobs < 1 rejected" `Quick (fun () ->
        check tb "raises" true
          (match Parallel.create ~jobs:0 with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "run merges in submission order" `Quick (fun () ->
        Parallel.with_pool ~jobs:4 (fun pool ->
            let results =
              Parallel.run pool (Array.init 37 (fun i () -> i * i))
            in
            check tb "ordered" true
              (results = Array.init 37 (fun i -> i * i))));
    Alcotest.test_case "empty batch" `Quick (fun () ->
        Parallel.with_pool ~jobs:4 (fun pool ->
            check ti "empty run" 0 (Array.length (Parallel.run pool [||]));
            check ti "empty map" 0
              (List.length (Parallel.map pool (fun x -> x) []))));
    Alcotest.test_case "earliest exception wins, pool survives" `Quick
      (fun () ->
         Parallel.with_pool ~jobs:4 (fun pool ->
             let tasks =
               Array.init 8 (fun i () ->
                   if i = 3 || i = 5 then raise (Boom i) else i)
             in
             check tb "earliest failure re-raised" true
               (match Parallel.run pool tasks with
                | exception Boom 3 -> true
                | exception Boom _ -> false
                | _ -> false);
             (* The pool stays usable after a failed batch. *)
             let again = Parallel.run pool (Array.init 5 (fun i () -> i + 1)) in
             check tb "usable after failure" true
               (again = [| 1; 2; 3; 4; 5 |])));
    Alcotest.test_case "map preserves order, with and without chunking"
      `Quick (fun () ->
          let xs = List.init 17 (fun i -> i) in
          let expect = List.map (fun x -> (3 * x) + 1 ) xs in
          Parallel.with_pool ~jobs:4 (fun pool ->
              check tb "chunk 1" true
                (Parallel.map pool (fun x -> (3 * x) + 1) xs = expect);
              check tb "chunk 3" true
                (Parallel.map ~chunk:3 pool (fun x -> (3 * x) + 1) xs = expect);
              check tb "chunk > length" true
                (Parallel.map ~chunk:64 pool (fun x -> (3 * x) + 1) xs = expect)));
    Alcotest.test_case "map_array round-trips" `Quick (fun () ->
        Parallel.with_pool ~jobs:3 (fun pool ->
            let xs = Array.init 23 (fun i -> i) in
            check tb "equal" true
              (Parallel.map_array ~chunk:4 pool (fun x -> x * 2) xs
               = Array.map (fun x -> x * 2) xs)));
    Alcotest.test_case "map_reduce matches a sequential fold" `Quick
      (fun () ->
         let xs = List.init 41 (fun i -> i + 1) in
         let expect =
           List.fold_left (fun acc x -> acc + (x * x)) 0 xs
         in
         Parallel.with_pool ~jobs:4 (fun pool ->
             check ti "sum of squares" expect
               (Parallel.map_reduce ~chunk:5 pool
                  ~map:(fun x -> x * x)
                  ~reduce:( + ) ~init:0 xs));
         Parallel.with_pool ~jobs:1 (fun pool ->
             check ti "jobs=1" expect
               (Parallel.map_reduce pool
                  ~map:(fun x -> x * x)
                  ~reduce:( + ) ~init:0 xs)));
  ]

(* --- First-acceptable racing --------------------------------------- *)

let show_outcome = function
  | Parallel.Finished v -> "F" ^ string_of_int v
  | Parallel.Cut -> "C"
  | Parallel.Failed _ -> "E"

let show_outcomes a = String.concat "," (Array.to_list (Array.map show_outcome a))

let race_at ~jobs ?groups thunks ~acceptable =
  Parallel.with_pool ~jobs (fun pool ->
      Parallel.race ?groups pool thunks ~acceptable)

let race_tests =
  [
    Alcotest.test_case "first acceptable entrant wins at jobs=1 and 4"
      `Quick (fun () ->
        let thunks = Array.map (fun v _rb -> v) [| 1; 3; 4; 5 |] in
        let acceptable v = v mod 2 = 0 in
        let expect = "F1,F3,F4,C" in
        check ts "jobs=1" expect
          (show_outcomes (race_at ~jobs:1 thunks ~acceptable));
        check ts "jobs=4" expect
          (show_outcomes (race_at ~jobs:4 thunks ~acceptable)));
    Alcotest.test_case "no acceptable entrant: everything recorded" `Quick
      (fun () ->
        let thunks = Array.map (fun v _rb -> v) [| 1; 3; 5 |] in
        let acceptable _ = false in
        check ts "jobs=1" "F1,F3,F5"
          (show_outcomes (race_at ~jobs:1 thunks ~acceptable));
        check ts "jobs=4" "F1,F3,F5"
          (show_outcomes (race_at ~jobs:4 thunks ~acceptable)));
    Alcotest.test_case "jobs=1 exits early: losers never start" `Quick
      (fun () ->
        let ran = Array.make 4 false in
        let thunks =
          Array.init 4 (fun i _rb ->
              ran.(i) <- true;
              i)
        in
        let out = race_at ~jobs:1 thunks ~acceptable:(fun v -> v >= 1) in
        check ts "outcomes" "F0,F1,C,C" (show_outcomes out);
        check tb "2 skipped" true (not ran.(2) && not ran.(3)));
    Alcotest.test_case "deciding group runs completely before deciding"
      `Quick (fun () ->
        let thunks = Array.map (fun v _rb -> v) [| 2; 4; 6 |] in
        let groups = [| 0; 0; 1 |] in
        let acceptable v = v mod 2 = 0 in
        check ts "jobs=1" "F2,F4,C"
          (show_outcomes (race_at ~jobs:1 ~groups thunks ~acceptable));
        check ts "jobs=4" "F2,F4,C"
          (show_outcomes (race_at ~jobs:4 ~groups thunks ~acceptable)));
    Alcotest.test_case "failed entrant lands as Failed, race unharmed"
      `Quick (fun () ->
        let thunks =
          [| (fun _rb -> raise (Boom 0)); (fun _rb -> 2); (fun _rb -> 3) |]
        in
        let acceptable v = v = 2 in
        let groups = [| 0; 0; 1 |] in
        check ts "jobs=1" "E,F2,C"
          (show_outcomes (race_at ~jobs:1 ~groups thunks ~acceptable));
        Parallel.with_pool ~jobs:4 (fun pool ->
            check ts "jobs=4" "E,F2,C"
              (show_outcomes (Parallel.race ~groups pool thunks ~acceptable));
            (* the pool survives a failing entrant *)
            check tb "usable after race" true
              (Parallel.run pool (Array.init 5 (fun i () -> i))
               = [| 0; 1; 2; 3; 4 |])));
    Alcotest.test_case "winner's cancel latch releases a spinning loser"
      `Quick (fun () ->
        (* The loser spins until the race budget trips — only the
           winner's latch can end it, so termination proves the cancel
           protocol (the test would hang otherwise). *)
        let thunks =
          [|
            (fun _rb -> 1);
            (fun rb ->
               while Resilience.Budget.state rb = None do
                 Domain.cpu_relax ()
               done;
               99);
          |]
        in
        let out = race_at ~jobs:4 thunks ~acceptable:(fun v -> v = 1) in
        check ts "loser cut" "F1,C" (show_outcomes out));
    Alcotest.test_case "bad groups rejected" `Quick (fun () ->
        Parallel.with_pool ~jobs:2 (fun pool ->
            let thunks = Array.map (fun v _rb -> v) [| 1; 2 |] in
            check tb "length mismatch" true
              (match
                 Parallel.race ~groups:[| 0 |] pool thunks
                   ~acceptable:(fun _ -> true)
               with
               | exception Invalid_argument _ -> true
               | _ -> false);
            check tb "decreasing" true
              (match
                 Parallel.race ~groups:[| 1; 0 |] pool thunks
                   ~acceptable:(fun _ -> true)
               with
               | exception Invalid_argument _ -> true
               | _ -> false)));
  ]

let heap_tests =
  [
    Alcotest.test_case "push/pop yields keys in order" `Quick (fun () ->
        let h = Milp.Branch_bound.Heap.create () in
        check tb "empty" true (Milp.Branch_bound.Heap.is_empty h);
        let keys = [ 5.; 1.; 4.; 1.; 3.; 9.; 2.; 6. ] in
        List.iter (fun k -> Milp.Branch_bound.Heap.push h k k) keys;
        check ti "length" (List.length keys) (Milp.Branch_bound.Heap.length h);
        check (Alcotest.float 0.) "peek is min" 1.
          (Milp.Branch_bound.Heap.peek_key h);
        let popped =
          List.map
            (fun _ -> Milp.Branch_bound.Heap.pop h)
            keys
        in
        check tb "sorted" true (popped = List.sort compare keys);
        check tb "drained" true (Milp.Branch_bound.Heap.is_empty h);
        check tb "pop on empty raises" true
          (match Milp.Branch_bound.Heap.pop h with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "growth past the initial 64 slots" `Quick (fun () ->
        let h = Milp.Branch_bound.Heap.create () in
        let n = 200 in
        (* A deliberately shuffled key sequence. *)
        for i = 0 to n - 1 do
          let k = float_of_int (i * 37 mod 101) +. (float_of_int i /. 1000.) in
          Milp.Branch_bound.Heap.push h k (i, k)
        done;
        check ti "length" n (Milp.Branch_bound.Heap.length h);
        let prev = ref neg_infinity in
        for _ = 1 to n do
          let _, k = Milp.Branch_bound.Heap.pop h in
          check tb "nondecreasing" true (k >= !prev);
          prev := k
        done;
        check tb "drained" true (Milp.Branch_bound.Heap.is_empty h));
  ]

(* --- Determinism across jobs counts -------------------------------- *)

(* Fig 2 crossbar for f = (a & b) | c (same fixture as test_variation). *)
let fig2_design () =
  let d =
    Crossbar.Design.create ~rows:3 ~cols:2 ~input:(Crossbar.Design.Row 2)
      ~outputs:[ "f", Crossbar.Design.Row 0 ]
  in
  Crossbar.Design.set d ~row:0 ~col:0 (Crossbar.Literal.Neg "a");
  Crossbar.Design.set d ~row:0 ~col:1 (Crossbar.Literal.Pos "a");
  Crossbar.Design.set d ~row:1 ~col:0 (Crossbar.Literal.Neg "b");
  Crossbar.Design.set d ~row:1 ~col:1 Crossbar.Literal.On;
  Crossbar.Design.set d ~row:2 ~col:0 (Crossbar.Literal.Pos "c");
  Crossbar.Design.set d ~row:2 ~col:1 (Crossbar.Literal.Pos "b");
  d

let fig2_inputs = [ "a"; "b"; "c" ]
let fig2_reference point = [| (point.(0) && point.(1)) || point.(2) |]

let harden_example () =
  Logic.Netlist.create ~name:"harden_ex" ~inputs:[ "a"; "b"; "c"; "d" ]
    ~outputs:[ "f"; "g" ]
    [ Logic.Netlist.n_expr "f" (Logic.Parse.expr "(a & b) | (c & d)");
      Logic.Netlist.n_expr "g" (Logic.Parse.expr "(a | c) & (b | d)") ]

let harden_spec =
  Crossbar.Variation.with_wire ~row:25. ~col:25. Crossbar.Variation.default_spec

let determinism_tests =
  [
    Alcotest.test_case "monte carlo JSON is jobs-independent" `Quick
      (fun () ->
         let run jobs =
           Crossbar.Margin.monte_carlo ~seed:3 ~max_trials:40 ~min_trials:40
             ~jobs ~spec:Crossbar.Variation.default_spec (fig2_design ())
             ~inputs:fig2_inputs ~reference:fig2_reference ~outputs:[ "f" ]
         in
         check ts "jobs=1 vs jobs=4"
           (Crossbar.Margin.json_of_mc (run 1))
           (Crossbar.Margin.json_of_mc (run 4));
         check ts "jobs=1 vs jobs=3"
           (Crossbar.Margin.json_of_mc (run 1))
           (Crossbar.Margin.json_of_mc (run 3)));
    Alcotest.test_case "early stopping is jobs-independent" `Quick (fun () ->
        (* The stop decision is chunk-granular for every jobs count, so
           the trial count and the JSON agree even when the sampler
           stops well before max_trials. *)
        let run jobs =
          Crossbar.Margin.monte_carlo ~max_trials:500 ~min_trials:16
            ~ci_halfwidth:0.2 ~jobs ~spec:Crossbar.Variation.nominal
            (fig2_design ()) ~inputs:fig2_inputs ~reference:fig2_reference
            ~outputs:[ "f" ]
        in
        let a = run 1 and b = run 4 in
        check tb "stopped early" true a.mc_stopped_early;
        check ti "same trial count" a.mc_trials b.mc_trials;
        check ts "same json"
          (Crossbar.Margin.json_of_mc a) (Crossbar.Margin.json_of_mc b));
    Alcotest.test_case "harden ranking is jobs-independent" `Quick (fun () ->
        let run jobs =
          let hopts =
            { Compact.Pipeline.default_harden_options with
              spec = harden_spec;
              mc_trials = 16;
              jobs }
          in
          Compact.Pipeline.harden ~hopts (harden_example ())
        in
        let a = run 1 and b = run 4 in
        check ts "same choice" a.chosen.cand_label b.chosen.cand_label;
        check (Alcotest.float 0.) "same margin" a.chosen.cand_worst
          b.chosen.cand_worst;
        check tb "same ranking" true
          (List.map
             (fun (c : Compact.Pipeline.candidate) ->
                c.cand_label, c.cand_worst)
             a.candidates
           = List.map
               (fun (c : Compact.Pipeline.candidate) ->
                  c.cand_label, c.cand_worst)
               b.candidates);
        match a.mc, b.mc with
        | Some ma, Some mb ->
          check ts "same mc json"
            (Crossbar.Margin.json_of_mc ma) (Crossbar.Margin.json_of_mc mb)
        | _ -> Alcotest.fail "mc expected");
    Alcotest.test_case "branch & bound certificate is jobs-independent"
      `Quick (fun () ->
          (* max 5a + 4b + 3c  st  2a + 3b + c <= 5, binaries -> 9. *)
          let knapsack () =
            let p = Lp.Problem.create () in
            let a = Lp.Problem.add_binary p "a" in
            let b = Lp.Problem.add_binary p "b" in
            let c = Lp.Problem.add_binary p "c" in
            Lp.Problem.add_constraint p
              [ (2., a); (3., b); (1., c) ] Lp.Simplex.Le 5.;
            Lp.Problem.set_objective p ~sense:`Maximize
              [ (5., a); (4., b); (3., c) ];
            p
          in
          let run jobs = Milp.Branch_bound.solve ~jobs (knapsack ()) in
          let a = run 1 and b = run 4 in
          check tb "optimal at jobs=1" true
            (a.status = Milp.Branch_bound.Optimal);
          check tb "optimal at jobs=4" true
            (b.status = Milp.Branch_bound.Optimal);
          check (Alcotest.float 1e-9) "objective" 9. (Option.get b.objective);
          check ts "same certificate"
            (Milp.Branch_bound.json_of_certificate a)
            (Milp.Branch_bound.json_of_certificate b));
  ]

let () =
  Alcotest.run "parallel"
    [
      "pool", pool_tests;
      "race", race_tests;
      "heap", heap_tests;
      "determinism", determinism_tests;
    ]
