(* The semiperimeter / maximum-dimension trade-off (§VI-B, Fig 9).

   Sweeps the objective weight gamma on the int2float benchmark and prints
   each design's (rows, cols). gamma = 1 minimises the semiperimeter S
   alone; gamma = 0 minimises the maximum dimension D alone; intermediate
   values often buy a smaller D for a slightly longer S — the paper's Fig 7
   "add VH nodes to re-balance" effect.

     dune exec examples/gamma_tradeoff.exe *)

let () =
  let entry = Circuits.Suite.find "int2float" in
  let netlist = entry.generate () in
  Format.printf "circuit: %s (%s)@.@." entry.name entry.description;
  (* Pick the best static variable order first: the smaller graph lets the
     exact MIP labeler run instead of the heuristic. *)
  let order, _ = Bdd.Sbdd.best_order netlist in
  let points = ref [] in
  List.iter
    (fun gamma ->
       let options =
         {
           Compact.Pipeline.default_options with
           gamma;
           time_limit = 5.;
           order = Some order;
         }
       in
       let r = Compact.Pipeline.synthesize ~options netlist in
       points := (gamma, r.report) :: !points;
       Format.printf
         "gamma=%.2f: %3d x %3d   S=%3d  D=%3d  (#VH=%d, %s)@." gamma
         r.report.rows r.report.cols r.report.semiperimeter
         r.report.max_dimension r.report.vh_count r.report.method_name)
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  (* Non-dominated designs, as in the paper's Fig 9. *)
  let dominated (r1, c1) =
    List.exists
      (fun (_, (rep : Compact.Report.t)) ->
         (rep.rows <= r1 && rep.cols < c1) || (rep.rows < r1 && rep.cols <= c1))
      !points
  in
  Format.printf "@.non-dominated (rows, cols) designs:@.";
  List.iter
    (fun (r, c) -> Format.printf "  (%d, %d)@." r c)
    (List.sort_uniq compare
       (List.filter_map
          (fun (_, (rep : Compact.Report.t)) ->
             if dominated (rep.rows, rep.cols) then None
             else Some (rep.rows, rep.cols))
          !points))
