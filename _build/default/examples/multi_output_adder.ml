(* Multi-output synthesis: a 4-bit ripple-carry adder.

   Demonstrates the paper's §VII comparison: synthesising each output as
   its own ROBDD + crossbar (prior-work style, diagonal merge) versus one
   shared SBDD crossbar, with the alignment constraints placing all five
   sum outputs on wordlines. Both designs are exhaustively verified.

     dune exec examples/multi_output_adder.exe *)

let () =
  let adder = Circuits.Arith.ripple_adder ~bits:4 () in
  Format.printf "circuit: %a@.@." Logic.Netlist.pp_stats adder;
  let reference = Logic.Netlist.to_truth_table adder in

  (* Shared SBDD (the COMPACT default). *)
  let sbdd_result = Compact.Pipeline.synthesize adder in
  Format.printf "single shared SBDD:@.%a@.@." Compact.Report.pp
    sbdd_result.report;

  (* One ROBDD and crossbar per output, merged along the diagonal. *)
  let per_output, merged = Compact.Pipeline.synthesize_separate_robdds adder in
  Format.printf "multiple ROBDDs (%d blocks), merged design: %d x %d (S=%d)@.@."
    (List.length per_output)
    (Crossbar.Design.rows merged) (Crossbar.Design.cols merged)
    (Crossbar.Design.semiperimeter merged);

  let check name design =
    match Crossbar.Verify.against_table design ~reference with
    | Crossbar.Verify.Ok -> Format.printf "%s: exhaustive verification PASS@." name
    | Crossbar.Verify.Failed cex ->
      Format.printf "%s: FAIL (%a)@." name Crossbar.Verify.pp_counterexample cex
  in
  check "SBDD design" sbdd_result.design;
  check "merged ROBDD design" merged;

  let s_sbdd = Crossbar.Design.semiperimeter sbdd_result.design in
  let s_robdd = Crossbar.Design.semiperimeter merged in
  Format.printf
    "@.sharing pays off: semiperimeter %d (SBDD) vs %d (separate ROBDDs), %.0f%% smaller@."
    s_sbdd s_robdd
    (100. *. (1. -. (float_of_int s_sbdd /. float_of_int s_robdd)))
