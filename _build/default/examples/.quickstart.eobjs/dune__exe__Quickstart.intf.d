examples/quickstart.mli:
