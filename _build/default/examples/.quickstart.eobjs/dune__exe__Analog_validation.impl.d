examples/analog_validation.ml: Circuits Compact Crossbar Format List Logic String
