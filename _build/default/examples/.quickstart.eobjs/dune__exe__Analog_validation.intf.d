examples/analog_validation.mli:
