examples/gamma_tradeoff.mli:
