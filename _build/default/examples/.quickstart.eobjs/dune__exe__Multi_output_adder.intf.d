examples/multi_output_adder.mli:
