examples/quickstart.ml: Compact Crossbar Format List Logic
