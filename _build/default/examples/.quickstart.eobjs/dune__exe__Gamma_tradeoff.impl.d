examples/gamma_tradeoff.ml: Bdd Circuits Compact Format List
