examples/fault_injection.ml: Circuits Compact Crossbar Format List Logic
