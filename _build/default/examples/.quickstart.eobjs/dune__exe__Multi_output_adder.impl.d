examples/multi_output_adder.ml: Circuits Compact Crossbar Format List Logic
