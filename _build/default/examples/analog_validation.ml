(* Electrical validation with the resistive-network solver (SPICE-lite).

   Synthesises a crossbar for an 8-bit priority encoder, solves the real
   resistive network (memristors at every junction, sensing resistors on
   the output wordlines) for a few assignments, and prints the output
   voltages next to the digital sneak-path evaluation. High outputs sit
   orders of magnitude above the leakage floor — the margin that makes
   flow-based read-out work.

     dune exec examples/analog_validation.exe *)

let () =
  let netlist =
    Logic.Netlist.rename ~prefix:""
      (Circuits.Control.priority_encoder ~width:8 ())
  in
  let result = Compact.Pipeline.synthesize netlist in
  Format.printf "%a@.@." Compact.Report.pp result.report;
  let params = Crossbar.Analog.default_params in
  Format.printf
    "device model: Ron=%.0f ohm, Roff=%.0e ohm, Rsense=%.0e ohm, Vin=%.1f V, threshold=%.2f V@.@."
    params.r_on params.r_off params.r_sense params.v_in
    (params.threshold *. params.v_in);
  let assignments =
    [ "no request", (fun _ -> false);
      "r0 only", (fun v -> v = "r0");
      "r5 only", (fun v -> v = "r5");
      "r3 and r6", (fun v -> v = "r3" || v = "r6");
      "all requests", (fun _ -> true) ]
  in
  List.iter
    (fun (label, env) ->
       let analog = Crossbar.Analog.read_outputs ~params result.design env in
       let digital = Crossbar.Eval.evaluate result.design env in
       Format.printf "%s:@." label;
       List.iter2
         (fun (o, logic, volts) (o', dig) ->
            assert (String.equal o o');
            Format.printf "  %-6s analog=%8.5f V -> %b   digital=%b %s@." o
              volts logic dig
              (if logic = dig then "" else "  << disagreement"))
         analog digital)
    assignments;
  Format.printf "@.sampled agreement on random assignments: %b@."
    (Crossbar.Analog.agrees_with_digital ~trials:24 result.design)
