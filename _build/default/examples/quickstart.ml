(* Quickstart: the paper's running example (Fig 2).

   Synthesises a crossbar for f = (a ∧ b) ∨ c, prints the intermediate
   BDD-graph statistics and the final crossbar, then evaluates it on every
   assignment — the full initialisation + evaluation flow of flow-based
   computing.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Specify the Boolean function. *)
  let f = Logic.Parse.expr "(a & b) | c" in
  Format.printf "function: f = %a@." Logic.Expr.pp f;

  (* 2. Synthesise: expression -> ROBDD -> VH-labeling -> crossbar. *)
  let result = Compact.Pipeline.synthesize_expr ~name:"quickstart" f in
  Format.printf "@.%a@.@." Compact.Report.pp result.report;

  (* 3. Inspect the design: rows are wordlines, columns bitlines; "1" is a
     hardwired VH fuse, "!a" programs the negated literal. *)
  Format.printf "crossbar (IN = input wordline, f = output wordline):@.%a@.@."
    Crossbar.Design.pp result.design;

  (* 4. Evaluation phase: program the memristors from an assignment and
     check whether a conducting sneak path reaches the output. *)
  Format.printf "evaluation of all assignments:@.";
  List.iter
    (fun (a, b, c) ->
       let env v =
         match v with
         | "a" -> a
         | "b" -> b
         | "c" -> c
         | _ -> assert false
       in
       let value = List.assoc "quickstart_out" (Crossbar.Eval.evaluate result.design env) in
       let expected = Logic.Expr.eval env f in
       Format.printf "  a=%b b=%b c=%b  ->  crossbar=%b expected=%b %s@." a b
         c value expected
         (if value = expected then "ok" else "MISMATCH"))
    [ false, false, false; true, false, false; false, true, false;
      true, true, false; false, false, true; true, true, true ];

  (* 5. Electrical cross-check with the resistive-network solver. *)
  let agree = Crossbar.Analog.agrees_with_digital ~trials:16 result.design in
  Format.printf "@.analog nodal-analysis agrees with digital evaluation: %b@."
    agree
