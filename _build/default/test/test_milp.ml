(* Tests for the branch & bound MIP solver. *)

let check = Alcotest.check
let tb = Alcotest.bool
let tf = Alcotest.float 1e-6

let qcheck_case ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let knapsack () =
  (* max 5a + 4b + 3c  st  2a + 3b + c <= 5, binaries -> a=b=1: 9 *)
  let p = Lp.Problem.create () in
  let a = Lp.Problem.add_binary p "a" in
  let b = Lp.Problem.add_binary p "b" in
  let c = Lp.Problem.add_binary p "c" in
  Lp.Problem.add_constraint p [ (2., a); (3., b); (1., c) ] Lp.Simplex.Le 5.;
  Lp.Problem.set_objective p ~sense:`Maximize [ (5., a); (4., b); (3., c) ];
  p

let milp_tests =
  [
    Alcotest.test_case "knapsack optimum" `Quick (fun () ->
        let r = Milp.Branch_bound.solve (knapsack ()) in
        check tb "optimal" true (r.status = Milp.Branch_bound.Optimal);
        check tf "objective" 9. (Option.get r.objective);
        check tf "gap" 0. r.gap);
    Alcotest.test_case "solution is integral" `Quick (fun () ->
        let p = knapsack () in
        let r = Milp.Branch_bound.solve p in
        let sol = Option.get r.solution in
        List.iter
          (fun (v : Lp.Problem.var) ->
             let x = sol.((v :> int)) in
             check tb "integral" true (abs_float (x -. Float.round x) < 1e-6))
          (Lp.Problem.integer_vars p));
    Alcotest.test_case "minimisation with integers" `Quick (fun () ->
        (* min x + y st x + y >= 1.5, binaries -> 2. *)
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_binary p "x" in
        let y = Lp.Problem.add_binary p "y" in
        Lp.Problem.add_constraint p [ (1., x); (1., y) ] Lp.Simplex.Ge 1.5;
        Lp.Problem.set_objective p ~sense:`Minimize [ (1., x); (1., y) ];
        let r = Milp.Branch_bound.solve p in
        check tf "objective" 2. (Option.get r.objective));
    Alcotest.test_case "infeasible" `Quick (fun () ->
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_binary p "x" in
        Lp.Problem.add_constraint p [ (1., x) ] Lp.Simplex.Ge 2.;
        Lp.Problem.set_objective p ~sense:`Minimize [ (1., x) ];
        let r = Milp.Branch_bound.solve p in
        check tb "infeasible" true (r.status = Milp.Branch_bound.Infeasible));
    Alcotest.test_case "general integer variable" `Quick (fun () ->
        (* max x st 2x <= 7, x integer -> 3 *)
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_var ~ub:10. ~integer:true p "x" in
        Lp.Problem.add_constraint p [ (2., x) ] Lp.Simplex.Le 7.;
        Lp.Problem.set_objective p ~sense:`Maximize [ (1., x) ];
        let r = Milp.Branch_bound.solve p in
        check tf "objective" 3. (Option.get r.objective));
    Alcotest.test_case "warm start prunes to the same optimum" `Quick
      (fun () ->
         let p = knapsack () in
         let point = [| 1.; 1.; 0. |] in
         let r = Milp.Branch_bound.solve ~initial:(point, 9.) p in
         check tf "objective" 9. (Option.get r.objective);
         check tb "optimal" true (r.status = Milp.Branch_bound.Optimal));
    Alcotest.test_case "node limit yields a bound and gap" `Quick (fun () ->
        let p = knapsack () in
        let r = Milp.Branch_bound.solve ~node_limit:1 ~initial:([| 0.; 0.; 0. |], 0.) p in
        check tb "not closed" true (r.status <> Milp.Branch_bound.Infeasible);
        check tb "gap in [0,1]" true (r.gap >= 0. && r.gap <= 1.));
    Alcotest.test_case "trace is chronological with shrinking gap" `Quick
      (fun () ->
         let r = Milp.Branch_bound.solve (knapsack ()) in
         let times = List.map (fun t -> t.Milp.Branch_bound.t_elapsed) r.trace in
         check tb "sorted" true (List.sort compare times = times);
         match List.rev r.trace with
         | last :: _ -> check tf "final gap" 0. last.t_gap
         | [] -> Alcotest.fail "empty trace");
    Alcotest.test_case "relative gap definition" `Quick (fun () ->
        check tf "no incumbent" 1.
          (Milp.Branch_bound.relative_gap ~incumbent:None ~bound:5.);
        check tf "closed" 0.
          (Milp.Branch_bound.relative_gap ~incumbent:(Some 10.) ~bound:10.);
        check tf "half" 0.5
          (Milp.Branch_bound.relative_gap ~incumbent:(Some 10.) ~bound:5.));
  ]

(* Random 0-1 MIPs compared against brute force. *)
let milp_gen =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let* m = int_range 1 3 in
    let coeff = map (fun k -> float_of_int (k - 3)) (int_bound 6) in
    let* rows = list_repeat m (list_repeat n coeff) in
    let* rhs = list_repeat m (map (fun k -> float_of_int k -. 1.) (int_bound 5)) in
    let* c = list_repeat n coeff in
    let* maximize = bool in
    return (n, rows, rhs, c, maximize))

let build (n, rows, rhs, c, maximize) =
  let p = Lp.Problem.create () in
  let vars =
    Array.init n (fun i -> Lp.Problem.add_binary p (Printf.sprintf "b%d" i))
  in
  List.iteri
    (fun i row ->
       let terms = List.mapi (fun j v -> v, vars.(j)) row in
       Lp.Problem.add_constraint p terms Lp.Simplex.Le (List.nth rhs i))
    rows;
  Lp.Problem.set_objective p
    ~sense:(if maximize then `Maximize else `Minimize)
    (List.mapi (fun j v -> v, vars.(j)) c);
  p

let brute (n, rows, rhs, c, maximize) =
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> if mask land (1 lsl j) <> 0 then 1. else 0.) in
    let feasible =
      List.for_all2
        (fun row bound ->
           let lhs = List.fold_left ( +. ) 0. (List.mapi (fun j v -> v *. x.(j)) row) in
           lhs <= bound +. 1e-9)
        rows rhs
    in
    if feasible then begin
      let obj = List.fold_left ( +. ) 0. (List.mapi (fun j v -> v *. x.(j)) c) in
      match !best with
      | None -> best := Some obj
      | Some b ->
        if (maximize && obj > b) || ((not maximize) && obj < b) then
          best := Some obj
    end
  done;
  !best

let milp_property_tests =
  [
    qcheck_case "matches brute force on random 0-1 programs" ~count:150
      milp_gen
      (fun spec ->
         let p = build spec in
         let r = Milp.Branch_bound.solve p in
         match brute spec, r.objective with
         | None, None -> r.status = Milp.Branch_bound.Infeasible
         | Some expected, Some got -> abs_float (expected -. got) < 1e-6
         | None, Some _ | Some _, None -> false);
    qcheck_case "bound is valid" ~count:150 milp_gen (fun spec ->
        let (_, _, _, _, maximize) = spec in
        let p = build spec in
        let r = Milp.Branch_bound.solve p in
        match r.objective with
        | None -> true
        | Some obj ->
          if maximize then r.bound >= obj -. 1e-6 else r.bound <= obj +. 1e-6);
  ]

let () =
  Alcotest.run "milp"
    [ "branch_bound", milp_tests; "properties", milp_property_tests ]
