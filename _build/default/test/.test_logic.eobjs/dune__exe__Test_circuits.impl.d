test/test_circuits.ml: Alcotest Array Bdd Circuits Lazy List Logic Printf QCheck2 QCheck_alcotest
