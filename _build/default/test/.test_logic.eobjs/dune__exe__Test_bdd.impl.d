test/test_bdd.ml: Alcotest Array Bdd Circuits Lazy List Logic Printf QCheck2 QCheck_alcotest String
