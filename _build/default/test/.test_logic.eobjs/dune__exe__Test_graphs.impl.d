test/test_graphs.ml: Alcotest Array Graphs Hashtbl List QCheck2 QCheck_alcotest
