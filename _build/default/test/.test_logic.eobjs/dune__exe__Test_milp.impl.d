test/test_milp.ml: Alcotest Array Float List Lp Milp Option Printf QCheck2 QCheck_alcotest
