test/test_compact.ml: Alcotest Array Baseline Bdd Circuits Compact Crossbar Graphs Lazy List Logic QCheck2 QCheck_alcotest Stdlib
