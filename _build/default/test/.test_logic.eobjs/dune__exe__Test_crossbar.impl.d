test/test_crossbar.ml: Alcotest Array Compact Crossbar Lazy List Logic QCheck2 QCheck_alcotest
