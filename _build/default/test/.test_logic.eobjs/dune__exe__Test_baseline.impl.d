test/test_baseline.ml: Alcotest Array Baseline Circuits Compact Crossbar List Logic Printf QCheck2 QCheck_alcotest String
