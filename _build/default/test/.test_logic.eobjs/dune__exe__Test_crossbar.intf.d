test/test_crossbar.mli:
