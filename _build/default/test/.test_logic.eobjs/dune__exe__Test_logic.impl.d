test/test_logic.ml: Alcotest Array Filename Fun List Logic Printf QCheck2 QCheck_alcotest Sys
