test/test_harness.ml: Alcotest Bdd Circuits Harness List String
