(* Tests for the dense two-phase simplex and the LP model builder. *)

let check = Alcotest.check
let tb = Alcotest.bool
let tf = Alcotest.float 1e-6

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let solve_min ~a ~rel ~b ~c = Lp.Simplex.minimize ~a ~rel ~b ~c
let solve_max ~a ~rel ~b ~c = Lp.Simplex.maximize ~a ~rel ~b ~c

let expect_optimal = function
  | Lp.Simplex.Optimal { objective; solution } -> objective, solution
  | Lp.Simplex.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected: unbounded"

let simplex_tests =
  [
    Alcotest.test_case "textbook maximum" `Quick (fun () ->
        (* max 3x + 2y st x+y<=4, x+3y<=6 -> (4, 0), 12 *)
        let obj, sol =
          expect_optimal
            (solve_max
               ~a:[| [| 1.; 1. |]; [| 1.; 3. |] |]
               ~rel:[| Lp.Simplex.Le; Lp.Simplex.Le |]
               ~b:[| 4.; 6. |] ~c:[| 3.; 2. |])
        in
        check tf "obj" 12. obj;
        check tf "x" 4. sol.(0);
        check tf "y" 0. sol.(1));
    Alcotest.test_case "equality and >= constraints" `Quick (fun () ->
        (* min x+y st x+y>=2, x-y=1 -> (1.5, 0.5) *)
        let obj, sol =
          expect_optimal
            (solve_min
               ~a:[| [| 1.; 1. |]; [| 1.; -1. |] |]
               ~rel:[| Lp.Simplex.Ge; Lp.Simplex.Eq |]
               ~b:[| 2.; 1. |] ~c:[| 1.; 1. |])
        in
        check tf "obj" 2. obj;
        check tf "x" 1.5 sol.(0);
        check tf "y" 0.5 sol.(1));
    Alcotest.test_case "negative rhs normalisation" `Quick (fun () ->
        (* min x st -x <= -3  (i.e. x >= 3) *)
        let obj, _ =
          expect_optimal
            (solve_min ~a:[| [| -1. |] |] ~rel:[| Lp.Simplex.Le |]
               ~b:[| -3. |] ~c:[| 1. |])
        in
        check tf "obj" 3. obj);
    Alcotest.test_case "infeasible detected" `Quick (fun () ->
        check tb "infeasible" true
          (solve_min
             ~a:[| [| 1. |]; [| 1. |] |]
             ~rel:[| Lp.Simplex.Le; Lp.Simplex.Ge |]
             ~b:[| 1.; 2. |] ~c:[| 1. |]
           = Lp.Simplex.Infeasible));
    Alcotest.test_case "unbounded detected" `Quick (fun () ->
        check tb "unbounded" true
          (solve_max ~a:[||] ~rel:[||] ~b:[||] ~c:[| 1. |]
           = Lp.Simplex.Unbounded));
    Alcotest.test_case "degenerate LP terminates (Bland)" `Quick (fun () ->
        (* Classic Beale cycling example; Bland's rule must terminate. *)
        let a =
          [|
            [| 0.25; -8.; -1.; 9. |];
            [| 0.5; -12.; -0.5; 3. |];
            [| 0.; 0.; 1.; 0. |];
          |]
        in
        let obj, _ =
          expect_optimal
            (solve_min ~a
               ~rel:[| Lp.Simplex.Le; Lp.Simplex.Le; Lp.Simplex.Le |]
               ~b:[| 0.; 0.; 1. |]
               ~c:[| -0.75; 150.; -0.02; 6. |])
        in
        check tf "obj" (-0.77) obj);
    Alcotest.test_case "redundant equality rows" `Quick (fun () ->
        (* x = 1 stated twice. *)
        let obj, _ =
          expect_optimal
            (solve_min
               ~a:[| [| 1. |]; [| 1. |] |]
               ~rel:[| Lp.Simplex.Eq; Lp.Simplex.Eq |]
               ~b:[| 1.; 1. |] ~c:[| 1. |])
        in
        check tf "obj" 1. obj);
    Alcotest.test_case "dimension mismatch rejected" `Quick (fun () ->
        check tb "raises" true
          (match
             solve_min ~a:[| [| 1. |] |] ~rel:[||] ~b:[| 1. |] ~c:[| 1. |]
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* Random LPs: minimise a random cost over { x in [0,1]^n : random ≤ cuts }.
   The box keeps everything bounded; feasibility of x = 0 is ensured by
   using non-negative rhs. *)
let lp_gen =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let* m = int_range 1 4 in
    let coeff = map (fun k -> float_of_int (k - 3)) (int_bound 6) in
    let* rows = list_repeat m (list_repeat n coeff) in
    let* rhs = list_repeat m (map float_of_int (int_bound 5)) in
    let* c = list_repeat n coeff in
    return (n, rows, rhs, c))

let build_lp (n, rows, rhs, c) =
  let m = List.length rows in
  let a = Array.make_matrix (m + 2 * n) n 0. in
  let rel = Array.make (m + 2 * n) Lp.Simplex.Le in
  let b = Array.make (m + 2 * n) 0. in
  List.iteri
    (fun i row ->
       List.iteri (fun j v -> a.(i).(j) <- v) row;
       b.(i) <- List.nth rhs i)
    rows;
  (* box: x_j <= 1 (lower bound 0 is implicit) *)
  for j = 0 to n - 1 do
    a.(m + j).(j) <- 1.;
    b.(m + j) <- 1.
  done;
  (* filler rows x_j <= 1 again to keep shape simple *)
  for j = 0 to n - 1 do
    a.(m + n + j).(j) <- 1.;
    b.(m + n + j) <- 1.
  done;
  a, rel, b, Array.of_list c

let feasible (a, rel, b) x =
  let m = Array.length b in
  let ok = ref true in
  for i = 0 to m - 1 do
    let lhs = ref 0. in
    Array.iteri (fun j v -> lhs := !lhs +. (v *. x.(j))) a.(i);
    (match rel.(i) with
     | Lp.Simplex.Le -> if !lhs > b.(i) +. 1e-6 then ok := false
     | Lp.Simplex.Ge -> if !lhs < b.(i) -. 1e-6 then ok := false
     | Lp.Simplex.Eq -> if abs_float (!lhs -. b.(i)) > 1e-6 then ok := false)
  done;
  Array.iter (fun v -> if v < -1e-9 then ok := false) x;
  !ok

let simplex_property_tests =
  [
    qcheck_case "solution is feasible and objective consistent" ~count:200
      lp_gen
      (fun spec ->
         let a, rel, b, c = build_lp spec in
         match Lp.Simplex.minimize ~a ~rel ~b ~c with
         | Lp.Simplex.Unbounded -> false (* box-bounded: impossible *)
         | Lp.Simplex.Infeasible ->
           (* x = 0 is feasible whenever all rhs are >= 0, which holds by
              construction. *)
           not (feasible (a, rel, b) (Array.make (Array.length c) 0.))
         | Lp.Simplex.Optimal { objective; solution } ->
           feasible (a, rel, b) solution
           &&
           let recomputed = ref 0. in
           Array.iteri
             (fun j v -> recomputed := !recomputed +. (v *. solution.(j)))
             c;
           abs_float (!recomputed -. objective) < 1e-6);
    qcheck_case "no sampled corner beats the optimum" ~count:200 lp_gen
      (fun spec ->
         let a, rel, b, c = build_lp spec in
         match Lp.Simplex.minimize ~a ~rel ~b ~c with
         | Lp.Simplex.Unbounded | Lp.Simplex.Infeasible -> true
         | Lp.Simplex.Optimal { objective; _ } ->
           (* Enumerate the 0/1 corners of the box that are feasible; none
              may have a smaller objective. *)
           let n = Array.length c in
           let ok = ref true in
           for mask = 0 to (1 lsl n) - 1 do
             let x =
               Array.init n (fun j ->
                   if mask land (1 lsl j) <> 0 then 1. else 0.)
             in
             if feasible (a, rel, b) x then begin
               let v = ref 0. in
               Array.iteri (fun j cj -> v := !v +. (cj *. x.(j))) c;
               if !v < objective -. 1e-6 then ok := false
             end
           done;
           !ok);
  ]

let problem_tests =
  [
    Alcotest.test_case "builder with upper bounds" `Quick (fun () ->
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_var ~ub:2. p "x" in
        let y = Lp.Problem.add_var p "y" in
        Lp.Problem.add_constraint p [ (1., x); (1., y) ] Lp.Simplex.Le 10.;
        Lp.Problem.set_objective p ~sense:`Maximize [ (3., x); (1., y) ];
        (match Lp.Problem.solve_relaxation p with
         | Lp.Simplex.Optimal { objective; solution } ->
           (* x capped at 2, y fills the rest: 3*2 + 8 = 14. *)
           check tf "obj" 14. objective;
           check tf "x" 2. solution.((x :> int))
         | _ -> Alcotest.fail "expected optimal"));
    Alcotest.test_case "bound overrides" `Quick (fun () ->
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_var ~ub:5. p "x" in
        Lp.Problem.set_objective p ~sense:`Maximize [ (1., x) ];
        (match Lp.Problem.solve_relaxation ~bounds:[ x, 1., 3. ] p with
         | Lp.Simplex.Optimal { objective; _ } -> check tf "obj" 3. objective
         | _ -> Alcotest.fail "expected optimal"));
    Alcotest.test_case "metadata" `Quick (fun () ->
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_binary p "x" in
        let _y = Lp.Problem.add_var p "y" in
        check Alcotest.int "vars" 2 (Lp.Problem.num_vars p);
        check tb "x integer" true (Lp.Problem.is_integer p x);
        check Alcotest.string "name" "x" (Lp.Problem.var_name p x);
        check Alcotest.int "one integer var" 1
          (List.length (Lp.Problem.integer_vars p)));
    Alcotest.test_case "objective_value" `Quick (fun () ->
        let p = Lp.Problem.create () in
        let x = Lp.Problem.add_var p "x" in
        let y = Lp.Problem.add_var p "y" in
        Lp.Problem.set_objective p ~sense:`Minimize [ (2., x); (-1., y) ];
        check tf "value" 3. (Lp.Problem.objective_value p [| 2.; 1. |]));
  ]

let () =
  Alcotest.run "lp"
    [
      "simplex", simplex_tests;
      "simplex-properties", simplex_property_tests;
      "problem", problem_tests;
    ]
