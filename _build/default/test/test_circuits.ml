(* Tests for the benchmark-circuit generators: each circuit is checked
   against an independent OCaml reference implementation on random (or
   exhaustive) input points. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Evaluate a netlist on an integer-encoded input point (bit i of [bits]
   feeds input i in declaration order) and decode selected outputs as an
   integer (little-endian over the listed names). *)
let eval_bits (nl : Logic.Netlist.t) bits =
  let inputs = Array.of_list nl.inputs in
  let point = Array.init (Array.length inputs) (fun i -> bits land (1 lsl i) <> 0) in
  let out = Logic.Netlist.eval_point nl point in
  let names = Array.of_list nl.outputs in
  fun selected ->
    List.fold_left
      (fun acc (k, name) ->
         let rec idx i = if names.(i) = name then i else idx (i + 1) in
         if out.(idx 0) then acc lor (1 lsl k) else acc)
      0
      (List.mapi (fun k name -> k, name) selected)

let bit_of (nl : Logic.Netlist.t) bits name =
  (eval_bits nl bits) [ name ] = 1

let int_gen bits = QCheck2.Gen.(int_bound ((1 lsl bits) - 1))

(* ------------------------------------------------------------------ *)

let adder4 = lazy (Circuits.Arith.ripple_adder ~bits:4 ())
let sub4 = lazy (Circuits.Arith.subtractor ~bits:4 ())
let cmp4 = lazy (Circuits.Arith.comparator ~bits:4 ())
let inc4 = lazy (Circuits.Arith.incrementer ~bits:4 ())
let alu4 = lazy (Circuits.Arith.alu ~bits:4 ())
let aluf4 = lazy (Circuits.Arith.alu_with_flags ~bits:4 ())
let addcmp4 = lazy (Circuits.Arith.adder_comparator ~bits:4 ())

let sum_names bits prefix = List.init bits (fun i -> Printf.sprintf "%s%d" prefix i)

let arith_tests =
  [
    qcheck_case "ripple adder adds"
      QCheck2.Gen.(pair (int_gen 4) (int_gen 4))
      (fun (a, b) ->
         let nl = Lazy.force adder4 in
         let bits = a lor (b lsl 4) in
         let decode = eval_bits nl bits in
         decode (sum_names 4 "add_s" @ [ "add_c4" ]) = a + b);
    qcheck_case "subtractor subtracts (two's complement)"
      QCheck2.Gen.(pair (int_gen 4) (int_gen 4))
      (fun (a, b) ->
         let nl = Lazy.force sub4 in
         let bits = a lor (b lsl 4) in
         let decode = eval_bits nl bits in
         let diff = decode (sum_names 4 "sub_s") in
         let borrow = bit_of nl bits "borrow" in
         diff = (a - b) land 15 && borrow = (a < b));
    qcheck_case "comparator orders"
      QCheck2.Gen.(pair (int_gen 4) (int_gen 4))
      (fun (a, b) ->
         let nl = Lazy.force cmp4 in
         let bits = a lor (b lsl 4) in
         bit_of nl bits "eq" = (a = b)
         && bit_of nl bits "lt" = (a < b)
         && bit_of nl bits "gt" = (a > b));
    qcheck_case "incrementer adds one" (int_gen 4) (fun a ->
        let nl = Lazy.force inc4 in
        let decode = eval_bits nl a in
        decode (sum_names 4 "s" @ [ "c4" ]) = a + 1);
    Alcotest.test_case "majority threshold" `Quick (fun () ->
        let nl = Circuits.Arith.majority ~width:5 () in
        let popcount bits =
          let c = ref 0 in
          for i = 0 to 4 do
            if bits land (1 lsl i) <> 0 then incr c
          done;
          !c
        in
        for bits = 0 to 31 do
          check tb
            (Printf.sprintf "bits=%d" bits)
            (popcount bits >= 3)
            (bit_of nl bits "maj")
        done);
    qcheck_case "alu opcodes"
      QCheck2.Gen.(triple (int_gen 4) (int_gen 4) (int_gen 3))
      (fun (a, b, opcin) ->
         let nl = Lazy.force alu4 in
         let op = opcin land 3 and cin = (opcin lsr 2) land 1 in
         let bits = a lor (b lsl 4) lor (cin lsl 8) lor (op lsl 9) in
         let decode = eval_bits nl bits in
         let result = decode (sum_names 4 "r") in
         let expected =
           match op with
           | 0 -> a land b
           | 1 -> a lor b
           | 2 -> a lxor b
           | _ -> (a + b + cin) land 15
         in
         result = expected
         && bit_of nl bits "zflag" = (expected = 0));
    qcheck_case "alu_with_flags opcodes"
      QCheck2.Gen.(triple (int_gen 4) (int_gen 4) (int_gen 3))
      (fun (a, b, op) ->
         let nl = Lazy.force aluf4 in
         let bits = a lor (b lsl 4) lor (op lsl 8) in
         let decode = eval_bits nl bits in
         let result = decode (sum_names 4 "r") in
         let expected =
           match op with
           | 0 -> a land b
           | 1 -> a lor b
           | 2 -> a lxor b
           | 3 -> (a + b) land 15
           | 4 -> (a - b) land 15
           | 5 -> (a + 1) land 15
           | 6 -> a
           | _ -> lnot a land 15
         in
         result = expected
         && bit_of nl bits "zflag" = (expected = 0)
         && bit_of nl bits "nflag" = (expected land 8 <> 0));
    qcheck_case "adder_comparator combines both"
      QCheck2.Gen.(triple (int_gen 4) (int_gen 4) (int_gen 1))
      (fun (a, b, cin) ->
         let nl = Lazy.force addcmp4 in
         let bits = a lor (b lsl 4) lor (cin lsl 8) in
         let decode = eval_bits nl bits in
         decode (sum_names 4 "add_s" @ [ "add_c4" ]) = a + b + cin
         && bit_of nl bits "eq" = (a = b)
         && bit_of nl bits "lt" = (a < b));
  ]

let shifter_mult_tests =
  [
    qcheck_case "barrel shifter shifts left"
      QCheck2.Gen.(pair (int_gen 8) (int_bound 7))
      (fun (d, sh) ->
         let nl = Circuits.Arith.barrel_shifter ~bits:8 () in
         let bits = d lor (sh lsl 8) in
         let decode = eval_bits nl bits in
         decode (sum_names 8 "q") = (d lsl sh) land 255);
    qcheck_case "multiplier multiplies"
      QCheck2.Gen.(pair (int_gen 4) (int_gen 4))
      (fun (a, b) ->
         let nl = Circuits.Arith.multiplier ~bits:4 () in
         let bits = a lor (b lsl 4) in
         let decode = eval_bits nl bits in
         decode (sum_names 8 "p") = a * b);
    qcheck_case "max unit selects the larger word"
      QCheck2.Gen.(pair (int_gen 5) (int_gen 5))
      (fun (a, b) ->
         let nl = Circuits.Arith.max_unit ~bits:5 () in
         let bits = a lor (b lsl 5) in
         let decode = eval_bits nl bits in
         decode (sum_names 5 "m") = max a b
         && bit_of nl bits "a_wins" = (a >= b));
    Alcotest.test_case "multiplier BDD blows up vs adder" `Quick (fun () ->
        (* The paper's reason for excluding arithmetic from Fig 13. *)
        let mul = Bdd.Sbdd.of_netlist (Circuits.Arith.multiplier ~bits:6 ()) in
        let add = Bdd.Sbdd.of_netlist (Circuits.Arith.ripple_adder ~bits:6 ()) in
        check tb "mul >> add" true
          (Bdd.Sbdd.size mul > 4 * Bdd.Sbdd.size add));
  ]

(* ------------------------------------------------------------------ *)

let ecc_tests =
  [
    qcheck_case "parity tree" (int_gen 7) (fun bits ->
        let nl = Circuits.Ecc.parity_tree ~width:7 () in
        let rec pop b = if b = 0 then 0 else (b land 1) + pop (b lsr 1) in
        bit_of nl bits "parity" = (pop bits mod 2 = 1));
    Alcotest.test_case "check-bit count" `Quick (fun () ->
        check ti "8 data" 4 (Circuits.Ecc.num_check_bits ~data_bits:8);
        check ti "32 data" 6 (Circuits.Ecc.num_check_bits ~data_bits:32);
        check ti "57 data" 6 (Circuits.Ecc.num_check_bits ~data_bits:57));
    qcheck_case "hamming: clean word passes through" ~count:100 (int_gen 8)
      (fun data ->
         let enc = Circuits.Ecc.hamming_encoder ~data_bits:8 () in
         let checks = eval_bits enc data (sum_names 4 "p") in
         let cor = Circuits.Ecc.hamming_corrector ~data_bits:8 () in
         let bits = data lor (checks lsl 8) in
         eval_bits cor bits (sum_names 8 "q") = data);
    qcheck_case "hamming: any single data-bit error corrected" ~count:150
      QCheck2.Gen.(pair (int_gen 8) (int_bound 7))
      (fun (data, flip) ->
         let enc = Circuits.Ecc.hamming_encoder ~data_bits:8 () in
         let checks = eval_bits enc data (sum_names 4 "p") in
         let corrupted = data lxor (1 lsl flip) in
         let cor = Circuits.Ecc.hamming_corrector ~data_bits:8 () in
         let bits = corrupted lor (checks lsl 8) in
         eval_bits cor bits (sum_names 8 "q") = data);
    qcheck_case "sec_ded: single error corrected and flagged" ~count:100
      QCheck2.Gen.(pair (int_gen 8) (int_bound 7))
      (fun (data, flip) ->
         (* data_bits = 8 -> 4 checks + overall parity. *)
         let enc = Circuits.Ecc.hamming_encoder ~data_bits:8 () in
         let checks = eval_bits enc data (sum_names 4 "p") in
         let rec pop b = if b = 0 then 0 else (b land 1) + pop (b lsr 1) in
         let overall = (pop data + pop checks) mod 2 in
         let corrupted = data lxor (1 lsl flip) in
         let nl = Circuits.Ecc.sec_ded ~data_bits:8 () in
         let bits = corrupted lor (checks lsl 8) lor (overall lsl 12) in
         eval_bits nl bits (sum_names 8 "q") = data
         && bit_of nl bits "single_error"
         && not (bit_of nl bits "double_error"));
    qcheck_case "sec_ded: double error flagged, not corrected silently"
      ~count:100
      QCheck2.Gen.(triple (int_gen 8) (int_bound 7) (int_bound 7))
      (fun (data, f1, f2) ->
         QCheck2.assume (f1 <> f2);
         let enc = Circuits.Ecc.hamming_encoder ~data_bits:8 () in
         let checks = eval_bits enc data (sum_names 4 "p") in
         let rec pop b = if b = 0 then 0 else (b land 1) + pop (b lsr 1) in
         let overall = (pop data + pop checks) mod 2 in
         let corrupted = data lxor (1 lsl f1) lxor (1 lsl f2) in
         let nl = Circuits.Ecc.sec_ded ~data_bits:8 () in
         let bits = corrupted lor (checks lsl 8) lor (overall lsl 12) in
         bit_of nl bits "double_error" && not (bit_of nl bits "single_error"));
    qcheck_case "corrector with enables gates correction" ~count:60
      QCheck2.Gen.(pair (int_gen 4) (int_bound 3))
      (fun (data, flip) ->
         let enc = Circuits.Ecc.hamming_encoder ~data_bits:4 () in
         let checks = eval_bits enc data (sum_names 3 "p") in
         let cor = Circuits.Ecc.hamming_corrector ~extra_inputs:1 ~data_bits:4 () in
         let corrupted = data lxor (1 lsl flip) in
         (* enable = 0: the error passes through uncorrected. *)
         let bits_dis = corrupted lor (checks lsl 4) in
         let bits_en = bits_dis lor (1 lsl 7) in
         eval_bits cor bits_dis (sum_names 4 "q") = corrupted
         && eval_bits cor bits_en (sum_names 4 "q") = data);
  ]

(* ------------------------------------------------------------------ *)

let control_tests =
  [
    Alcotest.test_case "decoder is one-hot" `Quick (fun () ->
        let nl = Circuits.Control.decoder ~select_bits:4 () in
        for sel = 0 to 15 do
          let decode = eval_bits nl sel in
          for k = 0 to 15 do
            check tb
              (Printf.sprintf "sel=%d y%d" sel k)
              (k = sel)
              (decode [ Printf.sprintf "y%d" k ] = 1)
          done
        done);
    qcheck_case "priority encoder reports the lowest request" (int_gen 8)
      (fun bits ->
         let nl = Circuits.Control.priority_encoder ~width:8 () in
         let decode = eval_bits nl bits in
         let valid = decode [ "valid" ] = 1 in
         if bits = 0 then not valid
         else begin
           let rec lowest i = if bits land (1 lsl i) <> 0 then i else lowest (i + 1) in
           valid && decode (sum_names 3 "idx") = lowest 0
         end);
    qcheck_case "round-robin arbiter grants correctly"
      QCheck2.Gen.(pair (int_gen 6) (int_gen 6))
      (fun (req, mask) ->
         let nl = Circuits.Control.round_robin_arbiter ~width:6 () in
         let bits = req lor (mask lsl 6) in
         let decode = eval_bits nl bits in
         let grants = decode (List.init 6 (fun i -> Printf.sprintf "g%d" i)) in
         let expected =
           if req = 0 then 0
           else begin
             let masked = req land mask in
             let pool = if masked <> 0 then masked else req in
             let rec lowest i =
               if pool land (1 lsl i) <> 0 then 1 lsl i else lowest (i + 1)
             in
             lowest 0
           end
         in
         grants = expected && (decode [ "any_grant" ] = 1) = (req <> 0));
    qcheck_case "interrupt controller prioritises enabled channels"
      QCheck2.Gen.(pair (int_gen 9) (int_gen 3))
      (fun (irqs, enables) ->
         let nl = Circuits.Control.interrupt_controller ~channels:9 () in
         let bits = irqs lor (enables lsl 9) in
         let decode = eval_bits nl bits in
         let enabled =
           List.filter
             (fun i ->
                irqs land (1 lsl i) <> 0 && enables land (1 lsl (i / 3)) <> 0)
             (List.init 9 (fun i -> i))
         in
         let pending = decode [ "pending" ] = 1 in
         (pending = (enabled <> []))
         &&
         match enabled with
         | [] -> true
         | first :: _ -> decode (sum_names 4 "vec") = first);
    Alcotest.test_case "router XY decisions" `Quick (fun () ->
        let nl = Circuits.Control.router ~addr_bits:4 ~payload_bits:2 () in
        let run ~dx ~dy ~lx ~ly ~credits =
          let bits =
            dx lor (dy lsl 4) lor (lx lsl 8) lor (ly lsl 12)
            lor (credits lsl 18)
          in
          eval_bits nl bits
        in
        (* dest east of local, credit available *)
        let d = run ~dx:9 ~dy:3 ~lx:4 ~ly:3 ~credits:15 in
        check ti "east" 1 (d [ "east" ]);
        check ti "west" 0 (d [ "west" ]);
        (* equal x, dest north *)
        let d = run ~dx:4 ~dy:9 ~lx:4 ~ly:3 ~credits:15 in
        check ti "north" 1 (d [ "north" ]);
        (* at destination *)
        let d = run ~dx:4 ~dy:3 ~lx:4 ~ly:3 ~credits:0 in
        check ti "eject" 1 (d [ "eject" ]);
        (* east wanted but no credit *)
        let d = run ~dx:9 ~dy:3 ~lx:4 ~ly:3 ~credits:0 in
        check ti "stalled" 0 (d [ "east" ]));
    qcheck_case "int2float encodes magnitude and sign" ~count:300
      (int_gen 11)
      (fun bits ->
         let nl = Circuits.Control.int2float ~int_bits:11 () in
         let decode = eval_bits nl bits in
         let sign = bits land (1 lsl 10) <> 0 in
         (* magnitude in the circuit's 10-bit field; x = -1024 wraps to 0 *)
         let magnitude =
           let low = bits land 1023 in
           if sign then (1024 - low) land 1023 else low
         in
         let got_sign = decode [ "fsign" ] = 1 in
         let got_exp = decode (sum_names 3 "e") in
         got_sign = sign
         &&
         if magnitude = 0 then got_exp = 0
         else begin
           (* exponent = min(position of leading one, 7) *)
           let rec lead i = if magnitude lsr i > 0 then lead (i + 1) else i - 1 in
           got_exp = min (lead 0) 7
         end);
    Alcotest.test_case "cavlc decoder fields" `Quick (fun () ->
        let nl = Circuits.Control.cavlc_decoder () in
        (* Codeword 0b0001xxxxxx: 3 leading zeros (L=3), suffix bits are the
           next two below the leading one. *)
        let bits = 0b0001110000 in
        let decode = eval_bits nl bits in
        (* L = 3, s0 = 1: total_coeff = 2*3 + 1 = 7; len = 3 + 3 = 6. *)
        check ti "total_coeff" 7 (decode (sum_names 5 "tc"));
        check ti "code_len" 6 (decode (sum_names 4 "len")));
    Alcotest.test_case "opcode decoder one-hot classes" `Quick (fun () ->
        let nl = Circuits.Control.opcode_decoder () in
        for op = 0 to 127 do
          let decode = eval_bits nl op in
          let klass =
            List.filter
              (fun o -> decode [ o ] = 1)
              [ "is_load"; "is_store"; "is_branch"; "is_jump"; "is_alu_reg";
                "is_alu_imm"; "is_lui"; "is_system"; "illegal" ]
          in
          check ti (Printf.sprintf "op=%d" op) 1 (List.length klass)
        done);
    Alcotest.test_case "bus controller basic behaviours" `Quick (fun () ->
        let nl = Circuits.Control.bus_controller () in
        check ti "inputs" 147 (Logic.Netlist.num_inputs nl);
        check ti "outputs" 142 (Logic.Netlist.num_outputs nl);
        (* All-zero input: idle state, not busy, no tick. *)
        let out = Logic.Netlist.eval nl (fun _ -> false) in
        check tb "idle" true (List.assoc "st_idle" out);
        check tb "not busy" false (List.assoc "busy" out);
        (* Enabled + prescale counter equal to divisor (both zero) ticks. *)
        let out = Logic.Netlist.eval nl (fun v -> v = "enable") in
        check tb "tick" true (List.assoc "tick" out);
        check tb "addr match (0 = 0)" true (List.assoc "addr_match" out));
  ]

(* ------------------------------------------------------------------ *)

let suite_tests =
  [
    Alcotest.test_case "all entries generate well-formed netlists" `Quick
      (fun () ->
         List.iter
           (fun (entry : Circuits.Suite.entry) ->
              let nl = entry.generate () in
              (* c1908's Hamming geometry admits 32 or 34 inputs, never the
                 paper's 33 (DESIGN.md); everything else matches exactly. *)
              let tolerance = if entry.name = "c1908" then 1 else 0 in
              check tb
                (entry.name ^ " inputs")
                true
                (abs (entry.paper_inputs - Logic.Netlist.num_inputs nl)
                 <= tolerance);
              (* Outputs match the paper interface for the non-composite
                 analogues. *)
              ignore (Logic.Netlist.eval nl (fun _ -> false)))
           Circuits.Suite.all);
    Alcotest.test_case "names unique and findable" `Quick (fun () ->
        List.iter
          (fun name ->
             check Alcotest.string "found" name (Circuits.Suite.find name).name)
          Circuits.Suite.names;
        check ti "17 benchmarks" 17 (List.length Circuits.Suite.all));
    Alcotest.test_case "find unknown raises" `Quick (fun () ->
        check tb "raises" true
          (match Circuits.Suite.find "nope" with
           | exception Not_found -> true
           | _ -> false));
    Alcotest.test_case "combine concatenates interfaces" `Quick (fun () ->
        let c =
          Circuits.Suite.combine ~name:"both"
            [
              Circuits.Arith.ripple_adder ~bits:2 ();
              Circuits.Ecc.parity_tree ~width:3 ();
            ]
        in
        check ti "inputs" 7 (Logic.Netlist.num_inputs c);
        check ti "outputs" 4 (Logic.Netlist.num_outputs c);
        (* Blocks stay independent: parity of block 1 only sees u1 wires. *)
        let out = Logic.Netlist.eval c (fun v -> v = "u1_x0") in
        check tb "parity" true (List.assoc "u1_parity" out));
    Alcotest.test_case "epfl subset flagged as small" `Quick (fun () ->
        check tb "ctrl small" true
          (List.exists
             (fun (e : Circuits.Suite.entry) -> e.name = "ctrl")
             Circuits.Suite.small));
  ]

let () =
  Alcotest.run "circuits"
    [
      "arith", arith_tests;
      "shift_mult_max", shifter_mult_tests;
      "ecc", ecc_tests;
      "control", control_tests;
      "suite", suite_tests;
    ]
