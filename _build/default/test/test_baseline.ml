(* Tests for the baselines: the staircase prior-work mapper [16] and the
   MAGIC/CONTRA cost model [34]. *)

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

let qcheck_case ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let e = Logic.Parse.expr

let expr_gen =
  let open QCheck2.Gen in
  let var_names = [ "a"; "b"; "c" ] in
  sized @@ fix (fun self n ->
      if n <= 0 then map Logic.Expr.var (oneofl var_names)
      else
        frequency
          [ 1, map Logic.Expr.var (oneofl var_names);
            2, map Logic.Expr.not_ (self (n - 1));
            2, map2 (fun a b -> Logic.Expr.and_ [ a; b ]) (self (n / 2)) (self (n / 2));
            2, map2 (fun a b -> Logic.Expr.or_ [ a; b ]) (self (n / 2)) (self (n / 2));
            1, map2 Logic.Expr.xor (self (n / 2)) (self (n / 2)) ])

let netlist_of_expr f =
  let inputs = Logic.Expr.vars f in
  Logic.Netlist.create ~name:"t" ~inputs ~outputs:[ "f" ]
    [ Logic.Netlist.n_expr "f" f ]

(* ------------------------------------------------------------------ *)

let staircase_tests =
  [
    Alcotest.test_case "fig2: semiperimeter 2n - 1" `Quick (fun () ->
        let nl = netlist_of_expr (e "(a & b) | c") in
        let r = Baseline.Staircase.synthesize nl in
        (* 4 graph nodes: 4 wordlines + 3 bitlines. *)
        check ti "rows" 4 (Crossbar.Design.rows r.merged);
        check ti "cols" 3 (Crossbar.Design.cols r.merged);
        check ti "S" 7 (Crossbar.Design.semiperimeter r.merged);
        check ti "nodes" 4 r.total_bdd_nodes);
    Alcotest.test_case "fig2 staircase verifies" `Quick (fun () ->
        let nl = netlist_of_expr (e "(a & b) | c") in
        let r = Baseline.Staircase.synthesize nl in
        check tb "ok" true
          (Crossbar.Verify.against_table r.merged
             ~reference:(Logic.Netlist.to_truth_table nl)
           = Crossbar.Verify.Ok));
    Alcotest.test_case "multi-output staircase verifies" `Quick (fun () ->
        let nl = Circuits.Arith.ripple_adder ~bits:2 () in
        let r = Baseline.Staircase.synthesize nl in
        check ti "one block per output" (Logic.Netlist.num_outputs nl)
          (List.length r.designs);
        check tb "ok" true
          (Crossbar.Verify.against_table r.merged
             ~reference:(Logic.Netlist.to_truth_table nl)
           = Crossbar.Verify.Ok));
    Alcotest.test_case "every node gets a diagonal fuse" `Quick (fun () ->
        let nl = netlist_of_expr (e "(a & b) | c") in
        let r = Baseline.Staircase.synthesize nl in
        (* All non-terminal nodes are fused: n - 1 fuses. *)
        check ti "fuses" 3 (Crossbar.Design.num_on_junctions r.merged));
    Alcotest.test_case "COMPACT beats the staircase on semiperimeter" `Quick
      (fun () ->
         let nl = Circuits.Control.opcode_decoder () in
         let stair = Baseline.Staircase.synthesize nl in
         let compact = Compact.Pipeline.synthesize nl in
         check tb "smaller" true
           (Crossbar.Design.semiperimeter compact.design
            < Crossbar.Design.semiperimeter stair.merged));
    qcheck_case "staircase always verifies" ~count:40 expr_gen (fun f ->
        let nl = netlist_of_expr f in
        let r = Baseline.Staircase.synthesize nl in
        Crossbar.Verify.against_table r.merged
          ~reference:(Logic.Netlist.to_truth_table nl)
        = Crossbar.Verify.Ok);
  ]

(* ------------------------------------------------------------------ *)

let magic_tests =
  [
    Alcotest.test_case "nor lowering preserves semantics" `Quick (fun () ->
        let nl = Circuits.Arith.ripple_adder ~bits:2 () in
        let nig = Baseline.Magic.of_netlist nl in
        let tt = Logic.Netlist.to_truth_table nl in
        let inputs = nl.inputs in
        let n = List.length inputs in
        for bits = 0 to (1 lsl n) - 1 do
          let point = Array.init n (fun i -> bits land (1 lsl i) <> 0) in
          let env v =
            let rec idx i rest =
              match rest with
              | [] -> assert false
              | x :: tl -> if String.equal x v then i else idx (i + 1) tl
            in
            point.(idx 0 inputs)
          in
          let got = Baseline.Magic.eval nig env in
          let expected = Logic.Truth_table.eval tt point in
          List.iteri
            (fun i (_, value) ->
               check tb (Printf.sprintf "bits=%d out=%d" bits i)
                 expected.(i) value)
            got
        done);
    Alcotest.test_case "structural hashing shares subterms" `Quick (fun () ->
        let nl =
          Logic.Netlist.create ~name:"shared" ~inputs:[ "a"; "b" ]
            ~outputs:[ "f"; "g" ]
            [
              Logic.Netlist.n_and "f" [ "a"; "b" ];
              Logic.Netlist.n_and "g" [ "a"; "b" ];
            ]
        in
        let nig = Baseline.Magic.of_netlist nl in
        (* Both outputs must resolve to the same op. *)
        (match nig.outputs with
         | [ (_, i); (_, j) ] -> check ti "shared op" i j
         | _ -> Alcotest.fail "expected two outputs"));
    Alcotest.test_case "depth and gate counts positive" `Quick (fun () ->
        let nig =
          Baseline.Magic.of_netlist (Circuits.Control.opcode_decoder ())
        in
        check tb "gates" true (Baseline.Magic.num_gates nig > 0);
        check tb "depth" true (Baseline.Magic.depth nig > 0);
        check tb "depth <= gates" true
          (Baseline.Magic.depth nig <= Baseline.Magic.num_gates nig));
    Alcotest.test_case "levels are monotone along dependencies" `Quick
      (fun () ->
         let nig =
           Baseline.Magic.of_netlist (Circuits.Arith.comparator ~bits:3 ())
         in
         let levels = Baseline.Magic.levels nig in
         Array.iteri
           (fun i op ->
              let ops =
                match op with
                | Baseline.Magic.Input _ -> []
                | Baseline.Magic.Not j -> [ j ]
                | Baseline.Magic.Nor js -> js
              in
              List.iter
                (fun j -> check tb "increasing" true (levels.(j) < levels.(i)))
                ops)
           nig.ops);
    qcheck_case "magic evaluation equals expression evaluation" expr_gen
      (fun f ->
         let nl = netlist_of_expr f in
         let nig = Baseline.Magic.of_netlist nl in
         let vars = Logic.Expr.vars f in
         List.for_all
           (fun bits ->
              let env v =
                let rec idx i rest =
                  match rest with
                  | [] -> false
                  | x :: tl ->
                    if String.equal x v then bits land (1 lsl i) <> 0
                    else idx (i + 1) tl
                in
                idx 0 vars
              in
              List.assoc "f" (Baseline.Magic.eval nig env)
              = Logic.Expr.eval env f)
           (List.init (1 lsl List.length vars) (fun b -> b)));
  ]

(* ------------------------------------------------------------------ *)

let contra_tests =
  [
    Alcotest.test_case "cost fields are consistent" `Quick (fun () ->
        let cost = Baseline.Contra.estimate (Circuits.Control.opcode_decoder ()) in
        check tb "luts" true (cost.num_luts > 0);
        check tb "levels" true
          (cost.num_levels > 0 && cost.num_levels <= cost.num_luts);
        check ti "power decomposition" cost.power_ops
          (cost.input_ops + cost.nor_ops + cost.copy_ops);
        check tb "delay" true (cost.delay_steps > 0));
    Alcotest.test_case "deterministic" `Quick (fun () ->
        let nl = Circuits.Control.cavlc_decoder () in
        check tb "equal" true
          (Baseline.Contra.estimate nl = Baseline.Contra.estimate nl));
    Alcotest.test_case "bigger circuit costs more" `Quick (fun () ->
        let small = Baseline.Contra.estimate (Circuits.Arith.ripple_adder ~bits:2 ()) in
        let large = Baseline.Contra.estimate (Circuits.Arith.ripple_adder ~bits:8 ()) in
        check tb "power" true (large.power_ops > small.power_ops);
        check tb "delay" true (large.delay_steps > small.delay_steps));
    Alcotest.test_case "wider LUTs reduce the LUT count" `Quick (fun () ->
        let nl = Circuits.Arith.comparator ~bits:6 () in
        let k2 =
          Baseline.Contra.estimate
            ~params:{ Baseline.Contra.default_params with k = 2 } nl
        in
        let k6 =
          Baseline.Contra.estimate
            ~params:{ Baseline.Contra.default_params with k = 6 } nl
        in
        check tb "fewer luts" true (k6.num_luts <= k2.num_luts));
  ]

let () =
  Alcotest.run "baseline"
    [
      "staircase", staircase_tests;
      "magic", magic_tests;
      "contra", contra_tests;
    ]
