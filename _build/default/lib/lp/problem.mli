(** Linear-program model builder.

    Thin mutable wrapper that accumulates named variables and constraints
    and materialises the dense arrays expected by {!module:Simplex}. All
    variables are non-negative; finite upper bounds become constraint rows
    at solve time. Integrality markers are ignored here — they are enforced
    by {!module:Milp}. *)

type t
type var = private int

val create : unit -> t

val add_var : ?ub:float -> ?integer:bool -> t -> string -> var
(** A non-negative variable. [ub] defaults to [infinity]; [integer]
    defaults to [false]. *)

val add_binary : t -> string -> var
(** Shorthand for an integer variable with upper bound 1. *)

val add_constraint : t -> (float * var) list -> Simplex.relation -> float -> unit

val set_objective : t -> sense:[ `Minimize | `Maximize ] -> (float * var) list -> unit

val sense : t -> [ `Minimize | `Maximize ]
val num_vars : t -> int
val num_constraints : t -> int
val var_name : t -> var -> string
val is_integer : t -> var -> bool
val integer_vars : t -> var list
val objective_value : t -> float array -> float
(** Evaluate the objective (in the problem's own sense) on a point. *)

val solve_relaxation : ?bounds:(var * float * float) list -> t -> Simplex.outcome
(** Solve the LP relaxation, with optional per-variable bound overrides
    [(v, lb, ub)] added as constraint rows. The reported objective is in
    the problem's sense (a maximisation problem reports the maximum). *)
