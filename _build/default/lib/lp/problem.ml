type var = int

type row = { coeffs : (float * var) list; rel : Simplex.relation; rhs : float }

type t = {
  mutable names : string list;  (* reversed *)
  mutable ubs : float list;  (* reversed *)
  mutable ints : bool list;  (* reversed *)
  mutable nvars : int;
  mutable rows : row list;  (* reversed *)
  mutable nrows : int;
  mutable objective : (float * var) list;
  mutable sense : [ `Minimize | `Maximize ];
}

let create () =
  {
    names = [];
    ubs = [];
    ints = [];
    nvars = 0;
    rows = [];
    nrows = 0;
    objective = [];
    sense = `Minimize;
  }

let add_var ?(ub = infinity) ?(integer = false) t name =
  let v = t.nvars in
  t.names <- name :: t.names;
  t.ubs <- ub :: t.ubs;
  t.ints <- integer :: t.ints;
  t.nvars <- t.nvars + 1;
  v

let add_binary t name = add_var ~ub:1. ~integer:true t name

let add_constraint t coeffs rel rhs =
  List.iter
    (fun (_, v) ->
       if v < 0 || v >= t.nvars then invalid_arg "Problem.add_constraint: bad var")
    coeffs;
  t.rows <- { coeffs; rel; rhs } :: t.rows;
  t.nrows <- t.nrows + 1

let set_objective t ~sense coeffs =
  t.sense <- sense;
  t.objective <- coeffs

let sense t = t.sense
let num_vars t = t.nvars
let num_constraints t = t.nrows
let var_name t v = List.nth t.names (t.nvars - 1 - v)
let is_integer t v = List.nth t.ints (t.nvars - 1 - v)

let integer_vars t =
  let flags = Array.of_list (List.rev t.ints) in
  let acc = ref [] in
  for v = t.nvars - 1 downto 0 do
    if flags.(v) then acc := v :: !acc
  done;
  !acc

let objective_value t x =
  List.fold_left (fun acc (c, v) -> acc +. (c *. x.(v))) 0. t.objective

let solve_relaxation ?(bounds = []) t =
  let n = t.nvars in
  let ubs = Array.of_list (List.rev t.ubs) in
  let extra_rows =
    List.concat_map
      (fun (v, lb, ub) ->
         let rows = ref [] in
         if lb > 0. then rows := ([ 1., v ], Simplex.Ge, lb) :: !rows;
         if ub < infinity then rows := ([ 1., v ], Simplex.Le, ub) :: !rows;
         !rows)
      bounds
  in
  let ub_rows = ref [] in
  Array.iteri
    (fun v ub ->
       if ub < infinity then ub_rows := ([ 1., v ], Simplex.Le, ub) :: !ub_rows)
    ubs;
  let all_rows =
    List.rev_map (fun r -> r.coeffs, r.rel, r.rhs) t.rows
    @ !ub_rows @ extra_rows
  in
  let m = List.length all_rows in
  let a = Array.make_matrix m n 0. in
  let rel = Array.make m Simplex.Eq in
  let b = Array.make m 0. in
  List.iteri
    (fun i (coeffs, r, rhs) ->
       List.iter (fun (c, v) -> a.(i).(v) <- a.(i).(v) +. c) coeffs;
       rel.(i) <- r;
       b.(i) <- rhs)
    all_rows;
  let c = Array.make n 0. in
  List.iter (fun (k, v) -> c.(v) <- c.(v) +. k) t.objective;
  match t.sense with
  | `Minimize -> Simplex.minimize ~a ~rel ~b ~c
  | `Maximize -> Simplex.maximize ~a ~rel ~b ~c
