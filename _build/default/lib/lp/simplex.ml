type relation = Le | Ge | Eq

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

(* The tableau has [m] constraint rows and one objective row (index m).
   Columns: structural variables, then slack/surplus, then artificials,
   then the right-hand side (last column). *)
type tableau = {
  rows : float array array;  (* (m+1) × (cols+1) *)
  basis : int array;  (* basic variable of each constraint row *)
  m : int;
  cols : int;  (* columns excluding RHS *)
  mutable banned_from : int;  (* columns ≥ this may not enter (artificials) *)
}

let pivot t ~row ~col =
  let prow = t.rows.(row) in
  let p = prow.(col) in
  for j = 0 to t.cols do
    prow.(j) <- prow.(j) /. p
  done;
  for i = 0 to t.m do
    if i <> row then begin
      let r = t.rows.(i) in
      let f = r.(col) in
      if abs_float f > eps then
        for j = 0 to t.cols do
          r.(j) <- r.(j) -. (f *. prow.(j))
        done
    end
  done;
  t.basis.(row) <- col

(* Bland's rule: entering column = smallest index with a negative reduced
   cost; leaving row = lexicographically smallest by (ratio, basis index). *)
let rec iterate t =
  let obj = t.rows.(t.m) in
  let entering = ref (-1) in
  (try
     for j = 0 to t.banned_from - 1 do
       if obj.(j) < -.eps then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !entering < 0 then `Optimal
  else begin
    let col = !entering in
    let leave = ref (-1) in
    let best = ref infinity in
    for i = 0 to t.m - 1 do
      let aij = t.rows.(i).(col) in
      if aij > eps then begin
        let ratio = t.rows.(i).(t.cols) /. aij in
        if
          ratio < !best -. eps
          || (ratio < !best +. eps && (!leave < 0 || t.basis.(i) < t.basis.(!leave)))
        then begin
          best := ratio;
          leave := i
        end
      end
    done;
    if !leave < 0 then `Unbounded
    else begin
      pivot t ~row:!leave ~col;
      iterate t
    end
  end

let phase2 t ~n ~c =
  let m = t.m and cols = t.cols in
  (* Rebuild the reduced-cost row for the real objective. *)
  let obj = t.rows.(m) in
  Array.fill obj 0 (cols + 1) 0.;
  for j = 0 to n - 1 do
    obj.(j) <- c.(j)
  done;
  for i = 0 to m - 1 do
    let cb = if t.basis.(i) < n then c.(t.basis.(i)) else 0. in
    if abs_float cb > eps then
      for j = 0 to cols do
        obj.(j) <- obj.(j) -. (cb *. t.rows.(i).(j))
      done
  done;
  match iterate t with
  | `Unbounded -> Unbounded
  | `Optimal ->
    let solution = Array.make n 0. in
    for i = 0 to m - 1 do
      if t.basis.(i) < n then solution.(t.basis.(i)) <- t.rows.(i).(cols)
    done;
    let objective =
      Array.to_list (Array.mapi (fun j x -> c.(j) *. x) solution)
      |> List.fold_left ( +. ) 0.
    in
    Optimal { objective; solution }

let minimize ~a ~rel ~b ~c =
  let m = Array.length a in
  if Array.length rel <> m || Array.length b <> m then
    invalid_arg "Simplex.minimize: row count mismatch";
  let n = Array.length c in
  Array.iter
    (fun row ->
       if Array.length row <> n then
         invalid_arg "Simplex.minimize: column count mismatch")
    a;
  (* Normalise to non-negative RHS. *)
  let flip r = match r with Le -> Ge | Ge -> Le | Eq -> Eq in
  let rows_in =
    Array.init m (fun i ->
        if b.(i) < 0. then
          Array.map (fun x -> -.x) a.(i), flip rel.(i), -.b.(i)
        else Array.copy a.(i), rel.(i), b.(i))
  in
  let num_slack =
    Array.fold_left
      (fun acc (_, r, _) -> match r with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows_in
  in
  let num_art =
    Array.fold_left
      (fun acc (_, r, _) -> match r with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows_in
  in
  let cols = n + num_slack + num_art in
  let t =
    {
      rows = Array.make_matrix (m + 1) (cols + 1) 0.;
      basis = Array.make m (-1);
      m;
      cols;
      banned_from = n + num_slack;
    }
  in
  let next_slack = ref n in
  let next_art = ref (n + num_slack) in
  Array.iteri
    (fun i (row, r, rhs) ->
       Array.blit row 0 t.rows.(i) 0 n;
       t.rows.(i).(cols) <- rhs;
       (match r with
        | Le ->
          t.rows.(i).(!next_slack) <- 1.;
          t.basis.(i) <- !next_slack;
          incr next_slack
        | Ge ->
          t.rows.(i).(!next_slack) <- -1.;
          incr next_slack;
          t.rows.(i).(!next_art) <- 1.;
          t.basis.(i) <- !next_art;
          incr next_art
        | Eq ->
          t.rows.(i).(!next_art) <- 1.;
          t.basis.(i) <- !next_art;
          incr next_art))
    rows_in;
  (* Phase 1: minimise the sum of artificials. The reduced-cost row starts
     as -(sum of rows whose basic variable is artificial). *)
  if num_art > 0 then begin
    let obj = t.rows.(m) in
    for j = n + num_slack to cols - 1 do
      obj.(j) <- 1.
    done;
    for i = 0 to m - 1 do
      if t.basis.(i) >= n + num_slack then
        for j = 0 to cols do
          obj.(j) <- obj.(j) -. t.rows.(i).(j)
        done
    done;
    t.banned_from <- n + num_slack;
    (match iterate t with
     | `Optimal -> ()
     | `Unbounded -> assert false (* phase 1 is bounded below by 0 *));
    if t.rows.(m).(cols) < -.eps then Infeasible
    else begin
      (* Pivot artificials out of the basis where possible. *)
      for i = 0 to m - 1 do
        if t.basis.(i) >= n + num_slack then begin
          let found = ref (-1) in
          (try
             for j = 0 to n + num_slack - 1 do
               if abs_float t.rows.(i).(j) > eps then begin
                 found := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !found >= 0 then pivot t ~row:i ~col:!found
          (* else: redundant row; the artificial stays basic at value 0 and
             can never re-enter with a positive value. *)
        end
      done;
      phase2 t ~n ~c
    end
  end
  else phase2 t ~n ~c

let maximize ~a ~rel ~b ~c =
  match minimize ~a ~rel ~b ~c:(Array.map (fun x -> -.x) c) with
  | Optimal { objective; solution } ->
    Optimal { objective = -.objective; solution }
  | (Infeasible | Unbounded) as r -> r
