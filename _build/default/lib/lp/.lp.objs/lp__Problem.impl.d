lib/lp/problem.ml: Array List Simplex
