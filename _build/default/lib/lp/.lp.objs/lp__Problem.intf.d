lib/lp/problem.mli: Simplex
