lib/lp/simplex.mli:
