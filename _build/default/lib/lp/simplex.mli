(** Dense two-phase primal simplex.

    Solves [min c·x] subject to [A x {≤,≥,=} b], [x ≥ 0]. Bland's rule is
    used throughout, so the method cannot cycle. Intended problem sizes are
    thousands of variables/rows (dense tableau storage). This is the LP
    backend of {!module:Milp}, replacing the CPLEX dependency of the
    paper. *)

type relation = Le | Ge | Eq

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

val minimize :
  a:float array array ->
  rel:relation array ->
  b:float array ->
  c:float array ->
  outcome
(** [minimize ~a ~rel ~b ~c] with [a] an [m×n] row-major constraint matrix.
    All variables are non-negative; use {!module:Problem} for a friendlier
    model-building interface with upper bounds.
    @raise Invalid_argument on dimension mismatches. *)

val maximize :
  a:float array array ->
  rel:relation array ->
  b:float array ->
  c:float array ->
  outcome
(** Same, negating the objective; the reported [objective] is the maximum. *)
