(** Plain-text table rendering for the experiment reports. *)

type align = L | R

val render :
  columns:(string * align) list -> rows:string list list -> string
(** Pads every column to its widest cell; header separated by dashes. *)

val print : title:string -> columns:(string * align) list -> string list list -> unit
(** Renders to stdout with a title banner. *)

val fmt_f : float -> string
(** Compact float: ["0.123"]. *)

val fmt_pct : float -> string
(** Ratio as a percentage: [0.55 → "55%"]. *)
