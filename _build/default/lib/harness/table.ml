type align = L | R

let render ~columns ~rows =
  let headers = List.map fst columns in
  let all = headers :: rows in
  let ncols = List.length columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
       List.iteri
         (fun i cell ->
            if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
         row)
    all;
  let pad align w s =
    let fill = String.make (max 0 (w - String.length s)) ' ' in
    match align with L -> s ^ fill | R -> fill ^ s
  in
  let aligns = Array.of_list (List.map snd columns) in
  let render_row row =
    List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell) row
    |> String.concat "  "
  in
  let sep =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "  "
  in
  String.concat "\n" (render_row headers :: sep :: List.map render_row rows)

let print ~title ~columns rows =
  Printf.printf "\n== %s ==\n%s\n%!" title (render ~columns ~rows)

let fmt_f x =
  if x >= 100. then Printf.sprintf "%.1f" x else Printf.sprintf "%.3f" x

let fmt_pct x = Printf.sprintf "%.0f%%" (100. *. x)
