(** Ablation studies for the design choices DESIGN.md calls out.

    Four knobs are toggled on a set of benchmark circuits, each isolating
    one ingredient of the COMPACT implementation:

    - {b nt-kernel}: Nemhauser–Trotter LP kernelisation inside the exact
      vertex-cover solver (search-tree size and time);
    - {b balance-dp}: the Fig 6 component-flip subset-sum DP (maximum
      dimension of the resulting design);
    - {b warm-start}: seeding the MIP with the combinatorial incumbent
      (branch & bound nodes to optimality);
    - {b oct-cut}: the [S ≥ n + k] strengthening cut in the MIP (root
      bound and nodes).

    Each function prints its table and returns the measured pairs. *)

val nt_kernel :
  Experiments.config -> (string * Graphs.Vertex_cover.result * Graphs.Vertex_cover.result) list
(** (circuit, with kernel, without kernel) on the G□K2 cover instances. *)

val balance_dp :
  Experiments.config -> (string * int * int) list
(** (circuit, D with balancing, D without). *)

val warm_start :
  Experiments.config -> (string * int * int) list
(** (circuit, B&B nodes with warm start, nodes without). *)

val oct_cut : Experiments.config -> (string * int * int) list
(** (circuit, B&B nodes with the cut, nodes without). *)

val run_all : Experiments.config -> unit
