lib/harness/ablation.mli: Experiments Graphs
