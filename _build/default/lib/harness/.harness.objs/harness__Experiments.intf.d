lib/harness/experiments.mli: Bdd Circuits Compact Milp
