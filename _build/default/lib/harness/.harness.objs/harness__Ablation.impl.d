lib/harness/ablation.ml: Array Circuits Compact Experiments Graphs List Table
