lib/harness/table.mli:
