lib/harness/experiments.ml: Array Baseline Bdd Circuits Compact Crossbar Format Graphs Hashtbl List Logic Milp Option Printf Table Unix
