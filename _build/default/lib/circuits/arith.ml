let v = Logic.Expr.var
let ( &&& ) a b = Logic.Expr.and_ [ a; b ]
let ( ||| ) a b = Logic.Expr.or_ [ a; b ]
let ( ^^^ ) a b = Logic.Expr.xor a b
let nt = Logic.Expr.not_

(* Emit a ripple-carry chain; returns (sum wires, carry-out expr wire). *)
let ripple_chain b ~prefix a_bits b_bits carry0 =
  let bits = Array.length a_bits in
  let sums = Array.make bits "" in
  let carry = ref carry0 in
  for i = 0 to bits - 1 do
    let ai = v a_bits.(i) and bi = v b_bits.(i) in
    let c = Builder.wire !carry in
    sums.(i) <-
      Builder.emit b (Printf.sprintf "%s_s%d" prefix i) (ai ^^^ bi ^^^ c);
    carry :=
      Builder.emit b
        (Printf.sprintf "%s_c%d" prefix (i + 1))
        ((ai &&& bi) ||| (c &&& (ai ^^^ bi)))
  done;
  sums, !carry

let ripple_adder ?(with_cin = false) ~bits () =
  let b = Builder.create () in
  let a_bits = Builder.input_vector "a" bits in
  let b_bits = Builder.input_vector "b" bits in
  let cin =
    if with_cin then "cin"
    else Builder.emit b "zero" Logic.Expr.fls
  in
  let sums, cout = ripple_chain b ~prefix:"add" a_bits b_bits cin in
  let inputs =
    Array.to_list a_bits @ Array.to_list b_bits
    @ (if with_cin then [ "cin" ] else [])
  in
  Builder.finish b ~name:(Printf.sprintf "add%d" bits) ~inputs
    ~outputs:(Array.to_list sums @ [ cout ])

let subtractor ~bits () =
  let b = Builder.create () in
  let a_bits = Builder.input_vector "a" bits in
  let b_bits = Builder.input_vector "b" bits in
  (* a − b = a + ¬b + 1. *)
  let nb =
    Array.mapi
      (fun i w -> Builder.emit b (Printf.sprintf "nb%d" i) (nt (v w)))
      b_bits
  in
  let one = Builder.emit b "one" Logic.Expr.tru in
  let sums, cout = ripple_chain b ~prefix:"sub" a_bits nb one in
  let borrow = Builder.emit b "borrow" (nt (v cout)) in
  Builder.finish b ~name:(Printf.sprintf "sub%d" bits)
    ~inputs:(Array.to_list a_bits @ Array.to_list b_bits)
    ~outputs:(Array.to_list sums @ [ borrow ])

let comparator ~bits () =
  let b = Builder.create () in
  let a_bits = Builder.input_vector "a" bits in
  let b_bits = Builder.input_vector "b" bits in
  (* Scan from MSB: eq so far, and first difference decides. *)
  let eq = ref (Builder.emit b "eq_init" Logic.Expr.tru) in
  let lt = ref (Builder.emit b "lt_init" Logic.Expr.fls) in
  for i = bits - 1 downto 0 do
    let ai = v a_bits.(i) and bi = v b_bits.(i) in
    let bit_eq = Logic.Expr.xnor ai bi in
    lt :=
      Builder.emit b
        (Printf.sprintf "lt_%d" i)
        (Builder.wire !lt ||| (Builder.wire !eq &&& (nt ai &&& bi)));
    eq := Builder.emit b (Printf.sprintf "eq_%d" i) (Builder.wire !eq &&& bit_eq)
  done;
  let gt =
    Builder.emit b "gt" (nt (Builder.wire !eq ||| Builder.wire !lt))
  in
  let eq_out = Builder.emit b "eq" (Builder.wire !eq) in
  let lt_out = Builder.emit b "lt" (Builder.wire !lt) in
  Builder.finish b ~name:(Printf.sprintf "cmp%d" bits)
    ~inputs:(Array.to_list a_bits @ Array.to_list b_bits)
    ~outputs:[ eq_out; lt_out; gt ]

let incrementer ~bits () =
  let b = Builder.create () in
  let a_bits = Builder.input_vector "a" bits in
  let carry = ref (Builder.emit b "c0" Logic.Expr.tru) in
  let sums =
    Array.mapi
      (fun i w ->
         let s =
           Builder.emit b (Printf.sprintf "s%d" i) (v w ^^^ Builder.wire !carry)
         in
         carry :=
           Builder.emit b (Printf.sprintf "c%d" (i + 1))
             (v w &&& Builder.wire !carry);
         s)
      a_bits
  in
  Builder.finish b ~name:(Printf.sprintf "inc%d" bits)
    ~inputs:(Array.to_list a_bits)
    ~outputs:(Array.to_list sums @ [ !carry ])

let majority ~width () =
  let b = Builder.create () in
  let xs = Builder.input_vector "x" width in
  (* Tally with a small unary counter capped at the threshold. *)
  let threshold = (width / 2) + 1 in
  let count = Array.make (threshold + 1) "" in
  count.(0) <- Builder.emit b "cnt_base" Logic.Expr.tru;
  for k = 1 to threshold do
    count.(k) <- Builder.emit b (Printf.sprintf "cnt0_%d" k) Logic.Expr.fls
  done;
  Array.iteri
    (fun i w ->
       let prev = Array.copy count in
       for k = threshold downto 1 do
         count.(k) <-
           Builder.emit b
             (Printf.sprintf "cnt%d_%d" (i + 1) k)
             (Builder.wire prev.(k) ||| (Builder.wire prev.(k - 1) &&& v w))
       done)
    xs;
  let out = Builder.emit b "maj" (Builder.wire count.(threshold)) in
  Builder.finish b ~name:(Printf.sprintf "maj%d" width)
    ~inputs:(Array.to_list xs) ~outputs:[ out ]

let alu ~bits () =
  let b = Builder.create () in
  let a_bits = Builder.input_vector "a" bits in
  let b_bits = Builder.input_vector "b" bits in
  let op0 = "op0" and op1 = "op1" in
  let sums, cout = ripple_chain b ~prefix:"add" a_bits b_bits "cin" in
  let results =
    Array.init bits (fun i ->
        let ai = v a_bits.(i) and bi = v b_bits.(i) in
        let and_i = ai &&& bi in
        let or_i = ai ||| bi in
        let xor_i = ai ^^^ bi in
        let add_i = v sums.(i) in
        (* op: 00 AND, 01 OR, 10 XOR, 11 ADD *)
        let sel =
          Logic.Expr.or_
            [
              nt (v op1) &&& nt (v op0) &&& and_i;
              nt (v op1) &&& v op0 &&& or_i;
              v op1 &&& nt (v op0) &&& xor_i;
              v op1 &&& v op0 &&& add_i;
            ]
        in
        Builder.emit b (Printf.sprintf "r%d" i) sel)
  in
  let zero =
    Builder.emit b "zflag"
      (Logic.Expr.nor (Array.to_list (Array.map Builder.wire results)))
  in
  let parity =
    let p =
      Array.fold_left
        (fun acc r -> acc ^^^ Builder.wire r)
        Logic.Expr.fls results
    in
    Builder.emit b "pflag" p
  in
  let carry = Builder.emit b "cflag" (v cout &&& v op1 &&& v op0) in
  Builder.finish b ~name:(Printf.sprintf "alu%d" bits)
    ~inputs:(Array.to_list a_bits @ Array.to_list b_bits @ [ "cin"; op0; op1 ])
    ~outputs:(Array.to_list results @ [ carry; zero; parity ])

let alu_with_flags ~bits () =
  let b = Builder.create () in
  let a_bits = Builder.input_vector "a" bits in
  let b_bits = Builder.input_vector "b" bits in
  let ops = Builder.input_vector "op" 3 in
  let sel k =
    (* opcode = k as a 3-bit minterm over op0..op2 *)
    Logic.Expr.and_
      (List.init 3 (fun j ->
           if k land (1 lsl j) <> 0 then v ops.(j) else nt (v ops.(j))))
  in
  let zero_in = Builder.emit b "zero" Logic.Expr.fls in
  let one_in = Builder.emit b "one" Logic.Expr.tru in
  let add_s, add_c = ripple_chain b ~prefix:"add" a_bits b_bits zero_in in
  let nb =
    Array.mapi
      (fun i w -> Builder.emit b (Printf.sprintf "nb%d" i) (nt (v w)))
      b_bits
  in
  let sub_s, sub_c = ripple_chain b ~prefix:"sub" a_bits nb one_in in
  let inc_b = Array.map (fun _ -> zero_in) b_bits in
  let inc_s, inc_c = ripple_chain b ~prefix:"inc" a_bits inc_b one_in in
  let results =
    Array.init bits (fun i ->
        let ai = v a_bits.(i) and bi = v b_bits.(i) in
        let cases =
          [
            sel 0 &&& (ai &&& bi);
            sel 1 &&& (ai ||| bi);
            sel 2 &&& (ai ^^^ bi);
            sel 3 &&& v add_s.(i);
            sel 4 &&& v sub_s.(i);
            sel 5 &&& v inc_s.(i);
            sel 6 &&& ai;
            sel 7 &&& nt ai;
          ]
        in
        Builder.emit b (Printf.sprintf "r%d" i) (Logic.Expr.or_ cases))
  in
  let zero =
    Builder.emit b "zflag"
      (Logic.Expr.nor (Array.to_list (Array.map Builder.wire results)))
  in
  let negative = Builder.emit b "nflag" (Builder.wire results.(bits - 1)) in
  let carry =
    Builder.emit b "cflag"
      (Logic.Expr.or_
         [ sel 3 &&& v add_c; sel 4 &&& v sub_c; sel 5 &&& v inc_c ])
  in
  let overflow =
    (* signed overflow of the add path *)
    let am = v a_bits.(bits - 1) and bm = v b_bits.(bits - 1) in
    let sm = v add_s.(bits - 1) in
    Builder.emit b "vflag"
      (sel 3 &&& (Logic.Expr.xnor am bm &&& (am ^^^ sm)))
  in
  let parity =
    Builder.emit b "pflag"
      (Array.fold_left
         (fun acc r -> acc ^^^ Builder.wire r)
         Logic.Expr.fls results)
  in
  Builder.finish b ~name:(Printf.sprintf "aluf%d" bits)
    ~inputs:(Array.to_list a_bits @ Array.to_list b_bits @ Array.to_list ops)
    ~outputs:
      (Array.to_list results @ [ carry; zero; negative; overflow; parity ])

let adder_comparator ~bits () =
  let b = Builder.create () in
  let a_bits = Builder.input_vector "a" bits in
  let b_bits = Builder.input_vector "b" bits in
  let sums, cout = ripple_chain b ~prefix:"add" a_bits b_bits "cin" in
  (* Unsigned comparison via the subtract chain. *)
  let eq = ref (Builder.emit b "eq_init" Logic.Expr.tru) in
  let lt = ref (Builder.emit b "lt_init" Logic.Expr.fls) in
  for i = bits - 1 downto 0 do
    let ai = v a_bits.(i) and bi = v b_bits.(i) in
    lt :=
      Builder.emit b
        (Printf.sprintf "lt_%d" i)
        (Builder.wire !lt ||| (Builder.wire !eq &&& (nt ai &&& bi)));
    eq :=
      Builder.emit b (Printf.sprintf "eq_%d" i)
        (Builder.wire !eq &&& Logic.Expr.xnor ai bi)
  done;
  let parity =
    Builder.emit b "psum"
      (Array.fold_left
         (fun acc s -> acc ^^^ Builder.wire s)
         Logic.Expr.fls sums)
  in
  let eq_o = Builder.emit b "eq" (Builder.wire !eq) in
  let lt_o = Builder.emit b "lt" (Builder.wire !lt) in
  Builder.finish b ~name:(Printf.sprintf "addcmp%d" bits)
    ~inputs:(Array.to_list a_bits @ Array.to_list b_bits @ [ "cin" ])
    ~outputs:(Array.to_list sums @ [ cout; eq_o; lt_o; parity ])

let log2_ceil w =
  let rec go k = if 1 lsl k >= w then k else go (k + 1) in
  go 0

let barrel_shifter ~bits () =
  let b = Builder.create () in
  let data = Builder.input_vector "d" bits in
  let stages = log2_ceil bits in
  let amount = Builder.input_vector "sh" stages in
  (* Stage k shifts by 2^k when amount bit k is set. *)
  let current = ref (Array.map v data) in
  for k = 0 to stages - 1 do
    let shift = 1 lsl k in
    let sel = v amount.(k) in
    current :=
      Array.init bits (fun i ->
          let shifted =
            if i >= shift then (!current).(i - shift) else Logic.Expr.fls
          in
          let w =
            Builder.emit b
              (Printf.sprintf "st%d_%d" k i)
              (Logic.Expr.ite sel shifted (!current).(i))
          in
          Builder.wire w)
  done;
  let outputs =
    List.init bits (fun i ->
        Builder.emit b (Printf.sprintf "q%d" i) (!current).(i))
  in
  Builder.finish b
    ~name:(Printf.sprintf "bshift%d" bits)
    ~inputs:(Array.to_list data @ Array.to_list amount)
    ~outputs

let multiplier ~bits () =
  let b = Builder.create () in
  let a_bits = Builder.input_vector "a" bits in
  let b_bits = Builder.input_vector "b" bits in
  (* Row-by-row accumulation of partial products. *)
  let acc = ref (Array.make (2 * bits) Logic.Expr.fls) in
  for j = 0 to bits - 1 do
    let partial =
      Array.init (2 * bits) (fun i ->
          if i >= j && i - j < bits then v a_bits.(i - j) &&& v b_bits.(j)
          else Logic.Expr.fls)
    in
    let carry = ref Logic.Expr.fls in
    acc :=
      Array.init (2 * bits) (fun i ->
          let x = (!acc).(i) and y = partial.(i) in
          let c = !carry in
          let sum =
            Builder.emit b (Printf.sprintf "s%d_%d" j i) (x ^^^ y ^^^ c)
          in
          carry :=
            Builder.wire
              (Builder.emit b
                 (Printf.sprintf "c%d_%d" j i)
                 ((x &&& y) ||| (c &&& (x ^^^ y))));
          Builder.wire sum)
  done;
  let outputs =
    List.init (2 * bits) (fun i ->
        Builder.emit b (Printf.sprintf "p%d" i) (!acc).(i))
  in
  Builder.finish b
    ~name:(Printf.sprintf "mul%d" bits)
    ~inputs:(Array.to_list a_bits @ Array.to_list b_bits)
    ~outputs

let max_unit ~bits () =
  let b = Builder.create () in
  let a_bits = Builder.input_vector "a" bits in
  let b_bits = Builder.input_vector "b" bits in
  (* a >= b via the MSB-first scan. *)
  let eq = ref (Builder.emit b "eq_init" Logic.Expr.tru) in
  let lt = ref (Builder.emit b "lt_init" Logic.Expr.fls) in
  for i = bits - 1 downto 0 do
    let ai = v a_bits.(i) and bi = v b_bits.(i) in
    lt :=
      Builder.emit b
        (Printf.sprintf "lt_%d" i)
        (Builder.wire !lt ||| (Builder.wire !eq &&& (nt ai &&& bi)));
    eq :=
      Builder.emit b (Printf.sprintf "eq_%d" i)
        (Builder.wire !eq &&& Logic.Expr.xnor ai bi)
  done;
  let a_wins = Builder.emit b "a_wins" (nt (Builder.wire !lt)) in
  let outputs =
    List.init bits (fun i ->
        Builder.emit b
          (Printf.sprintf "m%d" i)
          (Logic.Expr.ite (Builder.wire a_wins) (v a_bits.(i)) (v b_bits.(i))))
  in
  Builder.finish b
    ~name:(Printf.sprintf "max%d" bits)
    ~inputs:(Array.to_list a_bits @ Array.to_list b_bits)
    ~outputs:(outputs @ [ a_wins ])
