(** Error-control circuits: the c499/c1355/c1908 functional analogues
    (XOR-dominated single-error-correcting logic). *)

val parity_tree : width:int -> unit -> Logic.Netlist.t
(** One output: XOR of all inputs. *)

val hamming_encoder : data_bits:int -> unit -> Logic.Netlist.t
(** Outputs the check bits of a (shortened) Hamming code: check bit [j]
    is the parity of the data bits whose (1-based) codeword position has
    bit [j] set. *)

val hamming_corrector :
  ?extra_inputs:int -> data_bits:int -> unit -> Logic.Netlist.t
(** The c499/c1355 flavour: receives [data_bits] data bits and the
    corresponding check bits, recomputes the syndrome and outputs the
    corrected data word. [extra_inputs] appends enable lines that gate the
    correction (default 0) so the interface can be padded to a target
    input count. *)

val sec_ded : data_bits:int -> unit -> Logic.Netlist.t
(** The c1908 flavour: corrected data word plus [single_error] and
    [double_error] flags (extended Hamming with overall parity). *)

val num_check_bits : data_bits:int -> int
(** Check bits of the (shortened) Hamming code for a given data width. *)
