(** Arithmetic circuit generators (little-endian bit vectors).

    These provide the functional analogues of the arithmetic ISCAS85
    circuits (ALUs, adders, comparators) used in the paper's Table I/IV. *)

val ripple_adder : ?with_cin:bool -> bits:int -> unit -> Logic.Netlist.t
(** Inputs [a0..], [b0..] (and [cin]); outputs [s0..], [cout]. *)

val subtractor : bits:int -> unit -> Logic.Netlist.t
(** Two's-complement [a − b]; outputs difference and borrow. *)

val comparator : bits:int -> unit -> Logic.Netlist.t
(** Outputs [eq], [lt], [gt] of unsigned [a] vs [b]. *)

val incrementer : bits:int -> unit -> Logic.Netlist.t

val majority : width:int -> unit -> Logic.Netlist.t
(** Single output: at least ⌈(width+1)/2⌉ of the inputs are 1. *)

val alu : bits:int -> unit -> Logic.Netlist.t
(** A c880/c3540-style ALU slice: two operand words, a 2-bit opcode
    selecting AND/OR/XOR/ADD, plus carry-in. Outputs: result word, carry,
    zero flag, parity flag. *)

val alu_with_flags : bits:int -> unit -> Logic.Netlist.t
(** Wider ALU (3-bit opcode: AND/OR/XOR/ADD/SUB/INC/PASS/NOT) with
    zero/negative/carry/overflow/parity flags — the c3540 analogue. *)

val adder_comparator : bits:int -> unit -> Logic.Netlist.t
(** The c7552 flavour: sum of two words plus unsigned comparison flags of
    the same words and a parity of the sum. *)

val barrel_shifter : bits:int -> unit -> Logic.Netlist.t
(** Logical left shift of a [bits]-wide word by a ⌈log2 bits⌉-bit amount
    (zeros shifted in); a log-depth mux network. *)

val multiplier : bits:int -> unit -> Logic.Netlist.t
(** Unsigned array multiplier: [2·bits] product outputs. BDDs of
    multipliers blow up by design — this is the stress workload the paper
    alludes to when excluding arithmetic circuits from Fig 13. *)

val max_unit : bits:int -> unit -> Logic.Netlist.t
(** Outputs max(a, b) (unsigned) plus an [a_wins] flag. *)
