(** Control-dominated circuit generators: the EPFL-control analogues and
    the c432 interrupt controller flavour.

    Interface sizes are parametric so the suite can instantiate them with
    the paper's Table I input/output counts. *)

val decoder : select_bits:int -> unit -> Logic.Netlist.t
(** [dec]: full binary decoder, [2^select_bits] one-hot outputs. *)

val priority_encoder : width:int -> unit -> Logic.Netlist.t
(** [priority]: index of the highest-priority (lowest-index) asserted
    request in binary, plus a [valid] line. Outputs ⌈log2 width⌉ + 1. *)

val round_robin_arbiter : width:int -> unit -> Logic.Netlist.t
(** [arbiter]: [width] request lines and [width] mask (pointer) lines;
    grants the first masked request, else the first request; outputs the
    one-hot grant vector plus an [any_grant] line (2·width inputs,
    width+1 outputs). *)

val interrupt_controller : channels:int -> unit -> Logic.Netlist.t
(** The c432 flavour: [channels] request lines plus one enable line per
    group of three channels. Outputs the binary index of the
    highest-priority enabled request, a [pending] flag, and the parity of
    the enabled requests. *)

val router : addr_bits:int -> payload_bits:int -> unit -> Logic.Netlist.t
(** The EPFL [router] flavour: an XY-style route-compute unit comparing a
    destination address to the local address, plus credit gating of the
    payload strobes. Inputs: 2·addr_bits + payload_bits + 4 credit lines.
    Outputs: 5 direction requests, payload strobes, parity. *)

val bus_controller : unit -> Logic.Netlist.t
(** The [i2c] flavour: a serial bus-master control block — command
    decoding, next-state logic for a byte/bit counter FSM, shift register
    steering and status flags. 147 inputs, 142 outputs, fixed interface. *)

val int2float : int_bits:int -> unit -> Logic.Netlist.t
(** The [int2float] flavour: converts a signed [int_bits]-bit integer to
    a small float (sign, 3-bit exponent, 3-bit mantissa): leading-one
    detection + shift. 7 outputs. *)

val cavlc_decoder : unit -> Logic.Netlist.t
(** The [cavlc] flavour: decodes a 10-bit prefix codeword into
    coeff-token fields (total coefficients, trailing ones, code length) —
    10 inputs, 11 outputs, fixed interface. *)

val opcode_decoder : unit -> Logic.Netlist.t
(** The [ctrl] flavour: a RISC-style 7-bit opcode to 26 one-hot-ish
    control lines. *)
