(** The benchmark suite: functional analogues of the nine ISCAS85 and
    eight EPFL-control circuits of the paper's Table I.

    The original netlists are not redistributable in this environment, so
    each entry is a parametric generator with the same (or near-identical)
    interface size and the same functional flavour (see DESIGN.md §2 for
    the substitution rationale). [paper_*] fields record the Table I values
    for the experiment reports. *)

type category = Iscas85 | Epfl_control

type entry = {
  name : string;  (** the paper's benchmark name *)
  category : category;
  generate : unit -> Logic.Netlist.t;
  paper_inputs : int;
  paper_outputs : int;
  paper_nodes : int;  (** Table I BDD nodes *)
  paper_edges : int;
  description : string;
}

val all : entry list
(** In the paper's Table I order: ISCAS85 then EPFL control. *)

val iscas85 : entry list
val epfl_control : entry list

val find : string -> entry
(** @raise Not_found for an unknown benchmark name. *)

val names : string list

val combine : name:string -> Logic.Netlist.t list -> Logic.Netlist.t
(** Disjoint parallel composition: wires of the [i]-th block are prefixed
    with ["uI_"]; inputs and outputs are concatenated. *)

val small : entry list
(** The benchmarks whose exact MIP labeling finishes quickly — the subset
    used by the γ-sweep experiments (Table II flavour). *)
