let v = Logic.Expr.var
let nt = Logic.Expr.not_
let ( &&& ) a b = Logic.Expr.and_ [ a; b ]
let ( ||| ) a b = Logic.Expr.or_ [ a; b ]
let ( ^^^ ) a b = Logic.Expr.xor a b

let minterm wires k =
  Logic.Expr.and_
    (List.init (Array.length wires) (fun j ->
         if k land (1 lsl j) <> 0 then v wires.(j) else nt (v wires.(j))))

let decoder ~select_bits () =
  let b = Builder.create () in
  let sel = Builder.input_vector "s" select_bits in
  let outputs =
    List.init (1 lsl select_bits) (fun k ->
        Builder.emit b (Printf.sprintf "y%d" k) (minterm sel k))
  in
  Builder.finish b ~name:(Printf.sprintf "dec%d" select_bits)
    ~inputs:(Array.to_list sel) ~outputs

(* Priority chain: none_before.(i) = no request among 0..i-1. *)
let priority_chain b ~prefix reqs =
  let width = Array.length reqs in
  let none = Array.make (width + 1) "" in
  none.(0) <- Builder.emit b (prefix ^ "_none0") Logic.Expr.tru;
  for i = 0 to width - 1 do
    none.(i + 1) <-
      Builder.emit b
        (Printf.sprintf "%s_none%d" prefix (i + 1))
        (Builder.wire none.(i) &&& nt reqs.(i))
  done;
  Array.init width (fun i ->
      Builder.emit b (Printf.sprintf "%s_first%d" prefix i)
        (reqs.(i) &&& Builder.wire none.(i)))

let log2_ceil w =
  let rec go k = if 1 lsl k >= w then k else go (k + 1) in
  go 0

let priority_encoder ~width () =
  let b = Builder.create () in
  let reqs = Builder.input_vector "r" width in
  let first = priority_chain b ~prefix:"pe" (Builder.vars reqs) in
  let bits = log2_ceil width in
  let index =
    List.init bits (fun j ->
        let terms =
          Array.to_list first
          |> List.mapi (fun i f -> i, f)
          |> List.filter (fun (i, _) -> i land (1 lsl j) <> 0)
          |> List.map (fun (_, f) -> Builder.wire f)
        in
        Builder.emit b (Printf.sprintf "idx%d" j) (Logic.Expr.or_ terms))
  in
  let valid =
    Builder.emit b "valid"
      (Logic.Expr.or_ (Array.to_list (Builder.vars reqs)))
  in
  Builder.finish b ~name:(Printf.sprintf "priority%d" width)
    ~inputs:(Array.to_list reqs)
    ~outputs:(index @ [ valid ])

let round_robin_arbiter ~width () =
  let b = Builder.create () in
  let reqs = Builder.input_vector "r" width in
  let masks = Builder.input_vector "m" width in
  let masked =
    Array.init width (fun i ->
        Builder.emit b (Printf.sprintf "mk%d" i) (v reqs.(i) &&& v masks.(i)))
  in
  let any_masked =
    Builder.emit b "any_masked"
      (Logic.Expr.or_ (Array.to_list (Array.map Builder.wire masked)))
  in
  let first_masked =
    priority_chain b ~prefix:"fm" (Array.map Builder.wire masked)
  in
  let first_any = priority_chain b ~prefix:"fa" (Builder.vars reqs) in
  let grants =
    List.init width (fun i ->
        Builder.emit b
          (Printf.sprintf "g%d" i)
          ((Builder.wire any_masked &&& Builder.wire first_masked.(i))
           ||| (nt (Builder.wire any_masked) &&& Builder.wire first_any.(i))))
  in
  let any_grant =
    Builder.emit b "any_grant"
      (Logic.Expr.or_ (Array.to_list (Builder.vars reqs)))
  in
  Builder.finish b ~name:(Printf.sprintf "arbiter%d" width)
    ~inputs:(Array.to_list reqs @ Array.to_list masks)
    ~outputs:(grants @ [ any_grant ])

let interrupt_controller ~channels () =
  let b = Builder.create () in
  let groups = (channels + 2) / 3 in
  let reqs = Builder.input_vector "irq" channels in
  let enables = Builder.input_vector "en" groups in
  let enabled =
    Array.init channels (fun i ->
        Builder.emit b
          (Printf.sprintf "act%d" i)
          (v reqs.(i) &&& v enables.(i / 3)))
  in
  let first =
    priority_chain b ~prefix:"ic" (Array.map Builder.wire enabled)
  in
  let bits = log2_ceil channels in
  let index =
    List.init bits (fun j ->
        let terms =
          Array.to_list first
          |> List.mapi (fun i f -> i, f)
          |> List.filter (fun (i, _) -> i land (1 lsl j) <> 0)
          |> List.map (fun (_, f) -> Builder.wire f)
        in
        Builder.emit b (Printf.sprintf "vec%d" j) (Logic.Expr.or_ terms))
  in
  let pending =
    Builder.emit b "pending"
      (Logic.Expr.or_ (Array.to_list (Array.map Builder.wire enabled)))
  in
  let parity =
    Builder.emit b "parity"
      (Array.fold_left
         (fun acc e -> acc ^^^ Builder.wire e)
         Logic.Expr.fls enabled)
  in
  Builder.finish b
    ~name:(Printf.sprintf "intctl%d" channels)
    ~inputs:(Array.to_list reqs @ Array.to_list enables)
    ~outputs:(index @ [ pending; parity ])

(* Unsigned a > b and a = b over equal-width vectors, as expressions
   emitted through the builder. *)
let compare_vectors b ~prefix xs ys =
  let bits = Array.length xs in
  let eq = ref (Builder.emit b (prefix ^ "_eqi") Logic.Expr.tru) in
  let gt = ref (Builder.emit b (prefix ^ "_gti") Logic.Expr.fls) in
  for i = bits - 1 downto 0 do
    gt :=
      Builder.emit b
        (Printf.sprintf "%s_gt%d" prefix i)
        (Builder.wire !gt ||| (Builder.wire !eq &&& (xs.(i) &&& nt ys.(i))));
    eq :=
      Builder.emit b
        (Printf.sprintf "%s_eq%d" prefix i)
        (Builder.wire !eq &&& Logic.Expr.xnor xs.(i) ys.(i))
  done;
  Builder.wire !gt, Builder.wire !eq

let router ~addr_bits ~payload_bits () =
  let b = Builder.create () in
  let dest_x = Builder.input_vector "dx" addr_bits in
  let dest_y = Builder.input_vector "dy" addr_bits in
  let local_x = Builder.input_vector "lx" addr_bits in
  let local_y = Builder.input_vector "ly" addr_bits in
  let payload = Builder.input_vector "p" payload_bits in
  let credits = Builder.input_vector "cr" 4 in
  let gt_x, eq_x = compare_vectors b ~prefix:"x" (Builder.vars dest_x) (Builder.vars local_x) in
  let gt_y, eq_y = compare_vectors b ~prefix:"y" (Builder.vars dest_y) (Builder.vars local_y) in
  (* XY routing: resolve X first, then Y. *)
  let east = Builder.emit b "east" (gt_x &&& v credits.(0)) in
  let west = Builder.emit b "west" (nt gt_x &&& nt eq_x &&& v credits.(1)) in
  let north = Builder.emit b "north" (eq_x &&& gt_y &&& v credits.(2)) in
  let south = Builder.emit b "south" (eq_x &&& nt gt_y &&& nt eq_y &&& v credits.(3)) in
  let local_out = Builder.emit b "eject" (eq_x &&& eq_y) in
  let forwarding =
    Builder.emit b "fwd"
      (Logic.Expr.or_
         [
           Builder.wire east; Builder.wire west; Builder.wire north;
           Builder.wire south; Builder.wire local_out;
         ])
  in
  let strobes =
    List.init payload_bits (fun i ->
        Builder.emit b (Printf.sprintf "q%d" i)
          (v payload.(i) &&& Builder.wire forwarding))
  in
  Builder.finish b ~name:"router"
    ~inputs:
      (Array.to_list dest_x @ Array.to_list dest_y @ Array.to_list local_x
       @ Array.to_list local_y @ Array.to_list payload @ Array.to_list credits)
    ~outputs:([ east; west; north; south; local_out ] @ strobes @ [ forwarding ])

let int2float ~int_bits () =
  let b = Builder.create () in
  let x = Builder.input_vector "x" int_bits in
  let mag_bits = int_bits - 1 in
  let sign = x.(int_bits - 1) in
  (* |x|: conditional two's complement of the low bits. *)
  let borrow = ref (Builder.emit b "bw0" Logic.Expr.tru) in
  let mag =
    Array.init mag_bits (fun i ->
        let xi = v x.(i) in
        (* Two's-complement negation by the copy-then-invert scan: bits up
           to and including the lowest 1 pass through, the rest invert.
           [borrow] holds "no 1 seen yet below bit i". *)
        let inverted = xi ^^^ nt (Builder.wire !borrow) in
        let m =
          Builder.emit b (Printf.sprintf "mag%d" i)
            (Logic.Expr.ite (v sign) inverted xi)
        in
        borrow :=
          Builder.emit b (Printf.sprintf "bw%d" (i + 1))
            (Builder.wire !borrow &&& nt xi);
        m)
  in
  (* Leading-one detection from the MSB down. *)
  let first =
    priority_chain b ~prefix:"lod"
      (Array.init mag_bits (fun i -> Builder.wire mag.(mag_bits - 1 - i)))
  in
  (* first.(k) set ⇔ leading one at position mag_bits-1-k; exponent =
     position, saturated to 3 bits. *)
  let exp_bits = 3 in
  let exponent =
    List.init exp_bits (fun j ->
        let terms =
          List.init mag_bits (fun k ->
              let pos = mag_bits - 1 - k in
              let value = min pos 7 in
              if value land (1 lsl j) <> 0 then Builder.wire first.(k)
              else Logic.Expr.fls)
        in
        Builder.emit b (Printf.sprintf "e%d" j) (Logic.Expr.or_ terms))
  in
  (* Mantissa: the three bits right below the leading one. *)
  let mantissa =
    List.init 3 (fun j ->
        let terms =
          List.init mag_bits (fun k ->
              let pos = mag_bits - 1 - k in
              let src = pos - 1 - j in
              if src >= 0 then Builder.wire first.(k) &&& Builder.wire mag.(src)
              else Logic.Expr.fls)
        in
        Builder.emit b (Printf.sprintf "m%d" j) (Logic.Expr.or_ terms))
  in
  let sign_out = Builder.emit b "fsign" (v sign) in
  Builder.finish b ~name:"int2float" ~inputs:(Array.to_list x)
    ~outputs:((sign_out :: exponent) @ mantissa)

let cavlc_decoder () =
  let b = Builder.create () in
  let code = Builder.input_vector "w" 10 in
  (* Leading zeros of the codeword, MSB first. *)
  let first =
    priority_chain b ~prefix:"clz"
      (Array.init 10 (fun i -> v code.(9 - i)))
  in
  (* Suffix bits: the two bits after the leading one. *)
  let suffix j =
    let terms =
      List.init 10 (fun k ->
          let pos = 9 - k in
          let src = pos - 1 - j in
          if src >= 0 then Builder.wire first.(k) &&& v code.(src)
          else Logic.Expr.fls)
    in
    Builder.emit b (Printf.sprintf "sfx%d" j) (Logic.Expr.or_ terms)
  in
  let s0 = suffix 0 and s1 = suffix 1 in
  (* total_coeff = 2·L + suffix0 (saturating 5 bits), L = leading zeros. *)
  let total_coeff =
    List.init 5 (fun j ->
        let terms =
          List.init 10 (fun k ->
              (* first.(k) ⇔ L = k *)
              let base = 2 * k in
              let with_s0 = (base + 1) land (1 lsl j) <> 0 in
              let without = base land (1 lsl j) <> 0 in
              let f = Builder.wire first.(k) in
              Logic.Expr.or_
                [
                  (if with_s0 then f &&& Builder.wire s0 else Logic.Expr.fls);
                  (if without then f &&& nt (Builder.wire s0) else Logic.Expr.fls);
                ])
        in
        Builder.emit b (Printf.sprintf "tc%d" j) (Logic.Expr.or_ terms))
  in
  let t1 =
    [
      Builder.emit b "t1_0" (Builder.wire s0 ^^^ Builder.wire s1);
      Builder.emit b "t1_1" (Builder.wire s0 &&& Builder.wire s1);
    ]
  in
  (* code length = L + 3, saturating at 12 (4 bits). *)
  let code_len =
    List.init 4 (fun j ->
        let terms =
          List.init 10 (fun k ->
              let len = min (k + 3) 12 in
              if len land (1 lsl j) <> 0 then Builder.wire first.(k)
              else Logic.Expr.fls)
        in
        Builder.emit b (Printf.sprintf "len%d" j) (Logic.Expr.or_ terms))
  in
  Builder.finish b ~name:"cavlc" ~inputs:(Array.to_list code)
    ~outputs:(total_coeff @ t1 @ code_len)

let opcode_decoder () =
  let b = Builder.create () in
  let op = Builder.input_vector "op" 7 in
  let opcode = Array.sub op 3 4 in
  let funct = Array.sub op 0 3 in
  let is k = minterm opcode k in
  let fu k = minterm funct k in
  let emit name e = Builder.emit b name e in
  let outputs =
    [
      emit "is_load" (is 0);
      emit "is_store" (is 1);
      emit "is_branch" (is 2);
      emit "is_jump" (is 3);
      emit "is_alu_reg" (is 4);
      emit "is_alu_imm" (is 5);
      emit "is_lui" (is 6);
      emit "is_system" (is 7);
      emit "reg_write"
        (Logic.Expr.or_ [ is 0; is 3; is 4; is 5; is 6 ]);
      emit "mem_read" (is 0);
      emit "mem_write" (is 1);
      emit "branch_eq" (is 2 &&& fu 0);
      emit "branch_ne" (is 2 &&& fu 1);
      emit "branch_lt" (is 2 &&& fu 2);
      emit "branch_ge" (is 2 &&& fu 3);
      emit "alu_add" ((is 4 ||| is 5) &&& fu 0);
      emit "alu_sub" ((is 4 ||| is 5) &&& fu 1);
      emit "alu_and" ((is 4 ||| is 5) &&& fu 2);
      emit "alu_or" ((is 4 ||| is 5) &&& fu 3);
      emit "alu_xor" ((is 4 ||| is 5) &&& fu 4);
      emit "alu_shl" ((is 4 ||| is 5) &&& fu 5);
      emit "alu_shr" ((is 4 ||| is 5) &&& fu 6);
      emit "alu_slt" ((is 4 ||| is 5) &&& fu 7);
      emit "use_imm" (Logic.Expr.or_ [ is 0; is 1; is 5; is 6 ]);
      emit "illegal"
        (Logic.Expr.and_
           [ nt (is 0); nt (is 1); nt (is 2); nt (is 3); nt (is 4);
             nt (is 5); nt (is 6); nt (is 7) ]);
      emit "halt" (is 7 &&& fu 7);
    ]
  in
  Builder.finish b ~name:"ctrl" ~inputs:(Array.to_list op) ~outputs

let bus_controller () =
  let b = Builder.create () in
  (* Interface: chosen so the pin count matches the EPFL i2c entry
     (147 inputs, 142 outputs). *)
  let state = Builder.input_vector "st" 8 in
  let cmd = Builder.input_vector "cmd" 8 in
  let bit_cnt = Builder.input_vector "bc" 4 in
  let byte_cnt = Builder.input_vector "yc" 8 in
  let shift = Builder.input_vector "sh" 32 in
  let load_val = Builder.input_vector "ld" 32 in
  let prescale = Builder.input_vector "ps" 16 in
  let prescale_cnt = Builder.input_vector "pc" 16 in
  let slave_addr = Builder.input_vector "sa" 10 in
  let addr_reg = Builder.input_vector "ar" 10 in
  let pins = [| "scl_in"; "sda_in"; "enable" |] in
  let inputs =
    Array.to_list state @ Array.to_list cmd @ Array.to_list bit_cnt
    @ Array.to_list byte_cnt @ Array.to_list shift @ Array.to_list load_val
    @ Array.to_list prescale @ Array.to_list prescale_cnt
    @ Array.to_list slave_addr @ Array.to_list addr_reg @ Array.to_list pins
  in
  let enable = v pins.(2) and scl_in = v pins.(0) and sda_in = v pins.(1) in
  (* Command decode. *)
  let cmd_start = Builder.emit b "c_start" (v cmd.(0) &&& enable) in
  let cmd_stop = Builder.emit b "c_stop" (v cmd.(1) &&& enable) in
  let cmd_read = Builder.emit b "c_read" (v cmd.(2) &&& enable) in
  let cmd_write = Builder.emit b "c_write" (v cmd.(3) &&& enable) in
  let cmd_ack = Builder.emit b "c_ack" (v cmd.(4)) in
  (* Prescaler: tick when the counter reaches the divisor. *)
  let _, tick_eq =
    compare_vectors b ~prefix:"psc" (Builder.vars prescale_cnt)
      (Builder.vars prescale)
  in
  let tick = Builder.emit b "tick" (tick_eq &&& enable) in
  (* Prescale counter increment (wraps to 0 on tick). *)
  let carry = ref (Builder.emit b "pci0" Logic.Expr.tru) in
  let prescale_next =
    Array.mapi
      (fun i w ->
         let inc = v w ^^^ Builder.wire !carry in
         carry :=
           Builder.emit b (Printf.sprintf "pci%d" (i + 1))
             (v w &&& Builder.wire !carry);
         Builder.emit b
           (Printf.sprintf "pcn%d" i)
           (Logic.Expr.ite (Builder.wire tick) Logic.Expr.fls inc))
      prescale_cnt
  in
  (* Bit counter: increments on tick, clears on byte boundary (=8). *)
  let bit_is_7 =
    Builder.emit b "bit7"
      (v bit_cnt.(0) &&& v bit_cnt.(1) &&& v bit_cnt.(2) &&& nt (v bit_cnt.(3)))
  in
  let carry = ref (Builder.wire tick) in
  let bit_next =
    Array.mapi
      (fun i w ->
         let inc = v w ^^^ !carry in
         let c = v w &&& !carry in
         carry := Builder.wire (Builder.emit b (Printf.sprintf "bci%d" (i + 1)) c);
         Builder.emit b
           (Printf.sprintf "bcn%d" i)
           (Logic.Expr.ite
              (Builder.wire bit_is_7 &&& Builder.wire tick)
              Logic.Expr.fls inc))
      bit_cnt
  in
  (* Byte counter: increments when a byte completes. *)
  let byte_done =
    Builder.emit b "byte_done" (Builder.wire bit_is_7 &&& Builder.wire tick)
  in
  let carry = ref (Builder.wire byte_done) in
  let byte_next =
    Array.mapi
      (fun i w ->
         let inc = v w ^^^ !carry in
         let c = v w &&& !carry in
         carry := Builder.wire (Builder.emit b (Printf.sprintf "yci%d" (i + 1)) c);
         Builder.emit b (Printf.sprintf "ycn%d" i) inc)
      byte_cnt
  in
  (* Address match. *)
  let _, addr_eq =
    compare_vectors b ~prefix:"adr" (Builder.vars slave_addr)
      (Builder.vars addr_reg)
  in
  let addr_match = Builder.emit b "addr_match" (addr_eq &&& enable) in
  (* One-hot-ish state decode over the 8 state bits (3 used as encoded
     state, 5 as condition flags, in the spirit of a flattened FSM). *)
  let st_idle = Builder.emit b "st_idle" (minterm (Array.sub state 0 3) 0) in
  let st_start = Builder.emit b "st_start" (minterm (Array.sub state 0 3) 1) in
  let st_addr = Builder.emit b "st_addr" (minterm (Array.sub state 0 3) 2) in
  let st_tx = Builder.emit b "st_tx" (minterm (Array.sub state 0 3) 3) in
  let st_rx = Builder.emit b "st_rx" (minterm (Array.sub state 0 3) 4) in
  let st_ack = Builder.emit b "st_ack" (minterm (Array.sub state 0 3) 5) in
  let st_stop = Builder.emit b "st_stop" (minterm (Array.sub state 0 3) 6) in
  let st_err = Builder.emit b "st_err" (minterm (Array.sub state 0 3) 7) in
  let w = Builder.wire in
  (* Next-state logic (3 encoded bits + 5 flag bits). *)
  let goto_start = Builder.emit b "goto_start" (w st_idle &&& w cmd_start) in
  let goto_addr = Builder.emit b "goto_addr" (w st_start &&& w tick) in
  let goto_tx =
    Builder.emit b "goto_tx"
      (w st_addr &&& w byte_done &&& w addr_match &&& w cmd_write)
  in
  let goto_rx =
    Builder.emit b "goto_rx"
      (w st_addr &&& w byte_done &&& w addr_match &&& w cmd_read)
  in
  let goto_ack =
    Builder.emit b "goto_ack" ((w st_tx ||| w st_rx) &&& w byte_done)
  in
  let goto_stop =
    Builder.emit b "goto_stop" (w st_ack &&& (w cmd_stop ||| nt (w cmd_ack)))
  in
  let goto_err =
    Builder.emit b "goto_err"
      (w st_addr &&& w byte_done &&& nt (w addr_match))
  in
  let encode k sel =
    List.init 3 (fun j -> if k land (1 lsl j) <> 0 then sel else Logic.Expr.fls)
  in
  let next_state_enc =
    List.init 3 (fun j ->
        let contributions =
          List.concat
            [
              encode 1 (w goto_start); encode 2 (w goto_addr);
              encode 3 (w goto_tx); encode 4 (w goto_rx);
              encode 5 (w goto_ack); encode 6 (w goto_stop);
              encode 7 (w goto_err);
            ]
          |> List.filteri (fun i _ -> i mod 3 = j)
        in
        Builder.emit b (Printf.sprintf "nst%d" j) (Logic.Expr.or_ contributions))
  in
  let next_flags =
    List.init 5 (fun j ->
        Builder.emit b
          (Printf.sprintf "nfl%d" j)
          (v state.(3 + j) ^^^ (w tick &&& v cmd.(5 + (j mod 3)))))
  in
  (* Shift register: load on command, else shift left on tick with sda_in. *)
  let loading = Builder.emit b "loading" (w cmd_write &&& w st_idle) in
  let shifting = Builder.emit b "shifting" ((w st_tx ||| w st_rx) &&& w tick) in
  let shift_next =
    Array.mapi
      (fun i _ ->
         let shifted = if i = 0 then sda_in else v shift.(i - 1) in
         Builder.emit b
           (Printf.sprintf "shn%d" i)
           (Logic.Expr.or_
              [
                w loading &&& v load_val.(i);
                w shifting &&& shifted;
                nt (w loading) &&& nt (w shifting) &&& v shift.(i);
              ]))
      shift
  in
  (* Data out: shift register gated by byte completion in receive state. *)
  let rx_valid = Builder.emit b "rx_valid" (w st_rx &&& w byte_done) in
  let data_out =
    Array.mapi
      (fun i _ ->
         Builder.emit b (Printf.sprintf "do%d" i) (w rx_valid &&& v shift.(i)))
      shift
  in
  (* Status + pin drivers. *)
  let busy = Builder.emit b "busy" (nt (w st_idle) &&& enable) in
  let done_ = Builder.emit b "done" (w st_stop &&& w tick) in
  let ack_out = Builder.emit b "ack_out" (w st_ack &&& w cmd_ack) in
  let arb_lost =
    Builder.emit b "arb_lost" (w st_tx &&& nt sda_in &&& v shift.(31))
  in
  let sda_out =
    Builder.emit b "sda_out"
      (Logic.Expr.or_ [ w st_tx &&& v shift.(31); w st_ack &&& w cmd_ack ])
  in
  let scl_out =
    Builder.emit b "scl_out" (nt (w st_idle) &&& (scl_in ||| w tick))
  in
  let cmd_decode =
    List.init 16 (fun k ->
        Builder.emit b
          (Printf.sprintf "dec%d" k)
          (minterm (Array.sub cmd 0 4) k &&& enable))
  in
  let counter_flags =
    List.init 8 (fun k ->
        Builder.emit b
          (Printf.sprintf "ycmp%d" k)
          (minterm (Array.sub byte_cnt 0 3) (k land 7) &&& w byte_done))
  in
  let outputs =
    next_state_enc @ next_flags
    @ Array.to_list bit_next @ Array.to_list byte_next
    @ Array.to_list prescale_next @ Array.to_list shift_next
    @ Array.to_list data_out
    @ [ tick; addr_match; busy; done_; ack_out; arb_lost; sda_out; scl_out;
        byte_done; rx_valid ]
    @ [ st_idle; st_start; st_addr; st_tx; st_rx; st_ack; st_stop; st_err ]
    @ cmd_decode @ counter_flags
  in
  Builder.finish b ~name:"i2c_ctrl" ~inputs ~outputs
