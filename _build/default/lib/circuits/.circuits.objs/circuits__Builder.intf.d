lib/circuits/builder.mli: Logic
