lib/circuits/suite.ml: Arith Control Ecc List Logic Printf String
