lib/circuits/arith.mli: Logic
