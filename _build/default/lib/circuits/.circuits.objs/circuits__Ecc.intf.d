lib/circuits/ecc.mli: Logic
