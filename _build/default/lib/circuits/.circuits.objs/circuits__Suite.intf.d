lib/circuits/suite.mli: Logic
