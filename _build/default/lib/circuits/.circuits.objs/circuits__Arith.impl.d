lib/circuits/arith.ml: Array Builder List Logic Printf
