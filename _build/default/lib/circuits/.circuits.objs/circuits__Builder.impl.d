lib/circuits/builder.ml: Array List Logic Printf
