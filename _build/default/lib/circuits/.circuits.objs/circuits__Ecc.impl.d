lib/circuits/ecc.ml: Array Builder List Logic Printf
