lib/circuits/control.ml: Array Builder List Logic Printf
