lib/circuits/control.mli: Logic
