(** Imperative netlist builder used by the circuit generators.

    Accumulates nodes in emission order (which is therefore the topological
    order) and hands out fresh wire names. *)

type t

val create : unit -> t

val fresh : t -> string -> string
(** [fresh b prefix] returns a new unique wire name [prefix ^ "_" ^ k]. *)

val emit : t -> string -> Logic.Expr.t -> string
(** [emit b wire e] adds node [wire = e] and returns [wire]. *)

val emit_fresh : t -> string -> Logic.Expr.t -> string
(** [emit_fresh b prefix e] emits under a fresh name and returns it. *)

val wire : string -> Logic.Expr.t
(** [Expr.var]; mnemonic re-export for generator code. *)

val finish :
  t -> name:string -> inputs:string list -> outputs:string list -> Logic.Netlist.t
(** Package the accumulated nodes.
    @raise Logic.Netlist.Ill_formed on validation failure. *)

(** {1 Bit-vector helpers} — vectors are little-endian ([.(0)] is the LSB). *)

val input_vector : string -> int -> string array
(** [input_vector "a" 4] is [[|"a0"; "a1"; "a2"; "a3"|]]. *)

val vars : string array -> Logic.Expr.t array
