type category = Iscas85 | Epfl_control

type entry = {
  name : string;
  category : category;
  generate : unit -> Logic.Netlist.t;
  paper_inputs : int;
  paper_outputs : int;
  paper_nodes : int;
  paper_edges : int;
  description : string;
}

let combine ~name netlists =
  let blocks =
    List.mapi
      (fun i nl -> Logic.Netlist.rename nl ~prefix:(Printf.sprintf "u%d_" i))
      netlists
  in
  let inputs = List.concat_map (fun (nl : Logic.Netlist.t) -> nl.inputs) blocks in
  let outputs = List.concat_map (fun (nl : Logic.Netlist.t) -> nl.outputs) blocks in
  let nodes = List.concat_map (fun (nl : Logic.Netlist.t) -> nl.nodes) blocks in
  Logic.Netlist.create ~name ~inputs ~outputs nodes

let renamed name nl = Logic.Netlist.create ~name ~inputs:nl.Logic.Netlist.inputs ~outputs:nl.Logic.Netlist.outputs nl.Logic.Netlist.nodes

let iscas85 =
  [
    {
      name = "c432";
      category = Iscas85;
      generate =
        (fun () -> renamed "c432" (Control.interrupt_controller ~channels:27 ()));
      paper_inputs = 36;
      paper_outputs = 7;
      paper_nodes = 1291;
      paper_edges = 2578;
      description = "27-channel interrupt controller";
    };
    {
      name = "c499";
      category = Iscas85;
      generate =
        (fun () ->
           renamed "c499" (Ecc.hamming_corrector ~extra_inputs:3 ~data_bits:32 ()));
      paper_inputs = 41;
      paper_outputs = 32;
      paper_nodes = 11146;
      paper_edges = 222164;
      description = "32-bit single-error-correcting circuit";
    };
    {
      name = "c880";
      category = Iscas85;
      generate =
        (fun () ->
           combine ~name:"c880"
             [
               Arith.alu_with_flags ~bits:16 ();
               Arith.comparator ~bits:11 ();
               Ecc.parity_tree ~width:3 ();
             ]);
      paper_inputs = 60;
      paper_outputs = 26;
      paper_nodes = 4431;
      paper_edges = 8858;
      description = "8-bit ALU (composite analogue)";
    };
    {
      name = "c1355";
      category = Iscas85;
      generate =
        (fun () ->
           renamed "c1355" (Ecc.hamming_corrector ~extra_inputs:3 ~data_bits:32 ()));
      paper_inputs = 41;
      paper_outputs = 32;
      paper_nodes = 11146;
      paper_edges = 222164;
      description = "32-bit SEC circuit (c499 expanded to NAND gates)";
    };
    {
      name = "c1908";
      category = Iscas85;
      generate = (fun () -> renamed "c1908" (Ecc.sec_ded ~data_bits:26 ()));
      paper_inputs = 33;
      paper_outputs = 25;
      paper_nodes = 28224;
      paper_edges = 56348;
      description = "16-bit SEC/DED circuit";
    };
    {
      name = "c2670";
      category = Iscas85;
      generate =
        (fun () ->
           combine ~name:"c2670"
             [
               Arith.alu_with_flags ~bits:32 ();
               Arith.comparator ~bits:32 ();
               Control.decoder ~select_bits:6 ();
               Control.round_robin_arbiter ~width:16 ();
               Ecc.hamming_encoder ~data_bits:57 ();
               Arith.incrementer ~bits:7 ();
             ]);
      paper_inputs = 233;
      paper_outputs = 140;
      paper_nodes = 6764;
      paper_edges = 12970;
      description = "12-bit ALU and controller (composite analogue)";
    };
    {
      name = "c3540";
      category = Iscas85;
      generate =
        (fun () ->
           combine ~name:"c3540"
             [ Arith.alu_with_flags ~bits:20 (); Ecc.parity_tree ~width:7 () ]);
      paper_inputs = 50;
      paper_outputs = 22;
      paper_nodes = 59265;
      paper_edges = 118442;
      description = "8-bit ALU with flags (composite analogue)";
    };
    {
      name = "c5315";
      category = Iscas85;
      generate =
        (fun () ->
           combine ~name:"c5315"
             [
               Arith.alu_with_flags ~bits:36 ();
               Arith.adder_comparator ~bits:32 ();
               Control.decoder ~select_bits:4 ();
               Control.priority_encoder ~width:26 ();
               Arith.incrementer ~bits:8 ();
             ]);
      paper_inputs = 178;
      paper_outputs = 123;
      paper_nodes = 14362;
      paper_edges = 28232;
      description = "9-bit ALU (composite analogue)";
    };
    {
      name = "c7552";
      category = Iscas85;
      generate =
        (fun () ->
           combine ~name:"c7552"
             [
               Arith.adder_comparator ~bits:48 ();
               Arith.adder_comparator ~bits:32 ();
               Arith.comparator ~bits:16 ();
               Ecc.parity_tree ~width:13 ();
             ]);
      paper_inputs = 207;
      paper_outputs = 108;
      paper_nodes = 90651;
      paper_edges = 180870;
      description = "32-bit adder/comparator (composite analogue)";
    };
  ]

let epfl_control =
  [
    {
      name = "arbiter";
      category = Epfl_control;
      generate = (fun () -> renamed "arbiter" (Control.round_robin_arbiter ~width:128 ()));
      paper_inputs = 256;
      paper_outputs = 129;
      paper_nodes = 25109;
      paper_edges = 50214;
      description = "round-robin arbiter, 128 requesters";
    };
    {
      name = "cavlc";
      category = Epfl_control;
      generate = (fun () -> Control.cavlc_decoder ());
      paper_inputs = 10;
      paper_outputs = 11;
      paper_nodes = 436;
      paper_edges = 868;
      description = "coeff-token decoder";
    };
    {
      name = "ctrl";
      category = Epfl_control;
      generate = (fun () -> Control.opcode_decoder ());
      paper_inputs = 7;
      paper_outputs = 26;
      paper_nodes = 89;
      paper_edges = 174;
      description = "opcode decoder";
    };
    {
      name = "dec";
      category = Epfl_control;
      generate = (fun () -> renamed "dec" (Control.decoder ~select_bits:8 ()));
      paper_inputs = 8;
      paper_outputs = 256;
      paper_nodes = 512;
      paper_edges = 1020;
      description = "8-to-256 decoder";
    };
    {
      name = "i2c";
      category = Epfl_control;
      generate = (fun () -> Control.bus_controller ());
      paper_inputs = 147;
      paper_outputs = 142;
      paper_nodes = 1204;
      paper_edges = 2404;
      description = "serial bus-master control logic";
    };
    {
      name = "int2float";
      category = Epfl_control;
      generate = (fun () -> Control.int2float ~int_bits:11 ());
      paper_inputs = 11;
      paper_outputs = 7;
      paper_nodes = 159;
      paper_edges = 314;
      description = "integer-to-float converter";
    };
    {
      name = "priority";
      category = Epfl_control;
      generate = (fun () -> renamed "priority" (Control.priority_encoder ~width:128 ()));
      paper_inputs = 128;
      paper_outputs = 8;
      paper_nodes = 772;
      paper_edges = 1540;
      description = "128-bit priority encoder";
    };
    {
      name = "router";
      category = Epfl_control;
      generate = (fun () -> renamed "router" (Control.router ~addr_bits:8 ~payload_bits:24 ()));
      paper_inputs = 60;
      paper_outputs = 30;
      paper_nodes = 219;
      paper_edges = 434;
      description = "NoC route-compute unit";
    };
  ]

let all = iscas85 @ epfl_control
let names = List.map (fun e -> e.name) all

let find name =
  match List.find_opt (fun e -> String.equal e.name name) all with
  | Some e -> e
  | None -> raise Not_found

let small =
  List.filter
    (fun e ->
       List.mem e.name
         [ "ctrl"; "int2float"; "router"; "cavlc"; "dec"; "priority"; "i2c" ])
    all
