type t = { mutable nodes : Logic.Netlist.node list; mutable counter : int }

let create () = { nodes = []; counter = 0 }

let fresh b prefix =
  let w = Printf.sprintf "%s_%d" prefix b.counter in
  b.counter <- b.counter + 1;
  w

let emit b wire e =
  b.nodes <- Logic.Netlist.n_expr wire e :: b.nodes;
  wire

let emit_fresh b prefix e = emit b (fresh b prefix) e
let wire = Logic.Expr.var

let finish b ~name ~inputs ~outputs =
  Logic.Netlist.create ~name ~inputs ~outputs (List.rev b.nodes)

let input_vector prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)
let vars = Array.map Logic.Expr.var
