let v = Logic.Expr.var
let ( ^^^ ) a b = Logic.Expr.xor a b

let xor_all = function
  | [] -> Logic.Expr.fls
  | e :: rest -> List.fold_left ( ^^^ ) e rest

let parity_tree ~width () =
  let b = Builder.create () in
  let xs = Builder.input_vector "x" width in
  let out =
    Builder.emit b "parity" (xor_all (Array.to_list (Builder.vars xs)))
  in
  Builder.finish b ~name:(Printf.sprintf "parity%d" width)
    ~inputs:(Array.to_list xs) ~outputs:[ out ]

let num_check_bits ~data_bits =
  (* Smallest r with 2^r ≥ data_bits + r + 1. *)
  let rec go r = if 1 lsl r >= data_bits + r + 1 then r else go (r + 1) in
  go 1

(* Codeword positions (1-based) of the data bits: the non-powers-of-two,
   in increasing order. *)
let data_positions ~data_bits =
  let is_pow2 x = x land (x - 1) = 0 in
  let rec go pos acc k =
    if k = data_bits then List.rev acc
    else if is_pow2 pos then go (pos + 1) acc k
    else go (pos + 1) (pos :: acc) (k + 1)
  in
  go 1 [] 0

let check_expr ~data_bits data_wires j =
  let positions = data_positions ~data_bits in
  let terms =
    List.mapi (fun i pos -> i, pos) positions
    |> List.filter (fun (_, pos) -> pos land (1 lsl j) <> 0)
    |> List.map (fun (i, _) -> v data_wires.(i))
  in
  xor_all terms

let hamming_encoder ~data_bits () =
  let b = Builder.create () in
  let data = Builder.input_vector "d" data_bits in
  let r = num_check_bits ~data_bits in
  let checks =
    List.init r (fun j ->
        Builder.emit b (Printf.sprintf "p%d" j) (check_expr ~data_bits data j))
  in
  Builder.finish b ~name:(Printf.sprintf "hamenc%d" data_bits)
    ~inputs:(Array.to_list data) ~outputs:checks

let hamming_corrector ?(extra_inputs = 0) ~data_bits () =
  let b = Builder.create () in
  let data = Builder.input_vector "d" data_bits in
  let r = num_check_bits ~data_bits in
  let checks = Builder.input_vector "c" r in
  let enables = Builder.input_vector "en" extra_inputs in
  (* Syndrome: received check bits vs recomputed parities. *)
  let syndrome =
    Array.init r (fun j ->
        Builder.emit b
          (Printf.sprintf "syn%d" j)
          (v checks.(j) ^^^ check_expr ~data_bits data j))
  in
  let enable =
    match Array.to_list enables with
    | [] -> Logic.Expr.tru
    | es -> Logic.Expr.and_ (List.map v es)
  in
  let positions = Array.of_list (data_positions ~data_bits) in
  let corrected =
    Array.mapi
      (fun i dw ->
         let pos = positions.(i) in
         (* Flip data bit i when the syndrome equals its position. *)
         let hit =
           Logic.Expr.and_
             (List.init r (fun j ->
                  if pos land (1 lsl j) <> 0 then v syndrome.(j)
                  else Logic.Expr.not_ (v syndrome.(j))))
         in
         Builder.emit b
           (Printf.sprintf "q%d" i)
           (v dw ^^^ Logic.Expr.and_ [ hit; enable ]))
      data
  in
  Builder.finish b
    ~name:(Printf.sprintf "hamcor%d" data_bits)
    ~inputs:(Array.to_list data @ Array.to_list checks @ Array.to_list enables)
    ~outputs:(Array.to_list corrected)

let sec_ded ~data_bits () =
  let b = Builder.create () in
  let data = Builder.input_vector "d" data_bits in
  let r = num_check_bits ~data_bits in
  let checks = Builder.input_vector "c" r in
  let overall = "po" in
  let syndrome =
    Array.init r (fun j ->
        Builder.emit b
          (Printf.sprintf "syn%d" j)
          (v checks.(j) ^^^ check_expr ~data_bits data j))
  in
  let syndrome_nonzero =
    Builder.emit b "syn_nz"
      (Logic.Expr.or_ (Array.to_list (Array.map (fun w -> v w) syndrome)))
  in
  let parity_mismatch =
    let all =
      Array.to_list (Builder.vars data)
      @ Array.to_list (Builder.vars checks)
      @ [ v overall ]
    in
    Builder.emit b "pmis" (xor_all all)
  in
  (* Extended Hamming decoding: parity mismatch + syndrome ⇒ single
     (correctable) error; syndrome without parity mismatch ⇒ double. *)
  let single =
    Builder.emit b "single_error"
      (Logic.Expr.and_ [ v parity_mismatch; v syndrome_nonzero ])
  in
  let double =
    Builder.emit b "double_error"
      (Logic.Expr.and_
         [ Logic.Expr.not_ (v parity_mismatch); v syndrome_nonzero ])
  in
  let positions = Array.of_list (data_positions ~data_bits) in
  let corrected =
    Array.mapi
      (fun i dw ->
         let pos = positions.(i) in
         let hit =
           Logic.Expr.and_
             (List.init r (fun j ->
                  if pos land (1 lsl j) <> 0 then v syndrome.(j)
                  else Logic.Expr.not_ (v syndrome.(j))))
         in
         Builder.emit b
           (Printf.sprintf "q%d" i)
           (v dw ^^^ Logic.Expr.and_ [ hit; v single ]))
      data
  in
  Builder.finish b
    ~name:(Printf.sprintf "secded%d" data_bits)
    ~inputs:(Array.to_list data @ Array.to_list checks @ [ overall ])
    ~outputs:(Array.to_list corrected @ [ single; double ])
