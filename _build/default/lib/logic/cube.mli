(** Cubes and two-level covers.

    A cube over [n] ordered inputs assigns each input one of three values:
    [Zero], [One] or [Dash] (don't care). A cover (list of cubes) denotes the
    disjunction of its cubes. Cubes are the row representation of PLA files
    and of BLIF [.names] tables. *)

type tri = Zero | One | Dash

type t = tri array
(** One cube; index [i] constrains input [i]. *)

val of_string : string -> t
(** Parses a row such as ["1-0"]. Accepted characters: ['0'], ['1'], ['-'].
    @raise Invalid_argument on any other character. *)

val to_string : t -> string

val matches : t -> bool array -> bool
(** [matches c inputs] is true when [inputs] lies inside the cube. Arrays
    must have equal length.
    @raise Invalid_argument on length mismatch. *)

val cover_eval : t list -> bool array -> bool
(** Evaluate a cover (OR of cubes) on an input point. *)

val to_expr : names:string array -> t -> Expr.t
(** Conjunction of literals of the cube, using [names.(i)] for input [i]. *)

val cover_to_expr : names:string array -> t list -> Expr.t
(** Disjunction of {!to_expr} over the cubes. The empty cover is [false]. *)

val minterms : t -> int -> int list
(** [minterms c n] lists the minterm indices (little-endian: bit [i] of the
    index is input [i]) covered by [c] over [n] inputs. Exponential in the
    number of dashes; intended for small [n]. *)

val pp : Format.formatter -> t -> unit
