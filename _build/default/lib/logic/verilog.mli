(** Reader for a gate-level structural Verilog subset.

    The paper's flow accepts Verilog, BLIF or PLA (§II-C); this module
    covers the structural netlist subset those benchmark files use:

    {v
      module name (ports);
        input  a, b;          // also: input [3:0] bus;
        output f;
        wire   t1, t2;
        and  g1 (t1, a, b);   // and/or/nand/nor/xor/xnor: out, in, in, ...
        not  g2 (t2, t1);     // not/buf: out, in
        assign f = t1 & ~t2;  // expression assigns (Parse syntax with ~ |)
      endmodule
    v}

    Vectors are flattened to [name[i]] wires. Comments ([//] and
    [/* ... */]), gate instances with or without instance names, and
    multiple declarations per keyword are supported. Behavioural
    constructs ([always], [reg], ...) are rejected. *)

exception Parse_error of { line : int; message : string }

val parse_string : string -> Netlist.t
(** @raise Parse_error on malformed or unsupported input.
    @raise Netlist.Ill_formed if the module is not combinational. *)

val parse_file : string -> Netlist.t

val to_string : Netlist.t -> string
(** Emits the netlist as a structural module with [assign] statements. *)

val write_file : string -> Netlist.t -> unit
