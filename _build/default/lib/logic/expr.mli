(** Boolean expressions over named variables.

    This is the front-end representation used to specify Boolean functions
    before they are compiled to BDDs ({!module:Bdd.Build}) or evaluated
    directly. Conjunction and disjunction are n-ary to keep parsed and
    generated formulas shallow. *)

type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t list  (** [And []] is [true] *)
  | Or of t list  (** [Or []] is [false] *)
  | Xor of t * t

(** {1 Smart constructors}

    The smart constructors perform light, local simplification (constant
    folding, flattening of nested [And]/[Or], double-negation removal). They
    never change the set of variables an expression may depend on in a way
    that affects semantics. *)

val tru : t
val fls : t
val const : bool -> t
val var : string -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val xor : t -> t -> t
val xnor : t -> t -> t
val nand : t list -> t
val nor : t list -> t
val implies : t -> t -> t
val ite : t -> t -> t -> t

(** {1 Observers} *)

val equal : t -> t -> bool
(** Structural equality (not semantic equivalence). *)

val compare : t -> t -> int

val vars : t -> string list
(** Sorted, duplicate-free list of variable names occurring in the
    expression. *)

val size : t -> int
(** Number of AST nodes. *)

val depth : t -> int
(** Height of the AST; a leaf has depth 1. *)

val eval : (string -> bool) -> t -> bool
(** [eval env e] evaluates [e] under the assignment [env].
    @raise Not_found if [env] raises on some variable of [e]. *)

val eval_list : (string * bool) list -> t -> bool
(** [eval_list bindings e] is {!eval} with an association-list environment.
    @raise Not_found if a variable of [e] is unbound. *)

val substitute : (string -> t option) -> t -> t
(** [substitute f e] replaces every [Var v] for which [f v = Some e'] by
    [e'], rebuilding with the smart constructors. *)

val cofactor : string -> bool -> t -> t
(** [cofactor v b e] is [e] with [v] fixed to [b], simplified. *)

val semantically_equal : t -> t -> bool
(** Exhaustive equivalence check over the union of the two variable sets.
    Exponential in the number of variables; intended for testing and for
    small functions (≤ 20 variables).
    @raise Invalid_argument if more than 24 distinct variables occur. *)

val pp : Format.formatter -> t -> unit
(** Prints with the concrete syntax accepted by {!module:Parse}:
    [!], [&], [^], [|], constants [0]/[1], and parentheses. *)

val to_string : t -> string
