type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t

let tru = Const true
let fls = Const false
let const b = Const b
let var v = Var v

let not_ = function
  | Const b -> Const (not b)
  | Not e -> e
  | e -> Not e

(* Flatten nested conjunctions, drop [true], short-circuit on [false]. *)
let and_ es =
  let exception Short in
  let rec gather acc = function
    | [] -> acc
    | Const false :: _ -> raise Short
    | Const true :: rest -> gather acc rest
    | And inner :: rest -> gather (gather acc inner) rest
    | e :: rest -> gather (e :: acc) rest
  in
  match gather [] es with
  | exception Short -> Const false
  | [] -> Const true
  | [ e ] -> e
  | acc -> And (List.rev acc)

let or_ es =
  let exception Short in
  let rec gather acc = function
    | [] -> acc
    | Const true :: _ -> raise Short
    | Const false :: rest -> gather acc rest
    | Or inner :: rest -> gather (gather acc inner) rest
    | e :: rest -> gather (e :: acc) rest
  in
  match gather [] es with
  | exception Short -> Const true
  | [] -> Const false
  | [ e ] -> e
  | acc -> Or (List.rev acc)

let xor a b =
  match a, b with
  | Const false, e | e, Const false -> e
  | Const true, e | e, Const true -> not_ e
  | a, b -> Xor (a, b)

let xnor a b = not_ (xor a b)
let nand es = not_ (and_ es)
let nor es = not_ (or_ es)
let implies a b = or_ [ not_ a; b ]
let ite c t e = or_ [ and_ [ c; t ]; and_ [ not_ c; e ] ]
let equal = Stdlib.( = )
let compare = Stdlib.compare

let vars e =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Const _ -> acc
    | Var v -> S.add v acc
    | Not e -> go acc e
    | And es | Or es -> List.fold_left go acc es
    | Xor (a, b) -> go (go acc a) b
  in
  S.elements (go S.empty e)

let rec size = function
  | Const _ | Var _ -> 1
  | Not e -> 1 + size e
  | And es | Or es -> List.fold_left (fun n e -> n + size e) 1 es
  | Xor (a, b) -> 1 + size a + size b

let rec depth = function
  | Const _ | Var _ -> 1
  | Not e -> 1 + depth e
  | And es | Or es -> 1 + List.fold_left (fun n e -> max n (depth e)) 0 es
  | Xor (a, b) -> 1 + max (depth a) (depth b)

let rec eval env = function
  | Const b -> b
  | Var v -> env v
  | Not e -> not (eval env e)
  | And es -> List.for_all (eval env) es
  | Or es -> List.exists (eval env) es
  | Xor (a, b) -> eval env a <> eval env b

let eval_list bindings e = eval (fun v -> List.assoc v bindings) e

let rec substitute f = function
  | Const b -> Const b
  | Var v -> ( match f v with Some e -> e | None -> Var v)
  | Not e -> not_ (substitute f e)
  | And es -> and_ (List.map (substitute f) es)
  | Or es -> or_ (List.map (substitute f) es)
  | Xor (a, b) -> xor (substitute f a) (substitute f b)

let cofactor v b e =
  substitute (fun w -> if String.equal w v then Some (Const b) else None) e

let semantically_equal a b =
  let vs =
    let module S = Set.Make (String) in
    S.elements (S.union (S.of_list (vars a)) (S.of_list (vars b)))
  in
  let n = List.length vs in
  if n > 24 then
    invalid_arg "Expr.semantically_equal: too many variables (> 24)";
  let arr = Array.of_list vs in
  let ok = ref true in
  let m = 1 lsl n in
  let i = ref 0 in
  while !ok && !i < m do
    let bits = !i in
    let env v =
      let rec idx j = if String.equal arr.(j) v then j else idx (j + 1) in
      bits land (1 lsl idx 0) <> 0
    in
    if eval env a <> eval env b then ok := false;
    incr i
  done;
  !ok

(* Precedence: Or(1) < Xor(2) < And(3) < Not(4). *)
let pp ppf e =
  let rec go prec ppf e =
    let paren p body =
      if p < prec then Format.fprintf ppf "(%t)" body else body ppf
    in
    match e with
    | Const true -> Format.pp_print_string ppf "1"
    | Const false -> Format.pp_print_string ppf "0"
    | Var v -> Format.pp_print_string ppf v
    | Not e -> paren 4 (fun ppf -> Format.fprintf ppf "!%a" (go 4) e)
    | And es ->
      paren 3 (fun ppf ->
          Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
            (go 3) ppf es)
    | Or es ->
      paren 1 (fun ppf ->
          Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
            (go 1) ppf es)
    | Xor (a, b) ->
      paren 2 (fun ppf -> Format.fprintf ppf "%a ^ %a" (go 2) a (go 2) b)
  in
  go 0 ppf e

let to_string e = Format.asprintf "%a" pp e
