(** Parser for the concrete Boolean-expression syntax.

    Grammar (precedence from weakest to strongest binding):
    {v
      expr   ::= expr '|' expr          disjunction  (also '+')
               | expr '^' expr          exclusive or
               | expr '&' expr          conjunction  (also '*')
               | '!' expr               negation     (also '~')
               | ident | '0' | '1' | '(' expr ')'
    v}
    Identifiers match [[A-Za-z_][A-Za-z0-9_.\[\]]*]. Whitespace is
    insignificant. The binary operators are associative, and chains parse
    into the n-ary [And]/[Or] constructors directly. *)

exception Error of string
(** Raised with a human-readable message on malformed input. *)

val expr : string -> Expr.t
(** [expr s] parses [s].
    @raise Error on syntax errors or trailing garbage. *)

val expr_opt : string -> Expr.t option
(** Like {!expr} but returns [None] instead of raising. *)
