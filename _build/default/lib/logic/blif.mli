(** Reader and writer for the combinational subset of BLIF.

    Supported constructs: [.model], [.inputs], [.outputs], [.names] (with
    single-output covers whose output rows are all [1] or all [0]), line
    continuations with [\ ] and [#] comments. Latches, subcircuits and
    multiple models are not supported — flow-based computing targets
    combinational functions. *)

exception Parse_error of { line : int; message : string }

val parse_string : string -> Netlist.t
(** @raise Parse_error on malformed input.
    @raise Netlist.Ill_formed if the parsed model is not a well-formed
    combinational netlist (e.g. contains a cycle). *)

val parse_file : string -> Netlist.t

val to_string : Netlist.t -> string
(** Prints the netlist as BLIF. Node expressions are expanded to covers via
    their truth tables, so nodes must have ≤ 12 fan-ins. *)

val write_file : string -> Netlist.t -> unit
