(** Reader and writer for Berkeley PLA files (two-level covers).

    Supported directives: [.i], [.o], [.ilb], [.ob], [.p], [.e]/[.end],
    [#] comments. Product terms use ['0'], ['1'], ['-'] in the input plane
    and ['1'], ['0'], ['-'], ['~'] in the output plane; output type is
    assumed to be the default [fr] interpretation where ['1'] adds the cube
    to the output's ON-set and everything else leaves it unconstrained. *)

type t = {
  num_inputs : int;
  num_outputs : int;
  input_labels : string list;
  output_labels : string list;
  products : (Cube.t * bool array) list;
      (** cube over the inputs, ON-membership flag per output *)
}

exception Parse_error of { line : int; message : string }

val parse_string : string -> t
val parse_file : string -> t
val to_string : t -> string
val write_file : string -> t -> unit

val to_netlist : t -> Netlist.t
(** Two-level netlist: one node per output, OR of its cubes. *)

val of_truth_table : Truth_table.t -> t
(** One product per ON-set minterm (no minimisation). *)
