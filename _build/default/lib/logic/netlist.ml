type node = { wire : string; func : Expr.t }

type t = {
  name : string;
  inputs : string list;
  outputs : string list;
  nodes : node list;
}

exception Ill_formed of string

let ill fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let create ~name ~inputs ~outputs nodes =
  let module S = Set.Make (String) in
  let defined = ref (S.of_list inputs) in
  if S.cardinal !defined <> List.length inputs then
    ill "netlist %s: duplicate input name" name;
  List.iter
    (fun n ->
       if S.mem n.wire !defined then ill "netlist %s: wire %s redefined" name n.wire;
       List.iter
         (fun v ->
            if not (S.mem v !defined) then
              ill "netlist %s: node %s uses undefined wire %s" name n.wire v)
         (Expr.vars n.func);
       defined := S.add n.wire !defined)
    nodes;
  List.iter
    (fun o ->
       if not (S.mem o !defined) then ill "netlist %s: output %s is undriven" name o)
    outputs;
  { name; inputs; outputs; nodes }

let n_expr wire func = { wire; func }
let n_and wire ins = { wire; func = Expr.and_ (List.map Expr.var ins) }
let n_or wire ins = { wire; func = Expr.or_ (List.map Expr.var ins) }
let n_nand wire ins = { wire; func = Expr.nand (List.map Expr.var ins) }
let n_nor wire ins = { wire; func = Expr.nor (List.map Expr.var ins) }
let n_xor wire a b = { wire; func = Expr.xor (Expr.var a) (Expr.var b) }
let n_xnor wire a b = { wire; func = Expr.xnor (Expr.var a) (Expr.var b) }
let n_not wire a = { wire; func = Expr.not_ (Expr.var a) }
let n_buf wire a = { wire; func = Expr.var a }
let num_inputs t = List.length t.inputs
let num_outputs t = List.length t.outputs
let num_nodes t = List.length t.nodes

let literal_count t =
  List.fold_left (fun acc n -> acc + Expr.size n.func) 0 t.nodes

let eval t env =
  let values = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace values v (env v)) t.inputs;
  let lookup v = Hashtbl.find values v in
  List.iter
    (fun n -> Hashtbl.replace values n.wire (Expr.eval lookup n.func))
    t.nodes;
  List.map (fun o -> o, lookup o) t.outputs

let eval_point t point =
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace index v i) t.inputs;
  let results = eval t (fun v -> point.(Hashtbl.find index v)) in
  Array.of_list (List.map snd results)

let output_exprs t =
  let defs = Hashtbl.create 64 in
  List.iter
    (fun n ->
       let expanded = Expr.substitute (Hashtbl.find_opt defs) n.func in
       Hashtbl.replace defs n.wire expanded)
    t.nodes;
  List.map
    (fun o ->
       match Hashtbl.find_opt defs o with
       | Some e -> o, e
       | None -> o, Expr.var o (* output is a primary input *))
    t.outputs

let to_truth_table t =
  Truth_table.create ~inputs:t.inputs ~outputs:t.outputs (eval_point t)

let rename t ~prefix =
  let r v = prefix ^ v in
  let rename_expr e =
    Expr.substitute (fun v -> Some (Expr.var (r v))) e
  in
  {
    name = t.name;
    inputs = List.map r t.inputs;
    outputs = List.map r t.outputs;
    nodes = List.map (fun n -> { wire = r n.wire; func = rename_expr n.func }) t.nodes;
  }

let pp_stats ppf t =
  Format.fprintf ppf "%s: %d inputs, %d outputs, %d nodes, %d literals"
    t.name (num_inputs t) (num_outputs t) (num_nodes t) (literal_count t)
