type t = {
  inputs : string list;
  outputs : string list;
  bits : Bytes.t array;  (* one packed bitvector of length 2^n per output *)
}

let max_inputs = 20

let get_bit b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit b i =
  let byte = Char.code (Bytes.get b (i lsr 3)) in
  Bytes.set b (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))

let create ~inputs ~outputs f =
  let n = List.length inputs in
  if n > max_inputs then
    invalid_arg
      (Printf.sprintf "Truth_table.create: %d inputs exceeds limit %d" n
         max_inputs);
  let rows = 1 lsl n in
  let nout = List.length outputs in
  let bits = Array.init nout (fun _ -> Bytes.make ((rows + 7) / 8) '\000') in
  let point = Array.make n false in
  for row = 0 to rows - 1 do
    for i = 0 to n - 1 do
      point.(i) <- row land (1 lsl i) <> 0
    done;
    let out = f point in
    if Array.length out <> nout then
      invalid_arg "Truth_table.create: wrong number of outputs";
    for o = 0 to nout - 1 do
      if out.(o) then set_bit bits.(o) row
    done
  done;
  { inputs; outputs; bits }

let of_exprs ~inputs named =
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace index v i) inputs;
  List.iter
    (fun (name, e) ->
       List.iter
         (fun v ->
            if not (Hashtbl.mem index v) then
              invalid_arg
                (Printf.sprintf
                   "Truth_table.of_exprs: output %s uses unknown variable %s"
                   name v))
         (Expr.vars e))
    named;
  let exprs = Array.of_list (List.map snd named) in
  create ~inputs ~outputs:(List.map fst named) (fun point ->
      let env v = point.(Hashtbl.find index v) in
      Array.map (Expr.eval env) exprs)

let inputs t = t.inputs
let outputs t = t.outputs
let num_inputs t = List.length t.inputs
let num_outputs t = List.length t.outputs
let value t ~output row = get_bit t.bits.(output) row

let eval t point =
  let n = num_inputs t in
  if Array.length point <> n then invalid_arg "Truth_table.eval: arity";
  let row = ref 0 in
  for i = 0 to n - 1 do
    if point.(i) then row := !row lor (1 lsl i)
  done;
  Array.init (num_outputs t) (fun o -> get_bit t.bits.(o) !row)

let equal a b =
  a.inputs = b.inputs && a.outputs = b.outputs
  && Array.for_all2 Bytes.equal a.bits b.bits

let count_ones t ~output =
  let rows = 1 lsl num_inputs t in
  let c = ref 0 in
  for row = 0 to rows - 1 do
    if get_bit t.bits.(output) row then incr c
  done;
  !c

let pp ppf t =
  let n = num_inputs t in
  let rows = 1 lsl n in
  Format.fprintf ppf "@[<v>%s -> %s@,"
    (String.concat "," t.inputs)
    (String.concat "," t.outputs);
  for row = 0 to rows - 1 do
    let ins =
      String.init n (fun i -> if row land (1 lsl i) <> 0 then '1' else '0')
    in
    let outs =
      String.init (num_outputs t) (fun o ->
          if get_bit t.bits.(o) row then '1' else '0')
    in
    Format.fprintf ppf "%s %s@," ins outs
  done;
  Format.fprintf ppf "@]"
