type tri = Zero | One | Dash
type t = tri array

let of_string s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> Zero
      | '1' -> One
      | '-' -> Dash
      | c -> invalid_arg (Printf.sprintf "Cube.of_string: bad character %C" c))

let to_string c =
  String.init (Array.length c) (fun i ->
      match c.(i) with Zero -> '0' | One -> '1' | Dash -> '-')

let matches c inputs =
  if Array.length c <> Array.length inputs then
    invalid_arg "Cube.matches: length mismatch";
  let ok = ref true in
  for i = 0 to Array.length c - 1 do
    (match c.(i) with
     | Zero -> if inputs.(i) then ok := false
     | One -> if not inputs.(i) then ok := false
     | Dash -> ())
  done;
  !ok

let cover_eval cubes inputs = List.exists (fun c -> matches c inputs) cubes

let to_expr ~names c =
  let lits = ref [] in
  for i = Array.length c - 1 downto 0 do
    match c.(i) with
    | Zero -> lits := Expr.not_ (Expr.var names.(i)) :: !lits
    | One -> lits := Expr.var names.(i) :: !lits
    | Dash -> ()
  done;
  Expr.and_ !lits

let cover_to_expr ~names cubes = Expr.or_ (List.map (to_expr ~names) cubes)

let minterms c n =
  let rec go i acc =
    if i >= n then acc
    else
      let acc' =
        List.concat_map
          (fun m ->
             match if i < Array.length c then c.(i) else Dash with
             | Zero -> [ m ]
             | One -> [ m lor (1 lsl i) ]
             | Dash -> [ m; m lor (1 lsl i) ])
          acc
      in
      go (i + 1) acc'
  in
  List.sort Stdlib.compare (go 0 [ 0 ])

let pp ppf c = Format.pp_print_string ppf (to_string c)
