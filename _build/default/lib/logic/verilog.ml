exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* Blank out comments, preserving newlines so line numbers stay honest. *)
let strip_comments text =
  let buf = Buffer.create (String.length text) in
  let n = String.length text in
  let rec go i state =
    if i >= n then ()
    else
      let c = text.[i] in
      match state with
      | `Code ->
        if c = '/' && i + 1 < n && text.[i + 1] = '/' then begin
          Buffer.add_char buf ' ';
          go (i + 1) `Line
        end
        else if c = '/' && i + 1 < n && text.[i + 1] = '*' then begin
          Buffer.add_char buf ' ';
          go (i + 1) `Block
        end
        else begin
          Buffer.add_char buf c;
          go (i + 1) `Code
        end
      | `Line ->
        Buffer.add_char buf (if c = '\n' then '\n' else ' ');
        go (i + 1) (if c = '\n' then `Code else `Line)
      | `Block ->
        if c = '*' && i + 1 < n && text.[i + 1] = '/' then begin
          Buffer.add_string buf "  ";
          go (i + 2) `Code
        end
        else begin
          Buffer.add_char buf (if c = '\n' then '\n' else ' ');
          go (i + 1) `Block
        end
  in
  go 0 `Code;
  Buffer.contents buf

(* Split into ';'-terminated statements, remembering each one's line. The
   keywords [module]/[endmodule] also end statements. *)
let statements text =
  let text = strip_comments text in
  let stmts = ref [] in
  let buf = Buffer.create 64 in
  let line = ref 1 in
  let stmt_line = ref 1 in
  let flush () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then stmts := (!stmt_line, s) :: !stmts;
    stmt_line := !line
  in
  String.iter
    (fun c ->
       if c = '\n' then incr line;
       if c = ';' then flush ()
       else begin
         if Buffer.length buf = 0 && c <> ' ' && c <> '\n' && c <> '\t' then
           stmt_line := !line;
         Buffer.add_char buf c;
         let s = Buffer.contents buf in
         if
           String.length s >= 9
           && String.sub s (String.length s - 9) 9 = "endmodule"
         then flush ()
       end)
    text;
  flush ();
  List.rev !stmts

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

(* "input [3:0] a, b" -> declared wires a[3]..a[0], b[3]..b[0]. *)
let parse_declaration line rest =
  let rest = String.concat " " rest in
  let range, names_part =
    let rest = String.trim rest in
    if String.length rest > 0 && rest.[0] = '[' then begin
      match String.index_opt rest ']' with
      | None -> fail line "unterminated bus range"
      | Some close ->
        let inside = String.sub rest 1 (close - 1) in
        (match String.split_on_char ':' inside with
         | [ hi; lo ] -> (
             match
               int_of_string_opt (String.trim hi), int_of_string_opt (String.trim lo)
             with
             | Some hi, Some lo ->
               ( Some (hi, lo),
                 String.sub rest (close + 1) (String.length rest - close - 1) )
             | _ -> fail line "malformed bus range")
         | _ -> fail line "malformed bus range")
    end
    else None, rest
  in
  let names =
    String.split_on_char ',' names_part
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.concat_map
    (fun name ->
       match range with
       | None -> [ name ]
       | Some (hi, lo) ->
         let lo, hi = min lo hi, max lo hi in
         List.init (hi - lo + 1) (fun k -> Printf.sprintf "%s[%d]" name (lo + k)))
    names

(* "g1 (f, a, b)" or "(f, a, b)" -> argument list. *)
let parse_instance_args line rest =
  let rest = String.concat " " rest in
  match String.index_opt rest '(' with
  | None -> fail line "gate instance without argument list"
  | Some open_ ->
    let close =
      match String.rindex_opt rest ')' with
      | Some c when c > open_ -> c
      | _ -> fail line "unterminated gate argument list"
    in
    String.sub rest (open_ + 1) (close - open_ - 1)
    |> String.split_on_char ','
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")

let gate_function line kind args =
  let ins = List.map Expr.var args in
  match kind, ins with
  | "not", [ a ] -> Expr.not_ a
  | "buf", [ a ] -> a
  | ("not" | "buf"), _ -> fail line "%s expects exactly one input" kind
  | "and", _ :: _ -> Expr.and_ ins
  | "or", _ :: _ -> Expr.or_ ins
  | "nand", _ :: _ -> Expr.nand ins
  | "nor", _ :: _ -> Expr.nor ins
  | "xor", [ a; b ] -> Expr.xor a b
  | "xnor", [ a; b ] -> Expr.xnor a b
  | ("xor" | "xnor"), _ -> fail line "%s expects exactly two inputs" kind
  | _, [] -> fail line "%s gate without inputs" kind
  | _ -> fail line "unsupported gate %s" kind

let parse_string text =
  let name = ref "anonymous" in
  let inputs = ref [] in
  let outputs = ref [] in
  let nodes = ref [] in
  List.iter
    (fun (line, stmt) ->
       match words stmt with
       | [] -> ()
       | "module" :: rest ->
         (match rest with
          | m :: _ ->
            name :=
              (match String.index_opt m '(' with
               | Some i -> String.sub m 0 i
               | None -> m)
          | [] -> fail line "module without a name")
       | [ "endmodule" ] -> ()
       | "input" :: rest -> inputs := !inputs @ parse_declaration line rest
       | "output" :: rest -> outputs := !outputs @ parse_declaration line rest
       | "wire" :: rest -> ignore (parse_declaration line rest)
       | "assign" :: rest -> begin
           let assignment = String.concat " " rest in
           match String.index_opt assignment '=' with
           | None -> fail line "assign without '='"
           | Some eq ->
             let lhs = String.trim (String.sub assignment 0 eq) in
             let rhs =
               String.sub assignment (eq + 1) (String.length assignment - eq - 1)
             in
             let func =
               try Parse.expr rhs
               with Parse.Error m -> fail line "bad expression: %s" m
             in
             nodes := Netlist.n_expr lhs func :: !nodes
         end
       | (("and" | "or" | "nand" | "nor" | "xor" | "xnor" | "not" | "buf") as
          kind)
         :: rest -> begin
           match parse_instance_args line rest with
           | out :: ins when ins <> [] || kind = "buf" || kind = "not" ->
             nodes := Netlist.n_expr out (gate_function line kind ins) :: !nodes
           | _ -> fail line "gate needs an output and inputs"
         end
       | ("always" | "reg" | "initial") :: _ ->
         fail line "behavioural Verilog is not supported"
       | kw :: _ -> fail line "unsupported construct %s" kw)
    (statements text);
  (* Topological sort, as in the BLIF reader. *)
  let by_wire = Hashtbl.create 64 in
  List.iter (fun (n : Netlist.node) -> Hashtbl.replace by_wire n.wire n) !nodes;
  let visited = Hashtbl.create 64 in
  let sorted = ref [] in
  let rec visit wire =
    match Hashtbl.find_opt visited wire with
    | Some `Done -> ()
    | Some `Active ->
      raise (Netlist.Ill_formed (Printf.sprintf "combinational cycle at %s" wire))
    | None -> (
        match Hashtbl.find_opt by_wire wire with
        | None -> ()
        | Some node ->
          Hashtbl.replace visited wire `Active;
          List.iter visit (Expr.vars node.func);
          Hashtbl.replace visited wire `Done;
          sorted := node :: !sorted)
  in
  List.iter (fun (n : Netlist.node) -> visit n.wire) !nodes;
  Netlist.create ~name:!name ~inputs:!inputs ~outputs:!outputs
    (List.rev !sorted)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string (t : Netlist.t) =
  let buf = Buffer.create 1024 in
  let ports = t.inputs @ t.outputs in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" t.name (String.concat ", " ports));
  Buffer.add_string buf ("  input " ^ String.concat ", " t.inputs ^ ";\n");
  Buffer.add_string buf ("  output " ^ String.concat ", " t.outputs ^ ";\n");
  let internal =
    List.filter
      (fun (n : Netlist.node) -> not (List.mem n.wire t.outputs))
      t.nodes
  in
  if internal <> [] then
    Buffer.add_string buf
      ("  wire "
       ^ String.concat ", " (List.map (fun (n : Netlist.node) -> n.wire) internal)
       ^ ";\n");
  List.iter
    (fun (n : Netlist.node) ->
       Buffer.add_string buf
         (Printf.sprintf "  assign %s = %s;\n" n.wire (Expr.to_string n.func)))
    t.nodes;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
