(** Explicit truth tables for small multi-output functions.

    Used as the semantic reference in tests and verification: any other
    representation (expressions, netlists, BDDs, crossbar designs) of a
    function with at most {!max_inputs} inputs can be normalised to a truth
    table and compared bit-for-bit. Minterm indices are little-endian: bit
    [i] of the row index is the value of input [i]. *)

type t

val max_inputs : int
(** Hard limit on the number of inputs (20). *)

val create :
  inputs:string list -> outputs:string list -> (bool array -> bool array) -> t
(** [create ~inputs ~outputs f] tabulates [f] on all [2^|inputs|] points.
    [f] receives the input values in the order of [inputs] and must return
    one boolean per output, in the order of [outputs].
    @raise Invalid_argument if there are more than {!max_inputs} inputs or
    if [f] returns the wrong number of outputs. *)

val of_exprs : inputs:string list -> (string * Expr.t) list -> t
(** [of_exprs ~inputs named] tabulates each named expression. Expressions
    may only mention variables from [inputs].
    @raise Invalid_argument if an expression uses a foreign variable. *)

val inputs : t -> string list
val outputs : t -> string list
val num_inputs : t -> int
val num_outputs : t -> int

val value : t -> output:int -> int -> bool
(** [value t ~output row] is output [output] on minterm [row]. *)

val eval : t -> bool array -> bool array
(** Evaluate all outputs on one input point. *)

val equal : t -> t -> bool
(** Same inputs (order-sensitive), same outputs, same bits. *)

val count_ones : t -> output:int -> int
(** Number of satisfying minterms of one output. *)

val pp : Format.formatter -> t -> unit
