lib/logic/truth_table.mli: Expr Format
