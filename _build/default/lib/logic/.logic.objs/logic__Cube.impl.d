lib/logic/cube.ml: Array Expr Format List Printf Stdlib String
