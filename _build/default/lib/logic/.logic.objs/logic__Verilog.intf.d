lib/logic/verilog.mli: Netlist
