lib/logic/netlist.mli: Expr Format Truth_table
