lib/logic/parse.ml: Expr List Printf String
