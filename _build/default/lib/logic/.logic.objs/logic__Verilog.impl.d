lib/logic/verilog.ml: Buffer Expr Format Hashtbl List Netlist Parse Printf String
