lib/logic/pla.ml: Array Buffer Cube Format List Netlist Printf String Truth_table
