lib/logic/parse.mli: Expr
