lib/logic/pla.mli: Cube Netlist Truth_table
