lib/logic/truth_table.ml: Array Bytes Char Expr Format Hashtbl List Printf String
