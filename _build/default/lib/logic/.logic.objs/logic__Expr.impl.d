lib/logic/expr.ml: Array Format List Set Stdlib String
