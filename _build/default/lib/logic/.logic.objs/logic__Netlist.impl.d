lib/logic/netlist.ml: Array Expr Format Hashtbl List Set String Truth_table
