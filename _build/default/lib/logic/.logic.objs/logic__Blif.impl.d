lib/logic/blif.ml: Array Buffer Cube Expr Format Hashtbl List Netlist Printf String
