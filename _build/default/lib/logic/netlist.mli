(** Multi-output combinational netlists.

    A netlist is a topologically ordered list of named internal nodes, each
    computing a Boolean expression over primary inputs and previously
    defined wires. This is the common output format of the BLIF/PLA readers
    and of the benchmark-circuit generators, and the common input format of
    the BDD builder and of the MAGIC baseline. *)

type node = {
  wire : string;  (** name of the wire this node drives *)
  func : Expr.t;  (** expression over inputs and earlier wires *)
}

type t = private {
  name : string;
  inputs : string list;
  outputs : string list;
  nodes : node list;  (** in topological order *)
}

exception Ill_formed of string
(** Raised by {!create} on duplicate wires, references to undefined wires,
    undriven outputs, or name clashes between inputs and nodes. *)

val create :
  name:string -> inputs:string list -> outputs:string list -> node list -> t
(** Validates and packages a netlist. Nodes must already be in topological
    order: each [func] may only mention primary inputs and wires of earlier
    nodes. Outputs must be primary inputs or driven wires.
    @raise Ill_formed when validation fails. *)

(** {1 Node constructors} *)

val n_expr : string -> Expr.t -> node
val n_and : string -> string list -> node
val n_or : string -> string list -> node
val n_nand : string -> string list -> node
val n_nor : string -> string list -> node
val n_xor : string -> string -> string -> node
val n_xnor : string -> string -> string -> node
val n_not : string -> string -> node
val n_buf : string -> string -> node

(** {1 Observers} *)

val num_inputs : t -> int
val num_outputs : t -> int
val num_nodes : t -> int

val literal_count : t -> int
(** Total AST size of all node expressions; a rough circuit-size measure. *)

val eval : t -> (string -> bool) -> (string * bool) list
(** [eval t env] runs the netlist on an input assignment and returns the
    output values in output order. *)

val eval_point : t -> bool array -> bool array
(** [eval_point t point] evaluates with [point.(i)] as the value of the
    [i]-th input (in [inputs] order); returns outputs in [outputs] order. *)

val output_exprs : t -> (string * Expr.t) list
(** Flattened expression per output, obtained by substituting node
    definitions bottom-up. Sharing is lost, so the result can be
    exponentially larger than the netlist; intended for small circuits and
    for tests. *)

val to_truth_table : t -> Truth_table.t
(** Exhaustive tabulation (inputs ≤ {!Truth_table.max_inputs}). *)

val rename : t -> prefix:string -> t
(** Prefixes every wire (inputs, nodes, outputs) with [prefix]; useful when
    composing netlists. *)

val pp_stats : Format.formatter -> t -> unit
