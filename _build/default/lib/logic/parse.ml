exception Error of string

type token =
  | Tident of string
  | Tconst of bool
  | Tnot
  | Tand
  | Tor
  | Txor
  | Tlparen
  | Trparen
  | Teof

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = '[' || c = ']'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '0' then (toks := Tconst false :: !toks; incr i)
    else if c = '1' then (toks := Tconst true :: !toks; incr i)
    else if c = '!' || c = '~' then (toks := Tnot :: !toks; incr i)
    else if c = '&' || c = '*' then (toks := Tand :: !toks; incr i)
    else if c = '|' || c = '+' then (toks := Tor :: !toks; incr i)
    else if c = '^' then (toks := Txor :: !toks; incr i)
    else if c = '(' then (toks := Tlparen :: !toks; incr i)
    else if c = ')' then (toks := Trparen :: !toks; incr i)
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      toks := Tident (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else raise (Error (Printf.sprintf "unexpected character %C at offset %d" c !i))
  done;
  List.rev (Teof :: !toks)

(* Recursive descent with the precedence Or < Xor < And < Not. *)
let expr s =
  let toks = ref (tokenize s) in
  let peek () = match !toks with t :: _ -> t | [] -> Teof in
  let advance () = match !toks with _ :: rest -> toks := rest | [] -> () in
  let rec parse_or () =
    let lhs = parse_xor () in
    if peek () = Tor then begin
      advance ();
      let rhs = parse_or () in
      match rhs with
      | Expr.Or es -> Expr.or_ (lhs :: es)
      | _ -> Expr.or_ [ lhs; rhs ]
    end
    else lhs
  and parse_xor () =
    let lhs = parse_and () in
    if peek () = Txor then begin
      advance ();
      Expr.xor lhs (parse_xor ())
    end
    else lhs
  and parse_and () =
    let lhs = parse_not () in
    if peek () = Tand then begin
      advance ();
      let rhs = parse_and () in
      match rhs with
      | Expr.And es -> Expr.and_ (lhs :: es)
      | _ -> Expr.and_ [ lhs; rhs ]
    end
    else lhs
  and parse_not () =
    if peek () = Tnot then begin
      advance ();
      Expr.not_ (parse_not ())
    end
    else parse_atom ()
  and parse_atom () =
    match peek () with
    | Tident v -> advance (); Expr.var v
    | Tconst b -> advance (); Expr.const b
    | Tlparen ->
      advance ();
      let e = parse_or () in
      if peek () <> Trparen then raise (Error "expected ')'");
      advance ();
      e
    | Trparen -> raise (Error "unexpected ')'")
    | Tnot | Tand | Tor | Txor -> raise (Error "unexpected operator")
    | Teof -> raise (Error "unexpected end of input")
  in
  let e = parse_or () in
  if peek () <> Teof then raise (Error "trailing input after expression");
  e

let expr_opt s = match expr s with e -> Some e | exception Error _ -> None
