(** Static variable-ordering heuristics for netlists.

    The quality of a BDD depends heavily on the variable order. CUDD offers
    dynamic reordering; here the order is chosen up front by structural
    heuristics and, optionally, by building the BDD under several candidate
    orders and keeping the smallest ({!Sbdd.best_order}). *)

val as_given : Logic.Netlist.t -> string list
(** The declaration order of the primary inputs. *)

val reversed : Logic.Netlist.t -> string list

val dfs_fanin : Logic.Netlist.t -> string list
(** Depth-first traversal from the outputs through the fan-in cones,
    recording primary inputs at first visit. Groups related inputs close
    together — the classic Malik-style ordering heuristic. *)

val interleaved : Logic.Netlist.t -> string list
(** Round-robin over the per-output {!dfs_fanin} orders; good for
    bit-sliced arithmetic circuits where corresponding bits of different
    words should be adjacent. *)

val by_depth : Logic.Netlist.t -> string list
(** Inputs sorted by their minimum logic depth below any output (shallow
    first), ties broken by {!dfs_fanin} position. Inputs that feed the
    outputs through little logic (pass-through data, strobes) end up close
    to the roots, where they cost a single node instead of duplicating the
    deep cones below them. *)

val candidates : Logic.Netlist.t -> string list list
(** The five heuristics above, deduplicated. *)
