let sbdd (t : Sbdd.t) =
  let buf = Buffer.create 1024 in
  let roots = List.map snd t.roots in
  Buffer.add_string buf "digraph bdd {\n  rankdir=TB;\n";
  List.iter
    (fun n ->
       if Manager.is_terminal n then
         Buffer.add_string buf
           (Printf.sprintf "  n%d [shape=box,label=\"%d\"];\n" n n)
       else begin
         let name = t.input_order.(Manager.level t.man n) in
         Buffer.add_string buf
           (Printf.sprintf "  n%d [shape=circle,label=\"%s\"];\n" n name);
         Buffer.add_string buf
           (Printf.sprintf "  n%d -> n%d [style=solid];\n" n
              (Manager.high t.man n));
         Buffer.add_string buf
           (Printf.sprintf "  n%d -> n%d [style=dashed];\n" n
              (Manager.low t.man n))
       end)
    (Manager.reachable t.man roots);
  List.iter
    (fun (o, root) ->
       Buffer.add_string buf
         (Printf.sprintf "  out_%s [shape=plaintext,label=\"%s\"];\n" o o);
       Buffer.add_string buf (Printf.sprintf "  out_%s -> n%d;\n" o root))
    t.roots;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (sbdd t);
  close_out oc
