(** Graphviz export of BDDs, for debugging and documentation. *)

val sbdd : Sbdd.t -> string
(** DOT source: solid edges for then-branches, dashed for else-branches,
    boxes for terminals, one labelled arrow per output root. *)

val write_file : string -> Sbdd.t -> unit
