let expr_with_env man ~env e =
  let rec go e =
    match (e : Logic.Expr.t) with
    | Const true -> Manager.one
    | Const false -> Manager.zero
    | Var v -> env v
    | Not e -> Manager.not_ man (go e)
    | And es ->
      List.fold_left (fun acc e -> Manager.and_ man acc (go e)) Manager.one es
    | Or es ->
      List.fold_left (fun acc e -> Manager.or_ man acc (go e)) Manager.zero es
    | Xor (a, b) -> Manager.xor man (go a) (go b)
  in
  go e

let expr man ~var_level e =
  expr_with_env man ~env:(fun v -> Manager.var man (var_level v)) e
