(** Compiling logic front-end objects into BDD nodes. *)

val expr : Manager.t -> var_level:(string -> int) -> Logic.Expr.t -> Manager.node
(** [expr man ~var_level e] compiles an expression bottom-up. [var_level]
    maps each variable name to its manager level.
    @raise Manager.Size_limit if the manager's node budget is exceeded. *)

val expr_with_env :
  Manager.t ->
  env:(string -> Manager.node) ->
  Logic.Expr.t ->
  Manager.node
(** Like {!expr} but variables map to arbitrary, already-built nodes —
    this is the step used for symbolic simulation of netlists, where a
    "variable" is an internal wire. *)
