type node = int

exception Size_limit of int

(* Growable parallel arrays indexed by node handle. Handles 0 and 1 are
   the terminals; their level is max_int so they sort below every
   variable. *)
type t = {
  nvars : int;
  node_limit : int;
  mutable levels : int array;
  mutable lows : int array;
  mutable highs : int array;
  mutable next : int;  (* next free handle *)
  unique : (int * int * int, int) Hashtbl.t;  (* (level, low, high) → node *)
  ite_cache : (int * int * int, int) Hashtbl.t;
  quant_cache : (int * int * bool, int) Hashtbl.t;
}

let zero = 0
let one = 1
let is_terminal n = n < 2

let create ?(node_limit = max_int) ~num_vars () =
  let cap = 1024 in
  let levels = Array.make cap max_int in
  let lows = Array.make cap (-1) in
  let highs = Array.make cap (-1) in
  {
    nvars = num_vars;
    node_limit;
    levels;
    lows;
    highs;
    next = 2;
    unique = Hashtbl.create 4096;
    ite_cache = Hashtbl.create 4096;
    quant_cache = Hashtbl.create 256;
  }

let num_vars t = t.nvars
let allocated t = t.next

let grow t =
  let cap = Array.length t.levels in
  let bigger_int a fill =
    let b = Array.make (2 * cap) fill in
    Array.blit a 0 b 0 cap;
    b
  in
  t.levels <- bigger_int t.levels max_int;
  t.lows <- bigger_int t.lows (-1);
  t.highs <- bigger_int t.highs (-1)

let level t n = t.levels.(n)

let low t n =
  if is_terminal n then invalid_arg "Bdd.Manager.low: terminal";
  t.lows.(n)

let high t n =
  if is_terminal n then invalid_arg "Bdd.Manager.high: terminal";
  t.highs.(n)

(* The single reduction point: no node with equal children, and full
   sharing through the unique table. *)
let mk t lvl lo hi =
  if lo = hi then lo
  else
    let key = (lvl, lo, hi) in
    match Hashtbl.find_opt t.unique key with
    | Some n -> n
    | None ->
      if t.next >= t.node_limit then raise (Size_limit t.node_limit);
      if t.next >= Array.length t.levels then grow t;
      let n = t.next in
      t.next <- n + 1;
      t.levels.(n) <- lvl;
      t.lows.(n) <- lo;
      t.highs.(n) <- hi;
      Hashtbl.replace t.unique key n;
      n

let var t i =
  if i < 0 || i >= t.nvars then invalid_arg "Bdd.Manager.var: out of range";
  mk t i zero one

let nvar t i =
  if i < 0 || i >= t.nvars then invalid_arg "Bdd.Manager.nvar: out of range";
  mk t i one zero

let rec ite t f g h =
  (* Terminal cases. *)
  if f = one then g
  else if f = zero then h
  else if g = h then g
  else if g = one && h = zero then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt t.ite_cache key with
    | Some r -> r
    | None ->
      let lf = level t f and lg = level t g and lh = level t h in
      let lvl = min lf (min lg lh) in
      let cof n ln branch =
        if ln = lvl then if branch then t.highs.(n) else t.lows.(n) else n
      in
      let r_hi = ite t (cof f lf true) (cof g lg true) (cof h lh true) in
      let r_lo = ite t (cof f lf false) (cof g lg false) (cof h lh false) in
      let r = mk t lvl r_lo r_hi in
      Hashtbl.replace t.ite_cache key r;
      r

let not_ t f = ite t f zero one
let and_ t f g = ite t f g zero
let or_ t f g = ite t f one g
let xor t f g = ite t f (not_ t g) g
let xnor t f g = ite t f g (not_ t g)
let nand t f g = not_ t (and_ t f g)
let nor t f g = not_ t (or_ t f g)
let imp t f g = ite t f g one
let and_list t fs = List.fold_left (and_ t) one fs
let or_list t fs = List.fold_left (or_ t) zero fs

let restrict t f ~var:v b =
  let memo = Hashtbl.create 64 in
  let rec go f =
    if is_terminal f || level t f > v then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let r =
          if level t f = v then if b then t.highs.(f) else t.lows.(f)
          else mk t (level t f) (go t.lows.(f)) (go t.highs.(f))
        in
        Hashtbl.replace memo f r;
        r
  in
  go f

let quantify t ~var:v ~conj f =
  let key = (f, v, conj) in
  match Hashtbl.find_opt t.quant_cache key with
  | Some r -> r
  | None ->
    let f0 = restrict t f ~var:v false in
    let f1 = restrict t f ~var:v true in
    let r = if conj then and_ t f0 f1 else or_ t f0 f1 in
    Hashtbl.replace t.quant_cache key r;
    r

let exists t ~var f = quantify t ~var ~conj:false f
let forall t ~var f = quantify t ~var ~conj:true f

let rec eval t f env =
  if f = zero then false
  else if f = one then true
  else if env (level t f) then eval t t.highs.(f) env
  else eval t t.lows.(f) env

let reachable t roots =
  let seen = Hashtbl.create 1024 in
  let order = ref [] in
  let rec visit n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      order := n :: !order;
      if not (is_terminal n) then begin
        visit t.lows.(n);
        visit t.highs.(n)
      end
    end
  in
  List.iter visit roots;
  List.rev !order

let size t roots = List.length (reachable t roots)

let iter_edges t roots f =
  List.iter
    (fun n ->
       if not (is_terminal n) then begin
         f n t.lows.(n) false;
         f n t.highs.(n) true
       end)
    (reachable t roots)

let support t f =
  let module IS = Set.Make (Int) in
  let vars = ref IS.empty in
  List.iter
    (fun n -> if not (is_terminal n) then vars := IS.add (level t n) !vars)
    (reachable t [ f ]);
  IS.elements !vars

let sat_count t f ~nvars =
  let memo = Hashtbl.create 256 in
  (* count f = #assignments of variables at levels ≥ level(f). *)
  let rec go f =
    if f = zero then 0.
    else if f = one then 1.
    else
      match Hashtbl.find_opt memo f with
      | Some c -> c
      | None ->
        let lvl = level t f in
        let child g =
          let lg = min (level t g) nvars in
          go g *. (2. ** float_of_int (lg - lvl - 1))
        in
        let c = child t.lows.(f) +. child t.highs.(f) in
        Hashtbl.replace memo f c;
        c
  in
  let lf = min (level t f) nvars in
  go f *. (2. ** float_of_int lf)

let any_sat t f =
  if f = zero then None
  else
    let rec go f acc =
      if f = one then List.rev acc
      else
        let v = level t f in
        if t.highs.(f) <> zero then go t.highs.(f) ((v, true) :: acc)
        else go t.lows.(f) ((v, false) :: acc)
    in
    Some (go f [])

let clear_caches t =
  Hashtbl.reset t.ite_cache;
  Hashtbl.reset t.quant_cache
