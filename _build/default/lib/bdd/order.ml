let as_given (t : Logic.Netlist.t) = t.inputs
let reversed (t : Logic.Netlist.t) = List.rev t.inputs

let dfs_from (t : Logic.Netlist.t) roots =
  let defs = Hashtbl.create 64 in
  List.iter
    (fun (n : Logic.Netlist.node) -> Hashtbl.replace defs n.wire n.func)
    t.nodes;
  let is_input = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace is_input v ()) t.inputs;
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit w =
    if not (Hashtbl.mem seen w) then begin
      Hashtbl.replace seen w ();
      if Hashtbl.mem is_input w then order := w :: !order
      else
        match Hashtbl.find_opt defs w with
        | Some func -> List.iter visit (Logic.Expr.vars func)
        | None -> ()
    end
  in
  List.iter visit roots;
  List.rev !order

let complete (t : Logic.Netlist.t) partial =
  (* Append inputs that do not reach any output. *)
  let present = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace present v ()) partial;
  partial @ List.filter (fun v -> not (Hashtbl.mem present v)) t.inputs

let dfs_fanin t = complete t (dfs_from t t.outputs)

let interleaved (t : Logic.Netlist.t) =
  let per_output = List.map (fun o -> dfs_from t [ o ]) t.outputs in
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let rec round lists =
    if lists <> [] then begin
      let rests =
        List.filter_map
          (function
            | [] -> None
            | v :: rest ->
              if not (Hashtbl.mem seen v) then begin
                Hashtbl.replace seen v ();
                order := v :: !order
              end;
              if rest = [] then None else Some rest)
          lists
      in
      round rests
    end
  in
  round per_output;
  complete t (List.rev !order)

let by_depth (t : Logic.Netlist.t) =
  (* Minimum depth of every wire measured from the outputs (outputs have
     depth 0), propagated backwards through the reversed topological
     order. *)
  let depth = Hashtbl.create 64 in
  let relax w d =
    match Hashtbl.find_opt depth w with
    | Some d' when d' <= d -> ()
    | _ -> Hashtbl.replace depth w d
  in
  List.iter (fun o -> relax o 0) t.outputs;
  List.iter
    (fun (n : Logic.Netlist.node) ->
       match Hashtbl.find_opt depth n.wire with
       | None -> ()
       | Some d -> List.iter (fun v -> relax v (d + 1)) (Logic.Expr.vars n.func))
    (List.rev t.nodes);
  let position = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace position v i) (dfs_fanin t);
  let key v =
    ( (match Hashtbl.find_opt depth v with Some d -> d | None -> max_int),
      match Hashtbl.find_opt position v with Some p -> p | None -> max_int )
  in
  List.stable_sort (fun a b -> compare (key a) (key b)) t.inputs

let candidates t =
  let all =
    [ dfs_fanin t; interleaved t; by_depth t; as_given t; reversed t ]
  in
  List.sort_uniq Stdlib.compare all
