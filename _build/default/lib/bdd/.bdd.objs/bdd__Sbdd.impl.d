lib/bdd/sbdd.ml: Array Build Hashtbl List Logic Manager Order String
