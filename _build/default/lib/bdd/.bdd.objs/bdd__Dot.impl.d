lib/bdd/dot.ml: Array Buffer List Manager Printf Sbdd
