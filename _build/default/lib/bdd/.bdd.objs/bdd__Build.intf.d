lib/bdd/build.mli: Logic Manager
