lib/bdd/reorder.mli: Logic Sbdd
