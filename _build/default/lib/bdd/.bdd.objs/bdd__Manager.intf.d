lib/bdd/manager.mli:
