lib/bdd/manager.ml: Array Hashtbl Int List Set
