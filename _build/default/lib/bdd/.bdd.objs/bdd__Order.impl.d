lib/bdd/order.ml: Hashtbl List Logic Stdlib
