lib/bdd/sbdd.mli: Logic Manager
