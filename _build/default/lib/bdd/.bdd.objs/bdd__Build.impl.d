lib/bdd/build.ml: List Logic Manager
