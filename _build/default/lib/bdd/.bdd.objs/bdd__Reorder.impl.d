lib/bdd/reorder.ml: Array List Logic Manager Random Sbdd
