lib/bdd/order.mli: Logic
