lib/bdd/dot.mli: Sbdd
