lib/milp/branch_bound.ml: Array Float List Lp Unix
