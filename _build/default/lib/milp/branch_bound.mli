(** Mixed-integer linear programming by LP-based branch & bound.

    Replaces the CPLEX dependency of the paper. The solver is *anytime*:
    under a time limit it returns the best incumbent, the best proven bound
    and the relative gap, and it records a convergence trace — exactly the
    quantities plotted in Figs 10 and 11 of the paper.

    Branching: most-fractional integer variable; node selection:
    best-bound-first. An initial incumbent (e.g. from a combinatorial
    heuristic) can be supplied to warm-start pruning. *)

type status =
  | Optimal  (** incumbent proven optimal *)
  | Feasible  (** time limit hit with an incumbent *)
  | No_incumbent  (** time limit hit before any integer solution *)
  | Infeasible

type trace_point = {
  t_elapsed : float;  (** seconds since solve started *)
  t_incumbent : float option;  (** best integer objective so far *)
  t_bound : float;  (** best proven bound *)
  t_gap : float;  (** relative gap, 1.0 when no incumbent *)
}

type result = {
  status : status;
  objective : float option;
  solution : float array option;
  bound : float;
  gap : float;
  nodes : int;
  elapsed : float;
  trace : trace_point list;  (** chronological *)
}

val solve :
  ?time_limit:float ->
  ?node_limit:int ->
  ?initial:float array * float ->
  ?integer_tolerance:float ->
  Lp.Problem.t ->
  result
(** [solve p] minimises or maximises [p] (per its objective sense) with all
    variables marked integer restricted to integral values.
    [initial = (point, value)] seeds the incumbent — the point is trusted
    to be feasible. Default [integer_tolerance] is [1e-6]. *)

val relative_gap : incumbent:float option -> bound:float -> float
(** CPLEX-style gap: |incumbent − bound| / max(1e-10, |incumbent|);
    [1.0] when there is no incumbent. *)
