lib/baseline/staircase.ml: Array Bdd Compact Crossbar Graphs List Unix
