lib/baseline/contra.ml: Array Int List Magic Set
