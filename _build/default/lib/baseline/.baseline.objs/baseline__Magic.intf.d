lib/baseline/magic.mli: Logic
