lib/baseline/contra.mli: Logic
