lib/baseline/magic.ml: Array Hashtbl List Logic
