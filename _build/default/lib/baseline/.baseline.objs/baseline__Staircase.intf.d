lib/baseline/staircase.mli: Compact Crossbar Logic
