type op = Nor of int list | Not of int | Input of string

type t = {
  ops : op array;
  outputs : (string * int) list;
  num_inputs : int;
}

(* Lower expressions to NOR/NOT over a growing op list, with structural
   hashing so shared sub-expressions are emitted once. *)
let of_netlist (nl : Logic.Netlist.t) =
  let ops = ref [] in
  let count = ref 0 in
  let cache = Hashtbl.create 256 in
  let emit op =
    match Hashtbl.find_opt cache op with
    | Some i -> i
    | None ->
      let i = !count in
      ops := op :: !ops;
      incr count;
      Hashtbl.replace cache op i;
      i
  in
  let wires = Hashtbl.create 64 in
  List.iter
    (fun v -> Hashtbl.replace wires v (emit (Input v)))
    nl.inputs;
  let num_inputs = !count in
  (* false = NOR of nothing is not expressible; encode constants lazily
     as NOT(x NOR NOT x)…; simpler: constant folding happens in Expr, so
     constants only appear as whole node functions. *)
  let const_false () =
    (* NOR(x, NOT x) for an arbitrary input, or an empty NOR if there are
       no inputs (degenerate netlists). *)
    match nl.inputs with
    | v :: _ ->
      let x = Hashtbl.find wires v in
      emit (Nor [ x; emit (Not x) ])
    | [] -> emit (Nor [])
  in
  let rec lower e =
    match (e : Logic.Expr.t) with
    | Const false -> const_false ()
    | Const true -> emit (Not (const_false ()))
    | Var v -> Hashtbl.find wires v
    | Not e -> emit (Not (lower e))
    | Or es -> emit (Not (emit (Nor (List.map lower es))))
    | And es ->
      (* AND = NOR of the negations. *)
      emit (Nor (List.map (fun e -> emit (Not (lower e))) es))
    | Xor (a, b) ->
      (* a⊕b = NOR(NOR(a,b), AND(a,b)) negated twice: use
         NOT(NOR(AND(a, NOT b), AND(NOT a, b))). *)
      let ia = lower a and ib = lower b in
      let na = emit (Not ia) and nb = emit (Not ib) in
      let t1 = emit (Nor [ na; ib ]) in
      (* t1 = a AND NOT b *)
      let t2 = emit (Nor [ ia; nb ]) in
      emit (Not (emit (Nor [ t1; t2 ])))
  in
  List.iter
    (fun (node : Logic.Netlist.node) ->
       Hashtbl.replace wires node.wire (lower node.func))
    nl.nodes;
  let outputs = List.map (fun o -> o, Hashtbl.find wires o) nl.outputs in
  { ops = Array.of_list (List.rev !ops); outputs; num_inputs }

let num_gates t = Array.length t.ops - t.num_inputs

let levels t =
  let lvl = Array.make (Array.length t.ops) 0 in
  Array.iteri
    (fun i op ->
       lvl.(i) <-
         (match op with
          | Input _ -> 0
          | Not j -> lvl.(j) + 1
          | Nor js -> 1 + List.fold_left (fun m j -> max m lvl.(j)) 0 js))
    t.ops;
  lvl

let depth t = Array.fold_left max 0 (levels t)

let eval t env =
  let values = Array.make (Array.length t.ops) false in
  Array.iteri
    (fun i op ->
       values.(i) <-
         (match op with
          | Input v -> env v
          | Not j -> not values.(j)
          | Nor js -> not (List.exists (fun j -> values.(j)) js)))
    t.ops;
  List.map (fun (o, i) -> o, values.(i)) t.outputs
