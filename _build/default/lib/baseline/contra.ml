type params = { k : int; spacing : int; crossbar_dim : int }

let default_params = { k = 4; spacing = 6; crossbar_dim = 128 }

type cost = {
  num_luts : int;
  num_levels : int;
  input_ops : int;
  nor_ops : int;
  copy_ops : int;
  power_ops : int;
  delay_steps : int;
}

let estimate ?(params = default_params) nl =
  let nig = Magic.of_netlist nl in
  let n = Array.length nig.ops in
  let module IS = Set.Make (Int) in
  let is_input i =
    match nig.ops.(i) with
    | Magic.Input _ -> true
    | Magic.Not _ | Magic.Nor _ -> false
  in
  let operands i =
    match nig.ops.(i) with
    | Magic.Input _ -> []
    | Magic.Not j -> [ j ]
    | Magic.Nor js -> js
  in
  let fanout = Array.make n 0 in
  Array.iteri
    (fun i _ -> List.iter (fun j -> fanout.(j) <- fanout.(j) + 1) (operands i))
    nig.ops;
  (* An op's value must materialise (become a LUT root) when it is a
     primary output, feeds more than one consumer, or was cut because a
     consumer cone overflowed k inputs. *)
  let boundary = Array.make n false in
  List.iter (fun (_, i) -> boundary.(i) <- true) nig.outputs;
  Array.iteri (fun i f -> if f > 1 then boundary.(i) <- true) fanout;
  let support = Array.make n IS.empty in
  Array.iteri
    (fun i _ ->
       if not (is_input i) then begin
         let operand_support j =
           if is_input j || boundary.(j) then IS.singleton j else support.(j)
         in
         let sup =
           List.fold_left
             (fun acc j -> IS.union acc (operand_support j))
             IS.empty (operands i)
         in
         if IS.cardinal sup <= params.k then support.(i) <- sup
         else begin
           (* Cut: the operands become LUT roots themselves. *)
           List.iter
             (fun j -> if not (is_input j) then boundary.(j) <- true)
             (operands i);
           support.(i) <- IS.of_list (operands i)
         end
       end)
    nig.ops;
  let lut_roots =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if boundary.(i) && not (is_input i) then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  let num_luts = Array.length lut_roots in
  let op_levels = Magic.levels nig in
  let distinct_levels =
    Array.to_list lut_roots
    |> List.map (fun i -> op_levels.(i))
    |> List.sort_uniq compare
  in
  let num_levels = List.length distinct_levels in
  (* Per-LUT program: k INPUT writes, one NOR per expected ON-row of the
     k-LUT (half of 2^k) plus the output NOR; COPY per consumer of the
     root's value. *)
  let rows_per_lut = (1 lsl params.k) / 2 in
  let input_ops = num_luts * params.k in
  let nor_ops = num_luts * (rows_per_lut + 1) in
  let copy_ops =
    Array.fold_left (fun acc i -> acc + max 1 fanout.(i)) 0 lut_roots
  in
  let power_ops = input_ops + nor_ops + copy_ops in
  let lanes = max 1 (params.crossbar_dim / (params.spacing + 2)) in
  let ops_per_lut = params.k + rows_per_lut + 1 in
  let delay_steps =
    List.fold_left
      (fun acc lvl ->
         let luts_here =
           Array.fold_left
             (fun c i -> if op_levels.(i) = lvl then c + 1 else c)
             0 lut_roots
         in
         let waves = (luts_here + lanes - 1) / lanes in
         acc + (waves * ops_per_lut) + 1)
      0 distinct_levels
  in
  {
    num_luts;
    num_levels;
    input_ops;
    nor_ops;
    copy_ops;
    power_ops;
    delay_steps;
  }
