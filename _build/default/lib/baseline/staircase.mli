(** The prior-work baseline [16]: inductive staircase mapping of BDDs.

    In that technique every BDD node is assigned both a wordline and a
    bitline (the node pair is fused on the main diagonal), and decision
    edges are realised at the corresponding junctions — crossbars span the
    staircase from the bottom-left to the top-right corner. The measured
    semiperimeter in the paper's Table IV is ≈ 1.90·n; our reconstruction
    gives exactly [rows = n] and [cols = n − 1] (the 1-terminal needs no
    bitline because all of its incident edges can use the parent's
    bitline), i.e. semiperimeter [2n − 1].

    Multi-output functions follow the prior-work flow: one ROBDD per
    output, each mapped separately, merged along the diagonal sharing the
    input wordline (Fig 8(a)). *)

val of_graph : Compact.Types.bdd_graph -> Crossbar.Design.t
(** Staircase-map one (single- or multi-rooted) BDD graph: all nodes VH. *)

type result = {
  designs : Crossbar.Design.t list;  (** one per output *)
  merged : Crossbar.Design.t;
  total_bdd_nodes : int;  (** Σ nodes of the per-output ROBDDs *)
  total_bdd_edges : int;
  synthesis_time : float;
}

val synthesize : ?order:string list -> ?node_limit:int -> Logic.Netlist.t -> result
(** The full prior-work flow on a netlist. *)
