(** MAGIC (memristor-aided logic) synthesis substrate.

    MAGIC evaluates Boolean functions as sequences of in-memory NOR/NOT
    operations [6]. This module lowers a netlist to a NOR-inverter graph
    (NIG) — the intermediate form CONTRA-style mappers schedule — and
    reports its size and depth. Each NIG operation is one crossbar write
    cycle in the MAGIC execution model. *)

type op = Nor of int list | Not of int | Input of string
(** Operands are indices of earlier ops. *)

type t = {
  ops : op array;  (** topologically ordered; inputs first *)
  outputs : (string * int) list;  (** output name → op index *)
  num_inputs : int;
}

val of_netlist : Logic.Netlist.t -> t

val num_gates : t -> int
(** NOR/NOT operations (excluding inputs). *)

val depth : t -> int
(** Longest dependency chain through NOR/NOT ops — the lower bound on
    MAGIC time steps with unlimited parallelism. *)

val levels : t -> int array
(** Per-op level (inputs are level 0). *)

val eval : t -> (string -> bool) -> (string * bool) list
(** Reference semantics, for testing the lowering. *)
