(** CONTRA-style cost model for MAGIC in-memory computing [34].

    CONTRA maps a circuit as k-input LUTs placed on a fixed crossbar and
    executes them as MAGIC operation sequences; the paper's Fig 13
    compares power (number of write operations: INPUT, COPY, NOR, …) and
    delay (number of time steps) against COMPACT. The tool itself is
    closed source, so this module reproduces its *cost model* at the
    fidelity the comparison uses:

    - the netlist is lowered to a NOR-inverter graph ({!module:Magic}) and
      greedily covered with single-output cones of ≤ [k] inputs;
    - each LUT executes as a two-level NOR program: [k] INPUT writes, one
      NOR per ON-row of its truth table plus the output NOR;
    - signals consumed by a LUT in a different crossbar region cost one
      COPY each (fan-out realignment — the effect the paper blames for
      MAGIC's long schedules);
    - LUTs of the same topological level run concurrently up to the lane
      capacity ⌊crossbar_dim / (spacing + 2)⌋; levels are sequential.

    Defaults follow the paper: [k = 4], [spacing = 6], crossbar 128×128. *)

type params = { k : int; spacing : int; crossbar_dim : int }

val default_params : params

type cost = {
  num_luts : int;
  num_levels : int;
  input_ops : int;
  nor_ops : int;
  copy_ops : int;
  power_ops : int;  (** total write operations — the power proxy *)
  delay_steps : int;  (** schedule length — the delay proxy *)
}

val estimate : ?params:params -> Logic.Netlist.t -> cost
