(** DC electrical validation of crossbar designs ("SPICE-lite").

    Replaces the paper's SPICE check. Every junction of the crossbar is a
    resistor — [r_on] when its literal conducts under the assignment,
    [r_off] otherwise. The input nanowire is driven at [v_in]; every output
    nanowire is tied to ground through a sensing resistor [r_sense]. The
    resulting linear resistive network (a graph Laplacian with a Dirichlet
    node) is solved with Jacobi-preconditioned conjugate gradients, and an
    output reads logic 1 when its nanowire voltage exceeds
    [threshold · v_in]. Flow-based read-out is a DC operating-point
    question, so a static solve exercises the same physics the paper
    simulates. *)

type params = {
  r_on : float;  (** low-resistive state, Ω (default 100) *)
  r_off : float;  (** high-resistive state, Ω (default 1e8) *)
  r_sense : float;  (** sensing resistor, Ω (default 1e4) *)
  v_in : float;  (** drive voltage, V (default 1.0) *)
  threshold : float;  (** logic threshold as a fraction of [v_in] (0.01) *)
}

val default_params : params

type solution = {
  v_rows : float array;  (** wordline voltages *)
  v_cols : float array;  (** bitline voltages *)
  iterations : int;  (** CG iterations used *)
  residual : float;  (** final relative residual *)
}

val solve : ?params:params -> Design.t -> (string -> bool) -> solution
(** Nodal analysis under one input assignment. *)

val read_outputs :
  ?params:params -> Design.t -> (string -> bool) -> (string * bool * float) list
(** [(output, logic value, voltage)] per design output. *)

val agrees_with_digital :
  ?params:params ->
  ?seed:int ->
  trials:int ->
  Design.t ->
  bool
(** Samples random assignments of the design's variables and checks that
    the analog read-out equals the digital sneak-path evaluation on every
    output. *)
