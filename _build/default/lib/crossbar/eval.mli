(** Digital sneak-path evaluation of a crossbar design.

    Models the flow-based evaluation phase: program every junction from the
    input assignment, drive the input nanowire, and ask — for each output
    nanowire — whether a path of low-resistive junctions connects it to the
    input (§II-C). This is the defining semantics of a valid design
    (Problem formulation, §III); the analog solver in {!module:Analog}
    checks the same property electrically. *)

val reachable_wires : Design.t -> (string -> bool) -> bool array * bool array
(** [(rows_reached, cols_reached)] from the input wire through conducting
    junctions under the assignment. *)

val evaluate : Design.t -> (string -> bool) -> (string * bool) list
(** Output values in design output order. *)

val evaluator : Design.t -> (string -> bool) -> (string * bool) list
(** [evaluator d] precomputes the sparse device adjacency once and returns
    a closure evaluating assignments in O(devices); use it when the same
    design is evaluated many times (verification, tables). *)

val evaluate_point :
  Design.t -> input_names:string list -> bool array -> bool array
(** Positional variant: input variable [List.nth input_names i] takes the
    value [point.(i)]. *)
