type params = {
  r_on : float;
  r_off : float;
  r_sense : float;
  v_in : float;
  threshold : float;
}

let default_params =
  { r_on = 100.; r_off = 1e8; r_sense = 1e4; v_in = 1.0; threshold = 0.01 }

type solution = {
  v_rows : float array;
  v_cols : float array;
  iterations : int;
  residual : float;
}

(* Wire numbering: rows are 0..R-1, columns are R..R+C-1. The input wire is
   a Dirichlet node held at v_in and eliminated from the unknowns. *)
let solve ?(params = default_params) d env =
  let rows = Design.rows d and cols = Design.cols d in
  let n = rows + cols in
  let g_on = 1. /. params.r_on and g_off = 1. /. params.r_off in
  let g_sense = 1. /. params.r_sense in
  let g = Array.make_matrix rows cols g_off in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Literal.conducts (Design.get d ~row:i ~col:j) env then
        g.(i).(j) <- g_on
    done
  done;
  let input_node =
    match Design.input d with
    | Design.Row i -> i
    | Design.Col j -> rows + j
  in
  let diag = Array.make n 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      diag.(i) <- diag.(i) +. g.(i).(j);
      diag.(rows + j) <- diag.(rows + j) +. g.(i).(j)
    done
  done;
  List.iter
    (fun (_, w) ->
       let node =
         match w with Design.Row i -> i | Design.Col j -> rows + j
       in
       diag.(node) <- diag.(node) +. g_sense)
    (Design.outputs d);
  (* A·x where x ranges over all wires but the input node is clamped:
     treat x.(input_node) as 0 inside the operator and put the coupling on
     the right-hand side. *)
  let apply x y =
    for i = 0 to rows - 1 do
      y.(i) <- diag.(i) *. x.(i)
    done;
    for j = 0 to cols - 1 do
      y.(rows + j) <- diag.(rows + j) *. x.(rows + j)
    done;
    for i = 0 to rows - 1 do
      let gi = g.(i) in
      let xi = x.(i) in
      let acc = ref 0. in
      for j = 0 to cols - 1 do
        y.(rows + j) <- y.(rows + j) -. (gi.(j) *. xi);
        acc := !acc +. (gi.(j) *. x.(rows + j))
      done;
      y.(i) <- y.(i) -. !acc
    done;
    (* Clamp the Dirichlet node: identity row. *)
    y.(input_node) <- x.(input_node)
  in
  (* The Dirichlet value rides along inside the state vector: the input
     entry of [x] is pinned at [v_in] (identity row, matching RHS), and the
     matvec couples it into its neighbours' equations. CG never moves the
     pinned entry because its residual starts and stays at zero, so the
     iteration lives in the affine subspace where the operator is the SPD
     Laplacian block. *)
  let b = Array.make n 0. in
  b.(input_node) <- params.v_in;
  (* Jacobi-preconditioned conjugate gradients. *)
  let x = Array.make n 0. in
  x.(input_node) <- params.v_in;
  let r = Array.make n 0. in
  let z = Array.make n 0. in
  let p = Array.make n 0. in
  let q = Array.make n 0. in
  let minv k = if k = input_node then 1. else 1. /. diag.(k) in
  apply x r;
  for k = 0 to n - 1 do
    r.(k) <- b.(k) -. r.(k)
  done;
  let dot a c =
    let s = ref 0. in
    for k = 0 to n - 1 do
      s := !s +. (a.(k) *. c.(k))
    done;
    !s
  in
  let bnorm = max (sqrt (dot b b)) 1e-30 in
  for k = 0 to n - 1 do
    z.(k) <- minv k *. r.(k);
    p.(k) <- z.(k)
  done;
  let rz = ref (dot r z) in
  let iterations = ref 0 in
  let residual = ref (sqrt (dot r r) /. bnorm) in
  let max_iter = 20 * n in
  while !residual > 1e-10 && !iterations < max_iter do
    apply p q;
    let alpha = !rz /. dot p q in
    for k = 0 to n - 1 do
      x.(k) <- x.(k) +. (alpha *. p.(k));
      r.(k) <- r.(k) -. (alpha *. q.(k))
    done;
    for k = 0 to n - 1 do
      z.(k) <- minv k *. r.(k)
    done;
    let rz' = dot r z in
    let beta = rz' /. !rz in
    rz := rz';
    for k = 0 to n - 1 do
      p.(k) <- z.(k) +. (beta *. p.(k))
    done;
    incr iterations;
    residual := sqrt (dot r r) /. bnorm
  done;
  {
    v_rows = Array.sub x 0 rows;
    v_cols = Array.sub x rows cols;
    iterations = !iterations;
    residual = !residual;
  }

let read_outputs ?(params = default_params) d env =
  let sol = solve ~params d env in
  List.map
    (fun (o, w) ->
       let v =
         match w with
         | Design.Row i -> sol.v_rows.(i)
         | Design.Col j -> sol.v_cols.(j)
       in
       o, v > params.threshold *. params.v_in, v)
    (Design.outputs d)

let agrees_with_digital ?(params = default_params) ?(seed = 7) ~trials d =
  let rng = Random.State.make [| seed |] in
  let vars = Design.variables d in
  let ok = ref true in
  let trial = ref 0 in
  while !ok && !trial < trials do
    incr trial;
    let values = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace values v (Random.State.bool rng)) vars;
    let env v = Hashtbl.find values v in
    let digital = Eval.evaluate d env in
    let analog = read_outputs ~params d env in
    List.iter2
      (fun (o1, b1) (o2, b2, _) ->
         assert (String.equal o1 o2);
         if b1 <> b2 then ok := false)
      digital analog
  done;
  !ok
