(** Values assigned to the memristors of a crossbar.

    During the one-time initialisation phase each junction is bound to a
    constant or to a literal of the Boolean input variables; in the
    evaluation phase the device is programmed to low resistance exactly
    when its literal is true under the given assignment (§II-C). *)

type t =
  | Off  (** always high-resistive ('0') *)
  | On  (** always low-resistive ('1'); used to fuse VH node wire pairs *)
  | Pos of string  (** the variable itself *)
  | Neg of string  (** its negation *)

val conducts : t -> (string -> bool) -> bool
(** Is the device low-resistive under the assignment? *)

val negate : t -> t
val equal : t -> t -> bool

val variable : t -> string option
(** The underlying variable of [Pos]/[Neg]; [None] for constants. *)

val to_string : t -> string
(** ["0"], ["1"], ["a"], ["!a"]. *)

val pp : Format.formatter -> t -> unit
