lib/crossbar/literal.mli: Format
