lib/crossbar/analog.mli: Design
