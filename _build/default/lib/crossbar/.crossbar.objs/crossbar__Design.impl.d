lib/crossbar/design.ml: Format Hashtbl List Literal Set String
