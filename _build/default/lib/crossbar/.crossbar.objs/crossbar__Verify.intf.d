lib/crossbar/verify.mli: Design Format Logic
