lib/crossbar/verify.ml: Array Eval Format Hashtbl List Logic Printf Random String
