lib/crossbar/fault.ml: Design Format List Literal Random Verify
