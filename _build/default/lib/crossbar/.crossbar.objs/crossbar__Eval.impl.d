lib/crossbar/eval.ml: Array Design Hashtbl List Literal Queue
