lib/crossbar/design.mli: Format Literal
