lib/crossbar/literal.ml: Format Stdlib
