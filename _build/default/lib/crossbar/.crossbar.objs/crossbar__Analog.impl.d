lib/crossbar/analog.ml: Array Design Eval Hashtbl List Literal Random String
