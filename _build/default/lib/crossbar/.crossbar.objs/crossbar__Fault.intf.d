lib/crossbar/fault.mli: Design Format
