lib/crossbar/eval.mli: Design
