type t = Off | On | Pos of string | Neg of string

let conducts l env =
  match l with
  | Off -> false
  | On -> true
  | Pos v -> env v
  | Neg v -> not (env v)

let negate = function
  | Off -> On
  | On -> Off
  | Pos v -> Neg v
  | Neg v -> Pos v

let equal = Stdlib.( = )
let variable = function Off | On -> None | Pos v | Neg v -> Some v

let to_string = function
  | Off -> "0"
  | On -> "1"
  | Pos v -> v
  | Neg v -> "!" ^ v

let pp ppf l = Format.pp_print_string ppf (to_string l)
