(* BFS over the wordline/bitline adjacency induced by the programmed
   junctions only — designs are sparse, so this is O(devices) per
   assignment rather than O(rows × cols). *)

type adjacency = {
  row_adj : (int * Literal.t) list array;  (* per row: (col, literal) *)
  col_adj : (int * Literal.t) list array;
}

let adjacency d =
  let row_adj = Array.make (Design.rows d) [] in
  let col_adj = Array.make (Design.cols d) [] in
  Design.iter_programmed d (fun i j l ->
      row_adj.(i) <- (j, l) :: row_adj.(i);
      col_adj.(j) <- (i, l) :: col_adj.(j));
  { row_adj; col_adj }

let reach adj d env =
  let rows = Design.rows d and cols = Design.cols d in
  let row_reached = Array.make rows false in
  let col_reached = Array.make cols false in
  let queue = Queue.create () in
  (match Design.input d with
   | Design.Row i ->
     row_reached.(i) <- true;
     Queue.add (`Row i) queue
   | Design.Col j ->
     col_reached.(j) <- true;
     Queue.add (`Col j) queue);
  while not (Queue.is_empty queue) do
    match Queue.pop queue with
    | `Row i ->
      List.iter
        (fun (j, l) ->
           if (not col_reached.(j)) && Literal.conducts l env then begin
             col_reached.(j) <- true;
             Queue.add (`Col j) queue
           end)
        adj.row_adj.(i)
    | `Col j ->
      List.iter
        (fun (i, l) ->
           if (not row_reached.(i)) && Literal.conducts l env then begin
             row_reached.(i) <- true;
             Queue.add (`Row i) queue
           end)
        adj.col_adj.(j)
  done;
  row_reached, col_reached

let reachable_wires d env = reach (adjacency d) d env

let outputs_of_reach d (row_reached, col_reached) =
  List.map
    (fun (o, w) ->
       ( o,
         match w with
         | Design.Row i -> row_reached.(i)
         | Design.Col j -> col_reached.(j) ))
    (Design.outputs d)

let evaluate d env = outputs_of_reach d (reachable_wires d env)

let evaluator d =
  let adj = adjacency d in
  fun env -> outputs_of_reach d (reach adj d env)

let evaluate_point d ~input_names point =
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace index v i) input_names;
  let env v = point.(Hashtbl.find index v) in
  Array.of_list (List.map snd (evaluate d env))
