(** Graph pre-processing (§V-A): turning an SBDD into the undirected graph
    that the VH-labeling step consumes.

    The 0-terminal and its incoming edges are removed (flow-based
    computing only needs paths witnessing the 1 output); every remaining
    BDD node becomes a graph node and every decision edge an undirected
    edge carrying the literal that will program its memristor — the
    else-edge of a node testing [x] carries [!x], the then-edge [x]. *)

val of_sbdd : Bdd.Sbdd.t -> Types.bdd_graph
(** @raise Invalid_argument if some decision edge would collapse (cannot
    happen for reduced BDDs). Constant-0 outputs become
    {!Types.Const_false} roots; constant-1 outputs map to the terminal
    node. If the diagram is the single constant 0, the graph still
    contains the (unreachable) 1-terminal so downstream stages have an
    input wire to bind. *)

val num_bdd_nodes : Types.bdd_graph -> int
(** Graph nodes = BDD nodes minus the 0-terminal. *)

val num_bdd_edges : Types.bdd_graph -> int
