lib/core/report.ml: Crossbar Format Preprocess Printf Types
