lib/core/label_mip.ml: Array Graphs Label_oct List Lp Milp Printf Types Unix
