lib/core/label_oct.ml: Array Balance Graphs List Types
