lib/core/pipeline.mli: Bdd Crossbar Logic Report Types
