lib/core/label_mip.mli: Types
