lib/core/mapping.mli: Crossbar Types
