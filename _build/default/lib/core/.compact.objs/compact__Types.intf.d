lib/core/types.mli: Crossbar Format Graphs Milp Stdlib
