lib/core/label_heuristic.mli: Types
