lib/core/types.ml: Array Crossbar Format Graphs List Milp Printf Stdlib
