lib/core/label_heuristic.ml: Array Balance Graphs Label_oct List Types Unix
