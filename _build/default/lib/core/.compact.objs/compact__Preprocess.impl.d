lib/core/preprocess.ml: Array Bdd Crossbar Graphs Hashtbl List Types
