lib/core/preprocess.mli: Bdd Types
