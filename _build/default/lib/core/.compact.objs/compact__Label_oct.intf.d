lib/core/label_oct.mli: Types
