lib/core/pipeline.ml: Bdd Crossbar Graphs Label_heuristic Label_mip Label_oct List Logic Mapping Preprocess Report Types Unix
