lib/core/balance.ml: Array Graphs List Types
