lib/core/mapping.ml: Array Crossbar Graphs List Types
