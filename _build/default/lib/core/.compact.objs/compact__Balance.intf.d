lib/core/balance.mli: Types
