lib/core/report.mli: Crossbar Format Types
