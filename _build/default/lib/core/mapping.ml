let has_h = function Types.H | Types.VH -> true | Types.V -> false
let has_v = function Types.V | Types.VH -> true | Types.H -> false

(* Deterministic layout. Rows: roots first (in output order), then other
   H-nodes by id, the terminal last (bottom-most wordline), then one extra
   row per constant-0 output. Columns: by node id. *)
let layout (bg : Types.bdd_graph) (labeling : Types.labeling) =
  let n = Graphs.Ugraph.num_nodes bg.graph in
  if Array.length labeling.labels <> n then
    invalid_arg "Mapping: labeling does not match graph";
  (match Types.check_labeling bg labeling.labels with
   | Ok () -> ()
   | Error e -> invalid_arg ("Mapping: " ^ e));
  let labels = labeling.labels in
  let row_of = Array.make n (-1) in
  let col_of = Array.make n (-1) in
  let next_row = ref 0 in
  let assign_row v =
    if has_h labels.(v) && row_of.(v) < 0 then begin
      row_of.(v) <- !next_row;
      incr next_row
    end
  in
  (* Root wordlines on top. *)
  List.iter
    (fun (_, root) ->
       match root with
       | Types.Node v -> if v <> bg.terminal then assign_row v
       | Types.Const_false -> ())
    bg.roots;
  for v = 0 to n - 1 do
    if v <> bg.terminal then assign_row v
  done;
  assign_row bg.terminal;
  let const_false_rows =
    List.filter_map
      (fun (o, root) ->
         match root with
         | Types.Const_false ->
           let r = !next_row in
           incr next_row;
           Some (o, r)
         | Types.Node _ -> None)
      bg.roots
  in
  let next_col = ref 0 in
  for v = 0 to n - 1 do
    if has_v labels.(v) then begin
      col_of.(v) <- !next_col;
      incr next_col
    end
  done;
  row_of, col_of, !next_row, !next_col, const_false_rows

let node_row bg labeling v =
  let row_of, _, _, _, _ = layout bg labeling in
  if row_of.(v) >= 0 then Some row_of.(v) else None

let node_col bg labeling v =
  let _, col_of, _, _, _ = layout bg labeling in
  if col_of.(v) >= 0 then Some col_of.(v) else None

let run (bg : Types.bdd_graph) (labeling : Types.labeling) =
  let row_of, col_of, rows, cols, const_false_rows = layout bg labeling in
  (* A crossbar needs at least one wire of each kind even if every node
     carries only the other label (e.g. the single-node graph of the
     constant-1 function). *)
  let cols = max cols 1 in
  let rows = max rows 1 in
  let wire_of v =
    if row_of.(v) >= 0 then Crossbar.Design.Row row_of.(v)
    else Crossbar.Design.Col col_of.(v)
  in
  let outputs =
    List.map
      (fun (o, root) ->
         match root with
         | Types.Node v -> o, wire_of v
         | Types.Const_false ->
           o, Crossbar.Design.Row (List.assoc o const_false_rows))
      bg.roots
  in
  let design =
    Crossbar.Design.create ~rows ~cols ~input:(wire_of bg.terminal) ~outputs
  in
  (* VH fuses. *)
  Array.iteri
    (fun v l ->
       if l = Types.VH then
         Crossbar.Design.set design ~row:row_of.(v) ~col:col_of.(v)
           Crossbar.Literal.On)
    labeling.labels;
  (* Edge assignment: place each literal at a wordline/bitline junction of
     its endpoints. *)
  List.iter
    (fun (u, v, lit) ->
       let place a b =
         Crossbar.Design.set design ~row:row_of.(a) ~col:col_of.(b) lit
       in
       match row_of.(u) >= 0, col_of.(v) >= 0, row_of.(v) >= 0, col_of.(u) >= 0 with
       | true, true, _, _ -> place u v
       | _, _, true, true -> place v u
       | _ -> invalid_arg "Mapping: unrealisable edge (labeling invalid)")
    bg.edge_literals;
  design
