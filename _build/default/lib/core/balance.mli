(** Balancing the 2-colouring (the paper's Fig 6 optimisation).

    After the odd-cycle transversal is fixed, each connected component of
    the residual bipartite graph has exactly two colourings (one is the
    flip of the other). Choosing the flip per component to minimise the
    maximum dimension is a subset-sum problem over the per-component
    colour-count differences — solved exactly by dynamic programming (with
    a greedy fallback for very large instances).

    Alignment (Eq 7) restricts flips: components containing the terminal
    or a root must orient those nodes to H. When one component holds
    aligned nodes of both colours, no flip can satisfy them all; the
    minority aligned nodes are upgraded to VH (always safe, §V-B).

    [balance] (default true) enables the flip optimisation; with it off,
    free components keep their BFS colouring — the ablation baseline the
    paper's Fig 6 improves on. *)

val orient :
  ?alignment:bool ->
  ?balance:bool ->
  Types.bdd_graph ->
  transversal:bool array ->
  coloring:int array ->
  Types.label array
(** [orient bg ~transversal ~coloring] produces a full label array:
    transversal nodes become [VH]; each residual component is flipped to
    balance rows against columns. [coloring.(v)] must be 0/1 for kept
    nodes (a valid 2-colouring) and is ignored for transversal nodes.
    @raise Invalid_argument on arity mismatch or invalid colouring. *)

val exact_dp_limit : int
(** Components × range budget above which the solver falls back to the
    greedy sign-assignment heuristic. *)
