let of_sbdd (sbdd : Bdd.Sbdd.t) =
  let man = sbdd.man in
  let roots_nodes = List.map snd sbdd.roots in
  let reachable = Bdd.Manager.reachable man roots_nodes in
  (* Graph ids: terminal 1 first (id 0), then internal nodes. The
     0-terminal gets no id. *)
  let ids = Hashtbl.create 1024 in
  Hashtbl.replace ids Bdd.Manager.one 0;
  let next = ref 1 in
  List.iter
    (fun n ->
       if not (Bdd.Manager.is_terminal n) then begin
         Hashtbl.replace ids n !next;
         incr next
       end)
    reachable;
  let num_nodes = !next in
  let graph = Graphs.Ugraph.create num_nodes in
  let node_names = Array.make num_nodes "1" in
  let edge_literals = ref [] in
  List.iter
    (fun n ->
       if not (Bdd.Manager.is_terminal n) then begin
         let u = Hashtbl.find ids n in
         let var_name = sbdd.input_order.(Bdd.Manager.level man n) in
         node_names.(u) <- var_name;
         let add child lit =
           if child <> Bdd.Manager.zero then begin
             let v = Hashtbl.find ids child in
             Graphs.Ugraph.add_edge graph u v;
             let a, b = if u < v then u, v else v, u in
             edge_literals := (a, b, lit) :: !edge_literals
           end
         in
         add (Bdd.Manager.low man n) (Crossbar.Literal.Neg var_name);
         add (Bdd.Manager.high man n) (Crossbar.Literal.Pos var_name)
       end)
    reachable;
  let roots =
    List.map
      (fun (o, root) ->
         if root = Bdd.Manager.zero then o, Types.Const_false
         else o, Types.Node (Hashtbl.find ids root))
      sbdd.roots
  in
  {
    Types.graph;
    edge_literals = List.rev !edge_literals;
    terminal = 0;
    roots;
    node_names;
  }

let num_bdd_nodes (bg : Types.bdd_graph) = Graphs.Ugraph.num_nodes bg.graph
let num_bdd_edges (bg : Types.bdd_graph) = Graphs.Ugraph.num_edges bg.graph
