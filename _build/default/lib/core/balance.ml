let exact_dp_limit = 5_000_000

type component = {
  members : int list;
  count0 : int;  (* nodes coloured 0 *)
  count1 : int;
  aligned0 : int list;  (* aligned nodes coloured 0 *)
  aligned1 : int list;
}

(* Pick signs s_i ∈ {+1, −1} for the free deltas to bring [base + Σ s_i·d_i]
   as close to 0 as possible. Exact subset-sum DP when affordable. *)
let choose_signs ~base deltas =
  let k = Array.length deltas in
  let total = Array.fold_left (fun acc d -> acc + abs d) 0 deltas in
  let range = (2 * total) + 1 in
  if k = 0 then [||]
  else if k * range <= exact_dp_limit then begin
    (* reachable.(step) holds the set of achievable partial sums
       (offset by [total]); parents enable reconstruction. *)
    let reach = Array.make range false in
    let parent = Array.make_matrix k range 0 in
    reach.(total) <- true;
    for i = 0 to k - 1 do
      let next = Array.make range false in
      for s = 0 to range - 1 do
        if reach.(s) then begin
          let plus = s + deltas.(i) and minus = s - deltas.(i) in
          if plus >= 0 && plus < range && not next.(plus) then begin
            next.(plus) <- true;
            parent.(i).(plus) <- s
          end;
          if minus >= 0 && minus < range && not next.(minus) then begin
            next.(minus) <- true;
            parent.(i).(minus) <- s
          end
        end
      done;
      Array.blit next 0 reach 0 range
    done;
    (* Closest achievable sum to −base (so that base + sum ≈ 0). *)
    let target = -base + total in
    let best = ref (-1) in
    for s = 0 to range - 1 do
      if
        reach.(s)
        && (!best < 0 || abs (s - target) < abs (!best - target))
      then best := s
    done;
    let signs = Array.make k 1 in
    let s = ref !best in
    for i = k - 1 downto 0 do
      let prev = parent.(i).(!s) in
      signs.(i) <- (if !s - prev = deltas.(i) then 1 else -1);
      s := prev
    done;
    signs
  end
  else begin
    (* Greedy: largest |delta| first, pick the sign that shrinks the sum. *)
    let order = Array.init k (fun i -> i) in
    Array.sort (fun a b -> compare (abs deltas.(b)) (abs deltas.(a))) order;
    let signs = Array.make k 1 in
    let sum = ref base in
    Array.iter
      (fun i ->
         if abs (!sum + deltas.(i)) <= abs (!sum - deltas.(i)) then begin
           signs.(i) <- 1;
           sum := !sum + deltas.(i)
         end
         else begin
           signs.(i) <- -1;
           sum := !sum - deltas.(i)
         end)
      order;
    signs
  end

let orient ?(alignment = false) ?(balance = true) (bg : Types.bdd_graph)
    ~transversal ~coloring =
  let n = Graphs.Ugraph.num_nodes bg.graph in
  if Array.length transversal <> n || Array.length coloring <> n then
    invalid_arg "Balance.orient: arity mismatch";
  Graphs.Ugraph.iter_edges
    (fun u v ->
       if
         (not transversal.(u))
         && (not transversal.(v))
         && coloring.(u) = coloring.(v)
       then invalid_arg "Balance.orient: invalid 2-colouring")
    bg.graph;
  let labels =
    Array.init n (fun v -> if transversal.(v) then Types.VH else Types.V)
  in
  (* Aligned nodes (terminal + roots) that survive in the residual. *)
  let aligned = Array.make n false in
  if alignment then begin
    aligned.(bg.terminal) <- true;
    List.iter
      (fun (_, root) ->
         match root with
         | Types.Node v -> aligned.(v) <- true
         | Types.Const_false -> ())
      bg.roots
  end;
  (* Components of the residual graph. *)
  let keep = Array.map not transversal in
  let sub, map = Graphs.Ugraph.induced bg.graph ~keep in
  let comp_of_sub, num_comps = Graphs.Bipartite.components sub in
  let comps =
    Array.make num_comps
      { members = []; count0 = 0; count1 = 0; aligned0 = []; aligned1 = [] }
  in
  for v = n - 1 downto 0 do
    if keep.(v) then begin
      let c = comp_of_sub.(map.(v)) in
      let comp = comps.(c) in
      let comp = { comp with members = v :: comp.members } in
      let comp =
        if coloring.(v) = 0 then { comp with count0 = comp.count0 + 1 }
        else { comp with count1 = comp.count1 + 1 }
      in
      let comp =
        if not aligned.(v) then comp
        else if coloring.(v) = 0 then
          { comp with aligned0 = v :: comp.aligned0 }
        else { comp with aligned1 = v :: comp.aligned1 }
      in
      comps.(c) <- comp
    end
  done;
  (* Resolve alignment conflicts inside a component by upgrading the
     minority side's aligned nodes to VH. *)
  let upgraded = Array.make n false in
  let comps =
    Array.map
      (fun comp ->
         if comp.aligned0 <> [] && comp.aligned1 <> [] then begin
           let upgrade_list, keep0 =
             if List.length comp.aligned0 <= List.length comp.aligned1 then
               comp.aligned0, false
             else comp.aligned1, true
           in
           List.iter
             (fun v ->
                labels.(v) <- Types.VH;
                upgraded.(v) <- true)
             upgrade_list;
           if keep0 then { comp with aligned1 = [] }
           else { comp with aligned0 = [] }
         end
         else comp)
      comps
  in
  (* Contribution of a component to rows − cols. An unflipped component
     maps colour 0 to H; flipped maps colour 1 to H. Upgraded (VH) members
     contribute 0 either way. *)
  let effective comp =
    let c0 = ref 0 and c1 = ref 0 in
    List.iter
      (fun v ->
         if not upgraded.(v) then
           if coloring.(v) = 0 then incr c0 else incr c1)
      comp.members;
    !c0, !c1
  in
  (* Forced components (containing aligned nodes): orientation fixed so the
     aligned colour becomes H. Free components enter the DP. *)
  let base = ref 0 in
  (* VH nodes add 1 to both rows and cols: no effect on rows − cols. *)
  let flips = Array.make num_comps false in
  let free = ref [] in
  Array.iteri
    (fun c comp ->
       let c0, c1 = effective comp in
       let delta_unflipped = c0 - c1 in
       if comp.aligned0 <> [] then begin
         flips.(c) <- false;
         base := !base + delta_unflipped
       end
       else if comp.aligned1 <> [] then begin
         flips.(c) <- true;
         base := !base - delta_unflipped
       end
       else free := (c, delta_unflipped) :: !free)
    comps;
  let free = Array.of_list (List.rev !free) in
  let signs =
    if balance then choose_signs ~base:!base (Array.map snd free)
    else Array.make (Array.length free) 1
  in
  Array.iteri
    (fun i (c, _) -> flips.(c) <- signs.(i) < 0)
    free;
  (* Materialise labels: colour 0 → H unless the component is flipped. *)
  Array.iteri
    (fun c comp ->
       List.iter
         (fun v ->
            if not upgraded.(v) then
              let is_h = coloring.(v) = 0 <> flips.(c) in
              labels.(v) <- (if is_h then Types.H else Types.V))
         comp.members)
    comps;
  labels
