(** Shared types of the COMPACT flow: the BDD graph and VH-labelings. *)

(** Label of a BDD-graph node (§V-B): mapped to a vertical bitline, a
    horizontal wordline, or both (fused by a hardwired ON memristor). *)
type label = V | H | VH

type root = Node of int | Const_false
(** A function output: a graph node, or the constant-0 function (which has
    no node once the 0-terminal is removed). Constant-1 outputs are roots
    that happen to equal the graph's terminal node. *)

(** The undirected graph distilled from an SBDD by {!module:Preprocess}:
    one graph node per BDD node except the 0-terminal; one labelled edge
    per surviving decision edge. *)
type bdd_graph = {
  graph : Graphs.Ugraph.t;
  edge_literals : (int * int * Crossbar.Literal.t) list;
      (** [(u, v, lit)] with [u < v]; the memristor value realising the
          edge *)
  terminal : int;  (** graph node of the 1-terminal *)
  roots : (string * root) list;  (** output name → root, in output order *)
  node_names : string array;
      (** diagnostic name per graph node (variable of the BDD node, or
          ["1"] for the terminal) *)
}

(** A solution to the VH-labeling problem together with solver metadata. *)
type labeling = {
  labels : label array;
  vh_count : int;
  rows : int;  (** R = #H + #VH *)
  cols : int;  (** C = #V + #VH *)
  objective : float;  (** γ·S + (1−γ)·D for the γ it was produced with *)
  gamma : float;
  optimal : bool;  (** proven optimal for its objective *)
  lower_bound : float;  (** proven bound on the objective *)
  solve_time : float;
  method_name : string;
  trace : Milp.Branch_bound.trace_point list;
      (** solver convergence trace; empty for combinatorial methods *)
}

val semiperimeter : labeling -> int
(** [rows + cols], which also equals [num_nodes + vh_count]. *)

val max_dimension : labeling -> int

val objective_of : gamma:float -> rows:int -> cols:int -> float
(** γ·S + (1−γ)·D. *)

val check_labeling :
  ?alignment:bool -> bdd_graph -> label array -> (unit, string) Stdlib.result
(** Validates the connection constraints of Eq 2: no edge joins two
    pure-V or two pure-H nodes. With [alignment] (default false), also
    checks that the terminal and every root node carry an H component
    (Eq 7). *)

val make_labeling :
  bdd_graph ->
  gamma:float ->
  optimal:bool ->
  lower_bound:float ->
  solve_time:float ->
  method_name:string ->
  ?trace:Milp.Branch_bound.trace_point list ->
  label array ->
  labeling
(** Packages a label array, computing the derived counts.
    @raise Invalid_argument if {!check_labeling} fails (without
    alignment). *)

val pp_label : Format.formatter -> label -> unit
val pp_labeling : Format.formatter -> labeling -> unit
