(** Crossbar mapping (§V-C): binding a labelled BDD graph to a concrete
    crossbar design.

    Node assignment: every H/VH node receives a wordline, every V/VH node a
    bitline; each VH node's wordline/bitline pair is fused with a hardwired
    ON memristor. Edge assignment: the literal of every graph edge is
    programmed at the junction of one endpoint's wordline and the other's
    bitline (the labeling guarantees such a pair exists).

    Row layout follows the paper's conventions: output (root) wordlines at
    the top, the input (1-terminal) wordline at the bottom. Constant-0
    outputs get a dedicated, unconnected wordline; constant-1 outputs share
    the input's nanowire. *)

val run : Types.bdd_graph -> Types.labeling -> Crossbar.Design.t
(** @raise Invalid_argument if the labeling does not belong to the graph
    or violates the connection constraints. *)

val node_row : Types.bdd_graph -> Types.labeling -> int -> int option
(** Row assigned to a graph node by the deterministic layout of {!run};
    [None] for pure-V nodes. Exposed for tests. *)

val node_col : Types.bdd_graph -> Types.labeling -> int -> int option
(** Column assigned to a graph node; [None] for pure-H nodes. *)
