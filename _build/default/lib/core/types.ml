type label = V | H | VH
type root = Node of int | Const_false

type bdd_graph = {
  graph : Graphs.Ugraph.t;
  edge_literals : (int * int * Crossbar.Literal.t) list;
  terminal : int;
  roots : (string * root) list;
  node_names : string array;
}

type labeling = {
  labels : label array;
  vh_count : int;
  rows : int;
  cols : int;
  objective : float;
  gamma : float;
  optimal : bool;
  lower_bound : float;
  solve_time : float;
  method_name : string;
  trace : Milp.Branch_bound.trace_point list;
}

let semiperimeter l = l.rows + l.cols
let max_dimension l = max l.rows l.cols

let objective_of ~gamma ~rows ~cols =
  (gamma *. float_of_int (rows + cols))
  +. ((1. -. gamma) *. float_of_int (max rows cols))

let has_h = function H | VH -> true | V -> false
let has_v = function V | VH -> true | H -> false

let check_labeling ?(alignment = false) bg labels =
  let n = Graphs.Ugraph.num_nodes bg.graph in
  if Array.length labels <> n then Error "label array arity mismatch"
  else begin
    let error = ref None in
    Graphs.Ugraph.iter_edges
      (fun u v ->
         if !error = None then
           if labels.(u) = V && labels.(v) = V then
             error :=
               Some (Printf.sprintf "edge (%d, %d) joins two bitlines" u v)
           else if labels.(u) = H && labels.(v) = H then
             error :=
               Some (Printf.sprintf "edge (%d, %d) joins two wordlines" u v))
      bg.graph;
    (if alignment && !error = None then
       let check_aligned what node =
         if !error = None && not (has_h labels.(node)) then
           error :=
             Some
               (Printf.sprintf "%s (node %d) is not on a wordline" what node)
       in
       check_aligned "terminal" bg.terminal;
       List.iter
         (fun (o, root) ->
            match root with
            | Node node -> check_aligned ("output " ^ o) node
            | Const_false -> ())
         bg.roots);
    match !error with None -> Stdlib.Ok () | Some e -> Stdlib.Error e
  end

let counts labels =
  let vh = ref 0 and rows = ref 0 and cols = ref 0 in
  Array.iter
    (fun l ->
       if l = VH then incr vh;
       if has_h l then incr rows;
       if has_v l then incr cols)
    labels;
  !vh, !rows, !cols

let make_labeling bg ~gamma ~optimal ~lower_bound ~solve_time ~method_name
    ?(trace = []) labels =
  (match check_labeling bg labels with
   | Stdlib.Ok () -> ()
   | Stdlib.Error e -> invalid_arg ("Compact.Types.make_labeling: " ^ e));
  let vh_count, rows, cols = counts labels in
  {
    labels;
    vh_count;
    rows;
    cols;
    objective = objective_of ~gamma ~rows ~cols;
    gamma;
    optimal;
    lower_bound;
    solve_time;
    method_name;
    trace;
  }

let pp_label ppf l =
  Format.pp_print_string ppf (match l with V -> "V" | H -> "H" | VH -> "VH")

let pp_labeling ppf l =
  Format.fprintf ppf
    "%s: R=%d C=%d S=%d D=%d (#VH=%d, gamma=%.2f, obj=%.1f%s, %.3fs)"
    l.method_name l.rows l.cols (semiperimeter l) (max_dimension l) l.vh_count
    l.gamma l.objective
    (if l.optimal then ", optimal" else Printf.sprintf ", lb=%.1f" l.lower_bound)
    l.solve_time
