(** Bipartiteness testing, 2-colouring and connected components. *)

val two_color : Ugraph.t -> int array option
(** [two_color g] is [Some colors] with [colors.(v) ∈ {0, 1}] and no
    monochromatic edge, or [None] when [g] has an odd cycle. Isolated
    vertices get colour 0. *)

val is_bipartite : Ugraph.t -> bool

val odd_cycle : Ugraph.t -> int list option
(** A witness odd cycle (list of distinct vertices in cycle order) when the
    graph is not bipartite. *)

val components : Ugraph.t -> int array * int
(** [(comp, k)] where [comp.(v)] is the component index of [v],
    [0 <= comp.(v) < k]. *)

val component_members : Ugraph.t -> int list array
(** Vertices of each component, using the numbering of {!components}. *)
