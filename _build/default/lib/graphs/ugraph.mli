(** Simple undirected graphs over integer vertices [0 .. n-1].

    The graph is a mutable builder: create it with a fixed vertex count and
    add edges. Self-loops and parallel edges are silently ignored, so the
    structure is always a simple graph — the form required by the
    VH-labeling theory (a BDD graph never needs self-loops; a node is never
    its own child). *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices.
    @raise Invalid_argument if [n < 0]. *)

val of_edges : n:int -> (int * int) list -> t

val add_edge : t -> int -> int -> unit
(** Ignores self-loops and duplicates.
    @raise Invalid_argument if an endpoint is out of range. *)

val num_nodes : t -> int
val num_edges : t -> int
val has_edge : t -> int -> int -> bool
val degree : t -> int -> int

val neighbors : t -> int -> int list
(** In insertion order. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Each edge visited once, with the smaller endpoint first. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val edges : t -> (int * int) list

val max_degree : t -> int
(** 0 on the empty graph. *)

val copy : t -> t

val induced : t -> keep:bool array -> t * int array
(** [induced g ~keep] is the subgraph on the kept vertices together with
    the map from old vertex ids to new ids ([-1] for dropped vertices). *)

val complement_set : t -> int list -> bool array
(** [complement_set g vs] is the characteristic vector of [V \ vs]. *)

val pp : Format.formatter -> t -> unit
