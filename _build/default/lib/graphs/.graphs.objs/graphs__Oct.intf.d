lib/graphs/oct.mli: Ugraph
