lib/graphs/product.mli: Ugraph
