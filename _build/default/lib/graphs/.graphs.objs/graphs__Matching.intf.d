lib/graphs/matching.mli: Ugraph
