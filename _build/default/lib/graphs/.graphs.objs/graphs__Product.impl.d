lib/graphs/product.ml: Ugraph
