lib/graphs/matching.ml: Array List Queue Ugraph
