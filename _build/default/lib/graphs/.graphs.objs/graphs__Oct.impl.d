lib/graphs/oct.ml: Array Bipartite List Product Queue Ugraph Unix Vertex_cover
