lib/graphs/vertex_cover.ml: Array List Matching Ugraph Unix
