lib/graphs/bipartite.ml: Array List Queue Ugraph
