lib/graphs/vertex_cover.mli: Ugraph
