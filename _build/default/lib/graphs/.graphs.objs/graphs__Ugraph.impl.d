lib/graphs/ugraph.ml: Array Format Hashtbl List Printf
