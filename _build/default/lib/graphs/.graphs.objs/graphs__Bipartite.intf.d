lib/graphs/bipartite.mli: Ugraph
