(** Cartesian graph products. *)

val with_k2 : Ugraph.t -> Ugraph.t
(** [with_k2 g] is G□K2: two copies of [g] (vertex [v] becomes [v] in copy
    0 and [v + n] in copy 1) plus a rung edge [(v, v + n)] for every
    vertex. This is the product used by Lemma 1 of the paper to reduce the
    odd-cycle-transversal problem to vertex cover. *)

val copy0 : n:int -> int -> int
(** Product vertex of copy 0 for original vertex [v] (identity). *)

val copy1 : n:int -> int -> int
(** Product vertex of copy 1: [v + n]. *)

val original : n:int -> int -> int
(** Original vertex of a product vertex. *)
