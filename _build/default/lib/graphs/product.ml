let with_k2 g =
  let n = Ugraph.num_nodes g in
  let p = Ugraph.create (2 * n) in
  Ugraph.iter_edges
    (fun u v ->
       Ugraph.add_edge p u v;
       Ugraph.add_edge p (u + n) (v + n))
    g;
  for v = 0 to n - 1 do
    Ugraph.add_edge p v (v + n)
  done;
  p

let copy0 ~n:_ v = v
let copy1 ~n v = v + n
let original ~n v = if v >= n then v - n else v
