let bfs_color g =
  (* Colours via BFS; on a conflict returns the offending edge and the BFS
     parent forest so a witness cycle can be reconstructed. *)
  let n = Ugraph.num_nodes g in
  let color = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let conflict = ref None in
  let queue = Queue.create () in
  (try
     for s = 0 to n - 1 do
       if color.(s) < 0 then begin
         color.(s) <- 0;
         Queue.clear queue;
         Queue.add s queue;
         while not (Queue.is_empty queue) do
           let u = Queue.pop queue in
           List.iter
             (fun v ->
                if color.(v) < 0 then begin
                  color.(v) <- 1 - color.(u);
                  parent.(v) <- u;
                  Queue.add v queue
                end
                else if color.(v) = color.(u) then begin
                  conflict := Some (u, v);
                  raise Exit
                end)
             (Ugraph.neighbors g u)
         done
       end
     done
   with Exit -> ());
  color, parent, !conflict

let two_color g =
  let color, _, conflict = bfs_color g in
  match conflict with None -> Some color | Some _ -> None

let is_bipartite g = two_color g <> None

let odd_cycle g =
  let _, parent, conflict = bfs_color g in
  match conflict with
  | None -> None
  | Some (u, v) ->
    (* Walk both vertices up the BFS forest to their lowest common
       ancestor; the two paths plus edge (u, v) form an odd cycle. *)
    let path_to_root x =
      let rec go x acc = if x < 0 then acc else go parent.(x) (x :: acc) in
      go x []
    in
    let pu = path_to_root u and pv = path_to_root v in
    let rec strip_common pu pv lca =
      match pu, pv with
      | a :: pu', b :: pv' when a = b -> strip_common pu' pv' a
      | _ -> pu, pv, lca
    in
    let pu, pv, lca = strip_common pu pv (-1) in
    assert (lca >= 0);
    Some ((lca :: pu) @ List.rev pv)

let components g =
  let n = Ugraph.num_nodes g in
  let comp = Array.make n (-1) in
  let k = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if comp.(s) < 0 then begin
      comp.(s) <- !k;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
             if comp.(v) < 0 then begin
               comp.(v) <- !k;
               Queue.add v queue
             end)
          (Ugraph.neighbors g u)
      done;
      incr k
    end
  done;
  comp, !k

let component_members g =
  let comp, k = components g in
  let members = Array.make k [] in
  for v = Ugraph.num_nodes g - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  members
