type t = {
  n : int;
  mutable m : int;
  adj : int list array;  (* reverse insertion order; reversed on read *)
  seen : (int, unit) Hashtbl.t;  (* edge keys: min * n + max *)
}

let create n =
  if n < 0 then invalid_arg "Ugraph.create: negative size";
  { n; m = 0; adj = Array.make (max n 1) []; seen = Hashtbl.create (4 * n + 16) }

let num_nodes g = g.n
let num_edges g = g.m

let key g u v = if u < v then (u * g.n) + v else (v * g.n) + u

let check g v =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Ugraph: vertex %d out of range [0,%d)" v g.n)

let has_edge g u v =
  check g u;
  check g v;
  u <> v && Hashtbl.mem g.seen (key g u v)

let add_edge g u v =
  check g u;
  check g v;
  if u <> v && not (Hashtbl.mem g.seen (key g u v)) then begin
    Hashtbl.replace g.seen (key g u v) ();
    g.adj.(u) <- v :: g.adj.(u);
    g.adj.(v) <- u :: g.adj.(v);
    g.m <- g.m + 1
  end

let of_edges ~n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let degree g v =
  check g v;
  List.length g.adj.(v)

let neighbors g v =
  check g v;
  List.rev g.adj.(v)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := max !best (List.length g.adj.(v))
  done;
  !best

let copy g =
  {
    n = g.n;
    m = g.m;
    adj = Array.copy g.adj;
    seen = Hashtbl.copy g.seen;
  }

let induced g ~keep =
  if Array.length keep <> g.n then invalid_arg "Ugraph.induced: arity";
  let map = Array.make g.n (-1) in
  let next = ref 0 in
  for v = 0 to g.n - 1 do
    if keep.(v) then begin
      map.(v) <- !next;
      incr next
    end
  done;
  let sub = create !next in
  iter_edges
    (fun u v -> if keep.(u) && keep.(v) then add_edge sub map.(u) map.(v))
    g;
  sub, map

let complement_set g vs =
  let keep = Array.make g.n true in
  List.iter (fun v -> check g v; keep.(v) <- false) vs;
  keep

let pp ppf g =
  Format.fprintf ppf "graph(%d nodes, %d edges)" g.n g.m
