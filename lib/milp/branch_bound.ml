type status = Optimal | Feasible | No_incumbent | Infeasible

type trace_point = {
  t_elapsed : float;
  t_incumbent : float option;
  t_bound : float;
  t_gap : float;
}

type result = {
  status : status;
  objective : float option;
  solution : float array option;
  bound : float;
  gap : float;
  nodes : int;
  elapsed : float;
  trace : trace_point list;
}

let relative_gap ~incumbent ~bound =
  match incumbent with
  | None -> 1.0
  | Some inc ->
    let denom = max 1e-10 (abs_float inc) in
    min 1.0 (abs_float (inc -. bound) /. denom)

(* Binary min-heap on a float key. *)
module Heap = struct
  type 'a t = { mutable data : (float * 'a) option array; mutable len : int }

  let create () = { data = Array.make 64 None; len = 0 }
  let is_empty h = h.len = 0
  let length h = h.len

  (* The one accessor for occupied slots. Indices below [len] are always
     [Some] by construction, so a vacant read is a heap invariant bug —
     flagged as such rather than through scattered [assert false]s. *)
  let entry h i =
    match h.data.(i) with
    | Some e -> e
    | None -> invalid_arg "Branch_bound.Heap: vacant slot read"

  let key h i = fst (entry h i)

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h k v =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * h.len) None in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- Some (k, v);
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && key h ((!i - 1) / 2) > key h !i do
      let p = (!i - 1) / 2 in
      swap h p !i;
      i := p
    done

  let peek_key h = key h 0

  let pop h =
    let _, top = entry h 0 in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    h.data.(h.len) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && key h l < key h !smallest then smallest := l;
      if r < h.len && key h r < key h !smallest then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    top
end

(* A node is a conjunction of variable-bound tightenings; its [score] is
   the parent's LP value in minimisation direction (a valid bound). *)
type node = {
  fixings : (Lp.Problem.var * float * float) list;
  score : float;
}

let c_nodes = Obs.Counter.make "bb.nodes"

let solve ?(budget = Resilience.Budget.unlimited) ?(node_limit = max_int)
    ?initial ?(integer_tolerance = 1e-6) ?(jobs = 1) problem =
  let start = Obs.Clock.now () in
  let elapsed () = Obs.Clock.now () -. start in
  let dir =
    match Lp.Problem.sense problem with `Minimize -> 1.0 | `Maximize -> -1.0
  in
  let integer_vars = Array.of_list (Lp.Problem.integer_vars problem) in
  (* Scores are dir·objective so the search always minimises. *)
  let incumbent_score = ref infinity in
  let have_incumbent = ref false in
  let incumbent_point = ref None in
  (match initial with
   | Some (point, value) ->
     incumbent_score := dir *. value;
     have_incumbent := true;
     incumbent_point := Some (Array.copy point)
   | None -> ());
  let trace = ref [] in
  let nodes = ref 0 in
  let proved_infeasible_root = ref false in
  let heap = Heap.create () in
  Heap.push heap neg_infinity { fixings = []; score = neg_infinity };
  let best_bound = ref neg_infinity in
  let incumbent () =
    if !have_incumbent then Some (dir *. !incumbent_score) else None
  in
  let record () =
    (* Before the first node is expanded there is no proven bound: report
       the (infinite) trivial one so the gap honestly starts at 100%. *)
    let bound_obj = dir *. !best_bound in
    let gap = relative_gap ~incumbent:(incumbent ()) ~bound:bound_obj in
    trace :=
      {
        t_elapsed = elapsed ();
        t_incumbent = incumbent ();
        t_bound = bound_obj;
        t_gap = gap;
      }
      :: !trace;
    Obs.Span.event "bb.progress"
      ~attrs:
        [ "nodes", string_of_int !nodes;
          ( "incumbent",
            match incumbent () with
            | Some v -> Printf.sprintf "%.9g" v
            | None -> "-" );
          "bound", Printf.sprintf "%.9g" bound_obj;
          "gap", Printf.sprintf "%.4f" gap ]
  in
  (* Expansion of one node given its LP relaxation outcome. Both search
     loops run this strictly sequentially (the parallel loop merges in
     frontier-pop order), so incumbent and heap updates are ordered. *)
  let process node outcome =
    match outcome with
    | Lp.Simplex.Unbounded ->
      invalid_arg "Branch_bound.solve: relaxation unbounded"
    | Lp.Simplex.Infeasible ->
      if node.fixings = [] then proved_infeasible_root := true
    | Lp.Simplex.Optimal { objective; solution } ->
      let score = dir *. objective in
      if not (!have_incumbent && score >= !incumbent_score -. 1e-9) then begin
        let branch_var = ref None in
        let best_frac = ref integer_tolerance in
        Array.iter
          (fun (v : Lp.Problem.var) ->
             let x = solution.((v :> int)) in
             let frac = abs_float (x -. Float.round x) in
             if frac > !best_frac then begin
               best_frac := frac;
               branch_var := Some (v, x)
             end)
          integer_vars;
        match !branch_var with
        | None ->
          (* Integral solution: round off tolerance noise and accept. *)
          if (not !have_incumbent) || score < !incumbent_score -. 1e-9 then begin
            incumbent_score := score;
            have_incumbent := true;
            incumbent_point := Some (Array.copy solution);
            record ()
          end
        | Some (v, x) ->
          let lo = floor x in
          Heap.push heap score
            { fixings = (v, 0., lo) :: node.fixings; score };
          Heap.push heap score
            { fixings = (v, lo +. 1., infinity) :: node.fixings; score }
      end
  in
  let hit_limit = ref false in
  Obs.Span.with_ ~attrs:[ "jobs", string_of_int jobs ] "branch-bound"
  @@ fun () ->
  if jobs <= 1 then
    (* Sequential path: best-bound-first, one node at a time. *)
    while (not !hit_limit) && not (Heap.is_empty heap) do
      if Resilience.Budget.exhausted budget || !nodes >= node_limit then
        hit_limit := true
      else begin
        let node = Heap.pop heap in
        let bound_improved = node.score > !best_bound +. 1e-9 in
        best_bound := max !best_bound node.score;
        if bound_improved || !nodes land 63 = 0 then record ();
        if not (!have_incumbent && node.score >= !incumbent_score -. 1e-9)
        then begin
          incr nodes;
          Resilience.Budget.consume_nodes budget 1;
          process node
            (Obs.Span.with_ "lp-relax" (fun () ->
                 Lp.Problem.solve_relaxation ~bounds:node.fixings problem))
        end
      end
    done
  else
    (* Parallel path: synchronous rounds. Each round refills up to [jobs]
       surviving nodes from the global frontier, solves their LP
       relaxations on the pool, and merges the outcomes sequentially in
       frontier-pop order — so for a fixed [jobs] the exploration is
       fully deterministic. The shared incumbent is consulted twice per
       node: at refill (pruning before the LP is paid for) and again at
       merge (pruning against incumbents found earlier in the same
       round). Node and time limits are enforced at refill, so a round
       never admits more nodes than the remaining node budget. *)
    Parallel.with_pool ~jobs (fun pool ->
    while (not !hit_limit) && not (Heap.is_empty heap) do
      if Resilience.Budget.exhausted budget || !nodes >= node_limit then
        hit_limit := true
      else begin
        let batch = ref [] in
        let admitted = ref 0 in
        let cap = min jobs (node_limit - !nodes) in
        while !admitted < cap && not (Heap.is_empty heap) do
          let node = Heap.pop heap in
          let bound_improved = node.score > !best_bound +. 1e-9 in
          best_bound := max !best_bound node.score;
          if bound_improved || !nodes land 63 = 0 then record ();
          if not (!have_incumbent && node.score >= !incumbent_score -. 1e-9)
          then begin
            incr nodes;
            Resilience.Budget.consume_nodes budget 1;
            batch := node :: !batch;
            incr admitted
          end
        done;
        let batch = Array.of_list (List.rev !batch) in
        let outcomes =
          Parallel.run pool
            (Array.map
               (fun node () ->
                  Obs.Span.with_ "lp-relax" (fun () ->
                      Lp.Problem.solve_relaxation ~bounds:node.fixings problem))
               batch)
        in
        Array.iteri (fun i outcome -> process batch.(i) outcome) outcomes
      end
    done);
  let exhausted = Heap.is_empty heap in
  let final_score_bound =
    if exhausted then
      if !have_incumbent then !incumbent_score
      else !best_bound
    else max !best_bound (Heap.peek_key heap)
  in
  let final_score_bound =
    if !have_incumbent then min final_score_bound !incumbent_score
    else final_score_bound
  in
  let bound_obj = dir *. final_score_bound in
  let status =
    if !have_incumbent then
      if
        exhausted
        || relative_gap ~incumbent:(incumbent ()) ~bound:bound_obj < 1e-9
      then Optimal
      else Feasible
    else if exhausted && !proved_infeasible_root then Infeasible
    else if exhausted then Infeasible
    else No_incumbent
  in
  best_bound := final_score_bound;
  record ();
  Obs.Counter.add c_nodes !nodes;
  Obs.Span.add_attr "status" (match status with
    | Optimal -> "optimal"
    | Feasible -> "feasible"
    | No_incumbent -> "no-incumbent"
    | Infeasible -> "infeasible");
  Obs.Span.add_attr "nodes" (string_of_int !nodes);
  {
    status;
    objective = incumbent ();
    solution = !incumbent_point;
    bound = bound_obj;
    gap = relative_gap ~incumbent:(incumbent ()) ~bound:bound_obj;
    nodes = !nodes;
    elapsed = elapsed ();
    trace = List.rev !trace;
  }

let status_name = function
  | Optimal -> "optimal"
  | Feasible -> "feasible"
  | No_incumbent -> "no-incumbent"
  | Infeasible -> "infeasible"

let json_of_certificate r =
  let jf v = Printf.sprintf "%.17g" v in
  Printf.sprintf "{\"status\":\"%s\",\"objective\":%s,\"bound\":%s,\"gap\":%s}"
    (status_name r.status)
    (match r.objective with Some v -> jf v | None -> "null")
    (jf r.bound) (jf r.gap)
