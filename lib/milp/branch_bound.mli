(** Mixed-integer linear programming by LP-based branch & bound.

    Replaces the CPLEX dependency of the paper. The solver is *anytime*:
    under a work budget it returns the best incumbent, the best proven
    bound and the relative gap, and it records a convergence trace —
    exactly the quantities plotted in Figs 10 and 11 of the paper.

    Branching: most-fractional integer variable; node selection:
    best-bound-first. An initial incumbent (e.g. from a combinatorial
    heuristic) can be supplied to warm-start pruning. *)

type status =
  | Optimal  (** incumbent proven optimal *)
  | Feasible  (** budget exhausted with an incumbent *)
  | No_incumbent  (** budget exhausted before any integer solution *)
  | Infeasible

type trace_point = {
  t_elapsed : float;  (** seconds since solve started *)
  t_incumbent : float option;  (** best integer objective so far *)
  t_bound : float;  (** best proven bound *)
  t_gap : float;  (** relative gap, 1.0 when no incumbent *)
}

type result = {
  status : status;
  objective : float option;
  solution : float array option;
  bound : float;
  gap : float;
  nodes : int;
  elapsed : float;
  trace : trace_point list;  (** chronological *)
}

(** Binary min-heap on float keys — the solver's node frontier, exposed
    for direct unit testing. *)
module Heap : sig
  type 'a t

  val create : unit -> 'a t
  (** Empty heap with an initial capacity of 64 slots; grows by
      doubling. *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int
  val push : 'a t -> float -> 'a -> unit

  val peek_key : 'a t -> float
  (** Smallest key. @raise Invalid_argument on an empty heap. *)

  val pop : 'a t -> 'a
  (** Remove and return the value with the smallest key.
      @raise Invalid_argument on an empty heap. *)
end

val solve :
  ?budget:Resilience.Budget.t ->
  ?node_limit:int ->
  ?initial:float array * float ->
  ?integer_tolerance:float ->
  ?jobs:int ->
  Lp.Problem.t ->
  result
(** [solve p] minimises or maximises [p] (per its objective sense) with all
    variables marked integer restricted to integral values.
    [initial = (point, value)] seeds the incumbent — the point is trusted
    to be feasible. Default [integer_tolerance] is [1e-6].

    [budget] (default unlimited) is polled at the head of every
    expansion round and each expanded node is charged against its node
    allowance; on exhaustion the solver stops and reports the incumbent
    and bound found so far — it never raises. [node_limit] is the
    solver-local cap retained for per-call experiments; the budget's
    node allowance spans a whole pipeline stage. The LP relaxations of
    an already-admitted round always run to completion, keeping the
    merge deterministic.

    [jobs] (default 1) parallelises the search over a domain pool in
    synchronous rounds: each round pops up to [jobs] surviving nodes
    from the global best-bound frontier, solves their LP relaxations
    concurrently, and merges the outcomes sequentially in pop order
    against a shared incumbent. For a fixed [jobs] the exploration is
    deterministic; across different [jobs] counts the {e certificate}
    (status, objective, bound, gap — see {!json_of_certificate}) is
    identical whenever the search runs to exhaustion with a unique
    optimum, but [nodes] and [trace] may legitimately differ because a
    round cannot prune against incumbents its own batch has not merged
    yet. [jobs = 1] is the exact pre-pool sequential loop. *)

val relative_gap : incumbent:float option -> bound:float -> float
(** CPLEX-style gap: |incumbent − bound| / max(1e-10, |incumbent|);
    [1.0] when there is no incumbent. *)

val json_of_certificate : result -> string
(** Compact JSON of the jobs-independent fields only — status,
    objective, bound, gap ([%.17g] floats). On exhausted solves this is
    byte-identical for every [jobs] count; [nodes], [elapsed], [trace]
    and the solution point are deliberately excluded because they are
    schedule- or wall-clock-dependent. *)
