(** Unified tracing, metrics and profiling for the synthesis pipeline.

    [Obs] is a self-contained, domain-safe observability substrate:

    - {!Clock} is the single monotonic time source for the whole code
      base (time limits, watchdogs, span timestamps).
    - {!Span} records nestable named spans and instant events into
      per-domain buffers.  When tracing is disabled ({!enabled}
      [= false]) every entry point is a single load-and-branch with no
      allocation, so instrumentation can stay compiled into hot paths.
    - {!Counter} and {!Gauge} are process-wide metric cells.
      Registration into the global registry is lazy: a counter that is
      never touched while tracing is enabled leaves no trace in
      {!drain}.
    - {!Export} renders a drained {!snapshot} as Chrome
      [trace_event] JSON (one track per domain; loadable in Perfetto /
      [chrome://tracing]) or as a flat JSONL event log with stable
      field order for diffing.
    - {!Agg} folds a snapshot into per-phase rows for profile tables.

    {b Determinism contract.}  [drain] returns events in a canonical
    order keyed on (path, name, kind, non-[gc.*] attrs), with per-domain
    recording order breaking ties, so a program whose logical span tree
    is jobs-independent produces the same JSONL (after
    {!Export.normalize_jsonl} zeroes timestamps and GC attrs) for every
    jobs count.  Two same-named sibling events must carry a
    distinguishing attribute to be ordered deterministically across
    domains.

    {b Threading.}  Spans and events are recorded into the calling
    domain's own buffer without locks.  [drain] must only be called at
    quiescent points (no other domain actively recording), which all
    in-tree callers guarantee by draining outside [Parallel.run]. *)

val enabled : unit -> bool
(** Whether recording is on.  Defaults to [true] iff the
    [COMPACT_TRACE] environment variable is set (to anything). *)

val set_enabled : bool -> unit
(** Turn recording on or off at runtime. *)

module Clock : sig
  val now : unit -> float
  (** Monotonic time in seconds.  The epoch is arbitrary; only
      differences are meaningful.  Immune to wall-clock (NTP) steps. *)

  val now_ns : unit -> int64
  (** Monotonic time in nanoseconds. *)
end

(** {1 Spans and events} *)

module Span : sig
  val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f] inside a span named [name], nested under
      the calling domain's current span.  On exit (normal or
      exceptional) the span is recorded with its duration and GC delta
      attrs ([gc.minor_words], [gc.major_words]).  When disabled, calls
      [f] directly with zero overhead. *)

  val add_attr : string -> string -> unit
  (** Attach a key/value attr to the innermost open span of the calling
      domain.  No-op when disabled or outside any span. *)

  val event : ?attrs:(string * string) list -> string -> unit
  (** Record an instant event at the current span path. *)
end

type context
(** A capture of the calling domain's logical span path, for
    re-establishing parentage across domain boundaries. *)

val context : unit -> context
(** Capture the current span path (cheap; empty when disabled). *)

val with_context : context -> (unit -> 'a) -> 'a
(** [with_context ctx f] runs [f] with its span parentage rooted at
    [ctx] instead of the calling domain's current stack.  Used by
    [Parallel] so tasks record spans under the submitter's span path,
    keeping the span tree identical for every jobs count. *)

(** {1 Metrics} *)

module Counter : sig
  type t

  val make : string -> t
  (** Allocate a counter cell.  Pure allocation: nothing is registered
      until the first [add]/[incr] while tracing is enabled, so
      disabled runs register no metrics at all. *)

  val add : t -> int -> unit
  val incr : t -> unit
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit
end

(** {1 Draining} *)

type event = {
  ev_path : string;  (** '/'-joined names of enclosing spans. *)
  ev_name : string;
  ev_instant : bool;  (** [true] for {!Span.event}, [false] for spans. *)
  ev_start : float;  (** {!Clock.now} at span entry / event time. *)
  ev_dur : float;  (** Seconds; [0.] for instant events. *)
  ev_domain : int;  (** Recording domain's id. *)
  ev_seq : int;  (** Per-domain recording sequence number. *)
  ev_attrs : (string * string) list;
}

type snapshot = {
  events : event list;  (** Canonical order (see determinism contract). *)
  counters : (string * float) list;  (** Sorted by name. *)
}

val drain : unit -> snapshot
(** Take and reset all recorded events and registered metrics.  Only
    call at quiescent points. *)

val reset : unit -> unit
(** [drain] and discard. *)

(** {1 JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val parse : string -> t
  (** Parse one JSON document.  Raises {!Parse_error} on malformed
      input or trailing garbage. *)

  val to_string : t -> string
  (** Serialize compactly.  [Obj] field order is preserved. *)

  val member : string -> t -> t option
  (** [member k (Obj _)] looks up field [k]; [None] otherwise. *)
end

(** {1 Exporters} *)

module Export : sig
  val jsonl : snapshot -> string
  (** One JSON object per line, stable field order
      ([path], [name], [kind], [ts], [dur], [attrs]).  Timestamps are
      relative to the snapshot's earliest event.  Domain ids are
      deliberately omitted so the log is comparable across jobs
      counts; counters are not included (use {!chrome} or the
      snapshot directly). *)

  val chrome : snapshot -> string
  (** Chrome [trace_event] JSON: ["X"] complete events (one track per
      domain), ["i"] instants, ["C"] counters, plus thread-name
      metadata. *)

  val normalize_jsonl : string -> string
  (** Zero every [ts]/[dur] field and every [gc.*] attr in a JSONL
      log, making runs byte-comparable.  Idempotent. *)

  val write_jsonl : string -> snapshot -> unit
  val write_chrome : string -> snapshot -> unit
end

(** {1 Aggregation} *)

module Agg : sig
  type row = {
    r_path : string;
    r_name : string;
    r_count : int;
    r_total : float;  (** Summed duration, seconds. *)
    r_minor_words : float;  (** Summed [gc.minor_words]. *)
    r_major_words : float;
    r_first : float;  (** Earliest [ev_start] (for chronological sort). *)
  }

  val phases : snapshot -> row list
  (** Group the snapshot's spans by (path, name) and sum durations and
      GC attrs.  Rows come back in chronological order of first
      occurrence. *)
end
