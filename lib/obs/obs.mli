(** Unified tracing, metrics and profiling for the synthesis pipeline.

    [Obs] is a self-contained, domain-safe observability substrate:

    - {!Clock} is the single monotonic time source for the whole code
      base (time limits, watchdogs, span timestamps).
    - {!Span} records nestable named spans and instant events into
      per-domain buffers.  When tracing is disabled ({!enabled}
      [= false]) every entry point is a single load-and-branch with no
      allocation, so instrumentation can stay compiled into hot paths.
    - {!Counter} and {!Gauge} are process-wide metric cells.
      Registration into the global registry is lazy: a counter that is
      never touched while tracing is enabled leaves no trace in
      {!drain}.
    - {!Export} renders a drained {!snapshot} as Chrome
      [trace_event] JSON (one track per domain; loadable in Perfetto /
      [chrome://tracing]) or as a flat JSONL event log with stable
      field order for diffing.
    - {!Agg} folds a snapshot into per-phase rows for profile tables.

    {b Determinism contract.}  [drain] returns events in a canonical
    order keyed on (path, name, kind, non-[gc.*] attrs), with per-domain
    recording order breaking ties, so a program whose logical span tree
    is jobs-independent produces the same JSONL (after
    {!Export.normalize_jsonl} zeroes timestamps and GC attrs) for every
    jobs count.  Two same-named sibling events must carry a
    distinguishing attribute to be ordered deterministically across
    domains.

    {b Threading.}  Spans and events are recorded into the calling
    domain's own buffer without locks.  [drain] must only be called at
    quiescent points (no other domain actively recording), which all
    in-tree callers guarantee by draining outside [Parallel.run]. *)

val enabled : unit -> bool
(** Whether span tracing is on.  Defaults to [true] iff the
    [COMPACT_TRACE] environment variable is set (to anything). *)

val set_enabled : bool -> unit
(** Turn span tracing on or off at runtime. *)

val metrics_enabled : unit -> bool
(** Whether the always-on metrics plane is armed.  Independent of
    {!enabled}: a serving process keeps counters/gauges/histograms
    recording (readable via {!Metrics.snapshot} without draining)
    while span buffers stay off.  Defaults to [false]. *)

val set_metrics_enabled : bool -> unit

val recording : unit -> bool
(** [enabled () || metrics_enabled ()] — the gate every metric-cell
    write uses. *)

module Clock : sig
  val now : unit -> float
  (** Monotonic time in seconds.  The epoch is arbitrary; only
      differences are meaningful.  Immune to wall-clock (NTP) steps. *)

  val now_ns : unit -> int64
  (** Monotonic time in nanoseconds. *)
end

(** {1 Spans and events} *)

module Span : sig
  val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f] inside a span named [name], nested under
      the calling domain's current span.  On exit (normal or
      exceptional) the span is recorded with its duration and GC delta
      attrs ([gc.minor_words], [gc.major_words]).  When disabled, calls
      [f] directly with zero overhead. *)

  val add_attr : string -> string -> unit
  (** Attach a key/value attr to the innermost open span of the calling
      domain.  No-op when disabled or outside any span. *)

  val event : ?attrs:(string * string) list -> string -> unit
  (** Record an instant event at the current span path. *)
end

type context
(** A capture of the calling domain's logical span path, for
    re-establishing parentage across domain boundaries. *)

val context : unit -> context
(** Capture the current span path (cheap; empty when disabled). *)

val with_context : context -> (unit -> 'a) -> 'a
(** [with_context ctx f] runs [f] with its span parentage rooted at
    [ctx] instead of the calling domain's current stack.  Used by
    [Parallel] so tasks record spans under the submitter's span path,
    keeping the span tree identical for every jobs count. *)

(** {1 Metrics} *)

module Counter : sig
  type t

  val make : string -> t
  (** Allocate a counter cell.  Pure allocation: nothing is registered
      until the first [add]/[incr] while tracing is enabled, so
      disabled runs register no metrics at all. *)

  val add : t -> int -> unit
  val incr : t -> unit
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit
end

module Hist : sig
  type t
  (** Log-bucketed histogram with one atomic cell per bucket:
      observation is lock-free from any domain, and the export is an
      integer bucket-count vector, so merged results are
      byte-deterministic at any jobs count. *)

  val make : ?lo:float -> ?sub:int -> ?octaves:int -> unit_:string -> string -> t
  (** [make ~unit_ name] allocates a histogram whose first bucket holds
      values [<= lo] (default [0.001]), with [sub] sub-buckets per
      doubling (default [4]) over [octaves] doublings (default [28]),
      plus an overflow bucket.  Like {!Counter.make}, allocation is
      pure; registration happens on the first {!observe} while
      {!recording} is true. *)

  val make_ms : string -> t
  (** Milliseconds-unit latency histogram: 1 us .. ~268 s. *)

  val make_count : string -> t
  (** Integer-size histogram: power-of-two buckets 1 .. 2^20. *)

  val observe : t -> float -> unit
  (** Record one value.  NaN lands in the underflow bucket. *)

  val time : t -> (unit -> 'a) -> 'a
  (** Run a thunk and {!observe} its duration in milliseconds (even on
      exceptional exit).  Calls the thunk directly when not
      {!recording}. *)

  val quantile : t -> int -> float
  (** [quantile h p] is the nearest-rank p-th percentile over bucket
      upper bounds (the overflow bucket reports its lower bound);
      [0.] when empty. *)

  val percentile_exact : float array -> int -> float
  (** Nearest-rank percentile over raw samples: [0.] for an empty
      array, the sample itself for a singleton, [p] clamped to
      [0, 100].  The input array is not modified. *)
end

(** {1 Draining} *)

type event = {
  ev_path : string;  (** '/'-joined names of enclosing spans. *)
  ev_name : string;
  ev_instant : bool;  (** [true] for {!Span.event}, [false] for spans. *)
  ev_start : float;  (** {!Clock.now} at span entry / event time. *)
  ev_dur : float;  (** Seconds; [0.] for instant events. *)
  ev_domain : int;  (** Recording domain's id. *)
  ev_seq : int;  (** Per-domain recording sequence number. *)
  ev_attrs : (string * string) list;
}

type snapshot = {
  events : event list;  (** Canonical order (see determinism contract). *)
  counters : (string * float) list;  (** Sorted by name. *)
}

val drain : unit -> snapshot
(** Take and reset all recorded events and registered metrics
    (histogram buckets and flight-recorder rings are reset too, though
    only counters/gauges appear in the returned [counters]).  Only
    call at quiescent points. *)

val reset : unit -> unit
(** [drain] and discard. *)

(** {1 JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val parse : string -> t
  (** Parse one JSON document.  Raises {!Parse_error} on malformed
      input or trailing garbage. *)

  val to_string : t -> string
  (** Serialize compactly.  [Obj] field order is preserved. *)

  val member : string -> t -> t option
  (** [member k (Obj _)] looks up field [k]; [None] otherwise. *)
end

(** {1 Exporters} *)

module Export : sig
  val jsonl : snapshot -> string
  (** One JSON object per line, stable field order
      ([path], [name], [kind], [ts], [dur], [attrs]).  Timestamps are
      relative to the snapshot's earliest event.  Domain ids are
      deliberately omitted so the log is comparable across jobs
      counts; counters are not included (use {!chrome} or the
      snapshot directly). *)

  val chrome : snapshot -> string
  (** Chrome [trace_event] JSON: ["X"] complete events (one track per
      domain), ["i"] instants, ["C"] counters, plus thread-name
      metadata. *)

  val normalize_jsonl : string -> string
  (** Zero every [ts]/[dur] field and every [gc.*] attr in a JSONL
      log, making runs byte-comparable.  Idempotent. *)

  val write_jsonl : string -> snapshot -> unit
  val write_chrome : string -> snapshot -> unit

  val write_file_atomic : string -> string -> unit
  (** Write contents to a temp file, then rename over the target, so
      concurrent readers never observe a torn file. *)

  val parse_jsonl : string -> snapshot
  (** Parse a {!jsonl} export back into a snapshot (timestamps stay
      relative; domain ids are synthesized).  Raises
      {!Json.Parse_error} on lines that are not valid event objects. *)
end

(** {1 Metrics snapshot} *)

module Metrics : sig
  type hist_view = {
    hv_name : string;
    hv_unit : string;
    hv_count : int;
    hv_buckets : (float option * int) list;
        (** (upper bound, count) for non-empty buckets, ascending;
            [None] is the overflow bucket. *)
    hv_p50 : float;
    hv_p90 : float;
    hv_p99 : float;
    hv_max : float;
  }

  type view = {
    m_counters : (string * int) list;  (** Sorted by name. *)
    m_gauges : (string * float) list;  (** Sorted by name. *)
    m_hists : hist_view list;  (** Sorted by name. *)
  }

  val snapshot : unit -> view
  (** Non-destructive read of every registered metric — unlike
      {!drain}, nothing is zeroed or unregistered. *)

  val json_fields : view -> (string * Json.t) list
  (** The [counters]/[gauges]/[hists] members of the wire encoding. *)

  val to_json : view -> Json.t

  val of_json : Json.t -> view option
  (** Inverse of {!to_json}; accepts any object carrying the three
      members (e.g. a whole [metrics] wire reply). *)

  val prometheus : view -> string
  (** Prometheus text exposition: [compact_]-prefixed mangled names,
      counters and gauges as-is, histograms as cumulative
      [_bucket{le="..."}] series plus approximate [_sum] and exact
      [_count].  Deterministic for a given view. *)
end

(** {1 Flight recorder} *)

module Recorder : sig
  val capacity : int
  (** Per-domain ring capacity (events). *)

  val enabled : unit -> bool
  val set_enabled : bool -> unit
  (** Arm the always-on flight recorder: spans and events keep flowing
      into bounded per-domain rings even with tracing off, overwriting
      the oldest entries.  Defaults to [false]. *)

  val snapshot : unit -> snapshot
  (** Non-destructive capture of every domain's ring, oldest-first per
      domain, canonically ordered.  [counters] is empty. *)

  val dump_jsonl : unit -> string
  (** {!Export.jsonl} of {!snapshot} — replayable through
      [trace-check] and [profile --from]. *)

  val dump_file : string -> unit
  (** Atomically write {!dump_jsonl} to a path. *)
end

(** {1 Aggregation} *)

module Agg : sig
  type row = {
    r_path : string;
    r_name : string;
    r_count : int;
    r_total : float;  (** Summed duration, seconds. *)
    r_minor_words : float;  (** Summed [gc.minor_words]. *)
    r_major_words : float;
    r_first : float;  (** Earliest [ev_start] (for chronological sort). *)
  }

  val phases : snapshot -> row list
  (** Group the snapshot's spans by (path, name) and sum durations and
      GC attrs.  Rows come back in chronological order of first
      occurrence. *)
end
