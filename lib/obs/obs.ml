(* Domain-safe tracing and metrics.  See obs.mli for the contract.

   Layout: each domain lazily registers a buffer (DLS) holding a span
   stack and an event list; a global mutex guards only the registry of
   buffers and the lazily-registered metric cells, never the hot
   recording path.  [drain] walks the registry at a quiescent point and
   canonicalises the merged event list so the output is independent of
   domain interleaving. *)

let enabled_flag = Atomic.make (Sys.getenv_opt "COMPACT_TRACE" <> None)
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* The metrics plane is armed independently of tracing: a serving
   process keeps counters/gauges/histograms live (and readable without
   draining) while the span buffers stay off.  [recording] is the gate
   every metric-cell write uses. *)
let metrics_flag = Atomic.make false
let metrics_enabled () = Atomic.get metrics_flag
let set_metrics_enabled b = Atomic.set metrics_flag b
let recording () = enabled () || metrics_enabled ()

(* The flight recorder keeps spans flowing into bounded per-domain
   rings even with tracing off; [span_active] widens the span entry
   gate accordingly. *)
let recorder_flag = Atomic.make false
let recorder_enabled () = Atomic.get recorder_flag
let set_recorder_enabled b = Atomic.set recorder_flag b
let span_active () = Atomic.get enabled_flag || Atomic.get recorder_flag

module Clock = struct
  let now_ns () = Monotonic_clock.now ()
  let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
end

type event = {
  ev_path : string;
  ev_name : string;
  ev_instant : bool;
  ev_start : float;
  ev_dur : float;
  ev_domain : int;
  ev_seq : int;
  ev_attrs : (string * string) list;
}

type snapshot = {
  events : event list;
  counters : (string * float) list;
}

(* --- per-domain buffers -------------------------------------------- *)

type frame = {
  f_name : string;
  f_path : string;  (* path of the *parent*, i.e. path this span lives at *)
  f_start : float;
  f_minor : float;
  f_major : float;
  mutable f_attrs : (string * string) list;
}

type dbuf = {
  d_id : int;
  mutable d_events : event list;  (* newest first *)
  mutable d_seq : int;
  mutable d_stack : frame list;  (* innermost first *)
  mutable d_base : string;  (* context root when stack is empty *)
  (* Flight-recorder ring: bounded, allocated on first recorded event. *)
  mutable d_ring : event array;  (* [||] until first use *)
  mutable d_rpos : int;  (* next write slot *)
  mutable d_rlen : int;  (* live entries, saturates at capacity *)
}

let registry_mutex = Mutex.create ()
let registry : dbuf list ref = ref []

let dls_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { d_id = (Domain.self () :> int);
          d_events = [];
          d_seq = 0;
          d_stack = [];
          d_base = "";
          d_ring = [||];
          d_rpos = 0;
          d_rlen = 0 }
      in
      Mutex.protect registry_mutex (fun () -> registry := b :: !registry);
      b)

let buf () = Domain.DLS.get dls_key

let join_path p n = if p = "" then n else p ^ "/" ^ n

let current_path b =
  match b.d_stack with
  | f :: _ -> join_path f.f_path f.f_name
  | [] -> b.d_base

let ring_capacity = 512

let record b ev =
  if enabled () then b.d_events <- ev :: b.d_events;
  if recorder_enabled () then begin
    if Array.length b.d_ring = 0 then b.d_ring <- Array.make ring_capacity ev;
    b.d_ring.(b.d_rpos) <- ev;
    b.d_rpos <- (b.d_rpos + 1) mod ring_capacity;
    if b.d_rlen < ring_capacity then b.d_rlen <- b.d_rlen + 1
  end

let next_seq b =
  b.d_seq <- b.d_seq + 1;
  b.d_seq

let fmt_words w = Printf.sprintf "%.0f" w

(* --- spans --------------------------------------------------------- *)

module Span = struct
  let finish b fr =
    (* Pop down to (and including) [fr]; inner frames abandoned by a
       non-local exit are dropped without being recorded. *)
    let rec pop = function
      | top :: rest when top == fr -> b.d_stack <- rest
      | _ :: rest -> pop rest
      | [] -> b.d_stack <- []
    in
    pop b.d_stack;
    let t1 = Clock.now () in
    let attrs =
      (* GC deltas exist only when full tracing captured a baseline:
         [Gc.quick_stat] merges counters across live domains and costs
         whole microseconds once a solver pool is up, so the always-on
         recorder path must never touch it. *)
      if Float.is_nan fr.f_minor then fr.f_attrs
      else
        let q = Gc.quick_stat () in
        fr.f_attrs
        @ [ "gc.minor_words", fmt_words (q.Gc.minor_words -. fr.f_minor);
            "gc.major_words", fmt_words (q.Gc.major_words -. fr.f_major) ]
    in
    record b
      { ev_path = fr.f_path;
        ev_name = fr.f_name;
        ev_instant = false;
        ev_start = fr.f_start;
        ev_dur = t1 -. fr.f_start;
        ev_domain = b.d_id;
        ev_seq = next_seq b;
        ev_attrs = attrs }

  let with_ ?(attrs = []) name f =
    if not (span_active ()) then f ()
    else begin
      let b = buf () in
      let minor, major =
        if enabled () then
          let q = Gc.quick_stat () in
          q.Gc.minor_words, q.Gc.major_words
        else (nan, nan)
      in
      let fr =
        { f_name = name;
          f_path = current_path b;
          f_start = Clock.now ();
          f_minor = minor;
          f_major = major;
          f_attrs = attrs }
      in
      b.d_stack <- fr :: b.d_stack;
      match f () with
      | v ->
        finish b fr;
        v
      | exception e ->
        finish b fr;
        raise e
    end

  let add_attr k v =
    if span_active () then begin
      let b = buf () in
      match b.d_stack with
      | fr :: _ -> fr.f_attrs <- fr.f_attrs @ [ (k, v) ]
      | [] -> ()
    end

  let event ?(attrs = []) name =
    if span_active () then begin
      let b = buf () in
      record b
        { ev_path = current_path b;
          ev_name = name;
          ev_instant = true;
          ev_start = Clock.now ();
          ev_dur = 0.;
          ev_domain = b.d_id;
          ev_seq = next_seq b;
          ev_attrs = attrs }
    end
end

type context = string

let context () = if span_active () then current_path (buf ()) else ""

let with_context ctx f =
  if not (span_active ()) then f ()
  else begin
    let b = buf () in
    let saved_stack = b.d_stack and saved_base = b.d_base in
    b.d_stack <- [];
    b.d_base <- ctx;
    Fun.protect
      ~finally:(fun () ->
        b.d_stack <- saved_stack;
        b.d_base <- saved_base)
      f
  end

(* --- metrics ------------------------------------------------------- *)

type counter = { c_name : string; c_cell : int Atomic.t; mutable c_reg : bool }
type gauge = { g_name : string; g_cell : float Atomic.t; mutable g_reg : bool }

(* Log-bucketed histogram: bucket 0 holds values <= h_lo (and NaN),
   the last bucket is the overflow, and bucket i (0 < i < n-1) holds
   values in (lo * 2^((i-1)/sub), lo * 2^(i/sub)].  One atomic cell per
   bucket keeps observation lock-free from any domain and makes the
   merged export an integer sum — byte-deterministic at any -j. *)
type hist = {
  h_name : string;
  h_unit : string;  (* "ms", "count", ... *)
  h_lo : float;
  h_sub : int;  (* sub-buckets per octave *)
  h_cells : int Atomic.t array;
  mutable h_reg : bool;
}

type metric = C of counter | G of gauge | H of hist

let metrics : metric list ref = ref []

module Counter = struct
  type t = counter

  let make name = { c_name = name; c_cell = Atomic.make 0; c_reg = false }

  let register c =
    Mutex.protect registry_mutex (fun () ->
        if not c.c_reg then begin
          metrics := C c :: !metrics;
          c.c_reg <- true
        end)

  let add c n =
    if recording () then begin
      if not c.c_reg then register c;
      ignore (Atomic.fetch_and_add c.c_cell n)
    end

  let incr c = add c 1
end

module Gauge = struct
  type t = gauge

  let make name = { g_name = name; g_cell = Atomic.make 0.; g_reg = false }

  let register g =
    Mutex.protect registry_mutex (fun () ->
        if not g.g_reg then begin
          metrics := G g :: !metrics;
          g.g_reg <- true
        end)

  let set g v =
    if recording () then begin
      if not g.g_reg then register g;
      Atomic.set g.g_cell v
    end
end

module Hist = struct
  type t = hist

  let make ?(lo = 0.001) ?(sub = 4) ?(octaves = 28) ~unit_ name =
    let n = (octaves * sub) + 2 in
    { h_name = name;
      h_unit = unit_;
      h_lo = lo;
      h_sub = sub;
      h_cells = Array.init n (fun _ -> Atomic.make 0);
      h_reg = false }

  (* Latency in milliseconds: 1 us .. ~268 s at 4 buckets/octave. *)
  let make_ms name = make ~unit_:"ms" name

  (* Small integer sizes: powers of two 1 .. 2^20. *)
  let make_count name = make ~lo:1. ~sub:1 ~octaves:20 ~unit_:"count" name

  let register h =
    Mutex.protect registry_mutex (fun () ->
        if not h.h_reg then begin
          metrics := H h :: !metrics;
          h.h_reg <- true
        end)

  let bucket_of h v =
    let n = Array.length h.h_cells in
    if Float.is_nan v || v <= h.h_lo then 0
    else
      let i =
        1 + int_of_float (Float.log2 (v /. h.h_lo) *. float_of_int h.h_sub)
      in
      if i < 1 then 1 else if i >= n then n - 1 else i

  let observe h v =
    if recording () then begin
      if not h.h_reg then register h;
      ignore (Atomic.fetch_and_add h.h_cells.(bucket_of h v) 1)
    end

  (* Time [f] and record its duration in milliseconds. *)
  let time h f =
    if not (recording ()) then f ()
    else begin
      let t0 = Clock.now () in
      match f () with
      | v ->
        observe h ((Clock.now () -. t0) *. 1e3);
        v
      | exception e ->
        observe h ((Clock.now () -. t0) *. 1e3);
        raise e
    end

  let counts h = Array.map Atomic.get h.h_cells

  let total counts = Array.fold_left ( + ) 0 counts

  (* Upper bound of bucket [i]; the overflow bucket reports its lower
     bound (its upper bound is infinite). *)
  let bound h i =
    let n = Array.length h.h_cells in
    if i = 0 then h.h_lo
    else
      let i = if i >= n - 1 then n - 2 else i in
      h.h_lo *. Float.pow 2. (float_of_int i /. float_of_int h.h_sub)

  (* Nearest-rank quantile over bucket upper bounds: the value below
     which at least ceil(p/100 * total) observations fall.  Returns 0.
     on an empty histogram. *)
  let quantile_of_counts h counts p =
    let n = total counts in
    if n = 0 then 0.
    else begin
      let rank =
        max 1 (int_of_float (Float.ceil (float_of_int p /. 100. *. float_of_int n)))
      in
      let i = ref 0 and seen = ref 0 in
      (try
         Array.iteri
           (fun j c ->
             seen := !seen + c;
             if !seen >= rank then begin
               i := j;
               raise Exit
             end)
           counts
       with Exit -> ());
      bound h !i
    end

  let quantile h p = quantile_of_counts h (counts h) p

  (* Exact nearest-rank percentile over raw samples (for client-side
     report math): empty input yields 0., a single sample is returned
     for every p, and p is clamped to [0, 100]. *)
  let percentile_exact samples p =
    let n = Array.length samples in
    if n = 0 then 0.
    else begin
      let a = Array.copy samples in
      Array.sort compare a;
      let p = max 0 (min 100 p) in
      let rank =
        max 1 (int_of_float (Float.ceil (float_of_int p /. 100. *. float_of_int n)))
      in
      a.(min (n - 1) (rank - 1))
    end
end

(* --- drain --------------------------------------------------------- *)

let is_gc_attr k = String.length k >= 3 && String.sub k 0 3 = "gc."

let sort_key e =
  ( e.ev_path,
    e.ev_name,
    e.ev_instant,
    List.filter (fun (k, _) -> not (is_gc_attr k)) e.ev_attrs )

let canonical evs =
  List.stable_sort (fun a b -> compare (sort_key a) (sort_key b)) evs

let drain () =
  Mutex.protect registry_mutex (fun () ->
      let events =
        List.concat_map
          (fun b ->
            let evs = List.rev b.d_events in
            b.d_events <- [];
            b.d_seq <- 0;
            b.d_rpos <- 0;
            b.d_rlen <- 0;
            evs)
          (List.rev !registry)
      in
      let counters =
        List.filter_map
          (function
            | C c ->
              let v = Atomic.get c.c_cell in
              Atomic.set c.c_cell 0;
              c.c_reg <- false;
              Some (c.c_name, float_of_int v)
            | G g ->
              let v = Atomic.get g.g_cell in
              Atomic.set g.g_cell 0.;
              g.g_reg <- false;
              Some (g.g_name, v)
            | H h ->
              Array.iter (fun cell -> Atomic.set cell 0) h.h_cells;
              h.h_reg <- false;
              None)
          !metrics
      in
      metrics := [];
      { events = canonical events;
        counters = List.sort compare counters })

let reset () = ignore (drain ())

(* --- JSON ---------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
        | _ -> ()
    in
    let expect c =
      if peek () = c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let parse_lit lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ lit)
    in
    let add_utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' ->
          advance ();
          Buffer.contents buf
        | '\\' ->
          advance ();
          if !pos >= n then fail "truncated escape";
          (match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 >= n then fail "truncated \\u escape";
             (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
              | Some code ->
                add_utf8 buf code;
                pos := !pos + 4
              | None -> fail "bad \\u escape")
           | _ -> fail "bad escape");
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && numchar s.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ((k, v) :: acc)
            | '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              items (v :: acc)
            | ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
      | '"' -> Str (parse_string ())
      | 't' -> parse_lit "true" (Bool true)
      | 'f' -> parse_lit "false" (Bool false)
      | 'n' -> parse_lit "null" Null
      | c when c = '-' || (c >= '0' && c <= '9') -> Num (parse_number ())
      | _ -> fail "unexpected character"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let num_to_string f =
    if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" (if Float.is_nan f then 0. else f)
    else Printf.sprintf "%.9g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    write buf v;
    Buffer.contents buf

  let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
end

(* --- exporters ----------------------------------------------------- *)

module Export = struct
  let t0_of events =
    List.fold_left (fun acc e -> Float.min acc e.ev_start) infinity events

  let attr_obj attrs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)

  let jsonl snap =
    let t0 = t0_of snap.events in
    let buf = Buffer.create 4096 in
    List.iter
      (fun e ->
        let line =
          Json.Obj
            [ "path", Json.Str e.ev_path;
              "name", Json.Str e.ev_name;
              "kind", Json.Str (if e.ev_instant then "instant" else "span");
              "ts", Json.Num (e.ev_start -. t0);
              "dur", Json.Num e.ev_dur;
              "attrs", attr_obj e.ev_attrs ]
        in
        Buffer.add_string buf (Json.to_string line);
        Buffer.add_char buf '\n')
      snap.events;
    Buffer.contents buf

  let normalize_jsonl log =
    let normalize_line line =
      match Json.parse line with
      | Json.Obj fields ->
        let fields =
          List.map
            (fun (k, v) ->
              match k, v with
              | ("ts" | "dur"), _ -> (k, Json.Num 0.)
              | "attrs", Json.Obj attrs ->
                ( k,
                  Json.Obj
                    (List.map
                       (fun (ak, av) ->
                         if is_gc_attr ak then (ak, Json.Str "0") else (ak, av))
                       attrs) )
              | _ -> (k, v))
            fields
        in
        Json.to_string (Json.Obj fields)
      | v -> Json.to_string v
    in
    String.split_on_char '\n' log
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map normalize_line
    |> List.map (fun l -> l ^ "\n")
    |> String.concat ""

  let chrome snap =
    let t0 = t0_of snap.events in
    let t_end =
      List.fold_left
        (fun acc e -> Float.max acc (e.ev_start +. e.ev_dur))
        t0 snap.events
    in
    let us t = (t -. t0) *. 1e6 in
    let domains =
      List.sort_uniq compare (List.map (fun e -> e.ev_domain) snap.events)
    in
    let meta =
      Json.Obj
        [ "name", Json.Str "process_name";
          "ph", Json.Str "M";
          "pid", Json.Num 0.;
          "args", Json.Obj [ "name", Json.Str "compact" ] ]
      :: List.map
           (fun d ->
             Json.Obj
               [ "name", Json.Str "thread_name";
                 "ph", Json.Str "M";
                 "pid", Json.Num 0.;
                 "tid", Json.Num (float_of_int d);
                 "args",
                 Json.Obj [ "name", Json.Str (Printf.sprintf "domain %d" d) ] ])
           domains
    in
    let ev_json e =
      let common =
        [ "name", Json.Str e.ev_name;
          "cat", Json.Str "compact";
          "ts", Json.Num (us e.ev_start);
          "pid", Json.Num 0.;
          "tid", Json.Num (float_of_int e.ev_domain);
          "args", attr_obj (("path", e.ev_path) :: e.ev_attrs) ]
      in
      if e.ev_instant then
        Json.Obj (("ph", Json.Str "i") :: ("s", Json.Str "t") :: common)
      else
        Json.Obj
          (("ph", Json.Str "X") :: ("dur", Json.Num (e.ev_dur *. 1e6)) :: common)
    in
    let counter_json (name, v) =
      Json.Obj
        [ "name", Json.Str name;
          "ph", Json.Str "C";
          "ts", Json.Num (us t_end);
          "pid", Json.Num 0.;
          "tid", Json.Num 0.;
          "args", Json.Obj [ "value", Json.Num v ] ]
    in
    Json.to_string
      (Json.Obj
         [ "traceEvents",
           Json.Arr
             (meta
             @ List.map ev_json snap.events
             @ List.map counter_json snap.counters);
           "displayTimeUnit", Json.Str "ms" ])

  let write_file path contents =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)

  (* Write-then-rename so readers never observe a torn file — the same
     discipline the persistent cache snapshot uses. *)
  let write_file_atomic path contents =
    let tmp = path ^ ".tmp" in
    write_file tmp contents;
    Sys.rename tmp path

  let write_jsonl path snap = write_file path (jsonl snap)
  let write_chrome path snap = write_file path (chrome snap)

  (* Parse a JSONL export back into a snapshot (flight-recorder replay
     for `profile --from`).  Raises [Json.Parse_error] on lines missing
     the path/name/kind fields. *)
  let parse_jsonl text =
    let parse_line i line =
      let j = Json.parse line in
      let str k =
        match Json.member k j with
        | Some (Json.Str s) -> s
        | _ -> raise (Json.Parse_error ("missing \"" ^ k ^ "\""))
      in
      let num k =
        match Json.member k j with Some (Json.Num f) -> f | _ -> 0.
      in
      let attrs =
        match Json.member "attrs" j with
        | Some (Json.Obj fields) ->
          List.map
            (fun (k, v) ->
              (k, match v with Json.Str s -> s | v -> Json.to_string v))
            fields
        | _ -> []
      in
      { ev_path = str "path";
        ev_name = str "name";
        ev_instant = str "kind" = "instant";
        ev_start = num "ts";
        ev_dur = num "dur";
        ev_domain = 0;
        ev_seq = i + 1;
        ev_attrs = attrs }
    in
    let lines =
      String.split_on_char '\n' text
      |> List.filter (fun l -> String.trim l <> "")
    in
    { events = List.mapi parse_line lines; counters = [] }
end

(* --- metrics snapshot + renderers ---------------------------------- *)

module Metrics = struct
  type hist_view = {
    hv_name : string;
    hv_unit : string;
    hv_count : int;
    hv_buckets : (float option * int) list;
        (* (upper bound, count) for non-empty buckets; None = overflow *)
    hv_p50 : float;
    hv_p90 : float;
    hv_p99 : float;
    hv_max : float;
  }

  type view = {
    m_counters : (string * int) list;
    m_gauges : (string * float) list;
    m_hists : hist_view list;
  }

  let hist_view h =
    let counts = Hist.counts h in
    let n = Array.length counts in
    let buckets = ref [] in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          let le = if i = n - 1 then None else Some (Hist.bound h i) in
          buckets := (le, c) :: !buckets
        end)
      counts;
    { hv_name = h.h_name;
      hv_unit = h.h_unit;
      hv_count = Hist.total counts;
      hv_buckets = List.rev !buckets;
      hv_p50 = Hist.quantile_of_counts h counts 50;
      hv_p90 = Hist.quantile_of_counts h counts 90;
      hv_p99 = Hist.quantile_of_counts h counts 99;
      hv_max = Hist.quantile_of_counts h counts 100 }

  (* Non-destructive read of every registered metric: unlike [drain],
     nothing is zeroed or unregistered, so a serving process can answer
     `metrics` requests forever.  Sorted by name for determinism. *)
  let snapshot () =
    Mutex.protect registry_mutex (fun () ->
        let cs = ref [] and gs = ref [] and hs = ref [] in
        List.iter
          (function
            | C c -> cs := (c.c_name, Atomic.get c.c_cell) :: !cs
            | G g -> gs := (g.g_name, Atomic.get g.g_cell) :: !gs
            | H h -> hs := hist_view h :: !hs)
          !metrics;
        { m_counters = List.sort compare !cs;
          m_gauges = List.sort compare !gs;
          m_hists = List.sort (fun a b -> compare a.hv_name b.hv_name) !hs })

  let hist_json hv =
    Json.Obj
      [ "name", Json.Str hv.hv_name;
        "unit", Json.Str hv.hv_unit;
        "count", Json.Num (float_of_int hv.hv_count);
        "buckets",
        Json.Arr
          (List.map
             (fun (le, c) ->
               Json.Arr
                 [ (match le with Some b -> Json.Num b | None -> Json.Null);
                   Json.Num (float_of_int c) ])
             hv.hv_buckets);
        "p50", Json.Num hv.hv_p50;
        "p90", Json.Num hv.hv_p90;
        "p99", Json.Num hv.hv_p99;
        "max", Json.Num hv.hv_max ]

  let json_fields v =
    [ "counters",
      Json.Obj (List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) v.m_counters);
      "gauges", Json.Obj (List.map (fun (k, x) -> (k, Json.Num x)) v.m_gauges);
      "hists", Json.Arr (List.map hist_json v.m_hists) ]

  let to_json v = Json.Obj (json_fields v)

  (* Accepts any object carrying counters/gauges/hists members — in
     particular a whole `metrics` wire reply. *)
  let of_json j =
    let num = function Json.Num f -> f | _ -> 0. in
    match
      (Json.member "counters" j, Json.member "gauges" j, Json.member "hists" j)
    with
    | Some (Json.Obj cs), Some (Json.Obj gs), Some (Json.Arr hs) ->
      let hist hj =
        match hj with
        | Json.Obj _ ->
          let str k =
            match Json.member k hj with Some (Json.Str s) -> s | _ -> ""
          in
          let fnum k =
            match Json.member k hj with Some (Json.Num f) -> f | _ -> 0.
          in
          let buckets =
            match Json.member "buckets" hj with
            | Some (Json.Arr bs) ->
              List.filter_map
                (function
                  | Json.Arr [ le; Json.Num c ] ->
                    let le =
                      match le with Json.Num b -> Some b | _ -> None
                    in
                    Some (le, int_of_float c)
                  | _ -> None)
                bs
            | _ -> []
          in
          Some
            { hv_name = str "name";
              hv_unit = str "unit";
              hv_count = int_of_float (fnum "count");
              hv_buckets = buckets;
              hv_p50 = fnum "p50";
              hv_p90 = fnum "p90";
              hv_p99 = fnum "p99";
              hv_max = fnum "max" }
        | _ -> None
      in
      Some
        { m_counters =
            List.map (fun (k, v) -> (k, int_of_float (num v))) cs;
          m_gauges = List.map (fun (k, v) -> (k, num v)) gs;
          m_hists = List.filter_map hist hs }
    | _ -> None

  let mangle name =
    "compact_"
    ^ String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
          | _ -> '_')
        name

  (* Prometheus text exposition.  Histogram buckets are cumulative; the
     _sum is approximated from bucket upper bounds in a fixed order, so
     the rendering of a given snapshot is deterministic. *)
  let prometheus v =
    let buf = Buffer.create 1024 in
    let num = Json.num_to_string in
    List.iter
      (fun (k, n) ->
        let m = mangle k in
        Printf.bprintf buf "# TYPE %s counter\n%s %d\n" m m n)
      v.m_counters;
    List.iter
      (fun (k, x) ->
        let m = mangle k in
        Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" m m (num x))
      v.m_gauges;
    List.iter
      (fun hv ->
        let m = mangle hv.hv_name in
        Printf.bprintf buf "# TYPE %s histogram\n" m;
        let cum = ref 0 and sum = ref 0. in
        let saw_inf = ref false in
        List.iter
          (fun (le, c) ->
            cum := !cum + c;
            let le_s =
              match le with
              | Some b ->
                sum := !sum +. (b *. float_of_int c);
                num b
              | None ->
                saw_inf := true;
                "+Inf"
            in
            Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" m le_s !cum)
          hv.hv_buckets;
        if not !saw_inf then
          Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" m !cum;
        Printf.bprintf buf "%s_sum %s\n" m (num !sum);
        Printf.bprintf buf "%s_count %d\n" m hv.hv_count)
      v.m_hists;
    Buffer.contents buf
end

(* --- flight recorder ------------------------------------------------ *)

module Recorder = struct
  let capacity = ring_capacity
  let set_enabled = set_recorder_enabled
  let enabled = recorder_enabled

  (* Non-destructive: collect every domain's ring oldest-first and
     canonicalise like [drain] so dumps are stable for a given set of
     recorded spans. *)
  let snapshot () =
    Mutex.protect registry_mutex (fun () ->
        let events =
          List.concat_map
            (fun b ->
              let n = b.d_rlen in
              if n = 0 then []
              else begin
                let cap = Array.length b.d_ring in
                let start = if n < cap then 0 else b.d_rpos in
                List.init n (fun i -> b.d_ring.((start + i) mod cap))
              end)
            (List.rev !registry)
        in
        { events = canonical events; counters = [] })

  let dump_jsonl () = Export.jsonl (snapshot ())
  let dump_file path = Export.write_file_atomic path (dump_jsonl ())
end

(* --- aggregation --------------------------------------------------- *)

module Agg = struct
  type row = {
    r_path : string;
    r_name : string;
    r_count : int;
    r_total : float;
    r_minor_words : float;
    r_major_words : float;
    r_first : float;
  }

  let attr_float k attrs =
    match List.assoc_opt k attrs with
    | Some v -> Option.value ~default:0. (float_of_string_opt v)
    | None -> 0.

  let phases snap =
    let tbl = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun e ->
        if not e.ev_instant then begin
          let key = (e.ev_path, e.ev_name) in
          let row =
            match Hashtbl.find_opt tbl key with
            | Some r -> r
            | None ->
              let r =
                ref
                  { r_path = e.ev_path;
                    r_name = e.ev_name;
                    r_count = 0;
                    r_total = 0.;
                    r_minor_words = 0.;
                    r_major_words = 0.;
                    r_first = infinity }
              in
              Hashtbl.add tbl key r;
              order := key :: !order;
              r
          in
          row :=
            { !row with
              r_count = !row.r_count + 1;
              r_total = !row.r_total +. e.ev_dur;
              r_minor_words =
                !row.r_minor_words +. attr_float "gc.minor_words" e.ev_attrs;
              r_major_words =
                !row.r_major_words +. attr_float "gc.major_words" e.ev_attrs;
              r_first = Float.min !row.r_first e.ev_start }
        end)
      snap.events;
    List.rev !order
    |> List.map (fun key -> !(Hashtbl.find tbl key))
    |> List.sort (fun a b -> compare (a.r_first, a.r_path) (b.r_first, b.r_path))
end
