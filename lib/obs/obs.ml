(* Domain-safe tracing and metrics.  See obs.mli for the contract.

   Layout: each domain lazily registers a buffer (DLS) holding a span
   stack and an event list; a global mutex guards only the registry of
   buffers and the lazily-registered metric cells, never the hot
   recording path.  [drain] walks the registry at a quiescent point and
   canonicalises the merged event list so the output is independent of
   domain interleaving. *)

let enabled_flag = Atomic.make (Sys.getenv_opt "COMPACT_TRACE" <> None)
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

module Clock = struct
  let now_ns () = Monotonic_clock.now ()
  let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
end

type event = {
  ev_path : string;
  ev_name : string;
  ev_instant : bool;
  ev_start : float;
  ev_dur : float;
  ev_domain : int;
  ev_seq : int;
  ev_attrs : (string * string) list;
}

type snapshot = {
  events : event list;
  counters : (string * float) list;
}

(* --- per-domain buffers -------------------------------------------- *)

type frame = {
  f_name : string;
  f_path : string;  (* path of the *parent*, i.e. path this span lives at *)
  f_start : float;
  f_minor : float;
  f_major : float;
  mutable f_attrs : (string * string) list;
}

type dbuf = {
  d_id : int;
  mutable d_events : event list;  (* newest first *)
  mutable d_seq : int;
  mutable d_stack : frame list;  (* innermost first *)
  mutable d_base : string;  (* context root when stack is empty *)
}

let registry_mutex = Mutex.create ()
let registry : dbuf list ref = ref []

let dls_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { d_id = (Domain.self () :> int);
          d_events = [];
          d_seq = 0;
          d_stack = [];
          d_base = "" }
      in
      Mutex.protect registry_mutex (fun () -> registry := b :: !registry);
      b)

let buf () = Domain.DLS.get dls_key

let join_path p n = if p = "" then n else p ^ "/" ^ n

let current_path b =
  match b.d_stack with
  | f :: _ -> join_path f.f_path f.f_name
  | [] -> b.d_base

let record b ev = b.d_events <- ev :: b.d_events

let next_seq b =
  b.d_seq <- b.d_seq + 1;
  b.d_seq

let fmt_words w = Printf.sprintf "%.0f" w

(* --- spans --------------------------------------------------------- *)

module Span = struct
  let finish b fr =
    (* Pop down to (and including) [fr]; inner frames abandoned by a
       non-local exit are dropped without being recorded. *)
    let rec pop = function
      | top :: rest when top == fr -> b.d_stack <- rest
      | _ :: rest -> pop rest
      | [] -> b.d_stack <- []
    in
    pop b.d_stack;
    let t1 = Clock.now () in
    let q = Gc.quick_stat () in
    let attrs =
      fr.f_attrs
      @ [ "gc.minor_words", fmt_words (q.Gc.minor_words -. fr.f_minor);
          "gc.major_words", fmt_words (q.Gc.major_words -. fr.f_major) ]
    in
    record b
      { ev_path = fr.f_path;
        ev_name = fr.f_name;
        ev_instant = false;
        ev_start = fr.f_start;
        ev_dur = t1 -. fr.f_start;
        ev_domain = b.d_id;
        ev_seq = next_seq b;
        ev_attrs = attrs }

  let with_ ?(attrs = []) name f =
    if not (enabled ()) then f ()
    else begin
      let b = buf () in
      let q = Gc.quick_stat () in
      let fr =
        { f_name = name;
          f_path = current_path b;
          f_start = Clock.now ();
          f_minor = q.Gc.minor_words;
          f_major = q.Gc.major_words;
          f_attrs = attrs }
      in
      b.d_stack <- fr :: b.d_stack;
      match f () with
      | v ->
        finish b fr;
        v
      | exception e ->
        finish b fr;
        raise e
    end

  let add_attr k v =
    if enabled () then begin
      let b = buf () in
      match b.d_stack with
      | fr :: _ -> fr.f_attrs <- fr.f_attrs @ [ (k, v) ]
      | [] -> ()
    end

  let event ?(attrs = []) name =
    if enabled () then begin
      let b = buf () in
      record b
        { ev_path = current_path b;
          ev_name = name;
          ev_instant = true;
          ev_start = Clock.now ();
          ev_dur = 0.;
          ev_domain = b.d_id;
          ev_seq = next_seq b;
          ev_attrs = attrs }
    end
end

type context = string

let context () = if enabled () then current_path (buf ()) else ""

let with_context ctx f =
  if not (enabled ()) then f ()
  else begin
    let b = buf () in
    let saved_stack = b.d_stack and saved_base = b.d_base in
    b.d_stack <- [];
    b.d_base <- ctx;
    Fun.protect
      ~finally:(fun () ->
        b.d_stack <- saved_stack;
        b.d_base <- saved_base)
      f
  end

(* --- metrics ------------------------------------------------------- *)

type counter = { c_name : string; c_cell : int Atomic.t; mutable c_reg : bool }
type gauge = { g_name : string; g_cell : float Atomic.t; mutable g_reg : bool }
type metric = C of counter | G of gauge

let metrics : metric list ref = ref []

module Counter = struct
  type t = counter

  let make name = { c_name = name; c_cell = Atomic.make 0; c_reg = false }

  let register c =
    Mutex.protect registry_mutex (fun () ->
        if not c.c_reg then begin
          metrics := C c :: !metrics;
          c.c_reg <- true
        end)

  let add c n =
    if enabled () then begin
      if not c.c_reg then register c;
      ignore (Atomic.fetch_and_add c.c_cell n)
    end

  let incr c = add c 1
end

module Gauge = struct
  type t = gauge

  let make name = { g_name = name; g_cell = Atomic.make 0.; g_reg = false }

  let register g =
    Mutex.protect registry_mutex (fun () ->
        if not g.g_reg then begin
          metrics := G g :: !metrics;
          g.g_reg <- true
        end)

  let set g v =
    if enabled () then begin
      if not g.g_reg then register g;
      Atomic.set g.g_cell v
    end
end

(* --- drain --------------------------------------------------------- *)

let is_gc_attr k = String.length k >= 3 && String.sub k 0 3 = "gc."

let sort_key e =
  ( e.ev_path,
    e.ev_name,
    e.ev_instant,
    List.filter (fun (k, _) -> not (is_gc_attr k)) e.ev_attrs )

let canonical evs =
  List.stable_sort (fun a b -> compare (sort_key a) (sort_key b)) evs

let drain () =
  Mutex.protect registry_mutex (fun () ->
      let events =
        List.concat_map
          (fun b ->
            let evs = List.rev b.d_events in
            b.d_events <- [];
            b.d_seq <- 0;
            evs)
          (List.rev !registry)
      in
      let counters =
        List.map
          (function
            | C c ->
              let v = Atomic.get c.c_cell in
              Atomic.set c.c_cell 0;
              c.c_reg <- false;
              (c.c_name, float_of_int v)
            | G g ->
              let v = Atomic.get g.g_cell in
              Atomic.set g.g_cell 0.;
              g.g_reg <- false;
              (g.g_name, v))
          !metrics
      in
      metrics := [];
      { events = canonical events;
        counters = List.sort compare counters })

let reset () = ignore (drain ())

(* --- JSON ---------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
        | _ -> ()
    in
    let expect c =
      if peek () = c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let parse_lit lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ lit)
    in
    let add_utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' ->
          advance ();
          Buffer.contents buf
        | '\\' ->
          advance ();
          if !pos >= n then fail "truncated escape";
          (match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 >= n then fail "truncated \\u escape";
             (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
              | Some code ->
                add_utf8 buf code;
                pos := !pos + 4
              | None -> fail "bad \\u escape")
           | _ -> fail "bad escape");
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && numchar s.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ((k, v) :: acc)
            | '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              items (v :: acc)
            | ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
      | '"' -> Str (parse_string ())
      | 't' -> parse_lit "true" (Bool true)
      | 'f' -> parse_lit "false" (Bool false)
      | 'n' -> parse_lit "null" Null
      | c when c = '-' || (c >= '0' && c <= '9') -> Num (parse_number ())
      | _ -> fail "unexpected character"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let num_to_string f =
    if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" (if Float.is_nan f then 0. else f)
    else Printf.sprintf "%.9g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    write buf v;
    Buffer.contents buf

  let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
end

(* --- exporters ----------------------------------------------------- *)

module Export = struct
  let t0_of events =
    List.fold_left (fun acc e -> Float.min acc e.ev_start) infinity events

  let attr_obj attrs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)

  let jsonl snap =
    let t0 = t0_of snap.events in
    let buf = Buffer.create 4096 in
    List.iter
      (fun e ->
        let line =
          Json.Obj
            [ "path", Json.Str e.ev_path;
              "name", Json.Str e.ev_name;
              "kind", Json.Str (if e.ev_instant then "instant" else "span");
              "ts", Json.Num (e.ev_start -. t0);
              "dur", Json.Num e.ev_dur;
              "attrs", attr_obj e.ev_attrs ]
        in
        Buffer.add_string buf (Json.to_string line);
        Buffer.add_char buf '\n')
      snap.events;
    Buffer.contents buf

  let normalize_jsonl log =
    let normalize_line line =
      match Json.parse line with
      | Json.Obj fields ->
        let fields =
          List.map
            (fun (k, v) ->
              match k, v with
              | ("ts" | "dur"), _ -> (k, Json.Num 0.)
              | "attrs", Json.Obj attrs ->
                ( k,
                  Json.Obj
                    (List.map
                       (fun (ak, av) ->
                         if is_gc_attr ak then (ak, Json.Str "0") else (ak, av))
                       attrs) )
              | _ -> (k, v))
            fields
        in
        Json.to_string (Json.Obj fields)
      | v -> Json.to_string v
    in
    String.split_on_char '\n' log
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map normalize_line
    |> List.map (fun l -> l ^ "\n")
    |> String.concat ""

  let chrome snap =
    let t0 = t0_of snap.events in
    let t_end =
      List.fold_left
        (fun acc e -> Float.max acc (e.ev_start +. e.ev_dur))
        t0 snap.events
    in
    let us t = (t -. t0) *. 1e6 in
    let domains =
      List.sort_uniq compare (List.map (fun e -> e.ev_domain) snap.events)
    in
    let meta =
      Json.Obj
        [ "name", Json.Str "process_name";
          "ph", Json.Str "M";
          "pid", Json.Num 0.;
          "args", Json.Obj [ "name", Json.Str "compact" ] ]
      :: List.map
           (fun d ->
             Json.Obj
               [ "name", Json.Str "thread_name";
                 "ph", Json.Str "M";
                 "pid", Json.Num 0.;
                 "tid", Json.Num (float_of_int d);
                 "args",
                 Json.Obj [ "name", Json.Str (Printf.sprintf "domain %d" d) ] ])
           domains
    in
    let ev_json e =
      let common =
        [ "name", Json.Str e.ev_name;
          "cat", Json.Str "compact";
          "ts", Json.Num (us e.ev_start);
          "pid", Json.Num 0.;
          "tid", Json.Num (float_of_int e.ev_domain);
          "args", attr_obj (("path", e.ev_path) :: e.ev_attrs) ]
      in
      if e.ev_instant then
        Json.Obj (("ph", Json.Str "i") :: ("s", Json.Str "t") :: common)
      else
        Json.Obj
          (("ph", Json.Str "X") :: ("dur", Json.Num (e.ev_dur *. 1e6)) :: common)
    in
    let counter_json (name, v) =
      Json.Obj
        [ "name", Json.Str name;
          "ph", Json.Str "C";
          "ts", Json.Num (us t_end);
          "pid", Json.Num 0.;
          "tid", Json.Num 0.;
          "args", Json.Obj [ "value", Json.Num v ] ]
    in
    Json.to_string
      (Json.Obj
         [ "traceEvents",
           Json.Arr
             (meta
             @ List.map ev_json snap.events
             @ List.map counter_json snap.counters);
           "displayTimeUnit", Json.Str "ms" ])

  let write_file path contents =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)

  let write_jsonl path snap = write_file path (jsonl snap)
  let write_chrome path snap = write_file path (chrome snap)
end

(* --- aggregation --------------------------------------------------- *)

module Agg = struct
  type row = {
    r_path : string;
    r_name : string;
    r_count : int;
    r_total : float;
    r_minor_words : float;
    r_major_words : float;
    r_first : float;
  }

  let attr_float k attrs =
    match List.assoc_opt k attrs with
    | Some v -> Option.value ~default:0. (float_of_string_opt v)
    | None -> 0.

  let phases snap =
    let tbl = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun e ->
        if not e.ev_instant then begin
          let key = (e.ev_path, e.ev_name) in
          let row =
            match Hashtbl.find_opt tbl key with
            | Some r -> r
            | None ->
              let r =
                ref
                  { r_path = e.ev_path;
                    r_name = e.ev_name;
                    r_count = 0;
                    r_total = 0.;
                    r_minor_words = 0.;
                    r_major_words = 0.;
                    r_first = infinity }
              in
              Hashtbl.add tbl key r;
              order := key :: !order;
              r
          in
          row :=
            { !row with
              r_count = !row.r_count + 1;
              r_total = !row.r_total +. e.ev_dur;
              r_minor_words =
                !row.r_minor_words +. attr_float "gc.minor_words" e.ev_attrs;
              r_major_words =
                !row.r_major_words +. attr_float "gc.major_words" e.ev_attrs;
              r_first = Float.min !row.r_first e.ev_start }
        end)
      snap.events;
    List.rev !order
    |> List.map (fun key -> !(Hashtbl.find tbl key))
    |> List.sort (fun a b -> compare (a.r_first, a.r_path) (b.r_first, b.r_path))
end
