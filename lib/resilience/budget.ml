type reason = Deadline | Cancelled | Nodes | Memory | Injected

let reason_name = function
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"
  | Nodes -> "nodes"
  | Memory -> "memory"
  | Injected -> "injected"

exception Exhausted of reason

let () =
  Printexc.register_printer (function
    | Exhausted r -> Some (Printf.sprintf "Resilience.Budget.Exhausted(%s)" (reason_name r))
    | _ -> None)

type t = {
  deadline : float;  (* absolute Obs.Clock time; infinity = none *)
  cancel_flag : bool Atomic.t;  (* shared with every slice *)
  cancellable : bool;  (* false only for [unlimited] *)
  node_limit : int;  (* max_int = none *)
  nodes_used : int Atomic.t;  (* shared with every slice *)
  mem_limit_words : int;  (* max_int = none *)
  tripped : bool Atomic.t;  (* per-value first-exhaustion latch *)
  parent : t option;  (* [fork] parent, consulted at every poll *)
}

let unlimited =
  {
    deadline = infinity;
    cancel_flag = Atomic.make false;
    cancellable = false;
    node_limit = max_int;
    nodes_used = Atomic.make 0;
    mem_limit_words = max_int;
    tripped = Atomic.make false;
    parent = None;
  }

let create ?deadline ?nodes ?memory_words () =
  {
    deadline =
      (match deadline with
       | Some s when s < infinity -> Obs.Clock.now () +. max 0. s
       | Some _ | None -> infinity);
    cancel_flag = Atomic.make false;
    cancellable = true;
    node_limit = (match nodes with Some n -> n | None -> max_int);
    nodes_used = Atomic.make 0;
    mem_limit_words =
      (match memory_words with Some w -> w | None -> max_int);
    tripped = Atomic.make false;
    parent = None;
  }

let seconds s = create ~deadline:s ()

let is_unlimited t =
  t.deadline = infinity
  && t.node_limit = max_int
  && t.mem_limit_words = max_int
  && not (Atomic.get t.cancel_flag)

let cancel t = if t.cancellable then Atomic.set t.cancel_flag true
let cancelled t = Atomic.get t.cancel_flag

let remaining t =
  if t.deadline = infinity then infinity
  else max 0. (t.deadline -. Obs.Clock.now ())

let slice t ~frac =
  let deadline =
    if t.deadline = infinity then infinity
    else Obs.Clock.now () +. (max 0. frac *. remaining t)
  in
  { t with deadline = min deadline t.deadline; tripped = Atomic.make false }

let untimed t =
  if t.deadline = infinity then t
  else { t with deadline = infinity; tripped = Atomic.make false }

(* Unlike [slice], a fork gets a *fresh* cancellation token: cancelling
   the fork stops the fork's slices and nothing else, while the parent's
   cancellation (and deadline / node / memory exhaustion) still reaches
   the fork through the parent link at every poll.  This is the
   race-local latch: the portfolio cancels its losers without tearing
   down the run that raced them. *)
let fork t =
  {
    deadline = t.deadline;
    cancel_flag = Atomic.make false;
    cancellable = true;
    node_limit = t.node_limit;
    nodes_used = t.nodes_used;
    mem_limit_words = t.mem_limit_words;
    tripped = Atomic.make false;
    parent = (if t == unlimited then None else Some t);
  }

let limited t s =
  if s = infinity then t
  else
    {
      t with
      deadline = min t.deadline (Obs.Clock.now () +. max 0. s);
      tripped = Atomic.make false;
    }

let consume_nodes t n =
  if t.node_limit < max_int then
    ignore (Atomic.fetch_and_add t.nodes_used n)

let c_exhausted = Obs.Counter.make "budget.exhausted"

(* First observation of exhaustion on a budget value leaves a trace
   event; subsequent polls of the same (already-dead) budget stay
   silent so a spinning poll loop cannot flood the buffers. *)
let trip t r =
  if not (Atomic.exchange t.tripped true) then begin
    Obs.Counter.incr c_exhausted;
    Obs.Span.event "budget-exhausted" ~attrs:[ "reason", reason_name r ]
  end;
  Some r

let rec state t =
  if Inject.fire Inject.Timeout then trip t Injected
  else if Atomic.get t.cancel_flag then trip t Cancelled
  else if t.deadline < infinity && Obs.Clock.now () > t.deadline then
    trip t Deadline
  else if t.node_limit < max_int && Atomic.get t.nodes_used > t.node_limit
  then trip t Nodes
  else if
    t.mem_limit_words < max_int
    && (Gc.quick_stat ()).Gc.heap_words > t.mem_limit_words
  then trip t Memory
  else
    (* A fork observes its parent's exhaustion (with the parent's
       reason) but never the other way round. *)
    match t.parent with
    | None -> None
    | Some p -> (match state p with Some r -> trip t r | None -> None)

let exhausted t = state t <> None

let check t =
  match state t with Some r -> raise (Exhausted r) | None -> ()

let protect_oom f =
  try f () with Out_of_memory -> raise (Exhausted Memory)

let pp_reason ppf r = Format.pp_print_string ppf (reason_name r)
