(** Seeded, deterministic fault injection.

    Each {!point} names a class of software fault the pipeline must
    degrade through cleanly.  Production code consults a point with
    {!fire} (or a convenience wrapper) at the site where the real fault
    would surface; the chaos battery arms points with {!configure} and
    asserts every run still ends in a verified design or a structured
    error.

    When no configuration is armed — the default — every entry point is
    a single atomic load and branch, so injection sites can stay
    compiled into hot paths (same contract as [Obs] recording).

    {b Determinism.}  Whether call [n] to an armed point fires is a pure
    function of [(seed, point, n)], so a sequential run replays
    identically for a fixed seed.  Under a domain pool the *interleaving*
    of calls may differ between jobs counts; the battery therefore
    asserts structured outcomes, not byte-identical ones, for armed
    runs. *)

type point =
  | Timeout  (** budget polls spuriously report exhaustion *)
  | Oom  (** [Out_of_memory] raised at allocation checkpoints *)
  | Cg_divergence  (** the analog CG watchdog declares divergence *)
  | Pool_poison  (** a domain-pool task dies with [Out_of_memory] *)
  | Defect_truncate  (** defect-map text truncated before parsing *)
  | Disk_torn_write  (** a durable-cache write cut short, as by a crash *)
  | Disk_corrupt  (** one bit of a durable-cache write flipped on media *)

val all : point list
val name : point -> string
(** Stable kebab-case name, e.g. ["cg-divergence"]. *)

val of_name : string -> point option

(** {1 Arming} *)

val configure : ?seed:int -> point list -> unit
(** Arm the given points (replacing any previous configuration).
    [seed] defaults to 0. *)

val disable : unit -> unit
(** Return to the no-op state. *)

val enabled : unit -> bool

val armed : point -> bool
(** Whether this specific point is armed.  Lets a caller distinguish
    solver-affecting points (which poison cache admission) from
    storage-layer points (whose faults the CRCs catch on recovery). *)

val with_points : ?seed:int -> point list -> (unit -> 'a) -> 'a
(** [configure], run, then [disable] (also on exceptions). *)

val configure_from_env : unit -> (unit, string) result
(** Read [COMPACT_INJECT] ("point,point@seed", or "all@seed"; "@seed"
    optional) and arm accordingly.  [Ok ()] when the variable is unset.
    Never arms anything on [Error]. *)

(** {1 Injection sites} *)

val fire : point -> bool
(** [true] when the point is armed and this call is selected by the
    deterministic schedule (roughly one call in four).  Records an
    [inject] event and bumps the [inject.<name>] counter in [Obs] on
    every hit. *)

val oom : unit -> unit
(** Raise [Out_of_memory] when {!fire}[ Oom]. *)

val poison_pool : unit -> unit
(** Raise [Out_of_memory] when {!fire}[ Pool_poison]. *)

val truncate : string -> string
(** When {!fire}[ Defect_truncate], cut the string at a
    seed-deterministic offset; otherwise return it unchanged. *)

val torn_write : string -> string
(** When {!fire}[ Disk_torn_write], cut the byte string about to be
    written at a seed-deterministic offset — the bytes that would have
    reached the disk had the process died mid-[write]. *)

val corrupt : string -> string
(** When {!fire}[ Disk_corrupt], flip one seed-deterministic bit of the
    byte string about to be written. *)

(** {1 Introspection (for the chaos battery)} *)

val calls : point -> int
(** Times an armed [fire] consulted the schedule since [configure]. *)

val fired : point -> int
(** Times it returned [true]. *)
