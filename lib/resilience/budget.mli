(** Work budgets: one value carrying a wall deadline, node and memory
    budgets, and a cooperative cancellation token, threaded through every
    solver and pipeline stage in place of per-solver [time_limit]
    parameters.

    {b Contract.}  Solvers are {e anytime}: they poll {!exhausted} (or
    {!state}) at cheap, count-rated checkpoints and return their
    best-so-far incumbent when the budget runs out — they do not raise.
    Stages that cannot produce a partial result (e.g. BDD construction)
    call {!check}, which raises {!Exhausted}; the pipeline and CLI turn
    that into a structured report/error.

    {b Slicing.}  {!slice} gives a child budget whose deadline is a
    deterministic fraction of the parent's {e remaining} wall time, while
    the cancellation token and node counter stay shared, so cancelling
    the parent stops every slice.  {!limited} caps a budget by a
    seconds-from-now bound — the migration shim for old [time_limit]
    call sites.

    {b Cost.}  Polling an {!unlimited} budget is a handful of loads and
    branches (plus one disabled-injection check); no clock is read and
    nothing allocates, so polls can stay in solver hot loops. *)

type reason =
  | Deadline  (** wall deadline passed *)
  | Cancelled  (** {!cancel} was called (on this budget or a parent) *)
  | Nodes  (** the shared node budget was consumed *)
  | Memory  (** major-heap words exceeded the memory budget *)
  | Injected  (** {!Inject.Timeout} fired at a poll *)

val reason_name : reason -> string

exception Exhausted of reason
(** Raised by {!check} (and by budget-aware [Parallel] batches whose
    tasks were skipped). *)

type t

val unlimited : t
(** Never exhausts and cannot be cancelled — the default for every
    [?budget] parameter, preserving pre-budget behaviour exactly. *)

val create :
  ?deadline:float -> ?nodes:int -> ?memory_words:int -> unit -> t
(** A fresh cancellable budget. [deadline] is seconds from now on
    [Obs.Clock]; [nodes] bounds the solver nodes consumed via
    {!consume_nodes} across this budget and all its slices;
    [memory_words] bounds [Gc] heap words observed at polls. *)

val seconds : float -> t
(** [create ~deadline:s ()]; [seconds infinity] is a cancellable
    no-deadline budget.  The drop-in spelling for old
    [~time_limit:s] arguments. *)

val is_unlimited : t -> bool

val cancel : t -> unit
(** Trip the cancellation token shared with every slice of this budget.
    No-op on {!unlimited}. *)

val cancelled : t -> bool

val slice : t -> frac:float -> t
(** A child budget whose deadline is [now + frac * remaining] (clamped
    to the parent's own deadline), sharing the parent's cancellation
    token, node counter and memory bound. [slice unlimited] is
    [unlimited]-equivalent. *)

val limited : t -> float -> t
(** [limited t s]: [t] additionally capped at [s] seconds from now.
    [limited t infinity = t]. *)

val untimed : t -> t
(** [t] with the wall deadline removed but the shared cancellation
    token, node counter and memory bound kept.  For stages that must run
    to completion to produce anything at all (BDD construction): an
    already-expired deadline then degrades the {e later} anytime stages
    instead of leaving the pipeline with no output. *)

val fork : t -> t
(** A child budget with a {e fresh} cancellation token: {!cancel} on the
    fork stops the fork (and every slice cut from it) without touching
    the parent, while the parent's own cancellation, deadline and
    resource exhaustion still reach the fork at every poll through a
    parent link.  This is the race-local latch used by
    [Parallel.race] — the winner cancels the losers' slices, and the
    surrounding run's budget is unaffected.  [fork unlimited] is a
    plain fresh cancellable budget. *)

val remaining : t -> float
(** Seconds until the deadline ([infinity] when none, [0.] once
    passed). *)

val consume_nodes : t -> int -> unit
(** Charge [n] solver nodes against the shared node budget.  Free when
    no node budget was set. *)

val state : t -> reason option
(** [None] while work may continue.  The first poll that observes
    exhaustion records a [budget-exhausted] event and bumps the
    [budget.exhausted] counter in [Obs] (once per budget value). *)

val exhausted : t -> bool
val check : t -> unit
(** @raise Exhausted when [state] is [Some _]. *)

val protect_oom : (unit -> 'a) -> 'a
(** Run a stage, converting an escaping [Out_of_memory] (real or
    injected) into [Exhausted Memory] — the pipeline entry points wrap
    themselves in this so allocation failure degrades into a structured
    error instead of an uncaught exception. *)

val pp_reason : Format.formatter -> reason -> unit
