type point =
  | Timeout
  | Oom
  | Cg_divergence
  | Pool_poison
  | Defect_truncate
  | Disk_torn_write
  | Disk_corrupt

let all =
  [
    Timeout; Oom; Cg_divergence; Pool_poison; Defect_truncate;
    Disk_torn_write; Disk_corrupt;
  ]

let num_points = List.length all

let index = function
  | Timeout -> 0
  | Oom -> 1
  | Cg_divergence -> 2
  | Pool_poison -> 3
  | Defect_truncate -> 4
  | Disk_torn_write -> 5
  | Disk_corrupt -> 6

let name = function
  | Timeout -> "timeout"
  | Oom -> "oom"
  | Cg_divergence -> "cg-divergence"
  | Pool_poison -> "pool-poison"
  | Defect_truncate -> "defect-truncate"
  | Disk_torn_write -> "disk-torn-write"
  | Disk_corrupt -> "disk-corrupt"

let of_name s = List.find_opt (fun p -> String.equal (name p) s) all

(* One state value per [configure]; swapping the whole record atomically
   means a concurrent [fire] sees either the old or the new schedule,
   never a mix. Counter cells are atomics so domains can race on them. *)
type state = {
  seed : int;
  armed : bool array;
  call_counts : int Atomic.t array;
  fire_counts : int Atomic.t array;
}

let current : state option Atomic.t = Atomic.make None

let c_fires =
  (* Pre-allocated metric cells; Obs registers them lazily on first hit. *)
  Array.of_list (List.map (fun p -> Obs.Counter.make ("inject." ^ name p)) all)

let configure ?(seed = 0) points =
  let armed = Array.make num_points false in
  List.iter (fun p -> armed.(index p) <- true) points;
  Atomic.set current
    (Some
       {
         seed;
         armed;
         call_counts = Array.init num_points (fun _ -> Atomic.make 0);
         fire_counts = Array.init num_points (fun _ -> Atomic.make 0);
       })

let disable () = Atomic.set current None
let enabled () = Atomic.get current <> None

let armed p =
  match Atomic.get current with
  | None -> false
  | Some st -> st.armed.(index p)

let with_points ?seed points f =
  configure ?seed points;
  Fun.protect ~finally:disable f

let parse_spec spec =
  let spec = String.trim spec in
  let points_str, seed =
    match String.index_opt spec '@' with
    | None -> spec, 0
    | Some i ->
      let s = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match int_of_string_opt (String.trim s) with
       | Some seed -> String.sub spec 0 i, seed
       | None -> raise (Invalid_argument (Printf.sprintf "bad seed %S" s)))
  in
  let points =
    String.split_on_char ',' points_str
    |> List.map String.trim
    |> List.filter (fun w -> w <> "")
    |> List.concat_map (fun w ->
        if String.equal w "all" then all
        else
          match of_name w with
          | Some p -> [ p ]
          | None ->
            raise
              (Invalid_argument
                 (Printf.sprintf "unknown injection point %S (expected %s)" w
                    (String.concat ", " (List.map name all)))))
  in
  if points = [] then raise (Invalid_argument "no injection points given");
  seed, points

let configure_from_env () =
  match Sys.getenv_opt "COMPACT_INJECT" with
  | None | Some "" -> Ok ()
  | Some spec ->
    (match parse_spec spec with
     | seed, points ->
       configure ~seed points;
       Ok ()
     | exception Invalid_argument msg -> Error ("COMPACT_INJECT: " ^ msg))

(* Call [n] of point [p] under seed [s] fires iff hash (s, p, n) lands in
   the bottom quarter — deterministic, and spread over the call stream so
   a fault strikes mid-solve, not only at the first poll. *)
let schedule_hit seed idx n = Hashtbl.hash (seed, idx, n) land 3 = 0

let fire p =
  match Atomic.get current with
  | None -> false
  | Some st ->
    let i = index p in
    if not st.armed.(i) then false
    else begin
      let n = Atomic.fetch_and_add st.call_counts.(i) 1 in
      let hit = schedule_hit st.seed i n in
      if hit then begin
        Atomic.incr st.fire_counts.(i);
        Obs.Counter.incr c_fires.(i);
        Obs.Span.event "inject"
          ~attrs:[ "point", name p; "call", string_of_int n ]
      end;
      hit
    end

let oom () = if fire Oom then raise Out_of_memory
let poison_pool () = if fire Pool_poison then raise Out_of_memory

let truncate s =
  if not (fire Defect_truncate) then s
  else
    match Atomic.get current with
    | None -> s
    | Some st ->
      let len = String.length s in
      if len = 0 then s
      else
        String.sub s 0
          (Hashtbl.hash (st.seed, `Truncate, Atomic.get st.call_counts.(index Defect_truncate)) mod len)

(* Disk-fault shaping shares the idiom of [truncate]: when the point
   fires, the bytes handed to the write syscall are cut (a torn write at
   crash time) or have one seeded byte flipped (media corruption).  The
   storage layer's CRCs must catch both on recovery. *)

let torn_write s =
  if not (fire Disk_torn_write) then s
  else
    match Atomic.get current with
    | None -> s
    | Some st ->
      let len = String.length s in
      if len < 2 then s
      else
        (* A strict cut in [1, len-1]: always partial bytes on disk.  A
           torn write that lands nothing is the same as crashing before
           the write, which the kill/restart battery covers anyway. *)
        String.sub s 0
          (1
           + Hashtbl.hash
               (st.seed, `Torn,
                Atomic.get st.call_counts.(index Disk_torn_write))
             mod (len - 1))

let corrupt s =
  if not (fire Disk_corrupt) then s
  else
    match Atomic.get current with
    | None -> s
    | Some st ->
      let len = String.length s in
      if len = 0 then s
      else begin
        let b = Bytes.of_string s in
        let n = Atomic.get st.call_counts.(index Disk_corrupt) in
        let pos = Hashtbl.hash (st.seed, `CorruptPos, n) mod len in
        let bit = Hashtbl.hash (st.seed, `CorruptBit, n) land 7 in
        Bytes.set b pos
          (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
        Bytes.to_string b
      end

let counter_get cells p =
  match Atomic.get current with
  | None -> 0
  | Some st -> Atomic.get (cells st).(index p)

let calls p = counter_get (fun st -> st.call_counts) p
let fired p = counter_get (fun st -> st.fire_counts) p
