(** Maximum bipartite matching (Hopcroft–Karp) and König covers. *)

val hopcroft_karp : Ugraph.t -> left:bool array -> int array
(** [hopcroft_karp g ~left] computes a maximum matching of the bipartite
    graph [g] whose sides are given by [left]. Returns [mate] with
    [mate.(v)] the partner of [v] or [-1]. Runs in O(E·√V).
    @raise Invalid_argument if some edge joins two vertices of one side. *)

val matching_size : int array -> int
(** Number of matched pairs in a mate array. *)

val koenig_cover : Ugraph.t -> left:bool array -> mate:int array -> bool array
(** Minimum vertex cover from a maximum matching via König's theorem:
    alternating reachability from unmatched left vertices; the cover is
    (unreached left) ∪ (reached right). Size equals the matching size. *)

val perfect_bipartite :
  left:int -> right:int -> compatible:(int -> int -> bool) -> int array option
(** [perfect_bipartite ~left ~right ~compatible] assigns every left
    vertex [0 .. left-1] a distinct right vertex [0 .. right-1] with
    [compatible i k] true — a left-perfect maximum matching computed by
    {!hopcroft_karp}. Returns [assign] with [assign.(i)] the right
    vertex of [i], or [None] when no left-perfect matching exists
    (in particular whenever [left > right]).
    @raise Invalid_argument on negative sizes. *)

val greedy_maximal : Ugraph.t -> (int * int) list
(** A maximal (not maximum) matching of an arbitrary graph; |M| lower-bounds
    any vertex cover and 2·|M| upper-bounds the minimum cover. *)
