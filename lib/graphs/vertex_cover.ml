type result = {
  cover : bool array;
  size : int;
  lower_bound : int;
  optimal : bool;
  nodes_explored : int;
  elapsed : float;
}

let is_cover g cover =
  let ok = ref true in
  Ugraph.iter_edges (fun u v -> if not (cover.(u) || cover.(v)) then ok := false) g;
  !ok

let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0

(* Remove vertices whose neighbourhood is already covered. *)
let prune_redundant g cover =
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to Ugraph.num_nodes g - 1 do
      if cover.(v) then begin
        let needed =
          List.exists (fun w -> not cover.(w)) (Ugraph.neighbors g v)
        in
        if not needed then begin
          cover.(v) <- false;
          changed := true
        end
      end
    done
  done

let greedy_cover g =
  let n = Ugraph.num_nodes g in
  let cover = Array.make n false in
  List.iter
    (fun (u, v) ->
       cover.(u) <- true;
       cover.(v) <- true)
    (Matching.greedy_maximal g);
  prune_redundant g cover;
  cover

(* Bipartite double cover: vertex v becomes L_v = 2v and R_v = 2v+1; each
   edge (u, v) becomes (L_u, R_v) and (L_v, R_u). König gives its minimum
   cover; halving yields the half-integral LP optimum of the original. *)
let double_cover g =
  let n = Ugraph.num_nodes g in
  let dc = Ugraph.create (2 * n) in
  Ugraph.iter_edges
    (fun u v ->
       Ugraph.add_edge dc (2 * u) ((2 * v) + 1);
       Ugraph.add_edge dc (2 * v) ((2 * u) + 1))
    g;
  dc

let lp_solution g =
  (* x.(v) ∈ {0, 1, 2} in half units. *)
  let n = Ugraph.num_nodes g in
  let dc = double_cover g in
  let left = Array.init (2 * n) (fun v -> v land 1 = 0) in
  let mate = Matching.hopcroft_karp dc ~left in
  let cover_dc = Matching.koenig_cover dc ~left ~mate in
  Array.init n (fun v ->
      (if cover_dc.(2 * v) then 1 else 0)
      + if cover_dc.((2 * v) + 1) then 1 else 0)

let lp_bound g =
  let x = lp_solution g in
  float_of_int (Array.fold_left ( + ) 0 x) /. 2.

exception Out_of_time

(* Branch & bound on an explicit mutable subproblem. Vertices have three
   states: Undecided, In (in cover), Out (excluded). Excluding a vertex
   forces all its undecided neighbours In. *)
let c_nodes = Obs.Counter.make "vc.nodes"

let solve ?(budget = Resilience.Budget.unlimited) ?(kernelize = true) g =
  let start = Obs.Clock.now () in
  let n = Ugraph.num_nodes g in
  let neighbors = Array.init n (fun v -> Array.of_list (Ugraph.neighbors g v)) in
  let best_cover = greedy_cover g in
  let best_size = ref (count best_cover) in
  let root_lb = int_of_float (ceil (lp_bound g -. 1e-9)) in
  let explored = ref 0 in
  let timed_out = ref false in
  (* state: 0 undecided, 1 in, 2 out *)
  let state = Array.make n 0 in
  let in_count = ref 0 in
  let trail = ref [] in
  let push v s =
    state.(v) <- s;
    if s = 1 then incr in_count;
    trail := v :: !trail
  in
  let undo upto =
    while !trail != upto do
      match !trail with
      | [] -> assert false
      | v :: rest ->
        if state.(v) = 1 then decr in_count;
        state.(v) <- 0;
        trail := rest
    done
  in
  (* Nemhauser–Trotter at the root: LP value 0 ⇒ exclude, 1 (=2 halves) ⇒
     include. *)
  if kernelize then begin
    let lp = lp_solution g in
    for v = 0 to n - 1 do
      if lp.(v) = 2 then push v 1
    done;
    for v = 0 to n - 1 do
      if lp.(v) = 0 && state.(v) = 0 then begin
        push v 2;
        Array.iter
          (fun w -> if state.(w) = 0 then push w 1)
          neighbors.(v)
      end
    done
  end;
  (* Matching-based lower bound on the residual graph. *)
  let residual_lb () =
    let used = Array.make n false in
    let lb = ref 0 in
    for u = 0 to n - 1 do
      if state.(u) = 0 && not used.(u) then begin
        let rec pick = function
          | [] -> ()
          | w :: rest ->
            if state.(w) = 0 && not used.(w) then begin
              used.(u) <- true;
              used.(w) <- true;
              incr lb
            end
            else pick rest
        in
        pick (Array.to_list neighbors.(u))
      end
    done;
    !lb
  in
  let record_incumbent () =
    (* Close the partial solution greedily: cover residual edges. *)
    let cover = Array.make n false in
    for v = 0 to n - 1 do
      cover.(v) <- state.(v) = 1
    done;
    for u = 0 to n - 1 do
      if state.(u) = 0 then
        Array.iter
          (fun w ->
             if (state.(w) = 0 && not (cover.(u) || cover.(w))) then
               cover.(u) <- true)
          neighbors.(u)
    done;
    prune_redundant g cover;
    let size = count cover in
    if size < !best_size then begin
      best_size := size;
      Array.blit cover 0 best_cover 0 n
    end
  in
  (* Reduction: degree-0 vertices excluded; degree-1 vertices excluded with
     their neighbour included. Returns residual degrees freshness lazily. *)
  let residual_degree v =
    let d = ref 0 in
    Array.iter (fun w -> if state.(w) = 0 then incr d) neighbors.(v);
    !d
  in
  let apply_reductions () =
    let changed = ref true in
    while !changed do
      changed := false;
      for v = 0 to n - 1 do
        if state.(v) = 0 then begin
          match residual_degree v with
          | 0 -> push v 2; changed := true
          | 1 ->
            push v 2;
            Array.iter (fun w -> if state.(w) = 0 then push w 1) neighbors.(v);
            changed := true
          | _ -> ()
        end
      done
    done
  in
  let pick_branch_vertex () =
    let best = ref (-1) in
    let bestd = ref (-1) in
    for v = 0 to n - 1 do
      if state.(v) = 0 then begin
        let d = residual_degree v in
        if d > !bestd then begin
          bestd := d;
          best := v
        end
      end
    done;
    !best
  in
  let rec branch () =
    incr explored;
    if !explored land 255 = 0 then begin
      Resilience.Budget.consume_nodes budget 256;
      if Resilience.Budget.exhausted budget then begin
        timed_out := true;
        raise Out_of_time
      end
    end;
    let mark = !trail in
    apply_reductions ();
    if !in_count + residual_lb () >= !best_size then undo mark
    else begin
      let v = pick_branch_vertex () in
      if v < 0 then begin
        record_incumbent ();
        undo mark
      end
      else begin
        (* Branch 1: v in the cover. *)
        let mark2 = !trail in
        push v 1;
        branch ();
        undo mark2;
        (* Branch 2: v out, neighbours in. *)
        push v 2;
        Array.iter (fun w -> if state.(w) = 0 then push w 1) neighbors.(v);
        branch ();
        undo mark
      end
    end
  in
  (try branch () with Out_of_time -> ());
  let elapsed = Obs.Clock.now () -. start in
  Obs.Counter.add c_nodes !explored;
  let optimal = (not !timed_out) || !best_size <= root_lb in
  let lower_bound = if optimal then !best_size else root_lb in
  assert (is_cover g best_cover);
  {
    cover = best_cover;
    size = !best_size;
    lower_bound = min lower_bound !best_size;
    optimal;
    nodes_explored = !explored;
    elapsed;
  }
