(** Minimum vertex cover.

    The paper's §VI-A solves the VH-labeling problem through a minimum
    vertex cover of G□K2 (Lemma 1), computed with an ILP solver. Here the
    cover is computed by a dedicated exact solver: LP-based
    Nemhauser–Trotter kernelisation (the LP optimum of vertex cover is
    half-integral and obtained from a maximum matching of the bipartite
    double cover), reduction rules for degree-0/1 vertices, and
    branch & bound on the remaining kernel with matching lower bounds.
    A time budget turns the solver into an anytime algorithm that reports
    the incumbent, the best lower bound and the relative gap — mirroring
    the CPLEX interface the paper relies on (Figs 10 and 11). *)

type result = {
  cover : bool array;  (** characteristic vector of the cover found *)
  size : int;  (** |cover| *)
  lower_bound : int;  (** proven lower bound on the optimum *)
  optimal : bool;  (** [size = lower_bound] *)
  nodes_explored : int;  (** branch & bound nodes *)
  elapsed : float;  (** seconds *)
}

val lp_bound : Ugraph.t -> float
(** Optimum of the LP relaxation (half-integral), via the bipartite double
    cover. A valid lower bound on the integral optimum. *)

val solve :
  ?budget:Resilience.Budget.t -> ?kernelize:bool -> Ugraph.t -> result
(** [solve g] computes a minimum vertex cover, stopping early when
    [budget] (default: [Resilience.Budget.unlimited]) exhausts — polled
    every 256 branch & bound nodes, which are also charged against the
    budget's node allowance — and returning the best cover found so far
    ([optimal = false]). The returned [cover] is always a valid vertex
    cover; the solver never raises on exhaustion.
    [kernelize] (default true) controls the Nemhauser–Trotter LP
    kernelisation; disabling it exists for ablation studies. *)

val is_cover : Ugraph.t -> bool array -> bool
(** Checks that every edge has a covered endpoint. *)

val greedy_cover : Ugraph.t -> bool array
(** Fast 2-approximation (maximal matching) improved by removal of
    redundant vertices; used as the initial incumbent. *)
