type result = {
  transversal : int list;
  coloring : int array;
  optimal : bool;
  lower_bound : int;
  elapsed : float;
}

let color_residual g transversal =
  let keep = Ugraph.complement_set g transversal in
  let sub, map = Ugraph.induced g ~keep in
  match Bipartite.two_color sub with
  | None -> None
  | Some sub_colors ->
    let colors = Array.make (Ugraph.num_nodes g) (-1) in
    Array.iteri
      (fun v idx -> if idx >= 0 then colors.(v) <- sub_colors.(idx))
      map;
    Some colors

let is_transversal g transversal = color_residual g transversal <> None

let finish g transversal ~optimal ~lower_bound ~elapsed =
  match color_residual g transversal with
  | None -> invalid_arg "Oct: internal error, residual not bipartite"
  | Some coloring -> { transversal; coloring; optimal; lower_bound; elapsed }

let solve ?budget g =
  let start = Obs.Clock.now () in
  let n = Ugraph.num_nodes g in
  let p = Product.with_k2 g in
  let vc = Vertex_cover.solve ?budget p in
  let transversal = ref [] in
  for v = n - 1 downto 0 do
    if vc.cover.(v) && vc.cover.(v + n) then transversal := v :: !transversal
  done;
  (* The cover has size n + k for some k ≥ 0; the transversal is exactly
     the doubly-covered vertices. Lemma 1 guarantees bipartiteness. *)
  let lower_bound = max 0 (vc.lower_bound - n) in
  finish g !transversal ~optimal:vc.optimal ~lower_bound
    ~elapsed:(Obs.Clock.now () -. start)

let greedy g =
  let start = Obs.Clock.now () in
  let n = Ugraph.num_nodes g in
  (* BFS colouring; a vertex that conflicts with an already-coloured
     neighbour is deferred to the transversal. Processing in decreasing
     degree order keeps high-degree troublemakers flexible. *)
  let color = Array.make n (-1) in
  let in_oct = Array.make n false in
  let try_color v =
    let c0 = ref false and c1 = ref false in
    List.iter
      (fun w ->
         if not in_oct.(w) then
           match color.(w) with
           | 0 -> c0 := true
           | 1 -> c1 := true
           | _ -> ())
      (Ugraph.neighbors g v);
    match !c0, !c1 with
    | _, false -> color.(v) <- 1; true
    | false, true -> color.(v) <- 0; true
    | true, true -> false
  in
  let queue = Queue.create () in
  let visited = Array.make n false in
  for s = 0 to n - 1 do
    if not visited.(s) then begin
      visited.(s) <- true;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        if not (try_color v) then in_oct.(v) <- true;
        List.iter
          (fun w ->
             if not visited.(w) then begin
               visited.(w) <- true;
               Queue.add w queue
             end)
          (Ugraph.neighbors g v)
      done
    end
  done;
  (* Re-insertion pass: an OCT vertex whose coloured neighbourhood is
     monochromatic can rejoin the bipartite part. *)
  for v = 0 to n - 1 do
    if in_oct.(v) then begin
      color.(v) <- -1;
      if try_color v then in_oct.(v) <- false
    end
  done;
  let transversal = ref [] in
  for v = n - 1 downto 0 do
    if in_oct.(v) then transversal := v :: !transversal
  done;
  let optimal = !transversal = [] in
  finish g !transversal ~optimal ~lower_bound:0
    ~elapsed:(Obs.Clock.now () -. start)
