(** Odd cycle transversal (OCT): a minimum set of vertices whose removal
    makes the graph bipartite.

    Implements Lemma 1 of the paper: G on [n] vertices has an OCT of size
    [k] iff G□K2 has a vertex cover of size [n + k]; a vertex belongs to
    the OCT exactly when both of its product copies are in the cover. *)

type result = {
  transversal : int list;  (** vertices labelled VH downstream *)
  coloring : int array;
      (** 2-colouring of the residual graph; [colors.(v) ∈ {0, 1}] for kept
          vertices, [-1] for transversal vertices *)
  optimal : bool;
  lower_bound : int;  (** proven lower bound on the OCT size *)
  elapsed : float;
}

val solve : ?budget:Resilience.Budget.t -> Ugraph.t -> result
(** Exact (anytime under a budget) minimum OCT via vertex cover of
    G□K2. The residual graph is always bipartite and [coloring] is a valid
    2-colouring of it. *)

val greedy : Ugraph.t -> result
(** Fast heuristic: BFS 2-colouring that moves conflict vertices into the
    transversal, followed by one re-insertion pass that returns transversal
    vertices whose neighbourhood became monochromatic. Not optimal
    ([optimal = false] unless the graph is already bipartite). *)

val is_transversal : Ugraph.t -> int list -> bool
(** Does removing the vertices leave a bipartite graph? *)
