let inf = max_int

let hopcroft_karp g ~left =
  let n = Ugraph.num_nodes g in
  if Array.length left <> n then invalid_arg "Matching.hopcroft_karp: arity";
  Ugraph.iter_edges
    (fun u v ->
       if left.(u) = left.(v) then
         invalid_arg "Matching.hopcroft_karp: edge within one side")
    g;
  let mate = Array.make n (-1) in
  let dist = Array.make n inf in
  let queue = Queue.create () in
  (* BFS layering over left vertices; returns true if an augmenting path
     exists. *)
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for u = 0 to n - 1 do
      if left.(u) then
        if mate.(u) < 0 then begin
          dist.(u) <- 0;
          Queue.add u queue
        end
        else dist.(u) <- inf
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
           let w = mate.(v) in
           if w < 0 then found := true
           else if dist.(w) = inf then begin
             dist.(w) <- dist.(u) + 1;
             Queue.add w queue
           end)
        (Ugraph.neighbors g u)
    done;
    !found
  in
  let rec dfs u =
    let rec try_neighbors = function
      | [] ->
        dist.(u) <- inf;
        false
      | v :: rest ->
        let w = mate.(v) in
        if (w < 0 || (dist.(w) = dist.(u) + 1 && dfs w)) then begin
          mate.(u) <- v;
          mate.(v) <- u;
          true
        end
        else try_neighbors rest
    in
    try_neighbors (Ugraph.neighbors g u)
  in
  while bfs () do
    for u = 0 to n - 1 do
      if left.(u) && mate.(u) < 0 then ignore (dfs u)
    done
  done;
  mate

let matching_size mate =
  let c = ref 0 in
  Array.iteri (fun v m -> if m > v then incr c) mate;
  !c

let koenig_cover g ~left ~mate =
  let n = Ugraph.num_nodes g in
  let reached = Array.make n false in
  let queue = Queue.create () in
  for u = 0 to n - 1 do
    if left.(u) && mate.(u) < 0 then begin
      reached.(u) <- true;
      Queue.add u queue
    end
  done;
  (* Alternate: unmatched edges left→right, matched edges right→left. *)
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
         if not reached.(v) && mate.(u) <> v then begin
           reached.(v) <- true;
           let w = mate.(v) in
           if w >= 0 && not reached.(w) then begin
             reached.(w) <- true;
             Queue.add w queue
           end
         end)
      (Ugraph.neighbors g u)
  done;
  Array.init n (fun v ->
      if left.(v) then not reached.(v) else reached.(v))

let perfect_bipartite ~left ~right ~compatible =
  if left < 0 || right < 0 then
    invalid_arg "Matching.perfect_bipartite: negative side";
  if left > right then None
  else begin
    let n = left + right in
    let g = Ugraph.create n in
    for i = 0 to left - 1 do
      for k = 0 to right - 1 do
        if compatible i k then Ugraph.add_edge g i (left + k)
      done
    done;
    let side = Array.init n (fun v -> v < left) in
    let mate = hopcroft_karp g ~left:side in
    if matching_size mate < left then None
    else Some (Array.init left (fun i -> mate.(i) - left))
  end

let greedy_maximal g =
  let n = Ugraph.num_nodes g in
  let used = Array.make n false in
  Ugraph.fold_edges
    (fun u v acc ->
       if used.(u) || used.(v) then acc
       else begin
         used.(u) <- true;
         used.(v) <- true;
         (u, v) :: acc
       end)
    g []
