(** VH-labeling method 2 (§VI-B): the weighted objective γ·S + (1−γ)·D as
    a mixed-integer program, solved by {!Milp.Branch_bound}.

    The formulation is an equivalent strengthening of the paper's Eq 4:
    instead of one helper binary per edge, each edge (i, j) contributes the
    two rows [xH_i + xH_j ≥ 1] and [xV_i + xV_j ≥ 1] — i.e. the H side and
    the V side must each form a vertex cover — together with
    [xV_i + xH_i ≥ 1] per node. A case split on the labels of i and j
    shows this admits exactly the label pairs realisable on a crossbar,
    so the feasible sets coincide while the LP relaxation is no weaker.
    Two optional cutting planes tighten the relaxation: [S ≥ n + k_lb]
    from an OCT lower bound, and [D ≥ ⌈S_lb / 2⌉].

    Alignment (Eq 7) adds [xH_i = 1] for the terminal and all roots. *)

exception Infeasible of string
(** Raised by {!solve} when user-imposed row/column capacity constraints
    admit no labeling (§III: "COMPACT would generate a valid design D or
    return that the specified design constraints are infeasible"). *)

val solve :
  ?budget:Resilience.Budget.t ->
  ?node_limit:int ->
  ?alignment:bool ->
  ?gamma:float ->
  ?warm_start:Types.labeling ->
  ?oct_cut:int ->
  ?max_rows:int ->
  ?max_cols:int ->
  ?jobs:int ->
  Types.bdd_graph ->
  Types.labeling
(** [gamma] defaults to 0.5 (the paper's recommended setting);
    [warm_start] seeds the incumbent (default: {!Label_oct.greedy});
    [oct_cut] is a known lower bound on the OCT size used for the
    strengthening cut (default: 0, i.e. only the trivial [S ≥ n] cut).
    [max_rows]/[max_cols] impose hard capacities on the wordline/bitline
    counts (the §III constrained formulation); the warm start is dropped
    when it violates them.
    [jobs] parallelises the branch & bound search (see
    {!Milp.Branch_bound.solve}); default 1, the sequential path.
    The result carries the solver's convergence [trace].
    @raise Infeasible when capacity constraints cannot be met. *)
