type solver = Oct_exact | Oct_greedy | Mip | Heuristic | Auto | Portfolio

type options = {
  gamma : float;
  solver : solver;
  alignment : bool;
  time_limit : float;
  deadline : float option;
  bdd_node_limit : int;
  order : string list option;
  max_rows : int option;
  max_cols : int option;
  jobs : int;
  race_orders : int;
}

let mip_node_threshold = 160

let default_options =
  {
    gamma = 0.5;
    solver = Auto;
    alignment = true;
    time_limit = 60.;
    deadline = None;
    bdd_node_limit = 2_000_000;
    order = None;
    max_rows = None;
    max_cols = None;
    jobs = 1;
    race_orders = 1;
  }

(* The run's global budget: an explicit one from the caller wins,
   otherwise [deadline] opens a fresh cancellable budget, otherwise the
   unlimited no-op budget — the pre-resilience behaviour. *)
let budget_of_options ?budget options =
  match budget with
  | Some b -> b
  | None ->
    (match options.deadline with
     | Some s -> Resilience.Budget.seconds s
     | None -> Resilience.Budget.unlimited)

type result = {
  design : Crossbar.Design.t;
  labeling : Types.labeling;
  bdd_graph : Types.bdd_graph;
  report : Report.t;
}

let solver_name = function
  | Oct_exact -> "oct"
  | Oct_greedy -> "oct-greedy"
  | Mip -> "mip"
  | Heuristic -> "heuristic"
  | Auto -> "auto"
  | Portfolio -> "portfolio"

let solver_of_name = function
  | "oct" -> Some Oct_exact
  | "oct-greedy" -> Some Oct_greedy
  | "mip" -> Some Mip
  | "heuristic" -> Some Heuristic
  | "auto" -> Some Auto
  | "portfolio" -> Some Portfolio
  | _ -> None

let run_one ~budget options bg solver =
  let { gamma; alignment; max_rows; max_cols; _ } = options in
  match solver with
  | Oct_exact -> Label_oct.solve ~budget ~alignment ~gamma bg
  | Oct_greedy -> Label_oct.greedy ~alignment ~gamma bg
  | Heuristic -> Label_heuristic.solve ~budget ~alignment ~gamma bg
  | Mip ->
    (* Warm start and OCT cut from the combinatorial pipeline: a quarter
       of the rung's remaining budget, the rest to the branch & bound. *)
    let warm =
      Label_heuristic.solve
        ~budget:(Resilience.Budget.slice budget ~frac:0.25)
        ~alignment ~gamma bg
    in
    let oct_cut =
      (* Lower bound on #VH from the OCT solver's proof. With γ-weighting
         the warm start's bound is on the objective, not on the OCT, so we
         recover the transversal bound conservatively. *)
      if warm.Types.optimal && gamma >= 1. -. 1e-9 then warm.Types.vh_count
      else 0
    in
    Label_mip.solve ~budget ~alignment ~gamma
      ~warm_start:warm ~oct_cut ?max_rows ?max_cols ~jobs:options.jobs bg
  | Auto | Portfolio -> assert false

(* The Auto/Portfolio rung ladder for a given graph: MIP while the
   branch & bound is tractable, the combinatorial heuristic above that,
   and the linear-time greedy transversal as the terminal rung that
   always completes. *)
let auto_ladder bg =
  let primary =
    if Graphs.Ugraph.num_nodes bg.Types.graph <= mip_node_threshold then Mip
    else Heuristic
  in
  primary :: List.filter (fun s -> s <> primary) [ Heuristic; Oct_greedy ]

(* ------------------------------------------------------------------ *)
(* Racing portfolio ([Portfolio] mode): the Auto ladder's rungs — times
   up to [race_orders] candidate variable orders — run concurrently on
   the domain pool instead of sequentially, so wall time is the fastest
   acceptable entrant instead of the sum of timed-out rungs. The winner
   is decided by the jobs-independent staged rule of {!Parallel.race}
   (solver priority is the group order) plus a deterministic within-group
   tie-break (semiperimeter, then order index) — never wall-clock — so
   the chosen design is byte-identical at any [-j]. *)

let c_races = Obs.Counter.make "portfolio.races"
let c_entrants = Obs.Counter.make "portfolio.entrants"
let c_entrants_cut = Obs.Counter.make "portfolio.entrants_cut"
let c_entrants_failed = Obs.Counter.make "portfolio.entrants_failed"

type entrant_result = {
  er_order : int;
  er_labeling : Types.labeling;
  er_accepted : bool;
}

let run_portfolio ~budget options (graphs : Types.bdd_graph array) =
  (* One ladder for the whole race, derived from the order-0 graph, so
     the group structure (and with it the decision rule) does not depend
     on which candidate orders happened to be available. *)
  let ladder = auto_ladder graphs.(0) in
  let terminal_rank = List.length ladder - 1 in
  let norders = Array.length graphs in
  let entrants =
    Array.of_list
      (List.concat
         (List.mapi
            (fun rank s -> List.init norders (fun oi -> rank, s, oi))
            ladder))
  in
  let groups = Array.map (fun (rank, _, _) -> rank) entrants in
  (* Entrants must not open nested pools: the race already owns the
     domain-level parallelism. *)
  let solve_opts = { options with jobs = 1 } in
  let thunk (rank, s, oi) rb =
    (* Non-terminal entrants get half the race's remaining wall budget
       capped at a staggered share of [time_limit]: rank r of R
       non-terminal ranks is cut off at (r+1)/R of the limit. The race
       cannot decide before every higher-priority group has reported, so
       a stuck primary would otherwise stall the decision for the full
       limit even though its fallback finished long ago — the staggering
       bounds that stall at half the limit while the last non-terminal
       rank keeps the full per-rung budget sequential Auto gives it.
       (The tradeoff, documented on {!Portfolio}: a primary proof that
       needs more than its share loses to the fallback, where Auto would
       have waited for it.) Terminal-rung entrants keep the race's
       cooperative cancel but no wall deadline — some entrant must be
       able to finish. *)
    let eb =
      if rank = terminal_rank then Resilience.Budget.untimed rb
      else
        let cap =
          options.time_limit
          *. float_of_int (rank + 1)
          /. float_of_int terminal_rank
        in
        Resilience.Budget.limited (Resilience.Budget.slice rb ~frac:0.5) cap
    in
    Obs.Span.with_
      (Printf.sprintf "entrant:%s@%d" (solver_name s) oi)
      (fun () ->
         let l = run_one ~budget:eb solve_opts graphs.(oi) s in
         (* Acceptance mirrors the Auto keep rule but is judged here, by
            the entrant's own wall deadline only ([Budget.remaining]
            ignores cancellation): the winner's cancel latch arriving
            between an entrant finishing and the outcome scan must not
            flip a completed loser's verdict, or the outcome array would
            depend on the jobs count. *)
         let accepted =
           l.Types.optimal || Resilience.Budget.remaining eb > 0.
         in
         Obs.Span.add_attr "optimal" (string_of_bool l.Types.optimal);
         Obs.Span.add_attr "accepted" (string_of_bool accepted);
         { er_order = oi; er_labeling = l; er_accepted = accepted })
  in
  Obs.Counter.incr c_races;
  Obs.Counter.add c_entrants (Array.length entrants);
  let outcomes =
    Parallel.with_pool ~jobs:options.jobs (fun pool ->
        Parallel.race ~budget ~groups pool
          (Array.map (fun e rb -> thunk e rb) entrants)
          ~acceptable:(fun er -> er.er_accepted))
  in
  Array.iter
    (function
      | Parallel.Cut -> Obs.Counter.incr c_entrants_cut
      | Parallel.Failed _ -> Obs.Counter.incr c_entrants_failed
      | Parallel.Finished _ -> ())
    outcomes;
  (* Winner: within the deciding group — the earliest group that ran
     completely (no member cut) and holds an accepted result — the
     accepted labeling with the smallest semiperimeter, then the
     smallest order index. Mirrors [Parallel.race]'s decision scan, so
     the index found here is the entrant whose completion latched the
     cancel. *)
  let n = Array.length outcomes in
  let winner = ref (-1) in
  let s = ref 0 in
  while !winner < 0 && !s < n do
    let e = ref !s in
    while !e < n && groups.(!e) = groups.(!s) do incr e done;
    let cut = ref false in
    let best = ref None in
    for j = !s to !e - 1 do
      match outcomes.(j) with
      | Parallel.Cut -> cut := true
      | Parallel.Finished er when er.er_accepted ->
        let key = (Types.semiperimeter er.er_labeling, er.er_order) in
        (match !best with
         | Some (bk, _) when bk <= key -> ()
         | _ -> best := Some (key, j))
      | Parallel.Finished _ | Parallel.Failed _ -> ()
    done;
    (match !best with
     | Some (_, j) when not !cut -> winner := j
     | _ -> ());
    s := !e
  done;
  (* The full raced field goes into the report: every entrant with its
     outcome, so a portfolio run is as auditable as a watchdog ladder. *)
  let path =
    Array.to_list
      (Array.mapi
         (fun i o ->
            let _, s, oi = entrants.(i) in
            let tag =
              match o with
              | Parallel.Cut -> "cut"
              | Parallel.Failed _ -> "error"
              | Parallel.Finished er ->
                if i = !winner then "win"
                else if er.er_accepted then "ok"
                else "partial"
            in
            Printf.sprintf "%s@%d:%s" (solver_name s) oi tag)
         outcomes)
  in
  if !winner >= 0 then
    match outcomes.(!winner) with
    | Parallel.Finished er -> er.er_labeling, er.er_order, path
    | _ -> assert false
  else begin
    (* Rescue: every entrant timed out, failed or was cut (e.g. the
       caller's own deadline expired mid-race). Run the terminal rung
       directly and unbudgeted so the portfolio, like Auto, always ends
       with a labeling. *)
    Obs.Span.event "portfolio-rescue" ~attrs:[ "entrants", string_of_int n ];
    let l =
      Obs.Span.with_ ("rung:" ^ solver_name Oct_greedy) (fun () ->
          run_one ~budget:Resilience.Budget.unlimited solve_opts graphs.(0)
            Oct_greedy)
    in
    l, 0, path @ [ solver_name Oct_greedy ^ "@0:win" ]
  end

(* Returns the labeling, the index of the graph it labels (always 0
   outside the portfolio), and the path of solver rungs attempted.
   Under [Auto] a watchdog ladder applies: a rung whose labeling is not
   proven optimal and whose wall time reached the budget has merely
   returned its best-so-far incumbent ("partial"), so the next cheaper
   rung runs instead; [Oct_greedy], the terminal rung, has no internal
   budget and always completes. A rung that raises (other than the last)
   also falls through. [Portfolio] races the same ladder concurrently —
   see {!run_portfolio}. Explicitly chosen solvers run exactly once —
   the user asked for that method and a substitution would be silent —
   and capacity-constrained runs always use the MIP, the only
   formulation that can express them. *)
let run_labeler ~budget options (graphs : Types.bdd_graph array) =
  let { time_limit; max_rows; max_cols; _ } = options in
  let bg = graphs.(0) in
  let constrained = max_rows <> None || max_cols <> None in
  (* A rung's budget: a deterministic fraction of the run's remaining
     wall budget, never more than the per-rung [time_limit]. With no
     global deadline the slice is unlimited and the cap is exactly the
     old per-solver time limit. *)
  let rung_budget frac =
    Resilience.Budget.limited (Resilience.Budget.slice budget ~frac) time_limit
  in
  (* Every rung attempt gets its own span (watchdog behaviour is then
     visually auditable in the trace), including rungs that raise. *)
  let run_rung ~budget:b s =
    Obs.Span.with_ ("rung:" ^ solver_name s) (fun () ->
        let l = run_one ~budget:b options bg s in
        Obs.Span.add_attr "optimal" (string_of_bool l.Types.optimal);
        Obs.Span.add_attr "method" l.Types.method_name;
        l)
  in
  if constrained then
    run_rung ~budget:(rung_budget 1.0) Mip, 0, [ solver_name Mip ]
  else
    match options.solver with
    | (Oct_exact | Oct_greedy | Mip | Heuristic) as s ->
      run_rung ~budget:(rung_budget 1.0) s, 0, [ solver_name s ]
    | Portfolio -> run_portfolio ~budget options graphs
    | Auto ->
      let fall_through s reason =
        Obs.Span.event "watchdog-fallback"
          ~attrs:[ "after", solver_name s; "reason", reason ]
      in
      let rec attempt path = function
        | [] -> assert false
        | [ last ] ->
          (* Terminal rung: deterministic and internally unbudgeted, so
             the ladder always ends with a labeling. *)
          run_rung ~budget:Resilience.Budget.unlimited last,
          0,
          List.rev (solver_name last :: path)
        | s :: rest ->
          (* Half the remaining wall budget per non-terminal rung: two
             rungs can both time out and the terminal rung still runs
             inside the global deadline. *)
          let rb = rung_budget 0.5 in
          (match run_rung ~budget:rb s with
           | labeling ->
             if labeling.Types.optimal
                || not (Resilience.Budget.exhausted rb)
             then labeling, 0, List.rev (solver_name s :: path)
             else begin
               fall_through s "budget";
               attempt (solver_name s :: path) rest
             end
           | exception _ ->
             fall_through s "exception";
             attempt (solver_name s :: path) rest)
      in
      attempt [] (auto_ladder bg)

(* The shared back half of every entry point: label (racing across
   [graphs] under the portfolio, on [graphs.(0)] otherwise), map the
   winning graph, report. Returns the winning graph index so SBDD-level
   wrappers can attribute engine stats to the diagram that won. *)
(* Stage-duration histograms mirroring the stage spans, so a serving
   process exposes per-stage latency distributions without tracing. *)
let h_labeling = Obs.Hist.make_ms "pipeline.labeling-ms"
let h_mapping = Obs.Hist.make_ms "pipeline.mapping-ms"
let h_preprocess = Obs.Hist.make_ms "pipeline.preprocess-ms"
let h_bdd_build = Obs.Hist.make_ms "pipeline.bdd-build-ms"

let synthesize_graphs ~options ~budget ~name graphs =
  Resilience.Budget.protect_oom @@ fun () ->
  let start = Obs.Clock.now () in
  let labeling, widx, solver_path =
    Obs.Hist.time h_labeling @@ fun () ->
    Obs.Span.with_ "labeling" (fun () ->
        let labeling, widx, solver_path = run_labeler ~budget options graphs in
        Obs.Span.add_attr "solver_path" (String.concat "->" solver_path);
        labeling, widx, solver_path)
  in
  let bg = graphs.(widx) in
  let design =
    Obs.Hist.time h_mapping @@ fun () ->
    Obs.Span.with_ "mapping" (fun () -> Mapping.run bg labeling)
  in
  let synthesis_time = Obs.Clock.now () -. start in
  let deadline_hit = Resilience.Budget.exhausted budget in
  let report =
    Report.of_design ~solver_path ~deadline_hit ~circuit:name ~bdd_graph:bg
      ~labeling ~synthesis_time design
  in
  { design; labeling; bdd_graph = bg; report }, widx

let synthesize_graph ?(options = default_options) ?budget ~name bg =
  let budget = budget_of_options ?budget options in
  fst (synthesize_graphs ~options ~budget ~name [| bg |])

let synthesize_sbdds ~options ~budget ~name sbdds =
  let start = Obs.Clock.now () in
  let graphs =
    Obs.Hist.time h_preprocess @@ fun () ->
    Obs.Span.with_ "preprocess" (fun () ->
        Array.map Preprocess.of_sbdd sbdds)
  in
  let inner, widx = synthesize_graphs ~options ~budget ~name graphs in
  let synthesis_time = Obs.Clock.now () -. start in
  let report =
    {
      inner.report with
      Report.synthesis_time;
      bdd_stats = Some (Bdd.Sbdd.stats sbdds.(widx));
    }
  in
  { inner with report }

let synthesize_sbdd ?(options = default_options) ?budget ~name sbdd =
  let budget = budget_of_options ?budget options in
  synthesize_sbdds ~options ~budget ~name [| sbdd |]

(* Snapshot the BDD engine's raw stats counters into the metric
   registry at a span boundary — the engine's own hot loops stay on
   plain ints. *)
let g_peak_nodes = Obs.Gauge.make "bdd.peak_nodes"
let c_unique_lookups = Obs.Counter.make "bdd.unique_lookups"
let c_unique_hits = Obs.Counter.make "bdd.unique_hits"
let c_cache_lookups = Obs.Counter.make "bdd.cache_lookups"
let c_cache_hits = Obs.Counter.make "bdd.cache_hits"
let c_growths = Obs.Counter.make "bdd.growths"
let c_level_swaps = Obs.Counter.make "bdd.level_swaps"
let c_sift_passes = Obs.Counter.make "bdd.sift_passes"
let c_cache_invalidations = Obs.Counter.make "bdd.cache_invalidations"

let record_bdd_stats (s : Bdd.Manager.stats) =
  if Obs.recording () then begin
    Obs.Counter.add c_unique_lookups s.unique_lookups;
    Obs.Counter.add c_unique_hits s.unique_hits;
    Obs.Counter.add c_cache_lookups s.cache_lookups;
    Obs.Counter.add c_cache_hits s.cache_hits;
    Obs.Counter.add c_growths s.growths;
    Obs.Counter.add c_level_swaps s.level_swaps;
    Obs.Counter.add c_sift_passes s.sift_passes;
    Obs.Counter.add c_cache_invalidations s.cache_invalidations;
    Obs.Gauge.set g_peak_nodes (float_of_int s.peak_nodes)
  end

let synthesize ?(options = default_options) ?budget netlist =
  let budget = budget_of_options ?budget options in
  Resilience.Budget.protect_oom @@ fun () ->
  Obs.Span.with_ ~attrs:[ "circuit", netlist.Logic.Netlist.name ] "synthesize"
  @@ fun () ->
  let start = Obs.Clock.now () in
  (* The build keeps the budget's cancellation/node/memory state but not
     the wall deadline: a partial diagram is useless, the build is
     already bounded by [bdd_node_limit], and an expired deadline should
     degrade the labeling rungs — which can return incumbents — rather
     than abort with no output. *)
  let build_budget = Resilience.Budget.untimed budget in
  let build ?order () =
    let sbdd =
      Bdd.Sbdd.of_netlist ~budget:build_budget ?order
        ~node_limit:options.bdd_node_limit netlist
    in
    record_bdd_stats (Bdd.Sbdd.stats sbdd);
    sbdd
  in
  let sbdds =
    Obs.Hist.time h_bdd_build @@ fun () ->
    Obs.Span.with_ "bdd-build" (fun () ->
        let first = build ?order:options.order () in
        (* Portfolio order racing: build up to [race_orders - 1] further
           diagrams under the remaining static candidate orders (skipping
           any that duplicates the first build's order) so the race can
           pit (solver, order) entrants against each other. Extra builds
           are bounded by the same node limit; one that blows it is
           simply not an entrant. *)
        let extra =
          if options.solver <> Portfolio || options.race_orders <= 1 then []
          else begin
            let first_order =
              Array.to_list first.Bdd.Sbdd.input_order
            in
            let picked = ref [] in
            let n = ref 0 in
            List.iter
              (fun order ->
                 if !n < options.race_orders - 1 && order <> first_order then begin
                   match build ~order () with
                   | sbdd ->
                     incr n;
                     picked := sbdd :: !picked
                   | exception Bdd.Manager.Size_limit _ -> ()
                 end)
              (Bdd.Order.candidates netlist);
            List.rev !picked
          end
        in
        Array.of_list (first :: extra))
  in
  let inner =
    synthesize_sbdds ~options ~budget ~name:netlist.Logic.Netlist.name sbdds
  in
  let synthesis_time = Obs.Clock.now () -. start in
  let report = { inner.report with Report.synthesis_time } in
  { inner with report }

let synthesize_expr ?(options = default_options) ~name e =
  let inputs = Logic.Expr.vars e in
  let netlist =
    Logic.Netlist.create ~name ~inputs ~outputs:[ name ^ "_out" ]
      [ Logic.Netlist.n_expr (name ^ "_out") e ]
  in
  synthesize ~options netlist

let merge_diagonal designs =
  if designs = [] then invalid_arg "merge_diagonal: empty list";
  let input_row d =
    match Crossbar.Design.input d with
    | Crossbar.Design.Row i -> i
    | Crossbar.Design.Col _ ->
      invalid_arg "merge_diagonal: input port must be a wordline"
  in
  (* Each block keeps its rows except the input row, which is fused into
     one shared bottom row. *)
  let total_rows =
    List.fold_left (fun acc d -> acc + Crossbar.Design.rows d - 1) 1 designs
  in
  let total_cols =
    List.fold_left (fun acc d -> acc + Crossbar.Design.cols d) 0 designs
  in
  let shared_input = total_rows - 1 in
  let outputs = ref [] in
  let row_offset = ref 0 in
  let col_offset = ref 0 in
  let merged_cells = ref [] in
  List.iter
    (fun d ->
       let rows = Crossbar.Design.rows d and cols = Crossbar.Design.cols d in
       let inp = input_row d in
       (* Global row of a block-local row: input row → shared row; rows
          after the input shift up by one. *)
       let global_row i =
         if i = inp then shared_input
         else if i < inp then !row_offset + i
         else !row_offset + i - 1
       in
       Crossbar.Design.iter_programmed d (fun i j lit ->
           merged_cells :=
             (global_row i, !col_offset + j, lit) :: !merged_cells);
       List.iter
         (fun (o, w) ->
            let w' =
              match w with
              | Crossbar.Design.Row i -> Crossbar.Design.Row (global_row i)
              | Crossbar.Design.Col j -> Crossbar.Design.Col (!col_offset + j)
            in
            outputs := (o, w') :: !outputs)
         (Crossbar.Design.outputs d);
       row_offset := !row_offset + rows - 1;
       col_offset := !col_offset + cols)
    designs;
  let merged =
    Crossbar.Design.create ~rows:total_rows ~cols:total_cols
      ~input:(Crossbar.Design.Row shared_input) ~outputs:(List.rev !outputs)
  in
  List.iter
    (fun (r, c, lit) -> Crossbar.Design.set merged ~row:r ~col:c lit)
    !merged_cells;
  merged

let synthesize_separate_robdds ?(options = default_options) ?budget netlist =
  let budget = budget_of_options ?budget options in
  let options = { options with alignment = true } in
  let sbdds =
    Bdd.Sbdd.of_netlist_separate ?order:options.order
      ~node_limit:options.bdd_node_limit netlist
  in
  let results =
    List.map
      (fun (sbdd : Bdd.Sbdd.t) ->
         let name =
           match sbdd.roots with
           | [ (o, _) ] -> netlist.Logic.Netlist.name ^ "." ^ o
           | _ -> netlist.Logic.Netlist.name
         in
         synthesize_sbdd ~options ~budget ~name sbdd)
      sbdds
  in
  results, merge_diagonal (List.map (fun r -> r.design) results)

(* ------------------------------------------------------------------ *)
(* Defect-aware repair *)

type repair_result = { base : result; repair : Repair.report }

let repair ?(options = default_options) ?budget ~defects netlist =
  let budget = budget_of_options ?budget options in
  Resilience.Budget.protect_oom @@ fun () ->
  (* Half the wall budget for the base synthesis, leaving the other half
     for however many resynthesis rungs the repair ladder climbs. *)
  let base =
    synthesize ~options
      ~budget:(Resilience.Budget.slice budget ~frac:0.5)
      netlist
  in
  (* The resynthesis rung of the ladder: re-label under hard capacity
     constraints so the new geometry dodges the offending devices. Each
     attempt gets half of whatever wall budget remains, so a ladder of
     attempts converges instead of the first one eating everything. *)
  let resynthesize ~max_rows ~max_cols =
    match
      synthesize
        ~options:
          { options with max_rows = Some max_rows; max_cols = Some max_cols }
        ~budget:(Resilience.Budget.slice budget ~frac:0.5)
        netlist
    with
    | r -> Some r.design
    | exception Label_mip.Infeasible _ -> None
    | exception Resilience.Budget.Exhausted _ -> None
  in
  let repair =
    Obs.Span.with_ "repair" (fun () ->
        Repair.run ~resynthesize ~defects
          ~inputs:netlist.Logic.Netlist.inputs
          ~outputs:netlist.Logic.Netlist.outputs
          ~reference:(Logic.Netlist.eval_point netlist)
          base.design)
  in
  { base; repair }

(* ------------------------------------------------------------------ *)
(* Variation-aware hardening *)

type harden_options = {
  spec : Crossbar.Variation.spec;
  margin_spec : float;
  analog_params : Crossbar.Analog.params;
  analog_opts : Crossbar.Analog.solver_opts;
  seed : int;
  margin_trials : int;
  mc_trials : int;
  alt_gammas : float list;
  alt_solvers : solver list;
  permutations : bool;
  jobs : int;
}

let default_harden_options =
  {
    spec = Crossbar.Variation.default_spec;
    margin_spec = 0.;
    analog_params = Crossbar.Analog.default_params;
    analog_opts = Crossbar.Analog.default_solver_opts;
    seed = Crossbar.Rng.default_seed;
    margin_trials = 24;
    mc_trials = 64;
    alt_gammas = [ 0.0; 1.0 ];
    alt_solvers = [ Heuristic ];
    permutations = true;
    jobs = 1;
  }

type candidate = {
  cand_label : string;
  cand_design : Crossbar.Design.t;
  cand_worst : float;
  cand_typical : float;
  cand_corners : (Crossbar.Variation.corner * Crossbar.Margin.analysis) list;
}

type harden_result = {
  base : result;
  candidates : candidate list;
  chosen : candidate;
  failing_outputs : (string * float) list;
  meets_spec : bool;
  mc : Crossbar.Margin.mc option;
  hardened_report : Report.t;
}

(* Structural identity of a design — permutations and re-labelings often
   collapse back onto the same geometry (reversing one row, labeling an
   already-optimal graph at another gamma), and scoring a duplicate
   wastes 4 corners worth of linear solves. *)
let design_fingerprint d =
  let cells = ref [] in
  Crossbar.Design.iter_programmed d (fun r c l -> cells := (r, c, l) :: !cells);
  ( Crossbar.Design.rows d,
    Crossbar.Design.cols d,
    Crossbar.Design.input d,
    Crossbar.Design.outputs d,
    List.rev !cells )

let score_candidate hopts ~inputs ~reference ~outputs (label, d) =
  Obs.Span.with_ ~attrs:[ "candidate", label ] "score"
  @@ fun () ->
  let corners =
    Crossbar.Margin.corners ~params:hopts.analog_params
      ~opts:hopts.analog_opts ~seed:hopts.seed ~trials:hopts.margin_trials
      ~spec:hopts.spec d ~inputs ~reference ~outputs
  in
  let typical =
    match List.assoc_opt Crossbar.Variation.Typical corners with
    | Some (a : Crossbar.Margin.analysis) -> a.worst
    | None -> nan
  in
  {
    cand_label = label;
    cand_design = d;
    cand_worst = Crossbar.Margin.worst_over_corners corners;
    cand_typical = typical;
    cand_corners = corners;
  }

let harden ?(options = default_options) ?(hopts = default_harden_options)
    ?budget netlist =
  let budget = budget_of_options ?budget options in
  Resilience.Budget.protect_oom @@ fun () ->
  Obs.Span.with_ ~attrs:[ "circuit", netlist.Logic.Netlist.name ] "harden"
  @@ fun () ->
  (* 40% of the wall budget for the base synthesis; labeling variants
     and candidate scoring share the remainder. *)
  let base =
    synthesize ~options
      ~budget:(Resilience.Budget.slice budget ~frac:0.4)
      netlist
  in
  let inputs = netlist.Logic.Netlist.inputs in
  let outputs = netlist.Logic.Netlist.outputs in
  let reference = Logic.Netlist.eval_point netlist in
  let name = netlist.Logic.Netlist.name in
  (* Stage 1: labeling variants, re-labeled on the shared preprocessed
     graph (the expensive BDD work is not repeated). A variant that
     raises (e.g. Infeasible) is simply not a candidate. *)
  let labeled = ref [ "base", base.design ] in
  let try_variant label options' =
    match
      synthesize_graph ~options:options'
        ~budget:(Resilience.Budget.slice budget ~frac:0.5)
        ~name base.bdd_graph
    with
    | r -> labeled := (label, r.design) :: !labeled
    | exception _ -> ()
  in
  List.iter
    (fun gamma ->
       if abs_float (gamma -. options.gamma) > 1e-9 then
         try_variant (Printf.sprintf "gamma=%.2f" gamma)
           { options with gamma })
    hopts.alt_gammas;
  List.iter
    (fun s ->
       if s <> options.solver then try_variant (solver_name s)
           { options with solver = s })
    hopts.alt_solvers;
  (* Stage 2: line permutations of every labeling. Electrically free to
     apply, and decisive once the spec has resistive wire segments. *)
  let variants =
    List.concat_map
      (fun (label, d) ->
         if not hopts.permutations then [ label, d ]
         else
           List.map
             (fun (plabel, p) ->
                ( (if String.equal plabel "identity" then label
                   else label ^ "/" ^ plabel),
                  Place.apply_permutation p d ))
             (Place.margin_candidates d))
      (List.rev !labeled)
  in
  let seen = Hashtbl.create 16 in
  let unique =
    List.filter
      (fun (_, d) ->
         let fp = design_fingerprint d in
         if Hashtbl.mem seen fp then false
         else begin
           Hashtbl.replace seen fp ();
           true
         end)
      variants
  in
  (* Stage 3: score and rank. Scoring (4 corners of linear solves per
     candidate) dominates harden's wall time and each score depends only
     on its own design, so candidates score on the pool; the merge is in
     generation order, keeping the ranking identical for any jobs count.
     stable_sort keeps generation order on exact ties, so "base" is
     never displaced by an equivalent variant. *)
  let scored =
    match
      Parallel.with_pool ~jobs:hopts.jobs (fun pool ->
          Parallel.map ~budget pool
            (score_candidate hopts ~inputs ~reference ~outputs)
            unique)
    with
    | scored -> scored
    | exception Resilience.Budget.Exhausted _ ->
      (* Budget died mid-scoring: degrade to the base candidate alone
         (scored outside the budget — some verified answer must ship)
         rather than ranking a partially-scored field. *)
      [ score_candidate hopts ~inputs ~reference ~outputs (List.hd unique) ]
  in
  let candidates =
    List.stable_sort
      (fun a b ->
         match compare b.cand_worst a.cand_worst with
         | 0 ->
           (match compare b.cand_typical a.cand_typical with
            | 0 ->
              compare
                (Crossbar.Design.semiperimeter a.cand_design)
                (Crossbar.Design.semiperimeter b.cand_design)
            | c -> c)
         | c -> c)
      scored
  in
  let chosen = List.hd candidates in
  (* Graceful degradation: per output, the worst margin across corners;
     report every output that misses the spec instead of failing. *)
  let failing_outputs =
    match chosen.cand_corners with
    | [] -> []
    | (_, (first : Crossbar.Margin.analysis)) :: _ ->
      List.filter_map
        (fun (om : Crossbar.Margin.output_margin) ->
           let worst =
             List.fold_left
               (fun acc (_, (a : Crossbar.Margin.analysis)) ->
                  List.fold_left
                    (fun acc (o : Crossbar.Margin.output_margin) ->
                       if String.equal o.om_output om.om_output then
                         min acc o.om_margin
                       else acc)
                    acc a.per_output)
               infinity chosen.cand_corners
           in
           if worst < hopts.margin_spec then Some (om.om_output, worst)
           else None)
        first.per_output
  in
  let mc =
    (* The MC stage is a pure add-on diagnostic: skip it outright once
       the budget is gone instead of letting it overrun the deadline. *)
    if hopts.mc_trials <= 0 || Resilience.Budget.exhausted budget then None
    else
      Some
        (Crossbar.Margin.monte_carlo ~params:hopts.analog_params
           ~opts:hopts.analog_opts ~seed:hopts.seed
           ~max_trials:hopts.mc_trials ~margin_spec:hopts.margin_spec
           ~jobs:hopts.jobs ~spec:hopts.spec chosen.cand_design ~inputs
           ~reference ~outputs)
  in
  let analog =
    List.fold_left
      (fun (acc : Report.analog_summary) (_, (a : Crossbar.Margin.analysis)) ->
         {
           acc with
           an_max_iterations = max acc.an_max_iterations a.max_iterations;
           an_max_residual = max acc.an_max_residual a.max_residual;
           an_max_condition = max acc.an_max_condition a.max_condition;
           an_fallbacks = acc.an_fallbacks + a.fallbacks;
           an_unconverged = acc.an_unconverged + a.unconverged;
         })
      {
        Report.an_worst_margin = chosen.cand_worst;
        an_max_iterations = 0;
        an_max_residual = 0.;
        an_max_condition = 0.;
        an_fallbacks = 0;
        an_unconverged = 0;
      }
      chosen.cand_corners
  in
  let hardened_report =
    {
      base.report with
      Report.analog = Some analog;
      deadline_hit =
        base.report.Report.deadline_hit || Resilience.Budget.exhausted budget;
    }
  in
  {
    base;
    candidates;
    chosen;
    failing_outputs;
    meets_spec = failing_outputs = [];
    mc;
    hardened_report;
  }
