let of_oct_result ?(alignment = false) ~gamma ~method_name
    (bg : Types.bdd_graph) (oct : Graphs.Oct.result) =
  let n = Graphs.Ugraph.num_nodes bg.graph in
  let transversal = Array.make n false in
  List.iter (fun v -> transversal.(v) <- true) oct.transversal;
  let labels =
    Balance.orient ~alignment bg ~transversal ~coloring:oct.coloring
  in
  (* Alignment may have upgraded extra nodes to VH beyond the OCT; claim
     optimality only when it did not. *)
  let upgrades =
    let vh = ref 0 in
    Array.iter (fun l -> if l = Types.VH then incr vh) labels;
    !vh - List.length oct.transversal
  in
  let optimal = oct.optimal && upgrades = 0 in
  let lower_bound =
    float_of_int (n + oct.lower_bound)
    |> fun s_lb ->
    (gamma *. s_lb) +. ((1. -. gamma) *. ceil (s_lb /. 2.))
  in
  Types.make_labeling bg ~gamma ~optimal ~lower_bound
    ~solve_time:oct.elapsed ~method_name labels

let solve ?budget ?(alignment = false) ?(gamma = 1.0) bg =
  let oct = Graphs.Oct.solve ?budget bg.Types.graph in
  of_oct_result ~alignment ~gamma ~method_name:"oct-exact" bg oct

let greedy ?(alignment = false) ?(gamma = 1.0) bg =
  let oct = Graphs.Oct.greedy bg.Types.graph in
  of_oct_result ~alignment ~gamma ~method_name:"oct-greedy" bg oct
