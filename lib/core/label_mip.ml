let labeling_to_point ~num_point_vars ~xv ~xh (labeling : Types.labeling) =
  let point = Array.make num_point_vars 0. in
  Array.iteri
    (fun i l ->
       let v, h =
         match l with
         | Types.V -> 1., 0.
         | Types.H -> 0., 1.
         | Types.VH -> 1., 1.
       in
       point.((xv.(i) : Lp.Problem.var :> int)) <- v;
       point.((xh.(i) : Lp.Problem.var :> int)) <- h)
    labeling.labels;
  point

exception Infeasible of string

let solve ?budget ?node_limit ?(alignment = false)
    ?(gamma = 0.5) ?warm_start ?(oct_cut = 0) ?max_rows ?max_cols ?jobs
    (bg : Types.bdd_graph) =
  let start = Obs.Clock.now () in
  let n = Graphs.Ugraph.num_nodes bg.graph in
  let p = Lp.Problem.create () in
  let xv = Array.init n (fun i -> Lp.Problem.add_binary p (Printf.sprintf "v%d" i)) in
  let xh = Array.init n (fun i -> Lp.Problem.add_binary p (Printf.sprintf "h%d" i)) in
  let d = Lp.Problem.add_var p "D" in
  (* Each node carries at least one label. *)
  for i = 0 to n - 1 do
    Lp.Problem.add_constraint p [ (1., xv.(i)); (1., xh.(i)) ] Lp.Simplex.Ge 1.
  done;
  (* Connection constraints: H labels and V labels each cover every edge. *)
  Graphs.Ugraph.iter_edges
    (fun i j ->
       Lp.Problem.add_constraint p [ (1., xh.(i)); (1., xh.(j)) ] Lp.Simplex.Ge 1.;
       Lp.Problem.add_constraint p [ (1., xv.(i)); (1., xv.(j)) ] Lp.Simplex.Ge 1.)
    bg.graph;
  (* D ≥ R and D ≥ C. *)
  let rows_terms = Array.to_list (Array.map (fun v -> -1., v) xh) in
  let cols_terms = Array.to_list (Array.map (fun v -> -1., v) xv) in
  Lp.Problem.add_constraint p ((1., d) :: rows_terms) Lp.Simplex.Ge 0.;
  Lp.Problem.add_constraint p ((1., d) :: cols_terms) Lp.Simplex.Ge 0.;
  (* Strengthening cuts: S ≥ n + k_lb and D ≥ ⌈(n + k_lb) / 2⌉. *)
  let s_terms =
    Array.to_list (Array.map (fun v -> 1., v) xv)
    @ Array.to_list (Array.map (fun v -> 1., v) xh)
  in
  Lp.Problem.add_constraint p s_terms Lp.Simplex.Ge (float_of_int (n + oct_cut));
  Lp.Problem.add_constraint p [ (1., d) ] Lp.Simplex.Ge
    (ceil (float_of_int (n + oct_cut) /. 2.));
  (* Row/column capacities (the constrained formulation of Section III). *)
  (match max_rows with
   | Some cap ->
     Lp.Problem.add_constraint p
       (Array.to_list (Array.map (fun v -> 1., v) xh))
       Lp.Simplex.Le (float_of_int cap)
   | None -> ());
  (match max_cols with
   | Some cap ->
     Lp.Problem.add_constraint p
       (Array.to_list (Array.map (fun v -> 1., v) xv))
       Lp.Simplex.Le (float_of_int cap)
   | None -> ());
  (* Alignment (Eq 7): terminal and roots on wordlines. *)
  if alignment then begin
    let force_h node =
      Lp.Problem.add_constraint p [ (1., xh.(node)) ] Lp.Simplex.Ge 1.
    in
    force_h bg.terminal;
    List.iter
      (fun (_, root) ->
         match root with
         | Types.Node v -> force_h v
         | Types.Const_false -> ())
      bg.roots
  end;
  (* Objective: γ·S + (1−γ)·D. *)
  let objective =
    ((1. -. gamma), d)
    :: (Array.to_list (Array.map (fun v -> gamma, v) xv)
        @ Array.to_list (Array.map (fun v -> gamma, v) xh))
  in
  Lp.Problem.set_objective p ~sense:`Minimize objective;
  let warm =
    match warm_start with
    | Some l -> l
    | None -> Label_oct.greedy ~alignment ~gamma bg
  in
  let warm_feasible =
    (match max_rows with Some cap -> warm.Types.rows <= cap | None -> true)
    && match max_cols with Some cap -> warm.Types.cols <= cap | None -> true
  in
  let initial =
    if not warm_feasible then None
    else begin
      let point =
        labeling_to_point ~num_point_vars:(Lp.Problem.num_vars p) ~xv ~xh warm
      in
      point.((d : Lp.Problem.var :> int)) <-
        float_of_int (Types.max_dimension warm);
      Some (point, warm.objective)
    end
  in
  let result = Milp.Branch_bound.solve ?budget ?node_limit ?initial ?jobs p in
  if result.status = Milp.Branch_bound.Infeasible then
    raise
      (Infeasible
         (Printf.sprintf
            "no VH-labeling within max_rows=%s, max_cols=%s"
            (match max_rows with Some c -> string_of_int c | None -> "inf")
            (match max_cols with Some c -> string_of_int c | None -> "inf")));
  let labels =
    match result.solution with
    | None when not warm_feasible ->
      raise
        (Infeasible
           "budget exhausted before any labeling satisfying the \
            capacity constraints was found")
    | Some sol ->
      Array.init n (fun i ->
          let v = sol.((xv.(i) :> int)) > 0.5 in
          let h = sol.((xh.(i) :> int)) > 0.5 in
          match v, h with
          | true, true -> Types.VH
          | true, false -> Types.V
          | false, true -> Types.H
          | false, false -> assert false)
    | None -> Array.copy warm.labels
  in
  let optimal = result.status = Milp.Branch_bound.Optimal in
  Types.make_labeling bg ~gamma ~optimal ~lower_bound:result.bound
    ~solve_time:(Obs.Clock.now () -. start)
    ~method_name:"mip" ~trace:result.trace labels
