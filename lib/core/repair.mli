(** The repair escalation ladder: make a synthesised design survive a
    faulty physical array, or say precisely how it fails.

    Rungs, cheapest first:

    + {b permutation} — relocate wordlines/bitlines onto healthy lines of
      the primary array region ({!Place.find});
    + {b spares} — the same matching, now also consuming the reserved
      spare lines;
    + {b resynthesis} — ask the caller to re-run synthesis under tighter
      [max_rows]/[max_cols] capacity constraints (a different labeling
      reshuffles which junctions exist, dodging the offending devices),
      then place the new design with spares;
    + {b graceful degradation} — place ignoring junction faults and
      report per output which still compute correctly.

    Every rung's design is functionally verified ({!Crossbar.Verify})
    before it is accepted — a placement that passes the matcher but
    conducts through a sneak path is rejected here, so the ladder never
    returns a silently wrong design. *)

type strategy =
  | Permutation  (** row/column permutation on the primary region *)
  | Spares  (** permutation consuming spare lines *)
  | Resynthesis  (** re-synthesised under capacity constraints *)
  | Unconstrained
      (** fault-oblivious placement that happened to verify (all faults
          masked) *)

type attempt = {
  strategy : strategy;
  placed : bool;  (** the matcher found a placement *)
  verified : bool;  (** … and it passed functional verification *)
}

type outcome =
  | Repaired of {
      design : Crossbar.Design.t;  (** physical, verified design *)
      placement : Place.t;
      strategy : strategy;
    }
  | Degraded of {
      design : Crossbar.Design.t;
      placement : Place.t;
      correct : string list;  (** outputs that still compute correctly *)
      failed : (string * Crossbar.Verify.counterexample) list;
    }
  | Unplaceable of string
      (** the healthy lines cannot even hold the design *)

type report = { outcome : outcome; attempts : attempt list }

val run :
  ?trials:int ->
  ?seed:int ->
  ?resynthesize:(max_rows:int -> max_cols:int -> Crossbar.Design.t option) ->
  defects:Crossbar.Defect_map.t ->
  inputs:string list ->
  outputs:string list ->
  reference:(bool array -> bool array) ->
  Crossbar.Design.t ->
  report
(** Climb the ladder for [design] on the [defects] array. [resynthesize]
    (omitted: the rung is skipped) is called with capacities at most the
    healthy-line counts and strictly below the current design's
    dimensions; it returns [None] when synthesis is infeasible there.
    [trials]/[seed] parameterise the randomised verification fallback for
    designs with more than {!Crossbar.Verify.exhaustive_threshold}
    inputs. *)

val strategy_name : strategy -> string
val pp_attempt : Format.formatter -> attempt -> unit
val pp : Format.formatter -> report -> unit
