(** VH-labeling method 1 (§VI-A): minimal semiperimeter via a minimum
    odd-cycle transversal.

    The OCT is found through a minimum vertex cover of G□K2 (Lemma 1);
    the residual bipartite graph is 2-coloured and balanced per component
    with {!module:Balance}. The semiperimeter n + |OCT| is provably
    minimal when the cover solver converges; the maximum dimension is the
    best achievable by component flips for that particular transversal. *)

val solve :
  ?budget:Resilience.Budget.t ->
  ?alignment:bool ->
  ?gamma:float ->
  Types.bdd_graph ->
  Types.labeling
(** [gamma] (default 1.0) only affects the reported objective value; the
    method itself always minimises the semiperimeter first. [optimal] in
    the result means: semiperimeter proven minimal (alignment upgrades can
    add VH nodes on top of the minimum OCT, in which case optimality is
    not claimed). *)

val greedy :
  ?alignment:bool -> ?gamma:float -> Types.bdd_graph -> Types.labeling
(** Same pipeline with the linear-time greedy OCT; scales to very large
    BDDs at the cost of a larger (unproven) transversal. *)
