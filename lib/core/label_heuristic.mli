(** Scalable VH-labeling: OCT pipeline plus local search on the weighted
    objective.

    Reproduces the behaviour the MIP exhibits on large instances where
    exact solving is out of reach: starting from a (minimum or greedy)
    odd-cycle transversal and a balanced 2-colouring, the search repeats
    the paper's Fig 7 move — upgrade a node to VH, splitting its component
    and re-balancing — whenever it improves γ·S + (1−γ)·D. With γ = 1 the
    move never helps and the method reduces to the OCT pipeline. *)

val solve :
  ?budget:Resilience.Budget.t ->
  ?alignment:bool ->
  ?gamma:float ->
  ?max_rounds:int ->
  ?candidates_per_round:int ->
  Types.bdd_graph ->
  Types.labeling
(** Defaults: [gamma = 0.5], [max_rounds = 25],
    [candidates_per_round = 24]. Half the remaining [budget] goes to the
    initial OCT (exact for graphs of ≤ [3000] nodes, greedy above), the
    rest to the local search; exhaustion mid-search returns the
    incumbent labeling. *)

val exact_oct_node_threshold : int
