(** The end-to-end COMPACT flow (Fig 3): Boolean function → SBDD →
    graph pre-processing → VH-labeling → crossbar mapping. *)

(** Which VH-labeling solver to run. *)
type solver =
  | Oct_exact  (** §VI-A: minimum OCT via vertex cover of G□K2 *)
  | Oct_greedy  (** linear-time transversal, for very large BDDs *)
  | Mip  (** §VI-B: weighted objective, branch & bound *)
  | Heuristic  (** OCT + Fig 7 local search on the weighted objective *)
  | Auto
      (** Mip below {!mip_node_threshold} graph nodes, otherwise
          [Heuristic] *)

type options = {
  gamma : float;  (** objective weight (default 0.5, §VIII-A) *)
  solver : solver;  (** default [Auto] *)
  alignment : bool;  (** Eq 7 port alignment (default true, §VIII) *)
  time_limit : float;
      (** labeling budget in seconds (default 60). Under [Auto] a
          monotonic-clock watchdog guards the budget: a rung that spends
          it without an optimality proof has only a best-so-far partial
          incumbent, which is discarded in favour of the next cheaper
          method (primary → [Heuristic] → [Oct_greedy]; the last always
          completes). Each rung gets the full budget, so the worst case
          is a small multiple of [time_limit]. Explicit solver choices
          and capacity-constrained runs are exempt — substituting a
          different method there would be silent. The rungs attempted
          are recorded in {!Report.t.solver_path}. *)
  bdd_node_limit : int;  (** abort threshold for BDD construction *)
  order : string list option;  (** variable order (default: heuristic) *)
  max_rows : int option;
      (** §III capacity constraint on wordlines; forces the MIP solver.
          {!Compact.Label_mip.Infeasible} escapes when unsatisfiable *)
  max_cols : int option;  (** same for bitlines *)
}

val default_options : options
val mip_node_threshold : int

type result = {
  design : Crossbar.Design.t;
  labeling : Types.labeling;
  bdd_graph : Types.bdd_graph;
  report : Report.t;
}

val synthesize_graph :
  ?options:options -> name:string -> Types.bdd_graph -> result
(** Label and map an already pre-processed graph. *)

val synthesize_sbdd : ?options:options -> name:string -> Bdd.Sbdd.t -> result

val synthesize : ?options:options -> Logic.Netlist.t -> result
(** Full flow from a netlist (single shared SBDD — the §VII-A default).
    @raise Bdd.Manager.Size_limit if the BDD exceeds the node budget. *)

val synthesize_expr :
  ?options:options -> name:string -> Logic.Expr.t -> result
(** Single-output convenience wrapper. *)

val synthesize_separate_robdds :
  ?options:options -> Logic.Netlist.t -> result list * Crossbar.Design.t
(** The multiple-ROBDD mode of Table III / prior work: one single-output
    ROBDD and crossbar per output, plus their diagonal merge sharing one
    input wordline. Alignment is forced on (the merge requires ports on
    wordlines). *)

val merge_diagonal : Crossbar.Design.t list -> Crossbar.Design.t
(** Block-diagonal composition of single-function designs, fusing all
    input wordlines into one shared bottom row (the paper's Fig 8(a)).
    @raise Invalid_argument if a design's input is not a [Row], or on an
    empty list. *)

type repair_result = {
  base : result;  (** the unconstrained synthesis the repair starts from *)
  repair : Repair.report;
}

val repair :
  ?options:options ->
  defects:Crossbar.Defect_map.t ->
  Logic.Netlist.t ->
  repair_result
(** Synthesise [netlist] and climb the {!Repair} escalation ladder to
    fit the design onto the faulty array [defects]: permutation
    placement, spare consumption, capacity-constrained resynthesis, and
    finally a per-output graceful-degradation report. Every accepted
    design is functionally verified — the result is never silently
    wrong.
    @raise Bdd.Manager.Size_limit as {!synthesize}. *)
