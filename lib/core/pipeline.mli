(** The end-to-end COMPACT flow (Fig 3): Boolean function → SBDD →
    graph pre-processing → VH-labeling → crossbar mapping.

    {b Reentrancy.} Every entry point is a pure function of its
    arguments: all solver state (BDD managers, MIP trees, RNG streams
    derived via {!Crossbar.Rng.derive}) is allocated per call, the only
    process-wide state touched is the [Obs] metric registry (whose cells
    are allocated once at module load, never per call) and an armed
    [Resilience.Inject] configuration. Two back-to-back calls in one
    process therefore return byte-identical designs, and a long-lived
    server ([compactd]) may call the pipeline repeatedly — or from a
    domain pool with per-request {!Resilience.Budget}s — without
    cross-request interference. *)

(** Which VH-labeling solver to run. *)
type solver =
  | Oct_exact  (** §VI-A: minimum OCT via vertex cover of G□K2 *)
  | Oct_greedy  (** linear-time transversal, for very large BDDs *)
  | Mip  (** §VI-B: weighted objective, branch & bound *)
  | Heuristic  (** OCT + Fig 7 local search on the weighted objective *)
  | Auto
      (** Mip below {!mip_node_threshold} graph nodes, otherwise
          [Heuristic] *)
  | Portfolio
      (** the [Auto] ladder raced concurrently on the domain pool —
          optionally across several candidate variable orders
          ([race_orders]) — instead of run sequentially. Wall time is
          the fastest acceptable entrant, not the sum of timed-out
          rungs; the winner is picked by a deterministic staged rule
          (solver priority, then semiperimeter, then order index —
          never wall-clock), so the design is byte-identical at any
          [jobs] count. Every entrant and its outcome is recorded in
          {!Report.t.solver_path} as ["solver@order:outcome"].

          Entrant deadlines are staggered: non-terminal rank [r] of [R]
          is cut off at [(r+1)/R] of [time_limit] (the last non-terminal
          rank keeps the full per-rung limit Auto would give it). A
          stuck primary therefore stalls the decision for at most half
          the limit instead of all of it — the price is that a primary
          needing more than its share to prove optimality loses to its
          fallback, where sequential [Auto] would have waited. *)

type options = {
  gamma : float;  (** objective weight (default 0.5, §VIII-A) *)
  solver : solver;  (** default [Auto] *)
  alignment : bool;  (** Eq 7 port alignment (default true, §VIII) *)
  time_limit : float;
      (** per-rung labeling cap in seconds (default 60). Under [Auto] a
          watchdog guards it: a rung that exhausts its budget without an
          optimality proof has only a best-so-far partial incumbent,
          which is discarded in favour of the next cheaper method
          (primary → [Heuristic] → [Oct_greedy]; the last always
          completes). Explicit solver choices and capacity-constrained
          runs are exempt — substituting a different method there would
          be silent. The rungs attempted are recorded in
          {!Report.t.solver_path}. *)
  deadline : float option;
      (** end-to-end wall deadline in seconds for the whole run
          (default [None]). Opens a {!Resilience.Budget} that every
          stage receives a deterministic slice of: the BDD build keeps
          the budget's resource bounds but not the wall deadline (it
          must complete to produce anything), each non-terminal labeling
          rung gets half the remaining wall time (still capped by
          [time_limit]), and the terminal [Oct_greedy] rung always
          completes — so an expired deadline yields a verified degraded
          design with {!Report.t.deadline_hit} set, never a wedged run.
          An explicit [?budget] argument to the entry points overrides
          this field. *)
  bdd_node_limit : int;  (** abort threshold for BDD construction *)
  order : string list option;  (** variable order (default: heuristic) *)
  max_rows : int option;
      (** §III capacity constraint on wordlines; forces the MIP solver.
          {!Compact.Label_mip.Infeasible} escapes when unsatisfiable *)
  max_cols : int option;  (** same for bitlines *)
  jobs : int;
      (** domain-pool width for the parallelisable stages (the MIP
          branch & bound, and the [Portfolio] race; default 1, the exact
          sequential path). See {!Milp.Branch_bound.solve} and
          {!Parallel.race} for the determinism contracts. *)
  race_orders : int;
      (** under [Portfolio], how many candidate variable orders to race
          per solver rung (default 1: the build order only). Additional
          entrants build separate SBDDs under the remaining
          {!Bdd.Order.candidates} orders; only {!synthesize} (which
          holds the netlist) can build them — the SBDD- and graph-level
          entry points race solvers on the single diagram they were
          given. *)
}

val default_options : options
val mip_node_threshold : int

val solver_name : solver -> string
(** Stable lowercase name (["oct"], ["oct-greedy"], ["mip"],
    ["heuristic"], ["auto"], ["portfolio"]) — the spelling used in
    {!Report.t.solver_path}, the CLI [--solver] flag, and the [compactd]
    wire protocol / cache key. *)

val solver_of_name : string -> solver option
(** Inverse of {!solver_name}; [None] for unknown spellings. *)

type result = {
  design : Crossbar.Design.t;
  labeling : Types.labeling;
  bdd_graph : Types.bdd_graph;
  report : Report.t;
}

val synthesize_graph :
  ?options:options ->
  ?budget:Resilience.Budget.t ->
  name:string ->
  Types.bdd_graph ->
  result
(** Label and map an already pre-processed graph. [budget] defaults to
    the budget implied by [options.deadline] (or unlimited); an
    escaping [Out_of_memory] is converted to
    [Resilience.Budget.Exhausted Memory]. *)

val synthesize_sbdd :
  ?options:options ->
  ?budget:Resilience.Budget.t ->
  name:string ->
  Bdd.Sbdd.t ->
  result

val synthesize :
  ?options:options -> ?budget:Resilience.Budget.t -> Logic.Netlist.t -> result
(** Full flow from a netlist (single shared SBDD — the §VII-A default).
    @raise Bdd.Manager.Size_limit if the BDD exceeds the node budget.
    @raise Resilience.Budget.Exhausted on cancellation or node/memory
    budget exhaustion during the BDD build (wall-deadline expiry instead
    degrades the labeling — see {!options.deadline}). *)

val synthesize_expr :
  ?options:options -> name:string -> Logic.Expr.t -> result
(** Single-output convenience wrapper. *)

val synthesize_separate_robdds :
  ?options:options ->
  ?budget:Resilience.Budget.t ->
  Logic.Netlist.t ->
  result list * Crossbar.Design.t
(** The multiple-ROBDD mode of Table III / prior work: one single-output
    ROBDD and crossbar per output, plus their diagonal merge sharing one
    input wordline. Alignment is forced on (the merge requires ports on
    wordlines). *)

val merge_diagonal : Crossbar.Design.t list -> Crossbar.Design.t
(** Block-diagonal composition of single-function designs, fusing all
    input wordlines into one shared bottom row (the paper's Fig 8(a)).
    @raise Invalid_argument if a design's input is not a [Row], or on an
    empty list. *)

type repair_result = {
  base : result;  (** the unconstrained synthesis the repair starts from *)
  repair : Repair.report;
}

val repair :
  ?options:options ->
  ?budget:Resilience.Budget.t ->
  defects:Crossbar.Defect_map.t ->
  Logic.Netlist.t ->
  repair_result
(** Synthesise [netlist] and climb the {!Repair} escalation ladder to
    fit the design onto the faulty array [defects]: permutation
    placement, spare consumption, capacity-constrained resynthesis, and
    finally a per-output graceful-degradation report. Every accepted
    design is functionally verified — the result is never silently
    wrong.
    @raise Bdd.Manager.Size_limit as {!synthesize}. *)

(** {1 Variation-aware hardening}

    Logically equivalent designs are not electrically equivalent: the
    labeling's gamma trade-off changes the geometry (and with it sneak
    leakage), and wordline/bitline permutations change the wire distance
    every read path travels. [harden] enumerates such variants, scores
    each by its worst-case read margin over the deterministic
    {!Crossbar.Variation.corner}s of a variation spec, and returns the
    design that degrades last. *)

type harden_options = {
  spec : Crossbar.Variation.spec;  (** variation model to harden against *)
  margin_spec : float;
      (** required worst-corner margin per output (default 0: merely
          functional at every corner) *)
  analog_params : Crossbar.Analog.params;
  analog_opts : Crossbar.Analog.solver_opts;
  seed : int;  (** threads every margin/MC sample through {!Crossbar.Rng} *)
  margin_trials : int;
      (** assignments per corner analysis beyond the exhaustive
          threshold (default 24) *)
  mc_trials : int;
      (** Monte-Carlo yield budget on the chosen design; 0 skips the MC
          stage (default 64) *)
  alt_gammas : float list;
      (** labeling variants re-labeled on the shared BDD graph *)
  alt_solvers : solver list;  (** solver variants, same graph *)
  permutations : bool;
      (** also score {!Place.margin_candidates} of every labeling *)
  jobs : int;
      (** domain-pool width for candidate scoring and the Monte-Carlo
          stage (default 1). Results merge in generation order, so the
          ranking, chosen design, and MC report are identical for any
          jobs count under a fixed seed. *)
}

val default_harden_options : harden_options

type candidate = {
  cand_label : string;
      (** e.g. ["base"], ["gamma=1.00/rev-rows"], ["heuristic"] *)
  cand_design : Crossbar.Design.t;
  cand_worst : float;  (** min margin over corners and outputs *)
  cand_typical : float;  (** margin at the [Typical] corner *)
  cand_corners : (Crossbar.Variation.corner * Crossbar.Margin.analysis) list;
}

type harden_result = {
  base : result;  (** the unhardened synthesis all variants derive from *)
  candidates : candidate list;  (** every variant scored, best first *)
  chosen : candidate;
  failing_outputs : (string * float) list;
      (** outputs of the chosen design whose worst-corner margin misses
          [margin_spec], with that margin — the graceful-degradation
          report when even the best variant cannot meet the spec *)
  meets_spec : bool;  (** [failing_outputs = []] *)
  mc : Crossbar.Margin.mc option;
      (** Monte-Carlo functional yield of the chosen design *)
  hardened_report : Report.t;
      (** [base.report] with {!Report.t.analog} filled from the chosen
          candidate's corner analyses *)
}

val harden :
  ?options:options ->
  ?hopts:harden_options ->
  ?budget:Resilience.Budget.t ->
  Logic.Netlist.t ->
  harden_result
(** Synthesise, enumerate electrical variants (alternate labelings on
    the shared preprocessed graph, then line permutations of each),
    deduplicate, score every candidate's worst-case corner margin, and
    pick the maximiser (ties: higher typical margin, then smaller
    semiperimeter, then generation order — so ["base"] wins exact ties).
    Never raises on margin failure: a design that cannot meet the spec
    is still returned, with the misses in [failing_outputs].
    @raise Bdd.Manager.Size_limit as {!synthesize}. *)
