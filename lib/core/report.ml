type analog_summary = {
  an_worst_margin : float;
  an_max_iterations : int;
  an_max_residual : float;
  an_max_condition : float;
  an_fallbacks : int;
  an_unconverged : int;
}

type t = {
  circuit : string;
  bdd_nodes : int;
  bdd_edges : int;
  rows : int;
  cols : int;
  semiperimeter : int;
  max_dimension : int;
  area : int;
  vh_count : int;
  power_literals : int;
  delay_steps : int;
  synthesis_time : float;
  label_time : float;
  optimal : bool;
  gap : float;
  method_name : string;
  gamma : float;
  solver_path : string list;
  solver_retries : int;
  deadline_hit : bool;
  bdd_stats : Bdd.Manager.stats option;
  analog : analog_summary option;
}

let analog_of_analysis (a : Crossbar.Margin.analysis) =
  {
    an_worst_margin = a.Crossbar.Margin.worst;
    an_max_iterations = a.max_iterations;
    an_max_residual = a.max_residual;
    an_max_condition = a.max_condition;
    an_fallbacks = a.fallbacks;
    an_unconverged = a.unconverged;
  }

let with_analog r a = { r with analog = Some (analog_of_analysis a) }

(* The single home of the [solver_retries = List.length solver_path - 1]
   invariant. Constructors derive retries here and [check] asserts it,
   so call sites never recompute (or drift from) the relation. *)
let retries_of_path p = max 0 (List.length p - 1)

let check r =
  assert (r.solver_retries = retries_of_path r.solver_path);
  r

let rungs r = String.concat "->" r.solver_path

(* A solver path safe to serve from a cache to any future identical
   request: nothing in it is timing-dependent. A sequential path
   qualifies only as a single rung — a watchdog fallback means an
   earlier rung ran out of wall time, which another run might not.
   A portfolio path (entries shaped ["solver@order:outcome"]) qualifies
   when every entrant's outcome follows from the deterministic staged
   decision — "win", "ok" and "cut" do; "partial" (an entrant hit its
   own wall deadline) and "error" do not. *)
let path_pristine = function
  | [] -> false
  | [ _ ] -> true
  | entries ->
    List.for_all
      (fun e ->
         List.exists
           (fun suffix -> Filename.check_suffix e suffix)
           [ ":win"; ":ok"; ":cut" ])
      entries

let of_design ?solver_path ?(deadline_hit = false) ?bdd_stats ~circuit
    ~bdd_graph ~labeling ~synthesis_time design =
  let gap =
    if labeling.Types.optimal then 0.
    else if labeling.objective <= 0. then 1.
    else
      min 1.
        ((labeling.objective -. labeling.lower_bound)
         /. max 1e-10 labeling.objective)
  in
  check
  {
    circuit;
    bdd_nodes = Preprocess.num_bdd_nodes bdd_graph;
    bdd_edges = Preprocess.num_bdd_edges bdd_graph;
    rows = Crossbar.Design.rows design;
    cols = Crossbar.Design.cols design;
    semiperimeter = Crossbar.Design.semiperimeter design;
    max_dimension = Crossbar.Design.max_dimension design;
    area = Crossbar.Design.area design;
    vh_count = labeling.Types.vh_count;
    power_literals = Crossbar.Design.num_literal_junctions design;
    delay_steps = Crossbar.Design.delay_steps design;
    synthesis_time;
    label_time = labeling.Types.solve_time;
    optimal = labeling.Types.optimal;
    gap;
    method_name = labeling.Types.method_name;
    gamma = labeling.Types.gamma;
    solver_path =
      (match solver_path with
       | Some p -> p
       | None -> [ labeling.Types.method_name ]);
    solver_retries =
      (match solver_path with
       | Some p -> retries_of_path p
       | None -> 0);
    deadline_hit;
    bdd_stats;
    analog = None;
  }

let header =
  Printf.sprintf "%-12s %7s %7s %6s %6s %6s %6s %9s %5s %8s %9s %5s"
    "circuit" "nodes" "edges" "rows" "cols" "S" "D" "area" "#VH" "time(s)"
    "method" "opt"

let pp_row ppf r =
  (* After watchdog fallbacks the winning method alone would hide the
     failed rungs; show the whole chain. *)
  let method_cell = if r.solver_retries > 0 then rungs r else r.method_name in
  Format.fprintf ppf "%-12s %7d %7d %6d %6d %6d %6d %9d %5d %8.3f %9s %5s"
    r.circuit r.bdd_nodes r.bdd_edges r.rows r.cols r.semiperimeter
    r.max_dimension r.area r.vh_count r.synthesis_time method_cell
    (if r.optimal then "yes" else Printf.sprintf "%.0f%%" (r.gap *. 100.))

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%s (%s, gamma=%.2f):@,\
     BDD: %d nodes, %d edges@,\
     crossbar: %d x %d (S=%d, D=%d, area=%d), %d VH nodes@,\
     power: %d literal junctions; delay: %d steps@,\
     synthesis: %.3fs (labeling %.3fs), %s@]"
    r.circuit r.method_name r.gamma r.bdd_nodes r.bdd_edges r.rows r.cols
    r.semiperimeter r.max_dimension r.area r.vh_count r.power_literals
    r.delay_steps r.synthesis_time r.label_time
    (if r.optimal then "optimal"
     else Printf.sprintf "gap %.1f%%" (r.gap *. 100.));
  if r.solver_retries > 0 then
    Format.fprintf ppf "@,solver fallback: %s (%d retr%s)" (rungs r)
      r.solver_retries
      (if r.solver_retries = 1 then "y" else "ies");
  if r.deadline_hit then
    Format.fprintf ppf
      "@,DEADLINE HIT: budget exhausted, result is the degraded incumbent";
  (match r.analog with
   | None -> ()
   | Some a ->
     Format.fprintf ppf
       "@,analog: worst margin %.4f, CG <=%d iters, residual <=%.2e, cond \
        ~%.1e%s%s"
       a.an_worst_margin a.an_max_iterations a.an_max_residual
       a.an_max_condition
       (if a.an_fallbacks > 0 then
          Printf.sprintf ", %d dense fallback%s" a.an_fallbacks
            (if a.an_fallbacks = 1 then "" else "s")
        else "")
       (if a.an_unconverged > 0 then
          Printf.sprintf ", %d UNCONVERGED" a.an_unconverged
        else ""));
  match r.bdd_stats with
  | None -> ()
  | Some s ->
    let rate part whole =
      if whole = 0 then 0.
      else 100. *. float_of_int part /. float_of_int whole
    in
    Format.fprintf ppf
      "@,BDD engine: %d peak nodes, unique %.1f%% hit (%d lookups), cache \
       %.1f%% hit (%d lookups), %d growths"
      s.Bdd.Manager.peak_nodes
      (rate s.unique_hits s.unique_lookups)
      s.unique_lookups
      (rate s.cache_hits s.cache_lookups)
      s.cache_lookups s.growths;
    if s.level_swaps > 0 || s.sift_passes > 0 then
      Format.fprintf ppf
        "@,reordering: %d level swaps in %d sift passes, %d cache \
         invalidations"
        s.level_swaps s.sift_passes s.cache_invalidations
