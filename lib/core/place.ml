module Defect_map = Crossbar.Defect_map
module Design = Crossbar.Design
module Literal = Crossbar.Literal

type t = { row_map : int array; col_map : int array }

(* Physical lines offered to the matcher: broken lines never, spare lines
   only on request, in ascending order so that the first candidate on a
   defect-free array is the identity. *)
let usable_lines map ~use_spares =
  let rows = Defect_map.rows map and cols = Defect_map.cols map in
  let last_row = rows - 1 - if use_spares then 0 else Defect_map.spare_rows map in
  let last_col = cols - 1 - if use_spares then 0 else Defect_map.spare_cols map in
  let keep ok last n = List.filter (fun i -> i <= last && ok i) (List.init n Fun.id) in
  ( Array.of_list (keep (Defect_map.row_ok map) last_row rows),
    Array.of_list (keep (Defect_map.col_ok map) last_col cols) )

(* Junction faults grouped per physical line, broken lines excluded (a
   broken line conducts nothing, so its stuck devices are moot). *)
let fault_tables map =
  let row_faults = Array.make (Defect_map.rows map) [] in
  let col_faults = Array.make (Defect_map.cols map) [] in
  List.iter
    (fun f ->
       let r, c, s =
         match f with
         | Crossbar.Fault.Stuck_on (r, c) -> r, c, Defect_map.Stuck_on
         | Crossbar.Fault.Stuck_off (r, c) -> r, c, Defect_map.Stuck_off
       in
       if Defect_map.row_ok map r && Defect_map.col_ok map c then begin
         row_faults.(r) <- (c, s) :: row_faults.(r);
         col_faults.(c) <- (r, s) :: col_faults.(c)
       end)
    (Defect_map.faults map);
  row_faults, col_faults

let lit_fits lit = function
  | Defect_map.Good -> true
  | Defect_map.Stuck_on -> Literal.equal lit Literal.On
  | Defect_map.Stuck_off -> Literal.equal lit Literal.Off

(* The sneak-path guard: unused intact lines chained by stuck-on devices
   must not connect two distinct used lines, or the spare region bridges
   wordlines the logical design keeps apart. Components of unused lines
   (edges: stuck-on junctions between two unused lines) are traversed;
   a component attached through stuck-on devices to two different used
   lines is a hazard. *)
let no_spare_bridge map ~row_used ~col_used =
  let rows = Defect_map.rows map in
  let cols = Defect_map.cols map in
  (* union-find over rows (ids 0..rows-1) and cols (ids rows..rows+cols-1) *)
  let parent = Array.init (rows + cols) Fun.id in
  let rec find x = if parent.(x) = x then x else begin
      parent.(x) <- find parent.(x);
      parent.(x)
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  let attachments = Hashtbl.create 16 in (* component root -> used-line id *)
  let ok = ref true in
  let attach comp used_line =
    match Hashtbl.find_opt attachments comp with
    | None -> Hashtbl.replace attachments comp used_line
    | Some l -> if l <> used_line then ok := false
  in
  (* First pass: union unused-unused stuck-on junctions. *)
  List.iter
    (fun f ->
       match f with
       | Crossbar.Fault.Stuck_on (r, c)
         when Defect_map.row_ok map r && Defect_map.col_ok map c
              && (not row_used.(r)) && not col_used.(c) ->
         union r (rows + c)
       | _ -> ())
    (Defect_map.faults map);
  (* Second pass: attachments of components to used lines. *)
  List.iter
    (fun f ->
       match f with
       | Crossbar.Fault.Stuck_on (r, c)
         when Defect_map.row_ok map r && Defect_map.col_ok map c ->
         (match row_used.(r), col_used.(c) with
          | true, false -> attach (find (rows + c)) r
          | false, true -> attach (find r) (rows + c)
          | _ -> ())
       | _ -> ())
    (Defect_map.faults map);
  !ok

let inverse ~size lines =
  let inv = Array.make size (-1) in
  Array.iteri (fun logical physical -> inv.(physical) <- logical) lines;
  inv

let full_check map d sigma pi =
  let rinv = inverse ~size:(Defect_map.rows map) sigma in
  let pinv = inverse ~size:(Defect_map.cols map) pi in
  let junctions_ok =
    List.for_all
      (fun f ->
         let r, c, s =
           match f with
           | Crossbar.Fault.Stuck_on (r, c) -> r, c, Defect_map.Stuck_on
           | Crossbar.Fault.Stuck_off (r, c) -> r, c, Defect_map.Stuck_off
         in
         if not (Defect_map.row_ok map r && Defect_map.col_ok map c) then true
         else
           match rinv.(r), pinv.(c) with
           | i, j when i >= 0 && j >= 0 ->
             lit_fits (Design.get d ~row:i ~col:j) s
           | _ -> true (* used-unused pairs are judged by the bridge guard *))
      (Defect_map.faults map)
  in
  junctions_ok
  && no_spare_bridge map
       ~row_used:(Array.map (fun i -> i >= 0) rinv)
       ~col_used:(Array.map (fun j -> j >= 0) pinv)

let compatible map p d =
  Array.length p.row_map = Design.rows d
  && Array.length p.col_map = Design.cols d
  && full_check map d p.row_map p.col_map

let find ?(use_spares = false) ?(respect_faults = true) ?(max_leaves = 2000)
    map d =
  let lr = Design.rows d and lc = Design.cols d in
  let urows, ucols = usable_lines map ~use_spares in
  if Array.length urows < lr || Array.length ucols < lc then None
  else begin
    let order_preserving lines k = Array.init k (fun i -> lines.(i)) in
    let sigma0 = order_preserving urows lr in
    let pi0 = order_preserving ucols lc in
    if not respect_faults then Some { row_map = sigma0; col_map = pi0 }
    else begin
      let row_faults, col_faults = fault_tables map in
      (* Row i fits physical row r under column placement pinv when every
         faulty device of r that lies under a used column agrees with the
         literal routed there. *)
      let row_fits pinv i r =
        List.for_all
          (fun (c, s) ->
             let j = pinv.(c) in
             j < 0 || lit_fits (Design.get d ~row:i ~col:j) s)
          row_faults.(r)
      in
      let col_fits rinv j c =
        List.for_all
          (fun (r, s) ->
             let i = rinv.(r) in
             i < 0 || lit_fits (Design.get d ~row:i ~col:j) s)
          col_faults.(c)
      in
      let match_rows pinv =
        Graphs.Matching.perfect_bipartite ~left:lr ~right:(Array.length urows)
          ~compatible:(fun i k -> row_fits pinv i urows.(k))
        |> Option.map (Array.map (fun k -> urows.(k)))
      in
      let match_cols rinv =
        Graphs.Matching.perfect_bipartite ~left:lc ~right:(Array.length ucols)
          ~compatible:(fun j k -> col_fits rinv j ucols.(k))
        |> Option.map (Array.map (fun k -> ucols.(k)))
      in
      let accept sigma pi =
        if full_check map d sigma pi then Some { row_map = sigma; col_map = pi }
        else None
      in
      let prows = Defect_map.rows map and pcols = Defect_map.cols map in
      (* Stage 1: order-preserving (the identity on a perfect array). *)
      match accept sigma0 pi0 with
      | Some p -> Some p
      | None ->
        (* Stage 2: alternating matching fixpoint. *)
        let rec alternate pi iters =
          if iters = 0 then None
          else
            match match_rows (inverse ~size:pcols pi) with
            | None -> None
            | Some sigma ->
              (match match_cols (inverse ~size:prows sigma) with
               | None -> None
               | Some pi' ->
                 (match accept sigma pi' with
                  | Some p -> Some p
                  | None -> if pi' = pi then None else alternate pi' (iters - 1)))
        in
        (match alternate pi0 5 with
         | Some p -> Some p
         | None ->
           (* Stage 3: backtracking over row assignments, exact column
              matching at each leaf. Most-constrained rows first. *)
           let programmed = Array.make lr 0 in
           let fuses = Array.make lr 0 in
           Design.iter_programmed d (fun i _ l ->
               programmed.(i) <- programmed.(i) + 1;
               if Literal.equal l Literal.On then fuses.(i) <- fuses.(i) + 1);
           let ucol_set = Array.make pcols false in
           Array.iter (fun c -> ucol_set.(c) <- true) ucols;
           let col_slack = Array.length ucols - lc in
           (* Necessary conditions for logical row i on physical row r,
              independent of the eventual column placement. *)
           let row_weak i r =
             let off = ref 0 and on = ref 0 in
             List.iter
               (fun (c, s) ->
                  if ucol_set.(c) then
                    match s with
                    | Defect_map.Stuck_off -> incr off
                    | Defect_map.Stuck_on -> incr on
                    | Defect_map.Good -> ())
               row_faults.(r);
             programmed.(i) <= Array.length ucols - !off
             && (col_slack > 0 || !on <= fuses.(i))
           in
           let order =
             List.sort
               (fun a b -> compare programmed.(b) programmed.(a))
               (List.init lr Fun.id)
           in
           let sigma = Array.make lr (-1) in
           let taken = Array.make prows false in
           let leaves = ref 0 in
           (* Interior nodes need their own budget: a search that dies
              deep in the tree before completing any assignment never
              increments [leaves] yet can churn exponentially. *)
           let nodes = ref 0 in
           let node_budget = max_leaves * 100 in
           let rec assign = function
             | [] ->
               incr leaves;
               (match match_cols (inverse ~size:prows sigma) with
                | None -> None
                | Some pi -> accept sigma pi)
             | i :: rest ->
               let rec try_rows k =
                 incr nodes;
                 if
                   k >= Array.length urows
                   || !leaves >= max_leaves
                   || !nodes > node_budget
                 then None
                 else
                   let r = urows.(k) in
                   if taken.(r) || not (row_weak i r) then try_rows (k + 1)
                   else begin
                     sigma.(i) <- r;
                     taken.(r) <- true;
                     match assign rest with
                     | Some p -> Some p
                     | None ->
                       sigma.(i) <- -1;
                       taken.(r) <- false;
                       try_rows (k + 1)
                   end
               in
               try_rows 0
           in
           assign order)
    end
  end

let apply map p d =
  let lr = Design.rows d and lc = Design.cols d in
  if Array.length p.row_map <> lr || Array.length p.col_map <> lc then
    invalid_arg "Place.apply: placement arity does not match the design";
  let prows = Defect_map.rows map and pcols = Defect_map.cols map in
  Array.iter
    (fun r ->
       if r < 0 || r >= prows then invalid_arg "Place.apply: wordline out of range")
    p.row_map;
  Array.iter
    (fun c ->
       if c < 0 || c >= pcols then invalid_arg "Place.apply: bitline out of range")
    p.col_map;
  let wire = function
    | Design.Row i -> Design.Row p.row_map.(i)
    | Design.Col j -> Design.Col p.col_map.(j)
  in
  let phys =
    Design.create ~rows:prows ~cols:pcols ~input:(wire (Design.input d))
      ~outputs:(List.map (fun (o, w) -> o, wire w) (Design.outputs d))
  in
  Design.iter_programmed d (fun i j l ->
      Design.set phys ~row:p.row_map.(i) ~col:p.col_map.(j) l);
  (* Physical truth wins over the intended programming. *)
  List.iter
    (fun f ->
       match f with
       | Crossbar.Fault.Stuck_on (r, c) ->
         if Defect_map.row_ok map r && Defect_map.col_ok map c then
           Design.set phys ~row:r ~col:c Literal.On
       | Crossbar.Fault.Stuck_off (r, c) ->
         Design.set phys ~row:r ~col:c Literal.Off)
    (Defect_map.faults map);
  (* Broken lines conduct nothing; erase anything routed across them. *)
  let dead = ref [] in
  Design.iter_programmed phys (fun r c _ ->
      if not (Defect_map.row_ok map r && Defect_map.col_ok map c) then
        dead := (r, c) :: !dead);
  List.iter (fun (r, c) -> Design.set phys ~row:r ~col:c Literal.Off) !dead;
  phys

let pp ppf p =
  let line l = String.concat "," (List.map string_of_int (Array.to_list l)) in
  Format.fprintf ppf "rows -> [%s]; cols -> [%s]" (line p.row_map)
    (line p.col_map)

(* ------------------------------------------------------------------ *)
(* Electrical re-placement (variation hardening) *)

let identity d =
  {
    row_map = Array.init (Design.rows d) Fun.id;
    col_map = Array.init (Design.cols d) Fun.id;
  }

let apply_permutation p d =
  Design.permute d ~row_perm:p.row_map ~col_perm:p.col_map

let margin_candidates d =
  let rows = Design.rows d and cols = Design.cols d in
  let idn n = Array.init n Fun.id in
  let rev n = Array.init n (fun i -> n - 1 - i) in
  (* Permutation packing [ports] (dedup, order kept) at indices 0..,
     remaining lines after them in their original order. Read paths then
     cross the fewest wire segments between ports. *)
  let pack n ports =
    let seen = Array.make n false in
    let order = ref [] in
    List.iter
      (fun i ->
         if not seen.(i) then begin
           seen.(i) <- true;
           order := i :: !order
         end)
      ports;
    for i = 0 to n - 1 do
      if not seen.(i) then order := i :: !order
    done;
    let order = Array.of_list (List.rev !order) in
    (* order.(k) is the logical line placed at physical index k. *)
    let perm = Array.make n 0 in
    Array.iteri (fun k l -> perm.(l) <- k) order;
    perm
  in
  let port_wires = Design.input d :: List.map snd (Design.outputs d) in
  let port_rows =
    List.filter_map
      (function Design.Row i -> Some i | Design.Col _ -> None)
      port_wires
  and port_cols =
    List.filter_map
      (function Design.Col j -> Some j | Design.Row _ -> None)
      port_wires
  in
  let mk label row_map col_map = label, { row_map; col_map } in
  let cands =
    [ mk "identity" (idn rows) (idn cols);
      mk "rev-rows" (rev rows) (idn cols);
      mk "rev-cols" (idn rows) (rev cols) ]
    @ (if List.length port_rows > 1 then
         [ mk "pack-port-rows" (pack rows port_rows) (idn cols);
           mk "pack-port-rows-rev-cols" (pack rows port_rows) (rev cols) ]
       else [])
    @
    if List.length port_cols > 1 then
      [ mk "pack-port-cols" (idn rows) (pack cols port_cols) ]
    else []
  in
  (* Prune duplicates (a reversal on one line is the identity, packing
     already-adjacent ports changes nothing, ...). *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (_, p) ->
       let key = (Array.to_list p.row_map, Array.to_list p.col_map) in
       if Hashtbl.mem seen key then false
       else begin
         Hashtbl.replace seen key ();
         true
       end)
    cands
