(** Synthesis reports: the metrics the paper's evaluation tables use. *)

type t = {
  circuit : string;
  bdd_nodes : int;  (** graph nodes = BDD nodes without the 0-terminal *)
  bdd_edges : int;
  rows : int;
  cols : int;
  semiperimeter : int;
  max_dimension : int;
  area : int;
  vh_count : int;
  power_literals : int;
      (** programmed variable literals — the worst-case number of device
          writes, the power proxy of Figs 12/13 *)
  delay_steps : int;  (** rows + 1 (§VIII) *)
  synthesis_time : float;  (** seconds, whole pipeline *)
  label_time : float;  (** seconds inside the labeling solver *)
  optimal : bool;
  gap : float;  (** relative optimality gap of the labeling, 0 if optimal *)
  method_name : string;
  gamma : float;
  solver_path : string list;
      (** solver rungs attempted by the pipeline's watchdog, in order;
          the last produced this labeling. Singleton when the first
          choice succeeded. *)
  solver_retries : int;  (** [List.length solver_path - 1] *)
  bdd_stats : Bdd.Manager.stats option;
      (** unique-table / op-cache counters of the manager the circuit's
          SBDD was built in; [None] when synthesis started from a
          pre-built graph with no live manager *)
}

val of_design :
  ?solver_path:string list ->
  ?bdd_stats:Bdd.Manager.stats ->
  circuit:string ->
  bdd_graph:Types.bdd_graph ->
  labeling:Types.labeling ->
  synthesis_time:float ->
  Crossbar.Design.t ->
  t

val header : string
(** Column header for {!pp_row}. *)

val pp_row : Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
