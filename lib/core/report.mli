(** Synthesis reports: the metrics the paper's evaluation tables use. *)

type analog_summary = {
  an_worst_margin : float;
      (** worst read margin across every output and evaluated point;
          negative means some output is functionally wrong *)
  an_max_iterations : int;  (** most CG iterations any solve needed *)
  an_max_residual : float;  (** worst relative residual accepted *)
  an_max_condition : float;
      (** worst diagonal conditioning estimate seen *)
  an_fallbacks : int;
      (** solves that fell back to dense Gaussian elimination *)
  an_unconverged : int;
      (** solves no method in the chain brought under tolerance *)
}
(** Electrical solver diagnostics from a {!Crossbar.Margin} analysis,
    carried alongside the logical metrics when a report's design was
    margin-checked. *)

type t = {
  circuit : string;
  bdd_nodes : int;  (** graph nodes = BDD nodes without the 0-terminal *)
  bdd_edges : int;
  rows : int;
  cols : int;
  semiperimeter : int;
  max_dimension : int;
  area : int;
  vh_count : int;
  power_literals : int;
      (** programmed variable literals — the worst-case number of device
          writes, the power proxy of Figs 12/13 *)
  delay_steps : int;  (** rows + 1 (§VIII) *)
  synthesis_time : float;  (** seconds, whole pipeline *)
  label_time : float;  (** seconds inside the labeling solver *)
  optimal : bool;
  gap : float;  (** relative optimality gap of the labeling, 0 if optimal *)
  method_name : string;
  gamma : float;
  solver_path : string list;
      (** solver rungs attempted by the pipeline's watchdog, in order;
          the last produced this labeling. Singleton when the first
          choice succeeded. Under the portfolio solver every raced
          entrant appears as ["solver@order:outcome"] with outcome one
          of [win] (the deterministic winner), [ok] (acceptable loser),
          [partial] (hit its own wall deadline), [error] (raised) or
          [cut] (deterministically skipped). *)
  solver_retries : int;  (** [List.length solver_path - 1] *)
  deadline_hit : bool;
      (** the run's work budget (e.g. a [--deadline]) exhausted during
          synthesis: the design is the verified degraded incumbent, not
          the full-effort result. The CLI maps this to a non-zero exit
          code. *)
  bdd_stats : Bdd.Manager.stats option;
      (** unique-table / op-cache counters of the manager the circuit's
          SBDD was built in; [None] when synthesis started from a
          pre-built graph with no live manager *)
  analog : analog_summary option;
      (** electrical margin/solver diagnostics; [None] until a margin
          analysis (e.g. {!Pipeline.harden}) has run on the design *)
}

val analog_of_analysis : Crossbar.Margin.analysis -> analog_summary
(** Condense a margin analysis into report diagnostics. *)

val with_analog : t -> Crossbar.Margin.analysis -> t
(** The report with [analog] filled from the analysis. *)

val of_design :
  ?solver_path:string list ->
  ?deadline_hit:bool ->
  ?bdd_stats:Bdd.Manager.stats ->
  circuit:string ->
  bdd_graph:Types.bdd_graph ->
  labeling:Types.labeling ->
  synthesis_time:float ->
  Crossbar.Design.t ->
  t

val rungs : t -> string
(** The watchdog rung chain, e.g. ["mip->heuristic"]. Singleton paths
    render as the bare method name. *)

val path_pristine : string list -> bool
(** Whether a {!t.solver_path} is free of timing-dependent degradation —
    a single sequential rung, or a portfolio field whose entrants all
    ended [win]/[ok]/[cut] — and its result therefore safe to cache for
    any future identical request. *)

val check : t -> t
(** Assert the [solver_retries = List.length solver_path - 1] invariant
    (the one place it is enforced) and return the report. *)

val header : string
(** Column header for {!pp_row}. *)

val pp_row : Format.formatter -> t -> unit
(** One fixed-width table row; after watchdog fallbacks the method
    column shows the whole rung chain ({!rungs}) rather than only the
    winning rung. *)

val pp : Format.formatter -> t -> unit
