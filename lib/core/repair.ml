module Defect_map = Crossbar.Defect_map
module Design = Crossbar.Design
module Verify = Crossbar.Verify

type strategy = Permutation | Spares | Resynthesis | Unconstrained

type attempt = { strategy : strategy; placed : bool; verified : bool }

type outcome =
  | Repaired of {
      design : Design.t;
      placement : Place.t;
      strategy : strategy;
    }
  | Degraded of {
      design : Design.t;
      placement : Place.t;
      correct : string list;
      failed : (string * Verify.counterexample) list;
    }
  | Unplaceable of string

type report = { outcome : outcome; attempts : attempt list }

let strategy_name = function
  | Permutation -> "permutation"
  | Spares -> "spares"
  | Resynthesis -> "resynthesis"
  | Unconstrained -> "unconstrained"

let healthy_capacity defects =
  let count n ok = List.length (List.filter ok (List.init n Fun.id)) in
  ( count (Defect_map.rows defects) (Defect_map.row_ok defects),
    count (Defect_map.cols defects) (Defect_map.col_ok defects) )

let run ?(trials = 256) ?(seed = 0x0b5e55) ?resynthesize ~defects ~inputs
    ~outputs ~reference design =
  let attempts = ref [] in
  let log a = attempts := a :: !attempts in
  let checks_of d = Verify.per_output ~seed ~trials d ~inputs ~reference ~outputs in
  let all_ok checks = List.for_all (fun (_, c) -> c = None) checks in
  (* One rung: place [d], verify the physical design, accept only when
     every output computes correctly. *)
  let try_place ~strategy ~use_spares d =
    match Place.find ~use_spares defects d with
    | None ->
      log { strategy; placed = false; verified = false };
      None
    | Some placement ->
      let phys = Place.apply defects placement d in
      let ok = all_ok (checks_of phys) in
      log { strategy; placed = true; verified = ok };
      if ok then Some (Repaired { design = phys; placement; strategy })
      else None
  in
  let has_spares =
    Defect_map.spare_rows defects > 0 || Defect_map.spare_cols defects > 0
  in
  let resynthesis_rung () =
    match resynthesize with
    | None -> None
    | Some resynth ->
      let hr, hc = healthy_capacity defects in
      let lr = Design.rows design and lc = Design.cols design in
      (* Capacities strictly tighter than the failed design in one
         dimension (a same-shape run would reproduce it), clipped to the
         healthy capacity. *)
      let candidates =
        List.sort_uniq compare
          [ min hr (lr - 1), min hc lc; min hr lr, min hc (lc - 1) ]
        |> List.filter (fun (r, c) -> r >= 1 && c >= 1 && (r < lr || c < lc))
      in
      List.fold_left
        (fun acc (max_rows, max_cols) ->
           match acc with
           | Some _ -> acc
           | None ->
             (match resynth ~max_rows ~max_cols with
              | None ->
                log { strategy = Resynthesis; placed = false; verified = false };
                None
              | Some d2 -> try_place ~strategy:Resynthesis ~use_spares:true d2))
        None candidates
  in
  let degrade () =
    match Place.find ~use_spares:true ~respect_faults:false defects design with
    | None ->
      let hr, hc = healthy_capacity defects in
      Unplaceable
        (Printf.sprintf
           "design needs %dx%d but only %d healthy wordlines and %d healthy \
            bitlines remain"
           (Design.rows design) (Design.cols design) hr hc)
    | Some placement ->
      let phys = Place.apply defects placement design in
      let checks = checks_of phys in
      let correct = List.filter_map (fun (o, c) -> if c = None then Some o else None) checks in
      let failed = List.filter_map (fun (o, c) -> Option.map (fun cex -> o, cex) c) checks in
      if failed = [] then begin
        log { strategy = Unconstrained; placed = true; verified = true };
        Repaired { design = phys; placement; strategy = Unconstrained }
      end
      else begin
        log { strategy = Unconstrained; placed = true; verified = false };
        Degraded { design = phys; placement; correct; failed }
      end
  in
  let ladder =
    [
      (fun () -> try_place ~strategy:Permutation ~use_spares:false design);
      (fun () ->
         if has_spares then try_place ~strategy:Spares ~use_spares:true design
         else None);
      resynthesis_rung;
    ]
  in
  let outcome =
    match List.fold_left (fun acc rung -> match acc with Some _ -> acc | None -> rung ()) None ladder with
    | Some o -> o
    | None -> degrade ()
  in
  { outcome; attempts = List.rev !attempts }

let pp_attempt ppf a =
  Format.fprintf ppf "%-13s %s" (strategy_name a.strategy)
    (if not a.placed then "no placement"
     else if a.verified then "placed, verified"
     else "placed, failed verification")

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter (fun a -> Format.fprintf ppf "rung: %a@," pp_attempt a) r.attempts;
  (match r.outcome with
   | Repaired { design; strategy; placement } ->
     Format.fprintf ppf "repaired via %s on the %dx%d array (%a)"
       (strategy_name strategy) (Design.rows design) (Design.cols design)
       Place.pp placement
   | Degraded { correct; failed; _ } ->
     Format.fprintf ppf
       "degraded: %d/%d outputs correct (%s); failed:@,"
       (List.length correct)
       (List.length correct + List.length failed)
       (String.concat ", " correct);
     List.iter
       (fun (o, cex) ->
          Format.fprintf ppf "  %s: %a@," o Verify.pp_counterexample cex)
       failed
   | Unplaceable msg -> Format.fprintf ppf "unplaceable: %s" msg);
  Format.fprintf ppf "@]"
