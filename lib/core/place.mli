(** Defect-aware placement: permute a logical design's wordlines and
    bitlines onto the healthy lines of a physical array.

    A placement is feasible when every programmed junction of the design
    lands on a device that can realise its literal and every unprogrammed
    junction avoids stuck-on devices ({!Crossbar.Defect_map.admits}), and
    no group of unused (spare) lines bridges two used lines through
    stuck-on devices — the sneak-path hazard of partially used arrays.

    The search runs three stages: the order-preserving placement (the
    identity on a defect-free array), an alternating bipartite-matching
    fixpoint (rows matched under the current column placement via
    {!Graphs.Matching.perfect_bipartite}, then columns under the new row
    placement), and a bounded backtracking fallback over row assignments
    with an exact column matching at each leaf. *)

type t = {
  row_map : int array;  (** logical wordline → physical wordline *)
  col_map : int array;  (** logical bitline → physical bitline *)
}

val find :
  ?use_spares:bool ->
  ?respect_faults:bool ->
  ?max_leaves:int ->
  Crossbar.Defect_map.t ->
  Crossbar.Design.t ->
  t option
(** Search for a feasible placement. [use_spares] (default [false])
    also offers the reserved spare lines to the matcher;
    [respect_faults:false] checks capacity only (the graceful-degradation
    rung: place anywhere healthy, junction faults notwithstanding);
    [max_leaves] (default [2000]) bounds the backtracking fallback.
    [None] when the design does not fit the healthy lines or no feasible
    permutation was found within the budget. *)

val compatible : Crossbar.Defect_map.t -> t -> Crossbar.Design.t -> bool
(** Full feasibility check of a given placement, including the
    sneak-path guard over unused lines. *)

val apply : Crossbar.Defect_map.t -> t -> Crossbar.Design.t -> Crossbar.Design.t
(** The physical design: array-sized, ports and junctions relocated
    through the placement, and the map's physical truth overlaid —
    stuck-on junctions conduct ([On]) wherever both lines are intact,
    stuck-off junctions are erased, broken lines carry nothing. The
    result is what {!Crossbar.Verify} should judge.
    @raise Invalid_argument if the placement's arity does not match the
    design or a target coordinate is out of range. *)

val pp : Format.formatter -> t -> unit

(** {1 Electrical re-placement (variation hardening)}

    Wordline/bitline permutations are logically free — sneak-path
    semantics do not see line order — but once nanowire segments are
    resistive ({!Crossbar.Analog.deviations}) the distance between the
    input port and each output port sets the IR drop on its read path.
    These helpers generate permutation candidates for
    {!Compact.Pipeline.harden} to score by worst-case read margin. *)

val identity : Crossbar.Design.t -> t
(** The order-preserving placement of a design onto itself. *)

val apply_permutation : t -> Crossbar.Design.t -> Crossbar.Design.t
(** Relocate lines through the placement on a defect-free array of the
    design's own dimensions (a thin wrapper over
    {!Crossbar.Design.permute}). *)

val margin_candidates : Crossbar.Design.t -> (string * t) list
(** Labelled permutations worth scoring electrically: the identity, row
    and column reversals, and placements packing the port-carrying lines
    together (input first, outputs adjacent) so a read path traverses
    the fewest wire segments between its junctions and the contact edge.
    Duplicates (e.g. a reversal that is the identity) are pruned;
    ["identity"] is always first. *)
