let exact_oct_node_threshold = 3000
let c_rounds = Obs.Counter.make "heuristic.rounds"

let labels_objective ~gamma labels =
  let rows = ref 0 and cols = ref 0 in
  Array.iter
    (fun l ->
       (match l with Types.H | Types.VH -> incr rows | Types.V -> ());
       match l with Types.V | Types.VH -> incr cols | Types.H -> ())
    labels;
  Types.objective_of ~gamma ~rows:!rows ~cols:!cols, !rows, !cols

(* Recolour the residual graph of a transversal; [None] if (impossibly)
   not bipartite. *)
let recolor (bg : Types.bdd_graph) transversal =
  let keep = Array.map not transversal in
  let sub, map = Graphs.Ugraph.induced bg.graph ~keep in
  match Graphs.Bipartite.two_color sub with
  | None -> None
  | Some sub_colors ->
    let n = Graphs.Ugraph.num_nodes bg.graph in
    let colors = Array.make n (-1) in
    for v = 0 to n - 1 do
      if map.(v) >= 0 then colors.(v) <- sub_colors.(map.(v))
    done;
    Some colors

let solve ?(budget = Resilience.Budget.unlimited) ?(alignment = false)
    ?(gamma = 0.5) ?(max_rounds = 25) ?(candidates_per_round = 24)
    (bg : Types.bdd_graph) =
  let start = Obs.Clock.now () in
  let elapsed () = Obs.Clock.now () -. start in
  let n = Graphs.Ugraph.num_nodes bg.graph in
  let initial =
    if n <= exact_oct_node_threshold then
      Label_oct.solve
        ~budget:(Resilience.Budget.slice budget ~frac:0.5)
        ~alignment ~gamma bg
    else Label_oct.greedy ~alignment ~gamma bg
  in
  let best_labels = ref (Array.copy initial.labels) in
  let best_obj = ref initial.objective in
  let transversal =
    Array.map (fun l -> l = Types.VH) initial.labels
  in
  let improved = ref true in
  let rounds = ref 0 in
  while
    !improved && !rounds < max_rounds
    && not (Resilience.Budget.exhausted budget)
  do
    improved := false;
    incr rounds;
    (* Candidates: highest-degree non-VH nodes (splitting hubs changes the
       component structure most), plus the aligned nodes the paper's Fig 7
       explicitly upgrades. *)
    let degree_order =
      let nodes = ref [] in
      for v = 0 to n - 1 do
        if not transversal.(v) then nodes := v :: !nodes
      done;
      List.sort
        (fun a b ->
           compare (Graphs.Ugraph.degree bg.graph b) (Graphs.Ugraph.degree bg.graph a))
        !nodes
    in
    let aligned_candidates =
      bg.terminal
      :: List.filter_map
           (fun (_, r) ->
              match r with Types.Node v -> Some v | Types.Const_false -> None)
           bg.roots
    in
    let rec take k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
    in
    let candidates =
      List.sort_uniq compare
        (aligned_candidates @ take candidates_per_round degree_order)
    in
    let try_candidate v =
      if (not transversal.(v)) && not (Resilience.Budget.exhausted budget)
      then begin
        transversal.(v) <- true;
        (match recolor bg transversal with
         | None -> ()
         | Some coloring ->
           let labels = Balance.orient ~alignment bg ~transversal ~coloring in
           let obj, _, _ = labels_objective ~gamma labels in
           if obj < !best_obj -. 1e-9 then begin
             best_obj := obj;
             best_labels := labels;
             improved := true
           end);
        (* Keep the upgrade only if it is (part of) the incumbent. *)
        if not (!best_labels.(v) = Types.VH) then transversal.(v) <- false
      end
    in
    List.iter try_candidate candidates
  done;
  (* With γ = 1 the VH-upgrade move cannot improve the objective, so the
     initial OCT optimality claim carries over. *)
  Obs.Counter.add c_rounds !rounds;
  Types.make_labeling bg ~gamma
    ~optimal:(gamma >= 1. -. 1e-9 && initial.optimal)
    ~lower_bound:initial.lower_bound ~solve_time:(elapsed ())
    ~method_name:"heuristic" !best_labels
