module Inject = Resilience.Inject

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven.  Every record carries one; the
   snapshot carries a whole-file one on top. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s pos len =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let crc32 s = crc32_sub s 0 (String.length s)

(* ------------------------------------------------------------------ *)
(* Record framing: [u32 len][u32 crc][payload], payload = [u32 keylen]
   [key][value], all little-endian.  [max_record] bounds the length
   field so a corrupt header cannot make the parser swallow the rest of
   the file as one giant bogus record. *)

let snapshot_magic = "COMPACTSNAP1\n"
let journal_magic = "COMPACTJRNL1\n"
let max_record = 1 lsl 26

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let encode_record key value =
  let payload = Buffer.create (String.length key + String.length value + 4) in
  put_u32 payload (String.length key);
  Buffer.add_string payload key;
  Buffer.add_string payload value;
  let payload = Buffer.contents payload in
  let buf = Buffer.create (String.length payload + 8) in
  put_u32 buf (String.length payload);
  put_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Parse records from [s] starting at [pos], stopping at [limit] records
   (or end of string when [limit] is [max_int]).  Framing damage — a
   short header, an oversized length, a CRC mismatch, a truncated
   payload — ends the scan: everything at and past the bad record is
   unrecoverable because record boundaries are gone.  A [verify]
   rejection only drops that entry; the framing is intact, so the scan
   continues. *)
type scan = {
  sc_entries : (string * string) list;  (* reverse order *)
  sc_admitted : int;
  sc_dropped : int;
  sc_end : int;  (* offset just past the last structurally-valid record *)
  sc_clean : bool;  (* false when the scan stopped on damage *)
}

let scan_records ~verify s pos0 =
  let len = String.length s in
  let rec go acc admitted dropped pos =
    if pos = len then
      { sc_entries = acc; sc_admitted = admitted; sc_dropped = dropped;
        sc_end = pos; sc_clean = true }
    else if len - pos < 8 then
      (* torn header *)
      { sc_entries = acc; sc_admitted = admitted; sc_dropped = dropped + 1;
        sc_end = pos; sc_clean = false }
    else begin
      let n = get_u32 s pos in
      let crc = get_u32 s (pos + 4) in
      if n < 4 || n > max_record || pos + 8 + n > len then
        { sc_entries = acc; sc_admitted = admitted; sc_dropped = dropped + 1;
          sc_end = pos; sc_clean = false }
      else if crc32_sub s (pos + 8) n <> crc then
        { sc_entries = acc; sc_admitted = admitted; sc_dropped = dropped + 1;
          sc_end = pos; sc_clean = false }
      else begin
        let keylen = get_u32 s (pos + 8) in
        if keylen > n - 4 then
          { sc_entries = acc; sc_admitted = admitted;
            sc_dropped = dropped + 1; sc_end = pos; sc_clean = false }
        else begin
          let key = String.sub s (pos + 12) keylen in
          let value = String.sub s (pos + 12 + keylen) (n - 4 - keylen) in
          let pos' = pos + 8 + n in
          if verify key value then
            go ((key, value) :: acc) (admitted + 1) dropped pos'
          else go acc admitted (dropped + 1) pos'
        end
      end
    end
  in
  go [] 0 0 pos0

(* ------------------------------------------------------------------ *)

type recovery = {
  entries : (string * string) list;
  from_snapshot : int;
  from_journal : int;
  dropped : int;
  truncated_bytes : int;
}

type t = {
  dirname : string;
  fsync : bool;
  ratio : float;
  floor : int;
  mutable jfd : Unix.file_descr;
  mutable jbytes : int;
  mutable sbytes : int;
  mutable closed : bool;
}

let c_appends = Obs.Counter.make "persist.appends"
let c_snapshots = Obs.Counter.make "persist.snapshots"
let c_recovered = Obs.Counter.make "persist.recovered"
let c_dropped = Obs.Counter.make "persist.dropped"
let c_write_errors = Obs.Counter.make "persist.write-errors"

let dir t = t.dirname
let journal_bytes t = t.jbytes
let snapshot_bytes t = t.sbytes

let snapshot_path t = Filename.concat t.dirname "snapshot"
let snapshot_tmp t = Filename.concat t.dirname "snapshot.tmp"
let journal_path t = Filename.concat t.dirname "journal"

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec write_all fd s pos len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (pos + n) (len - n)
  end

let fsync_dir dirname =
  match Unix.openfile dirname [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Recovery *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* The snapshot: magic, declared count, records, whole-file CRC.  Each
   record self-validates, so individually-intact entries are admitted
   even when the trailing file CRC is damaged; the declared count lets
   recovery report how many entries a damaged tail swallowed. *)
let load_snapshot ~verify path =
  match read_file path with
  | None -> [], 0, 0
  | Some s ->
    let mlen = String.length snapshot_magic in
    if not (has_prefix ~prefix:snapshot_magic s) then
      [], 0, (if String.length s = 0 then 0 else 1)
    else if String.length s < mlen + 8 then [], 0, 1
    else begin
      let declared = get_u32 s mlen in
      (* Records run from past the count up to the trailing whole-file
         CRC.  The declared count is used for damage accounting only —
         parsing from it would let a bit-flipped count silently shrink
         the recovery without a dropped report. *)
      let body = String.sub s 0 (String.length s - 4) in
      let sc = scan_records ~verify body (mlen + 4) in
      let seen = sc.sc_admitted + sc.sc_dropped in
      let missing = if declared > seen then declared - seen else 0 in
      (* The trailing file CRC only adds detection for damage the
         per-record CRCs and the count accounting already localise, so
         a mismatch is informational: entries that individually
         verified stay admitted. *)
      List.rev sc.sc_entries, sc.sc_admitted, sc.sc_dropped + missing
    end

let load_journal ~verify path =
  match read_file path with
  | None -> [], 0, 0, 0, 0 (* entries, admitted, dropped, valid_end, cut *)
  | Some s ->
    let len = String.length s in
    if not (has_prefix ~prefix:journal_magic s) then
      (* Unrecognizable journal: everything goes. *)
      [], 0, (if len = 0 then 0 else 1), 0, len
    else begin
      let sc = scan_records ~verify s (String.length journal_magic) in
      List.rev sc.sc_entries, sc.sc_admitted, sc.sc_dropped, sc.sc_end,
      len - sc.sc_end
    end

let fresh_journal path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_all fd journal_magic 0 (String.length journal_magic);
  fd

let open_dir ?(verify = fun _ _ -> true) ?(fsync = false)
    ?(journal_ratio = 4.) ?(compact_floor = 64 * 1024) dirname =
  if journal_ratio <= 0. then
    invalid_arg "Persist.open_dir: journal_ratio must be positive";
  mkdir_p dirname;
  let t =
    {
      dirname;
      fsync;
      ratio = journal_ratio;
      floor = compact_floor;
      jfd = Unix.stdin;  (* replaced below *)
      jbytes = 0;
      sbytes = 0;
      closed = false;
    }
  in
  (* A snapshot.tmp left behind by a crash mid-snapshot is garbage by
     definition: the rename never happened, the journal it would have
     folded in is still intact. *)
  (try Sys.remove (snapshot_tmp t) with Sys_error _ -> ());
  let snap_entries, from_snapshot, snap_dropped =
    load_snapshot ~verify (snapshot_path t)
  in
  t.sbytes <-
    (match read_file (snapshot_path t) with
     | Some s -> String.length s
     | None -> 0);
  let jrnl_entries, from_journal, jrnl_dropped, valid_end, cut =
    load_journal ~verify (journal_path t)
  in
  (* Reopen the journal on a clean record boundary: cut the torn or
     corrupt tail so the next append is recoverable. *)
  if Sys.file_exists (journal_path t) && valid_end > 0 then begin
    let fd = Unix.openfile (journal_path t) [ Unix.O_WRONLY ] 0o644 in
    (try Unix.ftruncate fd valid_end with Unix.Unix_error _ -> ());
    ignore (Unix.lseek fd 0 Unix.SEEK_END : int);
    t.jfd <- fd;
    t.jbytes <- valid_end
  end
  else begin
    t.jfd <- fresh_journal (journal_path t);
    t.jbytes <- String.length journal_magic
  end;
  let dropped = snap_dropped + jrnl_dropped in
  let recovered = from_snapshot + from_journal in
  Obs.Counter.add c_recovered recovered;
  Obs.Counter.add c_dropped dropped;
  ( t,
    {
      entries = snap_entries @ jrnl_entries;
      from_snapshot;
      from_journal;
      dropped;
      truncated_bytes = cut;
    } )

(* ------------------------------------------------------------------ *)
(* Writing *)

let append t key value =
  if not t.closed then begin
    let record = encode_record key value in
    (* Fault-injection points for the chaos battery: a bit flipped on
       media, or the write cut short as the process dies. *)
    let record = Inject.corrupt record in
    let record = Inject.torn_write record in
    (match write_all t.jfd record 0 (String.length record) with
     | () ->
       t.jbytes <- t.jbytes + String.length record;
       if t.fsync then (try Unix.fsync t.jfd with Unix.Unix_error _ -> ());
       Obs.Counter.incr c_appends
     | exception Unix.Unix_error _ ->
       (* Disk full or worse: the in-memory cache stays correct, and
          recovery truncates whatever half-record landed. *)
       Obs.Counter.incr c_write_errors)
  end

let render_snapshot entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf snapshot_magic;
  put_u32 buf (List.length entries);
  List.iter
    (fun (key, value) -> Buffer.add_string buf (encode_record key value))
    entries;
  let body = Buffer.contents buf in
  let tail = Buffer.create 4 in
  put_u32 tail (crc32 body);
  body ^ Buffer.contents tail

let snapshot t entries =
  if not t.closed then begin
    let image = Inject.corrupt (render_snapshot entries) in
    let torn = Inject.fire Inject.Disk_torn_write in
    let tmp = snapshot_tmp t in
    match
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      let len =
        if torn then String.length image / 2 else String.length image
      in
      write_all fd image 0 len;
      if t.fsync || torn then
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
    with
    | exception Unix.Unix_error _ -> Obs.Counter.incr c_write_errors
    | () ->
      if not torn then begin
        (* The atomic publish: readers see the old snapshot or the new
           one, never a half-written file. *)
        Unix.rename tmp (snapshot_path t);
        fsync_dir t.dirname;
        t.sbytes <- String.length image;
        (try Unix.close t.jfd with Unix.Unix_error _ -> ());
        t.jfd <- fresh_journal (journal_path t);
        t.jbytes <- String.length journal_magic;
        if t.fsync then
          (try Unix.fsync t.jfd with Unix.Unix_error _ -> ());
        Obs.Counter.incr c_snapshots
      end
      (* A torn snapshot write models a crash mid-snapshot: the tmp file
         stays unpublished and the journal keeps accumulating, exactly
         the state recovery expects. *)
  end

let should_compact t =
  t.jbytes > t.floor
  && float_of_int t.jbytes
     > t.ratio *. float_of_int (max t.sbytes (String.length snapshot_magic))

let maybe_compact t entries =
  if should_compact t then begin
    snapshot t (Lazy.force entries);
    true
  end
  else false

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.jfd with Unix.Unix_error _ -> ()
  end
