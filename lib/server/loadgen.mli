(** Seeded load generator for [compactd]: a mixed synthesis workload
    with a configurable repeat fraction, reporting throughput, latency
    percentiles and the cache's hit behaviour — the measured numbers
    behind the ROADMAP's "heavy traffic" claim. *)

type result = {
  requests : int;
  ok : int;
  errors : int;
  hits : int;  (** responses served from the cache *)
  coalesced : int;  (** responses answered by another request's solve *)
  hit_rate : float;  (** hits / requests *)
  wall_s : float;
  rps : float;
  p50_ms : float;  (** all successful requests *)
  p99_ms : float;
  hit_p50_ms : float;  (** cache hits only; [nan] when none *)
  miss_p50_ms : float;  (** cold solves only; [nan] when none *)
  stats_line : string;  (** the server's final [stats] response, verbatim *)
}

val run :
  ?seed:int ->
  ?requests:int ->
  ?hot:int ->
  ?hot_frac:float ->
  ?retry:bool ->
  socket:string ->
  unit ->
  result
(** Drive [requests] (default 200) synthesis requests over one
    connection: with probability [hot_frac] (default 0.4) the request
    repeats one of [hot] (default 4) fixed expressions, otherwise it is
    a fresh seeded random expression. Every choice derives from [seed]
    via {!Crossbar.Rng}, so a run is reproducible.

    With [retry] (the default) every request goes through
    {!Client.request_idempotent}: a server restart or shed mid-run costs
    latency, never a lost request — the kill-and-restart chaos battery
    asserts exactly that. [~retry:false] restores the brittle one-shot
    behaviour for tests that want the failure. *)

val json_of_result :
  seed:int -> hot:int -> hot_frac:float -> result -> string
(** The BENCH_pr7.json document: workload parameters, client-side
    numbers, and the server's own [stats] objects. *)

val pp : Format.formatter -> result -> unit
