(** Canonical design-cache keys.

    The COMPACT flow is deterministic end-to-end: the same SBDD labeled
    under the same options by the same engine yields a byte-identical
    crossbar. A cache key therefore names exactly those three things:

    {v key = hash(engine version × canonical SBDD × result options) v}

    The SBDD hash is computed over a {e canonical renaming} of the
    diagram — nodes are numbered in depth-first discovery order from the
    roots — so two managers that built the same logical diagram (in any
    allocation order, interleaved with any other work) produce the same
    key. Options enter through {!options} which renders only the fields
    that can change the output design; [jobs] and [deadline] are
    excluded (the former by the determinism contract, the latter because
    degraded results are never cached). *)

val sbdd : Bdd.Sbdd.t -> string
(** 16-hex-digit FNV-1a hash of the canonical diagram: input order,
    per-node (level, low, high) triples in discovery order, and the
    named roots. *)

val options : Compact.Pipeline.options -> string
(** Canonical one-line rendering of the output-relevant option fields
    (gamma, solver, alignment, time limit, node limit, capacity
    bounds). *)

val key : options:Compact.Pipeline.options -> Bdd.Sbdd.t -> string
(** The cache key: 16 hex digits over {!Version.engine}, {!options} and
    {!sbdd}. *)
