(** [compactd]'s transport: a line-oriented JSONL protocol over a
    Unix-domain socket.

    One serving loop multiplexes every connection with [select]; request
    lines accumulate for up to [batch_window] seconds (or [max_batch]
    lines) and are then handed to {!Engine.handle_batch} in arrival
    order — that window is what lets concurrent identical requests
    coalesce into one solve. Responses are written back to each
    request's connection; a client that disconnected mid-request simply
    has its response dropped (the server survives, the batch's other
    responses still flush).

    {b Overload protection.}  Request lines past [max_pending] are shed
    with a structured [retry-after] error instead of being dropped or
    queued unboundedly, and a connection that sits on a half-sent line
    longer than [read_deadline] (slowloris) is closed.

    {b Graceful drain.}  With [handle_signals] set, SIGTERM/SIGINT flip
    a shutdown flag: the listener closes and the socket path unlinks
    immediately (so retrying clients fail fast and land on the restarted
    server), in-flight requests finish under a [drain_deadline]
    {!Resilience.Budget} (stragglers are shed with [retry-after]), the
    engine's durable cache is snapshotted, and the loop exits cleanly.
    A [shutdown] request drains the same way, without the signal. *)

exception Busy of string
(** The socket path is owned by another live server (probed with a test
    connect before binding), or exists and is not a socket. *)

type config = {
  socket_path : string;
  engine : Engine.config;
  batch_window : float;
      (** seconds to keep collecting once a request is pending
          (default 0.02) *)
  max_batch : int;  (** lines that force a batch out early (default 64) *)
  max_pending : int;
      (** request lines queued before shedding with [retry-after]
          (default 256) *)
  read_deadline : float;
      (** seconds a connection may sit on a partial request line before
          being closed (default 10) *)
  drain_deadline : float;
      (** seconds the drain may keep finishing in-flight work after a
          shutdown signal (default 5) *)
  handle_signals : bool;
      (** install SIGTERM/SIGINT drain handlers (and a SIGUSR1
          flight-dump handler) for the duration of {!serve}
          (default false — process-global state, so opt-in;
          the CLI opts in, in-process test servers do not) *)
  flight_path : string option;
      (** when set, the flight-recorder ring is dumped here (atomic
          write-then-rename, normalized JSONL) on SIGUSR1, at the start
          of a graceful drain, and if {!Engine.handle_batch} ever lets
          an exception escape (default [None]) *)
  metrics_path : string option;
      (** when set, a Prometheus text-exposition snapshot of every
          registered metric is atomically rewritten here every
          [metrics_interval] seconds and once at exit
          (default [None]) *)
  metrics_interval : float;  (** seconds between snapshots (default 5) *)
}

val default_config : socket_path:string -> config
(** {!Engine.default_config} engine, 20 ms window, 64-line batches,
    256-line shed threshold, 10 s read deadline, 5 s drain, no flight
    or metrics files. *)

val serve : config -> Engine.stats
(** Bind, listen and serve until shutdown or drain; returns the engine's
    final stats. Ignores [SIGPIPE]. A {e stale} socket file at the path
    (no listener behind it) is replaced; a live one raises {!Busy}.
    @raise Busy when another server owns the path
    @raise Unix.Unix_error when the socket cannot be bound. *)
