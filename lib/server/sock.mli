(** [compactd]'s transport: a line-oriented JSONL protocol over a
    Unix-domain socket.

    One serving loop multiplexes every connection with [select]; request
    lines accumulate for up to [batch_window] seconds (or [max_batch]
    lines) and are then handed to {!Engine.handle_batch} in arrival
    order — that window is what lets concurrent identical requests
    coalesce into one solve. Responses are written back to each
    request's connection; a client that disconnected mid-request simply
    has its response dropped (the server survives, the batch's other
    responses still flush).

    The loop exits after answering a [shutdown] request, closing every
    connection and unlinking the socket path. *)

type config = {
  socket_path : string;
  engine : Engine.config;
  batch_window : float;
      (** seconds to keep collecting once a request is pending
          (default 0.02) *)
  max_batch : int;  (** lines that force a batch out early (default 64) *)
}

val default_config : socket_path:string -> config
(** {!Engine.default_config} engine, 20 ms window, 64-line batches. *)

val serve : config -> Engine.stats
(** Bind, listen and serve until shutdown; returns the engine's final
    stats. Ignores [SIGPIPE]. An existing socket file at the path is
    replaced.
    @raise Unix.Unix_error when the socket cannot be bound. *)
