(** Content-addressed design cache: LRU, bounded by entry count and by
    total stored bytes.

    Keys are {!Fingerprint.key} strings; values are the canonical
    serialized synthesis payloads ({!Protocol}), so a hit is served as
    the exact bytes a cold solve produced. The cache is deliberately
    dumb about what it stores — admission policy (only pristine,
    verified, un-degraded results) lives in {!Engine}.

    Not thread-safe: the engine probes and fills it from the serving
    loop only, never from pool workers. *)

type t

type stats = {
  hits : int;
  misses : int;  (** {!find} probes that found nothing *)
  inserts : int;
  evictions : int;  (** entries dropped to honour a bound *)
  entries : int;  (** current population *)
  bytes : int;  (** summed value sizes currently stored *)
  max_entries : int;
  max_bytes : int;
}

val create : ?max_entries:int -> ?max_bytes:int -> unit -> t
(** Defaults: 512 entries, 16 MiB of stored values.
    @raise Invalid_argument on non-positive bounds. *)

val find : t -> string -> string option
(** Probe; a hit refreshes the entry's recency and bumps the hit
    counter, a miss bumps the miss counter. *)

val mem : t -> string -> bool
(** Counter-free, recency-free probe (for tests). *)

val add : t -> string -> string -> unit
(** Insert (or overwrite, refreshing recency), then evict
    least-recently-used entries until both bounds hold again. A value
    larger than [max_bytes] on its own is not admitted. *)

val stats : t -> stats

val to_list : t -> (string * string) list
(** Every (key, value) pair, least recently used first — replaying the
    list through {!add} on an empty cache rebuilds contents and recency.
    This is the order {!Persist.snapshot} stores. *)

val clear : t -> unit
(** Drop every entry; counters are kept. *)
