(* Hashtbl + intrusive doubly-linked recency list; the list head is the
   most recently used entry, eviction pops the tail. *)

type stats = {
  hits : int;
  misses : int;
  inserts : int;
  evictions : int;
  entries : int;
  bytes : int;
  max_entries : int;
  max_bytes : int;
}

type entry = {
  key : string;
  mutable value : string;
  mutable prev : entry option;  (* towards the head (more recent) *)
  mutable next : entry option;  (* towards the tail (less recent) *)
}

type t = {
  table : (string, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  max_entries : int;
  max_bytes : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
}

(* Process-wide Obs counters: per-cache numbers live in [stats]; these
   feed the served metrics dump alongside the pool/solver counters. *)
let c_hits = Obs.Counter.make "cache.hits"
let c_misses = Obs.Counter.make "cache.misses"
let c_evictions = Obs.Counter.make "cache.evictions"

let create ?(max_entries = 512) ?(max_bytes = 16 * 1024 * 1024) () =
  if max_entries < 1 || max_bytes < 1 then
    invalid_arg "Cache.create: bounds must be positive";
  {
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    max_entries;
    max_bytes;
    bytes = 0;
    hits = 0;
    misses = 0;
    inserts = 0;
    evictions = 0;
  }

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  match t.head with
  | Some h when h == e -> ()
  | _ ->
    unlink t e;
    push_front t e

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    Obs.Counter.incr c_hits;
    touch t e;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    Obs.Counter.incr c_misses;
    None

let mem t key = Hashtbl.mem t.table key

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some e ->
    unlink t e;
    Hashtbl.remove t.table e.key;
    t.bytes <- t.bytes - String.length e.value;
    t.evictions <- t.evictions + 1;
    Obs.Counter.incr c_evictions

let add t key value =
  if String.length value <= t.max_bytes then begin
    (match Hashtbl.find_opt t.table key with
     | Some e ->
       t.bytes <- t.bytes - String.length e.value + String.length value;
       e.value <- value;
       touch t e
     | None ->
       let e = { key; value; prev = None; next = None } in
       Hashtbl.replace t.table key e;
       t.bytes <- t.bytes + String.length value;
       push_front t e);
    t.inserts <- t.inserts + 1;
    while
      Hashtbl.length t.table > t.max_entries || t.bytes > t.max_bytes
    do
      evict_tail t
    done
  end

let stats t : stats =
  {
    hits = t.hits;
    misses = t.misses;
    inserts = t.inserts;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
    bytes = t.bytes;
    max_entries = t.max_entries;
    max_bytes = t.max_bytes;
  }

(* Oldest (least recently used) first, so replaying the list through
   [add] rebuilds both the contents and the recency order. *)
let to_list t =
  let rec go acc = function
    | None -> acc
    | Some e -> go ((e.key, e.value) :: acc) e.prev
  in
  go [] t.tail |> List.rev

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.bytes <- 0
