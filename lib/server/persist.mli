(** Durable backing store for the design cache: a checksummed snapshot
    plus an append-only journal under one [--cache-dir].

    Layout:

    {v
    <dir>/snapshot       full cache image, written atomically
    <dir>/snapshot.tmp   transient (write-to-temp, then rename)
    <dir>/journal        admissions since the last snapshot
    v}

    Both files are sequences of CRC-tagged records (4-byte LE payload
    length, 4-byte LE CRC-32 of the payload, then the payload: 4-byte LE
    key length, key bytes, value bytes).  The snapshot adds a magic
    header, a declared entry count and a whole-file CRC; the journal has
    a magic header only and is append-only, so a crash can leave at most
    a torn tail.

    Recovery ({!open_dir}) admits an entry only when every checksum on
    its path holds {e and} the caller's [verify] accepts it — a torn,
    truncated or corrupt record is dropped and counted, never returned.
    A bad journal tail is truncated back to the last valid record before
    the file is reopened for appending, so the next append lands on a
    clean boundary.

    Not thread-safe: like {!Cache}, the engine drives it from the
    serving loop only. *)

type t

type recovery = {
  entries : (string * string) list;
      (** recovered (key, value) pairs, oldest first — replaying them
          through [Cache.add] in order rebuilds the pre-crash recency *)
  from_snapshot : int;  (** entries admitted from the snapshot *)
  from_journal : int;  (** entries admitted from the journal *)
  dropped : int;
      (** records discarded: bad CRC, bad framing, truncated mid-record,
          or rejected by [verify] *)
  truncated_bytes : int;
      (** journal tail bytes cut back to the last valid record *)
}

val open_dir :
  ?verify:(string -> string -> bool) ->
  ?fsync:bool ->
  ?journal_ratio:float ->
  ?compact_floor:int ->
  string ->
  t * recovery
(** Create [dir] if needed, recover whatever survives in it, and open
    the journal for appending.  [verify key value] (default: accept) is
    consulted once per candidate entry; rejects count as dropped.
    [fsync] (default [false]) forces every append and snapshot to disk.
    [journal_ratio] (default [4.]) and [compact_floor] (default 64 KiB)
    drive {!should_compact}.
    @raise Unix.Unix_error when the directory cannot be created or the
    journal cannot be opened. *)

val append : t -> string -> string -> unit
(** Journal one admission. Write errors (disk full, …) degrade to a
    dropped record: the cache stays correct in memory and recovery
    drops the bad tail. *)

val snapshot : t -> (string * string) list -> unit
(** Atomically replace the snapshot with the given entries (oldest
    first, as {!Cache.to_list} yields) and reset the journal. *)

val should_compact : t -> bool
(** The journal has outgrown [journal_ratio] times the snapshot (with
    [compact_floor] as the minimum journal size worth compacting). *)

val maybe_compact : t -> (string * string) list lazy_t -> bool
(** {!snapshot} from the lazy entry list when {!should_compact}; returns
    whether a compaction ran. *)

val journal_bytes : t -> int
val snapshot_bytes : t -> int
val dir : t -> string
val close : t -> unit

(** {1 Record plumbing (exposed for the fuzz battery)} *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3), as the low 32 bits of an [int]. *)

val encode_record : string -> string -> string
(** The exact bytes {!append} writes for one (key, value) pair. *)

val snapshot_magic : string
val journal_magic : string
