type config = {
  socket_path : string;
  engine : Engine.config;
  batch_window : float;
  max_batch : int;
}

let default_config ~socket_path =
  {
    socket_path;
    engine = Engine.default_config;
    batch_window = 0.02;
    max_batch = 64;
  }

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable discarding : bool;  (* inside an oversized line: drop to EOL *)
  mutable alive : bool;
}

let write_line conn line =
  if conn.alive then begin
    let data = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length data in
    let rec go off =
      if off < len then
        match Unix.write conn.fd data off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          (* The client went away: drop the response, keep serving. *)
          conn.alive <- false
    in
    go 0
  end

(* Mark dead; the serving loop's sweep (or final cleanup) closes the
   descriptor exactly once. *)
let mark_dead conn = conn.alive <- false

let oversized_response =
  Protocol.error_response
    {
      Protocol.err_id = Obs.Json.Null;
      code = Protocol.Oversized;
      message =
        Printf.sprintf "request line exceeds the %d-byte limit"
          Protocol.max_line;
    }

(* Pull every complete line out of the connection's read buffer.  A
   buffer that outgrows the line limit without a newline answers with a
   structured [oversized] error once and swallows input up to the next
   newline, so the connection stays usable. *)
let rec drain_lines conn enqueue =
  let s = Buffer.contents conn.buf in
  match String.index_opt s '\n' with
  | Some i ->
    let line =
      if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1)
      else String.sub s 0 i
    in
    Buffer.clear conn.buf;
    Buffer.add_substring conn.buf s (i + 1) (String.length s - i - 1);
    if conn.discarding then conn.discarding <- false
    else if line <> "" then enqueue line;
    drain_lines conn enqueue
  | None ->
    if (not conn.discarding) && Buffer.length conn.buf > Protocol.max_line
    then begin
      conn.discarding <- true;
      Buffer.clear conn.buf;
      write_line conn oversized_response
    end
    else if conn.discarding then Buffer.clear conn.buf

let serve config =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let engine = Engine.create config.engine in
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  let conns = ref [] in
  (* Pending requests in arrival order: (owning connection, line). *)
  let pending = ref [] in
  let first_pending = ref 0. in
  let enqueue conn line =
    if !pending = [] then first_pending := Obs.Clock.now ();
    pending := (conn, line) :: !pending
  in
  let read_chunk = Bytes.create 8192 in
  let pump conn =
    match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 ->
      (* EOF: already-queued requests from this client still execute
         (their responses are dropped on write). *)
      mark_dead conn
    | n ->
      Buffer.add_subbytes conn.buf read_chunk 0 n;
      drain_lines conn (enqueue conn)
    | exception Unix.Unix_error (ECONNRESET, _, _) -> mark_dead conn
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  in
  let flush_batch () =
    let batch = List.rev !pending in
    pending := [];
    let responses = Engine.handle_batch engine (List.map snd batch) in
    List.iter2 (fun (conn, _) resp -> write_line conn resp) batch responses
  in
  let finished = ref false in
  while not !finished do
    (* With requests pending, poll at zero timeout: the batch flushes
       the moment the socket set goes quiescent, so a lone synchronous
       client never waits out the batch window — the window only caps
       how long a stream of arrivals can keep extending one batch. *)
    let timeout = if !pending = [] then 0.25 else 0. in
    let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
    let readable, _, _ =
      match Unix.select fds [] [] timeout with
      | r -> r
      | exception Unix.Unix_error (EINTR, _, _) -> [], [], []
    in
    if List.mem listen_fd readable then begin
      match Unix.accept listen_fd with
      | fd, _ ->
        conns :=
          { fd; buf = Buffer.create 256; discarding = false; alive = true }
          :: !conns
      | exception Unix.Unix_error _ -> ()
    end;
    List.iter
      (fun conn -> if conn.alive && List.memq conn.fd readable then pump conn)
      !conns;
    conns :=
      List.filter
        (fun conn ->
           if conn.alive then true
           else begin
             (try Unix.close conn.fd with Unix.Unix_error _ -> ());
             false
           end)
        !conns;
    if
      !pending <> []
      && (readable = []
          || List.length !pending >= config.max_batch
          || Obs.Clock.now () -. !first_pending >= config.batch_window)
    then begin
      flush_batch ();
      if Engine.wants_shutdown engine then finished := true
    end
  done;
  List.iter
    (fun conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
    !conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  Engine.stats engine
