module Budget = Resilience.Budget

exception Busy of string

type config = {
  socket_path : string;
  engine : Engine.config;
  batch_window : float;
  max_batch : int;
  max_pending : int;
  read_deadline : float;
  drain_deadline : float;
  handle_signals : bool;
  flight_path : string option;
  metrics_path : string option;
  metrics_interval : float;
}

let default_config ~socket_path =
  {
    socket_path;
    engine = Engine.default_config;
    batch_window = 0.02;
    max_batch = 64;
    max_pending = 256;
    read_deadline = 10.;
    drain_deadline = 5.;
    handle_signals = false;
    flight_path = None;
    metrics_path = None;
    metrics_interval = 5.;
  }

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable discarding : bool;  (* inside an oversized line: drop to EOL *)
  mutable alive : bool;
  mutable last_read : float;  (* Obs.Clock time of the last byte read *)
}

let c_shed = Obs.Counter.make "sock.shed"
let c_slowloris = Obs.Counter.make "sock.slowloris-closed"
let c_drains = Obs.Counter.make "sock.drains"
let c_flight_dumps = Obs.Counter.make "sock.flight-dumps"
let h_queue = Obs.Hist.make_count "sock.queue-depth"

let write_line conn line =
  if conn.alive then begin
    let data = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length data in
    let rec go off =
      if off < len then
        match Unix.write conn.fd data off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error (EINTR, _, _) -> go off
        | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          (* The client went away: drop the response, keep serving. *)
          conn.alive <- false
    in
    go 0
  end

(* Mark dead; the serving loop's sweep (or final cleanup) closes the
   descriptor exactly once. *)
let mark_dead conn = conn.alive <- false

let oversized_response =
  Protocol.error_response
    {
      Protocol.err_id = Obs.Json.Null;
      code = Protocol.Oversized;
      message =
        Printf.sprintf "request line exceeds the %d-byte limit"
          Protocol.max_line;
    }

(* The id of a request line we are about to shed without fully parsing
   it: best-effort, [null] for garbage — the retrying client matches
   replays by id, so carrying it back matters. *)
let line_id line =
  match Obs.Json.parse line with
  | exception Obs.Json.Parse_error _ -> Obs.Json.Null
  | j -> Option.value ~default:Obs.Json.Null (Obs.Json.member "id" j)

(* Pull every complete line out of the connection's read buffer.  A
   buffer that outgrows the line limit without a newline answers with a
   structured [oversized] error once and swallows input up to the next
   newline, so the connection stays usable. *)
let rec drain_lines conn enqueue =
  let s = Buffer.contents conn.buf in
  match String.index_opt s '\n' with
  | Some i ->
    let line =
      if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1)
      else String.sub s 0 i
    in
    Buffer.clear conn.buf;
    Buffer.add_substring conn.buf s (i + 1) (String.length s - i - 1);
    if conn.discarding then conn.discarding <- false
    else if line <> "" then enqueue line;
    drain_lines conn enqueue
  | None ->
    if (not conn.discarding) && Buffer.length conn.buf > Protocol.max_line
    then begin
      conn.discarding <- true;
      Buffer.clear conn.buf;
      write_line conn oversized_response
    end
    else if conn.discarding then Buffer.clear conn.buf

(* Probe an existing socket file before replacing it.  Unconditionally
   unlinking would silently hijack the path from a live server: two
   compactds would race on accepts and the first one's clients would
   strand.  A refused connection means the file is a stale leftover of a
   dead server — that one is safe to clear. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let outcome =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> `Live
      | exception Unix.Unix_error (ECONNREFUSED, _, _) -> `Stale
      | exception Unix.Unix_error (ENOENT, _, _) -> `Gone
      | exception Unix.Unix_error _ -> `Not_a_socket
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match outcome with
    | `Live ->
      raise
        (Busy
           (Printf.sprintf
              "another live compactd already owns %s; stop it or pick \
               another --socket"
              path))
    | `Not_a_socket ->
      raise
        (Busy
           (Printf.sprintf
              "%s exists and is not a compactd socket; refusing to \
               replace it"
              path))
    | `Stale -> (try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Gone -> ()
  end

let serve config =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* Graceful drain: the flag flips in a signal handler (async, possibly
     mid-select), the loop notices at its next iteration. *)
  let stop = Atomic.make false in
  (* SIGUSR1 asks for a flight-recorder dump without disturbing
     service; like [stop], the handler only flips a flag the loop
     notices on its next iteration. *)
  let usr1 = Atomic.make false in
  let saved_signals =
    if not config.handle_signals then []
    else
      List.filter_map
        (fun (sg, flag) ->
           match
             Sys.signal sg
               (Sys.Signal_handle (fun _ -> Atomic.set flag true))
           with
           | prev -> Some (sg, prev)
           | exception (Invalid_argument _ | Sys_error _) -> None)
        [ (Sys.sigterm, stop); (Sys.sigint, stop); (Sys.sigusr1, usr1) ]
  in
  let restore_signals () =
    List.iter
      (fun (sg, prev) ->
         try Sys.set_signal sg prev
         with Invalid_argument _ | Sys_error _ -> ())
      saved_signals
  in
  match
    claim_socket_path config.socket_path;
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* Two servers can race through the claim probe before either has
       bound; the loser's bind fails EADDRINUSE.  That is the same
       situation the probe exists to detect, so report it the same way.
       The engine (and with it the persistence dir) is only opened once
       the bind is won, so a loser never touches the winner's journal. *)
    (match Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path) with
     | () -> ()
     | exception Unix.Unix_error (EADDRINUSE, _, _) ->
       (try Unix.close listen_fd with Unix.Unix_error _ -> ());
       raise
         (Busy
            (Printf.sprintf
               "lost the bind race for %s to another compactd"
               config.socket_path)));
    Unix.listen listen_fd 64;
    let engine =
      try Engine.create config.engine
      with e ->
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
        raise e
    in
    engine, listen_fd
  with
  | exception e ->
    restore_signals ();
    raise e
  | engine, listen_fd ->
    (* Telemetry is armed for the lifetime of the serve loop: the
       metrics plane so counters/gauges/histograms answer `metrics`
       requests, the flight recorder so there is always a post-mortem
       ring to dump.  Previous states are restored on exit so
       in-process test servers leave no global residue. *)
    let prev_metrics = Obs.metrics_enabled () in
    let prev_recorder = Obs.Recorder.enabled () in
    Obs.set_metrics_enabled true;
    Obs.Recorder.set_enabled true;
    let dump_flight reason =
      match config.flight_path with
      | None -> ()
      | Some path ->
        (try
           Obs.Recorder.dump_file path;
           Obs.Counter.incr c_flight_dumps;
           Printf.eprintf "compactd: flight recorder dumped to %s (%s)\n%!"
             path reason
         with Sys_error _ | Unix.Unix_error _ -> ())
    in
    let write_metrics () =
      match config.metrics_path with
      | None -> ()
      | Some path ->
        (try
           Obs.Export.write_file_atomic path
             (Obs.Metrics.prometheus (Obs.Metrics.snapshot ()))
         with Sys_error _ | Unix.Unix_error _ -> ())
    in
    let last_metrics = ref (Obs.Clock.now ()) in
    let conns = ref [] in
    (* Pending requests in arrival order: (owning connection, line). *)
    let pending = ref [] in
    let npending = ref 0 in
    let first_pending = ref 0. in
    let draining = ref false in
    let drain_budget = ref Budget.unlimited in
    let listener_open = ref true in
    let close_listener () =
      if !listener_open then begin
        listener_open := false;
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        (* Unlink early so a client's reconnect fails fast with ENOENT
           and its backoff lands on the restarted server, instead of
           queueing on a listener that will never accept again. *)
        (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ())
      end
    in
    let shed conn line ~after_s ~message =
      Obs.Counter.incr c_shed;
      write_line conn
        (Protocol.retry_after_response ~id:(line_id line) ~after_s ~message)
    in
    let enqueue conn line =
      if !draining then
        shed conn line ~after_s:1.0
          ~message:"server is draining for shutdown; retry shortly"
      else if !npending >= config.max_pending then
        shed conn line ~after_s:0.1
          ~message:
            (Printf.sprintf "request queue full (%d pending); retry \
                             shortly" !npending)
      else begin
        if !pending = [] then first_pending := Obs.Clock.now ();
        pending := (conn, line) :: !pending;
        incr npending
      end
    in
    let read_chunk = Bytes.create 8192 in
    let pump conn =
      match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
      | 0 ->
        (* EOF: already-queued requests from this client still execute
           (their responses are dropped on write). *)
        mark_dead conn
      | n ->
        conn.last_read <- Obs.Clock.now ();
        Buffer.add_subbytes conn.buf read_chunk 0 n;
        drain_lines conn (enqueue conn)
      | exception Unix.Unix_error (ECONNRESET, _, _) -> mark_dead conn
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        ()
    in
    let flush_batch () =
      let batch = List.rev !pending in
      let depth = !npending in
      pending := [];
      npending := 0;
      Obs.Hist.observe h_queue (float_of_int depth);
      Engine.set_load engine ~draining:!draining ~in_flight:depth;
      let responses =
        try Engine.handle_batch engine (List.map snd batch)
        with e ->
          (* handle_batch promises never to raise; if it ever does the
             process is about to die, so leave a post-mortem trail. *)
          dump_flight "fatal-engine-error";
          raise e
      in
      Engine.set_load engine ~draining:!draining ~in_flight:0;
      List.iter2 (fun (conn, _) resp -> write_line conn resp) batch responses
    in
    (* Drain-mode flush: in-flight requests finish while the drain
       budget holds; past it, the remainder is shed with retry-after so
       the process can still exit by its deadline. *)
    let flush_or_shed () =
      if Budget.exhausted !drain_budget then begin
        let batch = List.rev !pending in
        pending := [];
        npending := 0;
        List.iter
          (fun (conn, line) ->
             shed conn line ~after_s:1.0
               ~message:"drain deadline reached before this request ran; \
                         retry against the restarted server")
          batch
      end
      else flush_batch ()
    in
    let finished = ref false in
    while not !finished do
      if Atomic.exchange usr1 false then dump_flight "sigusr1";
      if Atomic.get stop && not !draining then begin
        draining := true;
        Obs.Counter.incr c_drains;
        drain_budget := Budget.seconds config.drain_deadline;
        close_listener ();
        Engine.set_load engine ~draining:true ~in_flight:!npending;
        dump_flight "drain"
      end;
      (* With requests pending, poll at zero timeout: the batch flushes
         the moment the socket set goes quiescent, so a lone synchronous
         client never waits out the batch window — the window only caps
         how long a stream of arrivals can keep extending one batch. *)
      let timeout = if !pending = [] then 0.25 else 0. in
      let fds =
        (if !listener_open then [ listen_fd ] else [])
        @ List.map (fun c -> c.fd) !conns
      in
      let readable, _, _ =
        match Unix.select fds [] [] timeout with
        | r -> r
        | exception Unix.Unix_error (EINTR, _, _) -> [], [], []
      in
      if !listener_open && List.mem listen_fd readable then begin
        match Unix.accept listen_fd with
        | fd, _ ->
          conns :=
            {
              fd;
              buf = Buffer.create 256;
              discarding = false;
              alive = true;
              last_read = Obs.Clock.now ();
            }
            :: !conns
        | exception Unix.Unix_error _ -> ()
      end;
      List.iter
        (fun conn ->
           if conn.alive && List.memq conn.fd readable then pump conn)
        !conns;
      (* Slowloris guard: a connection sitting on a half-sent request
         line past the read deadline is holding buffer memory hostage;
         close it.  Idle connections with nothing buffered are welcome
         to stay. *)
      let now = Obs.Clock.now () in
      List.iter
        (fun conn ->
           if
             conn.alive
             && Buffer.length conn.buf > 0
             && now -. conn.last_read > config.read_deadline
           then begin
             Obs.Counter.incr c_slowloris;
             mark_dead conn
           end)
        !conns;
      conns :=
        List.filter
          (fun conn ->
             if conn.alive then true
             else begin
               (try Unix.close conn.fd with Unix.Unix_error _ -> ());
               false
             end)
          !conns;
      if
        !pending <> []
        && (!draining
            || readable = []
            || !npending >= config.max_batch
            || Obs.Clock.now () -. !first_pending >= config.batch_window)
      then begin
        if !draining then flush_or_shed () else flush_batch ();
        if Engine.wants_shutdown engine then begin
          (* A shutdown op drains exactly like a signal, minus the wait:
             stop accepting, flush state, leave. *)
          draining := true;
          close_listener ();
          dump_flight "drain";
          finished := true
        end
      end;
      (match config.metrics_path with
       | Some _
         when Obs.Clock.now () -. !last_metrics >= config.metrics_interval
         ->
         last_metrics := Obs.Clock.now ();
         write_metrics ()
       | _ -> ());
      if !draining && !pending = [] then finished := true
    done;
    (* Durability before disconnection: the snapshot lands while the
       socket path is already gone, so a restarted server cannot race
       this one for the journal. *)
    Engine.close engine;
    write_metrics ();
    List.iter
      (fun conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
      !conns;
    close_listener ();
    restore_signals ();
    Obs.set_metrics_enabled prev_metrics;
    Obs.Recorder.set_enabled prev_recorder;
    Engine.stats engine
