module J = Obs.Json

type source = Expr of string | Circuit of string | Blif of string

type synth = {
  id : J.t;
  source : source;
  options : Compact.Pipeline.options;
}

type request =
  | Synth of synth
  | Status of J.t
  | Stats of J.t
  | Metrics of J.t
  | Health of J.t
  | Shutdown of J.t

type error_code =
  | Parse
  | Unknown_op
  | Bad_request
  | Oversized
  | Overload
  | Retry_after
  | Exhausted
  | Infeasible
  | Size_limit
  | Internal

let error_code_name = function
  | Parse -> "parse"
  | Unknown_op -> "unknown-op"
  | Bad_request -> "bad-request"
  | Oversized -> "oversized"
  | Overload -> "overload"
  | Retry_after -> "retry-after"
  | Exhausted -> "exhausted"
  | Infeasible -> "infeasible"
  | Size_limit -> "size-limit"
  | Internal -> "internal"

type error = { err_id : J.t; code : error_code; message : string }

let max_line = 65536

let request_id = function
  | Synth { id; _ } | Status id | Stats id | Metrics id | Health id
  | Shutdown id ->
    id

(* ------------------------------------------------------------------ *)
(* Request parsing *)

exception Bad of string

let parse_options ~defaults json =
  match json with
  | None -> defaults
  | Some (J.Obj fields) ->
    List.fold_left
      (fun (o : Compact.Pipeline.options) (k, v) ->
         match k, v with
         | "gamma", J.Num g -> { o with Compact.Pipeline.gamma = g }
         | "solver", J.Str s ->
           (match Compact.Pipeline.solver_of_name s with
            | Some solver -> { o with Compact.Pipeline.solver = solver }
            | None -> raise (Bad (Printf.sprintf "unknown solver %S" s)))
         | "alignment", J.Bool b -> { o with Compact.Pipeline.alignment = b }
         | "time_limit", J.Num t when t > 0. ->
           { o with Compact.Pipeline.time_limit = t }
         | "bdd_node_limit", J.Num n when n >= 1. ->
           { o with Compact.Pipeline.bdd_node_limit = int_of_float n }
         | "max_rows", J.Num n when n >= 1. ->
           { o with Compact.Pipeline.max_rows = Some (int_of_float n) }
         | "max_rows", J.Null -> { o with Compact.Pipeline.max_rows = None }
         | "max_cols", J.Num n when n >= 1. ->
           { o with Compact.Pipeline.max_cols = Some (int_of_float n) }
         | "max_cols", J.Null -> { o with Compact.Pipeline.max_cols = None }
         | "race_orders", J.Num n when n >= 1. ->
           { o with Compact.Pipeline.race_orders = int_of_float n }
         | ("gamma" | "solver" | "alignment" | "time_limit"
           | "bdd_node_limit" | "max_rows" | "max_cols" | "race_orders"), _ ->
           raise (Bad (Printf.sprintf "bad value for option %S" k))
         | k, _ ->
           (* [jobs] and [deadline] deliberately land here: both are
              server policy, not request payload. *)
           raise (Bad (Printf.sprintf "unknown option %S" k)))
      defaults fields
  | Some _ -> raise (Bad "\"options\" must be an object")

let parse_source fields =
  let pick k wrap =
    Option.map (function
        | J.Str s -> wrap s
        | _ -> raise (Bad (Printf.sprintf "%S must be a string" k)))
      (List.assoc_opt k fields)
  in
  match
    List.filter_map Fun.id
      [ pick "expr" (fun s -> Expr s);
        pick "circuit" (fun s -> Circuit s);
        pick "blif" (fun s -> Blif s) ]
  with
  | [ src ] -> src
  | [] -> raise (Bad "one of \"expr\", \"circuit\", \"blif\" is required")
  | _ -> raise (Bad "give exactly one of \"expr\", \"circuit\", \"blif\"")

let parse_request ~defaults line =
  if String.length line > max_line then
    Error
      {
        err_id = J.Null;
        code = Oversized;
        message =
          Printf.sprintf "request line of %d bytes exceeds the %d-byte limit"
            (String.length line) max_line;
      }
  else
    match J.parse line with
    | exception J.Parse_error msg ->
      Error { err_id = J.Null; code = Parse; message = msg }
    | J.Obj fields as obj ->
      let id = Option.value ~default:J.Null (J.member "id" obj) in
      (match List.assoc_opt "op" fields with
       | Some (J.Str "synth") ->
         (match
            let source = parse_source fields in
            let options =
              parse_options ~defaults (List.assoc_opt "options" fields)
            in
            Synth { id; source; options }
          with
          | req -> Ok req
          | exception Bad msg ->
            Error { err_id = id; code = Bad_request; message = msg })
       | Some (J.Str "status") -> Ok (Status id)
       | Some (J.Str "stats") -> Ok (Stats id)
       | Some (J.Str "metrics") -> Ok (Metrics id)
       | Some (J.Str "health") -> Ok (Health id)
       | Some (J.Str "shutdown") -> Ok (Shutdown id)
       | Some (J.Str op) ->
         Error
           {
             err_id = id;
             code = Unknown_op;
             message = Printf.sprintf "unknown op %S" op;
           }
       | Some _ | None ->
         Error
           {
             err_id = id;
             code = Bad_request;
             message = "missing string field \"op\"";
           })
    | _ ->
      Error
        {
          err_id = J.Null;
          code = Parse;
          message = "request must be a JSON object";
        }

(* ------------------------------------------------------------------ *)
(* Canonical serialization *)

let wire_json = function
  | Crossbar.Design.Row i -> J.Str (Printf.sprintf "r%d" i)
  | Crossbar.Design.Col j -> J.Str (Printf.sprintf "c%d" j)

let design_json d =
  let cells = ref [] in
  Crossbar.Design.iter_programmed d (fun r c lit ->
      cells := (r, c, lit) :: !cells);
  let cells = List.sort compare !cells in
  J.Obj
    [
      "rows", J.Num (float_of_int (Crossbar.Design.rows d));
      "cols", J.Num (float_of_int (Crossbar.Design.cols d));
      "input", wire_json (Crossbar.Design.input d);
      ( "outputs",
        J.Arr
          (List.map
             (fun (name, w) -> J.Arr [ J.Str name; wire_json w ])
             (Crossbar.Design.outputs d)) );
      ( "cells",
        J.Arr
          (List.map
             (fun (r, c, lit) ->
                J.Arr
                  [
                    J.Num (float_of_int r);
                    J.Num (float_of_int c);
                    J.Str (Crossbar.Literal.to_string lit);
                  ])
             cells) );
    ]

(* Wall-clock fields (synthesis_time, label_time) are deliberately
   omitted: the payload must be a deterministic function of the cache
   key so cached bytes compare equal to a cold solve's. *)
let report_json (r : Compact.Report.t) =
  J.Obj
    [
      "circuit", J.Str r.Compact.Report.circuit;
      "bdd_nodes", J.Num (float_of_int r.Compact.Report.bdd_nodes);
      "bdd_edges", J.Num (float_of_int r.Compact.Report.bdd_edges);
      "rows", J.Num (float_of_int r.Compact.Report.rows);
      "cols", J.Num (float_of_int r.Compact.Report.cols);
      "semiperimeter", J.Num (float_of_int r.Compact.Report.semiperimeter);
      "vh_count", J.Num (float_of_int r.Compact.Report.vh_count);
      "method", J.Str r.Compact.Report.method_name;
      "optimal", J.Bool r.Compact.Report.optimal;
      "gap", J.Num r.Compact.Report.gap;
      ( "solver_path",
        J.Arr (List.map (fun s -> J.Str s) r.Compact.Report.solver_path) );
      "deadline_hit", J.Bool r.Compact.Report.deadline_hit;
    ]

let synth_payload ~key ~design ~report =
  Printf.sprintf "\"key\":%s,\"design\":%s,\"report\":%s"
    (J.to_string (J.Str key))
    (J.to_string (design_json design))
    (J.to_string (report_json report))

let synth_response ~id ~cached ~coalesced ~payload =
  Printf.sprintf "{\"id\":%s,\"ok\":true,\"cached\":%b,\"coalesced\":%b,%s}"
    (J.to_string id) cached coalesced payload

let ok_response ~id fields =
  J.to_string (J.Obj (("id", id) :: ("ok", J.Bool true) :: fields))

(* A shed request is not a failure of the request, it is a failure of
   the moment: the structured [retry-after] error carries a machine-
   readable delay hint so a retrying client can replay the identical
   request (same id) once the server has drained or restarted. *)
let retry_after_response ~id ~after_s ~message =
  J.to_string
    (J.Obj
       [
         "id", id;
         "ok", J.Bool false;
         ( "error",
           J.Obj
             [
               "code", J.Str (error_code_name Retry_after);
               "message", J.Str message;
               "retry_after_s", J.Num after_s;
             ] );
       ])

let retry_after_hint line =
  match J.parse line with
  | exception J.Parse_error _ -> None
  | j ->
    (match J.member "error" j with
     | Some err when J.member "code" err = Some (J.Str "retry-after") ->
       (match J.member "retry_after_s" err with
        | Some (J.Num s) when s >= 0. -> Some s
        | _ -> Some 0.)
     | _ -> None)

let error_response { err_id; code; message } =
  J.to_string
    (J.Obj
       [
         "id", err_id;
         "ok", J.Bool false;
         ( "error",
           J.Obj
             [
               "code", J.Str (error_code_name code);
               "message", J.Str message;
             ] );
       ])

let parse_response = J.parse

(* Wall-clock isolation for metrics/health replies, mirroring how
   [report_json] omits timing fields: latency ("ms"-unit) histogram
   buckets and quantiles are timing-dependent, gauges are last-write
   instantaneous values, and uptime is wall-clock — all are zeroed so
   what remains (counter values, histogram observation counts,
   size-unit bucket shapes, every metric name) must be byte-identical
   across jobs counts. *)
let normalize_metrics line =
  match J.parse line with
  | exception J.Parse_error _ -> line
  | j ->
    let rec norm = function
      | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, v) ->
               match k, v with
               | "uptime_s", _ -> (k, J.Num 0.)
               | "gauges", J.Obj gs ->
                 (k, J.Obj (List.map (fun (gk, _) -> (gk, J.Num 0.)) gs))
               | "hists", J.Arr hs -> (k, J.Arr (List.map norm_hist hs))
               | _ -> (k, norm v))
             fields)
      | J.Arr items -> J.Arr (List.map norm items)
      | v -> v
    and norm_hist h =
      match h with
      | J.Obj fields when J.member "unit" h = Some (J.Str "ms") ->
        J.Obj
          (List.map
             (fun (k, v) ->
               match k with
               | "buckets" -> (k, J.Arr [])
               | "p50" | "p90" | "p99" | "max" -> (k, J.Num 0.)
               | _ -> (k, v))
             fields)
      | h -> h
    in
    J.to_string (norm j)
