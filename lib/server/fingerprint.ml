(* FNV-1a over the canonical form of the diagram.  64-bit arithmetic on
   Int64 keeps the hash identical on every host word size. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_int h n =
  (* Mix all 63 bits, low byte first. *)
  let rec go h n i =
    if i = 8 then h else go (fnv_byte h (n lsr (8 * i))) n (i + 1)
  in
  go h n 0

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  (* A length terminator keeps concatenated strings unambiguous. *)
  fnv_int !h (String.length s)

let hex h = Printf.sprintf "%016Lx" h

let sbdd (s : Bdd.Sbdd.t) =
  let man = s.Bdd.Sbdd.man in
  let roots = List.map snd s.Bdd.Sbdd.roots in
  (* Canonical ids: position in depth-first discovery order from the
     roots.  Handle values themselves are allocation-order artifacts and
     never enter the hash. *)
  let order = Bdd.Manager.reachable man roots in
  let id = Hashtbl.create (List.length order) in
  List.iteri (fun i n -> Hashtbl.replace id n i) order;
  let h = ref fnv_offset in
  Array.iter (fun name -> h := fnv_string !h name) s.Bdd.Sbdd.input_order;
  List.iter
    (fun n ->
       if Bdd.Manager.is_terminal n then
         (* Terminals hash as themselves: handle 0 / 1 are canonical. *)
         h := fnv_int !h (-1 - n)
       else begin
         h := fnv_int !h (Bdd.Manager.level man n);
         h := fnv_int !h (Hashtbl.find id (Bdd.Manager.low man n));
         h := fnv_int !h (Hashtbl.find id (Bdd.Manager.high man n))
       end)
    order;
  List.iter
    (fun (name, root) ->
       h := fnv_string !h name;
       h := fnv_int !h (Hashtbl.find id root))
    s.Bdd.Sbdd.roots;
  hex !h

let options (o : Compact.Pipeline.options) =
  let opt_int = function None -> "-" | Some n -> string_of_int n in
  Printf.sprintf "gamma=%.9g solver=%s alignment=%b time_limit=%.9g \
                  bdd_node_limit=%d max_rows=%s max_cols=%s race_orders=%d"
    o.Compact.Pipeline.gamma
    (Compact.Pipeline.solver_name o.Compact.Pipeline.solver)
    o.Compact.Pipeline.alignment o.Compact.Pipeline.time_limit
    o.Compact.Pipeline.bdd_node_limit
    (opt_int o.Compact.Pipeline.max_rows)
    (opt_int o.Compact.Pipeline.max_cols)
    o.Compact.Pipeline.race_orders

let key ~options:o s =
  let h = fnv_string fnv_offset Version.engine in
  let h = fnv_string h (options o) in
  let h = fnv_string h (sbdd s) in
  hex h
