module J = Obs.Json

type result = {
  requests : int;
  ok : int;
  errors : int;
  hits : int;
  coalesced : int;
  hit_rate : float;
  wall_s : float;
  rps : float;
  p50_ms : float;
  p99_ms : float;
  hit_p50_ms : float;
  miss_p50_ms : float;
  stats_line : string;
}

let vars = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" |]

(* Seeded random expression: a full binary tree of depth [depth] over
   8 variables — small enough to solve in milliseconds, large enough
   that a cold solve dwarfs the cache-probe path. *)
let rec gen_expr st depth =
  if depth = 0 then
    (if Random.State.bool st then "~" else "")
    ^ vars.(Random.State.int st (Array.length vars))
  else
    let op = [| " & "; " | "; " ^ " |].(Random.State.int st 3) in
    "(" ^ gen_expr st (depth - 1) ^ op ^ gen_expr st (depth - 1) ^ ")"

(* Nearest-rank percentile over raw samples, shared with the server's
   histogram quantiles: 0. on empty input, well-defined on singletons
   (the old ad-hoc [p * n / 100] index under-read small samples and
   yielded nan on empty ones). *)
let percentile samples p = Obs.Hist.percentile_exact samples p

let run ?(seed = Crossbar.Rng.default_seed) ?(requests = 200) ?(hot = 4)
    ?(hot_frac = 0.4) ?(retry = true) ~socket () =
  let hot_exprs =
    Array.init hot (fun i ->
        gen_expr (Crossbar.Rng.state seed ("loadgen-hot", i)) 4)
  in
  let client = Client.connect ~seed socket in
  (* With [retry] the run rides through server restarts: a request whose
     connection dies is replayed verbatim (same id) against whoever next
     owns the socket, so a mid-run SIGKILL costs latency, not errors. *)
  let issue line =
    if retry then Client.request_idempotent client line
    else Client.request client line
  in
  let lat_all = ref [] and lat_hit = ref [] and lat_miss = ref [] in
  let ok = ref 0 and errors = ref 0 and hits = ref 0 and coalesced = ref 0 in
  let t0 = Obs.Clock.now () in
  for k = 1 to requests do
    let st = Crossbar.Rng.state seed ("loadgen-req", k) in
    let expr =
      if Random.State.float st 1. < hot_frac then
        hot_exprs.(Random.State.int st hot)
      else gen_expr st 4
    in
    let line =
      J.to_string
        (J.Obj
           [
             "op", J.Str "synth";
             "id", J.Num (float_of_int k);
             "expr", J.Str expr;
           ])
    in
    let rt0 = Obs.Clock.now () in
    let resp = issue line in
    let ms = (Obs.Clock.now () -. rt0) *. 1e3 in
    lat_all := ms :: !lat_all;
    (match J.parse resp with
     | exception J.Parse_error _ -> incr errors
     | j ->
       (match J.member "ok" j with
        | Some (J.Bool true) ->
          incr ok;
          (match J.member "cached" j with
           | Some (J.Bool true) ->
             incr hits;
             lat_hit := ms :: !lat_hit
           | _ ->
             (match J.member "coalesced" j with
              | Some (J.Bool true) -> incr coalesced
              | _ -> ());
             lat_miss := ms :: !lat_miss)
        | _ -> incr errors))
  done;
  let wall_s = Obs.Clock.now () -. t0 in
  let stats_line =
    (* Best-effort: a server killed right after the last request should
       not turn a clean run into an exception. *)
    match issue "{\"op\":\"stats\",\"id\":\"loadgen\"}" with
    | line -> line
    | exception (End_of_file | Unix.Unix_error _) -> "{}"
  in
  Client.close client;
  let samples l = Array.of_list l in
  let all = samples !lat_all in
  {
    requests;
    ok = !ok;
    errors = !errors;
    hits = !hits;
    coalesced = !coalesced;
    hit_rate = float_of_int !hits /. float_of_int (max 1 requests);
    wall_s;
    rps = float_of_int requests /. (if wall_s > 0. then wall_s else nan);
    p50_ms = percentile all 50;
    p99_ms = percentile all 99;
    hit_p50_ms = percentile (samples !lat_hit) 50;
    miss_p50_ms = percentile (samples !lat_miss) 50;
    stats_line;
  }

let num f = J.Num f
let int_num n = J.Num (float_of_int n)

let json_of_result ~seed ~hot ~hot_frac r =
  let server_stats =
    match J.parse r.stats_line with
    | exception J.Parse_error _ -> []
    | j ->
      List.filter_map
        (fun k -> Option.map (fun v -> k, v) (J.member k j))
        [ "server"; "cache" ]
  in
  let ratio =
    if Float.is_nan r.hit_p50_ms || Float.is_nan r.miss_p50_ms
       || r.hit_p50_ms <= 0.
    then J.Null
    else num (r.miss_p50_ms /. r.hit_p50_ms)
  in
  J.to_string
    (J.Obj
       ([
          ( "workload",
            J.Obj
              [
                "seed", int_num seed;
                "requests", int_num r.requests;
                "hot", int_num hot;
                "hot_frac", num hot_frac;
              ] );
          ( "loadgen",
            J.Obj
              [
                "ok", int_num r.ok;
                "errors", int_num r.errors;
                "hits", int_num r.hits;
                "coalesced", int_num r.coalesced;
                "hit_rate", num r.hit_rate;
                "wall_s", num r.wall_s;
                "requests_per_s", num r.rps;
                "p50_ms", num r.p50_ms;
                "p99_ms", num r.p99_ms;
                "hit_p50_ms", num r.hit_p50_ms;
                "miss_p50_ms", num r.miss_p50_ms;
                "miss_to_hit_p50_ratio", ratio;
              ] );
        ]
        @ server_stats))

let pp ppf r =
  Format.fprintf ppf
    "@[<v>loadgen: %d requests in %.2fs (%.1f req/s)@,\
     ok %d  errors %d  hits %d (%.0f%%)  coalesced %d@,\
     latency p50 %.3fms  p99 %.3fms  hit-p50 %.3fms  miss-p50 %.3fms@]"
    r.requests r.wall_s r.rps r.ok r.errors r.hits (100. *. r.hit_rate)
    r.coalesced r.p50_ms r.p99_ms r.hit_p50_ms r.miss_p50_ms
