module J = Obs.Json
module Budget = Resilience.Budget

type config = {
  defaults : Compact.Pipeline.options;
  jobs : int;
  max_queue : int;
  request_deadline : float;
  verify_trials : int;
  cache_entries : int;
  cache_bytes : int;
  cache_dir : string option;
  fsync : bool;
  journal_ratio : float;
}

let default_config =
  {
    defaults = Compact.Pipeline.default_options;
    jobs = 1;
    max_queue = 64;
    request_deadline = 30.;
    verify_trials = 64;
    cache_entries = 512;
    cache_bytes = 16 * 1024 * 1024;
    cache_dir = None;
    fsync = false;
    journal_ratio = 4.;
  }

type t = {
  config : config;
  cache : Cache.t;
  persist : Persist.t option;
  started : float;
  recovered : int;
  dropped : int;
  mutable served : int;
  mutable synth_ok : int;
  mutable synth_err : int;
  mutable solves : int;
  mutable coalesced : int;
  mutable rejected : int;
  mutable shutdown : bool;
  (* Health surface, updated by the serving loop (Sock) so `health`
     replies reflect socket-level load, not just engine internals. *)
  mutable draining : bool;
  mutable in_flight : int;
}

type stats = {
  served : int;
  synth_ok : int;
  synth_err : int;
  solves : int;
  coalesced : int;
  rejected : int;
  recovered : int;
  dropped : int;
  cache : Cache.stats;
}

let c_requests = Obs.Counter.make "server.requests"
let c_solves = Obs.Counter.make "server.solves"
let c_coalesced = Obs.Counter.make "server.coalesced"
let c_rejected = Obs.Counter.make "server.rejected"

(* Phase-latency histograms (armed whenever the metrics plane or
   tracing is on; see Obs.recording). *)
let h_request = Obs.Hist.make_ms "server.request-ms"
let h_solve = Obs.Hist.make_ms "server.solve-ms"
let h_verify = Obs.Hist.make_ms "server.verify-ms"
let h_probe = Obs.Hist.make_ms "server.cache-probe-ms"
let h_batch = Obs.Hist.make_count "server.batch-size"

(* The fingerprint-consistency check every recovered value must pass
   before admission, on top of the record CRCs [Persist] already
   enforced: the payload parses, and the cache key embedded in it is the
   record's own key — a spliced or mis-keyed record is dropped, never
   served.  Entries written by another engine version keep their old
   keys and simply never match a fresh request's fingerprint. *)
let recovered_payload_ok key value =
  match J.parse ("{" ^ value ^ "}") with
  | exception J.Parse_error _ -> false
  | j ->
    J.member "key" j = Some (J.Str key)
    && J.member "design" j <> None
    && J.member "report" j <> None

let create config =
  if config.jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  if config.max_queue < 1 then
    invalid_arg "Engine.create: max_queue must be >= 1";
  let cache =
    Cache.create ~max_entries:config.cache_entries
      ~max_bytes:config.cache_bytes ()
  in
  let persist, recovered, dropped =
    match config.cache_dir with
    | None -> None, 0, 0
    | Some dir ->
      let p, r =
        Persist.open_dir ~verify:recovered_payload_ok ~fsync:config.fsync
          ~journal_ratio:config.journal_ratio dir
      in
      List.iter (fun (k, v) -> Cache.add cache k v) r.Persist.entries;
      Some p, List.length r.Persist.entries, r.Persist.dropped
  in
  {
    config;
    cache;
    persist;
    started = Obs.Clock.now ();
    recovered;
    dropped;
    served = 0;
    synth_ok = 0;
    synth_err = 0;
    solves = 0;
    coalesced = 0;
    rejected = 0;
    shutdown = false;
    draining = false;
    in_flight = 0;
  }

let set_load (t : t) ~draining ~in_flight =
  t.draining <- draining;
  t.in_flight <- in_flight

let stats (t : t) : stats =
  {
    served = t.served;
    synth_ok = t.synth_ok;
    synth_err = t.synth_err;
    solves = t.solves;
    coalesced = t.coalesced;
    rejected = t.rejected;
    recovered = t.recovered;
    dropped = t.dropped;
    cache = Cache.stats t.cache;
  }

let cache (t : t) = t.cache
let wants_shutdown (t : t) = t.shutdown

let flush (t : t) =
  match t.persist with
  | None -> ()
  | Some p -> Persist.snapshot p (Cache.to_list t.cache)

let close (t : t) =
  match t.persist with
  | None -> ()
  | Some p ->
    Persist.snapshot p (Cache.to_list t.cache);
    Persist.close p

(* ------------------------------------------------------------------ *)
(* Structured error mapping: anything a request can end in becomes an
   error response on that request's line, never an escaping exception. *)

let error_of_exn id exn : Protocol.error =
  let mk code message = { Protocol.err_id = id; code; message } in
  match exn with
  | Budget.Exhausted r ->
    mk Protocol.Exhausted
      (Printf.sprintf "budget exhausted (%s) before a result was produced"
         (Budget.reason_name r))
  | Compact.Label_mip.Infeasible msg ->
    mk Protocol.Infeasible ("constraints are infeasible: " ^ msg)
  | Bdd.Manager.Size_limit n ->
    mk Protocol.Size_limit
      (Printf.sprintf "BDD exceeded the %d-node budget" n)
  | Logic.Parse.Error msg -> mk Protocol.Bad_request ("bad expression: " ^ msg)
  | Logic.Netlist.Ill_formed msg ->
    mk Protocol.Bad_request ("ill-formed netlist: " ^ msg)
  | Logic.Blif.Parse_error { line; message } ->
    mk Protocol.Bad_request
      (Printf.sprintf "bad BLIF (line %d): %s" line message)
  | exn -> mk Protocol.Internal (Printexc.to_string exn)

let netlist_of_source = function
  | Protocol.Expr s ->
    let e = Logic.Parse.expr s in
    let inputs = Logic.Expr.vars e in
    (* The output wire must not shadow an input variable (an expression
       over "f" is legal), so probe f, f0, f1, … deterministically. *)
    let out =
      if not (List.mem "f" inputs) then "f"
      else
        let rec pick i =
          let n = Printf.sprintf "f%d" i in
          if List.mem n inputs then pick (i + 1) else n
        in
        pick 0
    in
    Logic.Netlist.create ~name:"expr" ~inputs ~outputs:[ out ]
      [ Logic.Netlist.n_expr out e ]
  | Protocol.Circuit name ->
    (match Circuits.Suite.find name with
     | entry -> entry.Circuits.Suite.generate ()
     | exception Not_found ->
       raise (Logic.Parse.Error (Printf.sprintf "unknown circuit %S" name)))
  | Protocol.Blif text -> Logic.Blif.parse_string text

(* Inner solves always run sequentially and without their own global
   deadline: batch-level parallelism and the per-request budget are the
   server's to manage, not the request's. *)
let solve_options (o : Compact.Pipeline.options) =
  { o with Compact.Pipeline.jobs = 1; deadline = None }

type prepared = {
  p_id : J.t;
  p_key : string;
  p_sbdd : Bdd.Sbdd.t;
  p_options : Compact.Pipeline.options;
  p_netlist : Logic.Netlist.t;
}

(* Parse + SBDD build + canonical key, under the request budget.  The
   probe itself happens back in the caller so the cache is only ever
   touched from the serving domain. *)
let prepare t (s : Protocol.synth) =
  match
    Budget.protect_oom @@ fun () ->
    let budget = Budget.seconds t.config.request_deadline in
    let options = solve_options s.Protocol.options in
    let netlist = netlist_of_source s.Protocol.source in
    let sbdd =
      Bdd.Sbdd.of_netlist ~budget ?order:options.Compact.Pipeline.order
        ~node_limit:options.Compact.Pipeline.bdd_node_limit netlist
    in
    let key = Fingerprint.key ~options sbdd in
    { p_id = s.Protocol.id; p_key = key; p_sbdd = sbdd; p_options = options;
      p_netlist = netlist }
  with
  | p -> Ok p
  | exception exn -> Error (error_of_exn s.Protocol.id exn)

(* One cold solve: synthesize, verify, serialize.  Returns the cached
   payload plus the pristine verdict; never raises. *)
let solve t p =
  match
    Budget.protect_oom @@ fun () ->
    Obs.Hist.time h_solve @@ fun () ->
    Obs.Span.with_ ~attrs:[ "key", p.p_key ] "solve" @@ fun () ->
    let budget = Budget.seconds t.config.request_deadline in
    let result =
      Compact.Pipeline.synthesize_sbdd ~options:p.p_options ~budget
        ~name:p.p_netlist.Logic.Netlist.name p.p_sbdd
    in
    let verified =
      Obs.Hist.time h_verify @@ fun () ->
      Obs.Span.with_ "verify" @@ fun () ->
      Crossbar.Verify.auto ~trials:t.config.verify_trials
        result.Compact.Pipeline.design
        ~inputs:p.p_netlist.Logic.Netlist.inputs
        ~reference:(Logic.Netlist.eval_point p.p_netlist)
        ~outputs:p.p_netlist.Logic.Netlist.outputs
    in
    (match verified with
     | Crossbar.Verify.Ok -> ()
     | Crossbar.Verify.Failed _ ->
       failwith "cold solve failed functional verification");
    let report = result.Compact.Pipeline.report in
    let payload =
      Protocol.synth_payload ~key:p.p_key
        ~design:result.Compact.Pipeline.design ~report
    in
    (* Pristine = safe to serve to any future identical request: the
       solver path never degraded under time pressure (watchdog
       fallbacks, expired deadlines and partial portfolio entrants are
       timing-dependent — [Report.path_pristine] knows both path
       shapes) and no solver-affecting fault injection was armed while
       solving.  The disk points are deliberately exempt: they fault
       the storage layer, whose CRCs catch the damage on recovery, and
       blocking admission under them would leave the crash-restart
       battery nothing to recover. *)
    let solver_injection_armed =
      List.exists Resilience.Inject.armed
        [
          Resilience.Inject.Timeout; Resilience.Inject.Oom;
          Resilience.Inject.Cg_divergence; Resilience.Inject.Pool_poison;
          Resilience.Inject.Defect_truncate;
        ]
    in
    let pristine =
      (not report.Compact.Report.deadline_hit)
      && Compact.Report.path_pristine report.Compact.Report.solver_path
      && not solver_injection_armed
    in
    payload, pristine
  with
  | r -> Ok r
  | exception exn -> Error (error_of_exn p.p_id exn)

(* ------------------------------------------------------------------ *)

let status_response (t : t) id =
  Protocol.ok_response ~id
    [
      "engine", J.Str Version.engine;
      "protocol", J.Str "jsonl/1";
      "jobs", J.Num (float_of_int t.config.jobs);
      "max_queue", J.Num (float_of_int t.config.max_queue);
      "uptime_s", J.Num (Obs.Clock.now () -. t.started);
      ( "cache_entries",
        J.Num (float_of_int (Cache.stats t.cache).Cache.entries) );
    ]

let stats_response (t : t) id =
  let s = stats t in
  Protocol.ok_response ~id
    ([
      ( "server",
        J.Obj
          [
            "uptime_s", J.Num (Obs.Clock.now () -. t.started);
            "served", J.Num (float_of_int s.served);
            "synth_ok", J.Num (float_of_int s.synth_ok);
            "synth_err", J.Num (float_of_int s.synth_err);
            "solves", J.Num (float_of_int s.solves);
            "coalesced", J.Num (float_of_int s.coalesced);
            "rejected", J.Num (float_of_int s.rejected);
          ] );
      ( "cache",
        J.Obj
          [
            "hits", J.Num (float_of_int s.cache.Cache.hits);
            "misses", J.Num (float_of_int s.cache.Cache.misses);
            "inserts", J.Num (float_of_int s.cache.Cache.inserts);
            "evictions", J.Num (float_of_int s.cache.Cache.evictions);
            "entries", J.Num (float_of_int s.cache.Cache.entries);
            "bytes", J.Num (float_of_int s.cache.Cache.bytes);
          ] );
    ]
    @
    (match t.persist with
     | None -> []
     | Some p ->
       [
         ( "persist",
           J.Obj
             [
               "recovered", J.Num (float_of_int s.recovered);
               "dropped", J.Num (float_of_int s.dropped);
               ( "journal_bytes",
                 J.Num (float_of_int (Persist.journal_bytes p)) );
               ( "snapshot_bytes",
                 J.Num (float_of_int (Persist.snapshot_bytes p)) );
             ] );
       ]))

(* Every registered counter/gauge/histogram, non-destructively — the
   registry keeps accumulating after the reply is rendered. *)
let metrics_response (_ : t) id =
  Protocol.ok_response ~id (Obs.Metrics.json_fields (Obs.Metrics.snapshot ()))

let health_response (t : t) id =
  let s = stats t in
  Protocol.ok_response ~id
    [
      "status", J.Str (if t.draining then "draining" else "ok");
      "uptime_s", J.Num (Obs.Clock.now () -. t.started);
      "draining", J.Bool t.draining;
      "in_flight", J.Num (float_of_int t.in_flight);
      "recovered", J.Num (float_of_int s.recovered);
      "dropped", J.Num (float_of_int s.dropped);
      "cache_entries", J.Num (float_of_int s.cache.Cache.entries);
    ]

let handle_batch (t : t) lines =
  let t_batch = Obs.Clock.now () in
  let lines = Array.of_list lines in
  let n = Array.length lines in
  Obs.Hist.observe h_batch (float_of_int n);
  let slots = Array.make n None in
  let fill i r =
    (* Request latency = arrival at the batch to response fill. *)
    Obs.Hist.observe h_request ((Obs.Clock.now () -. t_batch) *. 1e3);
    slots.(i) <- Some r
  in
  let fill_err i (e : Protocol.error) =
    t.synth_err <- t.synth_err + 1;
    fill i (Protocol.error_response e)
  in
  let parsed =
    Array.map (Protocol.parse_request ~defaults:t.config.defaults) lines
  in
  (* Non-synth ops answer inline; synth requests pass admission control
     in arrival order. *)
  let synths = ref [] in
  let admitted = ref 0 in
  Array.iteri
    (fun i req ->
       Obs.Counter.incr c_requests;
       match req with
       | Error e -> fill_err i e
       | Ok (Protocol.Status id) -> fill i (status_response t id)
       | Ok (Protocol.Stats id) -> fill i (stats_response t id)
       | Ok (Protocol.Metrics id) -> fill i (metrics_response t id)
       | Ok (Protocol.Health id) -> fill i (health_response t id)
       | Ok (Protocol.Shutdown id) ->
         t.shutdown <- true;
         fill i (Protocol.ok_response ~id [ "shutting_down", J.Bool true ])
       | Ok (Protocol.Synth s) ->
         if !admitted >= t.config.max_queue then begin
           t.rejected <- t.rejected + 1;
           Obs.Counter.incr c_rejected;
           fill_err i
             {
               Protocol.err_id = s.Protocol.id;
               code = Protocol.Overload;
               message =
                 Printf.sprintf
                   "admission control: batch already holds %d requests"
                   t.config.max_queue;
             }
         end
         else begin
           incr admitted;
           synths := (i, s) :: !synths
         end)
    parsed;
  (* Prepare + cache probe, in arrival order, serving domain only. *)
  let groups : (string, (int * prepared) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let group_order = ref [] in
  List.iter
    (fun (i, s) ->
       Obs.Span.with_ ~attrs:[ "op", "synth" ] "request" @@ fun () ->
       match prepare t s with
       | Error e -> fill_err i e
       | Ok p ->
         (* The probe span is traced-only: recording a span costs more
            than the probe it would log, so the always-on flight ring
            keeps just the request span on the hit path (h_probe still
            times every probe for the metrics plane). *)
         let find () = Cache.find t.cache p.p_key in
         let hit =
           Obs.Hist.time h_probe @@ fun () ->
           if Obs.enabled () then
             Obs.Span.with_ ~attrs:[ "key", p.p_key ] "cache-probe" find
           else find ()
         in
         (match hit with
          | Some payload ->
            t.synth_ok <- t.synth_ok + 1;
            fill i
              (Protocol.synth_response ~id:p.p_id ~cached:true
                 ~coalesced:false ~payload)
          | None ->
            (match Hashtbl.find_opt groups p.p_key with
             | Some members -> members := (i, p) :: !members
             | None ->
               let members = ref [ (i, p) ] in
               Hashtbl.replace groups p.p_key members;
               group_order := p.p_key :: !group_order)))
    (List.rev !synths);
  let group_order = List.rev !group_order in
  (* Single-flight: one solve per distinct key, on the pool. *)
  let leaders =
    List.map
      (fun key ->
         let members = List.rev !(Hashtbl.find groups key) in
         t.solves <- t.solves + 1;
         Obs.Counter.incr c_solves;
         let followers = List.length members - 1 in
         t.coalesced <- t.coalesced + followers;
         Obs.Counter.add c_coalesced followers;
         members, snd (List.hd members))
      group_order
  in
  let outcomes =
    match leaders with
    | [] -> []
    | [ (_, leader) ] -> [ solve t leader ]
    | _ when t.config.jobs = 1 ->
      List.map (fun (_, leader) -> solve t leader) leaders
    | _ ->
      (* Spawning worker domains costs milliseconds, so the pool only
         runs for batches with at least two distinct solves to overlap. *)
      (match
         Parallel.with_pool ~jobs:t.config.jobs (fun pool ->
             Parallel.map pool (fun (_, leader) -> solve t leader) leaders)
       with
       | outcomes -> outcomes
       | exception _ ->
         (* A pool-level fault (poisoned task, cancelled batch) must not
            take down requests that can still solve: retry sequentially
            with per-request protection. *)
         List.map (fun (_, leader) -> solve t leader) leaders)
  in
  List.iter2
    (fun (members, _) outcome ->
       match outcome with
       | Error e ->
         List.iter
           (fun (i, (p : prepared)) ->
              fill_err i { e with Protocol.err_id = p.p_id })
           members
       | Ok (payload, pristine) ->
         if pristine then begin
           let key = (List.hd members |> snd).p_key in
           Cache.add t.cache key payload;
           match t.persist with
           | None -> ()
           | Some p ->
             Persist.append p key payload;
             ignore
               (Persist.maybe_compact p (lazy (Cache.to_list t.cache))
                : bool)
         end;
         List.iteri
           (fun k (i, (p : prepared)) ->
              t.synth_ok <- t.synth_ok + 1;
              fill i
                (Protocol.synth_response ~id:p.p_id ~cached:false
                   ~coalesced:(k > 0) ~payload))
           members)
    leaders outcomes;
  t.served <- t.served + n;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None ->
           Protocol.error_response
             {
               Protocol.err_id = J.Null;
               code = Protocol.Internal;
               message = "request produced no response";
             })
       slots)

let handle t line =
  match handle_batch t [ line ] with
  | [ r ] -> r
  | _ -> assert false
