(* The engine version baked into every cache key.  Bump it whenever a
   change can alter synthesis output for the same function and options
   (solver algorithms, mapping, canonicalisation) — stale entries from
   an older engine then simply miss instead of serving wrong bytes. *)

let engine = "compact-engine/8"
