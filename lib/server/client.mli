(** A blocking [compactd] client: one line out, one line in — plus the
    resilience a client needs to ride through server restarts: capped
    exponential backoff with seeded jitter on connect, EINTR-safe
    syscalls, and idempotent request replay keyed by request id. *)

type t

val connect :
  ?retries:int ->
  ?base:float ->
  ?cap:float ->
  ?seed:int ->
  string ->
  t
(** Connect to the server's Unix-domain socket.  While the path is
    missing or refusing (the startup race against a server launched in a
    fresh domain/process, or a restart gap), the connection is retried
    up to [retries] (default 100) times, sleeping
    [min cap (base * 2^k)] seconds scaled by a seeded jitter draw in
    [0.5, 1.0] before attempt [k].  Defaults: [base] 5 ms, [cap] 100 ms,
    [seed] {!Crossbar.Rng.default_seed} — deterministic, so tests
    replay.
    @raise Unix.Unix_error when the last retry fails. *)

val backoff_delay : seed:int -> base:float -> cap:float -> int -> float
(** The exact sleep before attempt [k]: pure, for tests. *)

val send : t -> string -> unit
(** Write one request line (the newline is appended). Retries [EINTR]. *)

val recv : t -> string
(** Read the next response line. Retries [EINTR].
    @raise End_of_file if the server closed the connection. *)

val request : t -> string -> string
(** [send] then [recv] — no replay; a dropped connection raises. *)

val request_idempotent : ?replays:int -> t -> string -> string
(** [request] that survives server restarts and shedding.  The request
    line must be idempotent (synth/status/stats are: the engine is
    deterministic and cached hits are byte-identical).  On a dropped
    connection the client reconnects (with backoff) and replays the
    identical line — same id — up to [replays] (default 16) times; on a
    structured [retry-after] response it sleeps the hinted delay (capped
    at 1 s, floored by its own backoff) and replays; a response whose id
    does not match the request's is discarded as stale and the read
    continues.
    @raise Unix.Unix_error / [End_of_file] when replays run out. *)

val close : t -> unit
