(** A minimal blocking [compactd] client: one line out, one line in. *)

type t

val connect : ?retries:int -> string -> t
(** Connect to the server's Unix-domain socket. The connection is
    retried [retries] times (default 200) at 20 ms intervals while the
    socket is missing or refusing — the startup race against a server
    launched in a fresh domain/process.
    @raise Unix.Unix_error when the last retry fails. *)

val send : t -> string -> unit
(** Write one request line (the newline is appended). *)

val recv : t -> string
(** Read the next response line.
    @raise End_of_file if the server closed the connection. *)

val request : t -> string -> string
(** [send] then [recv]. *)

val close : t -> unit
