(** The [compactd] wire protocol: line-oriented JSONL.

    Each request is one JSON object on one LF-terminated line; each
    response is one JSON object on one line, carrying the request's
    ["id"] back verbatim (or [null] when the request was unparsable).

    Grammar (all requests; fields marked ? are optional):

    {v
    {"op":"synth", "id":J?, "expr":S | "circuit":S | "blif":S,
     "options":{"gamma":N?, "solver":S?, "alignment":B?,
                "time_limit":N?, "bdd_node_limit":N?,
                "max_rows":N?, "max_cols":N?}?}
    {"op":"status", "id":J?}
    {"op":"stats",  "id":J?}
    {"op":"metrics","id":J?}
    {"op":"health", "id":J?}
    {"op":"shutdown","id":J?}
    v}

    Responses:

    {v
    {"id":J, "ok":true, "cached":B, "coalesced":B, "key":S,
     "design":{...}, "report":{...}}                        (synth)
    {"id":J, "ok":true, ...}                                (others)
    {"id":J, "ok":false,
     "error":{"code":S, "message":S}}                       (failure)
    v}

    The design object is canonical — wires render as ["r4"]/["c2"],
    cells are sorted by (row, col) — and the report omits wall-clock
    fields, so the whole synth payload is a deterministic function of
    (function, options, engine version). That is what makes cached
    bytes safe to serve and lets the test battery compare responses
    across jobs counts byte for byte. *)

type source =
  | Expr of string  (** a Boolean expression, [Logic.Parse] syntax *)
  | Circuit of string  (** a built-in [Circuits.Suite] benchmark name *)
  | Blif of string  (** an inline BLIF netlist *)

type synth = {
  id : Obs.Json.t;
  source : source;
  options : Compact.Pipeline.options;
}

type request =
  | Synth of synth
  | Status of Obs.Json.t
  | Stats of Obs.Json.t
  | Metrics of Obs.Json.t
      (** Non-destructive dump of every registered counter, gauge and
          histogram (buckets + nearest-rank quantiles). *)
  | Health of Obs.Json.t
      (** Liveness probe: uptime, drain state, in-flight count, cache
          recovery tallies. *)
  | Shutdown of Obs.Json.t

type error_code =
  | Parse  (** the line is not a JSON object *)
  | Unknown_op
  | Bad_request  (** missing/conflicting source, bad option field … *)
  | Oversized  (** line longer than {!max_line} bytes *)
  | Overload  (** admission control rejected the request *)
  | Retry_after
      (** shed by the serving loop (queue full, or draining for
          shutdown); the error object carries a ["retry_after_s"] hint *)
  | Exhausted  (** the per-request budget ran out with no result *)
  | Infeasible  (** capacity constraints unsatisfiable *)
  | Size_limit  (** BDD node budget exceeded *)
  | Internal

val error_code_name : error_code -> string
(** Stable kebab-case wire spelling, e.g. ["bad-request"]. *)

type error = { err_id : Obs.Json.t; code : error_code; message : string }

val max_line : int
(** Longest accepted request line in bytes (65536). *)

val request_id : request -> Obs.Json.t

val parse_request :
  defaults:Compact.Pipeline.options -> string -> (request, error) result
(** Parse one line. [defaults] seeds the synth options; fields of the
    request's ["options"] object override it ([jobs]/[deadline] are
    server-side and not settable over the wire — an attempt is a
    [Bad_request]). *)

val design_json : Crossbar.Design.t -> Obs.Json.t
val report_json : Compact.Report.t -> Obs.Json.t

val synth_payload :
  key:string -> design:Crossbar.Design.t -> report:Compact.Report.t -> string
(** The cacheable part of a synth response:
    ["key":…, "design":…, "report":…] rendered as a JSON-object
    fragment (no braces). Deterministic per (function, options,
    engine). *)

val synth_response :
  id:Obs.Json.t -> cached:bool -> coalesced:bool -> payload:string -> string
(** Wrap a payload into a full response line (no trailing newline). *)

val ok_response : id:Obs.Json.t -> (string * Obs.Json.t) list -> string
(** Generic success envelope with extra fields. *)

val error_response : error -> string

val retry_after_response :
  id:Obs.Json.t -> after_s:float -> message:string -> string
(** A structured shed response:
    [{"id":…,"ok":false,"error":{"code":"retry-after","message":…,
    "retry_after_s":N}}]. *)

val retry_after_hint : string -> float option
(** Client side: [Some delay] when the response line is a [retry-after]
    error (the hint clamps to 0 when absent or negative), [None] for
    every other response. *)

val parse_response : string -> Obs.Json.t
(** Client-side: parse one response line.
    @raise Obs.Json.Parse_error on garbage. *)

val normalize_metrics : string -> string
(** Zero the wall-clock-dependent parts of a [metrics]/[health] reply
    line — [uptime_s], gauge values, and the buckets/quantiles of
    "ms"-unit histograms (their observation [count]s are kept) — so
    replies are byte-comparable across jobs counts, the same isolation
    [report_json] applies by omitting timing fields.  Returns
    unparsable lines unchanged.  Idempotent. *)
