type t = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let connect ?(retries = 200) path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; buf = Buffer.create 4096; chunk = Bytes.create 8192 }
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.02;
      go (n - 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go retries

let send t line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off < len then go (off + Unix.write t.fd data off (len - off))
  in
  go 0

let rec recv t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | Some i ->
    Buffer.clear t.buf;
    Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
    String.sub s 0 i
  | None ->
    (match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
     | 0 -> raise End_of_file
     | n ->
       Buffer.add_subbytes t.buf t.chunk 0 n;
       recv t)

let request t line =
  send t line;
  recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
