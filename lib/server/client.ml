type t = {
  path : string;
  seed : int;
  base : float;
  cap : float;
  retries : int;
  mutable fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
}

(* Capped exponential backoff with seeded jitter: attempt [k] sleeps
   [min cap (base * 2^k)] scaled into [0.5, 1.0] by a deterministic
   draw, so concurrent clients decorrelate without tests losing
   reproducibility. *)
let backoff_delay ~seed ~base ~cap k =
  let raw = base *. (2. ** float_of_int (min k 30)) in
  let capped = Float.min cap raw in
  let u =
    Random.State.float (Crossbar.Rng.state seed ("client-backoff", k)) 1.
  in
  capped *. (0.5 +. (0.5 *. u))

let rec connect_fd ~retries ~seed ~base ~cap path k =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
    when k < retries ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Unix.sleepf (backoff_delay ~seed ~base ~cap k);
    connect_fd ~retries ~seed ~base ~cap path (k + 1)
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?(retries = 100) ?(base = 0.005) ?(cap = 0.1)
    ?(seed = Crossbar.Rng.default_seed) path =
  let fd = connect_fd ~retries ~seed ~base ~cap path 0 in
  {
    path;
    seed;
    base;
    cap;
    retries;
    fd;
    buf = Buffer.create 4096;
    chunk = Bytes.create 8192;
  }

let reconnect t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  (* Anything half-read from the dead connection is garbage now. *)
  Buffer.clear t.buf;
  t.fd <-
    connect_fd ~retries:t.retries ~seed:t.seed ~base:t.base ~cap:t.cap
      t.path 0

let send t line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off < len then
      match Unix.write t.fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let rec recv t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | Some i ->
    Buffer.clear t.buf;
    Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
    String.sub s 0 i
  | None ->
    (match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
     | 0 -> raise End_of_file
     | n ->
       Buffer.add_subbytes t.buf t.chunk 0 n;
       recv t
     | exception Unix.Unix_error (EINTR, _, _) -> recv t)

let request t line =
  send t line;
  recv t

(* ------------------------------------------------------------------ *)
(* Idempotent replay.  A synth request is a pure function of its line
   (the engine is deterministic and the cache serves identical bytes),
   so replaying the same line — same id — against a restarted server is
   safe.  Three things trigger a replay: the connection dying
   mid-request (server crash or restart), a structured [retry-after]
   shed, and a stale response whose id does not match (skipped, then the
   read continues). *)

let connection_lost = function
  | End_of_file -> true
  | Unix.Unix_error ((EPIPE | ECONNRESET | EBADF | ENOTCONN | ESHUTDOWN),
                     _, _) -> true
  | _ -> false

let line_id line =
  match Obs.Json.parse line with
  | exception Obs.Json.Parse_error _ -> None
  | j -> Obs.Json.member "id" j

let request_idempotent ?(replays = 16) t line =
  let want_id = line_id line in
  let id_matches resp =
    match want_id with
    | None -> true
    | Some id ->
      (match Obs.Json.parse resp with
       | exception Obs.Json.Parse_error _ -> true
       | j -> Obs.Json.member "id" j = Some id || id = Obs.Json.Null)
  in
  let rec attempt k =
    let fail_or_retry e =
      if k >= replays then raise e
      else begin
        (* A reconnect that exhausts its own retries raises the last
           connect error: the server really is gone. *)
        reconnect t;
        attempt (k + 1)
      end
    in
    match
      send t line;
      (* Swallow stale responses (an earlier request abandoned between
         send and recv) until the id lines up. *)
      let rec read_matching budget =
        let resp = recv t in
        if id_matches resp || budget = 0 then resp
        else read_matching (budget - 1)
      in
      read_matching 8
    with
    | resp ->
      (match Protocol.retry_after_hint resp with
       | Some after when k < replays ->
         Unix.sleepf
           (Float.max (backoff_delay ~seed:t.seed ~base:t.base ~cap:t.cap k)
              (Float.min after 1.));
         attempt (k + 1)
       | _ -> resp)
    | exception e when connection_lost e -> fail_or_retry e
  in
  attempt 0

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
