(** The [compactd] serving core: request batches in, response lines
    out — no sockets, no global state.

    The engine owns a {!Cache} and a handful of counters; everything
    else is computed per call, so one process can host several engines
    (the test battery does). {!handle_batch} is the whole serving
    logic:

    + parse each line ({!Protocol});
    + admission control — at most [max_queue] synthesis requests per
      batch are admitted, the rest get structured [overload] errors;
    + per request: build the netlist and its SBDD (under the
      per-request {!Resilience.Budget}), derive the canonical
      {!Fingerprint.key}, probe the cache;
    + single-flight: cache misses are grouped by key, each distinct key
      solves {e once} (followers are "coalesced"), in parallel on a
      [lib/parallel] domain pool of [jobs] width;
    + every cold design is functionally verified before it is served,
      and cached only when {e pristine} — verified, no watchdog
      fallback, no expired deadline, no armed fault injection — so a
      hit is provably the bytes a clean cold solve produces.

    Responses come back in request order and are byte-identical for
    every [jobs] count (the pool merges in submission order and the
    payload serialization is canonical).

    Not thread-safe: one serving loop calls {!handle_batch} at a time.
    Solver work inside is pooled; the cache is only touched from the
    calling domain. *)

type config = {
  defaults : Compact.Pipeline.options;
      (** per-request synthesis options before wire overrides; [jobs]
          and [deadline] inside it are ignored (inner solves always run
          sequentially — parallelism lives at the batch level) *)
  jobs : int;  (** domain-pool width for batch solving *)
  max_queue : int;  (** admitted synthesis requests per batch *)
  request_deadline : float;
      (** per-request wall budget in seconds (SBDD build + solve) *)
  verify_trials : int;  (** {!Crossbar.Verify.auto} trials per cold solve *)
  cache_entries : int;
  cache_bytes : int;
  cache_dir : string option;
      (** when set, the cache is durable: recovered from this directory
          on {!create} (via {!Persist.open_dir} with a fingerprint-
          consistency check on every entry), journaled on every pristine
          admission, snapshotted by {!flush}/{!close} *)
  fsync : bool;  (** force journal appends and snapshots to disk *)
  journal_ratio : float;
      (** compact (re-snapshot) once the journal outgrows this multiple
          of the snapshot *)
}

val default_config : config
(** jobs 1, max_queue 64, request_deadline 30 s, verify_trials 64,
    cache bounds per {!Cache.create} defaults, no cache_dir, no fsync,
    journal_ratio 4. *)

type t

val create : config -> t

type stats = {
  served : int;  (** request lines answered *)
  synth_ok : int;
  synth_err : int;
  solves : int;  (** cold solves actually run *)
  coalesced : int;  (** misses answered by another request's solve *)
  rejected : int;  (** admission-control rejections *)
  recovered : int;  (** entries admitted from the cache-dir on create *)
  dropped : int;
      (** corrupt/torn/mis-keyed persisted entries discarded on create *)
  cache : Cache.stats;
}

val stats : t -> stats
val cache : t -> Cache.t
val wants_shutdown : t -> bool
(** Set once a [shutdown] request has been answered; the socket loop
    exits after flushing. *)

val set_load : t -> draining:bool -> in_flight:int -> unit
(** Publish the serving loop's load state ([draining], queued request
    count) so [health] replies reflect socket-level reality.  Defaults
    to not-draining / 0 for engines used without a socket loop. *)

val flush : t -> unit
(** Snapshot the cache to the cache-dir (no-op without one). *)

val close : t -> unit
(** {!flush}, then release the persistence handle.  The engine itself
    stays usable in memory; only durability stops. *)

val handle_batch : t -> string list -> string list
(** Process one batch of request lines; responses in request order,
    one per line, without trailing newlines. Never raises. *)

val handle : t -> string -> string
(** [handle_batch] of a single line. *)
