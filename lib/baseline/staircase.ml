let of_graph (bg : Compact.Types.bdd_graph) =
  let n = Graphs.Ugraph.num_nodes bg.graph in
  (* Row order: roots first, terminal last (bottom wordline), mirroring
     the staircase layout that grows toward the top-right corner. Columns
     follow the same order minus the terminal. *)
  let order = Array.make n (-1) in
  let next = ref 0 in
  let assign v =
    if order.(v) < 0 then begin
      order.(v) <- !next;
      incr next
    end
  in
  List.iter
    (fun (_, root) ->
       match root with
       | Compact.Types.Node v -> if v <> bg.terminal then assign v
       | Compact.Types.Const_false -> ())
    bg.roots;
  for v = 0 to n - 1 do
    if v <> bg.terminal then assign v
  done;
  assign bg.terminal;
  let row_of = order in
  (* Bitlines: same order, skipping the terminal. *)
  let col_of = Array.make n (-1) in
  let next_col = ref 0 in
  let by_row = Array.make n (-1) in
  Array.iteri (fun v r -> by_row.(r) <- v) row_of;
  Array.iter
    (fun v ->
       if v >= 0 && v <> bg.terminal then begin
         col_of.(v) <- !next_col;
         incr next_col
       end)
    by_row;
  let const_rows =
    List.filter_map
      (fun (o, r) ->
         match r with
         | Compact.Types.Const_false -> Some o
         | Compact.Types.Node _ -> None)
      bg.roots
  in
  let extra = List.length const_rows in
  let rows = n + extra in
  let cols = max !next_col 1 in
  let const_row_of = List.mapi (fun i o -> o, n + i) const_rows in
  let outputs =
    List.map
      (fun (o, r) ->
         match r with
         | Compact.Types.Node v -> o, Crossbar.Design.Row row_of.(v)
         | Compact.Types.Const_false ->
           o, Crossbar.Design.Row (List.assoc o const_row_of))
      bg.roots
  in
  let design =
    Crossbar.Design.create ~rows ~cols
      ~input:(Crossbar.Design.Row row_of.(bg.terminal))
      ~outputs
  in
  (* Diagonal fuses for every node that owns a bitline. *)
  for v = 0 to n - 1 do
    if col_of.(v) >= 0 then
      Crossbar.Design.set design ~row:row_of.(v) ~col:col_of.(v)
        Crossbar.Literal.On
  done;
  (* Edges: the terminal has no bitline, so orient those junctions onto
     the parent's bitline; otherwise use (row of u, col of v). *)
  List.iter
    (fun (u, v, lit) ->
       let r, c = if col_of.(v) >= 0 then u, v else v, u in
       Crossbar.Design.set design ~row:row_of.(r) ~col:col_of.(c) lit)
    bg.edge_literals;
  design

type result = {
  designs : Crossbar.Design.t list;
  merged : Crossbar.Design.t;
  total_bdd_nodes : int;
  total_bdd_edges : int;
  synthesis_time : float;
}

let synthesize ?order ?(node_limit = max_int) netlist =
  let start = Obs.Clock.now () in
  let sbdds = Bdd.Sbdd.of_netlist_separate ?order ~node_limit netlist in
  let graphs = List.map Compact.Preprocess.of_sbdd sbdds in
  let designs = List.map of_graph graphs in
  let total_bdd_nodes =
    List.fold_left
      (fun acc bg -> acc + Compact.Preprocess.num_bdd_nodes bg)
      0 graphs
  in
  let total_bdd_edges =
    List.fold_left
      (fun acc bg -> acc + Compact.Preprocess.num_bdd_edges bg)
      0 graphs
  in
  let merged = Compact.Pipeline.merge_diagonal designs in
  { designs; merged; total_bdd_nodes; total_bdd_edges;
    synthesis_time = Obs.Clock.now () -. start }
