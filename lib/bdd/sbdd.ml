type t = {
  man : Manager.t;
  input_order : string array;
  roots : (string * Manager.node) list;
}

let check_order (nl : Logic.Netlist.t) order =
  let sorted = List.sort String.compare in
  if sorted order <> sorted nl.inputs then
    invalid_arg "Sbdd: order is not a permutation of the netlist inputs"

let build_roots ?(budget = Resilience.Budget.unlimited) man ~levels
    (nl : Logic.Netlist.t) =
  let values = Hashtbl.create 64 in
  List.iter
    (fun v -> Hashtbl.replace values v (Manager.var man (Hashtbl.find levels v)))
    nl.inputs;
  let env w = Hashtbl.find values w in
  List.iter
    (fun (node : Logic.Netlist.node) ->
       (* One poll per netlist gate: BDD construction cannot return a
          partial diagram, so exhaustion raises instead of degrading. *)
       Resilience.Budget.check budget;
       Hashtbl.replace values node.wire (Build.expr_with_env man ~env node.func))
    nl.nodes;
  List.map (fun o -> o, env o) nl.outputs

let levels_of_order order =
  let levels = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace levels v i) order;
  levels

let of_netlist ?budget ?order ?(node_limit = max_int) (nl : Logic.Netlist.t) =
  let order = match order with Some o -> o | None -> Order.dfs_fanin nl in
  check_order nl order;
  let man = Manager.create ~node_limit ~num_vars:(List.length order) () in
  let levels = levels_of_order order in
  let roots = build_roots ?budget man ~levels nl in
  { man; input_order = Array.of_list order; roots }

let of_exprs ?order ?node_limit ~inputs named =
  let nodes =
    List.map (fun (name, e) -> Logic.Netlist.n_expr name e) named
  in
  let nl =
    Logic.Netlist.create ~name:"exprs" ~inputs
      ~outputs:(List.map fst named) nodes
  in
  of_netlist ?order ?node_limit nl

let of_netlist_separate ?order ?(node_limit = max_int) (nl : Logic.Netlist.t) =
  let order = match order with Some o -> o | None -> Order.dfs_fanin nl in
  check_order nl order;
  List.map
    (fun o ->
       let man = Manager.create ~node_limit ~num_vars:(List.length order) () in
       let levels = levels_of_order order in
       let single =
         Logic.Netlist.create ~name:(nl.name ^ "." ^ o) ~inputs:nl.inputs
           ~outputs:[ o ] nl.nodes
       in
       let roots = build_roots man ~levels single in
       { man; input_order = Array.of_list order; roots })
    nl.outputs

let size t = Manager.size t.man (List.map snd t.roots)
let stats t = Manager.stats t.man

(* In-place sifting: root handles survive, but the manager's levels are
   permuted, so the level -> input-name map is re-threaded through the
   returned permutation. The [input_order] array is mutated in place —
   every alias of this SBDD sees the new order, which is exactly what
   handle stability requires. *)
let sift ?budget ?max_growth ?max_passes t =
  let before = size t in
  let perm =
    Manager.sift_to_convergence ?budget ?max_growth ?max_passes t.man
      (List.map snd t.roots)
  in
  let old = Array.copy t.input_order in
  Array.iteri (fun lvl o -> t.input_order.(lvl) <- old.(o)) perm;
  (before, size t)

let num_edges t =
  let c = ref 0 in
  Manager.iter_edges t.man (List.map snd t.roots) (fun _ _ _ -> incr c);
  !c

let of_netlist_size ?order ~node_limit nl =
  match of_netlist ?order ~node_limit nl with
  | sbdd -> Some (size sbdd)
  | exception Manager.Size_limit _ -> None

let best_order ?(node_limit = max_int) nl =
  let candidates = Order.candidates nl in
  let best = ref None in
  let last = ref [] in
  List.iter
    (fun order ->
       last := order;
       match of_netlist_size ~order ~node_limit nl with
       | None -> ()
       | Some sz -> (
           match !best with
           | Some (_, best_sz) when best_sz <= sz -> ()
           | _ -> best := Some (order, sz)))
    candidates;
  match !best with Some r -> r | None -> !last, max_int

let level_of_input t v =
  let n = Array.length t.input_order in
  let rec go i =
    if i >= n then raise Not_found
    else if String.equal t.input_order.(i) v then i
    else go (i + 1)
  in
  go 0

let eval t env =
  let env_lvl lvl = env t.input_order.(lvl) in
  List.map (fun (o, root) -> o, Manager.eval t.man root env_lvl) t.roots

let to_truth_table t =
  let inputs = Array.to_list t.input_order in
  Logic.Truth_table.create ~inputs ~outputs:(List.map fst t.roots)
    (fun point ->
       let env_lvl lvl = point.(lvl) in
       Array.of_list
         (List.map (fun (_, root) -> Manager.eval t.man root env_lvl) t.roots))
