(** Shared binary decision diagrams (multi-rooted ROBDD forests).

    An SBDD holds one root per output of a multi-output function over a
    single manager, so structure common to several outputs is stored once
    (§VII-A of the paper). Building each output in its own manager instead
    yields the "multiple ROBDDs" mode the paper compares against
    (Table III) — see {!of_netlist_separate}. *)

type t = {
  man : Manager.t;
  input_order : string array;  (** level → primary-input name *)
  roots : (string * Manager.node) list;  (** output name → root, in order *)
}

val of_netlist :
  ?budget:Resilience.Budget.t ->
  ?order:string list ->
  ?node_limit:int ->
  Logic.Netlist.t ->
  t
(** Symbolic simulation of the netlist in topological order. [order]
    defaults to {!Order.dfs_fanin}. [budget] is polled once per netlist
    gate; a partial diagram is useless, so exhaustion raises.
    @raise Manager.Size_limit when the node budget is exhausted.
    @raise Resilience.Budget.Exhausted when [budget] runs out mid-build.
    @raise Invalid_argument if [order] is not a permutation of the
    inputs. *)

val of_exprs :
  ?order:string list ->
  ?node_limit:int ->
  inputs:string list ->
  (string * Logic.Expr.t) list ->
  t
(** Build directly from named output expressions. *)

val of_netlist_separate :
  ?order:string list -> ?node_limit:int -> Logic.Netlist.t -> t list
(** One single-output BDD (own manager) per output, all using the same
    global input order. *)

val best_order :
  ?node_limit:int -> Logic.Netlist.t -> string list * int
(** Try every {!Order.candidates} order and return the one whose SBDD is
    smallest, together with that size. Orders whose build exceeds
    [node_limit] are skipped; if all do, the last candidate is returned
    with [max_int]. *)

val size : t -> int
(** Distinct reachable nodes, including reached terminals. *)

val sift :
  ?budget:Resilience.Budget.t ->
  ?max_growth:float ->
  ?max_passes:int ->
  t ->
  int * int
(** In-place dynamic reordering ({!Manager.sift_to_convergence} seeded
    with this SBDD's roots). Root handles stay valid; [input_order] is
    permuted in place so level → input-name lookups remain correct.
    Any other handle into this manager is invalidated (the reordering
    session garbage-collects everything outside the roots' cone).
    Returns [(size_before, size_after)]; the budget is polled at swap
    boundaries and exhaustion just stops improving. *)

val stats : t -> Manager.stats
(** Unique-table / op-cache counters of the underlying manager. *)

val of_netlist_size :
  ?order:string list -> node_limit:int -> Logic.Netlist.t -> int option
(** [Some (size sbdd)] of the build, or [None] when it exceeds
    [node_limit] — the probe the order-search heuristics use. *)

val num_edges : t -> int
(** Decision edges of the reachable sub-diagram (2 per internal node). *)

val level_of_input : t -> string -> int
(** @raise Not_found for an unknown input. *)

val eval : t -> (string -> bool) -> (string * bool) list
(** Evaluate all outputs under an input assignment. *)

val to_truth_table : t -> Logic.Truth_table.t
(** Exhaustive tabulation over the input order (≤ 20 inputs). *)
