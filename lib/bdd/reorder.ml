type stats = {
  initial_size : int;
  final_size : int;
  evaluations : int;
  accepted : int;
}

let size_of ?(node_limit = max_int) nl order =
  Sbdd.of_netlist_size ~order ~node_limit nl

let anneal ?(seed = 0x0d4) ?(steps = 150) ?(budget = Resilience.Budget.unlimited)
    ?node_limit ?initial (nl : Logic.Netlist.t) =
  let rng = Random.State.make [| seed |] in
  let start_order =
    match initial with
    | Some order -> order
    | None -> fst (Sbdd.best_order ?node_limit nl)
  in
  let current = Array.of_list start_order in
  let n = Array.length current in
  let evaluations = ref 0 in
  let accepted = ref 0 in
  let score order =
    incr evaluations;
    size_of ?node_limit nl (Array.to_list order)
  in
  let initial_size =
    match score current with
    | Some s -> s
    | None -> max_int
  in
  let current_size = ref initial_size in
  let best = Array.copy current in
  let best_size = ref initial_size in
  if n >= 2 then begin
    (* Geometric cooling; temperature relative to the current size so the
       schedule is scale-free. *)
    let temperature = ref 0.05 in
    let step = ref 2 in
    while !step <= steps && not (Resilience.Budget.exhausted budget) do
      incr step;
      let candidate = Array.copy current in
      (match Random.State.int rng 3 with
       | 0 ->
         (* adjacent transposition (the sifting move) *)
         let i = Random.State.int rng (n - 1) in
         let tmp = candidate.(i) in
         candidate.(i) <- candidate.(i + 1);
         candidate.(i + 1) <- tmp
       | 1 ->
         (* random transposition *)
         let i = Random.State.int rng n and j = Random.State.int rng n in
         let tmp = candidate.(i) in
         candidate.(i) <- candidate.(j);
         candidate.(j) <- tmp
       | _ ->
         (* move one variable to a random position (a single sift) *)
         let i = Random.State.int rng n and j = Random.State.int rng n in
         let v = candidate.(i) in
         let without =
           Array.of_list
             (List.filteri (fun k _ -> k <> i) (Array.to_list candidate))
         in
         let j = min j (n - 2) in
         Array.blit without 0 candidate 0 j;
         candidate.(j) <- v;
         Array.blit without j candidate (j + 1) (n - 1 - j));
      match score candidate with
      | None -> ()
      | Some size ->
        let delta =
          float_of_int (size - !current_size)
          /. float_of_int (max 1 !current_size)
        in
        let accept =
          size <= !current_size
          || Random.State.float rng 1. < exp (-.delta /. !temperature)
        in
        if accept then begin
          incr accepted;
          Array.blit candidate 0 current 0 n;
          current_size := size;
          if size < !best_size then begin
            best_size := size;
            Array.blit candidate 0 best 0 n
          end
        end;
        temperature := !temperature *. 0.97
    done
  end;
  ( Array.to_list best,
    {
      initial_size;
      final_size = !best_size;
      evaluations = !evaluations;
      accepted = !accepted;
    } )

(* The dynamic-reordering default: build once under the best static
   candidate order, then sift in place. Unlike the anneal path this
   never rebuilds the SBDD per move, so it scales to the arith circuits
   where rebuild-scored search is the bottleneck. *)
let improve_sbdd ?budget ?node_limit nl =
  let order, _ = Sbdd.best_order ?node_limit nl in
  let sbdd = Sbdd.of_netlist ?budget ~order ?node_limit nl in
  ignore (Sbdd.sift ?budget sbdd : int * int);
  sbdd
