(** Hash-consed reduced ordered binary decision diagrams.

    A manager owns a fixed variable order (variable [i] is at level [i];
    smaller levels are closer to the roots) and a unique table, so
    structural equality of node handles coincides with functional
    equivalence — the classic ROBDD canonicity invariant. Complement edges
    are deliberately not used: the crossbar mapping needs the plain
    two-terminal diagram.

    Nodes are integer handles private to their manager. Handle [0] is the
    0-terminal and handle [1] the 1-terminal. *)

type t
(** A manager. *)

type node = int
(** Node handle; only meaningful together with its manager. *)

exception Size_limit of int
(** Raised by operations when the unique table would exceed the node
    budget given at creation. *)

type stats = {
  unique_lookups : int;  (** [mk] calls that consulted the unique table *)
  unique_hits : int;  (** lookups answered by an existing node *)
  unique_collisions : int;  (** linear-probe steps past occupied slots *)
  cache_lookups : int;  (** ITE / restrict / quantifier cache probes *)
  cache_hits : int;
  growths : int;  (** unique-table rehashes (the op caches grow along) *)
  peak_nodes : int;  (** [allocated], never decreases *)
  level_swaps : int;  (** adjacent-level exchanges done by reordering *)
  sift_passes : int;  (** full sifting passes over the variables *)
  cache_invalidations : int;
      (** op-cache wipes forced by reordering sessions *)
}
(** Counters of the packed unique table and the lossy direct-mapped
    operation caches; cheap to read at any time. *)

val create : ?node_limit:int -> num_vars:int -> unit -> t
(** [create ~num_vars ()] prepares a manager for variables
    [0 .. num_vars - 1]. [node_limit] (default: unlimited) bounds the
    total number of allocated nodes. *)

val num_vars : t -> int

val zero : node
val one : node
val is_terminal : node -> bool

val var : t -> int -> node
(** The projection function of variable [i].
    @raise Invalid_argument if [i] is out of range. *)

val nvar : t -> int -> node
(** Negated projection. *)

(** {1 Structure} *)

val level : t -> node -> int
(** Variable level of an internal node; [max_int] for terminals. *)

val low : t -> node -> node
(** Else-child (variable = 0).
    @raise Invalid_argument on terminals. *)

val high : t -> node -> node
(** Then-child (variable = 1).
    @raise Invalid_argument on terminals. *)

val allocated : t -> int
(** Number of nodes ever hash-consed (including both terminals). *)

(** {1 Boolean operations} (all memoised) *)

val ite : t -> node -> node -> node -> node
val not_ : t -> node -> node
val and_ : t -> node -> node -> node
val or_ : t -> node -> node -> node
val xor : t -> node -> node -> node
val xnor : t -> node -> node -> node
val nand : t -> node -> node -> node
val nor : t -> node -> node -> node
val imp : t -> node -> node -> node

val and_list : t -> node list -> node
val or_list : t -> node list -> node

val restrict : t -> node -> var:int -> bool -> node
(** Cofactor with respect to one variable. *)

val exists : t -> var:int -> node -> node
val forall : t -> var:int -> node -> node

(** {1 Queries} *)

val eval : t -> node -> (int -> bool) -> bool
(** Evaluate under an assignment of the variables. *)

val support : t -> node -> int list
(** Sorted list of variable levels the function depends on. *)

val sat_count : t -> node -> nvars:int -> float
(** Number of satisfying assignments over [nvars] variables. *)

val any_sat : t -> node -> (int * bool) list option
(** One satisfying partial assignment (level, value), or [None] for the
    constant-0 function. *)

val reachable : t -> node list -> node list
(** All distinct nodes reachable from the given roots (including
    terminals that are reached), in depth-first discovery order. *)

val size : t -> node list -> int
(** [List.length (reachable t roots)]. *)

val iter_edges : t -> node list -> (node -> node -> bool -> unit) -> unit
(** [iter_edges t roots f] calls [f parent child is_then] once per decision
    edge of the sub-diagram reachable from [roots]. *)

val clear_caches : t -> unit
(** Drop operation memo tables (the unique table is kept). *)

(** {1 Dynamic reordering}

    In-place Rudell sifting over the packed arrays: adjacent-level
    exchanges rewrite only the two affected unique-table levels, so a
    sift costs swaps proportional to the diagram instead of full
    rebuilds per candidate order.

    {b Contract.} [roots] must cover {e every} handle the caller intends
    to keep using: reordering garbage-collects the rest of the manager
    (handles outside the cone of [roots] become invalid), and the lossy
    operation caches are dropped.  Handles in the cone stay valid but
    their meaning is permuted — after the call, the variable at level
    [l] is the one that was at level [perm.(l)] when the call began,
    where [perm] is the returned permutation.  Callers that name
    variables re-map their own tables ([Sbdd.sift] permutes
    [input_order]). *)

val sift :
  ?budget:Resilience.Budget.t -> ?max_growth:float -> t -> node list ->
  int array
(** One sifting pass: each variable (largest level population first,
    original index breaking ties) moves to its locally best level.
    [max_growth] (default 1.2) aborts a direction of exploration once
    the diagram exceeds that ratio of the best size seen.  The budget is
    polled at swap boundaries; exhaustion stops exploring but still
    settles on the best position found, so the diagram is always left
    consistent.  Returns the level permutation. *)

val sift_to_convergence :
  ?budget:Resilience.Budget.t ->
  ?max_growth:float ->
  ?max_passes:int ->
  t ->
  node list ->
  int array
(** Repeat sifting passes until a pass fails to shrink the diagram, up
    to [max_passes] (default 8). Returns the accumulated permutation. *)

(** {1 Instrumentation} *)

val stats : t -> stats
(** Snapshot of the table / cache counters accumulated since [create]. *)

val pp_stats : Format.formatter -> stats -> unit
