(** Variable-order optimisation.

    The default path is CUDD-style dynamic reordering: build the SBDD
    once (best static candidate order) and run in-place Rudell sifting
    over the packed arrays ({!Manager.sift_to_convergence} via
    {!Sbdd.sift}), so each move costs an adjacent-level exchange instead
    of a full rebuild — this is what makes the arith multiplier and
    comparator sizes tractable.

    {!anneal} keeps the older simulated-annealing search over
    permutations, scoring each candidate by rebuilding the SBDD. It
    explores a wider neighbourhood (random transpositions and single
    moves, not just adjacent swaps) and is retained as a cross-check for
    sifting ([--reorder anneal]) and for small netlists where rebuild
    cost is negligible. *)

type stats = {
  initial_size : int;
  final_size : int;
  evaluations : int;  (** SBDD rebuilds performed *)
  accepted : int;  (** accepted moves *)
}

val anneal :
  ?seed:int ->
  ?steps:int ->
  ?budget:Resilience.Budget.t ->
  ?node_limit:int ->
  ?initial:string list ->
  Logic.Netlist.t ->
  string list * stats
(** [anneal nl] searches for a small-SBDD variable order starting from
    [initial] (default: the best {!Order.candidates} order). [steps]
    (default 150) bounds the number of rebuilds; [budget] (default
    unlimited), polled once per move, can stop the search earlier with
    the best order found so far. The returned order is never worse than
    the starting one. *)

val improve_sbdd :
  ?budget:Resilience.Budget.t ->
  ?node_limit:int ->
  Logic.Netlist.t ->
  Sbdd.t
(** Build under the best static candidate order, then sift in place
    ({!Sbdd.sift}) — no per-move rebuilds. The budget covers both the
    build (raises on exhaustion, as any build does) and the sift (which
    just stops improving). *)
