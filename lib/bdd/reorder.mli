(** Variable-order optimisation by local search.

    CUDD improves orders dynamically (sifting); here the same end is
    reached by a simulated-annealing search over permutations, scoring
    each candidate by rebuilding the SBDD (hash-consed construction is
    fast at the sizes where order search matters). Moves are adjacent
    transpositions and random block rotations — the neighbourhood sifting
    explores, without the in-place level-swap machinery.

    Intended for small/medium netlists (rebuild cost × steps); callers
    gate it by size. *)

type stats = {
  initial_size : int;
  final_size : int;
  evaluations : int;  (** SBDD rebuilds performed *)
  accepted : int;  (** accepted moves *)
}

val anneal :
  ?seed:int ->
  ?steps:int ->
  ?budget:Resilience.Budget.t ->
  ?node_limit:int ->
  ?initial:string list ->
  Logic.Netlist.t ->
  string list * stats
(** [anneal nl] searches for a small-SBDD variable order starting from
    [initial] (default: the best {!Order.candidates} order). [steps]
    (default 150) bounds the number of rebuilds; [budget] (default
    unlimited), polled once per move, can stop the search earlier with
    the best order found so far. The returned order is never worse than
    the starting one. *)

val improve_sbdd :
  ?seed:int ->
  ?steps:int ->
  ?budget:Resilience.Budget.t ->
  ?node_limit:int ->
  Logic.Netlist.t ->
  Sbdd.t
(** Convenience: run {!anneal} and build the SBDD under the winning
    order (the final build shares the same [budget]). *)
