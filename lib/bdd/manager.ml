type node = int

exception Size_limit of int

type stats = {
  unique_lookups : int;
  unique_hits : int;
  unique_collisions : int;
  cache_lookups : int;
  cache_hits : int;
  growths : int;
  peak_nodes : int;
  level_swaps : int;
  sift_passes : int;
  cache_invalidations : int;
}

(* The manager is laid out CUDD-style for cache locality and zero
   per-operation allocation:

   - Nodes live in growable parallel arrays indexed by handle; handles 0
     and 1 are the terminals, their level is max_int so they sort below
     every variable.
   - The unique table is an open-addressed (linear probing) power-of-two
     array of node handles; a (level, low, high) key is never boxed — the
     probe compares against the node arrays directly.
   - The ITE cache is a lossy direct-mapped table of packed (f, g, h) -> r
     quadruples in four flat int arrays; a colliding entry is simply
     overwritten. Restrict/quantifier results share a second direct-mapped
     cache keyed by (node, packed var/op).
   - ite and restrict run on an explicit worklist (a reusable int-array
     frame stack), so diagrams tens of thousands of levels deep cannot
     overflow the OCaml stack. *)

type t = {
  nvars : int;
  node_limit : int;
  mutable levels : int array;
  mutable lows : int array;
  mutable highs : int array;
  mutable next : int;  (* next free handle *)
  (* open-addressed unique table; slots hold a node handle or -1 *)
  mutable table : int array;
  mutable table_mask : int;
  (* direct-mapped ITE cache; ite_k1 = -1 marks an empty slot *)
  mutable ite_k1 : int array;
  mutable ite_k2 : int array;
  mutable ite_k3 : int array;
  mutable ite_r : int array;
  mutable ite_mask : int;
  (* direct-mapped binary-op cache (restrict / quantify) *)
  mutable bop_k1 : int array;
  mutable bop_k2 : int array;
  mutable bop_r : int array;
  mutable bop_mask : int;
  (* reusable worklist scratch: frames of [frame_slots] ints + a result
     stack *)
  mutable tasks : int array;
  mutable task_sp : int;
  mutable res : int array;
  mutable res_sp : int;
  (* counters behind [stats] *)
  mutable unique_lookups : int;
  mutable unique_hits : int;
  mutable unique_collisions : int;
  mutable cache_lookups : int;
  mutable cache_hits : int;
  mutable growths : int;
  mutable level_swaps : int;
  mutable sift_passes : int;
  mutable cache_invalidations : int;
  (* true while the lossy op caches are known empty, so a burst of level
     swaps pays for at most one invalidation *)
  mutable caches_clean : bool;
}

let zero = 0
let one = 1
let is_terminal n = n < 2

let initial_table_size = 4096
let initial_ite_size = 4096
let initial_bop_size = 1024

let create ?(node_limit = max_int) ~num_vars () =
  let cap = 1024 in
  let levels = Array.make cap max_int in
  let lows = Array.make cap (-1) in
  let highs = Array.make cap (-1) in
  {
    nvars = num_vars;
    node_limit;
    levels;
    lows;
    highs;
    next = 2;
    table = Array.make initial_table_size (-1);
    table_mask = initial_table_size - 1;
    ite_k1 = Array.make initial_ite_size (-1);
    ite_k2 = Array.make initial_ite_size 0;
    ite_k3 = Array.make initial_ite_size 0;
    ite_r = Array.make initial_ite_size 0;
    ite_mask = initial_ite_size - 1;
    bop_k1 = Array.make initial_bop_size (-1);
    bop_k2 = Array.make initial_bop_size 0;
    bop_r = Array.make initial_bop_size 0;
    bop_mask = initial_bop_size - 1;
    tasks = Array.make 320 0;
    task_sp = 0;
    res = Array.make 64 0;
    res_sp = 0;
    unique_lookups = 0;
    unique_hits = 0;
    unique_collisions = 0;
    cache_lookups = 0;
    cache_hits = 0;
    growths = 0;
    level_swaps = 0;
    sift_passes = 0;
    cache_invalidations = 0;
    caches_clean = true;
  }

let num_vars t = t.nvars
let allocated t = t.next

let stats t =
  {
    unique_lookups = t.unique_lookups;
    unique_hits = t.unique_hits;
    unique_collisions = t.unique_collisions;
    cache_lookups = t.cache_lookups;
    cache_hits = t.cache_hits;
    growths = t.growths;
    peak_nodes = t.next;
    level_swaps = t.level_swaps;
    sift_passes = t.sift_passes;
    cache_invalidations = t.cache_invalidations;
  }

let pp_stats ppf (s : stats) =
  let pct part whole =
    if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole
  in
  Format.fprintf ppf
    "@[<v>unique table: %d lookups, %d hits (%.1f%%), %d collisions, %d \
     growths@,\
     op caches: %d lookups, %d hits (%.1f%%), %d invalidations@,\
     reordering: %d level swaps, %d sift passes@,\
     peak nodes: %d@]"
    s.unique_lookups s.unique_hits
    (pct s.unique_hits s.unique_lookups)
    s.unique_collisions s.growths s.cache_lookups s.cache_hits
    (pct s.cache_hits s.cache_lookups)
    s.cache_invalidations s.level_swaps s.sift_passes s.peak_nodes

(* Multiplicative triple mix; the low bits index the power-of-two tables. *)
let hash3 a b c =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA6B) lxor (c * 0xC2B2AE35) in
  let h = h lxor (h lsr 15) in
  h * 0x27D4EB2F

let grow_nodes t =
  (* Chaos-battery checkpoint: table doubling is the manager's big
     allocation, so an injected allocation failure surfaces here. *)
  Resilience.Inject.oom ();
  let cap = Array.length t.levels in
  let bigger a fill =
    let b = Array.make (2 * cap) fill in
    Array.blit a 0 b 0 cap;
    b
  in
  t.levels <- bigger t.levels max_int;
  t.lows <- bigger t.lows (-1);
  t.highs <- bigger t.highs (-1)

(* Cache growth keeps the live entries: direct-mapped insertion into the
   doubled arrays, so a rehash does not throw memoised work away. *)
let grow_ite_cache t size =
  if size > Array.length t.ite_r then begin
    let mask = size - 1 in
    let k1 = Array.make size (-1) in
    let k2 = Array.make size 0 in
    let k3 = Array.make size 0 in
    let r = Array.make size 0 in
    for i = 0 to Array.length t.ite_r - 1 do
      let f = t.ite_k1.(i) in
      if f <> -1 then begin
        let j = hash3 f t.ite_k2.(i) t.ite_k3.(i) land mask in
        k1.(j) <- f;
        k2.(j) <- t.ite_k2.(i);
        k3.(j) <- t.ite_k3.(i);
        r.(j) <- t.ite_r.(i)
      end
    done;
    t.ite_k1 <- k1;
    t.ite_k2 <- k2;
    t.ite_k3 <- k3;
    t.ite_r <- r;
    t.ite_mask <- mask
  end

let grow_bop_cache t size =
  if size > Array.length t.bop_r then begin
    let mask = size - 1 in
    let k1 = Array.make size (-1) in
    let k2 = Array.make size 0 in
    let r = Array.make size 0 in
    for i = 0 to Array.length t.bop_r - 1 do
      let f = t.bop_k1.(i) in
      if f <> -1 then begin
        let j = hash3 f t.bop_k2.(i) 0 land mask in
        k1.(j) <- f;
        k2.(j) <- t.bop_k2.(i);
        r.(j) <- t.bop_r.(i)
      end
    done;
    t.bop_k1 <- k1;
    t.bop_k2 <- k2;
    t.bop_r <- r;
    t.bop_mask <- mask
  end

let rehash_unique t =
  let size = 2 * (t.table_mask + 1) in
  let mask = size - 1 in
  let table = Array.make size (-1) in
  for n = 2 to t.next - 1 do
    (* level -1 marks a node killed by reordering: its slot is dead and
       must never be resurrected into the table with its stale
       pre-swap structure *)
    if t.levels.(n) >= 0 then begin
      let i = ref (hash3 t.levels.(n) t.lows.(n) t.highs.(n) land mask) in
      while table.(!i) <> -1 do
        i := (!i + 1) land mask
      done;
      table.(!i) <- n
    end
  done;
  t.table <- table;
  t.table_mask <- mask;
  t.growths <- t.growths + 1;
  (* op caches track the unique table so hit rates survive scale *)
  grow_ite_cache t (size / 2);
  grow_bop_cache t (size / 8)

(* Returns -n when node n already exists, or the (non-negative) free slot
   where a fresh node must be recorded. Handles are >= 2, so the sign
   disambiguates. *)
let rec probe t lvl lo hi i =
  let n = Array.unsafe_get t.table i in
  if n = -1 then i
  else if
    Array.unsafe_get t.levels n = lvl
    && Array.unsafe_get t.lows n = lo
    && Array.unsafe_get t.highs n = hi
  then -n
  else begin
    t.unique_collisions <- t.unique_collisions + 1;
    probe t lvl lo hi ((i + 1) land t.table_mask)
  end

(* The single reduction point: no node with equal children, and full
   sharing through the unique table. *)
let mk t lvl lo hi =
  if lo = hi then lo
  else begin
    t.unique_lookups <- t.unique_lookups + 1;
    let p = probe t lvl lo hi (hash3 lvl lo hi land t.table_mask) in
    if p < 0 then begin
      t.unique_hits <- t.unique_hits + 1;
      -p
    end
    else begin
      if t.next >= t.node_limit then raise (Size_limit t.node_limit);
      if t.next >= Array.length t.levels then grow_nodes t;
      let n = t.next in
      t.next <- n + 1;
      t.levels.(n) <- lvl;
      t.lows.(n) <- lo;
      t.highs.(n) <- hi;
      t.table.(p) <- n;
      if 4 * (t.next - 2) > 3 * (t.table_mask + 1) then rehash_unique t;
      n
    end
  end

let level t n = t.levels.(n)

let low t n =
  if is_terminal n then invalid_arg "Bdd.Manager.low: terminal";
  t.lows.(n)

let high t n =
  if is_terminal n then invalid_arg "Bdd.Manager.high: terminal";
  t.highs.(n)

let var t i =
  if i < 0 || i >= t.nvars then invalid_arg "Bdd.Manager.var: out of range";
  mk t i zero one

let nvar t i =
  if i < 0 || i >= t.nvars then invalid_arg "Bdd.Manager.nvar: out of range";
  mk t i one zero

(* ------------------------------------------------------------------ *)
(* Worklist machinery. Frames are [frame_slots] consecutive ints:
   [tag; a; b; c; lvl]. Tag 0 evaluates the operands, tag 1 combines the
   two results its children pushed. Both stacks are owned by the manager
   and reused across calls; the base pointers make nested calls (mk never
   re-enters, but exceptions must unwind) safe. *)

let frame_slots = 5

let push_task t tag a b c lvl =
  let sp = t.task_sp in
  if sp + frame_slots > Array.length t.tasks then begin
    let bigger = Array.make (2 * Array.length t.tasks) 0 in
    Array.blit t.tasks 0 bigger 0 sp;
    t.tasks <- bigger
  end;
  let tasks = t.tasks in
  Array.unsafe_set tasks sp tag;
  Array.unsafe_set tasks (sp + 1) a;
  Array.unsafe_set tasks (sp + 2) b;
  Array.unsafe_set tasks (sp + 3) c;
  Array.unsafe_set tasks (sp + 4) lvl;
  t.task_sp <- sp + frame_slots

let push_res t r =
  let sp = t.res_sp in
  if sp >= Array.length t.res then begin
    let bigger = Array.make (2 * Array.length t.res) 0 in
    Array.blit t.res 0 bigger 0 sp;
    t.res <- bigger
  end;
  t.res.(sp) <- r;
  t.res_sp <- sp + 1

let ite_cached t f g h =
  t.cache_lookups <- t.cache_lookups + 1;
  let i = hash3 f g h land t.ite_mask in
  if
    Array.unsafe_get t.ite_k1 i = f
    && Array.unsafe_get t.ite_k2 i = g
    && Array.unsafe_get t.ite_k3 i = h
  then begin
    t.cache_hits <- t.cache_hits + 1;
    Array.unsafe_get t.ite_r i
  end
  else -1

let ite_insert t f g h r =
  let i = hash3 f g h land t.ite_mask in
  t.ite_k1.(i) <- f;
  t.ite_k2.(i) <- g;
  t.ite_k3.(i) <- h;
  t.ite_r.(i) <- r;
  t.caches_clean <- false

let bop_cached t k1 k2 =
  t.cache_lookups <- t.cache_lookups + 1;
  let i = hash3 k1 k2 0 land t.bop_mask in
  if Array.unsafe_get t.bop_k1 i = k1 && Array.unsafe_get t.bop_k2 i = k2
  then begin
    t.cache_hits <- t.cache_hits + 1;
    Array.unsafe_get t.bop_r i
  end
  else -1

let bop_insert t k1 k2 r =
  let i = hash3 k1 k2 0 land t.bop_mask in
  t.bop_k1.(i) <- k1;
  t.bop_k2.(i) <- k2;
  t.bop_r.(i) <- r;
  t.caches_clean <- false

(* Top-level ITE invocations (not worklist steps). The disabled path is
   a single load-and-branch, guarded by the PR's bench overhead gate. *)
let c_ite = Obs.Counter.make "bdd.ite_calls"

let ite t f0 g0 h0 =
  Obs.Counter.incr c_ite;
  let base_sp = t.task_sp and base_rp = t.res_sp in
  try
    push_task t 0 f0 g0 h0 0;
    while t.task_sp > base_sp do
      let sp = t.task_sp - frame_slots in
      t.task_sp <- sp;
      let tasks = t.tasks in
      let tag = Array.unsafe_get tasks sp in
      let f = Array.unsafe_get tasks (sp + 1) in
      let g = Array.unsafe_get tasks (sp + 2) in
      let h = Array.unsafe_get tasks (sp + 3) in
      if tag = 0 then begin
        (* Terminal cases. *)
        if f = one then push_res t g
        else if f = zero then push_res t h
        else if g = h then push_res t g
        else if g = one && h = zero then push_res t f
        else begin
          let r = ite_cached t f g h in
          if r >= 0 then push_res t r
          else begin
            let lf = t.levels.(f) and lg = t.levels.(g) and lh = t.levels.(h) in
            let lvl = min lf (min lg lh) in
            let f0 = if lf = lvl then t.lows.(f) else f
            and f1 = if lf = lvl then t.highs.(f) else f
            and g0 = if lg = lvl then t.lows.(g) else g
            and g1 = if lg = lvl then t.highs.(g) else g
            and h0 = if lh = lvl then t.lows.(h) else h
            and h1 = if lh = lvl then t.highs.(h) else h in
            push_task t 1 f g h lvl;
            push_task t 0 f0 g0 h0 0;
            (* the then-branch sits on top, so it is evaluated first *)
            push_task t 0 f1 g1 h1 0
          end
        end
      end
      else begin
        let lvl = Array.unsafe_get tasks (sp + 4) in
        let r_lo = t.res.(t.res_sp - 1) and r_hi = t.res.(t.res_sp - 2) in
        t.res_sp <- t.res_sp - 2;
        let r = mk t lvl r_lo r_hi in
        ite_insert t f g h r;
        push_res t r
      end
    done;
    t.res_sp <- base_rp;
    t.res.(base_rp)
  with e ->
    t.task_sp <- base_sp;
    t.res_sp <- base_rp;
    raise e

let not_ t f = ite t f zero one
let and_ t f g = ite t f g zero
let or_ t f g = ite t f one g
let xor t f g = ite t f (not_ t g) g
let xnor t f g = ite t f g (not_ t g)
let nand t f g = not_ t (and_ t f g)
let nor t f g = not_ t (or_ t f g)
let imp t f g = ite t f g one
let and_list t fs = List.fold_left (and_ t) one fs
let or_list t fs = List.fold_left (or_ t) zero fs

(* Binary-op cache keys: bit 1 selects restrict (0) vs quantify (1), bit 0
   carries the branch / connective, the rest is the variable level. *)
let restrict_key v b = (v lsl 2) lor if b then 1 else 0
let quant_key v conj = (v lsl 2) lor 2 lor if conj then 1 else 0

let restrict t root ~var:v b =
  if is_terminal root || t.levels.(root) > v then root
  else begin
    let key = restrict_key v b in
    let base_sp = t.task_sp and base_rp = t.res_sp in
    try
      push_task t 0 root 0 0 0;
      while t.task_sp > base_sp do
        let sp = t.task_sp - frame_slots in
        t.task_sp <- sp;
        let tag = t.tasks.(sp) and f = t.tasks.(sp + 1) in
        if tag = 0 then begin
          if is_terminal f || t.levels.(f) > v then push_res t f
          else if t.levels.(f) = v then
            push_res t (if b then t.highs.(f) else t.lows.(f))
          else begin
            let r = bop_cached t f key in
            if r >= 0 then push_res t r
            else begin
              push_task t 1 f 0 0 0;
              push_task t 0 t.lows.(f) 0 0 0;
              push_task t 0 t.highs.(f) 0 0 0
            end
          end
        end
        else begin
          let r_lo = t.res.(t.res_sp - 1) and r_hi = t.res.(t.res_sp - 2) in
          t.res_sp <- t.res_sp - 2;
          let r = mk t t.levels.(f) r_lo r_hi in
          bop_insert t f key r;
          push_res t r
        end
      done;
      t.res_sp <- base_rp;
      t.res.(base_rp)
    with e ->
      t.task_sp <- base_sp;
      t.res_sp <- base_rp;
      raise e
  end

let quantify t ~var:v ~conj f =
  let key = quant_key v conj in
  let r = bop_cached t f key in
  if r >= 0 then r
  else begin
    let f0 = restrict t f ~var:v false in
    let f1 = restrict t f ~var:v true in
    let r = if conj then and_ t f0 f1 else or_ t f0 f1 in
    bop_insert t f key r;
    r
  end

let exists t ~var f = quantify t ~var ~conj:false f
let forall t ~var f = quantify t ~var ~conj:true f

let rec eval t f env =
  if f = zero then false
  else if f = one then true
  else if env (t.levels.(f)) then eval t t.highs.(f) env
  else eval t t.lows.(f) env

(* Pre-order DFS (low child first), iterative so that diagrams deeper than
   the OCaml stack still enumerate. *)
let reachable t roots =
  let seen = Bytes.make (max t.next 2) '\000' in
  let order = ref [] in
  let rec loop = function
    | [] -> ()
    | n :: rest ->
      if Bytes.get seen n = '\001' then loop rest
      else begin
        Bytes.set seen n '\001';
        order := n :: !order;
        if is_terminal n then loop rest
        else loop (t.lows.(n) :: t.highs.(n) :: rest)
      end
  in
  loop roots;
  List.rev !order

let size t roots = List.length (reachable t roots)

let iter_edges t roots f =
  List.iter
    (fun n ->
       if not (is_terminal n) then begin
         f n t.lows.(n) false;
         f n t.highs.(n) true
       end)
    (reachable t roots)

let support t f =
  let module IS = Set.Make (Int) in
  let vars = ref IS.empty in
  List.iter
    (fun n -> if not (is_terminal n) then vars := IS.add t.levels.(n) !vars)
    (reachable t [ f ]);
  IS.elements !vars

let sat_count t f ~nvars =
  let memo = Hashtbl.create 256 in
  (* count f = #assignments of variables at levels >= level(f). *)
  let rec go f =
    if f = zero then 0.
    else if f = one then 1.
    else
      match Hashtbl.find_opt memo f with
      | Some c -> c
      | None ->
        let lvl = t.levels.(f) in
        let child g =
          let lg = min t.levels.(g) nvars in
          go g *. (2. ** float_of_int (lg - lvl - 1))
        in
        let c = child t.lows.(f) +. child t.highs.(f) in
        Hashtbl.replace memo f c;
        c
  in
  let lf = min t.levels.(f) nvars in
  go f *. (2. ** float_of_int lf)

let any_sat t f =
  if f = zero then None
  else
    let rec go f acc =
      if f = one then List.rev acc
      else
        let v = t.levels.(f) in
        if t.highs.(f) <> zero then go t.highs.(f) ((v, true) :: acc)
        else go t.lows.(f) ((v, false) :: acc)
    in
    Some (go f [])

let clear_caches t =
  Array.fill t.ite_k1 0 (Array.length t.ite_k1) (-1);
  Array.fill t.bop_k1 0 (Array.length t.bop_k1) (-1);
  t.caches_clean <- true

(* ------------------------------------------------------------------ *)
(* In-place dynamic reordering (adjacent-level exchange + Rudell
   sifting).

   An exchange of levels [i] and [i+1] rewrites only the nodes at those
   two levels, in place over the packed arrays: every handle keeps
   denoting the same Boolean function modulo the variable exchange, so
   root handles stay valid and the levels above and below are untouched.
   The caller receives the accumulated level permutation and re-maps
   whatever it keyed by level ([Sbdd] permutes its [input_order]).

   Case analysis for one exchange (upper = live nodes at level i, lower
   = live nodes at level i+1):

   - an upper node with no child at level i+1 ("independent") still
     tests the same variable, which now lives at level i+1: it is
     relabelled and rehashed, keeping its handle;
   - a dependent upper node [f = A ? f1 : f0] is restructured in place
     to test the other variable on top: [f = B ? (A ? f11 : f01)
     : (A ? f10 : f00)], its two fresh-or-shared children created at
     level i+1 through the unique table;
   - a lower node still referenced afterwards (from above level i, or a
     root) keeps its structure and moves to level i; one referenced only
     through the old cofactor edges dies: it is removed from the table
     (backward-shift deletion), marked dead with level -1, and its slot
     is never reused — [rehash_unique] skips dead slots so a stale
     structure can never be resurrected.

   The lossy op caches mix pre- and post-exchange meanings of dead
   handles, so a reordering session invalidates them (once per burst,
   counted in [cache_invalidations]).  Array and table growth happen
   before any node is touched, so the only allocation points (including
   the injected-OOM checkpoint) see a consistent diagram.

   The session's reference counts are seeded from [roots]; any handle
   not in the cone of [roots] is treated as garbage and invalidated. *)

type session = {
  m : t;
  mutable rc : int array;  (* per-handle refcounts, roots get +1 *)
  perm : int array;  (* perm.(lvl) = session-start level now living at lvl *)
  mutable live : int;  (* live internal nodes *)
}

(* Raw table insertion: the key is known absent, find the free slot. *)
let table_insert t n =
  let mask = t.table_mask in
  let i = ref (hash3 t.levels.(n) t.lows.(n) t.highs.(n) land mask) in
  while t.table.(!i) <> -1 do
    i := (!i + 1) land mask
  done;
  t.table.(!i) <- n

(* Backward-shift deletion for linear probing: after emptying n's slot,
   slide the rest of the cluster back so no probe sequence crosses a
   hole it should not. *)
let table_remove t n =
  let mask = t.table_mask in
  let i = ref (hash3 t.levels.(n) t.lows.(n) t.highs.(n) land mask) in
  while t.table.(!i) <> n do
    i := (!i + 1) land mask
  done;
  t.table.(!i) <- -1;
  let j = ref ((!i + 1) land mask) in
  while t.table.(!j) <> -1 do
    let m = t.table.(!j) in
    let home = hash3 t.levels.(m) t.lows.(m) t.highs.(m) land mask in
    if (!j - home) land mask >= (!j - !i) land mask then begin
      t.table.(!i) <- m;
      t.table.(!j) <- -1;
      i := !j
    end;
    j := (!j + 1) land mask
  done

let invalidate_for_reorder t =
  if not t.caches_clean then begin
    t.cache_invalidations <- t.cache_invalidations + 1;
    clear_caches t
  end

let open_session t roots =
  invalidate_for_reorder t;
  let rc = Array.make (Array.length t.levels) 0 in
  let mark = Bytes.make (max t.next 2) '\000' in
  let rec visit = function
    | [] -> ()
    | n :: rest ->
      if is_terminal n || Bytes.get mark n = '\001' then visit rest
      else begin
        Bytes.set mark n '\001';
        let lo = t.lows.(n) and hi = t.highs.(n) in
        if not (is_terminal lo) then rc.(lo) <- rc.(lo) + 1;
        if not (is_terminal hi) then rc.(hi) <- rc.(hi) + 1;
        visit (lo :: hi :: rest)
      end
  in
  visit roots;
  List.iter (fun r -> if not (is_terminal r) then rc.(r) <- rc.(r) + 1) roots;
  (* Table hygiene: drop allocated-but-unreachable nodes so an exchange
     can never find (and share) a stale structure through the table. *)
  let live = ref 0 in
  for n = 2 to t.next - 1 do
    if t.levels.(n) >= 0 then begin
      if Bytes.get mark n = '\001' then incr live
      else begin
        table_remove t n;
        t.levels.(n) <- -1
      end
    end
  done;
  { m = t; rc; perm = Array.init t.nvars (fun l -> l); live = !live }

(* Grow node arrays and unique table ahead of an exchange so nothing
   allocates (or hits the injected-OOM checkpoint) mid-rewrite. *)
let ensure_swap_capacity s extra =
  let t = s.m in
  while t.next + extra > Array.length t.levels do
    grow_nodes t
  done;
  while 4 * (t.next + extra - 2) > 3 * (t.table_mask + 1) do
    rehash_unique t
  done;
  if Array.length s.rc < Array.length t.levels then begin
    let bigger = Array.make (Array.length t.levels) 0 in
    Array.blit s.rc 0 bigger 0 (Array.length s.rc);
    s.rc <- bigger
  end

let swap_adjacent s i =
  let t = s.m in
  let upper = ref [] and lower = ref [] in
  for n = t.next - 1 downto 2 do
    if s.rc.(n) > 0 then
      if t.levels.(n) = i then upper := n :: !upper
      else if t.levels.(n) = i + 1 then lower := n :: !lower
  done;
  let upper = !upper and lower = !lower in
  if upper <> [] || lower <> [] then begin
    ensure_swap_capacity s (2 * List.length upper);
    (* 1. Detach both levels: their keys are about to change, and a
       detached lower node cannot be found with its pre-exchange
       meaning while fresh children are interned. *)
    List.iter (fun n -> table_remove t n) upper;
    List.iter (fun n -> table_remove t n) lower;
    (* Drop one reference; a node whose last reference this was dies
       and cascades. Dying lower nodes are already detached. *)
    let rec deref n =
      if not (is_terminal n) then begin
        s.rc.(n) <- s.rc.(n) - 1;
        if s.rc.(n) = 0 then begin
          if t.levels.(n) > i + 1 then table_remove t n;
          s.live <- s.live - 1;
          let lo = t.lows.(n) and hi = t.highs.(n) in
          t.levels.(n) <- -1;
          deref lo;
          deref hi
        end
      end
    in
    (* 2. Independent upper nodes keep their variable, which now lives
       at level i+1. Moving them first lets step 3 share them. *)
    let dependent = ref [] in
    List.iter
      (fun n ->
         let lo = t.lows.(n) and hi = t.highs.(n) in
         if t.levels.(lo) = i + 1 || t.levels.(hi) = i + 1 then
           dependent := n :: !dependent
         else begin
           t.levels.(n) <- i + 1;
           table_insert t n
         end)
      upper;
    let dependent = List.rev !dependent in
    (* Intern a level-(i+1) node for the restructuring, taking a
       reference. Capacity was assured above, so nothing allocates. *)
    let mk_swap lo hi =
      if lo = hi then begin
        if not (is_terminal lo) then s.rc.(lo) <- s.rc.(lo) + 1;
        lo
      end
      else begin
        t.unique_lookups <- t.unique_lookups + 1;
        let p = probe t (i + 1) lo hi (hash3 (i + 1) lo hi land t.table_mask) in
        if p < 0 then begin
          t.unique_hits <- t.unique_hits + 1;
          s.rc.(-p) <- s.rc.(-p) + 1;
          -p
        end
        else begin
          let n = t.next in
          t.next <- n + 1;
          t.levels.(n) <- i + 1;
          t.lows.(n) <- lo;
          t.highs.(n) <- hi;
          t.table.(p) <- n;
          s.rc.(n) <- 1;
          if not (is_terminal lo) then s.rc.(lo) <- s.rc.(lo) + 1;
          if not (is_terminal hi) then s.rc.(hi) <- s.rc.(hi) + 1;
          s.live <- s.live + 1;
          n
        end
      end
    in
    (* 3. Restructure dependent upper nodes in place: the handle stays,
       the node now tests the other variable on top. *)
    List.iter
      (fun n ->
         let f0 = t.lows.(n) and f1 = t.highs.(n) in
         let f00, f01 =
           if t.levels.(f0) = i + 1 then (t.lows.(f0), t.highs.(f0))
           else (f0, f0)
         and f10, f11 =
           if t.levels.(f1) = i + 1 then (t.lows.(f1), t.highs.(f1))
           else (f1, f1)
         in
         let g0 = mk_swap f00 f10 in
         let g1 = mk_swap f01 f11 in
         t.lows.(n) <- g0;
         t.highs.(n) <- g1;
         table_insert t n;
         deref f0;
         deref f1)
      dependent;
    (* 4. Lower nodes still referenced (crossing edges from above level
       i, or roots) keep their structure and move up to level i; the
       ones that died in step 3 are already marked. *)
    List.iter
      (fun n ->
         if s.rc.(n) > 0 then begin
           t.levels.(n) <- i;
           table_insert t n
         end)
      lower
  end;
  let tmp = s.perm.(i) in
  s.perm.(i) <- s.perm.(i + 1);
  s.perm.(i + 1) <- tmp;
  t.level_swaps <- t.level_swaps + 1

(* Sift the variable currently at level [l0] to its best position:
   down to the bottom, back up to the top, then settle on the smallest
   diagram seen (ties keep the position encountered first, which is
   deterministic). [max_growth] aborts a direction once the diagram
   exceeds that ratio of the best size; the budget is polled at swap
   boundaries and exhaustion stops the exploration (the settle phase
   always runs so the diagram lands in a consistent best-known spot). *)
let sift_var s ~max_growth ~budget l0 =
  let t = s.m in
  let nv = t.nvars in
  let best = ref s.live in
  let best_pos = ref l0 in
  let pos = ref l0 in
  let bound () =
    int_of_float (max_growth *. float_of_int !best) + 2
  in
  let explore step lo_limit hi_limit =
    try
      while !pos > lo_limit && !pos < hi_limit do
        if Resilience.Budget.exhausted budget then raise Exit;
        if step > 0 then begin
          swap_adjacent s !pos;
          incr pos
        end
        else begin
          swap_adjacent s (!pos - 1);
          decr pos
        end;
        if s.live < !best then begin
          best := s.live;
          best_pos := !pos
        end
        else if s.live > bound () then raise Exit
      done
    with Exit -> ()
  in
  explore 1 (-1) (nv - 1);
  explore (-1) 0 nv;
  while !pos < !best_pos do
    swap_adjacent s !pos;
    incr pos
  done;
  while !pos > !best_pos do
    swap_adjacent s (!pos - 1);
    decr pos
  done

let level_of_orig s orig =
  let rec find l = if s.perm.(l) = orig then l else find (l + 1) in
  find 0

let sift_pass s ~max_growth ~budget =
  let t = s.m in
  t.sift_passes <- t.sift_passes + 1;
  (* Process variables by live population of their current level,
     largest first; ties (and the whole order) break on the original
     variable index so a pass is deterministic. *)
  let popn = Array.make (max t.nvars 1) 0 in
  for n = 2 to t.next - 1 do
    let l = t.levels.(n) in
    if l >= 0 && l < t.nvars && s.rc.(n) > 0 then popn.(l) <- popn.(l) + 1
  done;
  let weight = Array.init t.nvars (fun orig -> popn.(level_of_orig s orig)) in
  let vars = Array.init t.nvars (fun orig -> orig) in
  Array.sort
    (fun a b ->
       if weight.(a) <> weight.(b) then compare weight.(b) weight.(a)
       else compare a b)
    vars;
  Array.iter
    (fun orig ->
       if weight.(orig) > 0 && not (Resilience.Budget.exhausted budget) then
         sift_var s ~max_growth ~budget (level_of_orig s orig))
    vars

let sift ?(budget = Resilience.Budget.unlimited) ?(max_growth = 1.2) t roots =
  let s = open_session t roots in
  sift_pass s ~max_growth ~budget;
  s.perm

let sift_to_convergence ?(budget = Resilience.Budget.unlimited)
    ?(max_growth = 1.2) ?(max_passes = 8) t roots =
  let s = open_session t roots in
  let prev = ref max_int in
  let passes = ref 0 in
  while
    s.live < !prev && !passes < max_passes
    && not (Resilience.Budget.exhausted budget)
  do
    prev := s.live;
    sift_pass s ~max_growth ~budget;
    incr passes
  done;
  s.perm
